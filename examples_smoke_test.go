package parallex_test

// Smoke tests that build and run every example binary end to end with
// small parameters. Skipped under -short (go run compiles each example).

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", dir}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/quickstart")
	if !strings.Contains(out, "sum = 15") || !strings.Contains(out, "= 150") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleNBody(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/nbody", "-n", "600", "-steps", "1", "-p", "2")
	if !strings.Contains(out, "divergence: 0.00e+00") {
		t.Fatalf("nbody drivers diverged:\n%s", out)
	}
}

func TestExampleAMR(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/amr", "-p", "2")
	if !strings.Contains(out, "abs error") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExamplePIC(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/pic", "-n", "2000", "-steps", "80", "-p", "2")
	if !strings.Contains(out, "field energy grew") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleGraphQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/graphquery", "-n", "2000", "-p", "2")
	if !strings.Contains(out, "verified against sequential BFS") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleProcRing(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./examples/procring", "-p", "2")
	if !strings.Contains(out, "match=true") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCmdDesignpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	out := runExample(t, "./cmd/designpoint")
	if !strings.Contains(out, "PASS") || strings.Contains(out, "FAIL") {
		t.Fatalf("design point output:\n%s", out)
	}
}
