package parallex_test

// Live-migration tests over a multi-node machine: an object's payload
// crosses nodes while its global name stays valid, in-flight parcels chase
// at most one forwarded hop, and stale senders learn the new owner from
// the "moved" verdict piggybacked on delivery acknowledgements.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	parallex "repro"
)

// startMigrationMachine builds a three-node loopback machine with the
// shared counter action registered on every node.
func startMigrationMachine(t *testing.T) []*parallex.Runtime {
	t.Helper()
	fabric := parallex.NewLoopbackFabric(3)
	trs := make([]parallex.Transport, 3)
	for i := range trs {
		trs[i] = fabric.Node(i)
	}
	rts := make([]*parallex.Runtime, 3)
	for i, tr := range trs {
		rts[i] = parallex.New(parallex.Config{
			Transport:          tr,
			NodeID:             i,
			NodeLocalities:     distRanges,
			WorkersPerLocality: 2,
			Register: func(rt *parallex.Runtime) {
				// mig.bump increments the counter object and answers with
				// the post-increment value.
				rt.MustRegisterAction("mig.bump", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
					v, ok := target.([]int64)
					if !ok || len(v) == 0 {
						return nil, fmt.Errorf("mig.bump on %T", target)
					}
					v[0]++
					return v[0], nil
				})
			},
		})
	}
	return rts
}

// forwardsTotal sums the stale-translation repairs every node performed.
func forwardsTotal(rts []*parallex.Runtime) uint64 {
	var n uint64
	for _, rt := range rts {
		n += rt.AGAS().Forwards.Load()
	}
	return n
}

func shutdownAll(t *testing.T, rts []*parallex.Runtime) {
	t.Helper()
	rts[0].Wait()
	for i, rt := range rts {
		rt.Shutdown()
		if errs := rt.Errors(); len(errs) != 0 {
			t.Errorf("node %d recorded errors: %v", i, errs)
		}
	}
}

// TestCrossNodeMigrationRoundTrip moves one object around all three nodes
// and back, checking payload residency, directory state, and that calls
// reach it at every stop.
func TestCrossNodeMigrationRoundTrip(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rts := startMigrationMachine(t)
	obj := rts[0].NewDataAt(1, []int64{0})

	expect := int64(0)
	call := func(rt *parallex.Runtime, src int) {
		t.Helper()
		expect++
		fut := rt.CallFrom(src, obj, "mig.bump", nil)
		if got, err := fut.Get(); err != nil || got.(int64) != expect {
			t.Fatalf("call via L%d = %v, %v; want %d", src, got, err, expect)
		}
	}
	call(rts[0], 0)

	// Node 0 pushes the object to node 1; the home directory stays on
	// node 0 but names the new owner.
	if err := rts[0].Migrate(obj, 3); err != nil {
		t.Fatalf("migrate to L3: %v", err)
	}
	if _, ok := rts[1].LocalObject(3, obj); !ok {
		t.Fatal("payload not installed at L3 on node 1")
	}
	if _, ok := rts[0].LocalObject(1, obj); ok {
		t.Fatal("payload still present at L1 on node 0")
	}
	if owner, err := rts[0].AGAS().Owner(obj); err != nil || owner != 3 {
		t.Fatalf("home directory owner = %d, %v; want 3", owner, err)
	}
	call(rts[0], 0) // stale sender: forwarded once, then repointed
	call(rts[1], 2) // owning node: local
	call(rts[2], 4) // third party routes toward home, chases once

	// Node 1 pushes it on to node 2: the initiator is neither the home
	// node nor the destination, so this exercises the remote directory
	// commit and the forwarding pointer left at node 1.
	if err := rts[1].Migrate(obj, 5); err != nil {
		t.Fatalf("migrate to L5: %v", err)
	}
	if _, ok := rts[2].LocalObject(5, obj); !ok {
		t.Fatal("payload not installed at L5 on node 2")
	}
	if owner, err := rts[0].AGAS().Owner(obj); err != nil || owner != 5 {
		t.Fatalf("home directory owner = %d, %v; want 5", owner, err)
	}
	if to, _, ok := rts[1].AGAS().Forward(obj); !ok || to != 5 {
		t.Fatalf("node 1 forwarding pointer = %d, %v; want 5", to, ok)
	}
	call(rts[0], 1)
	call(rts[1], 3)
	call(rts[2], 5)

	// And home again: the forwarding chain collapses once the object is
	// back where its directory lives.
	if err := rts[2].Migrate(obj, 0); err != nil {
		t.Fatalf("migrate home: %v", err)
	}
	call(rts[2], 4)
	call(rts[0], 0)
	if v, ok := rts[0].LocalObject(0, obj); !ok || v.([]int64)[0] != expect {
		t.Fatalf("final payload = %v (present %v), want [%d]", v, ok, expect)
	}

	shutdownAll(t, rts)
	waitGoroutines(t, baseline)
}

// TestMigrationStress3Node is the acceptance stress: concurrent
// split-phase calls hammer one object from every node while it migrates
// twice across nodes. No call may be lost or duplicated, Wait must return
// only at true global quiescence, and once the dust settles each stale
// sender observes at most one forwarded hop before resolving the new home
// directly.
func TestMigrationStress3Node(t *testing.T) {
	rts := startMigrationMachine(t)
	obj := rts[0].NewDataAt(0, []int64{0})

	const calls = 50
	senders := []struct {
		node int
		src  int
	}{{0, 1}, {1, 2}, {2, 4}}

	var wg sync.WaitGroup
	for _, s := range senders {
		wg.Add(1)
		go func(rt *parallex.Runtime, src int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				fut := rt.CallFrom(src, obj, "mig.bump", nil)
				if _, err := fut.Get(); err != nil {
					t.Errorf("call from L%d: %v", src, err)
					return
				}
			}
		}(rts[s.node], s.src)
	}

	// Two cross-node moves while the calls are in flight: node 0 → node 1,
	// then node 1 → node 2, each initiated on the current owner.
	time.Sleep(3 * time.Millisecond)
	if err := rts[0].Migrate(obj, 2); err != nil {
		t.Fatalf("first migration: %v", err)
	}
	time.Sleep(3 * time.Millisecond)
	if err := rts[1].Migrate(obj, 4); err != nil {
		t.Fatalf("second migration: %v", err)
	}

	wg.Wait()
	rts[0].Wait()

	// Every call executed exactly once: the counter saw each increment.
	total := int64(len(senders) * calls)
	v, ok := rts[2].LocalObject(4, obj)
	if !ok {
		t.Fatal("object not resident at its final home")
	}
	if got := v.([]int64)[0]; got != total {
		t.Fatalf("counter = %d, want %d: parcels lost or duplicated", got, total)
	}
	for i, rt := range rts {
		if errs := rt.Errors(); len(errs) != 0 {
			t.Fatalf("node %d recorded errors: %v", i, errs)
		}
	}

	// Post-migration senders resolve the new home with at most one
	// forwarded hop each: a stale first call may chase once (and is
	// repointed by the piggybacked verdict); everything after goes direct.
	before := forwardsTotal(rts)
	for _, s := range senders {
		for i := 0; i < 3; i++ {
			fut := rts[s.node].CallFrom(s.src, obj, "mig.bump", nil)
			if _, err := fut.Get(); err != nil {
				t.Fatalf("settled call from L%d: %v", s.src, err)
			}
		}
	}
	if hops := forwardsTotal(rts) - before; hops > uint64(len(senders)) {
		t.Fatalf("settled senders took %d forwarded hops, want <= %d", hops, len(senders))
	}

	shutdownAll(t, rts)
}
