package parallex_test

// Observability over a real multi-node machine: three TCP nodes on
// loopback run cross-node work while the operator endpoints serve metrics
// and sampled trace spans. The tests assert the two tentpole contracts
// end to end — HTTP-served metric values match the runtime's own
// counters, and one sampled trace ID stitches post, wire, and trigger
// hops across node boundaries — plus the mixed-capability downgrade and
// the soak-with-faults counters CI gates on.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	parallex "repro"
	"repro/internal/pprofserve"
	"repro/internal/trace"
	"repro/internal/transport"
)

// startObsMachine mirrors startTCPMachine but lets the caller adjust each
// node's Config before New — the observability knobs (TraceSampleRate,
// DisableTraceContext) are per-node, which is the whole point of the
// mixed-capability test.
func startObsMachine(t testing.TB, configure func(node int, cfg *parallex.Config)) []*parallex.Runtime {
	t.Helper()
	ranges := make([][2]int, len(distRanges))
	for i, rg := range distRanges {
		ranges[i] = [2]int{rg.Lo, rg.Hi}
	}
	tcps := make([]*transport.TCP, 3)
	addrs := make([]string, 3)
	for i := range tcps {
		tr, err := newWireTCP(parallex.TCPTransportConfig{
			Self:   i,
			Listen: "127.0.0.1:0",
			Peers:  make([]string, 3),
			Ranges: ranges,
		})
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr().String()
	}
	rts := make([]*parallex.Runtime, 3)
	for i, tr := range tcps {
		tr.SetPeers(addrs)
		cfg := parallex.Config{
			Transport:          tr,
			NodeID:             i,
			NodeLocalities:     distRanges,
			WorkersPerLocality: 2,
		}
		if configure != nil {
			configure(i, &cfg)
		}
		rts[i] = parallex.New(cfg)
	}
	return rts
}

// getJSON fetches one operator endpoint and decodes its JSON body.
func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// spanRow mirrors the /trace JSON wire form.
type spanRow struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent"`
	Kind   string `json:"kind"`
	Node   int32  `json:"node"`
	Loc    int32  `json:"loc"`
	Action string `json:"action"`
}

// TestDistObservabilityTCP is the tentpole acceptance scenario: a 3-node
// TCP machine runs cross-node calls with full sampling, and node 0's
// operator endpoint must (a) serve metric values that match the runtime's
// own counters and (b) serve sampled spans in which one trace ID covers
// the post on node 0, the wire hops on both sides, and the continuation's
// LCO trigger — proof the trace context survived the wire trailer.
func TestDistObservabilityTCP(t *testing.T) {
	// No goroutine-baseline check here: ServeMetrics intentionally serves
	// for the life of the process.
	defer http.DefaultClient.CloseIdleConnections()
	rts := startObsMachine(t, func(node int, cfg *parallex.Config) {
		cfg.TraceSampleRate = 1
	})
	obj := rts[1].NewDataAt(2, int64(7)) // first locality of node 1
	for i := 0; i < 10; i++ {
		if _, err := rts[0].CallFrom(0, obj, parallex.ActionNop, nil).Get(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	rts[0].Wait()

	addr, err := pprofserve.ServeMetrics("127.0.0.1:0", rts[0].Metrics(), rts[0].Spans(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Served metrics equal the runtime's counters (the machine is
	// quiescent, so the two reads must agree exactly).
	var served map[string]float64
	getJSON(t, "http://"+addr+"/metrics", &served)
	local := rts[0].Metrics().Snapshot()
	for _, key := range []string{
		"px.parcels.sent", "px.wire.sent", "px.wire.recv",
		"px.threads.spawned", "px.trace.sampled", "px.trace.spans",
	} {
		if served[key] != local[key] {
			t.Errorf("%s: endpoint %v, runtime %v", key, served[key], local[key])
		}
		if served[key] == 0 {
			t.Errorf("%s stayed 0 after 10 cross-node calls", key)
		}
	}

	// (b) One trace ID spans post -> wire.send on node 0, wire.recv on
	// node 1, and the continuation trigger hop. Spans live where they were
	// recorded, so the cross-node view merges all three buffers.
	type hop struct {
		kind trace.SpanKind
		node int32
	}
	byTrace := map[uint64]map[hop]bool{}
	for _, rt := range rts {
		for _, sp := range rt.Spans().Snapshot() {
			if sp.Trace == 0 {
				continue
			}
			if byTrace[sp.Trace] == nil {
				byTrace[sp.Trace] = map[hop]bool{}
			}
			byTrace[sp.Trace][hop{sp.Kind, sp.Node}] = true
		}
	}
	var crossTrace uint64
	for id, hops := range byTrace {
		if hops[hop{trace.SpanPost, 0}] && hops[hop{trace.SpanWireSend, 0}] &&
			hops[hop{trace.SpanWireRecv, 1}] && hops[hop{trace.SpanTrigger, 0}] {
			crossTrace = id
			break
		}
	}
	if crossTrace == 0 {
		t.Fatalf("no trace ID covers post/wire.send@0 + wire.recv@1 + trigger@0 across %d traces", len(byTrace))
	}

	// The same trace is retrievable over HTTP from node 0, with its local
	// hops rendered as greppable hex.
	var rows []spanRow
	getJSON(t, "http://"+addr+"/trace", &rows)
	want := fmt.Sprintf("%016x", crossTrace)
	kinds := map[string]bool{}
	for _, row := range rows {
		if row.Trace == want {
			kinds[row.Kind] = true
		}
	}
	if !kinds["post"] || !kinds["wire.send"] {
		t.Fatalf("served trace %s lacks node 0's hops: %v", want, kinds)
	}

	stopMachine(t, rts, true)
}

// TestDistTraceMixedCapability: one node opts out of the trace capability
// in its hello. Parcels toward it must carry no trailer (its decoder would
// reject trailing bytes), so the machine keeps working with zero decode
// errors and tracing degrades to local-only spans on the traced side —
// while a capable third node still records arriving hops even with its
// own sampling off.
func TestDistTraceMixedCapability(t *testing.T) {
	rts := startObsMachine(t, func(node int, cfg *parallex.Config) {
		switch node {
		case 0:
			cfg.TraceSampleRate = 1
		case 1:
			cfg.DisableTraceContext = true
		}
	})
	legacy := rts[1].NewDataAt(2, int64(3)) // hosted by the opted-out node
	capable := rts[2].NewDataAt(4, int64(4))
	for i := 0; i < 8; i++ {
		if _, err := rts[0].CallFrom(0, legacy, parallex.ActionNop, nil).Get(); err != nil {
			t.Fatalf("call to legacy node: %v", err)
		}
		if _, err := rts[0].CallFrom(0, capable, parallex.ActionNop, nil).Get(); err != nil {
			t.Fatalf("call to capable node: %v", err)
		}
	}
	rts[0].Wait()

	// The opted-out node never sees a trace context: no trailer arrives,
	// it mints nothing, so its span buffer stays empty.
	if n := rts[1].Spans().Total(); n != 0 {
		t.Errorf("opted-out node recorded %d spans", n)
	}
	// The traced node still records its local hops toward the legacy peer.
	var toLegacy bool
	for _, sp := range rts[0].Spans().Snapshot() {
		if sp.Trace != 0 && sp.Kind == trace.SpanWireSend {
			toLegacy = true
		}
	}
	if !toLegacy {
		t.Error("traced node recorded no wire.send spans (local-only degradation lost)")
	}
	// The capable peer records arriving hops despite its own sampling
	// being off — the decision travels with the parcel.
	var atCapable bool
	for _, sp := range rts[2].Spans().Snapshot() {
		if sp.Trace != 0 && sp.Kind == trace.SpanWireRecv {
			atCapable = true
		}
	}
	if !atCapable {
		t.Error("capable peer recorded no wire.recv spans for sampled arrivals")
	}
	// wantClean: a trailer sent to the opted-out node would surface here
	// as a recorded decode error.
	stopMachine(t, rts, true)
}

// TestMetricsEndpointSoak is the CI multinode assertion: under combined
// drop+duplication injection and a work storm, every node's metrics
// endpoint must show the machine's self-healing — retransmitted LCO
// triggers — and scheduler activity (steals) as nonzero counters.
func TestMetricsEndpointSoak(t *testing.T) {
	rts := startObsMachine(t, func(node int, cfg *parallex.Config) {
		cfg.Faults = parallex.Faults{DropOneIn: 6, DupOneIn: 5, Seed: 47}
	})
	const perNode = 12
	for it := 0; it < 3; it++ {
		owner := it % 3
		ownerLoc := rts[owner].NodeRange(owner).Lo
		gate := rts[owner].NewDistGateAt(ownerLoc, 3*perNode)
		waits := make([]*parallex.Future, 3)
		for node := 0; node < 3; node++ {
			waits[node] = rts[node].WaitLCO(rts[node].NodeRange(node).Lo, gate)
		}
		done := make(chan struct{}, 3)
		for node := 0; node < 3; node++ {
			go func(node int) {
				rg := rts[node].NodeRange(node)
				for i := 0; i < perNode; i++ {
					rts[node].SignalLCO(rg.Lo+i%rg.Count(), gate)
				}
				done <- struct{}{}
			}(node)
		}
		for i := 0; i < 3; i++ {
			<-done
		}
		for node := 0; node < 3; node++ {
			if _, err := waits[node].Get(); err != nil {
				t.Fatalf("iter %d node %d: %v", it, node, err)
			}
		}
		rts[0].Wait()
	}
	// A burst of same-destination posts all lands on one worker's deque
	// (destination-affine placement), so the sibling worker must steal.
	obj := rts[0].NewDataAt(0, int64(1))
	for i := 0; i < 400; i++ {
		rts[0].SendFrom(0, parallex.NewParcel(obj, parallex.ActionNop, nil))
	}
	rts[0].Wait()

	var retried, steals, dropped float64
	for i, rt := range rts {
		addr, err := pprofserve.ServeMetrics("127.0.0.1:0", rt.Metrics(), rt.Spans(), t.Logf)
		if err != nil {
			t.Fatalf("node %d endpoint: %v", i, err)
		}
		var m map[string]float64
		getJSON(t, "http://"+addr+"/metrics", &m)
		retried += m["px.lco.trigger.retried"]
		steals += m["px.sched.steals"] + m["px.sched.steals_local"]
		dropped += m["px.faults.dropped"]
		// The storm rides LCO trigger frames, not parcel frames, so the
		// per-node traffic proof is the trigger counter.
		if m["px.lco.trigger.sent"] == 0 {
			t.Errorf("node %d endpoint reports no trigger traffic", i)
		}
	}
	if dropped == 0 {
		t.Error("soak injected no drops at 1-in-6")
	}
	if retried == 0 {
		t.Error("endpoints report zero trigger retransmissions despite injected drops")
	}
	if steals == 0 {
		t.Error("endpoints report zero steals after a same-destination burst")
	}
	stopMachine(t, rts, true)
}
