// Command pxload is the open-loop load generator for the serving tier.
// It joins a running multi-process ParalleX machine as one of its nodes
// (the same -peers/-localities roster every pxnode was started with),
// installs its own resident KV shards, and then fires get/put requests at
// a fixed arrival rate against the machine-wide shard table — request i
// departs at start + i/rate no matter how many earlier requests are still
// in flight, the way real clients keep arriving at an overloaded service.
//
// Latency is charged from each request's scheduled arrival, not its
// actual dispatch, so queueing delay cannot hide behind a stalled
// generator (the coordinated-omission correction; see EXPERIMENTS.md,
// "Open-loop latency methodology"). Requests shed by admission control
// (pxnode -admit) come back as typed overload verdicts and are retried
// with exponential backoff; a request whose budget ends in a shed verdict
// counts as rejected, one that ends with no verdict at all counts as
// lost.
//
// The run's summary — throughput, p50/p99/p999 latency, and the
// shed/retry/lost counters — prints to stdout and, with -out, is written
// as a px-bench/v1 JSON suite that cmd/benchdiff can gate.
//
// Drive a two-node machine, one serving node and one generator:
//
//	pxnode -node 0 -peers 127.0.0.1:9400,127.0.0.1:9401 -localities 2,2 -workload serve -admit 256 &
//	pxload -node 1 -peers 127.0.0.1:9400,127.0.0.1:9401 -localities 2,2 -rate 20000 -n 100000 -out serve.json
//
// When pxload finishes it broadcasts the machine halt, so serve-mode
// pxnodes drain and exit on their own.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	parallex "repro"
	"repro/internal/benchio"
	"repro/internal/pprofserve"
	"repro/internal/workloads"
)

func main() {
	node := flag.Int("node", 0, "this process's node ID in the machine roster")
	peers := flag.String("peers", "", "comma-separated host:port of every node, in node order")
	locs := flag.String("localities", "", "locality count per node in node order, e.g. 2,2,2 = nodes hosting [0,2) [2,4) [4,6)")
	listen := flag.String("listen", "", "listen address (default: the -peers entry for this node)")
	workers := flag.Int("workers", 4, "workers per locality")
	lanes := flag.Int("lanes", 0, "TCP connections per peer pair, matching the serving nodes' -lanes (0 = single lane)")
	rate := flag.Float64("rate", 1000, "arrival rate in requests per second")
	n := flag.Int("n", 1000, "total requests to schedule")
	keys := flag.Int("keys", 1024, "key-space size (keys drawn uniformly)")
	putFrac := flag.Float64("putfrac", 0.1, "fraction of arrivals that are puts; the rest are gets")
	valueBytes := flag.Int("valuebytes", 64, "payload size of each put, in bytes")
	seed := flag.Uint64("seed", 1, "seed for the key/op sequence")
	timeout := flag.Duration("timeout", 2*time.Second, "per-attempt wait for a verdict before re-issuing")
	retries := flag.Int("retries", 8, "re-issues of a shed or timed-out request before it counts as rejected/lost")
	backoff := flag.Duration("backoff", time.Millisecond, "delay before the first re-issue, doubling per attempt")
	out := flag.String("out", "", "write the run as a px-bench/v1 JSON suite to this path; empty = stdout summary only")
	name := flag.String("name", "pxload/serve", "record name in the px-bench/v1 suite")
	halt := flag.Bool("halt", true, "broadcast the machine halt when the run finishes")
	metricsAddr := flag.String("metrics", "", "serve the px.* metrics registry as JSON on this address; empty = off")
	flag.Parse()

	peerList := strings.Split(*peers, ",")
	if *peers == "" || len(peerList) < 2 {
		log.Fatal("pxload: -peers needs at least two comma-separated addresses")
	}
	ranges, err := parseLocalities(*locs, len(peerList))
	if err != nil {
		log.Fatalf("pxload: %v", err)
	}
	if *node < 0 || *node >= len(peerList) {
		log.Fatalf("pxload: -node %d outside machine [0,%d)", *node, len(peerList))
	}
	addr := *listen
	if addr == "" {
		addr = peerList[*node]
	}

	hsRanges := make([][2]int, len(ranges))
	for i, rg := range ranges {
		hsRanges[i] = [2]int{rg.Lo, rg.Hi}
	}
	tr, err := parallex.NewTCPTransport(parallex.TCPTransportConfig{
		Self:   *node,
		Listen: addr,
		Peers:  peerList,
		Ranges: hsRanges,
		Lanes:  *lanes,
	})
	if err != nil {
		log.Fatalf("pxload: %v", err)
	}

	rt := parallex.New(parallex.Config{
		Transport:          tr,
		NodeID:             *node,
		NodeLocalities:     ranges,
		WorkersPerLocality: *workers,
		Register:           workloads.RegisterKVService,
	})
	workloads.InstallKVShards(rt)
	if _, err := pprofserve.ServeMetrics(*metricsAddr, rt.Metrics(), rt.Spans(), log.Printf); err != nil {
		log.Fatalf("pxload: %v", err)
	}
	home := ranges[*node].Lo
	fmt.Printf("pxload: node %d up, driving from locality %d of %d at %.0f req/s\n",
		*node, home, rt.Localities(), *rate)

	res := workloads.RunOpenLoop(rt, workloads.OpenLoopConfig{
		Rate:         *rate,
		Requests:     *n,
		Keys:         *keys,
		PutFraction:  *putFrac,
		ValueBytes:   *valueBytes,
		Seed:         *seed,
		SrcLoc:       home,
		Timeout:      *timeout,
		Retries:      *retries,
		RetryBackoff: *backoff,
	})

	rec := res.Record(*name)
	fmt.Printf("pxload: %d issued in %v: %d completed, %d rejected, %d lost, %d failed\n",
		res.Issued, res.Elapsed.Round(time.Millisecond), res.Completed, res.Rejected, res.Lost, res.Failed)
	fmt.Printf("pxload: %d shed verdicts, %d retries, %d attempt timeouts\n",
		res.Shed, res.Retried, res.TimedOut)
	if res.Completed > 0 {
		fmt.Printf("pxload: latency p50 %v  p99 %v  p999 %v (from scheduled arrival)\n",
			time.Duration(rec.P50Ns), time.Duration(rec.P99Ns), time.Duration(rec.P999Ns))
	}
	if *out != "" {
		suite := benchio.NewSuite()
		suite.Add(rec)
		if err := suite.WriteFile(*out); err != nil {
			log.Fatalf("pxload: write %s: %v", *out, err)
		}
		fmt.Printf("pxload: wrote px-bench/v1 suite to %s\n", *out)
	}

	if *halt {
		rt.RequestHalt()
	}
	rt.Shutdown()
	if res.Lost > 0 || res.Failed > 0 {
		log.Fatalf("pxload: %d lost and %d failed requests", res.Lost, res.Failed)
	}
}

// parseLocalities turns "2,2,2" into contiguous per-node ranges.
func parseLocalities(spec string, nodes int) ([]parallex.LocalityRange, error) {
	if spec == "" {
		return nil, fmt.Errorf("-localities is required (e.g. 2,2,2)")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != nodes {
		return nil, fmt.Errorf("-localities has %d entries for %d nodes", len(parts), nodes)
	}
	ranges := make([]parallex.LocalityRange, len(parts))
	lo := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad locality count %q", p)
		}
		ranges[i] = parallex.LocalityRange{Lo: lo, Hi: lo + n}
		lo += n
	}
	return ranges, nil
}
