// Command pxbench runs the full experiment harness — every table and
// figure of the reproduction (E1–E10, ablations A1–A4) — and prints the
// paper-style tables. Individual experiments can be selected with -only.
// Expected shapes are recorded in EXPERIMENTS.md; the same code paths run
// as benchmarks in bench_test.go.
//
// -sched instead runs the scheduler/wire microbenchmark suite (the same
// bodies bench_test.go wraps, from internal/schedbench), prints a table,
// and writes the results as a machine-readable BENCH_<date>.json (schema
// px-bench/v1, see internal/benchio); -json overrides the output path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/benchio"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/parcel"
	"repro/internal/pprofserve"
	"repro/internal/schedbench"
)

// runSched executes the scheduler microbenchmark suite via
// testing.Benchmark and reports it as a table plus an optional JSON suite.
func runSched(jsonPath string) {
	suite := benchio.NewSuite()
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SchedPostDispatchMutex", func(b *testing.B) { schedbench.PostDispatchMutex(b, 8, 8) }},
		{"SchedPostDispatchDeques", func(b *testing.B) { schedbench.PostDispatchDeques(b, 8, 8) }},
		{"SchedPingPong", schedbench.PingPong},
		{"SchedStealImbalance", func(b *testing.B) { schedbench.StealImbalance(b, 3) }},
		{"SchedFanOutFanIn", func(b *testing.B) { schedbench.FanOutFanIn(b, 64) }},
		{"SchedMigrate", func(b *testing.B) { schedbench.Migrate(b, 4) }},
		{"SchedParcelFlood", func(b *testing.B) { schedbench.ParcelFlood(b, 4) }},
		{"SchedParcelPingPong", schedbench.ParcelPingPong},
		{"WireRoundTrip", schedbench.WireRoundTrip},
		{"TCPRing3", schedbench.TCPRing3},
		{"DistFutureRoundTrip", schedbench.DistFutureRoundTrip},
	}
	fmt.Printf("%-28s %12s %14s  extras\n", "benchmark", "iters", "ns/op")
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal/b.Error and hands back a
			// zero result; a zero-iteration record would poison the JSON
			// with NaN and hide the failure from scripted callers.
			fmt.Fprintf(os.Stderr, "pxbench: benchmark %s failed\n", bm.name)
			os.Exit(1)
		}
		rec := benchio.Record{
			Name:           bm.name,
			Iters:          r.N,
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:     float64(r.AllocedBytesPerOp()),
			AllocsPerOp:    float64(r.AllocsPerOp()),
			AllocsMeasured: true,
		}
		extras := make([]string, 0, len(r.Extra))
		for unit, v := range r.Extra {
			if rec.Extra == nil {
				rec.Extra = map[string]float64{}
			}
			rec.Extra[unit] = v
			extras = append(extras, fmt.Sprintf("%.4g %s", v, unit))
		}
		suite.Add(rec)
		fmt.Printf("%-28s %12d %14.1f  %s\n", bm.name, rec.Iters, rec.NsPerOp, strings.Join(extras, "  "))
	}
	if mutex, ok := suite.Find("SchedPostDispatchMutex"); ok {
		if deq, ok := suite.Find("SchedPostDispatchDeques"); ok && deq.NsPerOp > 0 {
			fmt.Printf("\ndeque scheduler speedup over single-mutex baseline: %.2fx\n",
				mutex.NsPerOp/deq.NsPerOp)
		}
	}
	if jsonPath != "" {
		if err := suite.WriteFile(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "pxbench: write %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. e3,e7,a2); empty = all")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	sched := flag.Bool("sched", false, "run the scheduler/wire microbenchmark suite instead of the experiments")
	jsonOut := flag.String("json", "", "with -sched: also write results to this path (default BENCH_<date>.json)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
	metricsAddr := flag.String("metrics", "", "serve process-wide px.pool.* metrics as JSON on this address; empty = off")
	flag.Parse()

	pprofserve.Start(*pprofAddr, log.Printf)
	if *metricsAddr != "" {
		// Experiment runtimes are ephemeral, so pxbench exports the
		// process-global pool counters — the part an operator can watch
		// across experiment boundaries.
		reg := metrics.NewRegistry()
		reg.RegisterFunc("px.pool.parcel.hits", func() int64 { h, _, _, _ := parcel.PoolStats(); return int64(h) })
		reg.RegisterFunc("px.pool.parcel.misses", func() int64 { _, m, _, _ := parcel.PoolStats(); return int64(m) })
		reg.RegisterFunc("px.pool.wire.hits", func() int64 { _, _, h, _ := parcel.PoolStats(); return int64(h) })
		reg.RegisterFunc("px.pool.wire.misses", func() int64 { _, _, _, m := parcel.PoolStats(); return int64(m) })
		if _, err := pprofserve.ServeMetrics(*metricsAddr, reg, nil, log.Printf); err != nil {
			log.Fatalf("pxbench: %v", err)
		}
	}

	if *sched {
		path := *jsonOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
		}
		runSched(path)
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	scale := 1
	if *quick {
		scale = 4
	}

	if want("e1") {
		fmt.Println(experiments.RunE1())
	}
	if want("e2") {
		rep, ok := experiments.RunE2()
		fmt.Println(rep)
		if !ok {
			fmt.Println("WARNING: design point deviates from the paper")
		}
	}
	if want("e3") {
		lats := []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
		fmt.Println(experiments.TableE3(experiments.RunE3(lats, 4, 80/scale, nil)))
	}
	if want("e4") {
		grains := []time.Duration{
			100 * time.Microsecond, 500 * time.Microsecond,
			2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		}
		rs := experiments.RunE4(grains, 120/scale, 4, 20*time.Microsecond)
		fmt.Println(experiments.TableE4(rs))
		fmt.Printf("minimum exploitable grain (>=50%% eff): parallex %v, csp %v\n\n",
			experiments.MinExploitableGrain(rs, true), experiments.MinExploitableGrain(rs, false))
	}
	if want("e5") {
		fracs := []float64{0.0, 0.3, 0.6}
		fmt.Println(experiments.TableE5(experiments.RunE5(fracs, 3000, 4, 0, true)))
	}
	if want("e6") {
		skews := []float64{1, 4, 8, 16}
		fmt.Println(experiments.TableE6(experiments.RunE6(skews, 32, 14/scale+2, 4, time.Millisecond)))
	}
	if want("e7") {
		ratios := []float64{0.25, 0.5, 1.0, 2.0}
		depths := []int{0, 1, 2, 4, 8}
		fmt.Println(experiments.TableE7(experiments.RunE7(ratios, depths, 200, 1000, 2)))
	}
	if want("e8") {
		lats := []time.Duration{100 * time.Microsecond, 500 * time.Microsecond}
		fmt.Println(experiments.TableE8(experiments.RunE8(lats, 4, 60/scale)))
	}
	if want("e9") {
		widths := []int{1, 2, 4, 8}
		if *quick {
			widths = []int{1, 4}
		}
		fmt.Println(experiments.TableE9(experiments.RunE9(widths, 1200, 600, 6000)))
	}
	if want("e10") {
		fmt.Println(experiments.TableE10(experiments.RunE10(4000 / scale)))
	}
	if want("a1") {
		fmt.Println(experiments.TableA1(experiments.RunA1(4, 40/scale, 200*time.Microsecond)))
	}
	if want("a2") {
		fmt.Println(experiments.TableA2(experiments.RunA2([]int{1, 2, 4, 8}, 4, 300*time.Microsecond, 8/scale+1)))
	}
	if want("a3") {
		fmt.Println(experiments.TableA3(experiments.RunA3(2000, 4)))
	}
	if want("a4") {
		fmt.Println(experiments.TableA4(experiments.RunA4(4, 4, 12/scale, 8)))
	}
	if want("x1") {
		ratios := []float64{0.1, 0.5, 1, 2, 5, 10}
		fmt.Println(experiments.TableX1(experiments.RunX1(ratios, 16, 256, 8, 30)))
	}
	if want("x2") {
		fmt.Println(experiments.TableX2(experiments.RunX2([]int{0, 2, 8}, []int{0, 2, 4}, 200)))
	}
}
