// Command pxbench runs the full experiment harness — every table and
// figure of the reproduction (E1–E10, ablations A1–A4) — and prints the
// paper-style tables. Individual experiments can be selected with -only.
// Expected shapes are recorded in EXPERIMENTS.md; the same code paths run
// as benchmarks in bench_test.go.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. e3,e7,a2); empty = all")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	scale := 1
	if *quick {
		scale = 4
	}

	if want("e1") {
		fmt.Println(experiments.RunE1())
	}
	if want("e2") {
		rep, ok := experiments.RunE2()
		fmt.Println(rep)
		if !ok {
			fmt.Println("WARNING: design point deviates from the paper")
		}
	}
	if want("e3") {
		lats := []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
		fmt.Println(experiments.TableE3(experiments.RunE3(lats, 4, 80/scale, nil)))
	}
	if want("e4") {
		grains := []time.Duration{
			100 * time.Microsecond, 500 * time.Microsecond,
			2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		}
		rs := experiments.RunE4(grains, 120/scale, 4, 20*time.Microsecond)
		fmt.Println(experiments.TableE4(rs))
		fmt.Printf("minimum exploitable grain (>=50%% eff): parallex %v, csp %v\n\n",
			experiments.MinExploitableGrain(rs, true), experiments.MinExploitableGrain(rs, false))
	}
	if want("e5") {
		fracs := []float64{0.0, 0.3, 0.6}
		fmt.Println(experiments.TableE5(experiments.RunE5(fracs, 3000, 4, 0, true)))
	}
	if want("e6") {
		skews := []float64{1, 4, 8, 16}
		fmt.Println(experiments.TableE6(experiments.RunE6(skews, 32, 14/scale+2, 4, time.Millisecond)))
	}
	if want("e7") {
		ratios := []float64{0.25, 0.5, 1.0, 2.0}
		depths := []int{0, 1, 2, 4, 8}
		fmt.Println(experiments.TableE7(experiments.RunE7(ratios, depths, 200, 1000, 2)))
	}
	if want("e8") {
		lats := []time.Duration{100 * time.Microsecond, 500 * time.Microsecond}
		fmt.Println(experiments.TableE8(experiments.RunE8(lats, 4, 60/scale)))
	}
	if want("e9") {
		widths := []int{1, 2, 4, 8}
		if *quick {
			widths = []int{1, 4}
		}
		fmt.Println(experiments.TableE9(experiments.RunE9(widths, 1200, 600, 6000)))
	}
	if want("e10") {
		fmt.Println(experiments.TableE10(experiments.RunE10(4000 / scale)))
	}
	if want("a1") {
		fmt.Println(experiments.TableA1(experiments.RunA1(4, 40/scale, 200*time.Microsecond)))
	}
	if want("a2") {
		fmt.Println(experiments.TableA2(experiments.RunA2([]int{1, 2, 4, 8}, 4, 300*time.Microsecond, 8/scale+1)))
	}
	if want("a3") {
		fmt.Println(experiments.TableA3(experiments.RunA3(2000, 4)))
	}
	if want("x1") {
		ratios := []float64{0.1, 0.5, 1, 2, 5, 10}
		fmt.Println(experiments.TableX1(experiments.RunX1(ratios, 16, 256, 8, 30)))
	}
	if want("x2") {
		fmt.Println(experiments.TableX2(experiments.RunX2([]int{0, 2, 8}, []int{0, 2, 4}, 200)))
	}
}
