// Command pxnode starts one node of a multi-process ParalleX machine and
// runs a named distributed workload. Each node hosts a contiguous range of
// localities; parcels cross between nodes as length-framed streams over
// TCP. Node 0 drives the workload, the others serve parcels until the
// driver broadcasts a halt.
//
// Workloads (driven by node 0): ping round-trips a no-op call to every
// locality; ring sends one parcel whose continuation chain visits every
// locality before resolving a future back home; reduce fans a rank query
// out and funnels the answers into one Reduce LCO; migrate rebalances a
// ring of vector objects skewed onto node 0 by live-migrating them
// across the machine, comparing the burst latency before and after;
// migrate-auto runs the same skewed ring but never calls Migrate — it
// sustains load until the adaptive balancers (enable with -balance on
// EVERY node) spread the ring on their own, then measures the balanced
// burst against the placement the policy chose;
// reduce-lco runs the same all-to-one collective through the distributed
// LCO gate tree (per-node leaf reductions feeding an AGAS-homed root);
// barrier runs machine-wide barrier rounds over distributed gate trees,
// every locality arriving and awaiting the release; serve turns the
// machine into the sharded key-value service (one shard per locality at
// well-known names) and holds it up until a pxload client broadcasts the
// halt — pair it with -admit to bound each locality's queue and shed
// overload with typed verdicts.
//
// The -localities flag gives the locality count per node in node order
// ("2,2,2" = three nodes hosting localities [0,2), [2,4), [4,6)).
//
// Membership: a node started with -join N attaches to a RUNNING machine
// as its next node, hosting N fresh localities — -peers/-localities
// describe the existing machine, -listen is where the running peers dial
// the joiner back, and -node is ignored. Failure detection is tuned with
// -beat (heartbeat interval, default 250ms) and -dead-after (the hard
// silence floor before a suspect peer is declared dead, default 3s);
// when a peer dies its localities are adopted by a surviving node and
// its stranded futures fail with the typed node-lost verdict.
//
// Adaptive self-balancing: -balance enables the per-node balancer at
// the given tick interval (it must be set on every node — each node
// plans moves for the objects it hosts). The policy knobs
// -balance-sample, -balance-hot, -balance-imbalance, -balance-moves and
// -balance-cooldown map one-to-one onto the Balance* runtime config;
// docs/OPERATIONS.md has the tuning guide and the px.balance.* metrics
// to watch.
//
// Wire tuning: -lanes shards each peer pair across that many TCP
// connections, with parcels affinity-hashed on their destination GID —
// per-object ordering is preserved while independent streams ride
// independent sockets. Nodes that share a host discover each other at
// dial time and ride a Unix-domain same-host fabric automatically; see
// docs/OPERATIONS.md for when to turn either knob.
//
// A three-node machine on one host:
//
//	pxnode -node 0 -peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402 -localities 2,2,2 -workload ring &
//	pxnode -node 1 -peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402 -localities 2,2,2 &
//	pxnode -node 2 -peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402 -localities 2,2,2
//
// Serving tier (see docs/OPERATIONS.md for the full operator walkthrough):
//
//	pxnode -node 0 -peers 127.0.0.1:9400,127.0.0.1:9401 -localities 2,2 -workload serve -admit 256 &
//	pxload -node 1 -peers 127.0.0.1:9400,127.0.0.1:9401 -localities 2,2 -rate 20000 -n 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	parallex "repro"
	"repro/internal/lco/collect"
	"repro/internal/pprofserve"
	"repro/internal/workloads"
)

func main() {
	node := flag.Int("node", 0, "this process's node ID")
	peers := flag.String("peers", "", "comma-separated host:port of every node, in node order")
	locs := flag.String("localities", "", "locality count per node in node order, e.g. 2,2,2 = nodes hosting [0,2) [2,4) [4,6)")
	listen := flag.String("listen", "", "listen address (default: the -peers entry for this node)")
	workload := flag.String("workload", "", "ping | ring | reduce | reduce-lco | barrier | migrate | migrate-auto | serve (node 0 only; empty = serve parcels until halt)")
	iters := flag.Int("n", 100, "workload iterations")
	workers := flag.Int("workers", 4, "workers per locality")
	admit := flag.Int("admit", 0, "admission limit: max queued tasks per locality before sheddable requests get ErrOverloaded; 0 = unbounded")
	join := flag.Int("join", 0, "join a RUNNING machine as a new node hosting this many fresh localities; -peers/-localities describe the existing machine and -listen is required (ignore -node)")
	beat := flag.Duration("beat", 0, "membership heartbeat interval (0 = default 250ms)")
	deadAfter := flag.Duration("dead-after", 0, "hard silence floor before a suspect peer is declared dead (0 = default 3s)")
	lanes := flag.Int("lanes", 0, "TCP connections per peer pair, parcels affinity-hashed on destination GID across them (0 = single lane)")
	balance := flag.Duration("balance", 0, "adaptive balancer tick interval on every node (0 = balancing disabled)")
	balanceSample := flag.Int("balance-sample", 0, "sample every Nth parcel arrival for per-object heat (0 = default 8)")
	balanceHot := flag.Int("balance-hot", 0, "min sampled arrivals per tick before an object is migration-eligible (0 = default 8)")
	balanceImbalance := flag.Float64("balance-imbalance", 0, "hysteresis ratio: move only when source load >= ratio*coldest + the object's own contribution (0 = default 2)")
	balanceMoves := flag.Int("balance-moves", 0, "max migrations planned per tick per node (0 = default 4)")
	balanceCooldown := flag.Int("balance-cooldown", 0, "ticks a just-moved object is immune from another move (0 = default 5)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
	metricsAddr := flag.String("metrics", "", "serve the px.* metrics registry and sampled trace spans as JSON on this address (e.g. localhost:7070); empty = off")
	traceSample := flag.Float64("trace-sample", 0, "fraction of root parcels that start a sampled distributed trace, 0..1")
	flag.Parse()

	pprofserve.Start(*pprofAddr, log.Printf)

	peerList := strings.Split(*peers, ",")
	if *peers == "" || len(peerList) < 2 {
		log.Fatal("pxnode: -peers needs at least two comma-separated addresses")
	}
	ranges, err := parseLocalities(*locs, len(peerList))
	if err != nil {
		log.Fatalf("pxnode: %v", err)
	}
	if *join > 0 {
		// A joiner is the machine's next node: its ID is the current node
		// count, its range continues the existing partition, and its
		// address is appended to the dial table. The running peers learn
		// all three from the membership section of the joiner's handshake
		// hello — no restart, no reconfiguration on their side.
		if *listen == "" {
			log.Fatal("pxnode: -join requires -listen (peers dial the joiner back at this address)")
		}
		*node = len(peerList)
		peerList = append(peerList, *listen)
		hi := ranges[len(ranges)-1].Hi
		ranges = append(ranges, parallex.LocalityRange{Lo: hi, Hi: hi + *join})
	}
	if *node < 0 || *node >= len(peerList) {
		log.Fatalf("pxnode: -node %d outside machine [0,%d)", *node, len(peerList))
	}
	addr := *listen
	if addr == "" {
		addr = peerList[*node]
	}

	hsRanges := make([][2]int, len(ranges))
	for i, rg := range ranges {
		hsRanges[i] = [2]int{rg.Lo, rg.Hi}
	}
	tr, err := parallex.NewTCPTransport(parallex.TCPTransportConfig{
		Self:   *node,
		Listen: addr,
		Peers:  peerList,
		Ranges: hsRanges,
		Lanes:  *lanes,
	})
	if err != nil {
		log.Fatalf("pxnode: %v", err)
	}

	rt := parallex.New(parallex.Config{
		Transport:           tr,
		NodeID:              *node,
		NodeLocalities:      ranges,
		WorkersPerLocality:  *workers,
		AdmitLimit:          *admit,
		TraceSampleRate:     *traceSample,
		BalanceInterval:     *balance,
		BalanceSampleEvery:  *balanceSample,
		BalanceHotThreshold: *balanceHot,
		BalanceImbalance:    *balanceImbalance,
		BalanceMaxMoves:     *balanceMoves,
		BalanceCooldown:     *balanceCooldown,
		Membership: parallex.MembershipConfig{
			HeartbeatInterval: *beat,
			DeadAfter:         *deadAfter,
		},
		// Actions must exist before the transport starts delivering: a
		// peer's parcel can name them the instant the node is reachable.
		Register: registerDistActions,
	})
	rt.SubscribeMembership(func(ev parallex.MemberEvent) {
		switch ev.Kind {
		case parallex.MemberJoined:
			log.Printf("pxnode: node %d joined with localities %v (membership v%d)", ev.Node, ev.Range, ev.Version)
		case parallex.MemberDied:
			log.Printf("pxnode: node %d declared DEAD; localities %v re-homed onto node %d (membership v%d)",
				ev.Node, ev.Moved, ev.Adopter, ev.Version)
		}
	})
	// Every node hosts its localities' KV shards at their well-known
	// names; they serve nothing unless a client (pxload, or the serve
	// workload's own smoke traffic) addresses them.
	workloads.InstallKVShards(rt)
	if _, err := pprofserve.ServeMetrics(*metricsAddr, rt.Metrics(), rt.Spans(), log.Printf); err != nil {
		log.Fatalf("pxnode: %v", err)
	}
	home := ranges[*node].Lo
	fmt.Printf("pxnode: node %d up, localities %v of %d, listening on %s\n",
		*node, ranges[*node], rt.Localities(), addr)

	if *node != 0 {
		if *workload != "" {
			log.Fatal("pxnode: only node 0 drives a workload")
		}
		<-rt.HaltRequested()
		fmt.Printf("pxnode: node %d halt received, draining\n", *node)
		rt.Shutdown()
		return
	}

	if *workload == "serve" {
		// The serving tier: shards are installed, actions registered —
		// hold the machine up for pxload clients until one broadcasts
		// the halt.
		fmt.Printf("pxnode: node 0 serving (admit limit %d); waiting for a pxload halt\n", *admit)
		<-rt.HaltRequested()
		fmt.Printf("pxnode: node 0 halt received, draining\n")
		rt.Shutdown()
		return
	}

	start := time.Now()
	switch *workload {
	case "ping":
		runPing(rt, home, *iters)
	case "ring":
		runRing(rt, home, *iters)
	case "reduce":
		runReduce(rt, home, *iters)
	case "reduce-lco":
		runReduceLCO(rt, home, *iters)
	case "barrier":
		runBarrier(rt, home, *iters)
	case "migrate":
		runMigrate(rt, home, *iters)
	case "migrate-auto":
		if *balance <= 0 {
			die(rt, "pxnode: migrate-auto needs the balancer: start every node with -balance (e.g. -balance 50ms)")
		}
		runMigrateAuto(rt, home, *iters)
	case "":
		// Serve-only driver: useful when another process injects work.
	default:
		log.Fatalf("pxnode: unknown workload %q", *workload)
	}
	rt.Wait()
	fmt.Printf("pxnode: machine quiescent after %v\n", time.Since(start))
	fmt.Printf("pxnode: stats %v\n", rt.SLOW())
	if errs := rt.Errors(); len(errs) > 0 {
		die(rt, "pxnode: %d runtime errors, first: %v", len(errs), errs[0])
	}
	rt.RequestHalt()
	rt.Shutdown()
}

// die reports a driver failure but still broadcasts the halt first, so
// worker nodes do not wait forever on a machine whose driver is gone.
func die(rt *parallex.Runtime, format string, args ...any) {
	rt.RequestHalt()
	log.Fatalf(format, args...)
}

// parseLocalities turns "2,2,2" into contiguous per-node ranges.
func parseLocalities(spec string, nodes int) ([]parallex.LocalityRange, error) {
	if spec == "" {
		return nil, fmt.Errorf("-localities is required (e.g. 2,2,2)")
	}
	parts := strings.Split(spec, ",")
	if len(parts) != nodes {
		return nil, fmt.Errorf("-localities has %d entries for %d nodes", len(parts), nodes)
	}
	ranges := make([]parallex.LocalityRange, len(parts))
	lo := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad locality count %q", p)
		}
		ranges[i] = parallex.LocalityRange{Lo: lo, Hi: lo + n}
		lo += n
	}
	return ranges, nil
}

// registerDistActions installs the workload actions on this node. Every
// node registers everything: action names travel in parcels and any
// locality may be asked to execute one.
func registerDistActions(rt *parallex.Runtime) {
	collect.RegisterActions(rt)
	workloads.RegisterKVService(rt)
	// pxnode.contrib-rank contributes the executing locality's index into
	// the named reduce-lco collective's local leaf.
	rt.MustRegisterAction("pxnode.contrib-rank", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		id := args.String()
		if err := args.Err(); err != nil {
			return nil, err
		}
		red, err := collect.AttachReduce(ctx.Runtime(), id)
		if err != nil {
			return nil, err
		}
		return nil, red.Contribute(ctx.Locality(), int64(ctx.Locality()))
	})
	// pxnode.arrive arrives at the named barrier and suspends until the
	// machine-wide release — the action's own completion witnesses the
	// barrier round.
	rt.MustRegisterAction("pxnode.arrive", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		id := args.String()
		if err := args.Err(); err != nil {
			return nil, err
		}
		bar, err := collect.AttachBarrier(ctx.Runtime(), id)
		if err != nil {
			return nil, err
		}
		rel := bar.Released(ctx.Locality())
		bar.Arrive(ctx.Locality())
		_, err = ctx.Await(rel)
		return nil, err
	})
	// pxnode.rank answers with the executing locality's index.
	rt.MustRegisterAction("pxnode.rank", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		return int64(ctx.Locality()), nil
	})
	// pxnode.sum reduces a float vector — the compute kernel of the
	// migrate workload.
	rt.MustRegisterAction("pxnode.sum", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		vec, ok := target.([]float64)
		if !ok {
			return nil, fmt.Errorf("pxnode.sum on %T", target)
		}
		s := 0.0
		for _, v := range vec {
			s += v
		}
		return s, nil
	})
	// pxnode.incr takes the continuation value record and passes it on,
	// incremented — the hop counter of the ring workload.
	rt.MustRegisterAction("pxnode.incr", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		v, err := parallex.DecodeValue(raw)
		if err != nil {
			return nil, err
		}
		n, ok := v.(int64)
		if !ok {
			return nil, fmt.Errorf("pxnode.incr got %T", v)
		}
		return n + 1, nil
	})
}

// runPing round-trips a split-phase no-op call to every locality in turn,
// reporting the mean latency per (mostly cross-node) call.
func runPing(rt *parallex.Runtime, home, iters int) {
	start := time.Now()
	calls := 0
	for i := 0; i < iters; i++ {
		for loc := 0; loc < rt.Localities(); loc++ {
			fut := rt.CallFrom(home, rt.LocalityGID(loc), parallex.ActionNop, nil)
			if _, err := fut.Get(); err != nil {
				die(rt, "pxnode: ping locality %d: %v", loc, err)
			}
			calls++
		}
	}
	fmt.Printf("pxnode: ping %d calls, %.1fµs mean round trip\n",
		calls, float64(time.Since(start).Microseconds())/float64(calls))
}

// runRing sends one parcel whose continuation chain visits every locality
// in order before resolving a future back home — the locus of control
// migrates around the machine without ever returning to the sender
// mid-chain.
func runRing(rt *parallex.Runtime, home, iters int) {
	for i := 0; i < iters; i++ {
		zero, err := parallex.EncodeValue(int64(0))
		if err != nil {
			die(rt, "pxnode: %v", err)
		}
		fgid, fut := rt.NewFutureAt(home)
		cont := make([]parallex.Continuation, 0, rt.Localities())
		for loc := 1; loc < rt.Localities(); loc++ {
			cont = append(cont, parallex.Continuation{Target: rt.LocalityGID(loc), Action: "pxnode.incr"})
		}
		cont = append(cont, parallex.Continuation{Target: fgid, Action: parallex.ActionLCOSet})
		p := parallex.NewParcel(rt.LocalityGID(0), "pxnode.incr",
			parallex.NewArgs().Bytes(zero).Encode(), cont...)
		rt.SendFrom(home, p)
		v, err := fut.Get()
		if err != nil {
			die(rt, "pxnode: ring lap %d: %v", i, err)
		}
		if got := v.(int64); got != int64(rt.Localities()) {
			die(rt, "pxnode: ring lap %d counted %d hops, want %d", i, got, rt.Localities())
		}
	}
	fmt.Printf("pxnode: ring %d laps of %d hops each\n", iters, rt.Localities())
}

// newSkewedRing builds the migrate workloads' object set: one 16K-float
// vector object per locality, every one of them crammed onto the
// driver's home locality. Returns the objects and the expected sum.
func newSkewedRing(rt *parallex.Runtime, home int) ([]parallex.GID, float64) {
	n := rt.Localities()
	objs := make([]parallex.GID, n)
	var want float64
	for i := range objs {
		vec := make([]float64, 1<<14)
		for j := range vec {
			vec[j] = float64(j % 7)
		}
		if i == 0 {
			for _, v := range vec {
				want += v
			}
		}
		objs[i] = rt.NewDataAt(home, vec) // skew: everything on one locality
	}
	return objs, want
}

// sumBurst hammers every object with iters rounds of concurrent
// split-phase sum calls, verifying each result, and returns the mean
// call latency in microseconds.
func sumBurst(rt *parallex.Runtime, home int, objs []parallex.GID, iters int, want float64, tag string) float64 {
	start := time.Now()
	for it := 0; it < iters; it++ {
		futs := make([]*parallex.Future, len(objs))
		for k, obj := range objs {
			futs[k] = rt.CallFrom(home, obj, "pxnode.sum", nil)
		}
		for k, fut := range futs {
			v, err := fut.Get()
			if err != nil {
				die(rt, "pxnode: migrate burst %s call %d: %v", tag, k, err)
			}
			if got := v.(float64); got != want {
				die(rt, "pxnode: migrate burst %s object %d sum %v, want %v", tag, k, got, want)
			}
		}
	}
	calls := iters * len(objs)
	mean := float64(time.Since(start).Microseconds()) / float64(calls)
	fmt.Printf("pxnode: migrate burst %-9s %d calls, %.1fµs mean\n", tag, calls, mean)
	return mean
}

// ringPlacement resolves where every object currently lives and renders
// a locality→count histogram.
func ringPlacement(rt *parallex.Runtime, objs []parallex.GID) (map[int]int, string) {
	where := make(map[int]int)
	for _, obj := range objs {
		loc, _, err := rt.AGAS().Locate(obj)
		if err != nil {
			die(rt, "pxnode: locate %v: %v", obj, err)
		}
		where[loc]++
	}
	var sb strings.Builder
	for loc := 0; loc < rt.Localities(); loc++ {
		if n := where[loc]; n > 0 {
			fmt.Fprintf(&sb, " L%d:%d", loc, n)
		}
	}
	return where, strings.TrimSpace(sb.String())
}

// runMigrate rebalances a skewed ring with live migration: the objects
// from newSkewedRing are hammered by concurrent split-phase sum calls.
// After measuring the skewed burst the driver migrates each object to
// its own locality — crossing nodes, with parcels in flight — and
// measures the same burst against the balanced placement. This is the
// manual-placement baseline that migrate-auto must approach without any
// explicit Migrate call.
func runMigrate(rt *parallex.Runtime, home, iters int) {
	objs, want := newSkewedRing(rt, home)
	sumBurst(rt, home, objs, iters, want, "skewed")
	migStart := time.Now()
	for k, obj := range objs {
		if err := rt.Migrate(obj, k); err != nil {
			die(rt, "pxnode: migrate object %d to L%d: %v", k, k, err)
		}
	}
	fmt.Printf("pxnode: rebalanced %d objects across %d localities in %v\n",
		len(objs), rt.Localities(), time.Since(migStart))
	sumBurst(rt, home, objs, iters, want, "balanced")
}

// runMigrateAuto is the self-balancing twin of runMigrate: same skewed
// ring, same bursts, but the driver never calls Migrate. Between the
// bursts it only keeps uniform load flowing and polls the placement
// until the per-node balancers — fed by their own arrival sampling and
// cross-node load reports — have spread the ring, then measures the
// balanced burst against the placement the policy chose.
func runMigrateAuto(rt *parallex.Runtime, home, iters int) {
	objs, want := newSkewedRing(rt, home)
	n := len(objs)
	skewed := sumBurst(rt, home, objs, iters, want, "skewed")

	// Sustain load until the balancer breaks the skew: converged once the
	// objects occupy at least minSpread distinct localities and the home
	// locality has shed at least half of them. The driver never names a
	// placement — only the sampled arrivals do.
	minSpread := rt.Localities()
	if n < minSpread {
		minSpread = n
	}
	if minSpread > 3 {
		minSpread = 3
	}
	waitStart := time.Now()
	deadline := waitStart.Add(60 * time.Second)
	rounds := 0
	for {
		futs := make([]*parallex.Future, 0, n*8)
		for _, obj := range objs {
			for k := 0; k < 8; k++ {
				futs = append(futs, rt.CallFrom(home, obj, "pxnode.sum", nil))
			}
		}
		for _, fut := range futs {
			if _, err := fut.Get(); err != nil {
				die(rt, "pxnode: migrate-auto sustain: %v", err)
			}
		}
		rounds++
		where, hist := ringPlacement(rt, objs)
		if len(where) >= minSpread && where[home] <= n/2 {
			snap := rt.Metrics().Snapshot()
			fmt.Printf("pxnode: balancer spread %d objects in %v (%d sustain rounds): %s\n",
				n, time.Since(waitStart).Round(time.Millisecond), rounds, hist)
			fmt.Printf("pxnode: node 0 balance telemetry: ticks %.0f moves %.0f planned %.0f skipped(hyst %.0f rate %.0f cool %.0f)\n",
				snap["px.balance.ticks"], snap["px.balance.moves"], snap["px.balance.planned"],
				snap["px.balance.skipped_hysteresis"], snap["px.balance.skipped_ratelimit"],
				snap["px.balance.skipped_cooldown"])
			break
		}
		if time.Now().After(deadline) {
			die(rt, "pxnode: balancer never broke the skew: placement %s after %d rounds (is -balance set on EVERY node?)", hist, rounds)
		}
	}

	balanced := sumBurst(rt, home, objs, iters, want, "balanced")
	if balanced > 0 {
		fmt.Printf("pxnode: migrate-auto speedup %.2fx (skewed %.1fµs -> balanced %.1fµs per call)\n",
			skewed/balanced, skewed, balanced)
	}
}

// runReduceLCO runs the distributed-LCO flavor of the all-to-one
// collective: each locality contributes its rank into its node's leaf
// reduction, the leaves feed the AGAS-homed root, and the driver awaits
// the root — one cross-node frame per node per round instead of one per
// locality.
func runReduceLCO(rt *parallex.Runtime, home, iters int) {
	n := rt.Localities()
	want := int64(n * (n - 1) / 2)
	counts := make([]int, rt.Nodes())
	for node := range counts {
		counts[node] = rt.NodeRange(node).Count()
	}
	for i := 0; i < iters; i++ {
		id := fmt.Sprintf("pxnode-reduce-%d", i)
		red, err := collect.NewReduce(rt, home, id, counts, parallex.ReduceSum, int64(0))
		if err != nil {
			die(rt, "pxnode: reduce-lco round %d: %v", i, err)
		}
		res := red.Result(home)
		args := parallex.NewArgs().String(id).Encode()
		for loc := 0; loc < n; loc++ {
			rt.SendFrom(home, parallex.NewParcel(rt.LocalityGID(loc), "pxnode.contrib-rank", args))
		}
		v, err := res.Get()
		if err != nil {
			die(rt, "pxnode: reduce-lco round %d: %v", i, err)
		}
		if got := v.(int64); got != want {
			die(rt, "pxnode: reduce-lco round %d = %d, want %d", i, got, want)
		}
		if err := red.Free(home); err != nil {
			die(rt, "pxnode: reduce-lco round %d teardown: %v", i, err)
		}
	}
	fmt.Printf("pxnode: reduce-lco %d rounds over a %d-leaf gate tree (rank sum %d)\n",
		iters, rt.Nodes(), want)
}

// runBarrier runs machine-wide barrier rounds over distributed gate
// trees: every locality arrives and suspends until the release fans back
// out; the round is complete when every arrive action has resumed.
func runBarrier(rt *parallex.Runtime, home, iters int) {
	n := rt.Localities()
	counts := make([]int, rt.Nodes())
	for node := range counts {
		counts[node] = rt.NodeRange(node).Count()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		id := fmt.Sprintf("pxnode-barrier-%d", i)
		bar, err := collect.NewBarrier(rt, home, id, counts)
		if err != nil {
			die(rt, "pxnode: barrier round %d: %v", i, err)
		}
		rel := bar.Released(home)
		args := parallex.NewArgs().String(id).Encode()
		futs := make([]*parallex.Future, n)
		for loc := 0; loc < n; loc++ {
			futs[loc] = rt.CallFrom(home, rt.LocalityGID(loc), "pxnode.arrive", args)
		}
		// Every arrive action resumes only after the machine-wide release,
		// so resolved calls witness the whole round.
		for loc, fut := range futs {
			if _, err := fut.Get(); err != nil {
				die(rt, "pxnode: barrier round %d locality %d: %v", i, loc, err)
			}
		}
		if _, err := rel.Get(); err != nil {
			die(rt, "pxnode: barrier round %d release: %v", i, err)
		}
		if err := bar.Free(home); err != nil {
			die(rt, "pxnode: barrier round %d teardown: %v", i, err)
		}
	}
	fmt.Printf("pxnode: barrier %d rounds over %d localities, %.1fµs mean round\n",
		iters, n, float64(time.Since(start).Microseconds())/float64(iters))
}

// runReduce fans a rank query out to every locality, funnelling the
// answers into one Reduce LCO — a machine-wide all-to-one collective.
func runReduce(rt *parallex.Runtime, home, iters int) {
	n := rt.Localities()
	want := int64(n * (n - 1) / 2)
	for i := 0; i < iters; i++ {
		rgid, red := rt.NewReduceAt(home, n, int64(0), func(acc, v any) any {
			return acc.(int64) + v.(int64)
		})
		for loc := 0; loc < n; loc++ {
			p := parallex.NewParcel(rt.LocalityGID(loc), "pxnode.rank", nil,
				parallex.Continuation{Target: rgid, Action: parallex.ActionLCOContribute})
			rt.SendFrom(home, p)
		}
		v, err := red.Out().Get()
		if err != nil {
			die(rt, "pxnode: reduce round %d: %v", i, err)
		}
		if got := v.(int64); got != want {
			die(rt, "pxnode: reduce round %d = %d, want %d", i, got, want)
		}
		rt.FreeObject(rgid)
	}
	fmt.Printf("pxnode: reduce %d rounds over %d localities (rank sum %d)\n", iters, n, want)
}
