// Command benchdiff turns `go test -bench` output into the repo's
// machine-readable BENCH_<date>.json record and gates CI on it: it fails
// (exit 1) when any benchmark regresses more than -threshold against a
// committed baseline suite, or when a required speedup ratio between two
// benchmarks in the current run is not met.
//
// Typical CI use:
//
//	go test -bench . -benchmem -benchtime 200ms -count 3 -run '^$' | tee bench.txt
//	go run ./cmd/benchdiff -parse bench.txt -out BENCH_$(date -u +%F).json \
//	    -baseline BENCH_baseline.json -threshold 0.25 \
//	    -speedup base=SchedPostDispatchMutex,opt=SchedPostDispatchDeques,min=2 \
//	    -speedup base=WireCoalesceBatch,opt=WireWritevBatch,min=1.2 \
//	    -allocdrop SchedParcelFlood=0.5,SchedParcelPingPong=0.5 \
//	    -require WireWritevBatch,WireShardedFanout,WireSameHost
//
// -speedup is repeatable; each instance is an independent in-run gate.
// -require fails the run when a named benchmark is absent from it (or
// from the baseline, when one is given): a misspelled -bench regex or a
// silently skipped benchmark otherwise passes every gate vacuously.
//
// Absolute ns/op baselines are machine-class dependent: refresh
// BENCH_baseline.json (commit the -out file) whenever the CI runner class
// changes. The -speedup gate compares two benchmarks from the same run, so
// it is machine-independent — and so is -allocdrop: allocs/op is a
// deterministic property of the code, so the allocation gates hold across
// machine classes where the ns/op check would be noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchio"
)

func main() {
	parse := flag.String("parse", "", "go test -bench output file to parse ('-' for stdin)")
	out := flag.String("out", "", "write the parsed suite as BENCH json to this path")
	baseline := flag.String("baseline", "", "baseline BENCH json to compare against")
	threshold := flag.Float64("threshold", 0.25, "allowed ns/op regression fraction vs baseline")
	var speedups multiFlag
	flag.Var(&speedups, "speedup", "required ratio, e.g. base=NameA,opt=NameB,min=2: ns/op(A) >= min*ns/op(B); repeatable")
	allocdrop := flag.String("allocdrop", "", "required allocs/op drops vs baseline, e.g. NameA=0.5,NameB=0.5: allocs(NameA) <= 0.5*baseline")
	require := flag.String("require", "", "comma-separated benchmark names that must be present in this run (and in -baseline when given)")
	flag.Parse()

	if *parse == "" {
		fatal("benchdiff: -parse is required")
	}
	in := os.Stdin
	if *parse != "-" {
		f, err := os.Open(*parse)
		if err != nil {
			fatal("benchdiff: %v", err)
		}
		defer f.Close()
		in = f
	}
	suite, err := benchio.ParseGoBench(in)
	if err != nil {
		fatal("benchdiff: parse: %v", err)
	}
	if len(suite.Benchmarks) == 0 {
		fatal("benchdiff: no benchmark lines found in %s", *parse)
	}
	fmt.Printf("benchdiff: parsed %d benchmarks (%s, %d cpus)\n",
		len(suite.Benchmarks), suite.GoVersion, suite.CPUs)

	if *out != "" {
		if err := suite.WriteFile(*out); err != nil {
			fatal("benchdiff: write %s: %v", *out, err)
		}
		fmt.Printf("benchdiff: wrote %s\n", *out)
	}

	failed := false
	if *baseline != "" {
		base, err := benchio.ReadFile(*baseline)
		if err != nil {
			fatal("benchdiff: baseline: %v", err)
		}
		regs, missing := benchio.Compare(base, suite, *threshold)
		// A benchmark that vanished from the run is a gate failure on any
		// machine: it means a rename or a silent drop, and the baseline
		// must be refreshed deliberately.
		for _, name := range missing {
			fmt.Printf("benchdiff: MISSING %s is in %s but not in this run\n", name, *baseline)
			failed = true
		}
		switch {
		case !benchio.SameMachineClass(base, suite):
			// Absolute ns/op across machine classes is noise; the
			// machine-independent -speedup gate below still applies.
			fmt.Printf("benchdiff: baseline %s is from a different machine class (%s/%d cpus vs %s/%d cpus); "+
				"absolute regression check skipped — refresh BENCH_baseline.json from this run's artifact\n",
				*baseline, base.GoVersion, base.CPUs, suite.GoVersion, suite.CPUs)
		case len(regs) > 0:
			for _, r := range regs {
				fmt.Printf("benchdiff: REGRESSION %-36s %10.1f -> %10.1f ns/op (%.2fx, limit %.2fx)\n",
					r.Name, r.Baseline, r.Current, r.Ratio, 1+*threshold)
				failed = true
			}
		default:
			fmt.Printf("benchdiff: no regressions beyond %+.0f%% vs %s\n", *threshold*100, *baseline)
		}
		// Tail-latency gate: p99 is wall-clock like ns/op, so it rides the
		// same machine-class guard and the same -threshold fraction.
		if benchio.SameMachineClass(base, suite) {
			if lregs := benchio.CompareLatency(base, suite, *threshold); len(lregs) > 0 {
				for _, r := range lregs {
					fmt.Printf("benchdiff: LATENCY REGRESSION %-28s %10.1f -> %10.1f p99-ns (%.2fx, limit %.2fx)\n",
						r.Name, r.Baseline, r.Current, r.Ratio, 1+*threshold)
					failed = true
				}
			} else {
				fmt.Printf("benchdiff: no p99 latency regressions beyond %+.0f%% vs %s\n", *threshold*100, *baseline)
			}
		}
	}

	if *require != "" {
		// Presence gate: a new benchmark CI depends on must actually run —
		// a misspelled -bench regex or a silently skipped benchmark
		// otherwise passes every other gate vacuously. When a baseline is
		// given the name must appear there too, forcing the deliberate
		// baseline refresh that admits the benchmark to the absolute
		// regression check.
		var base *benchio.Suite
		if *baseline != "" {
			b, err := benchio.ReadFile(*baseline)
			if err != nil {
				fatal("benchdiff: baseline: %v", err)
			}
			base = b
		}
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := suite.Find(name); !ok {
				fmt.Printf("benchdiff: REQUIRED %s missing from this run\n", name)
				failed = true
			}
			if base != nil {
				if _, ok := base.Find(name); !ok {
					fmt.Printf("benchdiff: REQUIRED %s missing from %s — refresh the baseline\n", name, *baseline)
					failed = true
				}
			}
		}
	}

	for _, spec := range speedups {
		baseName, optName, min, err := parseSpeedup(spec)
		if err != nil {
			fatal("benchdiff: %v", err)
		}
		b, okB := suite.Find(baseName)
		o, okO := suite.Find(optName)
		switch {
		case !okB || !okO:
			fmt.Printf("benchdiff: SPEEDUP GATE missing benchmarks %q/%q in this run\n", baseName, optName)
			failed = true
		case o.NsPerOp <= 0 || b.NsPerOp/o.NsPerOp < min:
			fmt.Printf("benchdiff: SPEEDUP GATE %s/%s = %.2fx, want >= %.2fx\n",
				baseName, optName, b.NsPerOp/o.NsPerOp, min)
			failed = true
		default:
			fmt.Printf("benchdiff: speedup %s/%s = %.2fx (>= %.2fx ok)\n",
				baseName, optName, b.NsPerOp/o.NsPerOp, min)
		}
	}

	if *allocdrop != "" {
		if *baseline == "" {
			fatal("benchdiff: -allocdrop needs -baseline")
		}
		base, err := benchio.ReadFile(*baseline)
		if err != nil {
			fatal("benchdiff: baseline: %v", err)
		}
		gates, err := parseAllocDrop(*allocdrop)
		if err != nil {
			fatal("benchdiff: %v", err)
		}
		for _, gate := range gates {
			b, okB := base.Find(gate.name)
			cur, okC := suite.Find(gate.name)
			switch {
			case !okB:
				fmt.Printf("benchdiff: ALLOC GATE %s missing from %s — refresh the baseline\n",
					gate.name, *baseline)
				failed = true
			case !okC:
				fmt.Printf("benchdiff: ALLOC GATE %s missing from this run\n", gate.name)
				failed = true
			case !cur.AllocsMeasured:
				// 0-because-unmeasured must not pass as 0-allocations.
				fmt.Printf("benchdiff: ALLOC GATE %s has no allocs/op in this run — is -benchmem missing?\n",
					gate.name)
				failed = true
			case b.AllocsPerOp <= 0:
				// A zero-alloc baseline (the JSON omits the field for 0 —
				// indistinguishable from an un-measured one) tightens the
				// gate to its fixed point: the current run must also be
				// allocation-free. This keeps "refresh the baseline from
				// the CI artifact" safe after the pooled path hits zero.
				if cur.AllocsPerOp > 0 {
					fmt.Printf("benchdiff: ALLOC GATE %-28s baseline is 0 allocs/op, this run has %.1f\n",
						gate.name, cur.AllocsPerOp)
					failed = true
				} else {
					fmt.Printf("benchdiff: alloc drop %-28s 0 allocs/op held\n", gate.name)
				}
			case cur.AllocsPerOp > gate.frac*b.AllocsPerOp:
				fmt.Printf("benchdiff: ALLOC GATE %-28s %6.1f -> %6.1f allocs/op, want <= %.1f (%.0f%% of baseline)\n",
					gate.name, b.AllocsPerOp, cur.AllocsPerOp, gate.frac*b.AllocsPerOp, gate.frac*100)
				failed = true
			default:
				fmt.Printf("benchdiff: alloc drop %-28s %6.1f -> %6.1f allocs/op (<= %.0f%% of baseline ok)\n",
					gate.name, b.AllocsPerOp, cur.AllocsPerOp, gate.frac*100)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// allocGate is one -allocdrop requirement: the named benchmark's current
// allocs/op must not exceed frac of its baseline allocs/op.
type allocGate struct {
	name string
	frac float64
}

// parseAllocDrop decodes "NameA=0.5,NameB=0.25".
func parseAllocDrop(s string) ([]allocGate, error) {
	var gates []allocGate
	for _, part := range strings.Split(s, ",") {
		name, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -allocdrop element %q", part)
		}
		frac, err := strconv.ParseFloat(v, 64)
		if err != nil || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("bad -allocdrop fraction %q (want (0,1])", v)
		}
		gates = append(gates, allocGate{name: name, frac: frac})
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("-allocdrop given but empty")
	}
	return gates, nil
}

// parseSpeedup decodes "base=A,opt=B,min=2.0".
func parseSpeedup(s string) (base, opt string, min float64, err error) {
	min = 1
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return "", "", 0, fmt.Errorf("bad -speedup element %q", part)
		}
		switch k {
		case "base":
			base = v
		case "opt":
			opt = v
		case "min":
			if min, err = strconv.ParseFloat(v, 64); err != nil {
				return "", "", 0, fmt.Errorf("bad -speedup min %q", v)
			}
		default:
			return "", "", 0, fmt.Errorf("unknown -speedup key %q", k)
		}
	}
	if base == "" || opt == "" {
		return "", "", 0, fmt.Errorf("-speedup needs base= and opt=")
	}
	return base, opt, min, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
