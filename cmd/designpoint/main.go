// Command designpoint regenerates the paper's Figure 1 (the Gilgamesh II
// architecture diagram) and the §3.2 design-point table from the
// architecture model, checking every derived figure against the values the
// paper quotes. Exit status is nonzero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gilgamesh"
)

func main() {
	chips := flag.Int("chips", 0, "override compute chip count (0 = paper value)")
	flag.Parse()

	d := gilgamesh.Default2020()
	if *chips > 0 {
		d.ComputeChips = *chips
	}

	fmt.Println(gilgamesh.RenderFigure1(d))
	fmt.Println(d.Report())

	for _, row := range d.Check() {
		if !row.OK {
			fmt.Fprintf(os.Stderr, "design point check failed: %s (paper %s, model %s)\n",
				row.Name, row.Paper, row.Model)
			os.Exit(1)
		}
	}
}
