// Command linkcheck validates intra-repository links in markdown files.
// It extracts inline links and images ([text](target)), resolves every
// non-external target relative to the containing file, and fails if any
// points at a file that does not exist. Fragments are checked too: both
// in-page links (#section) and cross-file fragments (file.md#section)
// must name a real heading anchor, computed the way GitHub renders
// them (lowercased, punctuation stripped, spaces to hyphens, duplicate
// headings suffixed -1, -2, ...). External schemes (http, https,
// mailto) are skipped — the CI docs job is about the repo's own
// documents never dangling, not about the internet being up.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md ARCHITECTURE.md EXPERIMENTS.md
//	go run ./cmd/linkcheck            # defaults to every *.md in cwd
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Nested brackets and multi-line targets are out of
// scope — the repo's docs do not use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; the anchor comes from the text.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// headingLinkRe strips inline link syntax inside a heading, keeping the
// visible text ([text](url) renders — and slugs — as just "text").
var headingLinkRe = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// external reports whether target leaves the repository.
func external(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}

// slugify turns one heading's text into its GitHub anchor ID: markdown
// decoration dropped, lowercased, everything except letters, digits,
// hyphens and underscores removed, spaces becoming hyphens.
func slugify(heading string) string {
	s := headingLinkRe.ReplaceAllString(heading, "$1")
	s = strings.NewReplacer("`", "", "*", "", "~~", "").Replace(s)
	s = strings.ToLower(strings.TrimSpace(s))
	var b strings.Builder
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorCache holds each file's heading anchors; files are parsed once
// no matter how many links point into them.
var anchorCache = map[string]map[string]bool{}

// anchorsOf returns the set of valid fragment anchors in a markdown
// file: one slug per heading outside fenced code blocks, with GitHub's
// -1/-2 suffixes for repeated headings.
func anchorsOf(path string) (map[string]bool, error) {
	if set, ok := anchorCache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := seen[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		seen[slug]++
	}
	anchorCache[path] = set
	return set, nil
}

// checkAnchor reports whether fragment names a heading in file.
func checkAnchor(file, fragment string) (bool, error) {
	set, err := anchorsOf(file)
	if err != nil {
		return false, err
	}
	return set[strings.ToLower(fragment)], nil
}

// checkFile returns one message per broken intra-repo link in path.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if external(target) {
				continue
			}
			// Split the optional fragment off the file half.
			fragment := ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target, fragment = target[:i], target[i+1:]
			}
			resolved := path // in-page fragment: the containing file
			if target != "" {
				resolved = filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s)", path, lineNo+1, m[1], resolved))
					continue
				}
			}
			// The fragment half must name a real heading anchor — but only
			// markdown renders headings, so only .md targets are checked.
			if fragment == "" || !strings.HasSuffix(resolved, ".md") {
				continue
			}
			ok, err := checkAnchor(resolved, fragment)
			if err != nil {
				return nil, err
			}
			if !ok {
				broken = append(broken, fmt.Sprintf("%s:%d: broken anchor %q (no heading %q in %s)",
					path, lineNo+1, m[1], fragment, resolved))
			}
		}
	}
	return broken, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: linkcheck [file.md ...]\nChecks intra-repo markdown links, including #heading anchors; defaults to *.md in the current directory.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "linkcheck: no markdown files found")
			os.Exit(2)
		}
	}
	failed := false
	checked := 0
	for _, f := range files {
		broken, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			failed = true
			continue
		}
		checked++
		for _, msg := range broken {
			fmt.Fprintln(os.Stderr, "linkcheck: "+msg)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files clean\n", checked)
}
