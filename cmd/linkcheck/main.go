// Command linkcheck validates intra-repository links in markdown files.
// It extracts inline links and images ([text](target)), resolves every
// non-external target relative to the containing file, and fails if any
// points at a file that does not exist. External schemes (http, https,
// mailto) and pure in-page fragments (#section) are skipped — the CI
// docs job is about the repo's own documents never dangling, not about
// the internet being up.
//
// Usage:
//
//	go run ./cmd/linkcheck README.md ARCHITECTURE.md EXPERIMENTS.md
//	go run ./cmd/linkcheck            # defaults to every *.md in cwd
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Nested brackets and multi-line targets are out of
// scope — the repo's docs do not use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// external reports whether target leaves the repository.
func external(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}

// checkFile returns one message per broken intra-repo link in path.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if external(target) || strings.HasPrefix(target, "#") {
				continue
			}
			// Drop a trailing fragment; the file half must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s)", path, lineNo+1, m[1], resolved))
			}
		}
	}
	return broken, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: linkcheck [file.md ...]\nChecks intra-repo markdown links; defaults to *.md in the current directory.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "linkcheck: no markdown files found")
			os.Exit(2)
		}
	}
	failed := false
	checked := 0
	for _, f := range files {
		broken, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			failed = true
			continue
		}
		checked++
		for _, msg := range broken {
			fmt.Fprintln(os.Stderr, "linkcheck: "+msg)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files clean\n", checked)
}
