package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Top Title":                   "top-title",
		"A `code` & Heading!":         "a-code--heading",
		"px.balance.* metrics":        "pxbalance-metrics",
		"Hot paths (and their costs)": "hot-paths-and-their-costs",
		"under_score stays":           "under_score-stays",
		"[linked](x.md) heading":      "linked-heading",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnchorsOfDedupAndFences(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.md")
	md := "# Title\n## Dup\n## Dup\n```\n# not a heading\n```\n## Tail\n"
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := anchorsOf(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"title", "dup", "dup-1", "tail"} {
		if !set[want] {
			t.Errorf("anchor %q missing from %v", want, set)
		}
	}
	if set["not-a-heading"] {
		t.Error("heading inside a code fence produced an anchor")
	}
}

func TestCheckFileAnchors(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.md")
	b := filepath.Join(dir, "b.md")
	md := "# One\nsee [in](#one), [cross](b.md#two), [bad](#zzz), [badcross](b.md#zzz)\n"
	if err := os.WriteFile(a, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("## Two\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := checkFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("want 2 broken anchors, got %v", broken)
	}
}
