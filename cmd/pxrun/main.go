// Command pxrun runs one of the bundled workloads on a configurable
// ParalleX machine from the command line — the operational entry point for
// exploring the runtime outside the benchmark harness.
//
// Usage:
//
//	pxrun -workload nbody|bfs|pic|amr|stencil [-p N] [-net ideal|crossbar|torus|vortex] [-size N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	parallex "repro"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "nbody", "nbody | bfs | pic | amr | stencil")
	locs := flag.Int("p", 4, "localities")
	netName := flag.String("net", "crossbar", "ideal | crossbar | torus | vortex")
	size := flag.Int("size", 0, "problem size (0 = workload default)")
	workers := flag.Int("workers", 4, "workers per locality")
	stealing := flag.Bool("steal", true, "enable work stealing")
	flag.Parse()

	var net parallex.NetworkModel
	p := parallex.DefaultNetworkParams()
	switch *netName {
	case "ideal":
		net = parallex.IdealNetwork(*locs)
	case "crossbar":
		net = parallex.CrossbarNetwork(*locs, p)
	case "torus":
		net = parallex.TorusNetwork(*locs, p)
	case "vortex":
		net = parallex.DataVortexNetwork(*locs, p, 0.2)
	default:
		log.Fatalf("unknown network %q", *netName)
	}

	rt := parallex.New(parallex.Config{
		Localities:         *locs,
		WorkersPerLocality: *workers,
		Net:                net,
		Stealing:           *stealing,
	})
	defer rt.Shutdown()

	start := time.Now()
	switch *workload {
	case "nbody":
		n := defaultSize(*size, 4000)
		bodies := workloads.GenerateClusteredBodies(n, 0.4, 1)
		ax, ay := workloads.NBodyForcesParalleX(rt, bodies, 0.5, *locs*16)
		var mag float64
		for i := range ax {
			mag += math.Hypot(ax[i], ay[i])
		}
		fmt.Printf("nbody: %d bodies, mean |a| = %.4f\n", n, mag/float64(n))
	case "bfs":
		n := defaultSize(*size, 20000)
		workloads.RegisterGraphActions(rt)
		g := workloads.GenerateGraph(n, 6, 1)
		dg := workloads.NewDistGraph(rt, g)
		dist := dg.BFSParalleX(0)
		fmt.Printf("bfs: %d vertices, %d edges, eccentricity %d\n",
			g.N, g.Edges(), workloads.MaxDist(dist))
	case "pic":
		n := defaultSize(*size, 20000)
		sim := workloads.NewPIC(n, 64, 1)
		for s := 0; s < 100; s++ {
			workloads.PICStepParalleX(rt, sim, *locs*8, 0.05)
		}
		rt.Wait()
		fmt.Printf("pic: %d particles, field energy %.3e after 100 steps\n",
			n, sim.FieldEnergy())
	case "amr":
		f := workloads.SpikyFunction(0.5, 0.01)
		root := workloads.BuildAMR(f, 1e-5, 14)
		integral := workloads.IntegrateAMRParalleX(rt, f, root)
		fmt.Printf("amr: %d leaves (depth %d), integral %.8f\n",
			len(root.Leaves()), root.Depth(), integral)
	case "stencil":
		n := defaultSize(*size, 4097)
		field := workloads.JacobiParalleX(rt, workloads.JacobiInitial(n), 2000, *locs*4)
		fmt.Printf("stencil: %d cells, residual %.2e after 2000 dataflow sweeps\n",
			n, workloads.JacobiResidual(field))
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	rt.Wait()
	fmt.Printf("elapsed %v on %d localities (%s network)\n", time.Since(start), *locs, *netName)
	fmt.Printf("stats: %v\n", rt.SLOW())
}

func defaultSize(requested, fallback int) int {
	if requested > 0 {
		return requested
	}
	return fallback
}
