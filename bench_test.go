package parallex_test

// One benchmark per experiment of the reproduction (DESIGN.md §4):
// E1/E2 regenerate the paper's Figure 1 and §3.2 design-point table;
// E3–E10 and A1–A4 exercise the model's quantitative claims. Each
// benchmark reports the experiment's headline figure as a custom metric so
// `go test -bench . -benchmem` regenerates the whole evaluation. The same
// code paths print full tables via cmd/pxbench.

import (
	"testing"
	"time"

	parallex "repro"
	"repro/internal/echo"
	"repro/internal/experiments"
	"repro/internal/gilgamesh"
	"repro/internal/litlx"
	"repro/internal/locality"
	"repro/internal/parcel"
	"repro/internal/schedbench"
	"repro/internal/workloads"
)

// --- scheduler and wire microbenchmarks (bodies in internal/schedbench,
// shared with cmd/pxbench -sched; CI gates on these via cmd/benchdiff) ---

// BenchmarkSchedPostDispatchMutex is the retired single-mutex scheduler
// under an 8-producer flood on 8 workers: the baseline the deque scheduler
// is required to beat by >= 2x.
func BenchmarkSchedPostDispatchMutex(b *testing.B) {
	schedbench.PostDispatchMutex(b, 8, 8)
}

// BenchmarkSchedPostDispatchDeques is the same flood on the per-worker
// stealing deque scheduler.
func BenchmarkSchedPostDispatchDeques(b *testing.B) {
	schedbench.PostDispatchDeques(b, 8, 8)
}

// BenchmarkSchedPingPong bounces one task chain between two one-worker
// localities: post-to-dispatch latency with no parallelism to hide it.
func BenchmarkSchedPingPong(b *testing.B) {
	schedbench.PingPong(b)
}

// BenchmarkSchedStealImbalance floods one locality while three idle
// localities steal from it.
func BenchmarkSchedStealImbalance(b *testing.B) {
	schedbench.StealImbalance(b, 3)
}

// BenchmarkSchedFanOutFanIn forks 64 threads across 4 localities and
// joins them through an LCO AndGate, per iteration.
func BenchmarkSchedFanOutFanIn(b *testing.B) {
	schedbench.FanOutFanIn(b, 64)
}

// BenchmarkSchedParcelFlood floods nop parcels across two localities
// through the full post/route/encode/decode/dispatch path. Its allocs/op
// is CI-gated: the pooled hot path must stay at least 50% below the
// committed baseline (cmd/benchdiff -allocdrop).
func BenchmarkSchedParcelFlood(b *testing.B) {
	schedbench.ParcelFlood(b, 4)
}

// BenchmarkSchedBalancerOff is the parcel flood with every adaptive-
// balancer knob set but BalanceInterval zero — balancing staged, not
// enabled. CI pins it at 0 allocs/op (cmd/benchdiff -allocdrop against
// the committed zero-alloc baseline): the balancer's sampling branch on
// the delivery path must cost nothing while dormant.
func BenchmarkSchedBalancerOff(b *testing.B) {
	schedbench.BalancerOff(b, 4)
}

// BenchmarkSchedParcelPingPong bounces one parcel rally between two
// localities: per-parcel latency and allocation with nothing to hide it.
// Also allocs/op-gated in CI.
func BenchmarkSchedParcelPingPong(b *testing.B) {
	schedbench.ParcelPingPong(b)
}

// BenchmarkWireRoundTrip isolates the parcel wire codec round trip as the
// runtime drives it (reusable buffers, pooled parcels).
func BenchmarkWireRoundTrip(b *testing.B) {
	schedbench.WireRoundTrip(b)
}

// BenchmarkTCPRing3 runs one continuation-chain lap around a 3-node TCP
// machine on loopback per iteration, exercising parcel batching end to
// end.
func BenchmarkTCPRing3(b *testing.B) {
	schedbench.TCPRing3(b)
}

// BenchmarkWireWritevBatch floods large frames through the transport's
// vectored write path (group-commit batches leave as one writev over the
// callers' frame slices). CI requires it to beat WireCoalesceBatch by
// >= 1.2x ns/op (cmd/benchdiff -speedup), making the gate
// machine-independent.
func BenchmarkWireWritevBatch(b *testing.B) {
	schedbench.WireWritevBatch(b)
}

// BenchmarkWireCoalesceBatch is the identical flood through the retained
// copy-and-coalesce write path: the in-run baseline for the writev gate.
func BenchmarkWireCoalesceBatch(b *testing.B) {
	schedbench.WireCoalesceBatch(b)
}

// BenchmarkWireShardedFanout runs the flood across four lanes per peer —
// the sharded-connection configuration the runtime drives with
// destination-GID affinity hashing.
func BenchmarkWireShardedFanout(b *testing.B) {
	schedbench.WireShardedFanout(b)
}

// BenchmarkWireSameHost runs the flood over the same-host Unix-domain
// fabric the transport auto-selects for colocated processes.
func BenchmarkWireSameHost(b *testing.B) {
	schedbench.WireSameHost(b)
}

// BenchmarkSchedMigrate bounces one object between two localities with
// four chasing call streams: the cost of a live migration under fire
// (fence quiesce, parking, directory commit, cache repoint).
func BenchmarkSchedMigrate(b *testing.B) {
	schedbench.Migrate(b, 4)
}

// BenchmarkDistFutureRoundTrip measures one distributed-future
// synchronization across a two-node machine: create, remote set over an
// fLCOSet frame, acknowledgement, and the waiter fire back. CI gates its
// regression against BENCH_baseline.json.
func BenchmarkDistFutureRoundTrip(b *testing.B) {
	schedbench.DistFutureRoundTrip(b)
}

// BenchmarkServeOpenLoop drives the sharded KV service with the
// open-loop generator on an in-process 4-locality machine and reports the
// serving latency profile as p50-ns/p99-ns/p999-ns custom units — the
// px-bench/v1 latency fields CI's benchdiff gate pins against
// BENCH_baseline.json (p99 may not regress >25%).
func BenchmarkServeOpenLoop(b *testing.B) {
	rt := parallex.New(parallex.Config{
		Localities:         4,
		WorkersPerLocality: 2,
		Register:           workloads.RegisterKVService,
	})
	defer rt.Shutdown()
	workloads.InstallKVShards(rt)
	// Warm the parcel pools and worker queues before measuring: the cold
	// first requests otherwise dominate the tail and triple the p99's
	// run-to-run spread.
	workloads.RunOpenLoop(rt, workloads.OpenLoopConfig{Rate: 5000, Requests: 200})
	b.ResetTimer()
	// The arrival rate sits well under even a single-core machine's
	// service capacity: the profile then measures dispatch latency, not
	// queueing noise, which keeps the CI gate's variance low.
	res := workloads.RunOpenLoop(rt, workloads.OpenLoopConfig{
		Rate:     5000,
		Requests: b.N,
		Timeout:  10 * time.Second,
	})
	b.StopTimer()
	if res.Lost != 0 || res.Failed != 0 || res.Completed != res.Issued {
		b.Fatalf("lost=%d failed=%d completed=%d/%d", res.Lost, res.Failed, res.Completed, res.Issued)
	}
	rec := res.Record("serve")
	b.ReportMetric(rec.P50Ns, "p50-ns")
	b.ReportMetric(rec.P99Ns, "p99-ns")
	b.ReportMetric(rec.P999Ns, "p999-ns")
}

// BenchmarkE1Figure1Architecture regenerates Figure 1 from the model.
func BenchmarkE1Figure1Architecture(b *testing.B) {
	var fig string
	for i := 0; i < b.N; i++ {
		fig = experiments.RunE1()
	}
	b.ReportMetric(float64(len(fig)), "figure-bytes")
}

// BenchmarkE2DesignPoint recomputes and checks the §3.2 design point.
func BenchmarkE2DesignPoint(b *testing.B) {
	d := gilgamesh.Default2020()
	ok := true
	for i := 0; i < b.N; i++ {
		for _, row := range d.Check() {
			ok = ok && row.OK
		}
	}
	if !ok {
		b.Fatal("design point check failed")
	}
	dv := d.Derive()
	b.ReportMetric(dv.SystemPeakFlops/1e18, "system-EF")
	b.ReportMetric(dv.ChipPeakFlops/1e12, "chip-TF")
}

// BenchmarkE3LatencyHiding reports the CSP/ParalleX makespan ratio for
// remote updates at 500µs latency.
func BenchmarkE3LatencyHiding(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rs := experiments.RunE3([]time.Duration{500 * time.Microsecond}, 4, 40, nil)
		ratio = float64(rs[0].CSP) / float64(rs[0].ParalleX)
	}
	b.ReportMetric(ratio, "csp/px")
}

// BenchmarkE4OverheadGranularity reports ParalleX efficiency at a 5ms
// grain and the measured per-task overhead.
func BenchmarkE4OverheadGranularity(b *testing.B) {
	var rs []experiments.E4Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE4([]time.Duration{5 * time.Millisecond}, 60, 4, 20*time.Microsecond)
	}
	b.ReportMetric(rs[0].PxEff, "px-efficiency")
	b.ReportMetric(float64(rs[0].PxPerTaskOvh.Nanoseconds()), "ovh-ns/task")
}

// BenchmarkE5Starvation reports the static-partition slowdown on the
// clustered N-body workload.
func BenchmarkE5Starvation(b *testing.B) {
	var rs []experiments.E5Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE5([]float64{0.6}, 3000, 4, locality.FIFO, true)
	}
	b.ReportMetric(float64(rs[0].CSPTime)/float64(rs[0].PxTime), "csp/px")
	b.ReportMetric(rs[0].CSPImbalance, "csp-imbalance")
}

// BenchmarkE6LCOvsBarrier reports the barrier/LCO makespan ratio on the
// skewed phased computation.
func BenchmarkE6LCOvsBarrier(b *testing.B) {
	var rs []experiments.E6Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE6([]float64{8}, 32, 10, 4, time.Millisecond)
	}
	b.ReportMetric(float64(rs[0].BarrierTime)/float64(rs[0].LCOTime), "barrier/lco")
}

// BenchmarkE7Percolation reports accelerator utilization with and without
// prestaging on the Gilgamesh chip DES.
func BenchmarkE7Percolation(b *testing.B) {
	var rs []experiments.E7Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE7([]float64{1.0}, []int{0, 4}, 500, 1000, 2)
	}
	b.ReportMetric(rs[0].Utilization, "util-demand")
	b.ReportMetric(rs[1].Utilization, "util-percolated")
	b.ReportMetric(rs[1].SpeedupVsDemand, "speedup")
}

// BenchmarkE8Echo reports the home-read vs echo-read cost ratio.
func BenchmarkE8Echo(b *testing.B) {
	var rs []experiments.E8Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE8([]time.Duration{300 * time.Microsecond}, 4, 40)
	}
	b.ReportMetric(float64(rs[0].HomeTime)/float64(rs[0].EchoTime), "home/echo")
}

// BenchmarkE9Scaling reports ParalleX strong-scaling speedup for the tree
// workload from 1 to 4 localities.
func BenchmarkE9Scaling(b *testing.B) {
	var rs []experiments.E9Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE9([]int{1, 4}, 600, 400, 4000)
	}
	for _, r := range rs {
		if r.Workload == "nbody" && r.P == 4 {
			b.ReportMetric(r.PxSpeed, "nbody-px-speedup@4")
		}
		if r.Workload == "pic" && r.P == 4 {
			b.ReportMetric(r.PxSpeed, "pic-px-speedup@4")
		}
	}
}

// BenchmarkE10Primitives reports the core primitive costs.
func BenchmarkE10Primitives(b *testing.B) {
	var rs []experiments.E10Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunE10(2000)
	}
	for _, r := range rs {
		switch r.Name {
		case "thread spawn+run":
			b.ReportMetric(float64(r.PerOp.Nanoseconds()), "spawn-ns")
		case "parcel local":
			b.ReportMetric(float64(r.PerOp.Nanoseconds()), "parcel-local-ns")
		case "parcel remote 1-way":
			b.ReportMetric(float64(r.PerOp.Nanoseconds()), "parcel-remote-ns")
		}
	}
}

// BenchmarkA1NetworkAblation reports the E3 advantage on the Data Vortex.
func BenchmarkA1NetworkAblation(b *testing.B) {
	var rs []experiments.A1Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunA1(4, 25, 200*time.Microsecond)
	}
	for _, r := range rs {
		if r.Network == "datavortex" {
			b.ReportMetric(float64(r.E3.CSP)/float64(r.E3.ParalleX), "vortex-csp/px")
		}
	}
}

// BenchmarkA2ContinuationAblation reports the win of migrating control
// over origin round trips for a 4-stage chain.
func BenchmarkA2ContinuationAblation(b *testing.B) {
	var rs []experiments.A2Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunA2([]int{4}, 4, 300*time.Microsecond, 3)
	}
	b.ReportMetric(rs[0].RoundTripWin, "without/with")
}

// BenchmarkA3SchedulerAblation reports FIFO+steal time on the skewed load.
func BenchmarkA3SchedulerAblation(b *testing.B) {
	var rs []experiments.A3Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunA3(2000, 4)
	}
	for _, r := range rs {
		if r.Scheduler == "fifo+steal" {
			b.ReportMetric(float64(r.PxTime.Milliseconds()), "steal-ms")
		}
	}
}

// BenchmarkA4SelfBalancingAblation reports how close policy-chosen
// placement comes to hand-tuned placement on the skewed ring, and the
// gap it closes over leaving the skew alone.
func BenchmarkA4SelfBalancingAblation(b *testing.B) {
	var rs []experiments.A4Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunA4(4, 4, 3, 8)
	}
	byMode := map[string]experiments.A4Result{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	if m := byMode["manual"].CallsPerSec; m > 0 {
		b.ReportMetric(byMode["balancer"].CallsPerSec/m, "bal/manual")
	}
	if off := byMode["off"].CallsPerSec; off > 0 {
		b.ReportMetric(byMode["balancer"].CallsPerSec/off, "bal/off")
	}
	b.ReportMetric(float64(byMode["balancer"].Moves), "moves")
}

// --- micro-benchmarks of the public API, for -benchmem numbers ---

// BenchmarkX1PIMvsLoadStore reports the in-memory-thread speedup at a
// network/row ratio of 5 (the §3.2 MIND claim).
func BenchmarkX1PIMvsLoadStore(b *testing.B) {
	var rs []experiments.X1Result
	for i := 0; i < b.N; i++ {
		rs = experiments.RunX1([]float64{5}, 16, 256, 8, 30)
	}
	b.ReportMetric(rs[0].Speedup, "ls/pim")
}

// BenchmarkParcelEncodeDecode measures the wire codec.
func BenchmarkParcelEncodeDecode(b *testing.B) {
	p := parallex.NewParcel(
		parallex.GID{Home: 1, Kind: parallex.KindData, Seq: 42},
		"bench.action",
		parallex.NewArgs().Int64(7).Float64(3.14).String("payload").Encode(),
		parallex.Continuation{Target: parallex.GID{Home: 0, Kind: parallex.KindLCO, Seq: 9}, Action: parallex.ActionLCOSet},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Encode(nil)
		if _, _, err := parcel.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFutureCycle measures future create/set/get.
func BenchmarkFutureCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := parallex.NewFuture()
		f.Set(i)
		f.Get()
	}
}

// BenchmarkSpawnWaitLocal measures thread spawn through the runtime.
func BenchmarkSpawnWaitLocal(b *testing.B) {
	rt := parallex.New(parallex.Config{Localities: 1, WorkersPerLocality: 4})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Spawn(0, func(*parallex.Context) {})
	}
	rt.Wait()
}

// BenchmarkBHTreeBuild measures quadtree construction (the sequential
// phase of the N-body workload).
func BenchmarkBHTreeBuild(b *testing.B) {
	bodies := workloads.GenerateClusteredBodies(2000, 0.4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workloads.BuildBHTree(bodies, 0.5)
	}
}

// BenchmarkPICSequentialStep measures one deposit/solve/push cycle.
func BenchmarkPICSequentialStep(b *testing.B) {
	p := workloads.NewPIC(10000, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(0.01)
	}
}

// BenchmarkChipSimStream measures the Gilgamesh DES itself.
func BenchmarkChipSimStream(b *testing.B) {
	chip := gilgamesh.ChipSim{FetchCycles: 300, ComputeCycles: 100, FetchChannels: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.RunStream(1000, 4)
	}
}

// BenchmarkAGASResolveCached measures the translation fast path.
func BenchmarkAGASResolveCached(b *testing.B) {
	rt := parallex.New(parallex.Config{Localities: 4})
	defer rt.Shutdown()
	g := rt.NewDataAt(2, "obj")
	svc := rt.AGAS()
	svc.ResolveCached(0, g) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.ResolveCached(0, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEchoLocalRead measures an echoed variable's read path.
func BenchmarkEchoLocalRead(b *testing.B) {
	rt := parallex.New(parallex.Config{Localities: 4})
	defer rt.Shutdown()
	echo.RegisterActions(rt)
	v, err := echo.NewVar(rt, int64(1), []int{0, 1, 2, 3}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.ReadAt(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMINDSimPIM measures the MIND DES throughput.
func BenchmarkMINDSimPIM(b *testing.B) {
	m := gilgamesh.MINDSim{Banks: 16, NetCycles: 150, RowCycles: 30, ComputeCycles: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPIM(256, 8)
	}
}

// BenchmarkAtomicSection measures the LITL-X atomic section round trip.
func BenchmarkAtomicSection(b *testing.B) {
	rt := parallex.New(parallex.Config{Localities: 2})
	defer rt.Shutdown()
	litlx.RegisterActions(rt)
	api := litlx.New(rt)
	at := api.NewAtomic(1, int64(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := at.Do(0, func(s any) (any, any, error) {
			return s.(int64) + 1, nil, nil
		}).Get(); err != nil {
			b.Fatal(err)
		}
	}
}
