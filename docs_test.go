package parallex_test

// Documentation gates for the public surface: every exported identifier
// in the facade (package parallex) and the global address space
// (internal/agas) must carry a doc comment. The AGAS is the package other
// layers reason about most — directory versus cache versus forwarding
// semantics are exactly the kind of contract that silently rots without
// godoc — so it is held to the facade's standard.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// undocumented collects the exported top-level identifiers of the package
// in dir that have neither their own doc comment nor a covering group
// comment.
func undocumented(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	noTests := func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
	pkgs, err := parser.ParseDir(fset, dir, noTests, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						missing = append(missing, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									missing = append(missing, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing
}

func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range []string{".", "internal/agas"} {
		if missing := undocumented(t, dir); len(missing) != 0 {
			t.Errorf("%s: exported identifiers without doc comments: %v", dir, missing)
		}
	}
}
