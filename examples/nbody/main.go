// Command nbody runs the Barnes–Hut N-body workload — the paper's
// motivating "trees" application — under three execution disciplines and
// compares their behaviour on a deliberately skewed body distribution:
//
//	sequential        reference
//	ParalleX          fine-grained tasks + work stealing (message-driven)
//	CSP               static SPMD partition + barrier (the baseline)
//
// The cluster makes per-body cost irregular, so the static partition
// starves: most ranks idle while the cluster's owner grinds.
package main

import (
	"flag"
	"fmt"
	"time"

	parallex "repro"
	"repro/internal/csp"
	"repro/internal/workloads"
)

func main() {
	nBodies := flag.Int("n", 4000, "number of bodies")
	steps := flag.Int("steps", 3, "simulation steps")
	locs := flag.Int("p", 4, "localities / ranks")
	theta := flag.Float64("theta", 0.5, "Barnes-Hut opening angle")
	flag.Parse()

	fmt.Printf("Barnes–Hut N-body: %d bodies (50%% clustered), %d steps, P=%d\n\n",
		*nBodies, *steps, *locs)

	// Sequential reference.
	bodies := workloads.GenerateClusteredBodies(*nBodies, 0.5, 42)
	start := time.Now()
	for s := 0; s < *steps; s++ {
		workloads.NBodyStep(bodies, *theta, 1e-4)
	}
	seqTime := time.Since(start)
	fmt.Printf("%-12s %v\n", "sequential", seqTime)

	// ParalleX: many fine chunks, work stealing on.
	rt := parallex.New(parallex.Config{
		Localities:         *locs,
		WorkersPerLocality: 2,
		Stealing:           true,
	})
	pxBodies := workloads.GenerateClusteredBodies(*nBodies, 0.5, 42)
	start = time.Now()
	for s := 0; s < *steps; s++ {
		ax, ay := workloads.NBodyForcesParalleX(rt, pxBodies, *theta, *locs*16)
		integrate(pxBodies, ax, ay, 1e-4)
	}
	pxTime := time.Since(start)
	rt.Shutdown()
	fmt.Printf("%-12s %v  (%.2fx vs sequential)\n", "parallex", pxTime,
		float64(seqTime)/float64(pxTime))

	// CSP: one static block per rank, barrier per step.
	world := csp.NewWorld(*locs, parallex.IdealNetwork(*locs))
	cspBodies := workloads.GenerateClusteredBodies(*nBodies, 0.5, 42)
	start = time.Now()
	for s := 0; s < *steps; s++ {
		ax, ay := workloads.NBodyForcesCSP(world, cspBodies, *theta)
		integrate(cspBodies, ax, ay, 1e-4)
	}
	cspTime := time.Since(start)
	fmt.Printf("%-12s %v  (%.2fx vs sequential)\n", "csp", cspTime,
		float64(seqTime)/float64(cspTime))

	// Verify the three agree.
	worst := 0.0
	for i := range bodies {
		dx := bodies[i].X - pxBodies[i].X
		dy := bodies[i].Y - pxBodies[i].Y
		if d := dx*dx + dy*dy; d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax ParalleX-vs-sequential position divergence: %.2e (expect ~0)\n", worst)
}

func integrate(bodies []workloads.Body, ax, ay []float64, dt float64) {
	for i := range bodies {
		bodies[i].VX += ax[i] * dt
		bodies[i].VY += ay[i] * dt
		bodies[i].X += bodies[i].VX * dt
		bodies[i].Y += bodies[i].VY * dt
	}
}
