// Command amr integrates a sharply-peaked function with adaptive mesh
// refinement — the paper's "directed graphs (adaptive mesh refinement)"
// workload — through the LITL-X API: asynchronous calls fan the leaf
// integrations out, a dataflow reduction gathers them, and no global
// barrier appears anywhere.
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	parallex "repro"
	"repro/internal/litlx"
	"repro/internal/workloads"
)

func main() {
	locs := flag.Int("p", 4, "localities")
	tol := flag.Float64("tol", 1e-5, "refinement tolerance")
	maxLevel := flag.Int("maxlevel", 14, "maximum refinement level")
	flag.Parse()

	rt := parallex.New(parallex.Config{Localities: *locs, WorkersPerLocality: 4, Stealing: true})
	defer rt.Shutdown()
	litlx.RegisterActions(rt)
	api := litlx.New(rt)

	w := 0.01
	f := workloads.SpikyFunction(0.5, w)
	root := workloads.BuildAMR(f, *tol, *maxLevel)
	leaves := root.Leaves()
	fmt.Printf("AMR tree: %d patches, %d leaves, depth %d (refinement clusters at the spike)\n",
		root.CountPatches(), len(leaves), root.Depth())

	// Depth histogram shows the irregularity.
	byLevel := map[int]int{}
	for _, l := range leaves {
		byLevel[l.Level]++
	}
	for lvl := 0; lvl <= root.Depth(); lvl++ {
		if byLevel[lvl] > 0 {
			fmt.Printf("  level %2d: %d leaves\n", lvl, byLevel[lvl])
		}
	}

	// LITL-X async calls: one per leaf, joined by a sync slot feeding a
	// final reduction — dataflow, not barriers.
	start := time.Now()
	partials := make([]float64, len(leaves))
	slot := api.NewSyncSlot(len(leaves))
	for i, leaf := range leaves {
		i, leaf := i, leaf
		api.Async(i%*locs, func() (any, error) {
			partials[i] = workloads.IntegrateLeaf(f, leaf)
			slot.Signal()
			return nil, nil
		})
	}
	slot.Wait()
	var integral float64
	for _, p := range partials {
		integral += p
	}
	elapsed := time.Since(start)

	want := 2.0/(3.0*math.Pi) + 5.0*w*math.Sqrt(math.Pi)
	fmt.Printf("\nintegral  = %.8f (litl-x async over %d localities, %v)\n", integral, *locs, elapsed)
	fmt.Printf("analytic  = %.8f\n", want)
	fmt.Printf("abs error = %.2e\n", math.Abs(integral-want))

	rt.Wait()
	fmt.Printf("\nruntime stats: %v\n", rt.SLOW())
}
