// Command pic runs the two-stream plasma instability with the 1-D
// particle-in-cell workload — the paper's "particle in cell" application —
// under ParalleX dataflow phase coupling (deposit → reduce → solve → push,
// no barriers) and prints the instability's field-energy growth, the
// physical signature that the phases were coupled correctly.
package main

import (
	"flag"
	"fmt"
	"time"

	parallex "repro"
	"repro/internal/workloads"
)

func main() {
	nPart := flag.Int("n", 20000, "macro-particles")
	nx := flag.Int("nx", 64, "grid cells")
	steps := flag.Int("steps", 400, "time steps")
	dt := flag.Float64("dt", 0.05, "time step")
	locs := flag.Int("p", 4, "localities")
	flag.Parse()

	rt := parallex.New(parallex.Config{Localities: *locs, WorkersPerLocality: 4})
	defer rt.Shutdown()

	p := workloads.NewPIC(*nPart, *nx, 7)
	p.Deposit()
	p.SolveField()
	fe0 := p.FieldEnergy()

	fmt.Printf("two-stream instability: %d particles, %d cells, %d steps, P=%d\n",
		*nPart, *nx, *steps, *locs)
	fmt.Printf("%8s %14s %14s\n", "step", "field energy", "kinetic energy")
	fmt.Printf("%8d %14.6e %14.6e\n", 0, fe0, p.KineticEnergy())

	start := time.Now()
	for s := 1; s <= *steps; s++ {
		workloads.PICStepParalleX(rt, p, *locs*8, *dt)
		if s%(*steps/8) == 0 {
			fmt.Printf("%8d %14.6e %14.6e\n", s, p.FieldEnergy(), p.KineticEnergy())
		}
	}
	rt.Wait()
	elapsed := time.Since(start)

	growth := p.FieldEnergy() / fe0
	fmt.Printf("\nfield energy grew %.0fx — the instability developed (phases coupled by dataflow LCOs, zero barriers)\n", growth)
	fmt.Printf("wall time: %v (%v/step)\n", elapsed, elapsed/time.Duration(*steps))
	fmt.Printf("runtime stats: %v\n", rt.SLOW())
}
