// Command procring demonstrates ParalleX parallel processes — the model
// element where a single process has parts on many localities, and
// messages incident on it invoke methods that create threads or child
// processes. A root "coordinator" process spans all localities; each
// invocation fans out to per-part workers, each part spawns a child
// process for its shard, and results flow back through futures.
package main

import (
	"flag"
	"fmt"
	"log"

	parallex "repro"
	"repro/internal/parcel"
	"repro/internal/process"
)

func main() {
	locs := flag.Int("p", 4, "localities")
	shards := flag.Int("shards", 8, "data shards per part")
	flag.Parse()

	rt := parallex.New(parallex.Config{
		Localities:         *locs,
		WorkersPerLocality: 4,
		Net:                parallex.CrossbarNetwork(*locs, parallex.DefaultNetworkParams()),
	})
	defer rt.Shutdown()
	process.RegisterActions(rt)

	// The child class: sums a shard of synthetic data at its locality.
	shardClass := process.NewClass("shard", map[string]process.Method{
		"sum": func(ctx *parallex.Context, p *process.Process, part int, args *parcel.Reader) (any, error) {
			lo := args.Int64()
			hi := args.Int64()
			if err := args.Err(); err != nil {
				return nil, err
			}
			var s int64
			for i := lo; i < hi; i++ {
				s += i
			}
			return s, nil
		},
	})

	// The coordinator class: each part spawns a child shard process at its
	// own locality and aggregates its shard sums.
	coordClass := process.NewClass("coord", map[string]process.Method{
		"aggregate": func(ctx *parallex.Context, p *process.Process, part int, args *parcel.Reader) (any, error) {
			n := args.Int64()
			if err := args.Err(); err != nil {
				return nil, err
			}
			child, err := p.SpawnChild(shardClass,
				fmt.Sprintf("shard-%d-%d", part, ctx.Locality()), []int{ctx.Locality()})
			if err != nil {
				return nil, err
			}
			var total int64
			per := n / int64(*shards)
			for s := 0; s < *shards; s++ {
				lo := int64(s) * per
				hi := lo + per
				fut, err := child.Invoke(ctx.Locality(), "sum",
					parallex.NewArgs().Int64(lo).Int64(hi).Encode())
				if err != nil {
					return nil, err
				}
				v, err := ctx.Await(fut)
				if err != nil {
					return nil, err
				}
				total += v.(int64)
			}
			child.Terminate()
			return total, nil
		},
	})

	members := make([]int, *locs)
	for i := range members {
		members[i] = i
	}
	coord, err := process.Spawn(rt, coordClass, "coordinator", members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process %q spans localities %v (GID %v)\n",
		coord.Name(), coord.Members(), coord.GID())

	// Invoke every part: each computes sum(0..N) over its children.
	const N = 1 << 16
	var grand int64
	for part := 0; part < *locs; part++ {
		fut, err := coord.InvokeAt(0, part, "aggregate", parallex.NewArgs().Int64(N).Encode())
		if err != nil {
			log.Fatal(err)
		}
		v, err := fut.Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  part %d (L%d): shard-process sum = %d\n", part, members[part], v)
		grand += v.(int64)
	}
	want := int64(*locs) * (N * (N - 1) / 2)
	fmt.Printf("grand total %d (want %d, match=%v)\n", grand, want, grand == want)

	coord.Terminate()
	rt.Wait()
	fmt.Printf("\nprocess tree torn down; runtime stats: %v\n", rt.SLOW())
}
