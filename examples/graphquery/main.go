// Command graphquery traverses a semantic-net-style directed graph
// distributed over localities — the paper's "directed graphs (semantic
// nets)" workload. Traversal is pure message-driven computing: each visit
// is a parcel sent to the vertex's owner, expansion happens at the data,
// and termination is runtime quiescence rather than a counted barrier.
// The echoed "generation" variable shows the echo construct alongside.
package main

import (
	"flag"
	"fmt"
	"time"

	parallex "repro"
	"repro/internal/echo"
	"repro/internal/workloads"
)

func main() {
	nVerts := flag.Int("n", 20000, "vertices")
	avgDeg := flag.Int("deg", 6, "average out-degree")
	locs := flag.Int("p", 4, "localities")
	root := flag.Int("root", 0, "BFS root vertex")
	flag.Parse()

	rt := parallex.New(parallex.Config{
		Localities:         *locs,
		WorkersPerLocality: 4,
		Net:                parallex.CrossbarNetwork(*locs, parallex.DefaultNetworkParams()),
	})
	defer rt.Shutdown()
	workloads.RegisterGraphActions(rt)
	echo.RegisterActions(rt)

	g := workloads.GenerateGraph(*nVerts, *avgDeg, 99)
	fmt.Printf("semantic net: %d vertices, %d edges, partitioned over %d localities\n",
		g.N, g.Edges(), *locs)

	dg := workloads.NewDistGraph(rt, g)
	start := time.Now()
	dist := dg.BFSParalleX(*root)
	elapsed := time.Since(start)

	// Histogram of hop distances.
	maxD := workloads.MaxDist(dist)
	hist := make([]int, maxD+1)
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	fmt.Printf("\nasynchronous BFS from vertex %d finished in %v (termination = quiescence)\n", *root, elapsed)
	for d, c := range hist {
		fmt.Printf("  %2d hops: %6d vertices\n", d, c)
	}

	// Verify against the sequential reference.
	want := g.BFS(*root)
	for v := range want {
		if dist[v] != want[v] {
			fmt.Printf("MISMATCH at vertex %d: %d vs %d\n", v, dist[v], want[v])
			return
		}
	}
	fmt.Println("distances verified against sequential BFS ✓")

	// An echoed variable shared by all localities: write once, read
	// locally everywhere — no coherence traffic on the read path.
	members := make([]int, *locs)
	for i := range members {
		members[i] = i
	}
	ev, err := echo.NewVar(rt, int64(0), members, 2)
	if err != nil {
		fmt.Println("echo:", err)
		return
	}
	fut, _ := ev.Write(0, int64(maxD))
	fut.Get()
	rt.Wait()
	v, gen, _ := ev.ReadAt(*locs - 1)
	fmt.Printf("echoed eccentricity visible at L%d: %v (generation %d)\n", *locs-1, v, gen)
	fmt.Printf("\nruntime stats: %v\n", rt.SLOW())
}
