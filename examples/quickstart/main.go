// Command quickstart demonstrates the ParalleX essentials in ~60 lines:
// a machine of localities, a globally named data object, a remote action
// invoked split-phase through a parcel, and a continuation chain that
// migrates the locus of control across the machine without returning to
// the caller in between.
package main

import (
	"fmt"
	"log"
	"time"

	parallex "repro"
)

func main() {
	// A 4-locality machine over a crossbar with realistic latencies.
	rt := parallex.New(parallex.Config{
		Localities:         4,
		WorkersPerLocality: 4,
		Net:                parallex.CrossbarNetwork(4, parallex.DefaultNetworkParams()),
	})
	defer rt.Shutdown()

	// Actions are first-class named entities.
	rt.MustRegisterAction("stats.sum", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		s := 0.0
		for _, v := range target.([]float64) {
			s += v
		}
		return s, nil
	})
	rt.MustRegisterAction("stats.scale", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		v, err := parallex.DecodeValue(raw)
		if err != nil {
			return nil, err
		}
		return v.(float64) * target.(float64), nil
	})

	// Data lives where it lives; work goes to it.
	vector := rt.NewDataAt(2, []float64{1, 2, 3, 4, 5})
	factor := rt.NewDataAt(3, 10.0)

	// Split-phase remote call: the caller gets a future immediately.
	start := time.Now()
	fut := rt.CallFrom(0, vector, "stats.sum", nil)
	fmt.Println("call issued; caller keeps working while the parcel travels...")
	v, err := fut.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum = %v (split-phase round trip %v)\n", v, time.Since(start))

	// Continuation chain: sum at L2, then scale at L3, then deliver to a
	// future at L0 — control migrates L0→L2→L3→L0 with no intermediate
	// round trips.
	fgid, out := rt.NewFutureAt(0)
	rt.SendFrom(0, parallex.NewParcel(vector, "stats.sum", nil,
		parallex.Continuation{Target: factor, Action: "stats.scale"},
		parallex.Continuation{Target: fgid, Action: parallex.ActionLCOSet},
	))
	v, err = out.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum scaled through continuation chain = %v\n", v)

	rt.Wait()
	fmt.Printf("runtime stats: %v\n", rt.SLOW())
}
