package parallex_test

// End-to-end integration tests combining several subsystems the way a real
// application would: processes spanning localities, echoed configuration,
// object migration under load, LITL-X phases, and the workload drivers —
// all on one runtime instance.

import (
	"sync/atomic"
	"testing"
	"time"

	parallex "repro"
	"repro/internal/echo"
	"repro/internal/litlx"
	"repro/internal/parcel"
	"repro/internal/process"
	"repro/internal/workloads"
)

func TestIntegrationPipelineAcrossSubsystems(t *testing.T) {
	const P = 4
	rt := parallex.New(parallex.Config{
		Localities:         P,
		WorkersPerLocality: 4,
		Net:                parallex.CrossbarNetwork(P, parallex.NetworkParams{InjectionOverhead: 20 * time.Microsecond}),
		Stealing:           true,
	})
	defer rt.Shutdown()
	echo.RegisterActions(rt)
	process.RegisterActions(rt)
	litlx.RegisterActions(rt)
	workloads.RegisterGraphActions(rt)
	api := litlx.New(rt)

	// 1. An echoed configuration value visible at every locality.
	members := []int{0, 1, 2, 3}
	cfg, err := echo.NewVar(rt, int64(10), members, 2)
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := cfg.Write(0, int64(25))
	if _, err := wf.Get(); err != nil {
		t.Fatal(err)
	}
	rt.Wait()

	// 2. A parallel process whose method reads the local echo copy and
	//    accumulates it into a LITL-X atomic section.
	total := api.NewAtomic(0, int64(0))
	cls := process.NewClass("acc", map[string]process.Method{
		"tally": func(ctx *parallex.Context, p *process.Process, part int, args *parcel.Reader) (any, error) {
			v, _, err := cfg.ReadAt(ctx.Locality())
			if err != nil {
				return nil, err
			}
			fut := total.Do(ctx.Locality(), func(state any) (any, any, error) {
				return state.(int64) + v.(int64), nil, nil
			})
			if _, err := fut.Get(); err != nil {
				return nil, err
			}
			return nil, nil
		},
	})
	proc, err := process.Spawn(rt, cls, "tallyproc", members)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := proc.InvokeAll(0, "tally", nil)
	if err != nil {
		t.Fatal(err)
	}
	gate.Wait()
	proc.Join()
	got, _ := total.Read(0).Get()
	if got.(int64) != 25*int64(P) {
		t.Fatalf("tally = %v, want %d", got, 25*P)
	}

	// 3. Migrate the atomic's anchor data and verify affinity helpers keep
	//    a follower colocated.
	anchor := rt.NewDataAt(1, "anchor")
	follower, err := rt.NewDataNear(anchor, "follower")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Migrate(anchor, 3); err != nil {
		t.Fatal(err)
	}
	if err := rt.MigrateWith(anchor, follower); err != nil {
		t.Fatal(err)
	}
	ok, _ := rt.Colocated(anchor, follower)
	if !ok {
		t.Fatal("affinity lost after migration")
	}

	// 4. Run a distributed BFS on the same runtime and verify against the
	//    sequential reference.
	g := workloads.GenerateGraph(800, 4, 5)
	dg := workloads.NewDistGraph(rt, g)
	dist := dg.BFSParalleX(0)
	want := g.BFS(0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("BFS mismatch at %d", v)
		}
	}

	// 5. Everything quiesces with no stray errors.
	rt.Wait()
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
	proc.Terminate()
}

func TestIntegrationFaultTolerantReduction(t *testing.T) {
	// Under parcel duplication, a sum assembled through a Reduce LCO keyed
	// by contribution identity would double-count; the idiomatic guard is
	// an AndGate (idempotent) plus idempotent per-slot state. Verify the
	// guarded pattern survives 1-in-2 duplication.
	const P = 3
	rt := parallex.New(parallex.Config{
		Localities:         P,
		WorkersPerLocality: 2,
		Faults:             parallex.Faults{DupOneIn: 2, Seed: 5},
	})
	defer rt.Shutdown()

	slots := make([]atomic.Int64, 10)
	rt.MustRegisterAction("int.slot", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		i := args.Int64()
		v := args.Int64()
		if err := args.Err(); err != nil {
			return nil, err
		}
		slots[i].Store(v) // idempotent write: duplicates are harmless
		return nil, nil
	})
	obj := rt.NewDataAt(1, struct{}{})
	for i := 0; i < 10; i++ {
		rt.SendFrom(0, parallex.NewParcel(obj, "int.slot",
			parallex.NewArgs().Int64(int64(i)).Int64(int64(i*i)).Encode()))
	}
	rt.Wait()
	if rt.Duplicated() == 0 {
		t.Fatal("no duplication injected")
	}
	for i := range slots {
		if slots[i].Load() != int64(i*i) {
			t.Fatalf("slot %d = %d", i, slots[i].Load())
		}
	}
}
