package parallex_test

// Multi-node integration tests: one logical ParalleX machine spanning
// several runtime instances ("nodes") joined by a transport — the in-process
// loopback fabric and real TCP streams over 127.0.0.1. Each node hosts a
// contiguous range of localities; parcels for non-resident localities cross
// the transport in wire form, and Wait/Shutdown drain the whole machine.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	parallex "repro"
	"repro/internal/transport"
)

// distRanges partitions six localities across three nodes.
var distRanges = []parallex.LocalityRange{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}, {Lo: 4, Hi: 6}}

// startMachine builds a three-node machine over the given per-node
// transports and registers the shared test actions on every node.
func startMachine(t *testing.T, trs []parallex.Transport) []*parallex.Runtime {
	t.Helper()
	rts := make([]*parallex.Runtime, len(trs))
	for i, tr := range trs {
		rts[i] = parallex.New(parallex.Config{
			Transport:          tr,
			NodeID:             i,
			NodeLocalities:     distRanges,
			WorkersPerLocality: 2,
			Register:           registerTestActions,
		})
	}
	return rts
}

func registerTestActions(rt *parallex.Runtime) {
	rt.MustRegisterAction("dist.sum", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		vec, ok := target.([]float64)
		if !ok {
			return nil, fmt.Errorf("dist.sum on %T", target)
		}
		s := 0.0
		for _, v := range vec {
			s += v
		}
		return s, nil
	})
	// dist.shift receives the previous action's result (the standard
	// continuation value record) and adds the target object's offset,
	// passing the new value down the continuation chain.
	rt.MustRegisterAction("dist.shift", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		offset, ok := target.(float64)
		if !ok {
			return nil, fmt.Errorf("dist.shift on %T", target)
		}
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		v, err := parallex.DecodeValue(raw)
		if err != nil {
			return nil, err
		}
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("dist.shift got %T", v)
		}
		return f + offset, nil
	})
}

// exerciseMachine runs the cross-node scenarios on a started machine:
// a remote CallFrom, a continuation chain touching a third node, and a
// reverse-direction call, then drains and shuts down every node.
func exerciseMachine(t *testing.T, rts []*parallex.Runtime) {
	t.Helper()
	// Node 1 hosts the data (locality 2), node 2 hosts the relay
	// (locality 4), node 0 drives from locality 0.
	data := rts[1].NewDataAt(2, []float64{1, 2, 3})
	relay := rts[2].NewDataAt(4, 10.5)

	// Cross-node split-phase call: locality 0 (node 0) -> locality 2
	// (node 1), continuation back to the future homed at locality 0.
	fut := rts[0].CallFrom(0, data, "dist.sum", nil)
	v, err := fut.Get()
	if err != nil {
		t.Fatalf("remote CallFrom: %v", err)
	}
	if got := v.(float64); got != 6 {
		t.Fatalf("remote sum = %v, want 6", got)
	}

	// Continuation chain across three nodes: the locus of control moves
	// node 0 -> node 1 (sum) -> node 2 (shift by the relay's offset) ->
	// node 0 (resolve the future). No hop returns to the sender.
	fgid, fut2 := rts[0].NewFutureAt(1) // future on locality 1, still node 0
	p := parallex.NewParcel(data, "dist.sum", nil,
		parallex.Continuation{Target: relay, Action: "dist.shift"},
		parallex.Continuation{Target: fgid, Action: parallex.ActionLCOSet},
	)
	rts[0].SendFrom(0, p)
	v, err = fut2.Get()
	if err != nil {
		t.Fatalf("continuation chain: %v", err)
	}
	if got := v.(float64); got != 16.5 {
		t.Fatalf("chained result = %v, want 16.5", got)
	}

	// Reverse direction: node 2 calls into node 0's locality 1.
	back := rts[0].NewDataAt(1, []float64{4, 4})
	fut3 := rts[2].CallFrom(5, back, "dist.sum", nil)
	if v, err = fut3.Get(); err != nil || v.(float64) != 8 {
		t.Fatalf("reverse call = %v, %v; want 8", v, err)
	}

	// Freeing a name homed on another node is a safe no-op from here:
	// names are freed by their owning node.
	rts[0].FreeObject(data)
	if _, ok := rts[1].LocalObject(2, data); !ok {
		t.Fatal("cross-node FreeObject must not remove the remote object")
	}

	// Affinity against a remotely owned anchor is an error, not a panic,
	// and Colocated refuses to guess about remote owners.
	if err := rts[0].SpawnNear(data, func(*parallex.Context) {}); err == nil {
		t.Fatal("SpawnNear with a remote anchor must error")
	}
	if _, err := rts[0].NewDataNear(data, 1.0); err == nil {
		t.Fatal("NewDataNear with a remote anchor must error")
	}
	if _, err := rts[0].Colocated(data, relay); err == nil {
		t.Fatal("Colocated over remote names must error")
	}
	if ok, err := rts[1].Colocated(data, data); err != nil || !ok {
		t.Fatalf("Colocated on the owning node = %v, %v", ok, err)
	}

	// Global quiescence from the driving node, then an orderly shutdown of
	// every node (each later node drains against the departure records of
	// the earlier ones).
	rts[0].Wait()
	for i, rt := range rts {
		rt.Shutdown()
		if errs := rt.Errors(); len(errs) != 0 {
			t.Fatalf("node %d recorded errors: %v", i, errs)
		}
	}
}

// waitGoroutines polls until the goroutine count returns to the baseline
// (plus slack for runtime-internal helpers), failing the test on leaks.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDistributedMachineInproc(t *testing.T) {
	baseline := runtime.NumGoroutine()
	fabric := parallex.NewLoopbackFabric(3)
	trs := make([]parallex.Transport, 3)
	for i := range trs {
		trs[i] = fabric.Node(i)
	}
	exerciseMachine(t, startMachine(t, trs))
	waitGoroutines(t, baseline)
}

func TestDistributedMachineTCP(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ranges := make([][2]int, len(distRanges))
	for i, rg := range distRanges {
		ranges[i] = [2]int{rg.Lo, rg.Hi}
	}
	tcps := make([]*transport.TCP, 3)
	addrs := make([]string, 3)
	for i := range tcps {
		tr, err := newWireTCP(parallex.TCPTransportConfig{
			Self:   i,
			Listen: "127.0.0.1:0",
			Peers:  make([]string, 3),
			Ranges: ranges,
		})
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr().String()
	}
	trs := make([]parallex.Transport, 3)
	for i, tr := range tcps {
		tr.SetPeers(addrs)
		trs[i] = tr
	}
	exerciseMachine(t, startMachine(t, trs))
	waitGoroutines(t, baseline)
}
