package parallex_test

import (
	"testing"
	"time"

	parallex "repro"
)

// These tests exercise the public facade exactly as a downstream user
// would, including the quickstart from the package documentation.

func TestQuickstartFromDocs(t *testing.T) {
	rt := parallex.New(parallex.Config{Localities: 4})
	defer rt.Shutdown()
	rt.MustRegisterAction("sum", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		vec := target.([]float64)
		s := 0.0
		for _, v := range vec {
			s += v
		}
		return s, nil
	})
	data := rt.NewDataAt(2, []float64{1, 2, 3})
	fut := rt.CallFrom(0, data, "sum", nil)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 6 {
		t.Fatalf("sum = %v", v)
	}
}

func TestFacadeNetworkConstructors(t *testing.T) {
	p := parallex.DefaultNetworkParams()
	for _, net := range []parallex.NetworkModel{
		parallex.IdealNetwork(8),
		parallex.CrossbarNetwork(8, p),
		parallex.TorusNetwork(8, p),
		parallex.DataVortexNetwork(8, p, 0.1),
	} {
		rt := parallex.New(parallex.Config{Localities: 8, Net: net})
		done := parallex.NewAndGate(8)
		for i := 0; i < 8; i++ {
			rt.Spawn(i, func(ctx *parallex.Context) { done.Signal() })
		}
		done.Wait()
		rt.Shutdown()
	}
}

func TestFacadeParcelWithContinuationChain(t *testing.T) {
	rt := parallex.New(parallex.Config{Localities: 3})
	defer rt.Shutdown()
	rt.MustRegisterAction("inc", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		v, err := parallex.DecodeValue(raw)
		if err != nil {
			return nil, err
		}
		return v.(int64) + 1, nil
	})
	a := rt.NewDataAt(1, "a")
	b := rt.NewDataAt(2, "b")
	fgid, fut := rt.NewFutureAt(0)
	seed, _ := parallex.EncodeValue(int64(0))
	rt.SendFrom(0, parallex.NewParcel(a, "inc", parallex.NewArgs().Bytes(seed).Encode(),
		parallex.Continuation{Target: b, Action: "inc"},
		parallex.Continuation{Target: fgid, Action: parallex.ActionLCOSet},
	))
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 2 {
		t.Fatalf("chain = %v", v)
	}
}

func TestFacadeLCOConstructors(t *testing.T) {
	f := parallex.NewFuture()
	f.Set(1)
	df := parallex.NewDataflow(1, func(in []any) (any, error) { return in[0], nil })
	df.Supply(0, 2)
	if v, _ := df.Out().Get(); v.(int) != 2 {
		t.Fatal("dataflow broken through facade")
	}
	r := parallex.NewReduce(2, 0, func(a, v any) any { return a.(int) + v.(int) })
	r.Contribute(3)
	r.Contribute(4)
	if v, _ := r.Out().Get(); v.(int) != 7 {
		t.Fatal("reduce broken through facade")
	}
	s := parallex.NewSemaphore(1)
	s.Acquire()
	s.Release()
	b := parallex.NewBarrier(1)
	b.Arrive()
	g := parallex.NewAndGate(1)
	g.Signal()
	g.Wait()
}

func TestFacadeValueCodec(t *testing.T) {
	for _, v := range []any{int64(5), 3.14, "str", true, []float64{1, 2}} {
		buf, err := parallex.EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallex.DecodeValue(buf)
		if err != nil {
			t.Fatal(err)
		}
		switch x := v.(type) {
		case []float64:
			g := got.([]float64)
			if len(g) != len(x) {
				t.Fatalf("vec mismatch")
			}
		default:
			if got != v {
				t.Fatalf("%v != %v", got, v)
			}
		}
	}
}

func TestFacadeLatencyVisibleToUser(t *testing.T) {
	net := parallex.CrossbarNetwork(2, parallex.NetworkParams{
		InjectionOverhead: 2 * time.Millisecond,
	})
	rt := parallex.New(parallex.Config{Localities: 2, Net: net})
	defer rt.Shutdown()
	obj := rt.NewDataAt(1, struct{}{})
	start := time.Now()
	fut := rt.CallFrom(0, obj, parallex.ActionNop, nil)
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("round trip faster than the configured network allows")
	}
}
