package core

import (
	"fmt"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// SendFrom routes p from locality src toward the owner of p.Dest. Delivery
// is asynchronous: remote parcels experience the modelled network latency
// and then execute as a new thread on the destination locality. Local
// parcels bypass both serialization and the network, as the model's
// locality semantics prescribe.
func (r *Runtime) SendFrom(src int, p *parcel.Parcel) {
	r.checkResident(src)
	if p.Dest.IsNil() {
		panic("core: send to nil GID")
	}
	p.Src = src
	r.addWork()
	start := now()
	r.route(src, p)
	r.slow.Overhead.ObserveDuration(now().Sub(start))
}

// route resolves ownership and moves the parcel. The caller has already
// charged one work unit for p; route (or the failure path) releases it via
// the delivery task.
func (r *Runtime) route(src int, p *parcel.Parcel) {
	owner, err := r.agas.ResolveCached(src, p.Dest)
	if err != nil {
		r.deliverFailure(src, p, err)
		return
	}
	if owner == src {
		r.slow.ParcelsLocal.Inc()
		if r.ring != nil {
			r.ring.Emitf(trace.KindParcelSend, src, "local %s", p)
		}
		r.enqueue(owner, p)
		return
	}
	if r.dist != nil {
		if node := r.dist.lmap.NodeOf(owner); node != r.dist.node {
			// The owner lives in another process: the parcel crosses the
			// real network in wire form. The work unit charged by SendFrom
			// stays held until the peer acknowledges the frame.
			if r.ring != nil {
				r.ring.Emitf(trace.KindParcelSend, src, "to node %d %s", node, p)
			}
			r.dist.sendParcel(node, src, p)
			return
		}
	}
	r.slow.ParcelsSent.Inc()
	if r.ring != nil {
		r.ring.Emitf(trace.KindParcelSend, src, "to L%d %s", owner, p)
	}
	size := len(p.Args)
	var wire []byte
	if !r.cfg.DisableSerialization {
		wire = p.Encode(nil)
		size = len(wire)
	}
	copies := 1
	if r.faults != nil {
		copies = r.faults.verdict()
	}
	if copies == 0 {
		// Lost in the network. Parcels are at-most-once; reliability, if
		// needed, is layered above (acknowledging LCO protocols).
		mustPost(r.locs[src].Post(func() { r.doneWork() }))
		return
	}
	if copies == 2 {
		r.addWork() // the duplicate carries its own work unit
	}
	lat := r.net.Latency(src, owner, size)
	deliver := func(dp *parcel.Parcel) func() {
		return func() {
			if wire != nil {
				decoded, _, derr := parcel.Decode(wire)
				if derr != nil {
					r.deliverFailure(src, dp, fmt.Errorf("core: wire corruption: %w", derr))
					return
				}
				dp = decoded
			}
			if r.ring != nil {
				r.ring.Emitf(trace.KindParcelRecv, owner, "%s", dp)
			}
			r.enqueue(owner, dp)
		}
	}
	for c := 0; c < copies; c++ {
		dp := p
		if c > 0 && wire == nil {
			// Duplicate of an unserialized parcel: clone so the two
			// executions cannot race on the continuation stack.
			clone := *p
			clone.Cont = append([]parcel.Continuation(nil), p.Cont...)
			dp = &clone
		}
		fn := deliver(dp)
		if lat <= 0 {
			fn()
			continue
		}
		time.AfterFunc(lat, fn)
	}
}

// enqueue schedules parcel execution on locality loc. The work unit charged
// by SendFrom is released when the action (and its continuation sends) have
// completed. The destination object's name is the placement hint: parcels
// for one object land on one worker's deque, preserving its cache affinity
// and keeping the deque lock uncontended for hot objects.
func (r *Runtime) enqueue(loc int, p *parcel.Parcel) {
	mustPost(r.locs[loc].PostTo(int(p.Dest.Seq), func() {
		defer r.doneWork()
		r.execute(loc, p)
	}))
}

// mustPost converts a locality post failure into a panic: the runtime
// quiesces before closing its localities, so a rejected post means work
// was injected after Shutdown — always a caller bug.
func mustPost(err error) {
	if err != nil {
		panic(fmt.Sprintf("core: %v (work injected after shutdown)", err))
	}
}

// execute runs the parcel's action as a fresh ephemeral thread on loc.
// Non-hardware targets pass through the migration fence: the execution is
// registered so a migration can quiesce the object, and if a migration is
// in progress the parcel parks (keeping a work unit charged) until the
// move commits and the fence re-routes it.
func (r *Runtime) execute(loc int, p *parcel.Parcel) {
	fenced := p.Dest.Kind != agas.KindHardware
	if fenced {
		if !r.fences.enter(p.Dest, loc, p) {
			// Parked. The fence holds the parcel; charge the parked leg
			// before this delivery's unit is released by our caller.
			r.addWork()
			r.slow.Parked.Inc()
			if r.ring != nil {
				r.ring.Emitf(trace.KindMigration, loc, "parked %s", p)
			}
			return
		}
	}
	target, ok := r.locs[loc].Store().Get(p.Dest)
	if !ok {
		if fenced {
			r.fences.exit(p.Dest)
		}
		// The object is not here: our (or the sender's) translation was
		// stale — an ErrMoved resolution will name the forwarding target.
		// Repair and re-route.
		r.forward(loc, p)
		return
	}
	fn, ok := r.acts.lookup(p.Action)
	if !ok {
		if fenced {
			r.fences.exit(p.Dest)
		}
		r.failParcel(loc, p, fmt.Errorf("core: unknown action %q", p.Action))
		return
	}
	th := r.reg.New(loc)
	r.slow.ThreadsSpawned.Inc()
	th.Start()
	ctx := &Context{rt: r, loc: loc, th: th}
	res, err := fn(ctx, target, parcel.NewReader(p.Args))
	th.Terminate()
	if fenced {
		r.fences.exit(p.Dest)
	}
	r.slow.TasksExecuted.Inc()
	if err != nil {
		r.failParcel(loc, p, err)
		return
	}
	if cont, more := p.PopContinuation(); more {
		args, encErr := encodeValueArg(res)
		if encErr != nil {
			r.failParcel(loc, p, encErr)
			return
		}
		np := parcel.New(cont.Target, cont.Action, args, p.Cont...)
		r.SendFrom(loc, np)
	}
}

// forward re-resolves a stale destination and re-routes the parcel,
// bounding the retry count. Re-delivery is slightly delayed so a migration
// in progress can land.
func (r *Runtime) forward(loc int, p *parcel.Parcel) {
	p.Hops++
	if p.Hops > r.cfg.MaxHops {
		r.failParcel(loc, p, fmt.Errorf("core: %s exceeded %d forwarding hops", p, r.cfg.MaxHops))
		return
	}
	r.agas.Invalidate(loc, p.Dest)
	if r.ring != nil {
		r.ring.Emitf(trace.KindMigration, loc, "forward hop %d %s", p.Hops, p)
	}
	r.addWork() // the new routing leg; our caller releases the old one
	time.AfterFunc(time.Duration(p.Hops)*5*time.Microsecond, func() {
		r.route(loc, p)
	})
}

// failParcel delivers an action failure to the parcel's continuation, or
// records it on the runtime when no continuation exists.
func (r *Runtime) failParcel(loc int, p *parcel.Parcel, err error) {
	cont, ok := p.PopContinuation()
	if !ok {
		r.recordError(fmt.Errorf("parcel %s at L%d: %w", p, loc, err))
		return
	}
	args := parcel.NewArgs().String(err.Error()).Encode()
	np := parcel.New(cont.Target, ActionLCOFail, args)
	r.SendFrom(loc, np)
}

// deliverFailure handles routing errors for a parcel whose work unit is
// charged but which cannot reach any locality.
func (r *Runtime) deliverFailure(src int, p *parcel.Parcel, err error) {
	// Release via a task so accounting stays uniform.
	mustPost(r.locs[src].Post(func() {
		defer r.doneWork()
		r.failParcel(src, p, err)
	}))
}
