package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/locality"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// SendFrom routes p from locality src toward the owner of p.Dest. Delivery
// is asynchronous: remote parcels experience the modelled network latency
// and then execute as a new thread on the destination locality. Local
// parcels bypass both serialization and the network, as the model's
// locality semantics prescribe.
func (r *Runtime) SendFrom(src int, p *parcel.Parcel) {
	r.checkResident(src)
	if p.Dest.IsNil() {
		panic("core: send to nil GID")
	}
	p.Src = src
	r.traceParcel(src, p)
	r.addWork()
	start := now()
	r.route(src, p)
	r.slow.Overhead.ObserveDuration(now().Sub(start))
}

// route resolves ownership and moves the parcel. The caller has already
// charged one work unit for p; route (or the failure path) releases it via
// the delivery task.
func (r *Runtime) route(src int, p *parcel.Parcel) {
	owner, err := r.agas.ResolveCached(src, p.Dest)
	if err != nil {
		r.deliverFailure(src, p, err)
		return
	}
	if owner == src {
		r.slow.ParcelsLocal.Inc()
		if r.ring != nil {
			r.ring.Emitf(trace.KindParcelSend, src, "local %s", p)
		}
		r.enqueue(owner, p)
		return
	}
	if r.dist != nil {
		node, known := r.dist.lmap.NodeOf(owner)
		if !known {
			r.deliverFailure(src, p, fmt.Errorf("core: owner locality %d outside machine: %w", owner, agas.ErrUnknown))
			return
		}
		if node != r.dist.node {
			// The owner lives in another process: the parcel crosses the
			// real network in wire form. The work unit charged by SendFrom
			// stays held until the peer acknowledges the frame.
			if r.ring != nil {
				r.ring.Emitf(trace.KindParcelSend, src, "to node %d %s", node, p)
			}
			if p.Action == ActionLCOTrigger && len(p.Cont) == 0 {
				// Identified triggers never ride at-most-once parcels over
				// the wire: re-ship as an acknowledged LCO frame so the
				// retransmit-until-acked guarantee survives forwarding hops
				// (a trigger chasing its target across a migration). Frames
				// carry no continuation stack, so the rare user-built
				// trigger parcel with continuations keeps ordinary parcel
				// semantics instead of silently losing its chain.
				r.dist.sendTriggerParcel(node, src, p)
				return
			}
			r.dist.sendParcel(node, src, p)
			return
		}
	}
	r.slow.ParcelsSent.Inc()
	if r.ring != nil {
		r.ring.Emitf(trace.KindParcelSend, src, "to L%d %s", owner, p)
	}
	size := len(p.Args)
	var w *parcel.WireBuf
	var tbl *actionSet
	if !r.cfg.DisableSerialization {
		w = parcel.GetWire()
		if p.InternEncodable() {
			// The in-process wire interns against the local registry: both
			// ends share it, and snapshots are append-only, so positions
			// resolve across concurrent registrations.
			tbl = r.acts.snapshot()
			w.B = p.EncodeInterned(w.B, tbl)
		} else {
			// An action name only the plain format can carry (it can never
			// be registered, so dispatch will fail it gracefully); tbl nil
			// routes the decode side to the plain codec.
			w.B = p.Encode(w.B)
		}
		size = len(w.B)
	}
	copies := 1
	if r.faults != nil {
		copies = r.faults.verdict(p.Action != ActionLCOTrigger)
	}
	if copies == 0 {
		// Lost in the network. Parcels are at-most-once; reliability, if
		// needed, is layered above (acknowledging LCO protocols).
		if w != nil {
			parcel.PutWire(w)
		}
		parcel.Release(p)
		r.mustPost(r.loc(src).Post(func() { r.doneWork() }))
		return
	}
	if copies == 2 {
		r.addWork() // the duplicate carries its own work unit
	}
	lat := r.net.Latency(src, owner, size)
	if w != nil && copies == 1 && lat <= 0 {
		// The steady-state leg: serialize, decode into a pooled parcel,
		// dispatch — no closures, no timers, no allocation.
		r.deliverWire(src, owner, p, w, tbl)
		return
	}
	if w != nil {
		// Latency-modelled or duplicated wire delivery: the original
		// parcel and the encode buffer stay alive until the last copy has
		// decoded, then return to their pools.
		d := &wireDelivery{r: r, src: src, owner: owner, p: p, w: w, tbl: tbl}
		d.left.Store(int32(copies))
		for c := 0; c < copies; c++ {
			if lat <= 0 {
				d.deliverOne()
				continue
			}
			time.AfterFunc(lat, d.deliverOne)
		}
		return
	}
	// Duplicates of an unserialized parcel: deep-clone BEFORE the original
	// is dispatched — a pooled original can be executed, released, and
	// recycled the moment deliverDirect hands it over, so copying its
	// fields afterwards would read another parcel's data. Each clone is
	// plain garbage-collected memory (Release ignores it) with its own
	// continuation stack, so the executions cannot race on one.
	dups := make([]*parcel.Parcel, copies-1)
	for i := range dups {
		dups[i] = &parcel.Parcel{ID: p.ID, Dest: p.Dest, Action: p.Action, AID: p.AID,
			Args: append([]byte(nil), p.Args...),
			Cont: append([]parcel.Continuation(nil), p.Cont...),
			Src:  p.Src, Hops: p.Hops, Trace: p.Trace}
	}
	for c := 0; c < copies; c++ {
		dp := p
		if c > 0 {
			dp = dups[c-1]
		}
		if lat <= 0 {
			r.deliverDirect(owner, dp)
			continue
		}
		time.AfterFunc(lat, func() { r.deliverDirect(owner, dp) })
	}
}

// deliverWire decodes the serialized form of p out of w into a pooled
// parcel and dispatches it, recycling the buffer and the original parcel.
// A nil tbl means the parcel was encoded in the plain format (see route).
func (r *Runtime) deliverWire(src, owner int, p *parcel.Parcel, w *parcel.WireBuf, tbl *actionSet) {
	var dp *parcel.Parcel
	var derr error
	if tbl != nil {
		dp, _, derr = parcel.DecodePooledInterned(w.B, tbl)
	} else {
		dp, _, derr = parcel.DecodePooled(w.B)
	}
	parcel.PutWire(w)
	if derr != nil {
		r.deliverFailure(src, p, fmt.Errorf("core: wire corruption: %w", derr))
		return
	}
	// The in-process wire form carries no trailer; the trace context
	// crosses by field copy (both ends are this runtime).
	dp.Trace = p.Trace
	parcel.Release(p)
	r.deliverDirect(owner, dp)
}

// deliverDirect hands an owned parcel to its destination locality.
func (r *Runtime) deliverDirect(owner int, dp *parcel.Parcel) {
	if r.ring != nil {
		r.ring.Emitf(trace.KindParcelRecv, owner, "%s", dp)
	}
	r.enqueue(owner, dp)
}

// wireDelivery is the latency-modelled (or fault-duplicated) wire leg:
// each copy decodes its own pooled parcel from the shared encode buffer;
// the last one done returns the buffer and the original parcel.
type wireDelivery struct {
	r          *Runtime
	src, owner int
	p          *parcel.Parcel
	w          *parcel.WireBuf
	tbl        *actionSet
	left       atomic.Int32
	failed     atomic.Bool
}

func (d *wireDelivery) deliverOne() {
	var dp *parcel.Parcel
	var derr error
	if d.tbl != nil {
		dp, _, derr = parcel.DecodePooledInterned(d.w.B, d.tbl)
	} else {
		dp, _, derr = parcel.DecodePooled(d.w.B)
	}
	last := d.left.Add(-1) == 0
	if last {
		parcel.PutWire(d.w)
	}
	if derr != nil {
		// Copies decode the same bytes, so either every copy fails here or
		// none does; success and failure paths never race on p. The first
		// failing copy consumes p for failure delivery, the rest only
		// release their work units.
		if d.failed.CompareAndSwap(false, true) {
			d.r.deliverFailure(d.src, d.p, fmt.Errorf("core: wire corruption: %w", derr))
			return
		}
		d.r.mustPost(d.r.loc(d.src).Post(func() { d.r.doneWork() }))
		return
	}
	dp.Trace = d.p.Trace
	if last {
		parcel.Release(d.p)
	}
	d.r.deliverDirect(d.owner, dp)
}

// execTask is the pooled unit posted to a locality for one parcel
// dispatch. Its run closure is bound to the task once, at pool birth, so
// the steady-state enqueue allocates neither a closure nor a task; the
// embedded Reader is likewise reset per dispatch instead of allocated.
type execTask struct {
	r   *Runtime
	loc int
	p   *parcel.Parcel
	rd  parcel.Reader
	ctx Context
	run func()
}

var execTaskPool sync.Pool

func init() {
	execTaskPool.New = func() any {
		t := &execTask{}
		t.run = t.fire
		return t
	}
}

func (t *execTask) fire() {
	r, loc, p := t.r, t.loc, t.p
	t.r, t.p = nil, nil
	r.execute(loc, p, &t.rd, &t.ctx)
	t.rd.Reset(nil)
	t.ctx = Context{}
	execTaskPool.Put(t)
	r.doneWork()
}

// enqueue schedules parcel execution on locality loc. The work unit charged
// by SendFrom is released when the action (and its continuation sends) have
// completed. The destination object's name is the placement hint: parcels
// for one object land on one worker's deque, preserving its cache affinity
// and keeping the deque lock uncontended for hot objects.
func (r *Runtime) enqueue(loc int, p *parcel.Parcel) {
	// The balancer's arrival sampling: one nil check when balancing is
	// off (the zero-alloc contract), one atomic add when on, a shard
	// mutex only on the sampled minority. Hardware names never migrate,
	// so their arrivals are not attributed.
	if b := r.bal; b != nil && p.Dest.Kind != agas.KindHardware {
		b.sampler.Record(p.Dest, loc)
	}
	t := execTaskPool.Get().(*execTask)
	t.r, t.loc, t.p = r, loc, p
	if r.sheddable != nil {
		if _, shed := r.sheddable[p.Action]; shed {
			if err := r.loc(loc).PostAdmitted(int(p.Dest.Seq), t.run); err != nil {
				t.r, t.p = nil, nil
				execTaskPool.Put(t)
				if !errors.Is(err, locality.ErrOverloaded) {
					r.mustPost(err)
				}
				r.shedParcel(loc, p)
			}
			return
		}
	}
	r.mustPost(r.loc(loc).PostTo(int(p.Dest.Seq), t.run))
}

// mustPost converts a locality post failure into a panic: the runtime
// quiesces before closing its localities, so a rejected post means work
// was injected after Shutdown — always a caller bug. The one exception is
// an abrupt Terminate (the crash model), where dropping queued work is
// the whole point.
func (r *Runtime) mustPost(err error) {
	if err == nil || r.terminating.Load() {
		return
	}
	panic(fmt.Sprintf("core: %v (work injected after shutdown)", err))
}

// execute runs the parcel's action as a fresh ephemeral thread on loc.
// Non-hardware targets pass through the migration fence: the execution is
// registered so a migration can quiesce the object, and if a migration is
// in progress the parcel parks (keeping a work unit charged) until the
// move commits and the fence re-routes it.
//
// execute consumes p: dispatch (successful or failed) ends with the
// parcel released to its pool; the park and forward paths instead pass
// ownership on (to the fence and the re-route, respectively). rd and ctx
// are the caller's pooled scratch, valid only for this dispatch — the
// ActionFunc contract forbids retaining either beyond the action's
// return.
func (r *Runtime) execute(loc int, p *parcel.Parcel, rd *parcel.Reader, ctx *Context) {
	fenced := p.Dest.Kind != agas.KindHardware
	if fenced {
		// Snapshot the fields the park branch reports before enter: a
		// false return means the fence owns the parcel, and a concurrent
		// migration commit may re-route and release it immediately —
		// touching p after that is a use-after-handoff. The park span
		// therefore records a copy of the trace context (a leaf hop; the
		// unparked re-route chains from the pre-park span).
		tc, action := p.Trace, p.Action
		if !r.fences.enter(p.Dest, loc, p) {
			// Parked. The fence holds the parcel; charge the parked leg
			// before this delivery's unit is released by our caller.
			r.addWork()
			r.slow.Parked.Inc()
			r.emitSpan(trace.SpanPark, loc, &tc, action)
			if r.ring != nil {
				r.ring.Emitf(trace.KindMigration, loc, "parked %s", action)
			}
			return
		}
	}
	target, ok := r.loc(loc).Store().Get(p.Dest)
	if !ok {
		if fenced {
			r.fences.exit(p.Dest)
		}
		// The object is not here: our (or the sender's) translation was
		// stale — an ErrMoved resolution will name the forwarding target.
		// Repair and re-route.
		r.forward(loc, p)
		return
	}
	// An interned wire decode (or a previous dispatch of this parcel) has
	// already resolved the dense action ID: indexing the snapshot slice is
	// the whole lookup. Parcels carrying only a name resolve it once here.
	fn, ok := r.acts.byID(p.AID)
	if !ok {
		var aid uint32
		if fn, aid, ok = r.acts.lookup(p.Action); ok {
			p.AID = aid
		}
	}
	if !ok {
		if fenced {
			r.fences.exit(p.Dest)
		}
		r.failParcel(loc, p, fmt.Errorf("core: unknown action %q", p.Action))
		return
	}
	if p.Trace.Sampled() && isTriggerAction(p.Action) {
		r.emitSpan(trace.SpanTrigger, loc, &p.Trace, p.Action)
	}
	th := r.reg.New(loc)
	r.slow.ThreadsSpawned.Inc()
	th.Start()
	ctx.rt, ctx.loc, ctx.th, ctx.tid = r, loc, th, parcelTriggerID(p)
	rd.Reset(p.Args)
	res, err := fn(ctx, target, rd)
	th.Terminate()
	r.reg.Recycle(th)
	if fenced {
		r.fences.exit(p.Dest)
	}
	r.slow.TasksExecuted.Inc()
	if err != nil {
		r.failParcel(loc, p, err)
		return
	}
	if cont, more := p.PopContinuation(); more {
		args, encErr := encodeValueArg(res)
		if encErr != nil {
			r.failParcel(loc, p, encErr)
			return
		}
		np := parcel.Acquire(cont.Target, cont.Action, args, p.Cont...)
		// The continuation inherits the chain's parcel ID: a fault-
		// duplicated parcel then spawns continuations with identical
		// identity, so a DistLCO target deduplicates them (the remaining
		// stack depth distinguishes the steps of one chain — see
		// parcelTriggerID). The trace context is inherited the same way,
		// so one trace ID spans the whole continuation chain.
		np.ID = p.ID
		np.Trace = p.Trace
		parcel.Release(p) // after Acquire copied the continuation tail
		r.SendFrom(loc, np)
		return
	}
	parcel.Release(p)
}

// forward re-resolves a stale destination and re-routes the parcel,
// bounding the retry count. Re-delivery is slightly delayed so a migration
// in progress can land.
func (r *Runtime) forward(loc int, p *parcel.Parcel) {
	p.Hops++
	if p.Hops > r.cfg.MaxHops {
		r.failParcel(loc, p, fmt.Errorf("core: %s exceeded %d forwarding hops", p, r.cfg.MaxHops))
		return
	}
	r.agas.Invalidate(loc, p.Dest)
	r.emitSpan(trace.SpanMigrate, loc, &p.Trace, p.Action)
	if r.ring != nil {
		r.ring.Emitf(trace.KindMigration, loc, "forward hop %d %s", p.Hops, p)
	}
	r.addWork() // the new routing leg; our caller releases the old one
	time.AfterFunc(time.Duration(p.Hops)*5*time.Microsecond, func() {
		r.route(loc, p)
	})
}

// failParcel delivers an action failure to the parcel's continuation, or
// records it on the runtime when no continuation exists. It consumes p.
func (r *Runtime) failParcel(loc int, p *parcel.Parcel, err error) {
	if p.Action == ActionLCOTrigger && (errors.Is(err, agas.ErrUnknown) || IsNodeLost(err)) {
		// A duplicated or retransmitted trigger chasing an LCO that was
		// already consumed and freed (one-shot waiter futures): the first
		// copy did the work, so the straggler is benignly late, not lost.
		// A trigger toward an LCO that died with its node is equally
		// terminal: the waiters registered against that node are failed by
		// the membership layer, so the trigger itself has no one to tell.
		if r.ring != nil {
			r.ring.Emitf(trace.KindLCOTrigger, loc, "late trigger to freed target %s", p)
		}
		parcel.Release(p)
		return
	}
	cont, ok := p.PopContinuation()
	if !ok {
		r.recordError(fmt.Errorf("parcel %s at L%d: %w", p, loc, err))
		parcel.Release(p)
		return
	}
	args := parcel.NewArgs().String(err.Error()).Encode()
	np := parcel.Acquire(cont.Target, ActionLCOFail, args)
	np.ID = p.ID // failure deliveries share the chain identity too
	np.Trace = p.Trace
	parcel.Release(p)
	r.SendFrom(loc, np)
}

// deliverFailure handles routing errors for a parcel whose work unit is
// charged but which cannot reach any locality.
func (r *Runtime) deliverFailure(src int, p *parcel.Parcel, err error) {
	// Release via a task so accounting stays uniform.
	r.mustPost(r.loc(src).Post(func() {
		defer r.doneWork()
		r.failParcel(src, p, err)
	}))
}
