package core

// Cross-node LCO trigger frames. Triggers whose target lives on another
// node ride dedicated fLCOSet/fLCOFire frames through the transport's
// group-commit batching. Unlike parcels — at-most-once by design — LCO
// triggers are an acknowledging protocol: the sender holds each frame in a
// pending table and retransmits it until the matching fLCOAck arrives, so
// a frame lost to fault injection is recovered, and the target's
// idempotent trigger IDs absorb the duplicates retransmission (or
// duplication faults) creates.
//
// Accounting follows the parcel invariant: the sender's work unit for a
// trigger stays charged until the peer acknowledges it, and the receiver
// charges its own unit before acknowledging, so an in-flight trigger is
// counted by at least one node at every instant and Wait cannot declare
// quiescence across a trigger in flight.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// lcoRetryTick is the pending-table scan interval; lcoRetryAfter is how
// long a frame may stay unacknowledged before it is retransmitted.
const (
	lcoRetryTick  = 10 * time.Millisecond
	lcoRetryAfter = 25 * time.Millisecond
	// lcoGiveUpAttempts bounds retransmission (~30s: attempts only count
	// when a frame has sat unacknowledged for lcoRetryAfter, and the tick
	// aligns retransmits ~30ms apart): past it the peer is declared
	// unreachable, the work unit released, and the loss recorded — the
	// same stance migration RPCs take.
	lcoGiveUpAttempts = 1000
)

// encodeLCOTrigger renders one trigger frame:
// kind | u64 tid | u8 op | gid target | u32 slot | u32 hops | u32 vlen |
// value | [trace trailer].
// hops carries the forwarding-hop count a trigger has already spent, so
// the MaxHops bound survives a trigger being re-shipped node to node
// while it chases a migrating target. A nonzero trace context appends the
// fixed-size trailer after the value; vlen makes the frame self-
// describing, but callers still gate the trailer on the peer's announced
// trace capability — older decoders reject frames with trailing bytes.
func encodeLCOTrigger(kind byte, tid uint64, op TrigOp, slot uint32, hops int, g agas.GID, value []byte, tc parcel.TraceCtx) []byte {
	frame := make([]byte, 0, 1+8+1+agas.GIDSize+4+4+4+len(value)+parcel.TraceWireSize)
	frame = append(frame, kind)
	frame = binary.LittleEndian.AppendUint64(frame, tid)
	frame = append(frame, byte(op))
	frame = g.Encode(frame)
	frame = binary.LittleEndian.AppendUint32(frame, slot)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(hops))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(value)))
	frame = append(frame, value...)
	if !tc.Zero() {
		frame = tc.Append(frame)
	}
	return frame
}

// decodeLCOTrigger parses the body of an fLCOSet/fLCOFire frame (the kind
// byte already consumed). The value may be followed by nothing or by
// exactly one trace trailer; anything else is corrupt. value aliases
// body — callers that retain it past the transport handler must copy.
func decodeLCOTrigger(body []byte) (tid uint64, op TrigOp, g agas.GID, slot uint32, hops int, value []byte, tc parcel.TraceCtx, ok bool) {
	if len(body) < 9 {
		return 0, 0, agas.Nil, 0, 0, nil, parcel.TraceCtx{}, false
	}
	tid = binary.LittleEndian.Uint64(body[0:8])
	op = TrigOp(body[8])
	g, rest, err := agas.DecodeGID(body[9:])
	if err != nil || len(rest) < 12 {
		return 0, 0, agas.Nil, 0, 0, nil, parcel.TraceCtx{}, false
	}
	slot = binary.LittleEndian.Uint32(rest[0:4])
	hops = int(binary.LittleEndian.Uint32(rest[4:8]))
	n := int(binary.LittleEndian.Uint32(rest[8:12]))
	rest = rest[12:]
	if n < 0 || len(rest) < n {
		return 0, 0, agas.Nil, 0, 0, nil, parcel.TraceCtx{}, false
	}
	value, rest = rest[:n], rest[n:]
	if len(rest) == parcel.TraceWireSize {
		tc, rest, _ = parcel.DecodeTrace(rest)
	}
	if len(rest) != 0 {
		return 0, 0, agas.Nil, 0, 0, nil, parcel.TraceCtx{}, false
	}
	return tid, op, g, slot, hops, value, tc, true
}

// encodeLCOAck renders an acknowledgement frame: fLCOAck | u64 tid.
func encodeLCOAck(tid uint64) []byte {
	frame := make([]byte, 0, 9)
	frame = append(frame, fLCOAck)
	return binary.LittleEndian.AppendUint64(frame, tid)
}

// decodeLCOAck parses the body of an fLCOAck frame.
func decodeLCOAck(body []byte) (tid uint64, ok bool) {
	if len(body) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(body[0:8]), true
}

// lcoPending is one unacknowledged outbound trigger frame.
type lcoPending struct {
	node     int
	lane     int // transport lane (destination-GID affinity, like parcels)
	frame    []byte
	lastSend time.Time
	attempts int
}

// lcoSendState is the sender half of the acknowledging trigger protocol.
type lcoSendState struct {
	mu      sync.Mutex
	pend    map[uint64]*lcoPending
	started bool
	stopped bool // Shutdown ran: no new pending entries, no loop restart
	stop    chan struct{}
	done    chan struct{}

	sent    atomic.Uint64 // logical triggers shipped (first transmissions)
	recv    atomic.Uint64 // trigger frames received (duplicates included)
	retried atomic.Uint64 // retransmissions of unacknowledged frames
}

// LCOTriggerStats reports the cross-node trigger counters: logical
// triggers sent, trigger frames received (fault-injected duplicates
// included), and retransmissions of unacknowledged frames. Soak tests
// assert retried > 0 to prove drop injection engaged the recovery path.
func (r *Runtime) LCOTriggerStats() (sent, recv, retried uint64) {
	if r.dist == nil {
		return 0, 0, 0
	}
	s := &r.dist.lco
	return s.sent.Load(), s.recv.Load(), s.retried.Load()
}

// sendLCOTrigger ships one identified trigger to the node owning its
// target, holding the caller's work unit until the peer acknowledges.
// fired selects the fLCOFire frame type (a resolution delivery) over
// fLCOSet (an inbound trigger); the receive path treats both identically.
// hops is the forwarding budget already spent (0 for a fresh trigger).
// tc is the trace context the trigger rides for (zero for untraced
// triggers); it crosses the wire only when the peer announced the trace
// capability, and retransmissions reuse the encoded frame verbatim.
func (d *distState) sendLCOTrigger(node int, tid uint64, op TrigOp, slot uint32, hops int, g agas.GID, value []byte, fired bool, tc parcel.TraceCtx) {
	kind := fLCOSet
	if fired {
		kind = fLCOFire
	}
	if d.peerDead(node) {
		// The target's node is already declared dead: retransmitting into
		// the void would pin a work unit until the give-up bound. Fail now.
		d.rt.recordError(fmt.Errorf("core: LCO trigger %d to node %d: %w", tid, node, agas.ErrNodeLost))
		return
	}
	if !d.tracedPeer(node) {
		tc = parcel.TraceCtx{}
	}
	d.rt.emitSpan(trace.SpanWireSend, d.home, &tc, ActionLCOTrigger)
	frame := encodeLCOTrigger(kind, tid, op, slot, hops, g, value, tc)
	// Triggers ride the same lane the target object's parcels do, so a
	// parcel and the trigger it races stay mutually ordered.
	pe := &lcoPending{node: node, lane: d.laneOf(g), frame: frame, lastSend: time.Now()}
	s := &d.lco
	s.mu.Lock()
	if s.stopped {
		// A trigger racing with (or arriving after) Shutdown: restarting
		// the retry loop here would leak a goroutine nothing will ever
		// stop, retransmitting into a closed transport. Reject instead.
		s.mu.Unlock()
		d.rt.recordError(fmt.Errorf("core: LCO trigger %d to node %d after shutdown", tid, node))
		return
	}
	if s.pend == nil {
		s.pend = make(map[uint64]*lcoPending)
	}
	if _, dup := s.pend[tid]; dup {
		// The same logical trigger is already in flight from this node —
		// a fault-duplicated or retransmitted frame being re-forwarded.
		// The existing entry guarantees delivery and holds the one work
		// unit its ack releases; a second entry under the same tid would
		// charge a unit the single ack can never release.
		s.mu.Unlock()
		return
	}
	d.rt.addWork()
	s.pend[tid] = pe
	if !s.started {
		s.started = true
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go d.lcoRetryLoop(s.stop, s.done)
	}
	s.mu.Unlock()
	s.sent.Add(1)
	d.xmitLCO(pe)
}

// xmitLCO transmits (or retransmits) a pending trigger frame, applying
// the fault injector's verdict: a dropped frame is simply not sent — the
// retry loop recovers it — and a duplicated one is sent twice, exercising
// the receiver's dedup. Transport errors are left to the retry loop too.
func (d *distState) xmitLCO(pe *lcoPending) {
	copies := 1
	if d.rt.faults != nil {
		copies = d.rt.faults.verdict(true)
	}
	for i := 0; i < copies; i++ {
		if err := d.sendRetryLane(pe.node, pe.lane, pe.frame); err != nil {
			return
		}
	}
}

// lcoRetryLoop retransmits unacknowledged trigger frames until stopped.
// One loop serves the whole runtime; it starts with the first cross-node
// trigger and stops at Shutdown.
func (d *distState) lcoRetryLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(lcoRetryTick)
	defer t.Stop()
	s := &d.lco
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now()
		var resend []*lcoPending
		var expired []uint64
		s.mu.Lock()
		for tid, pe := range s.pend {
			if now.Sub(pe.lastSend) < lcoRetryAfter {
				continue
			}
			pe.attempts++
			if pe.attempts > lcoGiveUpAttempts {
				expired = append(expired, tid)
				continue
			}
			pe.lastSend = now
			resend = append(resend, pe)
		}
		for _, tid := range expired {
			delete(s.pend, tid)
		}
		s.mu.Unlock()
		for _, pe := range resend {
			s.retried.Add(1)
			d.xmitLCO(pe)
		}
		for _, tid := range expired {
			d.rt.recordError(fmt.Errorf("core: LCO trigger %d unacknowledged after %d attempts", tid, lcoGiveUpAttempts))
			d.rt.doneWork()
		}
	}
}

// dropPendTo abandons every pending trigger addressed to a node declared
// dead and returns how many were dropped. Each entry holds one work unit
// whose ack can no longer arrive; the caller (declareDead) releases them,
// else Wait would hang until the give-up bound (~30s per frame).
func (d *distState) dropPendTo(node int) int {
	s := &d.lco
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for tid, pe := range s.pend {
		if pe.node == node {
			delete(s.pend, tid)
			n++
		}
	}
	return n
}

// stopLCO shuts the retry loop down for good: stopped rejects any
// trigger still racing in, so the loop can never restart with channels
// nothing would close. Pending entries (there are none after a clean
// Wait) are abandoned.
func (d *distState) stopLCO() {
	s := &d.lco
	s.mu.Lock()
	started := s.started
	stop, done := s.stop, s.done
	s.started = false
	s.stopped = true
	s.mu.Unlock()
	if started {
		close(stop)
		<-done
	}
}

// sendTriggerParcel re-ships a remote-destined px.lco.trigger parcel as
// an acknowledged fLCOSet frame: a trigger that discovers mid-route that
// its target lives on — or migrated to — another node keeps the
// acknowledging protocol's reliability on every hop, instead of degrading
// to at-most-once parcel delivery past the first one. Each forward leg is
// retransmitted until the next node acks, and the target's dedup set
// absorbs whatever duplicates the hops create. Consumes p, releasing its
// routing leg's work unit after the frame's own unit is charged.
func (d *distState) sendTriggerParcel(node, src int, p *parcel.Parcel) {
	rd := parcel.NewReader(p.Args)
	tid := rd.Uint64()
	op := TrigOp(rd.Uint64())
	slot := uint32(rd.Uint64())
	value := rd.Bytes()
	if err := rd.Err(); err != nil {
		d.rt.deliverFailure(src, p, fmt.Errorf("core: malformed trigger args: %w", err))
		return
	}
	d.sendLCOTrigger(node, tid, op, slot, p.Hops, p.Dest, value, false, p.Trace)
	parcel.Release(p)
	d.rt.doneWork()
}

// onLCOTrigger handles one received fLCOSet/fLCOFire frame: charge a work
// unit, acknowledge, and hand the trigger to the standard parcel delivery
// path — which parks it at a migration fence or chases a forwarding
// pointer exactly as it would any parcel. The acknowledgement covers only
// this hop: a target that turns out to live on another node re-enters the
// acknowledging protocol as a fresh frame on the next leg (route hands
// remote-destined trigger parcels to sendTriggerParcel), so reliability
// is preserved hop by hop rather than ending at the first ack. Duplicate
// deliveries reach the target and are absorbed by its dedup set, so the
// acknowledgement needs no receive-side dedup of its own.
func (d *distState) onLCOTrigger(from int, body []byte) {
	tid, op, g, slot, hops, value, tc, ok := decodeLCOTrigger(body)
	if !ok {
		d.rt.recordError(fmt.Errorf("core: bad LCO trigger frame from node %d", from))
		return
	}
	d.lco.recv.Add(1)
	d.rt.addWork()
	if err := d.sendRetry(from, encodeLCOAck(tid)); err != nil {
		// The sender keeps retrying the trigger; we will re-ack the
		// duplicate. Record for diagnosis only.
		d.rt.recordError(fmt.Errorf("core: LCO ack to node %d: %w", from, err))
	}
	d.rt.emitSpan(trace.SpanWireRecv, d.home, &tc, ActionLCOTrigger)
	// encodeTriggerArgs copies value out of the transport's read buffer.
	p := parcel.Acquire(g, ActionLCOTrigger, encodeTriggerArgs(tid, op, slot, value))
	p.Hops = hops // the frame carries the chain's spent forwarding budget
	p.Trace = tc  // the trigger keeps its chain's trace across the hop
	owner, _, rerr := d.resolveHere(g)
	d.deliver(p, owner, rerr)
}

// onLCOAck resolves the pending entry for an acknowledged trigger,
// releasing the work unit held since sendLCOTrigger. Duplicate acks (the
// receiver re-acks every duplicate delivery) find no entry and are
// ignored.
func (d *distState) onLCOAck(body []byte) {
	tid, ok := decodeLCOAck(body)
	if !ok {
		return
	}
	s := &d.lco
	s.mu.Lock()
	pe := s.pend[tid]
	if pe != nil {
		delete(s.pend, tid)
	}
	s.mu.Unlock()
	if pe != nil {
		d.rt.doneWork()
	}
}
