package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
)

// The migration fence must quiesce the object: an action observed running
// when the fence closes completes before the payload moves, and parcels
// arriving mid-move park (with their work units charged, so Wait counts
// them) and re-execute against the new location afterwards.
func TestMigrationFenceParksAndReplays(t *testing.T) {
	r := New(Config{Localities: 3, WorkersPerLocality: 2})
	defer r.Shutdown()

	inAction := make(chan struct{})
	release := make(chan struct{})
	var sum atomic.Int64
	r.MustRegisterAction("fence.add", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		v := args.Int64()
		if err := args.Err(); err != nil {
			return nil, err
		}
		if v == 1 { // the slow first parcel holds the object busy
			close(inAction)
			<-release
		}
		sum.Add(v)
		return nil, nil
	})
	obj := r.NewDataAt(0, struct{}{})

	// Occupy the object, then start a migration that must wait for it.
	r.SendFrom(0, parcel.New(obj, "fence.add", parcel.NewArgs().Int64(1).Encode()))
	<-inAction
	migDone := make(chan error, 1)
	go func() { migDone <- r.Migrate(obj, 2) }()

	// Wait until the migration has observably closed the fence — only
	// then is parking guaranteed for the chasers below.
	waitFenceClosed(t, r, obj)
	deadline := time.Now().Add(5 * time.Second)

	// The fence is closed: parcels sent now must park — neither running
	// at the vanishing old location nor getting lost. An idle sibling
	// worker drains them into the fence while the first action blocks.
	for i := 0; i < 8; i++ {
		r.SendFrom(1, parcel.New(obj, "fence.add", parcel.NewArgs().Int64(10).Encode()))
	}
	for r.slow.Parked.Value() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 8 chasers parked", r.slow.Parked.Value())
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case err := <-migDone:
		t.Fatalf("migration completed while an action was running: %v", err)
	default:
	}
	close(release)
	if err := <-migDone; err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if got := sum.Load(); got != 81 {
		t.Fatalf("sum = %d, want 81 (1 + 8×10): parcels lost or duplicated across the move", got)
	}
	if owner, err := r.AGAS().Owner(obj); err != nil || owner != 2 {
		t.Fatalf("owner after migration = %d, %v", owner, err)
	}
	if _, ok := r.LocalObject(2, obj); !ok {
		t.Fatal("payload not at the new locality")
	}
	if r.SLOW().Parked.Value() == 0 {
		t.Fatal("no parcel was parked despite the held fence")
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}

// waitFenceClosed polls until a migration has closed g's fence.
func waitFenceClosed(t *testing.T, r *Runtime, g agas.GID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := r.fences.shard(g)
		s.mu.Lock()
		f := s.m[g]
		closed := f != nil && f.migrating
		s.mu.Unlock()
		if closed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never closed the fence")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// An action migrating a second object while its own target is being
// quiesced must not deadlock: migrations lock per object, never
// runtime-wide, so the fence waiting on this action cannot block the
// action's own (unrelated) migration.
func TestMigrateFromActionDuringOwnMigration(t *testing.T) {
	r := New(Config{Localities: 3, WorkersPerLocality: 2})
	defer r.Shutdown()
	other := r.NewDataAt(1, []int64{1})
	inAction := make(chan struct{})
	proceed := make(chan struct{})
	r.MustRegisterAction("abba.move", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		close(inAction)
		<-proceed
		return nil, ctx.Runtime().Migrate(other, 2)
	})
	obj := r.NewDataAt(0, struct{}{})
	r.SendFrom(0, parcel.New(obj, "abba.move", nil))
	<-inAction
	migDone := make(chan error, 1)
	go func() { migDone <- r.Migrate(obj, 1) }()
	waitFenceClosed(t, r, obj) // obj's migration now waits on the action...
	close(proceed)             // ...which itself migrates `other`
	if err := <-migDone; err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if owner, err := r.AGAS().Owner(obj); err != nil || owner != 1 {
		t.Fatalf("obj owner = %d, %v; want 1", owner, err)
	}
	if owner, err := r.AGAS().Owner(other); err != nil || owner != 2 {
		t.Fatalf("other owner = %d, %v; want 2", owner, err)
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}

// Hardware names anchor broadcast and spawn routing and must never move.
func TestMigrateHardwareRejected(t *testing.T) {
	r := New(Config{Localities: 2})
	defer r.Shutdown()
	if err := r.Migrate(r.LocalityGID(0), 1); err == nil {
		t.Fatal("hardware migration accepted")
	}
}

// Generation must advance once per migration so stale verdicts order
// correctly, and repeated migration keeps exactly one copy live.
func TestMigrationGenerationsAdvance(t *testing.T) {
	r := New(Config{Localities: 4})
	defer r.Shutdown()
	obj := r.NewDataAt(0, []int64{7})
	for i, to := range []int{1, 3, 2, 0} {
		if err := r.Migrate(obj, to); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		gen, err := r.AGAS().Generation(obj)
		if err != nil || gen != uint64(i)+2 {
			t.Fatalf("after move %d generation = %d, %v; want %d", i, gen, err, i+2)
		}
		copies := 0
		for loc := 0; loc < 4; loc++ {
			if _, ok := r.LocalObject(loc, obj); ok {
				copies++
			}
		}
		if copies != 1 {
			t.Fatalf("after move %d found %d copies", i, copies)
		}
	}
}

// A migration racing a stream of split-phase calls must resolve every
// future exactly once — the single-process half of the distributed
// stress guarantee.
func TestMigrationUnderConcurrentCalls(t *testing.T) {
	r := New(Config{Localities: 4, WorkersPerLocality: 2})
	defer r.Shutdown()
	r.MustRegisterAction("mig.incr", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		c := target.(*int64)
		*c++
		return *c, nil
	})
	var count int64
	obj := r.NewObjectAt(0, agas.KindData, &count)

	const senders, calls = 4, 40
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				fut := r.CallFrom(src, obj, "mig.incr", nil)
				if _, err := fut.Get(); err != nil {
					t.Errorf("call from L%d: %v", src, err)
					return
				}
			}
		}(s)
	}
	for _, to := range []int{2, 3, 1} {
		time.Sleep(2 * time.Millisecond)
		if err := r.Migrate(obj, to); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	r.Wait()
	if count != senders*calls {
		t.Fatalf("count = %d, want %d", count, senders*calls)
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}
