package core

import (
	"sync"

	"repro/internal/agas"
	"repro/internal/parcel"
)

// Migration fencing: a migration must observe the object with no action
// mid-flight, and parcels that arrive while the payload is in transit must
// neither execute against a vanished object nor be dropped. The fence
// table tracks, per object, how many actions are currently applied to it;
// closing the fence waits for that count to drain and parks every later
// arrival until the move commits. Parked parcels keep a charged work unit,
// so Wait cannot declare quiescence while any are held.

// fenceShards bounds lock contention on the hot enter/exit path; parcels
// for one object hash to one shard. Per-object tracking costs every
// non-hardware execution one uncontended shard lock plus a map
// insert/delete — measured as lost in the noise of the per-parcel path
// (E10 parcel-local and the benchdiff gate are unchanged) — and in
// exchange a migration quiesces exactly its own object: a shard- or
// locality-coarse count would stall migrations behind unrelated
// long-running actions.
const fenceShards = 64

// parkedParcel is one arrival held back by a closed fence, remembering the
// locality it was delivered to so the re-route starts from there.
type parkedParcel struct {
	loc int
	p   *parcel.Parcel
}

// objFence is the execution state of one object while any action runs on
// it or a migration is quiescing it.
type objFence struct {
	active    int
	migrating bool
	parked    []parkedParcel
	idle      chan struct{} // non-nil while a migration waits for active to drain
}

type fenceShard struct {
	mu   sync.Mutex
	m    map[agas.GID]*objFence
	free []*objFence // recycled fences: enter/exit churns one per dispatch
}

// get reuses a recycled fence or allocates one; callers hold the shard
// lock.
func (s *fenceShard) get() *objFence {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	return &objFence{}
}

// put recycles an idle fence; callers hold the shard lock. The freelist is
// bounded: steady state needs about one fence per concurrently executing
// parcel per shard.
func (s *fenceShard) put(f *objFence) {
	if len(s.free) >= 64 {
		return
	}
	f.active = 0
	f.migrating = false
	f.parked = f.parked[:0]
	f.idle = nil
	s.free = append(s.free, f)
}

// fenceTable is the per-runtime set of object fences. Entries exist only
// while an object has in-flight actions or an in-progress migration, so
// the table stays small regardless of how many objects the node hosts.
type fenceTable struct {
	shards [fenceShards]fenceShard
}

func newFenceTable() *fenceTable {
	t := &fenceTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[agas.GID]*objFence)
	}
	return t
}

func (t *fenceTable) shard(g agas.GID) *fenceShard {
	h := g.Seq ^ uint64(g.Home)<<32
	return &t.shards[h%fenceShards]
}

// enter registers an action execution on g at locality loc. It reports
// false when the fence is closed for migration: the parcel was parked and
// must not execute; the caller charges a work unit for the parked leg.
func (t *fenceTable) enter(g agas.GID, loc int, p *parcel.Parcel) bool {
	s := t.shard(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.m[g]
	if f == nil {
		f = s.get()
		s.m[g] = f
	}
	if f.migrating {
		f.parked = append(f.parked, parkedParcel{loc: loc, p: p})
		return false
	}
	f.active++
	return true
}

// exit ends an action execution registered by enter.
func (t *fenceTable) exit(g agas.GID) {
	s := t.shard(g)
	s.mu.Lock()
	f := s.m[g]
	f.active--
	if f.active == 0 {
		if f.migrating {
			if f.idle != nil {
				close(f.idle)
				f.idle = nil
			}
		} else {
			delete(s.m, g)
			s.put(f)
		}
	}
	s.mu.Unlock()
}

// close fences g for migration: later arrivals park, and the call returns
// once the last in-flight action on g has drained. Per-object migration
// serialization (Runtime.lockMigration) guarantees a single closer per
// object.
func (t *fenceTable) close(g agas.GID) {
	s := t.shard(g)
	s.mu.Lock()
	f := s.m[g]
	if f == nil {
		f = s.get()
		s.m[g] = f
	}
	f.migrating = true
	if f.active == 0 {
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	f.idle = ch
	s.mu.Unlock()
	<-ch
}

// open lifts the fence on g and returns the parcels parked while it was
// closed, in arrival order, for the caller to re-route.
func (t *fenceTable) open(g agas.GID) []parkedParcel {
	s := t.shard(g)
	s.mu.Lock()
	f := s.m[g]
	var parked []parkedParcel
	if f != nil {
		parked = f.parked
		delete(s.m, g)
	}
	s.mu.Unlock()
	return parked
}
