package core

import (
	"bytes"
	"testing"

	"repro/internal/agas"
	"repro/internal/parcel"
)

// FuzzLCOFrameDecode drives the pure fLCOSet/fLCOFire/fLCOAck decoders
// with arbitrary bytes: they must never panic, never claim a value
// longer than the frame, and round-trip every frame the encoders emit.
func FuzzLCOFrameDecode(f *testing.F) {
	g := agas.GID{Home: 3, Kind: agas.KindLCO, Seq: 77}
	f.Add(encodeLCOTrigger(fLCOSet, 42, TrigSet, 0, 0, g, []byte{9, 9}, parcel.TraceCtx{})[1:])
	f.Add(encodeLCOTrigger(fLCOFire, 7, TrigContribute, 3, 2, g, nil, parcel.TraceCtx{})[1:])
	f.Add(encodeLCOTrigger(fLCOSet, 8, TrigSet, 0, 1, g, []byte{1},
		parcel.TraceCtx{ID: 0xfeed, Span: 0xbeef, Flags: parcel.TraceSampled})[1:])
	f.Add(encodeLCOAck(99)[1:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		if tid, op, gid, slot, hops, value, tc, ok := decodeLCOTrigger(data); ok {
			if len(value) > len(data) {
				t.Fatalf("value longer than frame: %d > %d", len(value), len(data))
			}
			re := encodeLCOTrigger(fLCOSet, tid, op, slot, hops, gid, value, tc)
			tid2, op2, gid2, slot2, hops2, value2, tc2, ok2 := decodeLCOTrigger(re[1:])
			if !ok2 || tid2 != tid || op2 != op || gid2 != gid || slot2 != slot || hops2 != hops || !bytes.Equal(value2, value) {
				t.Fatalf("re-encode mismatch: %v %v %v %v %v vs %v %v %v %v %v",
					tid, op, gid, slot, hops, tid2, op2, gid2, slot2, hops2)
			}
			// A zero context must not re-encode as a trailer, and a nonzero
			// one must survive the round trip — unless the decoded value
			// absorbed trailer-shaped bytes, which re-encoding disambiguates.
			if tc2 != tc {
				t.Fatalf("trace context mismatch: %+v vs %+v", tc, tc2)
			}
		}
		if tid, ok := decodeLCOAck(data); ok {
			re := encodeLCOAck(tid)
			if tid2, ok2 := decodeLCOAck(re[1:]); !ok2 || tid2 != tid {
				t.Fatalf("ack re-encode mismatch: %d vs %d", tid, tid2)
			}
		}
	})
}

// TestLCOFrameRoundTrip pins the frame layout against the encoder.
func TestLCOFrameRoundTrip(t *testing.T) {
	g := agas.GID{Home: 1, Kind: agas.KindLCO, Seq: 12345}
	frame := encodeLCOTrigger(fLCOSet, 0xABCD, TrigSupply, 6, 4, g, []byte("hello"), parcel.TraceCtx{})
	if frame[0] != fLCOSet {
		t.Fatalf("frame kind %d", frame[0])
	}
	tid, op, gid, slot, hops, value, tc, ok := decodeLCOTrigger(frame[1:])
	if !ok || tid != 0xABCD || op != TrigSupply || gid != g || slot != 6 || hops != 4 || string(value) != "hello" || !tc.Zero() {
		t.Fatalf("roundtrip lost fields: %v %v %v %v %v %q %v %v", tid, op, gid, slot, hops, value, tc, ok)
	}
	if _, _, _, _, _, _, _, ok := decodeLCOTrigger(frame[1 : len(frame)-1]); ok {
		t.Fatal("truncated frame decoded")
	}
	// With a trace context the trailer rides after the value and survives.
	want := parcel.TraceCtx{ID: 0x1111, Span: 0x2222, Flags: parcel.TraceSampled}
	traced := encodeLCOTrigger(fLCOFire, 1, TrigSet, 0, 0, g, []byte("v"), want)
	if len(traced) != len(frame[:len(frame)-4])+parcel.TraceWireSize {
		t.Fatalf("traced frame length %d", len(traced))
	}
	if _, _, _, _, _, v2, tc2, ok := decodeLCOTrigger(traced[1:]); !ok || string(v2) != "v" || tc2 != want {
		t.Fatalf("traced roundtrip: %q %+v %v", v2, tc2, ok)
	}
	ack := encodeLCOAck(7)
	if tid, ok := decodeLCOAck(ack[1:]); !ok || tid != 7 {
		t.Fatalf("ack roundtrip: %d %v", tid, ok)
	}
	if _, ok := decodeLCOAck(ack[1:5]); ok {
		t.Fatal("short ack decoded")
	}
}
