package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/agas"
)

// FuzzDistControlDecoders feeds the distributed layer's hand-rolled
// binary decoders — the migration frame header, moved verdicts, RPC
// outcomes, drain replies, and handshake hellos — arbitrary bytes. They
// consume untrusted socket data, so they must never panic, and any
// accepted input must re-encode to a form that decodes identically.
// manyActionNames builds n distinct action names for hello-table seeds.
func manyActionNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("app.action.%03d", i)
	}
	return names
}

func FuzzDistControlDecoders(f *testing.F) {
	g := agas.GID{Home: 3, Kind: agas.KindData, Seq: 99}
	f.Add(encodeMigHeader(fMigrate, 7, g, 2, 5, 0))
	f.Add(append(encodeMigHeader(fDirUpdate, 1, g, 0, 1, 4), 0xde, 0xad, 0xbe, 0xef))
	f.Add(encodeHello([]string{"px.lco.set", "app.frob"}, true, true, nil))
	f.Add(encodeHello(nil, false, true, nil))
	f.Add(encodeHello([]string{"px.lco.set"}, true, true, &memberHello{node: 3, lo: 12, hi: 16, addr: "127.0.0.1:9999"}))
	f.Add(encodeHello(nil, false, false, &memberHello{node: 1, lo: 4, hi: 8, addr: "[::1]:70000"}))
	f.Add(encodeBeat(0xdeadbeefcafef00d))
	f.Add(encodeDead(7))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 40))
	// Truncation and padding around each decoder's exact frame size, plus
	// a hello carrying a large interning table — the shapes the sharded
	// transport's per-lane hello re-delivery makes more frequent.
	f.Add(encodeBeat(1)[:4])
	f.Add(append(encodeDead(3), 0x00))
	f.Add(append(encodeMigHeader(fMigrate, ^uint64(0), g, -1, ^uint64(0), 0), 0xff))
	f.Add(encodeHello(manyActionNames(64), true, false, nil))
	f.Add(encodeHello([]string{""}, true, true, &memberHello{node: 0, lo: 0, hi: 0, addr: ""}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Migration header: accepted inputs must survive a re-encode.
		if xid, g, loc, gen, rest, ok := decodeMigHeader(data); ok {
			re := append(encodeMigHeader(fMigrate, xid, g, loc, gen, len(rest)), rest...)
			xid2, g2, loc2, gen2, rest2, ok2 := decodeMigHeader(re[1:])
			if !ok2 || xid2 != xid || g2 != g || loc2 != loc || gen2 != gen || !bytes.Equal(rest2, rest) {
				t.Fatalf("migration header did not round trip: %v %v %d %d", g, g2, loc, loc2)
			}
		}
		// The remaining decoders just must not panic or over-read.
		decodeMovedVerdict(data)
		if xid, rep, ok := decodeOutcome(data); ok && !rep.ok && len(rep.msg) > len(data) {
			t.Fatalf("outcome %d message longer than input", xid)
		}
		decodeDrainReply(1, data)
		decodeBeat(data)
		decodeDead(data)
		if names, canIntern, canTrace, mh, err := parseHello(data); err == nil && (canIntern || canTrace || mh != nil) {
			// Accepted hellos re-encode canonically, capability bits intact.
			// Names only travel under the interning bit: a hello may carry
			// both, but receivers ignore (and re-encoders drop) the table
			// without it, so the canonical form has none.
			if !canIntern {
				names = nil
			}
			names2, ci2, ct2, mh2, err2 := parseHello(encodeHello(names, canIntern, canTrace, mh))
			if err2 != nil || ci2 != canIntern || ct2 != canTrace || len(names2) != len(names) {
				t.Fatalf("hello did not round trip: %v vs %v (%v)", names, names2, err2)
			}
			if (mh == nil) != (mh2 == nil) {
				t.Fatalf("member section did not round trip: %v vs %v", mh, mh2)
			}
			if mh != nil && *mh != *mh2 {
				t.Fatalf("member section changed in round trip: %+v vs %+v", *mh, *mh2)
			}
		}
	})
}
