package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Distributed frame types. Every transport frame begins with one type byte.
const (
	fParcel     = byte(1) // encoded parcel
	fAck        = byte(2) // per-parcel receipt; releases the sender's work unit
	fDrain      = byte(3) // quiescence probe: u64 seq
	fDrainReply = byte(4) // probe answer: u64 seq | i64 pending | u64 sent | u64 recv
	fGoodbye    = byte(5) // node departure: u64 final sent | u64 final recv
	fHalt       = byte(6) // cooperative machine-wide halt request
)

// distState is the runtime's view of the multi-node machine: the frame
// transport, the locality→node map, and the cross-node accounting that
// extends quiescence detection over the wire.
//
// Accounting model: a parcel leaving this node keeps its local work unit
// charged until the receiving node acknowledges the frame; the receiver
// charges its own unit before acknowledging, so an in-flight parcel is
// counted by at least one node at every instant. Global quiescence is then
// detected with a Mattern-style two-wave probe: all nodes report zero
// pending work and identical, balanced send/receive totals across two
// consecutive waves.
type distState struct {
	rt   *Runtime
	tr   transport.Transport
	node int
	lmap *agas.LocalityMap
	home int // first resident locality; anchors failure accounting

	sent atomic.Int64 // fParcel frames sent (successfully handed to the transport)
	recv atomic.Int64 // fParcel frames received

	drainMu  sync.Mutex
	drainSeq uint64
	drains   map[uint64]chan drainReply
	departed map[int]drainReply // final totals of nodes that said goodbye

	haltOnce sync.Once
	halt     chan struct{}
}

type drainReply struct {
	node       int
	pending    int64
	sent, recv uint64
}

func newDistState(r *Runtime, tr transport.Transport, node int, lmap *agas.LocalityMap) *distState {
	return &distState{
		rt:       r,
		tr:       tr,
		node:     node,
		lmap:     lmap,
		home:     lmap.NodeRange(node).Lo,
		drains:   make(map[uint64]chan drainReply),
		departed: make(map[int]drainReply),
		halt:     make(chan struct{}),
	}
}

// onFrame is the transport receive handler. It runs on transport
// goroutines; everything it does is either non-blocking or a bounded send.
func (d *distState) onFrame(from int, frame []byte) {
	if len(frame) == 0 {
		d.rt.recordError(fmt.Errorf("core: empty frame from node %d", from))
		return
	}
	switch frame[0] {
	case fParcel:
		d.onParcel(from, frame[1:])
	case fAck:
		d.rt.doneWork()
	case fDrain:
		if len(frame) < 9 {
			return
		}
		d.replyDrain(from, binary.LittleEndian.Uint64(frame[1:9]))
	case fDrainReply:
		d.onDrainReply(from, frame[1:])
	case fGoodbye:
		if len(frame) < 17 {
			return
		}
		d.drainMu.Lock()
		d.departed[from] = drainReply{
			node: from,
			sent: binary.LittleEndian.Uint64(frame[1:9]),
			recv: binary.LittleEndian.Uint64(frame[9:17]),
		}
		d.drainMu.Unlock()
	case fHalt:
		d.haltOnce.Do(func() { close(d.halt) })
	default:
		d.rt.recordError(fmt.Errorf("core: unknown frame type %d from node %d", frame[0], from))
	}
}

// onParcel decodes and delivers one cross-node parcel. The work unit is
// charged before the acknowledgement goes out so the parcel is never
// uncounted.
func (d *distState) onParcel(from int, body []byte) {
	d.recv.Add(1)
	p, rest, err := parcel.Decode(body)
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("core: %d trailing bytes after parcel", len(rest))
	}
	if err == nil {
		d.rt.addWork()
	}
	d.ack(from)
	if err != nil {
		d.rt.recordError(fmt.Errorf("core: bad parcel frame from node %d: %w", from, err))
		return
	}
	if d.rt.ring != nil {
		d.rt.ring.Emitf(trace.KindParcelRecv, d.home, "from N%d %s", from, p)
	}
	d.deliver(p)
}

// deliver routes a received parcel to its resident locality, or — when
// this node's view was stale — repairs and re-routes it through the
// standard forwarding path (hop-bounded, traced, delayed). Runs with one
// work unit charged; every path releases it exactly once.
func (d *distState) deliver(p *parcel.Parcel) {
	r := d.rt
	owner, err := r.agas.ResolveCached(d.home, p.Dest)
	if err != nil {
		r.deliverFailure(d.home, p, err)
		return
	}
	if node := d.lmap.NodeOf(owner); node != d.node {
		r.forward(d.home, p) // charges the new routing leg...
		r.doneWork()         // ...so this one is released here
		return
	}
	r.enqueue(owner, p)
}

// sendRetry delivers a frame, retrying once: a Send error means
// non-delivery, and the second attempt redials a connection that went
// stale since its last use, so a single transient break cannot lose a
// frame between two healthy nodes.
func (d *distState) sendRetry(node int, frame []byte) error {
	err := d.tr.Send(node, frame)
	if err != nil {
		err = d.tr.Send(node, frame)
	}
	return err
}

func (d *distState) ack(node int) {
	if err := d.sendRetry(node, []byte{fAck}); err != nil {
		// The sender stays unreachable: its work unit for this parcel
		// leaks and its Wait will block until the operator intervenes —
		// parcels are not fault tolerant. Record for diagnosis.
		d.rt.recordError(fmt.Errorf("core: ack to node %d: %w", node, err))
	}
}

// sendParcel ships p to node. The caller's work unit for p stays charged
// until the peer acknowledges; on transport failure the parcel fails
// locally (parcels are at-most-once, as on the modelled network).
func (d *distState) sendParcel(node, src int, p *parcel.Parcel) {
	frame := p.Encode([]byte{fParcel})
	d.sent.Add(1)
	if err := d.sendRetry(node, frame); err != nil {
		d.sent.Add(-1)
		d.rt.deliverFailure(src, p, fmt.Errorf("core: transport to node %d: %w", node, err))
		return
	}
	d.rt.slow.ParcelsSent.Inc()
}

// replyDrain answers a quiescence probe with this node's instantaneous
// accounting snapshot.
func (d *distState) replyDrain(to int, seq uint64) {
	buf := make([]byte, 0, 33)
	buf = append(buf, fDrainReply)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.rt.pending.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.sent.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.recv.Load()))
	if err := d.sendRetry(to, buf); err != nil {
		d.rt.recordError(fmt.Errorf("core: drain reply to node %d: %w", to, err))
	}
}

func (d *distState) onDrainReply(from int, body []byte) {
	if len(body) < 32 {
		return
	}
	rep := drainReply{
		node:    from,
		pending: int64(binary.LittleEndian.Uint64(body[8:16])),
		sent:    binary.LittleEndian.Uint64(body[16:24]),
		recv:    binary.LittleEndian.Uint64(body[24:32]),
	}
	seq := binary.LittleEndian.Uint64(body[0:8])
	d.drainMu.Lock()
	ch, ok := d.drains[seq]
	d.drainMu.Unlock()
	if ok {
		select {
		case ch <- rep:
		default: // probe already abandoned
		}
	}
}

// probe runs one drain wave: ask every live peer for its snapshot and
// combine with our own. ok is false when a peer could not be reached or
// did not answer in time (the wave is then retried).
func (d *distState) probe() (allZero bool, sent, recv uint64, ok bool) {
	d.drainMu.Lock()
	d.drainSeq++
	seq := d.drainSeq
	ch := make(chan drainReply, d.tr.Nodes())
	d.drains[seq] = ch
	gone := make(map[int]drainReply, len(d.departed))
	for n, rep := range d.departed {
		gone[n] = rep
	}
	d.drainMu.Unlock()
	defer func() {
		d.drainMu.Lock()
		delete(d.drains, seq)
		d.drainMu.Unlock()
	}()

	probeFrame := make([]byte, 0, 9)
	probeFrame = append(probeFrame, fDrain)
	probeFrame = binary.LittleEndian.AppendUint64(probeFrame, seq)

	allZero = d.rt.pending.Load() == 0
	sent, recv = uint64(d.sent.Load()), uint64(d.recv.Load())
	need := make(map[int]bool)
	ok = true
	for n := 0; n < d.tr.Nodes(); n++ {
		if n == d.node {
			continue
		}
		if rep, departed := gone[n]; departed {
			sent += rep.sent
			recv += rep.recv
			continue
		}
		if err := d.sendRetry(n, probeFrame); err != nil {
			ok = false
			continue
		}
		need[n] = true
	}
	// Collect one answer per probed peer. A peer that departs mid-probe
	// never answers; its goodbye record stands in for the reply.
	timeout := time.After(500 * time.Millisecond)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for len(need) > 0 {
		select {
		case rep := <-ch:
			if !need[rep.node] {
				continue // duplicate or stale
			}
			delete(need, rep.node)
			if rep.pending != 0 {
				allZero = false
			}
			sent += rep.sent
			recv += rep.recv
		case <-tick.C:
			d.drainMu.Lock()
			for n := range need {
				if rep, departed := d.departed[n]; departed {
					delete(need, n)
					sent += rep.sent
					recv += rep.recv
				}
			}
			d.drainMu.Unlock()
		case <-timeout:
			return false, 0, 0, false
		}
	}
	return allZero, sent, recv, ok
}

// waitGlobal blocks until the whole machine is quiescent: this node is
// locally quiet and two consecutive probe waves observe every node with
// zero pending work and unchanged, balanced cross-node totals (Mattern's
// four-counter method, collapsed to machine-wide sums).
func (d *distState) waitGlobal() {
	var prevSent, prevRecv uint64
	stable := false
	backoff := 100 * time.Microsecond
	for {
		d.rt.waitLocal()
		allZero, sent, recv, ok := d.probe()
		if ok && allZero && sent == recv {
			if stable && sent == prevSent && recv == prevRecv {
				return
			}
			stable, prevSent, prevRecv = true, sent, recv
			continue // immediately run the confirming wave
		}
		stable = false
		time.Sleep(backoff)
		if backoff *= 2; backoff > 10*time.Millisecond {
			backoff = 10 * time.Millisecond
		}
	}
}

// goodbye announces this node's departure with its final totals so peers
// can complete quiescence detection without it. Peers that already said
// goodbye themselves are skipped — retrying into their closed listeners
// would burn the whole dial budget for nothing.
func (d *distState) goodbye() {
	buf := make([]byte, 0, 17)
	buf = append(buf, fGoodbye)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.sent.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.recv.Load()))
	d.drainMu.Lock()
	gone := make(map[int]bool, len(d.departed))
	for n := range d.departed {
		gone[n] = true
	}
	d.drainMu.Unlock()
	for n := 0; n < d.tr.Nodes(); n++ {
		if n != d.node && !gone[n] {
			d.sendRetry(n, buf) // best effort: the peer may be gone anyway
		}
	}
}

// requestHalt broadcasts a cooperative halt and trips the local halt
// channel. A halt that cannot be delivered leaves that peer running — it
// is recorded, but only the operator can free an unreachable node.
func (d *distState) requestHalt() {
	for n := 0; n < d.tr.Nodes(); n++ {
		if n != d.node {
			if err := d.sendRetry(n, []byte{fHalt}); err != nil {
				d.rt.recordError(fmt.Errorf("core: halt to node %d: %w", n, err))
			}
		}
	}
	d.haltOnce.Do(func() { close(d.halt) })
}
