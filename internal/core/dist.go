package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Distributed frame types. Every transport frame begins with one type
// byte. All kinds — including migration payloads — ride the transport's
// group-commit batching: a MIGRATE frame posted while a parcel batch's
// write is in flight simply joins the next batch.
const (
	fParcel     = byte(1)  // encoded parcel
	fAck        = byte(2)  // per-parcel receipt; releases the sender's work unit
	fDrain      = byte(3)  // quiescence probe: u64 seq
	fDrainReply = byte(4)  // probe answer: u64 seq | i64 pending | u64 sent | u64 recv
	fGoodbye    = byte(5)  // node departure: u64 final sent | u64 final recv
	fHalt       = byte(6)  // cooperative machine-wide halt request
	fAckMoved   = byte(7)  // receipt + moved verdict: gid | u32 owner | u64 gen
	fMigrate    = byte(8)  // object payload push: u64 xid | gid | u32 to | u64 gen | value record
	fMigrateOK  = byte(9)  // migrate push outcome: u64 xid | u8 ok | str error
	fDirUpdate  = byte(10) // home-directory commit request: u64 xid | gid | u32 owner | u64 gen
	fDirOK      = byte(11) // commit outcome: u64 xid | u8 ok | str error
	fParcelI    = byte(12) // parcel in the interned-action wire form (see intern.go)
	fLCOSet     = byte(13) // LCO trigger: u64 tid | u8 op | gid | u32 slot | u32 hops | u32 vlen | value
	fLCOFire    = byte(14) // LCO resolution delivery to a waiter; same body as fLCOSet
	fLCOAck     = byte(15) // LCO trigger receipt: u64 tid; stops retransmission
	fBeat       = byte(16) // membership heartbeat: u64 locality-map fingerprint
	fDead       = byte(17) // authoritative death verdict: u16 node
	fLoad       = byte(18) // balancer load report: u16 n | n x (u32 locality, f64 score bits)
)

// distState is the runtime's view of the multi-node machine: the frame
// transport, the locality→node map, and the cross-node accounting that
// extends quiescence detection over the wire.
//
// Accounting model: a parcel leaving this node keeps its local work unit
// charged until the receiving node acknowledges the frame; the receiver
// charges its own unit before acknowledging, so an in-flight parcel is
// counted by at least one node at every instant. Global quiescence is then
// detected with a Mattern-style two-wave probe: all nodes report zero
// pending work and identical, balanced send/receive totals across two
// consecutive waves.
type distState struct {
	rt   *Runtime
	tr   transport.Transport
	node int
	lmap *agas.LocalityMap
	home int // first resident locality; anchors failure accounting

	sent atomic.Int64 // parcel frames sent (successfully handed to the transport)
	recv atomic.Int64 // parcel frames received

	// peerTab is the per-peer lane state: parcel counters, the
	// sent-but-unacked count whose work units a death must release,
	// capability bits from the peer's hello, liveness, and the phi
	// detector. It grows copy-on-write as nodes join.
	peerTab atomic.Pointer[[]*peerState]
	growMu  sync.Mutex

	// mb is the membership protocol state; nil when membership is off
	// (fixed machine, or the transport cannot grow).
	mb *memberState

	// intern carries the per-peer action tables; internedSent/internedRecv
	// count fParcelI traffic (observability, and the mixed-mode tests'
	// assertion that interning actually engaged).
	intern       *internState
	internedSent atomic.Uint64
	internedRecv atomic.Uint64

	drainMu  sync.Mutex
	drainSeq uint64
	drains   map[uint64]chan drainReply
	departed map[int]drainReply // final totals of nodes that said goodbye

	// rpc holds the waiters for this node's outstanding migration
	// exchanges, keyed by exchange ID. The ID — not the GID — matches a
	// reply to its request, so a reply straggling in after its exchange
	// timed out can never resolve a later exchange for the same object.
	rpcMu  sync.Mutex
	rpcSeq uint64
	rpc    map[uint64]chan rpcReply

	// lco is the sender/receiver state of the acknowledging LCO trigger
	// protocol (see lcoframes.go).
	lco lcoSendState

	// laneTr is non-nil when the transport shards peer pairs across
	// several connections (transport.LaneTransport); lanes caches its lane
	// count. Parcel and LCO-trigger traffic is spread across lanes by
	// destination-GID affinity (laneOf); control frames ride lane 0.
	laneTr transport.LaneTransport
	lanes  int

	haltOnce sync.Once
	halt     chan struct{}
}

// ackFrame is the plain per-parcel receipt, shared across sends, so the
// receive path acks without allocating. Sharing is safe even on the TCP
// transport's zero-copy path: Send references the frame until the write
// covering it returns (blocking the caller that long), but never mutates
// it, and this frame is never written to by anyone.
var ackFrame = []byte{fAck}

// rpcReply is the outcome of one migration frame exchange.
type rpcReply struct {
	ok  bool
	msg string
}

type drainReply struct {
	node       int
	pending    int64
	sent, recv uint64
	fp         uint64 // replier's membership fingerprint
}

func newDistState(r *Runtime, tr transport.Transport, node int, lmap *agas.LocalityMap) *distState {
	hr, _ := lmap.NodeRange(node)
	d := &distState{
		rt:       r,
		tr:       tr,
		node:     node,
		lmap:     lmap,
		home:     hr.Lo,
		intern:   newInternState(tr.Nodes()),
		drains:   make(map[uint64]chan drainReply),
		departed: make(map[int]drainReply),
		rpc:      make(map[uint64]chan rpcReply),
		halt:     make(chan struct{}),
	}
	d.lanes = 1
	if lt, ok := tr.(transport.LaneTransport); ok {
		d.laneTr = lt
		d.lanes = lt.Lanes()
	}
	tab := make([]*peerState, tr.Nodes())
	for i := range tab {
		tab[i] = &peerState{}
	}
	d.peerTab.Store(&tab)
	return d
}

// onFrame is the transport receive handler. It runs on transport
// goroutines; everything it does is either non-blocking or a bounded send.
func (d *distState) onFrame(from int, frame []byte) {
	if len(frame) == 0 {
		d.rt.recordError(fmt.Errorf("core: empty frame from node %d", from))
		return
	}
	// An armed crash or partition destroys the frame before the runtime
	// sees it — the node is mute, not misbehaving.
	if f := d.rt.faults; f != nil && f.silence(d.node, from) {
		return
	}
	// A death verdict is final: frames from the declared-dead are dropped,
	// so a zombie (or a healed partition) cannot re-enter the accounting.
	if d.peerDead(from) {
		return
	}
	// Stamp liveness before dispatch: the death check counts silence
	// across ALL lanes of a peer, so any frame kind on any lane vetoes a
	// pending verdict (see memberState.check).
	if ps := d.peer(from); ps != nil {
		ps.lastFrame.Store(time.Now().UnixNano())
	}
	switch frame[0] {
	case fParcel:
		d.onParcel(from, frame[1:], false)
	case fParcelI:
		d.internedRecv.Add(1)
		d.onParcel(from, frame[1:], true)
	case fAck:
		d.onAck(from)
	case fAckMoved:
		d.onAck(from)
		d.onMovedVerdict(frame[1:])
	case fMigrate:
		d.onMigrate(from, frame[1:])
	case fMigrateOK, fDirOK:
		d.onRPCReply(frame[1:])
	case fDirUpdate:
		d.onDirUpdate(from, frame[1:])
	case fLCOSet, fLCOFire:
		d.onLCOTrigger(from, frame[1:])
	case fLCOAck:
		d.onLCOAck(frame[1:])
	case fDrain:
		if len(frame) < 9 {
			return
		}
		d.replyDrain(from, binary.LittleEndian.Uint64(frame[1:9]))
	case fDrainReply:
		d.onDrainReply(from, frame[1:])
	case fGoodbye:
		if len(frame) < 17 {
			return
		}
		d.drainMu.Lock()
		d.departed[from] = drainReply{
			node: from,
			sent: binary.LittleEndian.Uint64(frame[1:9]),
			recv: binary.LittleEndian.Uint64(frame[9:17]),
		}
		d.drainMu.Unlock()
		// A clean departure ends monitoring: the peer's coming silence must
		// not read as a death (see memberState.check and declareDead).
		if ps := d.ensurePeer(from); ps != nil {
			ps.departed.Store(true)
		}
	case fHalt:
		d.haltOnce.Do(func() { close(d.halt) })
	case fBeat:
		d.onBeat(from, frame[1:])
	case fDead:
		d.onDead(from, frame[1:])
	case fLoad:
		d.onLoad(from, frame[1:])
	default:
		d.rt.recordError(fmt.Errorf("core: unknown frame type %d from node %d", frame[0], from))
	}
}

// onAck releases the work unit held by one acknowledged parcel. If the
// peer was declared dead in the window between our send and its ack, the
// death cleanup already released every unit charged to that lane, so a
// straggler ack must not release a second time.
func (d *distState) onAck(from int) {
	ps := d.peer(from)
	if ps == nil {
		d.rt.doneWork()
		return
	}
	ps.mu.Lock()
	live := !ps.dead.Load() && ps.outstanding > 0
	if live {
		ps.outstanding--
	}
	ps.mu.Unlock()
	if live {
		d.rt.doneWork()
	}
}

// onParcel decodes and delivers one cross-node parcel. The work unit is
// charged before the acknowledgement goes out so the parcel is never
// uncounted. When this node knows the destination object lives elsewhere
// — it departed by migration, or the home directory here names another
// node — the acknowledgement carries a piggybacked "moved" verdict so the
// stale sender repoints its caches before its next parcel.
//
// The parcel decodes into a pooled value that owns its bytes (body is the
// transport's reused read buffer); ownership then flows down the delivery
// path, which releases it when dispatch completes.
func (d *distState) onParcel(from int, body []byte, interned bool) {
	d.recv.Add(1)
	if ps := d.ensurePeer(from); ps != nil {
		ps.recv.Add(1)
	}
	var p *parcel.Parcel
	var rest []byte
	var err error
	if interned {
		p, rest, err = parcel.DecodePooledInterned(body, d.decodeTableFor(from))
	} else {
		p, rest, err = parcel.DecodePooled(body)
	}
	if err == nil && len(rest) == parcel.TraceWireSize {
		// A trace-capable peer appended the fixed-size trace trailer (we
		// announced the capability, or it would not have). The length is
		// unambiguous: the base wire form never leaves trailing bytes.
		p.Trace, rest, err = parcel.DecodeTrace(rest)
	}
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("core: %d trailing bytes after parcel", len(rest))
	}
	var owner int
	var gen uint64
	var g agas.GID
	rerr := err
	if err == nil {
		g = p.Dest
		d.rt.addWork()
		owner, gen, rerr = d.resolveHere(g)
	}
	d.ackParcel(from, p != nil, g, owner, gen, rerr)
	if err != nil {
		parcel.Release(p)
		d.rt.recordError(fmt.Errorf("core: bad parcel frame from node %d: %w", from, err))
		return
	}
	if d.rt.ring != nil {
		d.rt.ring.Emitf(trace.KindParcelRecv, d.home, "from N%d %s", from, p)
	}
	d.rt.emitSpan(trace.SpanWireRecv, d.home, &p.Trace, p.Action)
	d.deliver(p, owner, rerr)
}

// resolveHere reports this node's authoritative knowledge of a
// destination — the owning locality and its generation, with any
// forwarding verdict folded into the next hop. The consult counts as an
// AGAS resolution and warms the home locality's cache; it deliberately
// never reads that cache, since a stale line must not back a "moved"
// verdict. Unknown names report the error.
func (d *distState) resolveHere(g agas.GID) (owner int, gen uint64, err error) {
	return d.rt.agas.ResolveAuthoritative(d.home, g)
}

// deliver routes a received parcel — already resolved by onParcel to
// (owner, err) — to its resident locality, or, when the object is not
// hosted here, re-routes it through the standard forwarding path
// (hop-bounded, traced, delayed); a forwarding pointer or the home
// directory makes the chase a single hop. Runs with one work unit
// charged; every path releases it exactly once.
func (d *distState) deliver(p *parcel.Parcel, owner int, err error) {
	r := d.rt
	if err != nil {
		r.deliverFailure(d.home, p, err)
		return
	}
	node, known := d.lmap.NodeOf(owner)
	if !known {
		r.deliverFailure(d.home, p, fmt.Errorf("core: owner locality %d outside machine: %w", owner, agas.ErrUnknown))
		return
	}
	if node != d.node {
		r.forward(d.home, p) // charges the new routing leg...
		r.doneWork()         // ...so this one is released here
		return
	}
	r.enqueue(owner, p)
}

// tracedPeer reports whether node's hello announced the trace-context
// capability (false until its hello arrives — the first frames of a
// connection race the handshake only on transports without hello support,
// where the capability never engages at all).
func (d *distState) tracedPeer(node int) bool {
	ps := d.peer(node)
	return ps != nil && ps.traced.Load()
}

// sendRetry delivers a frame, retrying once: a Send error means
// non-delivery, and the second attempt redials a connection that went
// stale since its last use, so a single transient break cannot lose a
// frame between two healthy nodes. An armed crash or partition destroys
// the frame here and reports success — from this node's perspective the
// bytes left; the network ate them.
func (d *distState) sendRetry(node int, frame []byte) error {
	if f := d.rt.faults; f != nil && f.silence(d.node, node) {
		return nil
	}
	err := d.tr.Send(node, frame)
	if err != nil {
		err = d.tr.Send(node, frame)
	}
	return err
}

// laneOf affinity-hashes a destination GID onto a transport lane. All
// parcels for one object ride one lane, so the transport's per-lane FIFO
// preserves per-object ordering while independent objects spread across
// lanes and stop queueing behind one stream's head-of-line. The mix is a
// Fibonacci multiply over the GID's distinguishing words — Seq alone would
// stripe consecutively-allocated objects onto consecutive lanes, which is
// fine, but Home must participate so two nodes' object zero don't collide
// systematically.
func (d *distState) laneOf(g agas.GID) int {
	if d.lanes <= 1 {
		return 0
	}
	h := (g.Seq ^ uint64(g.Home)<<32 ^ uint64(g.Kind)) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(d.lanes))
}

// sendRetryLane is sendRetry over a specific transport lane. Lane 0 (and
// any lane on a laneless transport) degrades to plain sendRetry.
func (d *distState) sendRetryLane(node, lane int, frame []byte) error {
	if lane == 0 || d.laneTr == nil {
		return d.sendRetry(node, frame)
	}
	if f := d.rt.faults; f != nil && f.silence(d.node, node) {
		return nil
	}
	err := d.laneTr.SendLane(node, lane, frame)
	if err != nil {
		err = d.laneTr.SendLane(node, lane, frame)
	}
	return err
}

// ackParcel acknowledges one parcel frame, piggybacking a "moved" verdict
// when this node's authoritative knowledge (directory, import table, or
// forwarding pointer) places the destination on another node — the sender
// repoints its caches and reaches the new owner directly next time.
// resolved is false for an undecodable frame, which gets a plain receipt;
// (owner, gen, err) is onParcel's single resolution of destination g.
func (d *distState) ackParcel(node int, resolved bool, g agas.GID, owner int, gen uint64, err error) {
	// Transports copy the frame synchronously, so the plain receipt is a
	// shared constant — no allocation per received parcel.
	frame := ackFrame
	// gen 0 is an unversioned route-toward-home guess, not knowledge
	// worth teaching the sender.
	if n, known := d.lmap.NodeOf(owner); resolved && err == nil && gen > 0 && known && n != d.node {
		frame = make([]byte, 0, 1+agas.GIDSize+12)
		frame = append(frame, fAckMoved)
		frame = g.Encode(frame)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(owner))
		frame = binary.LittleEndian.AppendUint64(frame, gen)
	}
	if err := d.sendRetry(node, frame); err != nil {
		// The sender stays unreachable: its work unit for this parcel
		// leaks and its Wait will block until the operator intervenes —
		// parcels are not fault tolerant. Record for diagnosis.
		d.rt.recordError(fmt.Errorf("core: ack to node %d: %w", node, err))
	}
}

// decodeMovedVerdict parses the body of an fAckMoved frame:
// gid | u32 owner | u64 gen.
func decodeMovedVerdict(body []byte) (g agas.GID, owner int, gen uint64, ok bool) {
	g, rest, err := agas.DecodeGID(body)
	if err != nil || len(rest) != 12 {
		return agas.Nil, 0, 0, false
	}
	owner = int(int32(binary.LittleEndian.Uint32(rest[0:4])))
	gen = binary.LittleEndian.Uint64(rest[4:12])
	return g, owner, gen, true
}

// onMovedVerdict applies a piggybacked migration verdict to this node's
// translation caches.
func (d *distState) onMovedVerdict(body []byte) {
	g, owner, gen, ok := decodeMovedVerdict(body)
	if !ok || owner < 0 || owner >= d.rt.Localities() {
		return
	}
	d.rt.agas.Repoint(g, owner, gen)
}

// sendParcel ships p to node, interned when the peer understands it. The
// caller's work unit for p stays charged until the peer acknowledges; on
// transport failure the parcel fails locally (parcels are at-most-once,
// as on the modelled network). sendParcel consumes p: the encode buffer
// returns to its pool once the transport has taken the bytes, and the
// parcel itself is released unless it was recycled into the failure path.
func (d *distState) sendParcel(node, src int, p *parcel.Parcel) {
	ps := d.ensurePeer(node)
	if ps == nil {
		d.rt.deliverFailure(src, p, fmt.Errorf("core: node %d outside machine: %w", node, agas.ErrUnknown))
		return
	}
	// A parcel toward the declared-dead fails fast with the typed loss
	// error instead of dialing a corpse. The outstanding count is taken
	// under the lane lock so a racing death declaration either sees this
	// parcel's unit and releases it, or never sees it at all.
	ps.mu.Lock()
	if ps.dead.Load() {
		ps.mu.Unlock()
		d.rt.deliverFailure(src, p, fmt.Errorf("core: node %d: %w", node, agas.ErrNodeLost))
		return
	}
	ps.outstanding++
	ps.mu.Unlock()
	// The wire.send span is emitted before encoding so the trailer names
	// it as the receiving hop's parent.
	d.rt.emitSpan(trace.SpanWireSend, src, &p.Trace, p.Action)
	w := parcel.GetWire()
	// A name too long for the interned form (necessarily unregistered —
	// the peer will fail the parcel gracefully) rides the plain format,
	// which every node understands.
	if t := d.encodeTableFor(node); t != nil && p.InternEncodable() {
		w.B = append(w.B, fParcelI)
		w.B = p.EncodeInterned(w.B, t)
		d.internedSent.Add(1)
	} else {
		w.B = append(w.B, fParcel)
		w.B = p.Encode(w.B)
	}
	if !p.Trace.Zero() && d.tracedPeer(node) {
		w.B = p.Trace.Append(w.B)
	}
	d.sent.Add(1)
	ps.sent.Add(1)
	// Parcels ride the lane their destination hashes to; per-object order
	// is the per-lane FIFO.
	err := d.sendRetryLane(node, d.laneOf(p.Dest), w.B)
	// Safe even on the zero-copy transport: Send does not return until
	// the write covering w.B has completed, so nothing references the
	// buffer once we're here.
	parcel.PutWire(w)
	if err != nil {
		d.sent.Add(-1)
		ps.sent.Add(-1)
		// Undo the outstanding charge — unless a death raced in and
		// already released this unit, in which case re-charge it so the
		// failure delivery below releases a unit that exists.
		ps.mu.Lock()
		if ps.dead.Load() {
			ps.mu.Unlock()
			d.rt.addWork()
		} else {
			if ps.outstanding > 0 {
				ps.outstanding--
			}
			ps.mu.Unlock()
		}
		d.rt.deliverFailure(src, p, fmt.Errorf("core: transport to node %d: %w", node, err))
		return
	}
	parcel.Release(p)
	d.rt.slow.ParcelsSent.Inc()
}

// migrateRPCTimeout bounds how long a migration waits for a peer's
// confirmation before declaring the exchange ambiguous.
const migrateRPCTimeout = 10 * time.Second

// errMigrateUnacked marks a migration exchange whose frame was handed to
// the transport but never confirmed: the peer may or may not have applied
// it, so the caller must not assume either way.
var errMigrateUnacked = errors.New("migration unconfirmed by peer")

// rpcCall sends one migration frame (whose first 8 body bytes are the
// exchange ID xid) to node and waits for the matching fMigrateOK/fDirOK.
// delivered reports whether the peer may have applied the frame: false
// only when the transport guaranteed non-delivery or the peer rejected
// it, so the caller can safely roll back.
func (d *distState) rpcCall(node int, xid uint64, g agas.GID, frame []byte) (delivered bool, err error) {
	ch := make(chan rpcReply, 1)
	d.rpcMu.Lock()
	d.rpc[xid] = ch
	d.rpcMu.Unlock()
	defer func() {
		d.rpcMu.Lock()
		delete(d.rpc, xid)
		d.rpcMu.Unlock()
	}()
	if err := d.sendRetry(node, frame); err != nil {
		return false, fmt.Errorf("core: migration frame to node %d: %w", node, err)
	}
	select {
	case rep := <-ch:
		if !rep.ok {
			// The peer rejected the frame and provably did not apply it.
			return false, fmt.Errorf("core: node %d rejected migration of %v: %s", node, g, rep.msg)
		}
		return true, nil
	case <-time.After(migrateRPCTimeout):
		return true, fmt.Errorf("core: node %d: %w for %v", node, errMigrateUnacked, g)
	}
}

// nextXID mints an exchange ID for one migration frame round trip.
func (d *distState) nextXID() uint64 {
	d.rpcMu.Lock()
	d.rpcSeq++
	xid := d.rpcSeq
	d.rpcMu.Unlock()
	return xid
}

// encodeMigHeader builds the shared migration frame header:
// kind | u64 xid | gid | u32 loc | u64 gen.
func encodeMigHeader(kind byte, xid uint64, g agas.GID, loc int, gen uint64, extra int) []byte {
	frame := make([]byte, 0, 9+agas.GIDSize+12+extra)
	frame = append(frame, kind)
	frame = binary.LittleEndian.AppendUint64(frame, xid)
	frame = g.Encode(frame)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(loc))
	frame = binary.LittleEndian.AppendUint64(frame, gen)
	return frame
}

// decodeMigHeader parses the header written by encodeMigHeader (minus the
// kind byte, consumed by onFrame), returning any trailing payload.
func decodeMigHeader(body []byte) (xid uint64, g agas.GID, loc int, gen uint64, rest []byte, ok bool) {
	if len(body) < 8 {
		return 0, agas.Nil, 0, 0, nil, false
	}
	xid = binary.LittleEndian.Uint64(body[0:8])
	g, rest, err := agas.DecodeGID(body[8:])
	if err != nil || len(rest) < 12 {
		return 0, agas.Nil, 0, 0, nil, false
	}
	loc = int(binary.LittleEndian.Uint32(rest[0:4]))
	gen = binary.LittleEndian.Uint64(rest[4:12])
	return xid, g, loc, gen, rest[12:], true
}

// migrateTo pushes g's wire-encoded payload to node for installation at
// locality to under generation gen, and waits for the peer's verdict.
func (d *distState) migrateTo(node int, g agas.GID, to int, gen uint64, payload []byte) (delivered bool, err error) {
	xid := d.nextXID()
	frame := append(encodeMigHeader(fMigrate, xid, g, to, gen, len(payload)), payload...)
	return d.rpcCall(node, xid, g, frame)
}

// commitDir asks g's home node to commit the migrated owner in its
// authoritative directory.
func (d *distState) commitDir(node int, g agas.GID, to int, gen uint64) error {
	xid := d.nextXID()
	_, err := d.rpcCall(node, xid, g, encodeMigHeader(fDirUpdate, xid, g, to, gen, 0))
	return err
}

// replyOutcome answers migration exchange xid with its ok/error verdict.
func (d *distState) replyOutcome(node int, kind byte, xid uint64, opErr error) {
	frame := make([]byte, 0, 12)
	frame = append(frame, kind)
	frame = binary.LittleEndian.AppendUint64(frame, xid)
	if opErr == nil {
		frame = append(frame, 1, 0, 0)
	} else {
		msg := opErr.Error()
		if len(msg) > 1<<15 {
			msg = msg[:1<<15]
		}
		frame = append(frame, 0)
		frame = binary.LittleEndian.AppendUint16(frame, uint16(len(msg)))
		frame = append(frame, msg...)
	}
	if err := d.sendRetry(node, frame); err != nil {
		d.rt.recordError(fmt.Errorf("core: migration verdict to node %d: %w", node, err))
	}
}

// onMigrate installs an inbound migrated object: decode the payload, put
// it in the destination locality's store, and record the import (plus a
// cache repoint) so parcels already routed here resolve to it at once.
func (d *distState) onMigrate(from int, body []byte) {
	xid, g, to, gen, payload, ok := decodeMigHeader(body)
	if !ok {
		d.rt.recordError(fmt.Errorf("core: bad migrate frame from node %d", from))
		return
	}
	install := func() error {
		if to < 0 || to >= d.rt.Localities() || !d.rt.Resident(to) {
			return fmt.Errorf("locality %d is not hosted by node %d", to, d.node)
		}
		v, err := parcel.DecodeAny(payload)
		if err != nil {
			return fmt.Errorf("payload: %w", err)
		}
		d.rt.loc(to).Store().Put(g, v)
		d.rt.agas.DropForward(g)
		d.rt.agas.SetImport(g, to, gen)
		d.rt.agas.Repoint(g, to, gen)
		// The sender just placed this object here: the local balancer
		// defers to that decision for a cooldown before re-judging it.
		d.rt.coolBalance(g)
		if d.rt.ring != nil {
			d.rt.ring.Emitf(trace.KindMigration, to, "installed %v gen %d from N%d", g, gen, from)
		}
		return nil
	}
	d.replyOutcome(from, fMigrateOK, xid, install())
}

// onDirUpdate commits a remote owner's migration in this node's
// authoritative home directory and repoints local caches.
func (d *distState) onDirUpdate(from int, body []byte) {
	xid, g, to, gen, _, ok := decodeMigHeader(body)
	if !ok {
		d.rt.recordError(fmt.Errorf("core: bad directory update from node %d", from))
		return
	}
	commit := func() error {
		if to < 0 || to >= d.rt.Localities() {
			return fmt.Errorf("locality %d outside machine", to)
		}
		if err := d.rt.agas.CommitMigration(g, to, gen); err != nil {
			return err
		}
		d.rt.agas.Repoint(g, to, gen)
		return nil
	}
	d.replyOutcome(from, fDirOK, xid, commit())
}

// decodeOutcome parses the body of an fMigrateOK/fDirOK frame:
// u64 xid | u8 ok | (when not ok) u16 len | error message.
func decodeOutcome(body []byte) (xid uint64, rep rpcReply, ok bool) {
	if len(body) < 9 {
		return 0, rpcReply{}, false
	}
	xid = binary.LittleEndian.Uint64(body[0:8])
	rest := body[8:]
	rep.ok = rest[0] == 1
	if !rep.ok && len(rest) >= 3 {
		n := int(binary.LittleEndian.Uint16(rest[1:3]))
		if n <= len(rest)-3 {
			rep.msg = string(rest[3 : 3+n])
		}
	}
	return xid, rep, true
}

// onRPCReply resolves the waiter for a migration exchange verdict.
func (d *distState) onRPCReply(body []byte) {
	xid, rep, valid := decodeOutcome(body)
	if !valid {
		return
	}
	d.rpcMu.Lock()
	ch, ok := d.rpc[xid]
	d.rpcMu.Unlock()
	if ok {
		select {
		case ch <- rep:
		default: // a duplicate reply
		}
	}
}

// liveTotals sums this node's parcel counters over lanes to peers not
// declared dead. Traffic exchanged with a corpse can never balance — its
// side of the ledger died with it — so quiescence sums live lanes only;
// both ends of a dead lane exclude it symmetrically because the death
// verdict is gossiped machine-wide.
func (d *distState) liveTotals() (sent, recv uint64) {
	tab := *d.peerTab.Load()
	for n, ps := range tab {
		if n == d.node || ps == nil || ps.dead.Load() {
			continue
		}
		sent += uint64(ps.sent.Load())
		recv += uint64(ps.recv.Load())
	}
	return sent, recv
}

// replyDrain answers a quiescence probe with this node's instantaneous
// accounting snapshot over live lanes, stamped with its membership
// fingerprint so a prober on a divergent view invalidates the wave.
func (d *distState) replyDrain(to int, seq uint64) {
	sent, recv := d.liveTotals()
	buf := make([]byte, 0, 41)
	buf = append(buf, fDrainReply)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.rt.pending.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, sent)
	buf = binary.LittleEndian.AppendUint64(buf, recv)
	buf = binary.LittleEndian.AppendUint64(buf, d.lmap.Fingerprint())
	if err := d.sendRetry(to, buf); err != nil {
		d.rt.recordError(fmt.Errorf("core: drain reply to node %d: %w", to, err))
	}
}

// decodeDrainReply parses the body of an fDrainReply frame:
// u64 seq | i64 pending | u64 sent | u64 recv | u64 fingerprint.
func decodeDrainReply(from int, body []byte) (seq uint64, rep drainReply, ok bool) {
	if len(body) < 40 {
		return 0, drainReply{}, false
	}
	return binary.LittleEndian.Uint64(body[0:8]), drainReply{
		node:    from,
		pending: int64(binary.LittleEndian.Uint64(body[8:16])),
		sent:    binary.LittleEndian.Uint64(body[16:24]),
		recv:    binary.LittleEndian.Uint64(body[24:32]),
		fp:      binary.LittleEndian.Uint64(body[32:40]),
	}, true
}

func (d *distState) onDrainReply(from int, body []byte) {
	seq, rep, valid := decodeDrainReply(from, body)
	if !valid {
		return
	}
	d.drainMu.Lock()
	ch, ok := d.drains[seq]
	d.drainMu.Unlock()
	if ok {
		select {
		case ch <- rep:
		default: // probe already abandoned
		}
	}
}

// probe runs one drain wave: ask every live peer for its snapshot and
// combine with our own. ok is false when a peer could not be reached, did
// not answer in time, answered from a divergent membership view, or the
// membership changed mid-wave (the wave is then retried).
func (d *distState) probe() (allZero bool, sent, recv uint64, ok bool) {
	fp := d.lmap.Fingerprint()
	d.drainMu.Lock()
	d.drainSeq++
	seq := d.drainSeq
	ch := make(chan drainReply, d.lmap.Nodes())
	d.drains[seq] = ch
	gone := make(map[int]drainReply, len(d.departed))
	for n, rep := range d.departed {
		gone[n] = rep
	}
	d.drainMu.Unlock()
	defer func() {
		d.drainMu.Lock()
		delete(d.drains, seq)
		d.drainMu.Unlock()
	}()

	probeFrame := make([]byte, 0, 9)
	probeFrame = append(probeFrame, fDrain)
	probeFrame = binary.LittleEndian.AppendUint64(probeFrame, seq)

	allZero = d.rt.pending.Load() == 0
	sent, recv = d.liveTotals()
	need := make(map[int]bool)
	ok = true
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n == d.node || d.peerDead(n) {
			continue
		}
		if rep, departed := gone[n]; departed {
			// A clean departure's stored totals predate any later death,
			// so they may still count a since-dead lane; the machine-wide
			// sums then never rebalance. Accepted: a crash after a clean
			// shutdown has begun is outside the supported envelope.
			sent += rep.sent
			recv += rep.recv
			continue
		}
		if err := d.sendRetry(n, probeFrame); err != nil {
			ok = false
			continue
		}
		need[n] = true
	}
	// Collect one answer per probed peer. A peer that departs mid-probe
	// never answers; its goodbye record stands in for the reply. A peer
	// declared dead mid-probe invalidates the wave — the next wave skips
	// its lane on both sides.
	timeout := time.After(500 * time.Millisecond)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for len(need) > 0 {
		select {
		case rep := <-ch:
			if !need[rep.node] {
				continue // duplicate or stale
			}
			if rep.fp != fp {
				return false, 0, 0, false // divergent membership view
			}
			delete(need, rep.node)
			if rep.pending != 0 {
				allZero = false
			}
			sent += rep.sent
			recv += rep.recv
		case <-tick.C:
			d.drainMu.Lock()
			for n := range need {
				if rep, departed := d.departed[n]; departed {
					delete(need, n)
					sent += rep.sent
					recv += rep.recv
				}
			}
			d.drainMu.Unlock()
			for n := range need {
				if d.peerDead(n) {
					return false, 0, 0, false
				}
			}
		case <-timeout:
			return false, 0, 0, false
		}
	}
	if d.lmap.Fingerprint() != fp {
		return false, 0, 0, false // membership changed under the wave
	}
	return allZero, sent, recv, ok
}

// waitGlobal blocks until the whole machine is quiescent: this node is
// locally quiet and two consecutive probe waves observe every node with
// zero pending work and unchanged, balanced cross-node totals (Mattern's
// four-counter method, collapsed to machine-wide sums).
func (d *distState) waitGlobal() {
	var prevSent, prevRecv uint64
	stable := false
	backoff := 100 * time.Microsecond
	for {
		d.rt.waitLocal()
		allZero, sent, recv, ok := d.probe()
		if ok && allZero && sent == recv {
			if stable && sent == prevSent && recv == prevRecv {
				return
			}
			stable, prevSent, prevRecv = true, sent, recv
			continue // immediately run the confirming wave
		}
		stable = false
		time.Sleep(backoff)
		if backoff *= 2; backoff > 10*time.Millisecond {
			backoff = 10 * time.Millisecond
		}
	}
}

// goodbye announces this node's departure with its final totals so peers
// can complete quiescence detection without it. Peers that already said
// goodbye themselves are skipped — retrying into their closed listeners
// would burn the whole dial budget for nothing.
func (d *distState) goodbye() {
	sent, recv := d.liveTotals()
	buf := make([]byte, 0, 17)
	buf = append(buf, fGoodbye)
	buf = binary.LittleEndian.AppendUint64(buf, sent)
	buf = binary.LittleEndian.AppendUint64(buf, recv)
	d.drainMu.Lock()
	gone := make(map[int]bool, len(d.departed))
	for n := range d.departed {
		gone[n] = true
	}
	d.drainMu.Unlock()
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n != d.node && !gone[n] && !d.peerDead(n) {
			d.sendRetry(n, buf) // best effort: the peer may be gone anyway
		}
	}
}

// requestHalt broadcasts a cooperative halt and trips the local halt
// channel. A halt that cannot be delivered leaves that peer running — it
// is recorded, but only the operator can free an unreachable node.
func (d *distState) requestHalt() {
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n != d.node && !d.peerDead(n) {
			if err := d.sendRetry(n, []byte{fHalt}); err != nil {
				d.rt.recordError(fmt.Errorf("core: halt to node %d: %w", n, err))
			}
		}
	}
	d.haltOnce.Do(func() { close(d.halt) })
}
