package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/parcel"
)

func TestDropFaultsLoseExactlyTheDroppedParcels(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DropOneIn: 4, Seed: 7},
	})
	defer r.Shutdown()
	var hits atomic.Int64
	r.MustRegisterAction("fault.count", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		hits.Add(1)
		return nil, nil
	})
	obj := r.NewDataAt(1, struct{}{})
	const n = 400
	for i := 0; i < n; i++ {
		r.SendFrom(0, parcel.New(obj, "fault.count", nil))
	}
	r.Wait()
	dropped := int64(r.Dropped())
	if dropped == 0 {
		t.Fatal("fault injector dropped nothing at 1-in-4")
	}
	if hits.Load()+dropped != n {
		t.Fatalf("conservation violated: %d delivered + %d dropped != %d",
			hits.Load(), dropped, n)
	}
}

func TestDuplicationFaultsAndIdempotentLCOs(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DupOneIn: 3, Seed: 11},
	})
	defer r.Shutdown()
	var hits atomic.Int64
	r.MustRegisterAction("fault.count", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		hits.Add(1)
		return nil, nil
	})
	obj := r.NewDataAt(1, struct{}{})
	const n = 300
	for i := 0; i < n; i++ {
		r.SendFrom(0, parcel.New(obj, "fault.count", nil))
	}
	r.Wait()
	duped := int64(r.Duplicated())
	if duped == 0 {
		t.Fatal("fault injector duplicated nothing at 1-in-3")
	}
	if hits.Load() != n+duped {
		t.Fatalf("delivered %d, want %d + %d duplicates", hits.Load(), n, duped)
	}

	// An AndGate tolerates duplicated signals: extra signals past zero are
	// ignored, so a gate sized for n still fires exactly once.
	ggid, gate := r.NewAndGateAt(0, n)
	var fires atomic.Int64
	gate.OnFire(func() { fires.Add(1) })
	for i := 0; i < n; i++ {
		r.SendFrom(1, parcel.New(ggid, ActionLCOSignal, nil))
	}
	r.Wait()
	gate.Wait()
	if fires.Load() != 1 {
		t.Fatalf("gate fired %d times under duplication", fires.Load())
	}
}

func TestDuplicatedFutureSetReportsSecondWrite(t *testing.T) {
	// Futures are single-assignment: a duplicated set parcel must surface
	// as an ErrAlreadySet runtime error, not silent corruption. Force
	// duplication of every parcel.
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 1,
		Faults:             Faults{DupOneIn: 1, Seed: 3},
	})
	defer r.Shutdown()
	fgid, fut := r.NewFutureAt(1)
	val, _ := parcel.EncodeAny(int64(9))
	r.SendFrom(0, parcel.New(fgid, ActionLCOSet, parcel.NewArgs().Bytes(val).Encode()))
	r.Wait()
	v, err := fut.Get()
	if err != nil || v.(int64) != 9 {
		t.Fatalf("first set lost: %v %v", v, err)
	}
	errs := r.Errors()
	if len(errs) == 0 {
		t.Fatal("duplicate set swallowed silently")
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	r := New(Config{Localities: 2})
	defer r.Shutdown()
	if r.Dropped() != 0 || r.Duplicated() != 0 {
		t.Fatal("fault counters nonzero without injection")
	}
}

// TestCrashAndPartitionFaultsAreDeterministic: the kill and partition
// knobs count wire frames and flip at an exact count, so two injectors
// with the same config silence exactly the same frame sequence — the
// property that makes a failing chaos run replayable from its seed.
func TestCrashAndPartitionFaultsAreDeterministic(t *testing.T) {
	cfg := Faults{Seed: 99}.KillPeerAfter(2, 5).PartitionPeersAfter(0, 1, 3)
	run := func() []bool {
		f := newFaultState(cfg)
		// A fixed interleaving of frames as seen by node 2 (the victim)
		// and across the 0<->1 link.
		var verdicts []bool
		for i := 0; i < 20; i++ {
			verdicts = append(verdicts, f.silence(2, i%2)) // node 2's boundary
			verdicts = append(verdicts, f.silence(0, 1))   // the partitioned link
			verdicts = append(verdicts, f.silence(1, 0))   // reverse direction
			verdicts = append(verdicts, f.silence(1, 2))   // unrelated link: never muted
		}
		return verdicts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged between identical configs: %v vs %v", i, a[i], b[i])
		}
	}
	// The exact thresholds: frame KillAfter passes, frame KillAfter+1 mutes.
	f := newFaultState(Faults{}.KillPeerAfter(0, 2))
	got := []bool{f.silence(0, 1), f.silence(0, 1), f.silence(0, 1), f.silence(0, 1)}
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kill threshold off at frame %d: got %v want %v", i+1, got, want)
		}
	}
	// Frames not involving the victim or the cut link are never silenced.
	if f.silence(1, 2) {
		t.Fatal("silenced a frame on an unrelated link")
	}
	// Zero knobs build no injector at all.
	if newFaultState(Faults{DropOneIn: 0}) != nil {
		t.Fatal("fault state built with nothing configured")
	}
}
