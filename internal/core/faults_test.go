package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/parcel"
)

func TestDropFaultsLoseExactlyTheDroppedParcels(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DropOneIn: 4, Seed: 7},
	})
	defer r.Shutdown()
	var hits atomic.Int64
	r.MustRegisterAction("fault.count", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		hits.Add(1)
		return nil, nil
	})
	obj := r.NewDataAt(1, struct{}{})
	const n = 400
	for i := 0; i < n; i++ {
		r.SendFrom(0, parcel.New(obj, "fault.count", nil))
	}
	r.Wait()
	dropped := int64(r.Dropped())
	if dropped == 0 {
		t.Fatal("fault injector dropped nothing at 1-in-4")
	}
	if hits.Load()+dropped != n {
		t.Fatalf("conservation violated: %d delivered + %d dropped != %d",
			hits.Load(), dropped, n)
	}
}

func TestDuplicationFaultsAndIdempotentLCOs(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DupOneIn: 3, Seed: 11},
	})
	defer r.Shutdown()
	var hits atomic.Int64
	r.MustRegisterAction("fault.count", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		hits.Add(1)
		return nil, nil
	})
	obj := r.NewDataAt(1, struct{}{})
	const n = 300
	for i := 0; i < n; i++ {
		r.SendFrom(0, parcel.New(obj, "fault.count", nil))
	}
	r.Wait()
	duped := int64(r.Duplicated())
	if duped == 0 {
		t.Fatal("fault injector duplicated nothing at 1-in-3")
	}
	if hits.Load() != n+duped {
		t.Fatalf("delivered %d, want %d + %d duplicates", hits.Load(), n, duped)
	}

	// An AndGate tolerates duplicated signals: extra signals past zero are
	// ignored, so a gate sized for n still fires exactly once.
	ggid, gate := r.NewAndGateAt(0, n)
	var fires atomic.Int64
	gate.OnFire(func() { fires.Add(1) })
	for i := 0; i < n; i++ {
		r.SendFrom(1, parcel.New(ggid, ActionLCOSignal, nil))
	}
	r.Wait()
	gate.Wait()
	if fires.Load() != 1 {
		t.Fatalf("gate fired %d times under duplication", fires.Load())
	}
}

func TestDuplicatedFutureSetReportsSecondWrite(t *testing.T) {
	// Futures are single-assignment: a duplicated set parcel must surface
	// as an ErrAlreadySet runtime error, not silent corruption. Force
	// duplication of every parcel.
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 1,
		Faults:             Faults{DupOneIn: 1, Seed: 3},
	})
	defer r.Shutdown()
	fgid, fut := r.NewFutureAt(1)
	val, _ := parcel.EncodeAny(int64(9))
	r.SendFrom(0, parcel.New(fgid, ActionLCOSet, parcel.NewArgs().Bytes(val).Encode()))
	r.Wait()
	v, err := fut.Get()
	if err != nil || v.(int64) != 9 {
		t.Fatalf("first set lost: %v %v", v, err)
	}
	errs := r.Errors()
	if len(errs) == 0 {
		t.Fatal("duplicate set swallowed silently")
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	r := New(Config{Localities: 2})
	defer r.Shutdown()
	if r.Dropped() != 0 || r.Duplicated() != 0 {
		t.Fatal("fault counters nonzero without injection")
	}
}
