// Package core implements the ParalleX runtime: a set of localities joined
// by a modelled network, a global address space, a registry of named
// actions, and the parcel transport with continuation chaining. It is the
// paper's execution model made concrete — message-driven multithreaded
// split-phase computation that moves work to data.
package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/locality"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/thread"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config parameterizes a runtime.
type Config struct {
	// Localities is the number of execution domains. Default 1.
	Localities int
	// WorkersPerLocality bounds concurrently running threads per locality.
	// Default 4.
	WorkersPerLocality int
	// Net models inter-locality latency. Default: ideal (zero latency).
	Net network.Model
	// Policy selects queue service order.
	Policy locality.Policy
	// Stealing enables idle localities to steal queued work.
	Stealing bool
	// Serialize forces parcels through the wire format even in-process so
	// the encode/route/decode path is exercised. Local (same-locality)
	// sends always bypass it, as the model prescribes. Default true; set
	// DisableSerialization to turn off.
	DisableSerialization bool
	// MaxHops bounds forwarding retries for migrating objects. Default 64.
	MaxHops int
	// AdmitLimit bounds each resident locality's queue depth as seen by
	// sheddable parcels (actions declared with Runtime.MarkSheddable): a
	// delivery that finds the destination locality holding this many
	// queued tasks is rejected with a typed ErrOverloaded verdict to its
	// continuation instead of queueing without bound. Zero (the default)
	// disables admission control. Runtime-internal work is never shed.
	AdmitLimit int
	// RetryAfterHint is the backoff suggestion carried inside every
	// load-shed verdict (see RetryAfter): a client that observes
	// ErrOverloaded can sleep exactly what the server suggests instead of
	// guessing with blind exponential backoff. The hint survives wire
	// flattening — it rides as text inside the verdict message. Zero
	// defaults to 2ms; negative omits the hint.
	RetryAfterHint time.Duration
	// TraceCapacity sizes the event ring; 0 disables tracing.
	TraceCapacity int
	// Faults optionally injects parcel loss/duplication (tests only). It
	// applies to the modelled network path (cross-node parcels are not
	// subject to it) and to cross-node LCO trigger frames — which survive
	// it: triggers are an acknowledging protocol, so a dropped frame is
	// retransmitted and a duplicated one absorbed by idempotent trigger
	// IDs. Local trigger parcels are exempt from drops (the local leg has
	// no retransmission) but still subject to duplication.
	Faults Faults

	// Transport, when set, makes this runtime one node of a multi-process
	// machine: parcels for localities hosted elsewhere travel over it in
	// the parcel wire format, and quiescence detection extends across
	// nodes. NodeID and NodeLocalities are then required.
	Transport transport.Transport
	// NodeID is this process's node index; it must match Transport.Self.
	NodeID int
	// NodeLocalities partitions the global locality space: entry i is the
	// contiguous range hosted by node i. Localities, if nonzero, must equal
	// the partition total.
	NodeLocalities []agas.Range
	// Register, when set, is called with the new runtime before the
	// transport begins delivering parcels. On a multi-node machine actions
	// must be registered here: a peer's parcel can arrive the instant the
	// transport starts, and an action registered after New returns races
	// that delivery.
	Register func(*Runtime)
	// Membership tunes elastic membership and phi-accrual failure
	// detection. The subsystem engages automatically when the transport
	// can grow (it implements transport.MemberTransport) and carries
	// handshake hellos; set Membership.Disable to opt out.
	Membership MembershipConfig
	// DisableActionInterning keeps this node on the plain string wire form:
	// it announces no action table and ignores the ones peers announce.
	// Peers fall back to spelling action names out toward it, so a machine
	// may freely mix interning and non-interning nodes. The default
	// (interning on, when the transport supports handshake hellos) removes
	// the per-parcel action-string allocation from the receive path.
	DisableActionInterning bool

	// BalanceInterval enables the adaptive self-balancer and sets its
	// policy tick period: each tick the runtime drains the per-GID
	// arrival sample, refreshes per-locality load scores, exchanges them
	// with peers, and migrates at most BalanceMaxMoves hot objects
	// toward under-loaded live localities. 0 (the default) disables
	// balancing entirely — no sampling, no loop, no allocation on the
	// delivery path beyond one nil check.
	BalanceInterval time.Duration
	// BalanceSampleEvery paces arrival sampling: every Nth delivered
	// parcel is attributed to its destination GID. Default 8.
	BalanceSampleEvery int
	// BalanceHotThreshold is the minimum sampled arrivals per tick
	// before an object is considered for migration. Default 8.
	BalanceHotThreshold int
	// BalanceImbalance is the hysteresis ratio: an object moves only
	// when its locality's load exceeds this multiple of the candidate
	// target's load (plus the object's own contribution). Default 2.
	BalanceImbalance float64
	// BalanceMaxMoves bounds migrations per policy tick. Default 4.
	BalanceMaxMoves int
	// BalanceCooldown is how many ticks a just-migrated object is immune
	// from further moves, on the mover and the receiver. Default 5.
	BalanceCooldown int

	// TraceSampleRate is the fraction of root parcels that start a sampled
	// distributed trace, in [0,1]. Sampling is deterministic every-Nth
	// (N = 1/rate), decided once at the root send; continuations and wire
	// hops inherit the decision, so a sampled trace is recorded end to end.
	// 0 (the default) mints no local traces, though spans for sampled
	// parcels arriving from peers are still recorded.
	TraceSampleRate float64
	// TraceSpanCapacity bounds the in-memory span buffer (default 4096);
	// when full, new spans are dropped and counted.
	TraceSpanCapacity int
	// DisableTraceContext keeps this node's wire frames free of the trace
	// trailer: it announces no trace capability and receives none. Peers
	// still interoperate; traces passing through degrade to local-only.
	DisableTraceContext bool
}

func (c *Config) fill() {
	if c.Localities <= 0 {
		c.Localities = 1
	}
	if c.WorkersPerLocality <= 0 {
		c.WorkersPerLocality = 4
	}
	if c.Net == nil {
		c.Net = network.NewIdeal(c.Localities)
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
}

// Runtime is one ParalleX machine instance.
type Runtime struct {
	cfg Config
	// locs holds the execution machinery per locality. Entries are
	// atomic because a node death can re-home a dead peer's localities
	// onto this node at runtime (adoption installs a fresh locality into
	// a formerly nil slot while parcels race the swap). The slice itself
	// is fixed at startup width; localities announced by later joiners
	// are reached only by parcel and can never be adopted here.
	locs   []atomic.Pointer[locality.Locality]
	agas   *agas.Service
	net    network.Model
	ring   *trace.Ring
	slow   *metrics.SLOW
	reg    *thread.Registry
	acts   *actionRegistry
	hwGID  []agas.GID // per-locality hardware names
	faults *faultState

	// sheddable names the externally driven actions whose deliveries pass
	// through admission control. Written only before the transport starts
	// (MarkSheddable), read lock-free on the delivery path.
	sheddable map[string]struct{}
	dist      *distState // nil for a single-process machine
	fences    *fenceTable
	// bal is the adaptive self-balancer; nil unless BalanceInterval > 0.
	// The delivery hot path reads it with one nil check (see enqueue).
	bal *balancerState

	// Observability: the named-metric registry served over HTTP, the
	// distributed-trace span buffer, and the root-sampling state (every
	// sampleEvery-th root parcel starts a sampled trace; 0 disables
	// local minting).
	mreg         *metrics.Registry
	spans        *trace.Spans
	sampleEvery  uint64
	sampleSeq    atomic.Uint64
	opSeq        atomic.Uint64 // paces operational (steal) spans separately
	sampledRoots atomic.Uint64 // traces minted locally (px.trace.sampled)

	// reducers names the fold operators distributed reductions and
	// dataflow templates apply; tidSeq mints this node's trigger IDs.
	reducers *reducerRegistry
	tidSeq   atomic.Uint64

	// migrations serializes moves per object: each GID has at most one
	// migration in flight from this node (the fence's single-closer
	// invariant), while moves of different objects proceed concurrently —
	// a runtime-wide lock here would deadlock an action that migrates a
	// second object while its own target is being quiesced.
	migMu      sync.Mutex
	migrations map[agas.GID]chan struct{}

	// deps registers local futures awaiting remote state, so a node
	// death fails exactly the futures it strands (see membership.go).
	deps depRegistry

	pending  atomic.Int64
	quiet    sync.Mutex
	quietC   *sync.Cond
	errMu    sync.Mutex
	errs     []error
	shutdown atomic.Bool
	// terminating marks an abrupt (crash-model) teardown: work dropped
	// by closed localities is expected, not a programming error.
	terminating atomic.Bool
}

// New builds and starts a runtime. Callers must Shutdown when done.
func New(cfg Config) *Runtime {
	var lmap *agas.LocalityMap
	if cfg.Transport != nil {
		m, err := agas.NewLocalityMap(cfg.NodeLocalities)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		lmap = m
		if cfg.NodeID != cfg.Transport.Self() {
			panic(fmt.Sprintf("core: NodeID %d but transport is node %d", cfg.NodeID, cfg.Transport.Self()))
		}
		if lmap.Nodes() != cfg.Transport.Nodes() {
			panic(fmt.Sprintf("core: %d locality ranges for a %d-node transport", lmap.Nodes(), cfg.Transport.Nodes()))
		}
		if cfg.Localities != 0 && cfg.Localities != lmap.Localities() {
			panic(fmt.Sprintf("core: Localities %d but node ranges span %d", cfg.Localities, lmap.Localities()))
		}
		cfg.Localities = lmap.Localities()
	}
	cfg.fill()
	if cfg.Net.Nodes() < cfg.Localities {
		panic(fmt.Sprintf("core: network has %d endpoints for %d localities",
			cfg.Net.Nodes(), cfg.Localities))
	}
	r := &Runtime{
		cfg:        cfg,
		agas:       agas.NewService(cfg.Localities),
		net:        cfg.Net,
		slow:       metrics.NewSLOW(),
		reg:        thread.NewRegistry(),
		acts:       newActionRegistry(),
		faults:     newFaultState(cfg.Faults),
		fences:     newFenceTable(),
		reducers:   newReducerRegistry(),
		migrations: make(map[agas.GID]chan struct{}),
	}
	resident := agas.Range{Lo: 0, Hi: cfg.Localities}
	if lmap != nil {
		r.agas.SetDistribution(lmap, cfg.NodeID)
		resident, _ = lmap.NodeRange(cfg.NodeID)
	}
	r.quietC = sync.NewCond(&r.quiet)
	if cfg.TraceCapacity > 0 {
		r.ring = trace.NewRing(cfg.TraceCapacity)
	}
	// Only resident localities get execution machinery; entries for
	// localities hosted by other nodes stay nil and are reached by parcel
	// (until a death re-homes them here — see adoptLocalities).
	r.locs = make([]atomic.Pointer[locality.Locality], cfg.Localities)
	for i := resident.Lo; i < resident.Hi; i++ {
		r.locs[i].Store(r.newLocality(i, cfg.Stealing))
	}
	if cfg.Stealing {
		victims := make([]*locality.Locality, 0, resident.Count())
		for i := resident.Lo; i < resident.Hi; i++ {
			victims = append(victims, r.locs[i].Load())
		}
		for _, l := range victims {
			l.SetVictims(victims)
		}
	}
	// Hardware resources are first-class named objects (typed names), per
	// the paper's global name space. Hardware names are deterministic so
	// every node can address any locality without a directory consult.
	r.hwGID = make([]agas.GID, cfg.Localities)
	for i := range r.hwGID {
		r.hwGID[i] = agas.HardwareGID(i)
		if l := r.loc(i); l != nil {
			r.agas.AllocHardware(i)
			l.Store().Put(r.hwGID[i], l)
		}
		r.agas.Namespace().Bind(fmt.Sprintf("/hw/locality/%d", i), r.hwGID[i])
	}
	registerBuiltins(r.acts)
	// The distributed state must exist before the Register callback runs —
	// the callback sees a fully assembled runtime — but the transport only
	// starts delivering afterwards, so registrations cannot race arriving
	// parcels.
	if cfg.Transport != nil {
		// Parcel IDs minted by this process carry the node's origin salt,
		// so trigger IDs derived from inherited parcel IDs stay unique
		// machine-wide (see parcelTriggerID).
		parcel.SetIDOrigin(uint16(cfg.NodeID) + 1)
		r.dist = newDistState(r, cfg.Transport, cfg.NodeID, lmap)
		// Membership engages when the transport can both grow (AddPeer)
		// and carry the handshake hello that announces it.
		_, canGrow := cfg.Transport.(transport.MemberTransport)
		_, canHello := cfg.Transport.(transport.HelloTransport)
		if canGrow && canHello && !cfg.Membership.Disable {
			// The announced dial-back address: what a grown machine's
			// peers use to reach a joiner.
			addr := ""
			switch a := cfg.Transport.(type) {
			case interface{ Addr() string }:
				addr = a.Addr()
			case interface{ Addr() net.Addr }:
				if la := a.Addr(); la != nil {
					addr = la.String()
				}
			}
			r.dist.mb = newMemberState(r.dist, cfg.Membership, addr)
		}
		// The runtime's own subscriber runs before any application one
		// (registration order), so adoption precedes workload rehoming.
		lmap.Subscribe(r.onMemberEvent)
		cfg.Transport.SetHandler(r.dist.onFrame)
	}
	// The balancer state must exist before initObservability binds the
	// px.balance.* gauges; its policy loop starts last, once the
	// transport delivers (startBalancer below).
	if cfg.BalanceInterval > 0 {
		r.bal = newBalancerState(r)
	}
	r.initObservability()
	if cfg.Register != nil {
		cfg.Register(r)
	}
	if cfg.Transport != nil {
		// Announce capabilities after Register has run (the interning
		// snapshot must cover the application's actions) and before Start
		// (the hello rides every connection handshake). Transports without
		// hello support announce nothing: peers speak plain, trailer-free
		// frames toward them.
		if ht, ok := cfg.Transport.(transport.HelloTransport); ok {
			intern := !cfg.DisableActionInterning
			traced := !cfg.DisableTraceContext
			var mh *memberHello
			if r.dist.mb != nil {
				mh = &memberHello{node: cfg.NodeID, lo: resident.Lo, hi: resident.Hi, addr: r.dist.mb.selfAddr}
			}
			if intern || traced || mh != nil {
				set := r.acts.snapshot()
				if intern {
					r.dist.intern.announce(set)
				}
				ht.SetHello(encodeHello(set.names, intern, traced, mh))
				ht.SetHelloHandler(r.dist.onHello)
			}
		}
		if err := cfg.Transport.Start(); err != nil {
			panic(fmt.Sprintf("core: transport start: %v", err))
		}
		if r.dist.mb != nil {
			go r.dist.mb.run()
		}
	}
	r.startBalancer()
	return r
}

// newLocality builds the execution machinery for resident locality i.
func (r *Runtime) newLocality(i int, stealing bool) *locality.Locality {
	loc := i
	return locality.New(i, locality.Config{
		Workers:    r.cfg.WorkersPerLocality,
		Policy:     r.cfg.Policy,
		Stealing:   stealing,
		OnSteal:    func(remote bool) { r.onSteal(loc, remote) },
		AdmitLimit: r.cfg.AdmitLimit,
	})
}

// loc returns locality i's execution machinery, or nil when i is hosted
// elsewhere (or outside this node's fixed locality table).
func (r *Runtime) loc(i int) *locality.Locality {
	if i < 0 || i >= len(r.locs) {
		return nil
	}
	return r.locs[i].Load()
}

// onMemberEvent is the runtime's own membership subscriber, registered
// before any application subscriber so that by the time a workload's
// rehome callback runs, adopted localities already execute.
func (r *Runtime) onMemberEvent(ev agas.MemberEvent) {
	if ev.Kind != agas.MemberDied || r.dist == nil || ev.Adopter != r.dist.node {
		return
	}
	r.adoptLocalities(ev.Moved)
}

// adoptLocalities spins up execution machinery for localities re-homed
// onto this node by a peer's death: a fresh locality (no stealing —
// adopted domains are emergency capacity, not part of the tuned resident
// set), its hardware object, and its directory entry, so parcels
// addressed to the dead node's localities execute here. Directory state
// of ordinary objects that lived there died with the node — resolutions
// against an adopted locality miss with the typed node-lost error — but
// well-known objects (workload shards) are reinstalled by membership
// subscribers registered downstream of this one.
func (r *Runtime) adoptLocalities(moved []int) {
	for _, i := range moved {
		if i < 0 || i >= len(r.locs) {
			// Announced by a node that joined after this one started:
			// outside the fixed locality table, unreachable as adopter.
			r.recordError(fmt.Errorf("core: cannot adopt locality %d beyond startup width %d", i, len(r.locs)))
			continue
		}
		if r.locs[i].Load() != nil {
			continue
		}
		l := r.newLocality(i, false)
		if !r.locs[i].CompareAndSwap(nil, l) {
			l.Close()
			continue
		}
		r.agas.AllocHardware(i)
		l.Store().Put(r.LocalityGID(i), l)
	}
}

// Localities reports the machine width (global, across all nodes). It
// grows when nodes join an elastic machine.
func (r *Runtime) Localities() int {
	if r.dist != nil {
		return r.dist.lmap.Localities()
	}
	return r.cfg.Localities
}

// NodeID reports this process's node index (0 on a single-process machine).
func (r *Runtime) NodeID() int {
	if r.dist == nil {
		return 0
	}
	return r.dist.node
}

// Nodes reports the machine's process count (1 for a single-process
// machine).
func (r *Runtime) Nodes() int {
	if r.dist == nil {
		return 1
	}
	return r.dist.lmap.Nodes()
}

// NodeRange reports the contiguous locality range hosted by node n (the
// whole machine on a single-process runtime). Unknown nodes report the
// zero Range.
func (r *Runtime) NodeRange(n int) agas.Range {
	if r.dist == nil {
		if n != 0 {
			panic(fmt.Sprintf("core: node %d on a single-process machine", n))
		}
		return agas.Range{Lo: 0, Hi: r.cfg.Localities}
	}
	rg, _ := r.dist.lmap.NodeRange(n)
	return rg
}

// Resident reports whether locality loc executes in this process
// (including localities adopted after a peer's death).
func (r *Runtime) Resident(loc int) bool {
	r.checkLoc(loc)
	return r.loc(loc) != nil
}

// RequestHalt asks every node of the machine (including this one) to stop
// cooperatively: each node's HaltRequested channel closes. On a
// single-process machine it is a no-op.
func (r *Runtime) RequestHalt() {
	if r.dist != nil {
		r.dist.requestHalt()
	}
}

// HaltRequested returns a channel closed when any node broadcasts a halt
// request, or nil on a single-process machine.
func (r *Runtime) HaltRequested() <-chan struct{} {
	if r.dist == nil {
		return nil
	}
	return r.dist.halt
}

// AGAS exposes the global address space service.
func (r *Runtime) AGAS() *agas.Service { return r.agas }

// SLOW exposes the degradation-source instrumentation.
func (r *Runtime) SLOW() *metrics.SLOW { return r.slow }

// Threads exposes the thread registry.
func (r *Runtime) Threads() *thread.Registry { return r.reg }

// Trace returns the event ring, or nil if tracing is disabled.
func (r *Runtime) Trace() *trace.Ring { return r.ring }

// Metrics exposes the named-metric registry (px.* names), suitable for
// serving with pprofserve.ServeMetrics.
func (r *Runtime) Metrics() *metrics.Registry { return r.mreg }

// Spans exposes the distributed-trace span buffer.
func (r *Runtime) Spans() *trace.Spans { return r.spans }

// Network returns the installed network model.
func (r *Runtime) Network() network.Model { return r.net }

// LocalityGID returns the typed hardware name of locality i. Hardware
// names are deterministic, so localities announced by nodes that joined
// after this one started still resolve.
func (r *Runtime) LocalityGID(i int) agas.GID {
	if i >= 0 && i < len(r.hwGID) {
		return r.hwGID[i]
	}
	return agas.HardwareGID(i)
}

// Locality returns the i-th locality (for instrumentation; applications
// interact through parcels and actions). It is nil for localities hosted
// by other nodes.
func (r *Runtime) Locality(i int) *locality.Locality { return r.loc(i) }

// IdleFractions reports each resident locality's starvation fraction
// (zero for localities hosted by other nodes).
func (r *Runtime) IdleFractions() []float64 {
	out := make([]float64, len(r.locs))
	for i := range r.locs {
		if l := r.locs[i].Load(); l != nil {
			out[i] = l.IdleFraction()
		}
	}
	return out
}

// addWork notes one unit of outstanding work (queued task or in-flight
// parcel). Quiescence is reached when the count returns to zero.
func (r *Runtime) addWork() { r.pending.Add(1) }

func (r *Runtime) doneWork() {
	if r.pending.Add(-1) == 0 {
		r.quiet.Lock()
		r.quietC.Broadcast()
		r.quiet.Unlock()
	}
}

// Wait blocks until the machine is quiescent: no queued tasks, running
// threads, or in-flight parcels. Work injected while waiting extends the
// wait. Tasks increment the counter for children before completing, so the
// counter cannot reach zero while a task graph is still unfolding. On a
// multi-node machine Wait additionally drains the other nodes with a
// cross-node probe, so it returns only at global quiescence (every node
// must be reachable).
func (r *Runtime) Wait() {
	if r.dist != nil {
		r.dist.waitGlobal()
		return
	}
	r.waitLocal()
}

// waitLocal blocks until this node's own work counter reaches zero.
func (r *Runtime) waitLocal() {
	r.quiet.Lock()
	for r.pending.Load() != 0 {
		r.quietC.Wait()
	}
	r.quiet.Unlock()
}

// Shutdown waits for quiescence and stops all localities (announcing the
// departure to peer nodes first on a multi-node machine). The runtime is
// unusable afterwards.
func (r *Runtime) Shutdown() {
	if !r.shutdown.CompareAndSwap(false, true) {
		return
	}
	// The balancer stops before quiescence: its migrations inject work,
	// and a plan issued mid-Wait would chase a machine trying to drain.
	r.stopBalancer(true)
	r.Wait()
	if r.dist != nil {
		// The membership loop stops only after Wait: detection must stay
		// live while waiting, or a peer's death could block it forever.
		if r.dist.mb != nil {
			r.dist.mb.stopLoop()
		}
		r.dist.goodbye()
		r.dist.stopLCO()
		r.dist.tr.Close()
	}
	for i := range r.locs {
		if l := r.locs[i].Load(); l != nil {
			l.Close()
		}
	}
}

// Terminate abruptly stops this node: no Wait, no goodbye, queued work
// dropped. It models a crash for fault tests — from the rest of the
// machine it looks exactly like the process vanishing, and the peers'
// failure detectors (not this call) tell them about it. The runtime is
// unusable afterwards.
func (r *Runtime) Terminate() {
	if !r.shutdown.CompareAndSwap(false, true) {
		return
	}
	r.terminating.Store(true)
	// Signal only — a crash model does not wait for a policy tick (an
	// in-flight migrate RPC is bounded by its own timeout).
	r.stopBalancer(false)
	if r.dist != nil {
		if r.dist.mb != nil {
			r.dist.mb.stopLoop()
		}
		r.dist.stopLCO()
		r.dist.tr.Close()
	}
	for i := range r.locs {
		if l := r.locs[i].Load(); l != nil {
			l.Close()
		}
	}
}

// recordError collects an asynchronous runtime error (failed action with no
// continuation to deliver the failure to).
func (r *Runtime) recordError(err error) {
	r.errMu.Lock()
	r.errs = append(r.errs, err)
	r.errMu.Unlock()
}

// Errors returns the asynchronous errors recorded so far.
func (r *Runtime) Errors() []error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return append([]error(nil), r.errs...)
}

// Spawn posts fn as a new thread on locality loc. It is the local (non-
// parcel) way to start work; the fn receives a Context bound to loc.
func (r *Runtime) Spawn(loc int, fn func(*Context)) {
	r.checkResident(loc)
	r.addWork()
	th := r.reg.New(loc)
	r.slow.ThreadsSpawned.Inc()
	r.mustPost(r.loc(loc).Post(func() {
		defer r.doneWork()
		th.Start()
		fn(&Context{rt: r, loc: loc, th: th})
		r.slow.TasksExecuted.Inc()
		th.Terminate()
		r.reg.Recycle(th)
	}))
}

func (r *Runtime) checkLoc(i int) {
	if i < 0 || i >= r.Localities() {
		panic(fmt.Sprintf("core: locality %d out of range [0,%d)", i, r.Localities()))
	}
}

// checkResident panics unless locality i executes in this process.
// Operations that run code or install objects need a resident locality;
// remote localities are reached only by parcel.
func (r *Runtime) checkResident(i int) {
	r.checkLoc(i)
	if r.loc(i) == nil {
		panic(fmt.Sprintf("core: locality %d is hosted by node %d, not this node %d",
			i, r.nodeOf(i), r.dist.node))
	}
}

// now is indirected for deterministic tests.
var now = time.Now
