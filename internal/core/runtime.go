// Package core implements the ParalleX runtime: a set of localities joined
// by a modelled network, a global address space, a registry of named
// actions, and the parcel transport with continuation chaining. It is the
// paper's execution model made concrete — message-driven multithreaded
// split-phase computation that moves work to data.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/locality"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/thread"
	"repro/internal/trace"
)

// Config parameterizes a runtime.
type Config struct {
	// Localities is the number of execution domains. Default 1.
	Localities int
	// WorkersPerLocality bounds concurrently running threads per locality.
	// Default 4.
	WorkersPerLocality int
	// Net models inter-locality latency. Default: ideal (zero latency).
	Net network.Model
	// Policy selects queue service order.
	Policy locality.Policy
	// Stealing enables idle localities to steal queued work.
	Stealing bool
	// Serialize forces parcels through the wire format even in-process so
	// the encode/route/decode path is exercised. Local (same-locality)
	// sends always bypass it, as the model prescribes. Default true; set
	// DisableSerialization to turn off.
	DisableSerialization bool
	// MaxHops bounds forwarding retries for migrating objects. Default 64.
	MaxHops int
	// TraceCapacity sizes the event ring; 0 disables tracing.
	TraceCapacity int
	// Faults optionally injects parcel loss/duplication (tests only).
	Faults Faults
}

func (c *Config) fill() {
	if c.Localities <= 0 {
		c.Localities = 1
	}
	if c.WorkersPerLocality <= 0 {
		c.WorkersPerLocality = 4
	}
	if c.Net == nil {
		c.Net = network.NewIdeal(c.Localities)
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
}

// Runtime is one ParalleX machine instance.
type Runtime struct {
	cfg    Config
	locs   []*locality.Locality
	agas   *agas.Service
	net    network.Model
	ring   *trace.Ring
	slow   *metrics.SLOW
	reg    *thread.Registry
	acts   *actionRegistry
	hwGID  []agas.GID // per-locality hardware names
	faults *faultState

	pending  atomic.Int64
	quiet    sync.Mutex
	quietC   *sync.Cond
	errMu    sync.Mutex
	errs     []error
	shutdown atomic.Bool
}

// New builds and starts a runtime. Callers must Shutdown when done.
func New(cfg Config) *Runtime {
	cfg.fill()
	if cfg.Net.Nodes() < cfg.Localities {
		panic(fmt.Sprintf("core: network has %d endpoints for %d localities",
			cfg.Net.Nodes(), cfg.Localities))
	}
	r := &Runtime{
		cfg:    cfg,
		agas:   agas.NewService(cfg.Localities),
		net:    cfg.Net,
		slow:   metrics.NewSLOW(),
		reg:    thread.NewRegistry(),
		acts:   newActionRegistry(),
		faults: newFaultState(cfg.Faults),
	}
	r.quietC = sync.NewCond(&r.quiet)
	if cfg.TraceCapacity > 0 {
		r.ring = trace.NewRing(cfg.TraceCapacity)
	}
	r.locs = make([]*locality.Locality, cfg.Localities)
	for i := range r.locs {
		r.locs[i] = locality.New(i, locality.Config{
			Workers:  cfg.WorkersPerLocality,
			Policy:   cfg.Policy,
			Stealing: cfg.Stealing,
		})
	}
	if cfg.Stealing {
		for _, l := range r.locs {
			l.SetVictims(r.locs)
		}
	}
	// Hardware resources are first-class named objects (typed names), per
	// the paper's global name space.
	r.hwGID = make([]agas.GID, cfg.Localities)
	for i := range r.hwGID {
		g := r.agas.Alloc(i, agas.KindHardware)
		r.locs[i].Store().Put(g, r.locs[i])
		r.hwGID[i] = g
		r.agas.Namespace().Bind(fmt.Sprintf("/hw/locality/%d", i), g)
	}
	registerBuiltins(r.acts)
	return r
}

// Localities reports the machine width.
func (r *Runtime) Localities() int { return r.cfg.Localities }

// AGAS exposes the global address space service.
func (r *Runtime) AGAS() *agas.Service { return r.agas }

// SLOW exposes the degradation-source instrumentation.
func (r *Runtime) SLOW() *metrics.SLOW { return r.slow }

// Threads exposes the thread registry.
func (r *Runtime) Threads() *thread.Registry { return r.reg }

// Trace returns the event ring, or nil if tracing is disabled.
func (r *Runtime) Trace() *trace.Ring { return r.ring }

// Network returns the installed network model.
func (r *Runtime) Network() network.Model { return r.net }

// LocalityGID returns the typed hardware name of locality i.
func (r *Runtime) LocalityGID(i int) agas.GID { return r.hwGID[i] }

// Locality returns the i-th locality (for instrumentation; applications
// interact through parcels and actions).
func (r *Runtime) Locality(i int) *locality.Locality { return r.locs[i] }

// IdleFractions reports each locality's starvation fraction.
func (r *Runtime) IdleFractions() []float64 {
	out := make([]float64, len(r.locs))
	for i, l := range r.locs {
		out[i] = l.IdleFraction()
	}
	return out
}

// addWork notes one unit of outstanding work (queued task or in-flight
// parcel). Quiescence is reached when the count returns to zero.
func (r *Runtime) addWork() { r.pending.Add(1) }

func (r *Runtime) doneWork() {
	if r.pending.Add(-1) == 0 {
		r.quiet.Lock()
		r.quietC.Broadcast()
		r.quiet.Unlock()
	}
}

// Wait blocks until the runtime is quiescent: no queued tasks, running
// threads, or in-flight parcels. Work injected while waiting extends the
// wait. Tasks increment the counter for children before completing, so the
// counter cannot reach zero while a task graph is still unfolding.
func (r *Runtime) Wait() {
	r.quiet.Lock()
	for r.pending.Load() != 0 {
		r.quietC.Wait()
	}
	r.quiet.Unlock()
}

// Shutdown waits for quiescence and stops all localities. The runtime is
// unusable afterwards.
func (r *Runtime) Shutdown() {
	if !r.shutdown.CompareAndSwap(false, true) {
		return
	}
	r.Wait()
	for _, l := range r.locs {
		l.Close()
	}
}

// recordError collects an asynchronous runtime error (failed action with no
// continuation to deliver the failure to).
func (r *Runtime) recordError(err error) {
	r.errMu.Lock()
	r.errs = append(r.errs, err)
	r.errMu.Unlock()
}

// Errors returns the asynchronous errors recorded so far.
func (r *Runtime) Errors() []error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return append([]error(nil), r.errs...)
}

// Spawn posts fn as a new thread on locality loc. It is the local (non-
// parcel) way to start work; the fn receives a Context bound to loc.
func (r *Runtime) Spawn(loc int, fn func(*Context)) {
	r.checkLoc(loc)
	r.addWork()
	th := r.reg.New(loc)
	r.slow.ThreadsSpawned.Inc()
	r.locs[loc].Post(func() {
		defer r.doneWork()
		th.Start()
		defer th.Terminate()
		fn(&Context{rt: r, loc: loc, th: th})
		r.slow.TasksExecuted.Inc()
	})
}

func (r *Runtime) checkLoc(i int) {
	if i < 0 || i >= len(r.locs) {
		panic(fmt.Sprintf("core: locality %d out of range [0,%d)", i, len(r.locs)))
	}
}

// now is indirected for deterministic tests.
var now = time.Now
