package core

import (
	"sync"
	"testing"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/transport"
)

// TestPooledHotPathOwnership floods the full pooled parcel path — post,
// AGAS resolve, interned encode into recycled buffers, pooled decode,
// dispatch, continuation chaining, failure delivery — with pool poisoning
// enabled. A parcel or buffer observed after release shows up as a
// poisoned action name ("px.poisoned…" → unknown-action error), a nil
// destination (send panic), or shredded args (decode/type error); run
// under -race it also catches two holders touching one pooled value.
func TestPooledHotPathOwnership(t *testing.T) {
	parcel.SetPoolDebug(true)
	defer parcel.SetPoolDebug(false)

	rt := New(Config{Localities: 4, WorkersPerLocality: 2})
	defer rt.Shutdown()
	rt.MustRegisterAction("pool.add", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		n := args.Int64()
		if err := args.Err(); err != nil {
			return nil, err
		}
		return target.(int64) + n, nil
	})
	objs := make([]agas.GID, 4)
	for i := range objs {
		objs[i] = rt.NewDataAt(i, int64(i))
	}

	const callers = 8
	const calls = 300
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := c % 4
			args := parcel.NewArgs().Int64(int64(c)).Encode()
			for i := 0; i < calls; i++ {
				dst := objs[(c+i)%4]
				v, err := rt.CallFrom(src, dst, "pool.add", args).Get()
				if err != nil {
					t.Errorf("caller %d call %d: %v", c, i, err)
					return
				}
				if got, want := v.(int64), int64((c+i)%4+c); got != want {
					t.Errorf("caller %d call %d: got %d want %d (pooled value corrupted?)", c, i, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	rt.Wait()
	for _, err := range rt.Errors() {
		t.Errorf("runtime error: %v", err)
	}
}

// TestPooledCrossNodeOwnership is the same discipline check across the
// transport: pooled parcels encode into pooled frames, ship over the
// fabric, decode into pooled parcels on the peer, and chase a live
// migration — with poisoning on, a frame flushed after its buffer was
// recycled or a parcel touched after dispatch fails loudly.
func TestPooledCrossNodeOwnership(t *testing.T) {
	parcel.SetPoolDebug(true)
	defer parcel.SetPoolDebug(false)

	fab := transport.NewFabric(2)
	ranges := []agas.Range{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}}
	reg := func(rt *Runtime) {
		rt.MustRegisterAction("pool.len", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
			return int64(len(target.([]float64))), nil
		})
	}
	var rts [2]*Runtime
	for i := 0; i < 2; i++ {
		rts[i] = New(Config{
			Transport: fab.Node(i), NodeID: i, NodeLocalities: ranges,
			WorkersPerLocality: 2, Register: reg,
		})
	}
	obj := rts[0].NewDataAt(0, make([]float64, 32))

	const callers = 6
	const calls = 200
	var callerWG, moverWG sync.WaitGroup
	stop := make(chan struct{})
	// A migration ping-pongs the object between the nodes while remote
	// callers chase it through forwarding pointers and moved verdicts.
	// Migration is initiated on the owning node, so the mover tracks where
	// it last pushed the object.
	moverWG.Add(1)
	go func() {
		defer moverWG.Done()
		at := 0
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := (at + 1) % 4
			owner := rts[0]
			if at >= 2 {
				owner = rts[1]
			}
			if err := owner.Migrate(obj, next); err != nil {
				t.Errorf("migrate %d (L%d->L%d): %v", i, at, next, err)
				return
			}
			at = next
		}
	}()
	for c := 0; c < callers; c++ {
		callerWG.Add(1)
		go func(c int) {
			defer callerWG.Done()
			node := rts[c%2]
			src := 2 * (c % 2)
			for i := 0; i < calls; i++ {
				v, err := node.CallFrom(src, obj, "pool.len", nil).Get()
				if err != nil {
					t.Errorf("caller %d call %d: %v", c, i, err)
					return
				}
				if v.(int64) != 32 {
					t.Errorf("caller %d call %d: got %d want 32", c, i, v)
					return
				}
			}
		}(c)
	}
	callerWG.Wait()
	close(stop)
	moverWG.Wait()
	for _, rt := range rts {
		rt.Wait()
	}
	for i, rt := range rts {
		for _, err := range rt.Errors() {
			t.Errorf("node %d runtime error: %v", i, err)
		}
	}
	for _, rt := range rts {
		rt.Shutdown()
	}
}
