package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// ActionFunc is the body applied when a parcel reaches its target object.
// target is the object named by the parcel's destination GID (resolved from
// the executing locality's store). The returned value feeds the parcel's
// continuation, if any.
//
// ctx and args are pooled dispatch scratch: they are valid only until the
// action returns and must not be retained (by a spawned goroutine, a
// stored closure, or an LCO). Anything an action wants to keep it copies
// out — args.Bytes and friends already return copies — and follow-on work
// travels as a parcel or via ctx.Spawn, per the model.
type ActionFunc func(ctx *Context, target any, args *parcel.Reader) (any, error)

// actionSet is one immutable snapshot of the registry: dense 1-based IDs
// in registration order, so dispatch is a slice index and the ID order is
// identical on every node that registers the same actions in the same
// order (the multi-node contract: registration happens in Config.Register
// before the transport starts).
type actionSet struct {
	byName map[string]uint32 // name -> 1-based dense ID
	fns    []ActionFunc      // fns[id-1]
	names  []string          // names[id-1], the canonical interned strings
}

// actionRegistry maps action names to bodies. Actions are first-class in
// the model: their names travel in parcels and can be bound in the global
// namespace. Reads are lock-free — the per-parcel dispatch path loads an
// immutable copy-on-write snapshot — while registration (a startup-time
// operation) serializes on a mutex and publishes a new snapshot.
type actionRegistry struct {
	mu  sync.Mutex // serializes register; never taken by readers
	set atomic.Pointer[actionSet]
}

func newActionRegistry() *actionRegistry {
	a := &actionRegistry{}
	a.set.Store(&actionSet{byName: map[string]uint32{}})
	return a
}

func (a *actionRegistry) register(name string, fn ActionFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("core: action needs a name and a body")
	}
	if len(name) > parcel.MaxInternString {
		return fmt.Errorf("core: action name of %d bytes exceeds wire limit %d", len(name), parcel.MaxInternString)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.set.Load()
	if _, dup := old.byName[name]; dup {
		return fmt.Errorf("core: action %q already registered", name)
	}
	next := &actionSet{
		byName: make(map[string]uint32, len(old.byName)+1),
		fns:    append(append([]ActionFunc(nil), old.fns...), fn),
		names:  append(append([]string(nil), old.names...), name),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.byName[name] = uint32(len(next.fns)) // 1-based
	a.set.Store(next)
	return nil
}

// lookup resolves an action name to its body and dense ID, lock-free.
func (a *actionRegistry) lookup(name string) (ActionFunc, uint32, bool) {
	s := a.set.Load()
	id, ok := s.byName[name]
	if !ok {
		return nil, parcel.NoAID, false
	}
	return s.fns[id-1], id, true
}

// byID resolves a dense action ID to its body, lock-free. IDs come from
// lookup or an interned wire decode, so an in-range ID is always valid.
func (a *actionRegistry) byID(id uint32) (ActionFunc, bool) {
	s := a.set.Load()
	if id == parcel.NoAID || int(id) > len(s.fns) {
		return nil, false
	}
	return s.fns[id-1], true
}

// snapshot returns the current immutable action set; names are in dense
// ID order (names[i] has ID i+1). The distributed layer announces this
// prefix to peers as its interning table.
func (a *actionRegistry) snapshot() *actionSet { return a.set.Load() }

// actionSet implements parcel.Table for the in-process serialized path:
// encoder and decoder share the registry, so wire positions are simply
// dense IDs shifted to 0-based. Snapshots are append-only — a position
// interned against an older snapshot resolves identically against every
// later one — so encode and decode may legally observe different
// snapshots of one registry.

// IDOf reports the 0-based wire position of a registered action name.
func (s *actionSet) IDOf(name string) (uint32, bool) {
	id, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	return id - 1, true
}

// ActionOf resolves a 0-based wire position to the interned name and its
// 1-based dense dispatch ID.
func (s *actionSet) ActionOf(id uint32) (string, uint32, bool) {
	if int(id) >= len(s.names) {
		return "", parcel.NoAID, false
	}
	return s.names[id], id + 1, true
}

// RegisterAction installs a named action. Registration must happen before
// parcels naming the action are sent; duplicate names are rejected.
func (r *Runtime) RegisterAction(name string, fn ActionFunc) error {
	return r.acts.register(name, fn)
}

// MustRegisterAction is RegisterAction that panics on error, for program
// initialization.
func (r *Runtime) MustRegisterAction(name string, fn ActionFunc) {
	if err := r.RegisterAction(name, fn); err != nil {
		panic(err)
	}
}

// Built-in action names. The LCO actions let continuations target futures,
// gates and reductions transparently.
const (
	// ActionLCOSet resolves a future target with the parcel's value.
	ActionLCOSet = "px.lco.set"
	// ActionLCOFail fails a future target with an error message argument.
	ActionLCOFail = "px.lco.fail"
	// ActionLCOSignal signals an AndGate or Metathread target.
	ActionLCOSignal = "px.lco.signal"
	// ActionLCOContribute contributes the parcel's value to a Reduce target.
	ActionLCOContribute = "px.lco.contribute"
	// ActionLCOTrigger applies one identified, idempotent trigger to a
	// distributed LCO target: args carry the trigger ID, operation, slot,
	// and value record (see Runtime.SetLCO and friends). It is the local
	// leg of the distributed LCO protocol; cross-node hops ride
	// fLCOSet/fLCOFire frames that re-enter this action on the owning
	// node.
	ActionLCOTrigger = "px.lco.trigger"
	// ActionNop does nothing; useful for measuring pure parcel overhead.
	ActionNop = "px.nop"
)

func registerBuiltins(a *actionRegistry) {
	mustReg := func(name string, fn ActionFunc) {
		if err := a.register(name, fn); err != nil {
			panic(err)
		}
	}
	mustReg(ActionLCOSet, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		switch f := target.(type) {
		case *lco.Future:
			v, err := decodeValueArg(args)
			if err != nil {
				return nil, err
			}
			if err := f.Set(v); err != nil {
				return nil, err
			}
			return v, nil
		case *DistLCO:
			// A continuation-borne trigger: the dedup ID derives from the
			// carrying parcel, so a fault-duplicated delivery applies once.
			raw := args.Bytes()
			if err := args.Err(); err != nil {
				return nil, err
			}
			v, err := parcel.DecodeAny(raw)
			if err != nil {
				return nil, err
			}
			return v, ctx.rt.applyDistTrigger(ctx.loc, f, ctx.tid, TrigSet, 0, raw)
		}
		return nil, fmt.Errorf("core: %s on %T", ActionLCOSet, target)
	})
	mustReg(ActionLCOFail, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		msg := args.String()
		if err := args.Err(); err != nil {
			return nil, err
		}
		switch f := target.(type) {
		case *lco.Future:
			failErr := fmt.Errorf("remote action failed: %s", msg)
			if err := f.Fail(failErr); err != nil {
				return nil, err
			}
			return nil, nil
		case *DistLCO:
			raw, _ := parcel.EncodeAny(msg)
			return nil, ctx.rt.applyDistTrigger(ctx.loc, f, ctx.tid, TrigFail, 0, raw)
		}
		return nil, fmt.Errorf("core: %s on %T", ActionLCOFail, target)
	})
	mustReg(ActionLCOSignal, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		switch g := target.(type) {
		case *lco.AndGate:
			g.Signal()
		case *lco.Metathread:
			g.Signal()
		case *DistLCO:
			return nil, ctx.rt.applyDistTrigger(ctx.loc, g, ctx.tid, TrigSignal, 0, nil)
		default:
			return nil, fmt.Errorf("core: %s on %T", ActionLCOSignal, target)
		}
		return nil, nil
	})
	mustReg(ActionLCOContribute, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		switch red := target.(type) {
		case *lco.Reduce:
			v, err := decodeValueArg(args)
			if err != nil {
				return nil, err
			}
			if err := red.Contribute(v); err != nil {
				return nil, err
			}
			return nil, nil
		case *DistLCO:
			raw := args.Bytes()
			if err := args.Err(); err != nil {
				return nil, err
			}
			return nil, ctx.rt.applyDistTrigger(ctx.loc, red, ctx.tid, TrigContribute, 0, raw)
		}
		return nil, fmt.Errorf("core: %s on %T", ActionLCOContribute, target)
	})
	mustReg(ActionLCOTrigger, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		tid := args.Uint64()
		op := TrigOp(args.Uint64())
		slot := uint32(args.Uint64())
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		switch t := target.(type) {
		case *DistLCO:
			return nil, ctx.rt.applyDistTrigger(ctx.loc, t, tid, op, slot, raw)
		default:
			return nil, applyPlainTrigger(t, op, raw)
		}
	})
	mustReg(ActionNop, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return nil, nil
	})
}

// applyPlainTrigger maps a distributed trigger onto a process-local LCO —
// the waiter futures of WaitLCO, or any plain LCO a trigger names. Plain
// LCOs carry no dedup set, so idempotence here is what the type itself
// offers: single-assignment targets (set/fail — the whole WaitLCO fire
// path) absorb a duplicated delivery silently because the first copy
// carried this exact value, but a plain AndGate signal or Reduce
// contribution is counted as delivered. Synchronization that must
// survive duplication faults targets a DistLCO, whose trigger IDs dedup
// every operation.
func applyPlainTrigger(target any, op TrigOp, raw []byte) error {
	switch t := target.(type) {
	case *lco.Future:
		switch op {
		case TrigSet:
			v, err := parcel.DecodeAny(raw)
			if err != nil {
				return err
			}
			if err := t.Set(v); err != nil && !errors.Is(err, lco.ErrAlreadySet) {
				return err
			}
			return nil
		case TrigFail:
			v, err := parcel.DecodeAny(raw)
			if err != nil {
				return err
			}
			msg, _ := v.(string)
			if err := t.Fail(fmt.Errorf("remote LCO failed: %s", msg)); err != nil && !errors.Is(err, lco.ErrAlreadySet) {
				return err
			}
			return nil
		}
	case *lco.AndGate:
		if op == TrigSignal {
			t.Signal()
			return nil
		}
	case *lco.Reduce:
		if op == TrigContribute {
			v, err := parcel.DecodeAny(raw)
			if err != nil {
				return err
			}
			if err := t.Contribute(v); err != nil && !errors.Is(err, lco.ErrAlreadySet) {
				return err
			}
			return nil
		}
	}
	return fmt.Errorf("core: %s trigger on %T", op, target)
}

// decodeValueArg reads a single EncodeAny-encoded value from args.
func decodeValueArg(args *parcel.Reader) (any, error) {
	raw := args.Bytes()
	if err := args.Err(); err != nil {
		return nil, err
	}
	return parcel.DecodeAny(raw)
}

// encodeValueArg wraps an action result for a continuation parcel: the
// value is EncodeAny'd then carried as a single bytes argument.
func encodeValueArg(v any) ([]byte, error) {
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return nil, err
	}
	return parcel.NewArgs().Bytes(raw).Encode(), nil
}

// Context is the view of the runtime an executing thread sees: which
// locality it is on, and the operations the model allows — sending parcels,
// spawning local threads, creating LCOs, and suspending on dependencies.
type Context struct {
	rt  *Runtime
	loc int
	th  interface{ Suspend() error }
	// tid is the parcel-derived trigger ID for the dispatch in flight
	// (see parcelTriggerID): it makes continuation-borne DistLCO triggers
	// idempotent under duplicated delivery. Zero for non-parcel threads.
	tid uint64
}

// Locality reports the executing locality.
func (c *Context) Locality() int { return c.loc }

// Runtime exposes the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Send routes a parcel; the source locality is stamped automatically.
func (c *Context) Send(p *parcel.Parcel) { c.rt.SendFrom(c.loc, p) }

// Call invokes action on dest and returns a future (homed here) for the
// result — split-phase remote invocation.
func (c *Context) Call(dest agas.GID, action string, args []byte) *lco.Future {
	return c.rt.CallFrom(c.loc, dest, action, args)
}

// Spawn starts a new local thread.
func (c *Context) Spawn(fn func(*Context)) { c.rt.Spawn(c.loc, fn) }

// SpawnAt starts a thread on another locality (implemented as a parcel to
// that locality's hardware object would be; the runtime short-circuits).
func (c *Context) SpawnAt(loc int, fn func(*Context)) { c.rt.Spawn(loc, fn) }

// Await suspends the current thread on f: the execution slot is released
// while blocked (the thread depletes into the future's wait list) and
// re-acquired on resumption, exactly the paper's suspension semantics.
func (c *Context) Await(f *lco.Future) (any, error) {
	if v, err, ok := f.TryGet(); ok {
		return v, err // dependency already satisfied: no suspension
	}
	c.rt.slow.Suspensions.Inc()
	if c.th != nil {
		c.th.Suspend()
	}
	var v any
	var err error
	start := now()
	c.rt.loc(c.loc).Suspend(func() { v, err = f.Get() })
	c.rt.slow.Waiting.ObserveDuration(now().Sub(start))
	if t, ok := c.th.(interface{ Resume() error }); ok {
		t.Resume()
	}
	return v, err
}

// NewFuture creates a future LCO homed at this locality with a global name.
func (c *Context) NewFuture() (agas.GID, *lco.Future) { return c.rt.NewFutureAt(c.loc) }
