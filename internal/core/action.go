package core

import (
	"fmt"
	"sync"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// ActionFunc is the body applied when a parcel reaches its target object.
// target is the object named by the parcel's destination GID (resolved from
// the executing locality's store). The returned value feeds the parcel's
// continuation, if any.
type ActionFunc func(ctx *Context, target any, args *parcel.Reader) (any, error)

// actionRegistry maps action names to bodies. Actions are first-class in
// the model: their names travel in parcels and can be bound in the global
// namespace.
type actionRegistry struct {
	mu sync.RWMutex
	m  map[string]ActionFunc
}

func newActionRegistry() *actionRegistry {
	return &actionRegistry{m: make(map[string]ActionFunc)}
}

func (a *actionRegistry) register(name string, fn ActionFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("core: action needs a name and a body")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.m[name]; dup {
		return fmt.Errorf("core: action %q already registered", name)
	}
	a.m[name] = fn
	return nil
}

func (a *actionRegistry) lookup(name string) (ActionFunc, bool) {
	a.mu.RLock()
	fn, ok := a.m[name]
	a.mu.RUnlock()
	return fn, ok
}

// RegisterAction installs a named action. Registration must happen before
// parcels naming the action are sent; duplicate names are rejected.
func (r *Runtime) RegisterAction(name string, fn ActionFunc) error {
	return r.acts.register(name, fn)
}

// MustRegisterAction is RegisterAction that panics on error, for program
// initialization.
func (r *Runtime) MustRegisterAction(name string, fn ActionFunc) {
	if err := r.RegisterAction(name, fn); err != nil {
		panic(err)
	}
}

// Built-in action names. The LCO actions let continuations target futures,
// gates and reductions transparently.
const (
	// ActionLCOSet resolves a future target with the parcel's value.
	ActionLCOSet = "px.lco.set"
	// ActionLCOFail fails a future target with an error message argument.
	ActionLCOFail = "px.lco.fail"
	// ActionLCOSignal signals an AndGate or Metathread target.
	ActionLCOSignal = "px.lco.signal"
	// ActionLCOContribute contributes the parcel's value to a Reduce target.
	ActionLCOContribute = "px.lco.contribute"
	// ActionNop does nothing; useful for measuring pure parcel overhead.
	ActionNop = "px.nop"
)

func registerBuiltins(a *actionRegistry) {
	mustReg := func(name string, fn ActionFunc) {
		if err := a.register(name, fn); err != nil {
			panic(err)
		}
	}
	mustReg(ActionLCOSet, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		f, ok := target.(*lco.Future)
		if !ok {
			return nil, fmt.Errorf("core: %s on %T", ActionLCOSet, target)
		}
		v, err := decodeValueArg(args)
		if err != nil {
			return nil, err
		}
		if err := f.Set(v); err != nil {
			return nil, err
		}
		return v, nil
	})
	mustReg(ActionLCOFail, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		f, ok := target.(*lco.Future)
		if !ok {
			return nil, fmt.Errorf("core: %s on %T", ActionLCOFail, target)
		}
		msg := args.String()
		if err := args.Err(); err != nil {
			return nil, err
		}
		failErr := fmt.Errorf("remote action failed: %s", msg)
		if err := f.Fail(failErr); err != nil {
			return nil, err
		}
		return nil, nil
	})
	mustReg(ActionLCOSignal, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		switch g := target.(type) {
		case *lco.AndGate:
			g.Signal()
		case *lco.Metathread:
			g.Signal()
		default:
			return nil, fmt.Errorf("core: %s on %T", ActionLCOSignal, target)
		}
		return nil, nil
	})
	mustReg(ActionLCOContribute, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		red, ok := target.(*lco.Reduce)
		if !ok {
			return nil, fmt.Errorf("core: %s on %T", ActionLCOContribute, target)
		}
		v, err := decodeValueArg(args)
		if err != nil {
			return nil, err
		}
		if err := red.Contribute(v); err != nil {
			return nil, err
		}
		return nil, nil
	})
	mustReg(ActionNop, func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return nil, nil
	})
}

// decodeValueArg reads a single EncodeAny-encoded value from args.
func decodeValueArg(args *parcel.Reader) (any, error) {
	raw := args.Bytes()
	if err := args.Err(); err != nil {
		return nil, err
	}
	return parcel.DecodeAny(raw)
}

// encodeValueArg wraps an action result for a continuation parcel: the
// value is EncodeAny'd then carried as a single bytes argument.
func encodeValueArg(v any) ([]byte, error) {
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return nil, err
	}
	return parcel.NewArgs().Bytes(raw).Encode(), nil
}

// Context is the view of the runtime an executing thread sees: which
// locality it is on, and the operations the model allows — sending parcels,
// spawning local threads, creating LCOs, and suspending on dependencies.
type Context struct {
	rt  *Runtime
	loc int
	th  interface{ Suspend() error }
}

// Locality reports the executing locality.
func (c *Context) Locality() int { return c.loc }

// Runtime exposes the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Send routes a parcel; the source locality is stamped automatically.
func (c *Context) Send(p *parcel.Parcel) { c.rt.SendFrom(c.loc, p) }

// Call invokes action on dest and returns a future (homed here) for the
// result — split-phase remote invocation.
func (c *Context) Call(dest agas.GID, action string, args []byte) *lco.Future {
	return c.rt.CallFrom(c.loc, dest, action, args)
}

// Spawn starts a new local thread.
func (c *Context) Spawn(fn func(*Context)) { c.rt.Spawn(c.loc, fn) }

// SpawnAt starts a thread on another locality (implemented as a parcel to
// that locality's hardware object would be; the runtime short-circuits).
func (c *Context) SpawnAt(loc int, fn func(*Context)) { c.rt.Spawn(loc, fn) }

// Await suspends the current thread on f: the execution slot is released
// while blocked (the thread depletes into the future's wait list) and
// re-acquired on resumption, exactly the paper's suspension semantics.
func (c *Context) Await(f *lco.Future) (any, error) {
	if v, err, ok := f.TryGet(); ok {
		return v, err // dependency already satisfied: no suspension
	}
	c.rt.slow.Suspensions.Inc()
	if c.th != nil {
		c.th.Suspend()
	}
	var v any
	var err error
	start := now()
	c.rt.locs[c.loc].Suspend(func() { v, err = f.Get() })
	c.rt.slow.Waiting.ObserveDuration(now().Sub(start))
	if t, ok := c.th.(interface{ Resume() error }); ok {
		t.Resume()
	}
	return v, err
}

// NewFuture creates a future LCO homed at this locality with a global name.
func (c *Context) NewFuture() (agas.GID, *lco.Future) { return c.rt.NewFutureAt(c.loc) }
