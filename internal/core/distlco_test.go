package core

import (
	"sync"
	"testing"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/transport"
)

// TestDistLCOLocalTriggerPaths drives every trigger operation against
// locally hosted distributed LCOs through the parcel path.
func TestDistLCOLocalTriggerPaths(t *testing.T) {
	r := New(Config{Localities: 2, WorkersPerLocality: 2})
	defer r.Shutdown()

	fut := r.NewDistFutureAt(0)
	wf := r.WaitLCO(1, fut)
	if err := r.SetLCO(1, fut, int64(42)); err != nil {
		t.Fatal(err)
	}
	if v, err := wf.Get(); err != nil || v.(int64) != 42 {
		t.Fatalf("future = %v, %v; want 42", v, err)
	}

	gate := r.NewDistGateAt(0, 3)
	wg := r.WaitLCO(0, gate)
	for i := 0; i < 3; i++ {
		r.SignalLCO(i%2, gate)
	}
	if _, err := wg.Get(); err != nil {
		t.Fatalf("gate: %v", err)
	}

	red := r.NewDistReduceAt(1, 4, ReduceSum, int64(0))
	wr := r.WaitLCO(0, red)
	for i := 1; i <= 4; i++ {
		if err := r.ContributeLCO(0, red, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := wr.Get(); err != nil || v.(int64) != 10 {
		t.Fatalf("reduce = %v, %v; want 10", v, err)
	}

	df := r.NewDistDataflowAt(0, 3, ReduceSum)
	wd := r.WaitLCO(1, df)
	for i := 0; i < 3; i++ {
		if err := r.SupplyLCO(1, df, uint32(i), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := wd.Get(); err != nil || v.(float64) != 6 {
		t.Fatalf("dataflow = %v, %v; want 6", v, err)
	}

	ff := r.NewDistFutureAt(0)
	wfail := r.WaitLCO(0, ff)
	r.FailLCO(1, ff, "deliberate")
	if _, err := wfail.Get(); err == nil {
		t.Fatal("failed LCO resolved without error")
	}
	r.Wait()
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}

// TestDistLCOLocalDuplicationIdempotence floods distributed LCOs with
// trigger parcels while the fault injector duplicates aggressively: the
// identified triggers must count exactly once each, with no recorded
// errors — the local trigger path's duplicate-delivery idempotence.
func TestDistLCOLocalDuplicationIdempotence(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DupOneIn: 1, Seed: 5}, // duplicate everything
	})
	defer r.Shutdown()

	const n = 100
	gate := r.NewDistGateAt(1, n)
	wg := r.WaitLCO(0, gate)
	red := r.NewDistReduceAt(1, n, ReduceSum, int64(0))
	wr := r.WaitLCO(0, red)
	for i := 0; i < n; i++ {
		r.SignalLCO(0, gate)
		if err := r.ContributeLCO(0, red, int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wg.Get(); err != nil {
		t.Fatalf("gate under duplication: %v", err)
	}
	if v, err := wr.Get(); err != nil || v.(int64) != n {
		t.Fatalf("reduce under duplication = %v, %v; want %d", v, err, n)
	}
	r.Wait()
	if r.Duplicated() == 0 {
		t.Fatal("fault injector duplicated nothing at 1-in-1")
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("duplicated identified triggers recorded errors: %v", errs)
	}
	// n signals plus the wait subscription, each exactly once.
	if obj, ok := r.LocalObject(1, gate); ok {
		if seen := obj.(*DistLCO).TriggersSeen(); seen != n+1 {
			t.Fatalf("gate dedup recorded %d distinct triggers, want %d", seen, n+1)
		}
	}
}

// TestDistLCORemoteDuplicationIdempotence runs the same storm across a
// 3-node loopback fabric with duplication injected on every node, so
// triggers cross the fLCOSet frame path and their duplicates must be
// absorbed by the target's dedup set.
func TestDistLCORemoteDuplicationIdempotence(t *testing.T) {
	fabric := transport.NewFabric(3)
	ranges := []agas.Range{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}}
	rts := make([]*Runtime, 3)
	for i := range rts {
		rts[i] = New(Config{
			Transport:          fabric.Node(i),
			NodeID:             i,
			NodeLocalities:     ranges,
			WorkersPerLocality: 2,
			Faults:             Faults{DupOneIn: 2, Seed: int64(i + 1)},
		})
	}
	defer func() {
		for _, r := range rts {
			r.Shutdown()
		}
	}()

	const perNode = 40
	gate := rts[0].NewDistGateAt(0, 2*perNode)
	red := rts[0].NewDistReduceAt(0, 2*perNode, ReduceSum, int64(0))
	wg := rts[0].WaitLCO(0, gate)
	wr := rts[0].WaitLCO(0, red)
	for i := 0; i < perNode; i++ {
		for n := 1; n <= 2; n++ {
			rts[n].SignalLCO(n, gate)
			if err := rts[n].ContributeLCO(n, red, int64(n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := wg.Get(); err != nil {
		t.Fatalf("remote gate under duplication: %v", err)
	}
	if v, err := wr.Get(); err != nil || v.(int64) != perNode*3 {
		t.Fatalf("remote reduce = %v, %v; want %d", v, err, perNode*3)
	}
	rts[0].Wait()
	var duped uint64
	for _, r := range rts {
		duped += r.Duplicated()
	}
	if duped == 0 {
		t.Fatal("no duplication injected across three nodes at 1-in-2")
	}
	for i, r := range rts {
		if errs := r.Errors(); len(errs) != 0 {
			t.Fatalf("node %d recorded errors: %v", i, errs)
		}
	}
}

// TestDistLCOMidMigrationIdempotence hammers a distributed gate with
// identified triggers while the gate migrates back and forth between
// localities, with duplication injected: triggers park at the migration
// fence, chase the forwarding pointer, and must still count exactly once
// each — the dedup set travels with the object.
func TestDistLCOMidMigrationIdempotence(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DupOneIn: 2, Seed: 9},
	})
	defer r.Shutdown()

	const n = 120
	gate := r.NewDistGateAt(0, n)
	done := r.WaitLCO(0, gate)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.SignalLCO(i%2, gate)
		}
	}()
	for m := 0; m < 6; m++ {
		if err := r.Migrate(gate, 1-m%2); err != nil {
			t.Fatalf("migration %d: %v", m, err)
		}
	}
	wg.Wait()
	if _, err := done.Get(); err != nil {
		t.Fatalf("gate under migration + duplication: %v", err)
	}
	r.Wait()
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}

// TestDistLCOWaiterSurvivesMigration subscribes a waiter, migrates the
// LCO, and only then resolves it: the waiter list must travel with the
// object and fire from its new home.
func TestDistLCOWaiterSurvivesMigration(t *testing.T) {
	r := New(Config{Localities: 2, WorkersPerLocality: 2})
	defer r.Shutdown()
	fut := r.NewDistFutureAt(0)
	w := r.WaitLCO(0, fut)
	r.Wait() // the subscription must land before the move
	if err := r.Migrate(fut, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLCO(0, fut, "moved"); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Get(); err != nil || v.(string) != "moved" {
		t.Fatalf("waiter after migration = %v, %v; want moved", v, err)
	}
	if obj, ok := r.LocalObject(1, fut); !ok {
		t.Fatal("future not hosted at its migration destination")
	} else if _, _, resolved := obj.(*DistLCO).Resolved(); !resolved {
		t.Fatal("migrated future unresolved after set")
	}
}

// TestDistLCOCodecRoundTrip pushes a half-resolved LCO through the wire
// codec and checks every piece of state survives.
func TestDistLCOCodecRoundTrip(t *testing.T) {
	l := &DistLCO{
		kind: lcoReduce, need: 3, opName: ReduceSum, val: int64(7),
		waiters: []Waiter{
			{Target: agas.GID{Home: 2, Kind: agas.KindLCO, Seq: 9}, Op: TrigContribute},
			{Target: agas.GID{Home: 0, Kind: agas.KindLCO, Seq: 4}, Op: TrigSupply, Slot: 2},
		},
	}
	l.dedup.Add(101)
	l.dedup.Add(202)
	raw, err := parcel.EncodeAny(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parcel.DecodeAny(raw)
	if err != nil {
		t.Fatal(err)
	}
	d := back.(*DistLCO)
	if d.kind != lcoReduce || d.need != 3 || d.opName != ReduceSum || d.val.(int64) != 7 {
		t.Fatalf("state lost: %+v", d)
	}
	if d.dedup.Len() != 2 || !d.dedup.Seen(101) || !d.dedup.Seen(202) {
		t.Fatal("dedup set lost")
	}
	if len(d.waiters) != 2 || d.waiters[0] != l.waiters[0] || d.waiters[1] != l.waiters[1] {
		t.Fatalf("waiters lost: %+v", d.waiters)
	}

	// A dataflow with one filled slot.
	df := &DistLCO{kind: lcoDataflow, need: 1, opName: ReduceMax,
		slots: []any{float64(3.5), nil}, filled: []bool{true, false}}
	raw, err = parcel.EncodeAny(df)
	if err != nil {
		t.Fatal(err)
	}
	back, err = parcel.DecodeAny(raw)
	if err != nil {
		t.Fatal(err)
	}
	d = back.(*DistLCO)
	if len(d.slots) != 2 || !d.filled[0] || d.filled[1] || d.slots[0].(float64) != 3.5 {
		t.Fatalf("slots lost: %+v filled %+v", d.slots, d.filled)
	}
}

// TestDistLCOContinuationTarget checks the tentpole's continuation
// contract: a parcel continuation may name a distributed LCO as its
// target, and the action result resolves it.
func TestDistLCOContinuationTarget(t *testing.T) {
	r := New(Config{Localities: 2, WorkersPerLocality: 2})
	defer r.Shutdown()
	r.MustRegisterAction("test.seven", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return int64(7), nil
	})
	obj := r.NewDataAt(1, struct{}{})
	fut := r.NewDistFutureAt(0)
	w := r.WaitLCO(0, fut)
	p := parcel.New(obj, "test.seven", nil, parcel.Continuation{Target: fut, Action: ActionLCOSet})
	r.SendFrom(0, p)
	if v, err := w.Get(); err != nil || v.(int64) != 7 {
		t.Fatalf("continuation into DistLCO = %v, %v; want 7", v, err)
	}
}

// TestDistLCOContinuationDuplicationIdempotence checks that
// continuation-borne triggers (px.lco.signal/contribute naming a DistLCO)
// are deduplicated under fault duplication: the trigger ID derives from
// the carrying parcel, and a duplicated parcel shares its original's ID.
func TestDistLCOContinuationDuplicationIdempotence(t *testing.T) {
	r := New(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Faults:             Faults{DupOneIn: 1, Seed: 23}, // duplicate everything
	})
	defer r.Shutdown()
	r.MustRegisterAction("test.one", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return int64(1), nil
	})
	const n = 60
	obj := r.NewDataAt(1, struct{}{})
	gate := r.NewDistGateAt(0, n)
	red := r.NewDistReduceAt(0, n, ReduceSum, int64(0))
	wg := r.WaitLCO(0, gate)
	wr := r.WaitLCO(0, red)
	for i := 0; i < n; i++ {
		r.SendFrom(0, parcel.New(obj, "test.one", nil,
			parcel.Continuation{Target: gate, Action: ActionLCOSignal}))
		r.SendFrom(0, parcel.New(obj, "test.one", nil,
			parcel.Continuation{Target: red, Action: ActionLCOContribute}))
	}
	if _, err := wg.Get(); err != nil {
		t.Fatalf("gate via duplicated continuations: %v", err)
	}
	if v, err := wr.Get(); err != nil || v.(int64) != n {
		t.Fatalf("reduce via duplicated continuations = %v, %v; want %d", v, err, n)
	}
	r.Wait()
	if r.Duplicated() == 0 {
		t.Fatal("fault injector duplicated nothing at 1-in-1")
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
	// The sharp check: every continuation parcel must have carried a
	// distinct identified trigger (n signals + the wait subscription).
	// With unidentified (ID 0) triggers the gate would have resolved
	// after half the parcels and recorded only the subscription.
	if obj, ok := r.LocalObject(0, gate); ok {
		if seen := obj.(*DistLCO).TriggersSeen(); seen != n+1 {
			t.Fatalf("gate recorded %d distinct triggers, want %d", seen, n+1)
		}
	}
}

// TestRegisterReducerValidation covers reducer registration errors and
// the construction-time check for unknown operators.
func TestRegisterReducerValidation(t *testing.T) {
	r := New(Config{Localities: 1})
	defer r.Shutdown()
	if err := r.RegisterReducer("", nil); err == nil {
		t.Fatal("nameless reducer accepted")
	}
	if err := r.RegisterReducer(ReduceSum, func(acc, v any) any { return acc }); err == nil {
		t.Fatal("duplicate reducer accepted")
	}
	if err := r.RegisterReducer("test.custom", func(acc, v any) any { return v }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown reducer at construction did not panic")
		}
	}()
	r.NewDistReduceAt(0, 1, "no.such.op", nil)
}

// TestDistLCOLateTriggerToFreedTarget checks the benign-straggler path: a
// duplicated trigger arriving after its one-shot target was consumed and
// freed is dropped silently instead of polluting the error log.
func TestDistLCOLateTriggerToFreedTarget(t *testing.T) {
	r := New(Config{Localities: 2, WorkersPerLocality: 2})
	defer r.Shutdown()
	fgid, fut := r.NewFutureAt(0)
	raw, _ := parcel.EncodeAny(int64(1))
	r.SendFrom(1, parcel.Acquire(fgid, ActionLCOTrigger, encodeTriggerArgs(77, TrigSet, 0, raw)))
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	r.FreeObject(fgid)
	// The straggler: same trigger, target gone.
	r.SendFrom(1, parcel.Acquire(fgid, ActionLCOTrigger, encodeTriggerArgs(77, TrigSet, 0, raw)))
	r.Wait()
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("late trigger to freed target recorded errors: %v", errs)
	}
}

// TestLCOTriggerStatsSingleProcess pins the degenerate stats surface.
func TestLCOTriggerStatsSingleProcess(t *testing.T) {
	r := New(Config{Localities: 1})
	defer r.Shutdown()
	if s, rcv, rt := r.LCOTriggerStats(); s != 0 || rcv != 0 || rt != 0 {
		t.Fatalf("single-process trigger stats = %d %d %d, want zeros", s, rcv, rt)
	}
	if r.Nodes() != 1 {
		t.Fatalf("Nodes() = %d on a single process", r.Nodes())
	}
	if rg := r.NodeRange(0); rg.Lo != 0 || rg.Hi != 1 {
		t.Fatalf("NodeRange(0) = %v", rg)
	}
}

// TestTrigOpStrings keeps the wire-visible op set printable.
func TestTrigOpStrings(t *testing.T) {
	want := map[TrigOp]string{
		TrigSet: "set", TrigFail: "fail", TrigSignal: "signal",
		TrigContribute: "contribute", TrigSupply: "supply", TrigWait: "wait",
		TrigOp(99): "op99",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Fatalf("TrigOp(%d).String() = %q, want %q", op, got, s)
		}
	}
}
