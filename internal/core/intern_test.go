package core

import (
	"fmt"
	"testing"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/transport"
)

func TestHelloRoundTrip(t *testing.T) {
	names := []string{"px.lco.set", "app.frob", "", "x"}
	got, can, traced, mh, err := parseHello(encodeHello(names, true, true, nil))
	if err != nil || !can || !traced || mh != nil {
		t.Fatalf("parseHello: can=%v traced=%v mh=%v err=%v", can, traced, mh, err)
	}
	if len(got) != len(names) {
		t.Fatalf("got %d names, want %d", len(got), len(names))
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("name %d: %q != %q", i, got[i], names[i])
		}
	}
	// The capability bits are independent: a trace-only hello announces no
	// table, an intern-only hello no trace bit.
	if got, can, traced, _, err := parseHello(encodeHello(names, false, true, nil)); err != nil || can || !traced || len(got) != 0 {
		t.Fatalf("trace-only hello: %d names can=%v traced=%v err=%v", len(got), can, traced, err)
	}
	if _, can, traced, _, err := parseHello(encodeHello(names, true, false, nil)); err != nil || !can || traced {
		t.Fatalf("intern-only hello: can=%v traced=%v err=%v", can, traced, err)
	}
	// Empty and unknown-version payloads mean "strings only", not an error.
	if _, can, traced, _, err := parseHello(nil); can || traced || err != nil {
		t.Fatalf("empty hello: can=%v traced=%v err=%v", can, traced, err)
	}
	if _, can, traced, _, err := parseHello([]byte{99, 0, 0, 0, 0, 0}); can || traced || err != nil {
		t.Fatalf("future-version hello: can=%v traced=%v err=%v", can, traced, err)
	}
	// Truncated payloads are rejected.
	if _, _, _, _, err := parseHello(encodeHello(names, true, true, nil)[:8]); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

// TestHelloMemberSection: a hello carrying a membership announcement uses
// the v2 form and round-trips the joiner's identity; one without stays
// byte-identical to the v1 encoding, so grown peers interoperate with
// pre-membership builds.
func TestHelloMemberSection(t *testing.T) {
	names := []string{"px.lco.set", "app.frob"}
	in := &memberHello{node: 3, lo: 12, hi: 16, addr: "127.0.0.1:4242"}
	got, can, traced, mh, err := parseHello(encodeHello(names, true, true, in))
	if err != nil || !can || !traced || mh == nil {
		t.Fatalf("member hello: can=%v traced=%v mh=%v err=%v", can, traced, mh, err)
	}
	if *mh != *in {
		t.Fatalf("member section round trip: got %+v want %+v", *mh, *in)
	}
	if len(got) != len(names) {
		t.Fatalf("member hello lost the action table: %d names, want %d", len(got), len(names))
	}
	// No member section → the legacy v1 bytes, exactly.
	v1 := encodeHello(names, true, true, nil)
	if len(v1) == 0 || v1[0] != helloVersion {
		t.Fatalf("memberless hello not version %d: %v", helloVersion, v1[:1])
	}
	// A member section without any action table still parses.
	if _, can, traced, mh, err := parseHello(encodeHello(nil, false, false, in)); err != nil || can || traced || mh == nil || *mh != *in {
		t.Fatalf("bare member hello: can=%v traced=%v mh=%v err=%v", can, traced, mh, err)
	}
	// Truncated member sections are rejected, not mis-parsed.
	full := encodeHello(nil, false, false, in)
	if _, _, _, _, err := parseHello(full[:len(full)-3]); err == nil {
		t.Fatal("truncated member section accepted")
	}
}

// TestHelloPrefixBudgets: the announced table prefix respects both the
// entry-count and the transport byte budget, so a huge registry degrades
// to partial interning instead of a SetHello panic at startup.
func TestHelloPrefixBudgets(t *testing.T) {
	small := []string{"a", "b", "c"}
	if got := helloPrefix(small); got != 3 {
		t.Fatalf("helloPrefix(small) = %d, want 3", got)
	}
	big := make([]string, 40)
	for i := range big {
		big[i] = string(make([]byte, 60000)) // 40 × 60KB >> transport.MaxHello
	}
	n := helloPrefix(big)
	if n >= len(big) || n == 0 {
		t.Fatalf("helloPrefix(big) = %d, want a proper nonzero prefix of %d", n, len(big))
	}
	payload := encodeHello(big, true, false, nil)
	if len(payload) > transport.MaxHello {
		t.Fatalf("encodeHello encoded %d bytes, over the %d transport budget", len(payload), transport.MaxHello)
	}
	names, can, _, _, err := parseHello(payload)
	if err != nil || !can || len(names) != n {
		t.Fatalf("truncated hello: %d names can=%v err=%v, want %d", len(names), can, err, n)
	}
}

// TestOversizedActionNameFailsGracefully: a 65535-byte action name fits
// only the plain wire form and can never be registered; sending it must
// produce the normal unknown-action failure, not an encoder panic.
func TestOversizedActionNameFailsGracefully(t *testing.T) {
	rt := New(Config{Localities: 2})
	defer rt.Shutdown()
	g := rt.NewDataAt(1, int64(1))
	long := string(make([]byte, parcel.MaxString))
	rt.SendFrom(0, parcel.New(g, long, nil))
	rt.Wait()
	errs := rt.Errors()
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want the one unknown-action failure: %v", len(errs), errs)
	}
}

// internRanges partitions four localities across two nodes.
var internRanges = []agas.Range{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}}

// startInternPair builds a two-node machine over the given transports.
// Node 1 registers a decoy action first, so the two nodes' dense action
// IDs for the shared action differ — the peer-table position mapping must
// reconcile them.
func startInternPair(t *testing.T, trs [2]transport.Transport, disable [2]bool) [2]*Runtime {
	t.Helper()
	var rts [2]*Runtime
	for i := 0; i < 2; i++ {
		i := i
		rts[i] = New(Config{
			Transport:              trs[i],
			NodeID:                 i,
			NodeLocalities:         internRanges,
			WorkersPerLocality:     2,
			DisableActionInterning: disable[i],
			Register: func(rt *Runtime) {
				if i == 1 {
					rt.MustRegisterAction("intern.decoy", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
						return nil, nil
					})
				}
				rt.MustRegisterAction("intern.echo", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
					n, ok := target.(int64)
					if !ok {
						return nil, fmt.Errorf("intern.echo on %T", target)
					}
					return n, nil
				})
			},
		})
	}
	return rts
}

// exerciseInternPair drives calls in both directions and checks results.
func exerciseInternPair(t *testing.T, rts [2]*Runtime) {
	t.Helper()
	a := rts[0].NewDataAt(0, int64(7))
	b := rts[1].NewDataAt(2, int64(42))
	for round := 0; round < 3; round++ {
		v, err := rts[0].CallFrom(0, b, "intern.echo", nil).Get()
		if err != nil || v.(int64) != 42 {
			t.Fatalf("round %d: 0->1 call: %v %v", round, v, err)
		}
		v, err = rts[1].CallFrom(2, a, "intern.echo", nil).Get()
		if err != nil || v.(int64) != 7 {
			t.Fatalf("round %d: 1->0 call: %v %v", round, v, err)
		}
	}
	for _, rt := range rts {
		rt.Wait()
		for _, err := range rt.Errors() {
			t.Errorf("runtime error: %v", err)
		}
	}
}

// TestInterningEngagesBetweenCapablePeers: two interning nodes end up
// speaking fParcelI in both directions, with differing dense IDs mapped
// through the exchanged tables.
func TestInterningEngagesBetweenCapablePeers(t *testing.T) {
	fab := transport.NewFabric(2)
	rts := startInternPair(t, [2]transport.Transport{fab.Node(0), fab.Node(1)}, [2]bool{false, false})
	exerciseInternPair(t, rts)
	sent0, recv0 := rts[0].dist.internedSent.Load(), rts[0].dist.internedRecv.Load()
	sent1, recv1 := rts[1].dist.internedSent.Load(), rts[1].dist.internedRecv.Load()
	for _, rt := range rts {
		rt.Shutdown()
	}
	if sent0 == 0 || sent1 == 0 {
		t.Fatalf("interning never engaged: node0 sent %d, node1 sent %d interned frames", sent0, sent1)
	}
	if recv0 != sent1 || recv1 != sent0 {
		t.Fatalf("interned frame accounting skewed: sent %d/%d recv %d/%d", sent0, sent1, recv0, recv1)
	}
}

// TestMixedModeInterningCompat: an interning node interoperates with a
// string-only node (DisableActionInterning) — every frame between them
// stays in the plain string form and all calls succeed.
func TestMixedModeInterningCompat(t *testing.T) {
	fab := transport.NewFabric(2)
	rts := startInternPair(t, [2]transport.Transport{fab.Node(0), fab.Node(1)}, [2]bool{false, true})
	exerciseInternPair(t, rts)
	sent0 := rts[0].dist.internedSent.Load()
	sent1 := rts[1].dist.internedSent.Load()
	for _, rt := range rts {
		rt.Shutdown()
	}
	if sent0 != 0 || sent1 != 0 {
		t.Fatalf("interned frames crossed a mixed-mode pair: %d from node0, %d from node1", sent0, sent1)
	}
}

// TestMixedModeInterningCompatTCP is the mixed-mode contract over real
// TCP: the interning node's table rides the handshake hello, the
// string-only node ignores it, and both directions interoperate in the
// string wire form.
func TestMixedModeInterningCompatTCP(t *testing.T) {
	var tcps [2]*transport.TCP
	addrs := make([]string, 2)
	for i := range tcps {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr().String()
	}
	for _, tr := range tcps {
		tr.SetPeers(addrs)
	}
	rts := startInternPair(t, [2]transport.Transport{tcps[0], tcps[1]}, [2]bool{false, true})
	exerciseInternPair(t, rts)
	sent0 := rts[0].dist.internedSent.Load()
	sent1 := rts[1].dist.internedSent.Load()
	for _, rt := range rts {
		rt.Shutdown()
	}
	if sent0 != 0 || sent1 != 0 {
		t.Fatalf("interned frames crossed a mixed-mode TCP pair: %d/%d", sent0, sent1)
	}
}

// TestInterningTCPEngages: over TCP, capable peers converge on interned
// frames once the handshake hellos have crossed.
func TestInterningTCPEngages(t *testing.T) {
	var tcps [2]*transport.TCP
	addrs := make([]string, 2)
	for i := range tcps {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr().String()
	}
	for _, tr := range tcps {
		tr.SetPeers(addrs)
	}
	rts := startInternPair(t, [2]transport.Transport{tcps[0], tcps[1]}, [2]bool{false, false})
	exerciseInternPair(t, rts)
	// The first parcel in each direction may precede the peer's hello
	// (string fallback); by the end of three rounds interning must have
	// engaged somewhere.
	total := rts[0].dist.internedSent.Load() + rts[1].dist.internedSent.Load()
	for _, rt := range rts {
		rt.Shutdown()
	}
	if total == 0 {
		t.Fatal("interning never engaged over TCP")
	}
}

// TestLateRegisteredActionFallsBackToString: an action registered after
// the transport started sits outside the announced table prefix; parcels
// naming it are spelled out inside interned frames and still dispatch.
func TestLateRegisteredActionFallsBackToString(t *testing.T) {
	fab := transport.NewFabric(2)
	rts := startInternPair(t, [2]transport.Transport{fab.Node(0), fab.Node(1)}, [2]bool{false, false})
	for _, rt := range rts {
		rt.MustRegisterAction("intern.late", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
			return target.(int64) * 2, nil
		})
	}
	b := rts[1].NewDataAt(2, int64(21))
	// Warm the hello exchange with an interned-capable call first.
	if v, err := rts[0].CallFrom(0, b, "intern.echo", nil).Get(); err != nil || v.(int64) != 21 {
		t.Fatalf("warm call: %v %v", v, err)
	}
	v, err := rts[0].CallFrom(0, b, "intern.late", nil).Get()
	if err != nil || v.(int64) != 42 {
		t.Fatalf("late-action call: %v %v", v, err)
	}
	for _, rt := range rts {
		rt.Shutdown()
	}
}
