package core

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/balance"
)

// balancerState is the runtime side of the adaptive self-balancer: the
// arrival sampler fed from the parcel delivery path, the policy engine,
// the machine-wide load table assembled from local counters and peers'
// fLoad reports, and the loop that turns the engine's plans into
// rt.Migrate calls. It exists only when Config.BalanceInterval > 0 —
// a nil Runtime.bal is the entire cost of the feature when disabled
// (one branch on the delivery path, nothing anywhere else).
type balancerState struct {
	r       *Runtime
	cfg     balance.Config
	sampler *balance.Sampler
	eng     *balance.Engine

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// lastSteals holds each resident locality's cross-locality steal
	// counter at the previous tick; the delta discounts its score (a
	// stealing locality is advertising spare capacity). Loop-only.
	lastSteals map[int]uint64

	// remote is the last load score reported per non-resident locality
	// via fLoad frames; written by transport goroutines, read each tick.
	mu     sync.Mutex
	remote map[int]remoteLoad

	moves    atomic.Uint64 // migrations performed by the policy loop
	moveErrs atomic.Uint64 // migrations that failed (object moved/freed meanwhile)
	reports  atomic.Uint64 // fLoad frames accepted from peers
}

type remoteLoad struct {
	score float64
	at    int64 // unix nanos of the report, for debugging staleness
}

// loadEntry is one locality's score in an outgoing fLoad report.
type loadEntry struct {
	loc   uint32
	score float64
}

// newBalancerState assembles the balancer from the runtime's Balance*
// knobs. Called from New before initObservability so the px.balance.*
// gauges can bind to it; the loop starts separately (startBalancer)
// once the transport is live.
func newBalancerState(r *Runtime) *balancerState {
	cfg := balance.Config{
		Interval:     r.cfg.BalanceInterval,
		SampleEvery:  r.cfg.BalanceSampleEvery,
		HotThreshold: r.cfg.BalanceHotThreshold,
		Imbalance:    r.cfg.BalanceImbalance,
		MaxMoves:     r.cfg.BalanceMaxMoves,
		Cooldown:     r.cfg.BalanceCooldown,
	}.WithDefaults()
	return &balancerState{
		r:          r,
		cfg:        cfg,
		sampler:    balance.NewSampler(cfg.SampleEvery, cfg.MaxTracked),
		eng:        balance.NewEngine(cfg),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		lastSteals: make(map[int]uint64),
		remote:     make(map[int]remoteLoad),
	}
}

// startBalancer launches the policy loop; a no-op when balancing is off.
func (r *Runtime) startBalancer() {
	if r.bal != nil {
		go r.bal.loop()
	}
}

// stopBalancer signals the policy loop and, when wait is true, blocks
// until it has finished its current tick (including any in-flight
// migration, which rpc timeouts bound). Shutdown waits — the loop must
// not inject work after quiescence; Terminate only signals — a crash
// model does not linger.
func (r *Runtime) stopBalancer(wait bool) {
	b := r.bal
	if b == nil {
		return
	}
	b.stopOnce.Do(func() { close(b.stop) })
	if wait {
		<-b.done
	}
}

// coolBalance grants g a migration cooldown on this node's balancer, if
// any. Called wherever a migration lands an object here — the local
// commit path and the fMigrate install path — so a freshly placed
// object is not immediately re-judged by the receiver's policy loop.
func (r *Runtime) coolBalance(g agas.GID) {
	if b := r.bal; b != nil {
		b.eng.Cool(g)
	}
}

func (b *balancerState) loop() {
	defer close(b.done)
	t := time.NewTicker(b.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.tick()
		}
	}
}

// tick is one pass of the introspection loop: drain the arrival sample,
// fold each resident locality's counters into its smoothed score,
// gossip the scores, assemble the machine-wide load picture, and
// execute the engine's (bounded, hysteresis-guarded) plan.
func (b *balancerState) tick() {
	r := b.r
	hot := b.sampler.Drain()
	arrivals := make(map[int]float64, 8)
	for _, h := range hot {
		arrivals[h.Loc] += float64(h.Count)
	}

	width := r.Localities()
	var report []loadEntry
	for i := 0; i < width; i++ {
		l := r.loc(i)
		if l == nil {
			continue
		}
		// Score = sampled arrivals this tick + standing queue pressure
		// (total depth plus the deepest worker deque), discounted by the
		// tick's cross-locality steals: a locality that spent the tick
		// stealing has spare capacity regardless of what arrived.
		raw := arrivals[i] + float64(l.QueueLen()) + float64(maxDepth(l.DequeDepths()))
		stolen := l.Stolen()
		raw -= float64(stolen - b.lastSteals[i])
		b.lastSteals[i] = stolen
		if raw < 0 {
			raw = 0
		}
		score := b.eng.Observe(i, raw)
		report = append(report, loadEntry{loc: uint32(i), score: score})
	}

	d := r.dist
	if d != nil {
		b.broadcast(d, report)
	}
	moves := b.eng.Plan(b.buildLoads(width), hot)
	for _, m := range moves {
		// A failed move is routine, not a runtime error: the object may
		// have been freed or manually migrated between sampling and now.
		if err := r.Migrate(m.GID, m.To); err != nil {
			b.moveErrs.Add(1)
		} else {
			b.moves.Add(1)
		}
	}
}

func maxDepth(depths []int) int {
	m := 0
	for _, d := range depths {
		if d > m {
			m = d
		}
	}
	return m
}

// buildLoads assembles the machine-wide load picture: resident
// localities carry their freshly observed EWMA scores; localities
// hosted elsewhere carry the peer's last fLoad report (zero when the
// peer has never reported — an unknown is treated as idle, which is
// exactly right for a joiner that just announced an empty range).
// Eligibility is the membership gate: only localities hosted by live,
// non-departed, non-suspect nodes may receive objects.
func (b *balancerState) buildLoads(width int) []balance.Load {
	r := b.r
	d := r.dist
	now := time.Now()
	thr := suspectThreshold(d)

	var remote map[int]remoteLoad
	if d != nil {
		remote = make(map[int]remoteLoad, 8)
		b.mu.Lock()
		for k, v := range b.remote {
			remote[k] = v
		}
		b.mu.Unlock()
	}

	loads := make([]balance.Load, 0, width)
	for i := 0; i < width; i++ {
		if r.loc(i) != nil {
			loads = append(loads, balance.Load{Loc: i, Score: b.eng.Score(i), Eligible: true})
			continue
		}
		if d == nil {
			continue
		}
		n, ok := d.lmap.NodeOf(i)
		if !ok {
			continue
		}
		var score float64
		if rl, ok := remote[i]; ok {
			score = rl.score
		}
		loads = append(loads, balance.Load{Loc: i, Score: score, Eligible: nodeEligible(d, n, now, thr)})
	}
	return loads
}

// suspectThreshold returns the phi value above which a peer is too
// suspicious to receive migrated objects — the membership config's
// threshold when membership runs, its documented default otherwise.
func suspectThreshold(d *distState) float64 {
	if d != nil && d.mb != nil {
		return d.mb.cfg.SuspectThreshold
	}
	return 8
}

// nodeEligible reports whether node n may be targeted by a migration:
// alive in the locality map, not declared dead, not cleanly departed,
// and — when it participates in membership — below the suspicion
// threshold. A node we know nothing about (no peer state yet) is
// eligible: absence of evidence is how a fixed machine looks.
func nodeEligible(d *distState, n int, now time.Time, thr float64) bool {
	if n == d.node {
		return true
	}
	if !d.lmap.Alive(n) {
		return false
	}
	ps := d.peer(n)
	if ps == nil {
		return true
	}
	if ps.dead.Load() || ps.departed.Load() {
		return false
	}
	if ps.member.Load() {
		if det := ps.det.Load(); det != nil && det.Phi(now) >= thr {
			return false
		}
	}
	return true
}

// broadcast ships this node's per-locality scores to every reachable
// peer as one fLoad frame. Best-effort: a lost report means the peer
// plans one tick on stale data, which the hysteresis band absorbs.
func (b *balancerState) broadcast(d *distState, entries []loadEntry) {
	if len(entries) == 0 || len(entries) > math.MaxUint16 {
		return
	}
	frame := make([]byte, 3+12*len(entries))
	frame[0] = fLoad
	binary.LittleEndian.PutUint16(frame[1:3], uint16(len(entries)))
	off := 3
	for _, e := range entries {
		binary.LittleEndian.PutUint32(frame[off:], e.loc)
		binary.LittleEndian.PutUint64(frame[off+4:], math.Float64bits(e.score))
		off += 12
	}
	now := time.Now()
	thr := suspectThreshold(d)
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n == d.node || !nodeEligible(d, n, now, thr) {
			continue
		}
		_ = d.sendRetry(n, frame)
	}
}

// onLoad records a peer's fLoad report. Nodes without a balancer ignore
// the frames — the wire kind exists machine-wide, the policy is per-
// node. Malformed counts and non-finite scores are dropped: load
// reports are advisory, never worth an error.
func (d *distState) onLoad(from int, body []byte) {
	b := d.rt.bal
	if b == nil || len(body) < 2 {
		return
	}
	n := int(binary.LittleEndian.Uint16(body[:2]))
	if n == 0 || len(body) < 2+12*n {
		return
	}
	now := time.Now().UnixNano()
	b.mu.Lock()
	for i := 0; i < n; i++ {
		off := 2 + 12*i
		loc := int(binary.LittleEndian.Uint32(body[off:]))
		score := math.Float64frombits(binary.LittleEndian.Uint64(body[off+4:]))
		if math.IsNaN(score) || math.IsInf(score, 0) || score < 0 {
			continue
		}
		b.remote[loc] = remoteLoad{score: score, at: now}
	}
	b.mu.Unlock()
	b.reports.Add(1)
}
