package core

import (
	"testing"

	"repro/internal/parcel"
	"repro/internal/trace"
)

// TestTraceSamplingChainsSpans: with full sampling, a continuation chain
// produces post spans sharing one trace ID, ending in a trigger span at
// the future, with each hop parented by the previous one.
func TestTraceSamplingChainsSpans(t *testing.T) {
	rt := New(Config{Localities: 2, TraceSampleRate: 1})
	defer rt.Shutdown()
	rt.MustRegisterAction("obs.double", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return target.(int64) * 2, nil
	})
	obj := rt.NewDataAt(1, int64(21))
	v, err := rt.CallFrom(0, obj, "obs.double", nil).Get()
	if err != nil || v.(int64) != 42 {
		t.Fatalf("call: %v %v", v, err)
	}
	rt.Wait()

	spans := rt.Spans().Snapshot()
	if len(spans) == 0 {
		t.Fatal("full sampling recorded no spans")
	}
	// Group by trace and find the call's chain: a post for obs.double and
	// a trigger for the px.lco.set continuation, under one trace ID.
	byTrace := map[uint64][]trace.Span{}
	for _, sp := range spans {
		if sp.Trace != 0 {
			byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
		}
	}
	found := false
	for id, chain := range byTrace {
		var havePost, haveTrigger bool
		ids := map[uint64]bool{0: true}
		for _, sp := range chain {
			ids[sp.ID] = true
			if sp.Kind == trace.SpanPost && sp.Action == "obs.double" {
				havePost = true
			}
			if sp.Kind == trace.SpanTrigger && sp.Action == ActionLCOSet {
				haveTrigger = true
			}
		}
		if havePost && haveTrigger {
			found = true
			for _, sp := range chain {
				if !ids[sp.Parent] {
					t.Fatalf("trace %x: span %x has dangling parent %x", id, sp.ID, sp.Parent)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no trace chains obs.double post into a px.lco.set trigger: %+v", spans)
	}
	if rt.Metrics().Snapshot()["px.trace.sampled"] == 0 {
		t.Fatal("px.trace.sampled stayed 0 under full sampling")
	}
}

// TestTraceSamplingOffRecordsNothing: the default configuration mints no
// traces and records no spans.
func TestTraceSamplingOffRecordsNothing(t *testing.T) {
	rt := New(Config{Localities: 2})
	defer rt.Shutdown()
	obj := rt.NewDataAt(1, int64(1))
	rt.SendFrom(0, parcel.New(obj, ActionNop, nil))
	rt.Wait()
	if n := rt.Spans().Total(); n != 0 {
		t.Fatalf("%d spans recorded with sampling off", n)
	}
}

// TestTraceSampleEvery pins the rate→cadence derivation.
func TestTraceSampleEvery(t *testing.T) {
	for _, c := range []struct {
		rate  float64
		every uint64
	}{{0, 0}, {1, 1}, {2, 1}, {0.5, 2}, {0.25, 4}, {0.001, 1000}} {
		rt := New(Config{TraceSampleRate: c.rate})
		if rt.sampleEvery != c.every {
			t.Fatalf("rate %v: sampleEvery %d, want %d", c.rate, rt.sampleEvery, c.every)
		}
		rt.Shutdown()
	}
}

// TestMetricsRegistryMatchesRuntime: the px.* bridge reads the same
// counters the runtime accessors expose.
func TestMetricsRegistryMatchesRuntime(t *testing.T) {
	rt := New(Config{Localities: 2})
	defer rt.Shutdown()
	obj := rt.NewDataAt(1, int64(5))
	for i := 0; i < 10; i++ {
		if _, err := rt.CallFrom(0, obj, ActionNop, nil).Get(); err != nil {
			t.Fatal(err)
		}
	}
	rt.Wait()
	snap := rt.Metrics().Snapshot()
	if got, want := snap["px.parcels.sent"], float64(rt.SLOW().ParcelsSent.Value()); got != want {
		t.Fatalf("px.parcels.sent %v, runtime counter %v", got, want)
	}
	if got, want := snap["px.threads.spawned"], float64(rt.SLOW().ThreadsSpawned.Value()); got != want {
		t.Fatalf("px.threads.spawned %v, runtime counter %v", got, want)
	}
	if snap["px.parcels.sent"] == 0 || snap["px.threads.spawned"] == 0 {
		t.Fatal("counters stayed 0 after 10 calls")
	}
	ph, pm, _, _ := parcel.PoolStats()
	if snap["px.pool.parcel.hits"] > float64(ph) || snap["px.pool.parcel.misses"] > float64(pm) {
		t.Fatalf("pool metrics ahead of PoolStats: snap hits=%v misses=%v, now %d/%d",
			snap["px.pool.parcel.hits"], snap["px.pool.parcel.misses"], ph, pm)
	}
}
