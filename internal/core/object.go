package core

import (
	"fmt"
	"time"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// NewObjectAt installs v as a globally named object of the given kind on
// locality loc and returns its GID. loc must be resident on this node;
// objects on other nodes are created by those nodes and reached by parcel.
func (r *Runtime) NewObjectAt(loc int, kind agas.Kind, v any) agas.GID {
	r.checkResident(loc)
	g := r.agas.Alloc(loc, kind)
	r.loc(loc).Store().Put(g, v)
	return g
}

// NewDataAt installs a data object.
func (r *Runtime) NewDataAt(loc int, v any) agas.GID {
	return r.NewObjectAt(loc, agas.KindData, v)
}

// NewObjectAtWellKnown installs v under the deterministic well-known name
// (loc, kind, slot) — see agas.WellKnownGID — and returns it. Every node
// computes the same GID from the same coordinates, so services installed
// this way (one shard per locality, say) need no directory exchange or
// GID distribution step before clients can address them. loc must be
// resident on this node; each node installs the shards it hosts.
func (r *Runtime) NewObjectAtWellKnown(loc int, kind agas.Kind, slot int, v any) agas.GID {
	r.checkResident(loc)
	g := r.agas.AllocWellKnown(loc, kind, slot)
	r.loc(loc).Store().Put(g, v)
	return g
}

// NewFutureAt creates a future LCO homed at loc with a global name, so
// remote parcels can target it as a continuation.
func (r *Runtime) NewFutureAt(loc int) (agas.GID, *lco.Future) {
	f := lco.NewFuture()
	return r.NewObjectAt(loc, agas.KindLCO, f), f
}

// NewAndGateAt creates a named AndGate LCO at loc expecting n signals.
func (r *Runtime) NewAndGateAt(loc, n int) (agas.GID, *lco.AndGate) {
	g := lco.NewAndGate(n)
	return r.NewObjectAt(loc, agas.KindLCO, g), g
}

// NewReduceAt creates a named Reduce LCO at loc.
func (r *Runtime) NewReduceAt(loc, n int, init any, op func(acc, v any) any) (agas.GID, *lco.Reduce) {
	red := lco.NewReduce(n, init, op)
	return r.NewObjectAt(loc, agas.KindLCO, red), red
}

// LocalObject fetches an object from loc's store without any routing; it is
// an instrumentation/test hook, not a model operation.
func (r *Runtime) LocalObject(loc int, g agas.GID) (any, bool) {
	r.checkLoc(loc)
	l := r.loc(loc)
	if l == nil {
		return nil, false
	}
	return l.Store().Get(g)
}

// FreeObject removes g from the machine entirely. Names homed on other
// nodes are left to their owning node (freeing is not routed).
func (r *Runtime) FreeObject(g agas.GID) {
	owner, err := r.agas.Owner(g)
	if err != nil {
		return
	}
	l := r.loc(owner)
	if l == nil {
		return
	}
	l.Store().Delete(g)
	r.agas.Free(g)
}

// Migrate moves the object named g to locality to — on this node or any
// other — leaving its global name valid. The move is live: the object is
// first quiesced (the migration fence waits for any running action and
// parks later arrivals with their work units still charged, so Wait counts
// them), then the payload travels — wire-encoded via the parcel value
// codec when the destination is on another node — the home directory
// commits the new owner under a bumped generation, and a forwarding
// pointer is left behind so in-flight parcels chase at most one hop.
// Senders with stale translations learn the new owner from a "moved"
// verdict piggybacked on their next delivery acknowledgement.
//
// Migration is initiated on the node currently owning the object, and for
// a cross-node destination the payload must be encodable by the parcel
// value codec. An action may migrate other objects, but must not migrate
// its own target (the fence would wait on the caller), and two actions
// mutually migrating each other's targets deadlock the same way.
func (r *Runtime) Migrate(g agas.GID, to int) error {
	r.checkLoc(to)
	if g.Kind == agas.KindHardware {
		return fmt.Errorf("core: migrate of %v: hardware names are immovable", g)
	}
	r.lockMigration(g)
	defer r.unlockMigration(g)
	// The move itself is outstanding work: Wait must not declare the
	// machine quiescent while a payload is in transit between stores.
	r.addWork()
	defer r.doneWork()

	from, gen, err := r.agas.Locate(g)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if !r.Resident(from) {
		return fmt.Errorf("core: migrate of %v: owned by node %d; migration is initiated on the owning node",
			g, r.nodeOf(from))
	}

	// Quiesce: running actions on g drain, later arrivals park until the
	// move commits, then re-route toward the new owner. A park does not
	// consume the MaxHops forwarding budget: it is the migration holding
	// the parcel, not a mis-route, and each re-park requires another
	// in-flight migration, which bounds the cycle on its own.
	r.fences.close(g)
	err = r.migrateLocked(g, from, to, gen+1)
	for _, pk := range r.fences.open(g) {
		if r.ring != nil {
			r.ring.Emitf(trace.KindMigration, pk.loc, "unpark %s", pk.p)
		}
		r.route(pk.loc, pk.p)
	}
	return err
}

// migrateLocked performs the fenced move of g from resident locality
// `from` to locality `to` at generation newGen: payload transfer, then
// directory commit, then local routing state (imports, forwarding
// pointer, cache repoint).
func (r *Runtime) migrateLocked(g agas.GID, from, to int, newGen uint64) error {
	v, ok := r.loc(from).Store().Take(g)
	if !ok {
		return fmt.Errorf("core: migrate of %v: not resident at L%d", g, from)
	}
	destNode := r.nodeOf(to)
	if destNode == r.NodeID() {
		// Model the data movement cost on the intra-node network.
		if lat := r.net.Latency(from, to, approxSize(v)); lat > 0 {
			time.Sleep(lat)
		}
		r.loc(to).Store().Put(g, v)
	} else {
		payload, err := parcel.EncodeAny(v)
		if err != nil {
			r.loc(from).Store().Put(g, v)
			return fmt.Errorf("core: migrate of %v: payload not wire-encodable: %w", g, err)
		}
		delivered, err := r.dist.migrateTo(destNode, g, to, newGen, payload)
		if err != nil && !delivered {
			// The peer provably does not have the object: reinstall.
			r.loc(from).Store().Put(g, v)
			return err
		}
		if err != nil {
			// Ambiguous (unconfirmed push): the peer may hold the object, so
			// reinstalling could duplicate it. Commit forward and record —
			// the same stance the transport takes on an unreachable acker.
			r.recordError(fmt.Errorf("core: migrate of %v: %w", g, err))
		}
	}
	// Commit the new owner in the home directory, wherever it lives. On
	// commit failure the object HAS still moved — only the directory
	// lags (unreachable home node, or the name was freed mid-move) — so
	// the routing state below is installed regardless: forwarding
	// pointers and repointed caches keep the name resolvable either way.
	var commitErr error
	if homeNode := r.nodeOf(int(g.Home)); homeNode == r.NodeID() {
		commitErr = r.agas.CommitMigration(g, to, newGen)
	} else if err := r.dist.commitDir(homeNode, g, to, newGen); err != nil {
		r.recordError(fmt.Errorf("core: migrate of %v: directory commit: %w", g, err))
	}
	r.agas.DropImport(g)
	if destNode == r.NodeID() {
		if !r.Resident(int(g.Home)) {
			r.agas.SetImport(g, to, newGen)
		}
	} else if !r.Resident(int(g.Home)) {
		r.agas.SetForward(g, to, newGen)
	}
	r.agas.Repoint(g, to, newGen)
	if r.ring != nil {
		r.ring.Emitf(trace.KindMigration, from, "%v -> L%d gen %d", g, to, newGen)
	}
	r.slow.Migrations.Inc()
	// A move that stayed on this node lands under a local balancer
	// cooldown, exactly as a cross-node arrival does on its receiver:
	// whoever placed the object — policy or application — gets a few
	// ticks of deference before the balancer may overrule it.
	if destNode == r.NodeID() {
		r.coolBalance(g)
	}
	return commitErr
}

// nodeOf reports which node hosts locality loc (0 on a single-process
// machine, -1 when the locality is beyond the known map).
func (r *Runtime) nodeOf(loc int) int {
	if r.dist == nil {
		return 0
	}
	if n, known := r.dist.lmap.NodeOf(loc); known {
		return n
	}
	return -1
}

// lockMigration claims the per-object migration slot for g, waiting for
// any in-flight move of the same object to finish first.
func (r *Runtime) lockMigration(g agas.GID) {
	for {
		r.migMu.Lock()
		ch, busy := r.migrations[g]
		if !busy {
			r.migrations[g] = make(chan struct{})
			r.migMu.Unlock()
			return
		}
		r.migMu.Unlock()
		<-ch
	}
}

// unlockMigration releases g's migration slot and wakes any waiter.
func (r *Runtime) unlockMigration(g agas.GID) {
	r.migMu.Lock()
	ch := r.migrations[g]
	delete(r.migrations, g)
	r.migMu.Unlock()
	close(ch)
}

// approxSize estimates an object's wire size for migration cost modelling.
func approxSize(v any) int {
	switch x := v.(type) {
	case []byte:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case string:
		return len(x)
	default:
		return 64
	}
}

// CallFrom invokes action on dest from locality src, returning a future
// homed at src that resolves with the action's result. This is the
// split-phase transaction at the heart of the model: the caller does not
// block; the parcel carries a continuation naming the future.
func (r *Runtime) CallFrom(src int, dest agas.GID, action string, args []byte) *lco.Future {
	fgid, fut := r.NewFutureAt(src)
	start := now()
	fut.OnReady(func(any, error) {
		r.slow.Latency.ObserveDuration(now().Sub(start))
		// One-shot future: release its name once consumed.
		r.FreeObject(fgid)
	})
	r.trackRemoteFuture(fgid, fut.OnReady, dest)
	p := parcel.Acquire(dest, action, args, parcel.Continuation{Target: fgid, Action: ActionLCOSet})
	r.SendFrom(src, p)
	return fut
}

// Broadcast sends the action to every locality's hardware object — used by
// runtime services (echo invalidation waves, percolation prestaging).
func (r *Runtime) Broadcast(src int, action string, args []byte) *lco.AndGate {
	n := r.Localities()
	ggid, gate := r.NewAndGateAt(src, n)
	for i := 0; i < n; i++ {
		p := parcel.Acquire(r.LocalityGID(i), action, args, parcel.Continuation{Target: ggid, Action: ActionLCOSignal})
		r.SendFrom(src, p)
	}
	return gate
}
