package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// NewObjectAt installs v as a globally named object of the given kind on
// locality loc and returns its GID. loc must be resident on this node;
// objects on other nodes are created by those nodes and reached by parcel.
func (r *Runtime) NewObjectAt(loc int, kind agas.Kind, v any) agas.GID {
	r.checkResident(loc)
	g := r.agas.Alloc(loc, kind)
	r.locs[loc].Store().Put(g, v)
	return g
}

// NewDataAt installs a data object.
func (r *Runtime) NewDataAt(loc int, v any) agas.GID {
	return r.NewObjectAt(loc, agas.KindData, v)
}

// NewFutureAt creates a future LCO homed at loc with a global name, so
// remote parcels can target it as a continuation.
func (r *Runtime) NewFutureAt(loc int) (agas.GID, *lco.Future) {
	f := lco.NewFuture()
	return r.NewObjectAt(loc, agas.KindLCO, f), f
}

// NewAndGateAt creates a named AndGate LCO at loc expecting n signals.
func (r *Runtime) NewAndGateAt(loc, n int) (agas.GID, *lco.AndGate) {
	g := lco.NewAndGate(n)
	return r.NewObjectAt(loc, agas.KindLCO, g), g
}

// NewReduceAt creates a named Reduce LCO at loc.
func (r *Runtime) NewReduceAt(loc, n int, init any, op func(acc, v any) any) (agas.GID, *lco.Reduce) {
	red := lco.NewReduce(n, init, op)
	return r.NewObjectAt(loc, agas.KindLCO, red), red
}

// LocalObject fetches an object from loc's store without any routing; it is
// an instrumentation/test hook, not a model operation.
func (r *Runtime) LocalObject(loc int, g agas.GID) (any, bool) {
	r.checkLoc(loc)
	if r.locs[loc] == nil {
		return nil, false
	}
	return r.locs[loc].Store().Get(g)
}

// FreeObject removes g from the machine entirely. Names homed on other
// nodes are left to their owning node (freeing is not routed).
func (r *Runtime) FreeObject(g agas.GID) {
	owner, err := r.agas.Owner(g)
	if err != nil {
		return
	}
	if r.locs[owner] == nil {
		return
	}
	r.locs[owner].Store().Delete(g)
	r.agas.Free(g)
}

var migrateMu sync.Mutex

// Migrate moves the object named g to locality to, leaving its name valid.
// In-flight parcels racing the move are repaired by forwarding. The
// directory is updated before the object lands so the inconsistency window
// resolves toward the new owner.
func (r *Runtime) Migrate(g agas.GID, to int) error {
	r.checkResident(to)
	migrateMu.Lock()
	defer migrateMu.Unlock()
	from, err := r.agas.Owner(g)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if !r.Resident(from) {
		return fmt.Errorf("core: migrate of %v: cross-node migration is not supported", g)
	}
	if err := r.agas.Migrate(g, to); err != nil {
		return err
	}
	v, ok := r.locs[from].Store().Take(g)
	if !ok {
		// Roll back: the object was never resident (or already moving).
		r.agas.Migrate(g, from)
		return fmt.Errorf("core: migrate of %v: not resident at L%d", g, from)
	}
	// Model the data movement cost.
	if lat := r.net.Latency(from, to, approxSize(v)); lat > 0 {
		time.Sleep(lat)
	}
	r.locs[to].Store().Put(g, v)
	r.slow.Migrations.Inc()
	return nil
}

// approxSize estimates an object's wire size for migration cost modelling.
func approxSize(v any) int {
	switch x := v.(type) {
	case []byte:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case string:
		return len(x)
	default:
		return 64
	}
}

// CallFrom invokes action on dest from locality src, returning a future
// homed at src that resolves with the action's result. This is the
// split-phase transaction at the heart of the model: the caller does not
// block; the parcel carries a continuation naming the future.
func (r *Runtime) CallFrom(src int, dest agas.GID, action string, args []byte) *lco.Future {
	fgid, fut := r.NewFutureAt(src)
	start := now()
	fut.OnReady(func(any, error) {
		r.slow.Latency.ObserveDuration(now().Sub(start))
		// One-shot future: release its name once consumed.
		r.FreeObject(fgid)
	})
	p := parcel.New(dest, action, args, parcel.Continuation{Target: fgid, Action: ActionLCOSet})
	r.SendFrom(src, p)
	return fut
}

// Broadcast sends the action to every locality's hardware object — used by
// runtime services (echo invalidation waves, percolation prestaging).
func (r *Runtime) Broadcast(src int, action string, args []byte) *lco.AndGate {
	n := r.Localities()
	ggid, gate := r.NewAndGateAt(src, n)
	for i := 0; i < n; i++ {
		p := parcel.New(r.hwGID[i], action, args, parcel.Continuation{Target: ggid, Action: ActionLCOSignal})
		r.SendFrom(src, p)
	}
	return gate
}
