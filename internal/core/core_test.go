package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/locality"
	"repro/internal/network"
	"repro/internal/parcel"
)

func newTestRuntime(t *testing.T, locs int) *Runtime {
	t.Helper()
	r := New(Config{Localities: locs, WorkersPerLocality: 4})
	t.Cleanup(r.Shutdown)
	return r
}

func TestSpawnRunsOnRequestedLocality(t *testing.T) {
	r := newTestRuntime(t, 4)
	var got atomic.Int32
	r.Spawn(2, func(ctx *Context) { got.Store(int32(ctx.Locality())) })
	r.Wait()
	if got.Load() != 2 {
		t.Fatalf("ran on locality %d, want 2", got.Load())
	}
}

func TestWaitQuiescesNestedSpawns(t *testing.T) {
	r := newTestRuntime(t, 2)
	var n atomic.Int32
	var rec func(ctx *Context, depth int)
	rec = func(ctx *Context, depth int) {
		n.Add(1)
		if depth == 0 {
			return
		}
		for i := 0; i < 2; i++ {
			ctx.SpawnAt((ctx.Locality()+i)%2, func(c *Context) { rec(c, depth-1) })
		}
	}
	r.Spawn(0, func(ctx *Context) { rec(ctx, 5) })
	r.Wait()
	if n.Load() != 63 { // 2^6 - 1 nodes of a depth-5 binary spawn tree
		t.Fatalf("ran %d threads, want 63", n.Load())
	}
}

func TestParcelInvokesActionOnTarget(t *testing.T) {
	r := newTestRuntime(t, 2)
	type counter struct{ v atomic.Int64 }
	c := &counter{}
	gid := r.NewDataAt(1, c)
	r.MustRegisterAction("test.add", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		target.(*counter).v.Add(args.Int64())
		return nil, args.Err()
	})
	r.Spawn(0, func(ctx *Context) {
		ctx.Send(parcel.New(gid, "test.add", parcel.NewArgs().Int64(5).Encode()))
		ctx.Send(parcel.New(gid, "test.add", parcel.NewArgs().Int64(7).Encode()))
	})
	r.Wait()
	if c.v.Load() != 12 {
		t.Fatalf("counter = %d, want 12", c.v.Load())
	}
}

func TestCallReturnsResultThroughContinuation(t *testing.T) {
	r := newTestRuntime(t, 3)
	data := r.NewDataAt(2, []float64{1, 2, 3, 4})
	r.MustRegisterAction("test.sum", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		var s float64
		for _, v := range target.([]float64) {
			s += v
		}
		return s, nil
	})
	var got atomic.Value
	r.Spawn(0, func(ctx *Context) {
		f := ctx.Call(data, "test.sum", nil)
		v, err := ctx.Await(f)
		if err != nil {
			t.Errorf("call failed: %v", err)
			return
		}
		got.Store(v)
	})
	r.Wait()
	if got.Load().(float64) != 10 {
		t.Fatalf("sum = %v, want 10", got.Load())
	}
}

func TestCallChainMigratesControl(t *testing.T) {
	// A -> B -> C continuation chain: the result of stage1 at L1 feeds
	// stage2 at L2, whose result lands in a future at L0. Control migrates
	// without ever returning to L0 in between.
	r := newTestRuntime(t, 3)
	r.MustRegisterAction("test.double", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		v, err := parcel.DecodeAny(raw)
		if err != nil {
			return nil, err
		}
		return v.(int64) * 2, nil
	})
	obj1 := r.NewDataAt(1, "stage1")
	obj2 := r.NewDataAt(2, "stage2")
	fgid, fut := r.NewFutureAt(0)
	r.Spawn(0, func(ctx *Context) {
		seed, _ := parcel.EncodeAny(int64(5))
		p := parcel.New(obj1, "test.double", parcel.NewArgs().Bytes(seed).Encode(),
			parcel.Continuation{Target: obj2, Action: "test.double"},
			parcel.Continuation{Target: fgid, Action: ActionLCOSet},
		)
		ctx.Send(p)
	})
	r.Wait()
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 20 {
		t.Fatalf("chain result = %v, want 20", v)
	}
}

func TestActionErrorPropagatesToCaller(t *testing.T) {
	r := newTestRuntime(t, 2)
	obj := r.NewDataAt(1, struct{}{})
	r.MustRegisterAction("test.fail", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	var got atomic.Value
	r.Spawn(0, func(ctx *Context) {
		f := ctx.Call(obj, "test.fail", nil)
		_, err := ctx.Await(f)
		got.Store(err)
	})
	r.Wait()
	err, _ := got.Load().(error)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("error = %v", err)
	}
}

func TestUnknownActionRecordsError(t *testing.T) {
	r := newTestRuntime(t, 2)
	obj := r.NewDataAt(1, struct{}{})
	r.Spawn(0, func(ctx *Context) {
		ctx.Send(parcel.New(obj, "no.such.action", nil))
	})
	r.Wait()
	errs := r.Errors()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown action") {
		t.Fatalf("errors = %v", errs)
	}
}

func TestDuplicateActionRejected(t *testing.T) {
	r := newTestRuntime(t, 1)
	fn := func(ctx *Context, target any, args *parcel.Reader) (any, error) { return nil, nil }
	if err := r.RegisterAction("dup", fn); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterAction("dup", fn); err == nil {
		t.Fatal("duplicate action registered")
	}
	if err := r.RegisterAction("", fn); err == nil {
		t.Fatal("empty action name registered")
	}
}

func TestMigrationWithForwarding(t *testing.T) {
	r := newTestRuntime(t, 4)
	type box struct{ v atomic.Int64 }
	b := &box{}
	gid := r.NewDataAt(0, b)
	r.MustRegisterAction("test.inc", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		target.(*box).v.Add(1)
		return nil, nil
	})
	// Warm locality 3's translation cache so it goes stale after migration.
	r.Spawn(3, func(ctx *Context) {
		ctx.Send(parcel.New(gid, "test.inc", nil))
	})
	r.Wait()
	if err := r.Migrate(gid, 2); err != nil {
		t.Fatal(err)
	}
	owner, _ := r.AGAS().Owner(gid)
	if owner != 2 {
		t.Fatalf("owner = %d, want 2", owner)
	}
	// Parcel from 3 uses the stale cache, lands at 0, forwards to 2.
	r.Spawn(3, func(ctx *Context) {
		ctx.Send(parcel.New(gid, "test.inc", nil))
	})
	r.Wait()
	if b.v.Load() != 2 {
		t.Fatalf("box = %d, want 2 (parcel lost in migration)", b.v.Load())
	}
	if r.SLOW().Migrations.Value() != 1 {
		t.Fatalf("migrations = %d", r.SLOW().Migrations.Value())
	}
	if got, _ := r.LocalObject(2, gid); got != b {
		t.Fatal("object not resident at new owner")
	}
}

func TestMigrateNotResident(t *testing.T) {
	r := newTestRuntime(t, 2)
	g := r.AGAS().Alloc(0, agas.KindData) // name without object
	if err := r.Migrate(g, 1); err == nil {
		t.Fatal("migrating non-resident object succeeded")
	}
	// Directory rolled back.
	owner, _ := r.AGAS().Owner(g)
	if owner != 0 {
		t.Fatalf("owner after failed migrate = %d", owner)
	}
}

func TestMigrateToSelfNoop(t *testing.T) {
	r := newTestRuntime(t, 2)
	gid := r.NewDataAt(1, "x")
	if err := r.Migrate(gid, 1); err != nil {
		t.Fatal(err)
	}
	if r.SLOW().Migrations.Value() != 0 {
		t.Fatal("self-migration counted")
	}
}

func TestAwaitWithoutSuspensionWhenReady(t *testing.T) {
	r := newTestRuntime(t, 1)
	fut := lco.NewFuture()
	fut.Set(1)
	r.Spawn(0, func(ctx *Context) {
		ctx.Await(fut)
	})
	r.Wait()
	if r.SLOW().Suspensions.Value() != 0 {
		t.Fatal("ready future caused suspension")
	}
}

func TestAwaitSuspendsAndResumes(t *testing.T) {
	// More awaiting threads than worker slots: only suspension-released
	// slots let the resolver run.
	r := New(Config{Localities: 1, WorkersPerLocality: 2})
	defer r.Shutdown()
	fut := lco.NewFuture()
	var resumed atomic.Int32
	for i := 0; i < 4; i++ {
		r.Spawn(0, func(ctx *Context) {
			ctx.Await(fut)
			resumed.Add(1)
		})
	}
	r.Spawn(0, func(ctx *Context) { fut.Set("go") })
	r.Wait()
	if resumed.Load() != 4 {
		t.Fatalf("resumed %d, want 4", resumed.Load())
	}
	if r.SLOW().Suspensions.Value() == 0 {
		t.Fatal("no suspensions recorded")
	}
}

func TestLocalParcelBypassesNetwork(t *testing.T) {
	r := newTestRuntime(t, 2)
	obj := r.NewDataAt(0, struct{}{})
	r.Spawn(0, func(ctx *Context) {
		ctx.Send(parcel.New(obj, ActionNop, nil))
	})
	r.Wait()
	if r.SLOW().ParcelsLocal.Value() != 1 {
		t.Fatalf("local parcels = %d", r.SLOW().ParcelsLocal.Value())
	}
	if r.SLOW().ParcelsSent.Value() != 0 {
		t.Fatalf("remote parcels = %d", r.SLOW().ParcelsSent.Value())
	}
}

func TestSerializationRoundTripsParcels(t *testing.T) {
	r := newTestRuntime(t, 2) // serialization on by default
	var got atomic.Value
	obj := r.NewDataAt(1, struct{}{})
	r.MustRegisterAction("test.echoargs", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		got.Store(args.String())
		return nil, args.Err()
	})
	r.Spawn(0, func(ctx *Context) {
		ctx.Send(parcel.New(obj, "test.echoargs", parcel.NewArgs().String("through the wire").Encode()))
	})
	r.Wait()
	if got.Load().(string) != "through the wire" {
		t.Fatalf("args = %v", got.Load())
	}
}

func TestNetworkLatencyIsApplied(t *testing.T) {
	slow := network.NewCrossbar(2, network.Params{
		HopLatency: 0, InjectionOverhead: 3 * time.Millisecond,
	})
	r := New(Config{Localities: 2, Net: slow})
	defer r.Shutdown()
	obj := r.NewDataAt(1, struct{}{})
	start := time.Now()
	var elapsed atomic.Int64
	r.Spawn(0, func(ctx *Context) {
		f := ctx.Call(obj, ActionNop, nil)
		ctx.Await(f)
		elapsed.Store(int64(time.Since(start)))
	})
	r.Wait()
	// Round trip: request + continuation = at least 2 injections.
	if time.Duration(elapsed.Load()) < 6*time.Millisecond {
		t.Fatalf("round trip %v, want >= 6ms", time.Duration(elapsed.Load()))
	}
}

func TestBroadcastReachesAllLocalities(t *testing.T) {
	r := newTestRuntime(t, 5)
	var hits atomic.Int32
	r.MustRegisterAction("test.mark", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		if _, ok := target.(*locality.Locality); !ok {
			return nil, fmt.Errorf("broadcast target is %T", target)
		}
		hits.Add(1)
		return nil, nil
	})
	var fired atomic.Bool
	r.Spawn(0, func(ctx *Context) {
		gate := r.Broadcast(0, "test.mark", nil)
		ctx.Runtime() // keep ctx used
		gate.OnFire(func() { fired.Store(true) })
	})
	r.Wait()
	if hits.Load() != 5 {
		t.Fatalf("broadcast hit %d localities, want 5", hits.Load())
	}
	if !fired.Load() {
		t.Fatal("broadcast gate never fired")
	}
}

func TestHardwareNamesBound(t *testing.T) {
	r := newTestRuntime(t, 3)
	g, err := r.AGAS().Namespace().Lookup("/hw/locality/2")
	if err != nil {
		t.Fatal(err)
	}
	if g != r.LocalityGID(2) {
		t.Fatal("namespace binding mismatch")
	}
	if g.Kind != agas.KindHardware {
		t.Fatalf("kind = %v", g.Kind)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	r := New(Config{Localities: 2})
	r.Spawn(0, func(ctx *Context) {})
	r.Shutdown()
	r.Shutdown()
}

func TestCallFreesFutureName(t *testing.T) {
	r := newTestRuntime(t, 2)
	obj := r.NewDataAt(1, struct{}{})
	var futGone atomic.Bool
	r.Spawn(0, func(ctx *Context) {
		f := ctx.Call(obj, ActionNop, nil)
		ctx.Await(f)
	})
	r.Wait()
	// After completion, no LCO futures should linger at L0 beyond the
	// hardware object.
	futGone.Store(r.Locality(0).Store().Len() == 1)
	if !futGone.Load() {
		t.Fatalf("L0 store has %d objects, want 1 (hw only)", r.Locality(0).Store().Len())
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	r := New(Config{Localities: 4, WorkersPerLocality: 8})
	defer r.Shutdown()
	r.MustRegisterAction("test.id", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return args.Int64(), args.Err()
	})
	objs := make([]agas.GID, 4)
	for i := range objs {
		objs[i] = r.NewDataAt(i, struct{}{})
	}
	var sum atomic.Int64
	var wg sync.WaitGroup
	const n = 400
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		r.Spawn(i%4, func(ctx *Context) {
			defer wg.Done()
			f := ctx.Call(objs[(i+1)%4], "test.id", parcel.NewArgs().Int64(int64(i)).Encode())
			v, err := ctx.Await(f)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			sum.Add(v.(int64))
		})
	}
	wg.Wait()
	r.Wait()
	if sum.Load() != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), n*(n-1)/2)
	}
}
