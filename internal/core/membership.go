package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/transport"
)

// MembershipConfig tunes elastic membership and failure detection. The
// subsystem is on by default whenever the transport supports it (it
// implements transport.MemberTransport, i.e. the machine can grow): each
// node beats every HeartbeatInterval, feeds peers' beats into per-peer
// phi-accrual detectors, and declares a peer dead when its accrued
// suspicion crosses SuspectThreshold AND it has been silent for at least
// DeadAfter — the hard floor rides out scheduler stalls that pure phi
// would misread on loaded CI machines.
type MembershipConfig struct {
	// Disable turns membership off even on a capable transport: the node
	// neither beats nor monitors, and announces no membership support in
	// its handshake hello (peers then treat it as a fixed, unmonitored
	// member — the degraded old-protocol mode).
	Disable bool
	// HeartbeatInterval is the beat period (default 250ms).
	HeartbeatInterval time.Duration
	// SuspectThreshold is the phi value at which a peer becomes deathly
	// suspect (default 8: odds of a false positive one in 10^8 under the
	// observed arrival distribution).
	SuspectThreshold float64
	// DeadAfter is the minimum silence before a suspect peer may be
	// declared dead (default 3s, floored at 4x HeartbeatInterval).
	DeadAfter time.Duration
}

// withDefaults fills zero fields with production defaults.
func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = 8
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if min := 4 * c.HeartbeatInterval; c.DeadAfter < min {
		c.DeadAfter = min
	}
	return c
}

// IsNodeLost reports whether err means a remote node died under an
// operation. It matches both the typed agas.ErrNodeLost and its message
// carried across the wire inside a remote failure string.
func IsNodeLost(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, agas.ErrNodeLost) {
		return true
	}
	return strings.Contains(err.Error(), agas.ErrNodeLost.Error())
}

// peerState is this node's per-peer wire accounting and liveness record.
// The parcel counters and the outstanding (sent-but-unacked) count used
// to be machine-global; membership needs them per lane so a death can
// release exactly the work units charged to the corpse and quiescence can
// sum live lanes only.
type peerState struct {
	sent     atomic.Int64 // parcels sent to this peer
	recv     atomic.Int64 // parcels received from this peer
	dead     atomic.Bool  // declared dead (written under mu)
	member   atomic.Bool  // peer announced membership support (beats expected)
	departed atomic.Bool  // peer said goodbye: clean shutdown, not a death
	traced   atomic.Bool  // peer accepts trace-context trailers
	det      atomic.Pointer[transport.PhiDetector]

	// lastFrame is the wall-clock nanosecond of the last frame of ANY kind
	// received from this peer, across every transport lane. The death check
	// consults it alongside the beat detector: on a sharded transport the
	// beat rides lane 0, and a peer whose lane-0 stream is wedged behind a
	// reconnect is not dead while its parcel lanes are demonstrably alive —
	// any-lane traffic vetoes the silence verdict.
	lastFrame atomic.Int64

	mu          sync.Mutex
	outstanding int // parcels sent, not yet acked: work units held open
}

// detector returns the peer's phi detector, creating it on first use.
func (ps *peerState) detector() *transport.PhiDetector {
	if det := ps.det.Load(); det != nil {
		return det
	}
	det := transport.NewPhiDetector()
	if ps.det.CompareAndSwap(nil, det) {
		return det
	}
	return ps.det.Load()
}

// peer returns the state for node n, or nil if none exists yet.
func (d *distState) peer(n int) *peerState {
	tab := *d.peerTab.Load()
	if n < 0 || n >= len(tab) {
		return nil
	}
	return tab[n]
}

// ensurePeer returns the state for node n, growing the table copy-on-
// write if needed. Returns nil only for insane IDs.
func (d *distState) ensurePeer(n int) *peerState {
	if ps := d.peer(n); ps != nil {
		return ps
	}
	if n < 0 || n >= transport.MaxJoinNodes {
		return nil
	}
	d.growMu.Lock()
	defer d.growMu.Unlock()
	old := *d.peerTab.Load()
	if n < len(old) {
		return old[n]
	}
	tab := make([]*peerState, n+1)
	copy(tab, old)
	for i := len(old); i <= n; i++ {
		tab[i] = &peerState{}
	}
	d.peerTab.Store(&tab)
	return tab[n]
}

// peerDead reports whether node n has been declared dead.
func (d *distState) peerDead(n int) bool {
	ps := d.peer(n)
	return ps != nil && ps.dead.Load()
}

// memberState runs this node's membership protocol: the beat loop, the
// per-peer phi checks, death declaration with its cleanup fan-out, and
// join admission.
type memberState struct {
	d        *distState
	cfg      MembershipConfig
	selfAddr string // this node's dial address, announced in the hello

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	excomm   atomic.Bool // this node itself was declared dead by a peer

	joinMu sync.Mutex // serializes join admissions

	deaths    atomic.Uint64
	joins     atomic.Uint64
	rehomes   atomic.Uint64 // localities adopted off dead nodes, machine-wide view
	released  atomic.Uint64 // work units released by deaths
	beatsSent atomic.Uint64
	beatsRecv atomic.Uint64
}

func newMemberState(d *distState, cfg MembershipConfig, selfAddr string) *memberState {
	return &memberState{
		d:        d,
		cfg:      cfg.withDefaults(),
		selfAddr: selfAddr,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the membership loop: beat, then check, every interval.
func (m *memberState) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			if m.excomm.Load() {
				return
			}
			m.beat()
			m.check(now)
		}
	}
}

// stopLoop halts the membership loop and waits for it to exit.
func (m *memberState) stopLoop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// beat sends one heartbeat to every live peer in the map. Beats carry
// the sender's membership fingerprint so drift is observable; they ride
// the same frame service as parcels and are subject to the same armed
// kill/partition faults, which is exactly how a crashed node goes silent.
//
// Beats are deliberately NOT gated on the peer having announced
// membership: the transport dials lazily, hellos ride the connection
// handshake, and on an otherwise idle machine the first beat is what
// forces the dial that exchanges them. A membership-disabled peer
// absorbs the frame harmlessly (its frame handler understands fBeat; it
// just runs no detector loop of its own).
func (m *memberState) beat() {
	d := m.d
	frame := encodeBeat(d.lmap.Fingerprint())
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n == d.node {
			continue
		}
		if ps := d.peer(n); ps != nil && (ps.dead.Load() || ps.departed.Load()) {
			continue
		}
		if d.sendRetry(n, frame) == nil {
			m.beatsSent.Add(1)
		}
	}
}

// check polls every monitored peer's detector and declares deaths. A peer
// is only ever declared dead on positive evidence of prior life: fewer
// than two beats observed means no interval history, so the detector
// abstains and the peer stays in the joining/benefit-of-the-doubt state.
func (m *memberState) check(now time.Time) {
	d := m.d
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n == d.node {
			continue
		}
		ps := d.peer(n)
		if ps == nil || ps.dead.Load() || ps.departed.Load() || !ps.member.Load() {
			continue
		}
		det := ps.det.Load()
		if det == nil || det.Samples() < 2 {
			continue
		}
		silence := now.Sub(det.LastHeartbeat())
		if silence < m.cfg.DeadAfter {
			continue
		}
		// Silence must hold across every lane, not just the beat stream:
		// a peer whose heartbeats are stuck behind a lane-0 reconnect but
		// whose parcel lanes still deliver is alive.
		if last := ps.lastFrame.Load(); last != 0 && now.Sub(time.Unix(0, last)) < m.cfg.DeadAfter {
			continue
		}
		if det.Phi(now) < m.cfg.SuspectThreshold {
			continue
		}
		m.declareDead(n, fmt.Sprintf("silent %v, phi %.1f", silence.Round(time.Millisecond), det.Phi(now)))
	}
}

// declareDead transitions peer n to dead and runs the cleanup fan-out:
// release the work units charged to the corpse (so a Mattern Wait in
// progress unblocks), abandon unacked LCO trigger frames addressed to it,
// re-home its localities in the membership map (firing adoption and
// shard-reinstall subscribers), fail every local future registered as
// waiting on state homed there, and gossip the death so the verdict is
// authoritative machine-wide. Only the first transition does any of this;
// a death heard twice is a no-op, which bounds the gossip epidemic.
func (m *memberState) declareDead(n int, why string) {
	d := m.d
	if n == d.node {
		m.excommunicate()
		return
	}
	ps := d.ensurePeer(n)
	if ps == nil {
		return
	}
	// A peer that said goodbye shut down cleanly: its silence is expected,
	// not a death — locally suspected or gossiped. Its totals already live
	// in the departure records, so quiescence needs no release either.
	if ps.departed.Load() {
		return
	}
	ps.mu.Lock()
	if ps.dead.Load() {
		ps.mu.Unlock()
		return
	}
	ps.dead.Store(true)
	released := ps.outstanding
	ps.outstanding = 0
	ps.mu.Unlock()

	released += d.dropPendTo(n)
	m.deaths.Add(1)
	m.released.Add(uint64(released))
	for i := 0; i < released; i++ {
		d.rt.doneWork()
	}
	if ev, ok := d.lmap.MarkDead(n); ok {
		m.rehomes.Add(uint64(len(ev.Moved)))
	}
	d.rt.failLostWaiters(n)
	d.rt.recordError(fmt.Errorf("core: node %d declared dead (%s); released %d work units: %w", n, why, released, agas.ErrNodeLost))

	// Shoot-the-other-node gossip: the death verdict propagates to every
	// live peer so the machine converges on one view. Receivers that
	// already marked n dead return early above.
	frame := encodeDead(n)
	for _, p := range d.lmap.LiveNodes() {
		if p == d.node || p == n {
			continue
		}
		_ = d.sendRetry(p, frame)
	}
}

// excommunicate handles this node being declared dead by a live peer: the
// machine has moved on without us, and partition heal is unsupported. We
// mark every peer dead locally so held work units release and a local
// Wait/Shutdown can complete, then stop beating. The process keeps
// running so its operator can read metrics and exit cleanly.
func (m *memberState) excommunicate() {
	if !m.excomm.CompareAndSwap(false, true) {
		return
	}
	d := m.d
	for n := 0; n < d.lmap.Nodes(); n++ {
		if n == d.node {
			continue
		}
		ps := d.ensurePeer(n)
		if ps == nil {
			continue
		}
		ps.mu.Lock()
		if ps.dead.Load() {
			ps.mu.Unlock()
			continue
		}
		ps.dead.Store(true)
		released := ps.outstanding
		ps.outstanding = 0
		ps.mu.Unlock()
		released += d.dropPendTo(n)
		m.released.Add(uint64(released))
		for i := 0; i < released; i++ {
			d.rt.doneWork()
		}
		d.rt.failLostWaiters(n)
	}
	d.rt.recordError(fmt.Errorf("core: this node was declared dead by the machine: %w", agas.ErrNodeLost))
}

// onBeat handles a heartbeat frame: proof of life plus membership
// capability for the sender.
func (d *distState) onBeat(from int, body []byte) {
	if _, ok := decodeBeat(body); !ok {
		d.rt.recordError(fmt.Errorf("core: corrupt beat frame from node %d", from))
		return
	}
	ps := d.ensurePeer(from)
	if ps == nil {
		return
	}
	ps.member.Store(true)
	ps.detector().Heartbeat(time.Now())
	if d.mb != nil {
		d.mb.beatsRecv.Add(1)
	}
}

// onDead handles a gossiped death verdict. The verdict is authoritative:
// a node hearing its own death is excommunicated rather than arguing.
func (d *distState) onDead(from int, body []byte) {
	n, ok := decodeDead(body)
	if !ok {
		d.rt.recordError(fmt.Errorf("core: corrupt death frame from node %d", from))
		return
	}
	if d.mb == nil {
		return
	}
	d.mb.declareDead(n, fmt.Sprintf("death gossiped by node %d", from))
}

// onMemberHello admits a peer's membership announcement, carried in the
// connection handshake hello. For a known node it only records
// capability; for an unknown node it is a join: the transport learns the
// joiner's dial address, the membership map grows (verifying the
// announced range continues the partition), and AGAS grows its directory
// and cache to cover the new localities. Join admission is serialized and
// idempotent per node — the hello re-arrives on every reconnect.
func (d *distState) onMemberHello(from int, mh *memberHello) {
	ps := d.ensurePeer(from)
	if ps == nil {
		return
	}
	ps.member.Store(true)
	m := d.mb
	if m == nil {
		return
	}
	m.joinMu.Lock()
	defer m.joinMu.Unlock()
	if from < d.lmap.Nodes() {
		return // startup peer or reconnect: nothing to grow
	}
	if from != d.lmap.Nodes() {
		d.rt.recordError(fmt.Errorf("core: rejecting join of node %d: next node ID is %d", from, d.lmap.Nodes()))
		return
	}
	mt, ok := d.tr.(transport.MemberTransport)
	if !ok {
		d.rt.recordError(fmt.Errorf("core: node %d tried to join but transport cannot grow", from))
		return
	}
	if err := mt.AddPeer(from, mh.addr, mh.lo, mh.hi); err != nil {
		d.rt.recordError(fmt.Errorf("core: rejecting join of node %d: %w", from, err))
		return
	}
	if _, err := d.lmap.AddNode(agas.Range{Lo: mh.lo, Hi: mh.hi}); err != nil {
		d.rt.recordError(fmt.Errorf("core: rejecting join of node %d: %w", from, err))
		return
	}
	d.rt.agas.Grow(d.lmap.Localities())
	m.joins.Add(1)
}

// Beat and death frames are fixed-size little-endian records behind their
// frame kind byte, matching the drain probe's encoding conventions.

func encodeBeat(fp uint64) []byte {
	b := make([]byte, 9)
	b[0] = fBeat
	binary.LittleEndian.PutUint64(b[1:], fp)
	return b
}

func decodeBeat(body []byte) (uint64, bool) {
	if len(body) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(body), true
}

func encodeDead(node int) []byte {
	b := make([]byte, 3)
	b[0] = fDead
	binary.LittleEndian.PutUint16(b[1:], uint16(node))
	return b
}

func decodeDead(body []byte) (int, bool) {
	if len(body) != 2 {
		return 0, false
	}
	return int(binary.LittleEndian.Uint16(body)), true
}

// depRegistry maps local waiter futures to the remote node hosting the
// state they await, so a death can fail exactly the futures it strands.
type depRegistry struct {
	mu sync.Mutex
	m  map[agas.GID]int
}

func (dr *depRegistry) track(g agas.GID, node int) {
	dr.mu.Lock()
	if dr.m == nil {
		dr.m = make(map[agas.GID]int)
	}
	dr.m[g] = node
	dr.mu.Unlock()
}

func (dr *depRegistry) drop(g agas.GID) {
	dr.mu.Lock()
	delete(dr.m, g)
	dr.mu.Unlock()
}

func (dr *depRegistry) takeNode(node int) []agas.GID {
	dr.mu.Lock()
	var gs []agas.GID
	for g, n := range dr.m {
		if n == node {
			gs = append(gs, g)
		}
	}
	for _, g := range gs {
		delete(dr.m, g)
	}
	dr.mu.Unlock()
	return gs
}

// trackRemoteFuture registers fgid — a local future that will be resolved
// by a continuation or trigger from whichever node hosts dep — with the
// dependency registry. If that node dies before the future resolves, the
// future fails with the node-lost error instead of hanging; if the node
// is already dead at registration, it fails immediately.
func (r *Runtime) trackRemoteFuture(fgid agas.GID, onReady func(func(any, error)), dep agas.GID) {
	d := r.dist
	if d == nil {
		return
	}
	node, ok := d.lmap.NodeOf(int(dep.Home))
	if !ok || node == d.node {
		return
	}
	r.deps.track(fgid, node)
	onReady(func(any, error) { r.deps.drop(fgid) })
	if d.peerDead(node) {
		r.FailLCO(d.home, fgid, agas.ErrNodeLost.Error())
	}
}

// failLostWaiters fails every registered local future stranded by node's
// death. The failure rides the normal trigger path, so DistLCO dedup and
// plain-future already-set absorption apply.
func (r *Runtime) failLostWaiters(node int) {
	d := r.dist
	if d == nil {
		return
	}
	for _, g := range r.deps.takeNode(node) {
		r.FailLCO(d.home, g, agas.ErrNodeLost.Error())
	}
}

// MemberInfo is one row of a Members snapshot.
type MemberInfo struct {
	// Node is the peer's ID.
	Node int
	// Range is the locality range the node announced when it joined.
	Range agas.Range
	// Alive is false once the node has been declared dead.
	Alive bool
	// Member reports announced membership support (beats expected).
	Member bool
	// Phi is the current accrued suspicion (0 for self, the dead, and
	// peers with no beat history).
	Phi float64
}

// Members snapshots the machine's membership as this node sees it.
func (r *Runtime) Members() []MemberInfo {
	d := r.dist
	if d == nil {
		return []MemberInfo{{Node: 0, Range: agas.Range{Lo: 0, Hi: r.Localities()}, Alive: true}}
	}
	now := time.Now()
	out := make([]MemberInfo, 0, d.lmap.Nodes())
	for n := 0; n < d.lmap.Nodes(); n++ {
		rg, _ := d.lmap.NodeRange(n)
		mi := MemberInfo{Node: n, Range: rg, Alive: d.lmap.Alive(n)}
		if n == d.node {
			mi.Member = d.mb != nil
			out = append(out, mi)
			continue
		}
		if ps := d.peer(n); ps != nil {
			mi.Member = ps.member.Load()
			if ps.dead.Load() {
				mi.Alive = false
			}
			if mi.Alive && mi.Member {
				if det := ps.det.Load(); det != nil {
					mi.Phi = det.Phi(now)
				}
			}
		}
		out = append(out, mi)
	}
	return out
}

// SubscribeMembership registers fn to run on every membership change
// (joins and deaths) observed by this node. Callbacks fire synchronously
// after the new membership view is published, in registration order, and
// must not call back into membership mutators. Single-node runtimes never
// fire.
func (r *Runtime) SubscribeMembership(fn func(agas.MemberEvent)) {
	if r.dist == nil {
		return
	}
	r.dist.lmap.Subscribe(fn)
}
