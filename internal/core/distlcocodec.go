package core

// Wire codec for DistLCO state, registered with the parcel value codec
// registry so Runtime.Migrate can push a live distributed LCO to another
// node exactly like any data object: counters, accumulator, subscribed
// waiters, and the dedup set all travel, so a duplicate of a trigger
// applied before the move is still absorbed after it.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/agas"
	"repro/internal/parcel"
)

// DistLCOCodecName is the wire name of the DistLCO value codec. Every
// node of a machine registers it (at package init), so migrated LCOs
// decode anywhere.
const DistLCOCodecName = "px.distlco"

const distLCOCodecVersion = 1

func init() {
	parcel.RegisterValueCodec(DistLCOCodecName, parcel.ValueCodec{
		Encode: encodeDistLCO,
		Decode: decodeDistLCO,
	})
}

// appendValueRecord writes u8 present | u32 len | EncodeAny record.
func appendValueRecord(buf []byte, v any, present bool) ([]byte, error) {
	if !present {
		return append(buf, 0), nil
	}
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return nil, err
	}
	buf = append(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(raw)))
	return append(buf, raw...), nil
}

func readValueRecord(buf []byte) (v any, present bool, rest []byte, err error) {
	if len(buf) < 1 {
		return nil, false, buf, fmt.Errorf("short value flag")
	}
	if buf[0] == 0 {
		return nil, false, buf[1:], nil
	}
	buf = buf[1:]
	if len(buf) < 4 {
		return nil, false, buf, fmt.Errorf("short value length")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < n {
		return nil, false, buf, fmt.Errorf("value truncated")
	}
	v, err = parcel.DecodeAny(buf[:n])
	if err != nil {
		return nil, false, buf, err
	}
	return v, true, buf[n:], nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString16(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", buf, fmt.Errorf("short string length")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return "", buf, fmt.Errorf("string truncated")
	}
	return string(buf[:n]), buf[n:], nil
}

func encodeDistLCO(v any) ([]byte, bool, error) {
	l, ok := v.(*DistLCO)
	if !ok {
		return nil, false, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, 0, 64+16*len(l.waiters)+8*l.dedup.Len())
	buf = append(buf, distLCOCodecVersion, byte(l.kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.need))
	buf = appendString16(buf, l.opName)
	resolved := byte(0)
	if l.resolved {
		resolved = 1
	}
	buf = append(buf, resolved)
	buf = appendString16(buf, l.failMsg)
	var err error
	// The accumulator/value is encoded when meaningful: reductions carry
	// a live accumulator from creation; futures and dataflows only hold a
	// value once resolved; gates never do.
	hasVal := l.kind == lcoReduce || (l.resolved && l.failMsg == "" && l.val != nil)
	if buf, err = appendValueRecord(buf, l.val, hasVal); err != nil {
		return nil, true, fmt.Errorf("accumulator: %w", err)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.slots)))
	for i := range l.slots {
		if buf, err = appendValueRecord(buf, l.slots[i], l.filled[i]); err != nil {
			return nil, true, fmt.Errorf("slot %d: %w", i, err)
		}
	}
	ids := l.dedup.IDs()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.waiters)))
	for _, w := range l.waiters {
		buf = w.Target.Encode(buf)
		buf = append(buf, byte(w.Op))
		buf = binary.LittleEndian.AppendUint32(buf, w.Slot)
	}
	return buf, true, nil
}

func decodeDistLCO(buf []byte) (any, error) {
	fail := func(err error) (any, error) {
		return nil, fmt.Errorf("core: distlco decode: %w", err)
	}
	if len(buf) < 2 {
		return fail(fmt.Errorf("short header"))
	}
	if buf[0] != distLCOCodecVersion {
		return fail(fmt.Errorf("version %d, want %d", buf[0], distLCOCodecVersion))
	}
	l := &DistLCO{kind: lcoKind(buf[1])}
	buf = buf[2:]
	if len(buf) < 4 {
		return fail(fmt.Errorf("short need"))
	}
	l.need = int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	var err error
	if l.opName, buf, err = readString16(buf); err != nil {
		return fail(err)
	}
	if len(buf) < 1 {
		return fail(fmt.Errorf("short resolved flag"))
	}
	l.resolved = buf[0] == 1
	buf = buf[1:]
	if l.failMsg, buf, err = readString16(buf); err != nil {
		return fail(err)
	}
	if l.val, _, buf, err = readValueRecord(buf); err != nil {
		return fail(fmt.Errorf("accumulator: %w", err))
	}
	if len(buf) < 4 {
		return fail(fmt.Errorf("short slot count"))
	}
	nslots := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if nslots > 0 {
		if nslots > len(buf) {
			return fail(fmt.Errorf("slot count %d exceeds payload", nslots))
		}
		l.slots = make([]any, nslots)
		l.filled = make([]bool, nslots)
		for i := 0; i < nslots; i++ {
			if l.slots[i], l.filled[i], buf, err = readValueRecord(buf); err != nil {
				return fail(fmt.Errorf("slot %d: %w", i, err))
			}
		}
	}
	if len(buf) < 4 {
		return fail(fmt.Errorf("short dedup count"))
	}
	ndedup := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < 8*ndedup {
		return fail(fmt.Errorf("dedup set truncated"))
	}
	for i := 0; i < ndedup; i++ {
		l.dedup.Add(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	if len(buf) < 4 {
		return fail(fmt.Errorf("short waiter count"))
	}
	nwait := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	for i := 0; i < nwait; i++ {
		var w Waiter
		if w.Target, buf, err = agas.DecodeGID(buf); err != nil {
			return fail(fmt.Errorf("waiter %d: %w", i, err))
		}
		if len(buf) < 5 {
			return fail(fmt.Errorf("waiter %d truncated", i))
		}
		w.Op = TrigOp(buf[0])
		w.Slot = binary.LittleEndian.Uint32(buf[1:5])
		buf = buf[5:]
		l.waiters = append(l.waiters, w)
	}
	if len(buf) != 0 {
		return fail(fmt.Errorf("%d trailing bytes", len(buf)))
	}
	return l, nil
}
