package core

import (
	"math/rand"
	"sync"
)

// Faults injects message-level failures into the parcel transport, for
// testing the delivery semantics the model implies: parcels are at-most-
// once by default (a lost parcel is lost; reliability is layered above),
// and idempotent LCO protocols must tolerate duplication.
type Faults struct {
	// DropOneIn drops one in every n remote parcels (0 disables).
	DropOneIn int
	// DupOneIn duplicates one in every n remote parcels (0 disables).
	DupOneIn int
	// Seed makes the fault pattern reproducible.
	Seed int64
}

// faultState is the runtime's fault injector.
type faultState struct {
	mu      sync.Mutex
	rng     *rand.Rand
	cfg     Faults
	dropped uint64
	duped   uint64
}

func newFaultState(cfg Faults) *faultState {
	if cfg.DropOneIn == 0 && cfg.DupOneIn == 0 {
		return nil
	}
	return &faultState{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// verdict decides one message's fate: deliver 0, 1, or 2 copies.
// dropAllowed is false for messages the runtime guarantees delivery of —
// local LCO trigger parcels, whose leg has no retransmission to recover a
// loss — which stay subject to duplication but never to drops. Cross-node
// LCO trigger frames pass true: the acknowledging protocol retransmits
// them, so a drop exercises recovery instead of losing the trigger.
func (f *faultState) verdict(dropAllowed bool) (copies int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropOneIn > 0 && f.rng.Intn(f.cfg.DropOneIn) == 0 && dropAllowed {
		f.dropped++
		return 0
	}
	if f.cfg.DupOneIn > 0 && f.rng.Intn(f.cfg.DupOneIn) == 0 {
		f.duped++
		return 2
	}
	return 1
}

// Dropped reports parcels destroyed by fault injection.
func (r *Runtime) Dropped() uint64 {
	if r.faults == nil {
		return 0
	}
	r.faults.mu.Lock()
	defer r.faults.mu.Unlock()
	return r.faults.dropped
}

// Duplicated reports parcels delivered twice by fault injection.
func (r *Runtime) Duplicated() uint64 {
	if r.faults == nil {
		return 0
	}
	r.faults.mu.Lock()
	defer r.faults.mu.Unlock()
	return r.faults.duped
}
