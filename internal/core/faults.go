package core

import (
	"math/rand"
	"sync"
)

// Faults injects message-level failures into the parcel transport, for
// testing the delivery semantics the model implies: parcels are at-most-
// once by default (a lost parcel is lost; reliability is layered above),
// and idempotent LCO protocols must tolerate duplication. The crash and
// partition knobs are deterministic: they count wire frames crossing this
// node's boundary and flip at an exact frame count, so a failing chaos
// run replays bit-for-bit from its seed and counts.
type Faults struct {
	// DropOneIn drops one in every n remote parcels (0 disables).
	DropOneIn int
	// DupOneIn duplicates one in every n remote parcels (0 disables).
	DupOneIn int
	// Seed makes the fault pattern reproducible.
	Seed int64

	// KillNode/KillAfter crash node KillNode: once that node has seen
	// KillAfter wire frames (in plus out, counted at the runtime's frame
	// layer), every subsequent frame in either direction is silently
	// dropped — the process keeps running but goes mute, exactly what a
	// kill -9 looks like from the rest of the machine. Configure these on
	// the victim's own Config. KillAfter 0 disables.
	KillNode  int
	KillAfter int

	// PartitionA/PartitionB/PartitionAfter cut the link between two nodes:
	// once PartitionAfter frames have crossed the A<->B boundary (either
	// direction, counted at whichever endpoint carries this config), all
	// further A<->B frames are silently dropped both ways. Other links are
	// untouched. PartitionAfter 0 disables.
	PartitionA     int
	PartitionB     int
	PartitionAfter int
}

// KillPeerAfter returns a copy of f that crashes node after that node has
// seen n wire frames. Chainable value builder for test configs.
func (f Faults) KillPeerAfter(node, n int) Faults {
	f.KillNode, f.KillAfter = node, n
	return f
}

// PartitionPeersAfter returns a copy of f that symmetrically partitions
// nodes a and b after n frames have crossed their link.
func (f Faults) PartitionPeersAfter(a, b, n int) Faults {
	f.PartitionA, f.PartitionB, f.PartitionAfter = a, b, n
	return f
}

// faultState is the runtime's fault injector.
type faultState struct {
	mu        sync.Mutex
	rng       *rand.Rand
	cfg       Faults
	dropped   uint64
	duped     uint64
	killCount int    // frames this node has seen toward KillAfter
	partCount int    // frames across the A<->B link toward PartitionAfter
	silenced  uint64 // frames silently destroyed by kill or partition
}

func newFaultState(cfg Faults) *faultState {
	if cfg.DropOneIn == 0 && cfg.DupOneIn == 0 && cfg.KillAfter == 0 && cfg.PartitionAfter == 0 {
		return nil
	}
	return &faultState{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// silence decides whether one wire frame between self and other (either
// direction) is destroyed by an armed crash or partition. It advances the
// deterministic frame counters, so every frame crossing this node's
// boundary must pass through exactly once.
func (f *faultState) silence(self, other int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	mute := false
	if f.cfg.KillAfter > 0 && self == f.cfg.KillNode {
		f.killCount++
		if f.killCount > f.cfg.KillAfter {
			mute = true
		}
	}
	if f.cfg.PartitionAfter > 0 &&
		((self == f.cfg.PartitionA && other == f.cfg.PartitionB) ||
			(self == f.cfg.PartitionB && other == f.cfg.PartitionA)) {
		f.partCount++
		if f.partCount > f.cfg.PartitionAfter {
			mute = true
		}
	}
	if mute {
		f.silenced++
	}
	return mute
}

// verdict decides one message's fate: deliver 0, 1, or 2 copies.
// dropAllowed is false for messages the runtime guarantees delivery of —
// local LCO trigger parcels, whose leg has no retransmission to recover a
// loss — which stay subject to duplication but never to drops. Cross-node
// LCO trigger frames pass true: the acknowledging protocol retransmits
// them, so a drop exercises recovery instead of losing the trigger.
func (f *faultState) verdict(dropAllowed bool) (copies int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropOneIn > 0 && f.rng.Intn(f.cfg.DropOneIn) == 0 && dropAllowed {
		f.dropped++
		return 0
	}
	if f.cfg.DupOneIn > 0 && f.rng.Intn(f.cfg.DupOneIn) == 0 {
		f.duped++
		return 2
	}
	return 1
}

// Dropped reports parcels destroyed by fault injection.
func (r *Runtime) Dropped() uint64 {
	if r.faults == nil {
		return 0
	}
	r.faults.mu.Lock()
	defer r.faults.mu.Unlock()
	return r.faults.dropped
}

// Duplicated reports parcels delivered twice by fault injection.
func (r *Runtime) Duplicated() uint64 {
	if r.faults == nil {
		return 0
	}
	r.faults.mu.Lock()
	defer r.faults.mu.Unlock()
	return r.faults.duped
}

// Silenced reports wire frames destroyed by an armed crash or partition.
func (r *Runtime) Silenced() uint64 {
	if r.faults == nil {
		return 0
	}
	r.faults.mu.Lock()
	defer r.faults.mu.Unlock()
	return r.faults.silenced
}
