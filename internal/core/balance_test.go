package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/parcel"
)

// The whole loop, single process: a skewed object set under sustained
// load must be spread across localities by the policy engine alone, with
// a migration count near the minimum — convergence, not thrash.
func TestBalancerSpreadsSkewedObjects(t *testing.T) {
	r := New(Config{
		Localities:          4,
		WorkersPerLocality:  2,
		BalanceInterval:     10 * time.Millisecond,
		BalanceSampleEvery:  1,
		BalanceHotThreshold: 4,
		BalanceMaxMoves:     4,
	})
	defer r.Shutdown()
	r.MustRegisterAction("bal.touch", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return nil, nil
	})

	const objects = 4
	gids := make([]agas.GID, 0, objects)
	for i := 0; i < objects; i++ {
		gids = append(gids, r.NewDataAt(0, i))
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		// Sustained skewed load: every object is hammered wherever it
		// currently lives; only arrival sampling tells the balancer.
		for _, g := range gids {
			for k := 0; k < 25; k++ {
				r.SendFrom(1, parcel.New(g, "bal.touch", nil))
			}
		}
		r.Wait()

		where := make(map[int]int)
		for _, g := range gids {
			loc, _, err := r.agas.Locate(g)
			if err != nil {
				t.Fatalf("locate %v: %v", g, err)
			}
			where[loc]++
		}
		if len(where) >= 3 { // skew broken: objects on 3+ of 4 localities
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer never spread the skew: placement %v, moves %d, ticks %d",
				where, r.bal.moves.Load(), r.bal.eng.Ticks())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No storm: reaching a 3-way spread needs at least 2 moves; the
	// cooldown and hysteresis guards must keep the total near that.
	if moves := r.bal.moves.Load(); moves < 2 || moves > 3*objects {
		t.Fatalf("balancer made %d moves for %d objects, want 2..%d", moves, objects, 3*objects)
	}
	if errs := r.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}

	// The operator-facing gauges exist and move.
	snap := r.Metrics().Snapshot()
	if snap["px.balance.ticks"] == 0 || snap["px.balance.moves"] == 0 || snap["px.balance.sampled"] == 0 {
		t.Fatalf("px.balance.* gauges dead: %v", snap)
	}
}

// Balancing off must mean off: no state, no sampling, and no
// px.balance.* names in the metric registry — the operator probe for
// "is the balancer enabled here?".
func TestBalancerDisabledIsInvisible(t *testing.T) {
	r := New(Config{Localities: 2})
	defer r.Shutdown()
	if r.bal != nil {
		t.Fatal("balancer state exists with BalanceInterval unset")
	}
	r.MustRegisterAction("bal.touch", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
		return nil, nil
	})
	obj := r.NewDataAt(0, 1)
	for i := 0; i < 100; i++ {
		r.SendFrom(1, parcel.New(obj, "bal.touch", nil))
	}
	r.Wait()
	for name := range r.Metrics().Snapshot() {
		if strings.HasPrefix(name, "px.balance.") {
			t.Fatalf("metric %q registered with balancing disabled", name)
		}
	}
}
