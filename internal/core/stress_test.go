package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/agas"
	"repro/internal/network"
	"repro/internal/parcel"
)

// Property: any randomly generated program of nested spawns, remote calls,
// and continuation chains quiesces, resolves every future, and executes
// exactly the expected number of actions. This is the runtime's core
// soundness statement: the work-counting quiescence protocol cannot lose
// or invent work under arbitrary program shapes.
func TestPropertyRandomProgramsQuiesce(t *testing.T) {
	f := func(seed int64, locs8, depth8, fan8 uint8) bool {
		locs := int(locs8%4) + 1
		depth := int(depth8 % 4)
		fan := int(fan8%3) + 1

		r := New(Config{
			Localities:         locs,
			WorkersPerLocality: 2,
			Net:                network.NewCrossbar(locs, network.Params{InjectionOverhead: 10 * time.Microsecond}),
		})
		defer r.Shutdown()

		var executed atomic.Int64
		r.MustRegisterAction("stress.touch", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
			executed.Add(1)
			return int64(1), nil
		})
		objs := make([]agas.GID, locs)
		for i := range objs {
			objs[i] = r.NewDataAt(i, struct{}{})
		}

		// build tasks run concurrently across localities; rand.Rand is not
		// concurrency-safe, so destination picks go through a lock.
		rng := rand.New(rand.NewSource(seed))
		var rngMu sync.Mutex
		pick := func() agas.GID {
			rngMu.Lock()
			defer rngMu.Unlock()
			return objs[rng.Intn(locs)]
		}
		pickLoc := func() int {
			rngMu.Lock()
			defer rngMu.Unlock()
			return rng.Intn(locs)
		}
		var expect int64
		// Each tree node spawns fan children down to depth, and each node
		// issues one remote call (action execution) plus a 2-hop chain.
		var countNodes func(d int) int64
		countNodes = func(d int) int64 {
			if d < 0 {
				return 0
			}
			n := int64(1)
			for i := 0; i < fan; i++ {
				n += countNodes(d - 1)
			}
			return n
		}
		nodes := countNodes(depth)
		expect = nodes * 3 // 1 call + 2 chain hops per node

		futs := make(chan any, nodes)
		var build func(ctx *Context, d int)
		build = func(ctx *Context, d int) {
			// Remote call with reply.
			fut := ctx.Call(pick(), "stress.touch", nil)
			// Continuation chain: touch two more objects in sequence.
			a, b := pick(), pick()
			ctx.Send(parcel.New(a, "stress.touch", nil,
				parcel.Continuation{Target: b, Action: "stress.touch"}))
			futs <- fut
			if d > 0 {
				for i := 0; i < fan; i++ {
					ctx.SpawnAt(pickLoc(), func(c *Context) { build(c, d-1) })
				}
			}
		}
		r.Spawn(0, func(ctx *Context) { build(ctx, depth) })
		r.Wait()
		close(futs)
		for f := range futs {
			fut := f.(interface{ TryGet() (any, error, bool) })
			if _, err, ok := fut.TryGet(); !ok || err != nil {
				return false
			}
		}
		if len(r.Errors()) != 0 {
			return false
		}
		return executed.Load() == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: quiescence under a migration storm — objects migrate while a
// stream of parcels targets them; forwarding must deliver every parcel
// exactly once.
func TestPropertyMigrationStormDeliversAll(t *testing.T) {
	f := func(seed int64, moves8 uint8) bool {
		const locs = 4
		r := New(Config{Localities: locs, WorkersPerLocality: 2})
		defer r.Shutdown()
		var hits atomic.Int64
		r.MustRegisterAction("storm.hit", func(ctx *Context, target any, args *parcel.Reader) (any, error) {
			hits.Add(1)
			return nil, nil
		})
		obj := r.NewDataAt(0, struct{}{})
		sendRng := rand.New(rand.NewSource(seed))
		moveRng := rand.New(rand.NewSource(seed + 1))
		moves := int(moves8%6) + 1
		const parcels = 50
		doneSending := make(chan struct{})
		go func() {
			defer close(doneSending)
			for i := 0; i < parcels; i++ {
				r.SendFrom(sendRng.Intn(locs), parcel.New(obj, "storm.hit", nil))
			}
		}()
		for m := 0; m < moves; m++ {
			if err := r.Migrate(obj, moveRng.Intn(locs)); err != nil {
				return false
			}
		}
		<-doneSending
		r.Wait()
		if errs := r.Errors(); len(errs) != 0 {
			t.Logf("errors: %v", errs)
			return false
		}
		return hits.Load() == parcels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecordsParcelFlow(t *testing.T) {
	r := New(Config{Localities: 2, TraceCapacity: 1024})
	defer r.Shutdown()
	obj := r.NewDataAt(1, struct{}{})
	r.Spawn(0, func(ctx *Context) {
		ctx.Send(parcel.New(obj, ActionNop, nil))
	})
	r.Wait()
	ring := r.Trace()
	if ring == nil {
		t.Fatal("trace ring missing despite capacity")
	}
	if ring.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	snap := ring.Snapshot()
	var sends, recvs int
	for _, ev := range snap {
		switch ev.Kind.String() {
		case "parcel.send":
			sends++
		case "parcel.recv":
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("trace missing flow: sends=%d recvs=%d", sends, recvs)
	}
}
