package core

import (
	"fmt"

	"repro/internal/agas"
	"repro/internal/lco"
)

// Affinity semantics (§2.1: "affinity semantics to establish relationships
// that would lead to locality opportunities through both compile time and
// runtime techniques"): objects and threads can be placed relative to an
// anchor object rather than at an absolute locality, so related state
// stays co-resident as the anchor migrates.

// NewDataNear installs v co-located with the anchor object's current
// owner. The affinity is a placement decision, not a binding: if the
// anchor later migrates, the new object stays put unless migrated too
// (use MigrateWith for the bound form).
func (r *Runtime) NewDataNear(anchor agas.GID, v any) (agas.GID, error) {
	owner, err := r.agas.Owner(anchor)
	if err != nil {
		return agas.Nil, fmt.Errorf("core: affinity anchor: %w", err)
	}
	return r.NewDataAt(owner, v), nil
}

// SpawnNear runs fn as a thread on the locality currently owning anchor —
// the runtime form of moving work to the data without naming localities.
func (r *Runtime) SpawnNear(anchor agas.GID, fn func(*Context)) error {
	owner, err := r.agas.Owner(anchor)
	if err != nil {
		return fmt.Errorf("core: affinity anchor: %w", err)
	}
	r.Spawn(owner, fn)
	return nil
}

// CallNear invokes action on dest with the reply future homed at dest's
// current owner, keeping the continuation local to the data.
func (r *Runtime) CallNear(dest agas.GID, action string, args []byte) (*lco.Future, error) {
	owner, err := r.agas.Owner(dest)
	if err != nil {
		return nil, fmt.Errorf("core: affinity anchor: %w", err)
	}
	return r.CallFrom(owner, dest, action, args), nil
}

// MigrateWith moves the follower objects to wherever the anchor currently
// lives, restoring co-residency after the anchor has migrated. It returns
// the first error encountered but attempts every follower.
func (r *Runtime) MigrateWith(anchor agas.GID, followers ...agas.GID) error {
	owner, err := r.agas.Owner(anchor)
	if err != nil {
		return fmt.Errorf("core: affinity anchor: %w", err)
	}
	var first error
	for _, f := range followers {
		if err := r.Migrate(f, owner); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Colocated reports whether all the named objects currently share a
// locality — the invariant affinity placement exists to maintain.
func (r *Runtime) Colocated(gids ...agas.GID) (bool, error) {
	if len(gids) == 0 {
		return true, nil
	}
	ref, err := r.agas.Owner(gids[0])
	if err != nil {
		return false, err
	}
	for _, g := range gids[1:] {
		owner, err := r.agas.Owner(g)
		if err != nil {
			return false, err
		}
		if owner != ref {
			return false, nil
		}
	}
	return true, nil
}
