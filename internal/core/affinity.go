package core

import (
	"fmt"

	"repro/internal/agas"
	"repro/internal/lco"
)

// Affinity semantics (§2.1: "affinity semantics to establish relationships
// that would lead to locality opportunities through both compile time and
// runtime techniques"): objects and threads can be placed relative to an
// anchor object rather than at an absolute locality, so related state
// stays co-resident as the anchor migrates.

// residentAnchorOwner resolves the anchor's current owner and requires it
// to execute in this process: affinity placement is a local act, and an
// anchor owned by another node cannot be placed against from here.
func (r *Runtime) residentAnchorOwner(anchor agas.GID) (int, error) {
	owner, err := r.agas.Owner(anchor)
	if err != nil {
		return 0, fmt.Errorf("core: affinity anchor: %w", err)
	}
	if r.loc(owner) == nil {
		return 0, fmt.Errorf("core: affinity anchor %v is owned by node %d, not this node %d",
			anchor, r.nodeOf(owner), r.dist.node)
	}
	return owner, nil
}

// NewDataNear installs v co-located with the anchor object's current
// owner. The affinity is a placement decision, not a binding: if the
// anchor later migrates, the new object stays put unless migrated too
// (use MigrateWith for the bound form).
func (r *Runtime) NewDataNear(anchor agas.GID, v any) (agas.GID, error) {
	owner, err := r.residentAnchorOwner(anchor)
	if err != nil {
		return agas.Nil, err
	}
	return r.NewDataAt(owner, v), nil
}

// SpawnNear runs fn as a thread on the locality currently owning anchor —
// the runtime form of moving work to the data without naming localities.
func (r *Runtime) SpawnNear(anchor agas.GID, fn func(*Context)) error {
	owner, err := r.residentAnchorOwner(anchor)
	if err != nil {
		return err
	}
	r.Spawn(owner, fn)
	return nil
}

// CallNear invokes action on dest with the reply future homed at dest's
// current owner, keeping the continuation local to the data.
func (r *Runtime) CallNear(dest agas.GID, action string, args []byte) (*lco.Future, error) {
	owner, err := r.residentAnchorOwner(dest)
	if err != nil {
		return nil, err
	}
	return r.CallFrom(owner, dest, action, args), nil
}

// MigrateWith moves the follower objects to wherever the anchor currently
// lives, restoring co-residency after the anchor has migrated. It returns
// the first error encountered but attempts every follower.
func (r *Runtime) MigrateWith(anchor agas.GID, followers ...agas.GID) error {
	owner, err := r.residentAnchorOwner(anchor)
	if err != nil {
		return err
	}
	var first error
	for _, f := range followers {
		if err := r.Migrate(f, owner); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Colocated reports whether all the named objects currently share a
// locality — the invariant affinity placement exists to maintain. Names
// homed on other nodes cannot be answered authoritatively from here
// (local resolution only knows their home, not their current owner) and
// report an error rather than a possibly wrong boolean.
func (r *Runtime) Colocated(gids ...agas.GID) (bool, error) {
	if len(gids) == 0 {
		return true, nil
	}
	ownerOf := func(g agas.GID) (int, error) {
		owner, err := r.agas.Owner(g)
		if err != nil {
			return 0, err
		}
		if home := int(g.Home); home < len(r.locs) && r.loc(home) == nil {
			return 0, fmt.Errorf("core: current owner of %v is only known to its home node", g)
		}
		return owner, nil
	}
	ref, err := ownerOf(gids[0])
	if err != nil {
		return false, err
	}
	for _, g := range gids[1:] {
		owner, err := ownerOf(g)
		if err != nil {
			return false, err
		}
		if owner != ref {
			return false, nil
		}
	}
	return true, nil
}
