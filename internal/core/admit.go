package core

// Admission control: the serving-tier overload story. Externally driven
// actions (service requests arriving as parcels) are marked sheddable;
// their delivery then goes through the locality's admission-checked post,
// and a saturated locality rejects the parcel with a typed load-shed
// verdict instead of queueing without bound. The verdict travels to the
// request's continuation exactly like an action failure, so a client
// blocked on a distributed future observes ErrOverloaded instead of an
// ever-growing queue — and can retry with backoff.
//
// Runtime-internal parcels (continuations, LCO triggers, forwards, fence
// replays) are never sheddable: once a request is admitted, the work it
// fans out must run to completion or the "zero lost accepted requests"
// contract breaks.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/locality"
	"repro/internal/parcel"
)

// ErrOverloaded is the typed load-shed verdict a saturated locality
// returns for sheddable work (re-exported from the locality layer so
// callers of the runtime need only one import).
var ErrOverloaded = locality.ErrOverloaded

// overloadedMsg is the wire-visible marker of a load-shed verdict.
// Failure deliveries flatten errors to strings (parcels carry bytes, not
// Go values), so the verdict must survive as text: IsOverloaded matches
// this marker on errors that crossed a node boundary.
const overloadedMsg = "px: overloaded"

// IsOverloaded reports whether err is a load-shed verdict — either the
// typed ErrOverloaded from this process's own locality, or the flattened
// wire form of one delivered through a failure continuation from another
// node.
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, locality.ErrOverloaded) || strings.Contains(err.Error(), overloadedMsg)
}

// MarkSheddable declares the named actions externally driven: their
// parcels are delivered through admission control and may be rejected
// with ErrOverloaded when the destination locality is saturated (see
// Config.AdmitLimit). On a multi-node machine call it in Config.Register,
// alongside the action registrations themselves — the set must be
// complete before the transport starts delivering, and it is read
// lock-free on the delivery path afterwards.
func (r *Runtime) MarkSheddable(names ...string) {
	if r.sheddable == nil {
		r.sheddable = make(map[string]struct{}, len(names))
	}
	for _, name := range names {
		if name == "" {
			panic("core: MarkSheddable of empty action name")
		}
		r.sheddable[name] = struct{}{}
	}
}

// Sheds reports how many sheddable parcels this node's localities have
// rejected with ErrOverloaded.
func (r *Runtime) Sheds() uint64 {
	var n uint64
	for i := range r.locs {
		if l := r.locs[i].Load(); l != nil {
			n += l.Sheds()
		}
	}
	return n
}

// retryAfterMark prefixes the backoff hint inside a shed verdict's
// message. Like overloadedMsg, it must survive wire flattening to text,
// so RetryAfter parses it back out of any error string.
const retryAfterMark = "retry-after="

// defaultRetryAfterHint is the backoff suggestion used when
// Config.RetryAfterHint is zero: roughly a few admission-queue drain
// times at serving-tier rates — long enough to let the queue breathe,
// short enough that a shed request's end-to-end latency stays bounded
// by a handful of retries.
const defaultRetryAfterHint = 2 * time.Millisecond

// RetryAfter extracts the suggested backoff from a load-shed verdict, in
// whatever form it arrived — the typed local error or the flattened wire
// text of a remote one. ok is false when err carries no hint (it is not a
// shed verdict, or the shedding node disabled hints); the caller then
// falls back to its own backoff policy.
func RetryAfter(err error) (d time.Duration, ok bool) {
	if err == nil {
		return 0, false
	}
	s := err.Error()
	i := strings.Index(s, retryAfterMark)
	if i < 0 {
		return 0, false
	}
	s = s[i+len(retryAfterMark):]
	if j := strings.IndexByte(s, ')'); j >= 0 {
		s = s[:j]
	}
	d, perr := time.ParseDuration(s)
	if perr != nil || d <= 0 {
		return 0, false
	}
	return d, true
}

// shedParcel consumes a parcel rejected by admission control: the typed
// verdict is delivered to the parcel's continuation (reaching the
// requester's future, across the wire if need be) and the delivery's
// work unit is released. It runs on the rejecting caller's goroutine —
// posting the verdict delivery to the very queue that just reported
// saturation would double queue pressure exactly when shedding it.
// The verdict carries the node's retry-after hint (Config.RetryAfterHint)
// so clients back off by the server's suggestion, not a guess.
func (r *Runtime) shedParcel(loc int, p *parcel.Parcel) {
	hint := r.cfg.RetryAfterHint
	if hint == 0 {
		hint = defaultRetryAfterHint
	}
	if hint > 0 {
		r.failParcel(loc, p, fmt.Errorf("%s: locality %d at admission limit (%s%s)",
			overloadedMsg, loc, retryAfterMark, hint))
	} else {
		r.failParcel(loc, p, fmt.Errorf("%s: locality %d at admission limit", overloadedMsg, loc))
	}
	r.doneWork()
}
