package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/agas"
)

func TestNewDataNearColocates(t *testing.T) {
	r := newTestRuntime(t, 4)
	anchor := r.NewDataAt(2, "anchor")
	follower, err := r.NewDataNear(anchor, "follower")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Colocated(anchor, follower)
	if err != nil || !ok {
		t.Fatalf("not colocated: %v", err)
	}
	owner, _ := r.AGAS().Owner(follower)
	if owner != 2 {
		t.Fatalf("follower at L%d, want L2", owner)
	}
}

func TestSpawnNearRunsAtOwner(t *testing.T) {
	r := newTestRuntime(t, 4)
	anchor := r.NewDataAt(3, "anchor")
	var ran atomic.Int32
	if err := r.SpawnNear(anchor, func(ctx *Context) {
		ran.Store(int32(ctx.Locality()))
	}); err != nil {
		t.Fatal(err)
	}
	r.Wait()
	if ran.Load() != 3 {
		t.Fatalf("ran at L%d, want L3", ran.Load())
	}
}

func TestSpawnNearFollowsMigration(t *testing.T) {
	r := newTestRuntime(t, 4)
	anchor := r.NewDataAt(0, "anchor")
	if err := r.Migrate(anchor, 2); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	r.SpawnNear(anchor, func(ctx *Context) { ran.Store(int32(ctx.Locality())) })
	r.Wait()
	if ran.Load() != 2 {
		t.Fatalf("spawn did not follow migration: ran at L%d", ran.Load())
	}
}

func TestMigrateWithRestoresColocation(t *testing.T) {
	r := newTestRuntime(t, 4)
	anchor := r.NewDataAt(0, "anchor")
	f1, _ := r.NewDataNear(anchor, 1)
	f2, _ := r.NewDataNear(anchor, 2)
	if err := r.Migrate(anchor, 3); err != nil {
		t.Fatal(err)
	}
	ok, _ := r.Colocated(anchor, f1, f2)
	if ok {
		t.Fatal("colocated before MigrateWith despite anchor move")
	}
	if err := r.MigrateWith(anchor, f1, f2); err != nil {
		t.Fatal(err)
	}
	ok, err := r.Colocated(anchor, f1, f2)
	if err != nil || !ok {
		t.Fatalf("MigrateWith failed to restore colocation: %v", err)
	}
}

func TestAffinityUnknownAnchor(t *testing.T) {
	r := newTestRuntime(t, 2)
	bogus := agas.GID{Home: 0, Kind: agas.KindData, Seq: 424242}
	if _, err := r.NewDataNear(bogus, 1); err == nil {
		t.Fatal("NewDataNear accepted unknown anchor")
	}
	if err := r.SpawnNear(bogus, func(*Context) {}); err == nil {
		t.Fatal("SpawnNear accepted unknown anchor")
	}
	if _, err := r.CallNear(bogus, ActionNop, nil); err == nil {
		t.Fatal("CallNear accepted unknown anchor")
	}
	if err := r.MigrateWith(bogus); err == nil {
		t.Fatal("MigrateWith accepted unknown anchor")
	}
}

func TestColocatedEmptyAndSingle(t *testing.T) {
	r := newTestRuntime(t, 2)
	if ok, _ := r.Colocated(); !ok {
		t.Fatal("empty set not trivially colocated")
	}
	g := r.NewDataAt(1, 1)
	if ok, _ := r.Colocated(g); !ok {
		t.Fatal("single object not colocated with itself")
	}
}

// Property: after any sequence of anchor migrations followed by
// MigrateWith, anchor and follower are colocated.
func TestPropertyAffinityConvergence(t *testing.T) {
	r := newTestRuntime(t, 4)
	f := func(moves []uint8) bool {
		anchor := r.NewDataAt(0, "a")
		follower, err := r.NewDataNear(anchor, "f")
		if err != nil {
			return false
		}
		for _, m := range moves {
			if err := r.Migrate(anchor, int(m)%4); err != nil {
				return false
			}
		}
		if err := r.MigrateWith(anchor, follower); err != nil {
			return false
		}
		ok, err := r.Colocated(anchor, follower)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
