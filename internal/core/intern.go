package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/parcel"
	"repro/internal/transport"
)

// Cross-node action interning. Spelling action names out on the wire
// costs a string allocation per parcel (plus one per continuation) on
// every receive. Instead, each interning-capable node announces its dense
// action table — the registry snapshot taken when the transport starts —
// inside the transport handshake hello. Because the hello precedes every
// frame on a connection and is re-announced on reconnect, a receiver
// always holds the sender's table before the first interned frame
// arrives, with no extra round trips or ordering protocol.
//
// A node sends interned frames (fParcelI) only to peers whose hello
// announced the interning capability; everyone else — including nodes
// running with Config.DisableActionInterning, which announce an empty
// hello and ignore the ones they receive — is spoken to in the plain
// string form, so mixed-mode machines interoperate. Actions registered
// after the transport started fall outside the announced prefix and are
// spelled out inside interned frames (the codec degrades per reference,
// see parcel.EncodeInterned).

// Hello payload wire form: u8 version | u8 flags | u32 count |
// count × (u16 len | name bytes) | [member section].
//
// Version 1 is the original form. Version 2 appends, when helloFlagMember
// is set, the membership announcement after the action table:
// u16 node | u32 lo | u32 hi | u16 addrlen | addr bytes. A hello without
// the member section is still encoded as version 1, byte-identical to
// older builds, so membership-off nodes interoperate untouched.
const (
	helloVersion    = 1
	helloVersionV2  = 2
	helloFlagIntern = 1 << 0
	// helloFlagTrace announces the distributed-trace capability: a peer
	// that sets it accepts (and may send) the fixed-size trace-context
	// trailer after parcel and LCO trigger frames (see parcel.TraceCtx).
	// Negotiated exactly like interning: senders append the trailer only
	// toward peers that announced it, so a node without the capability —
	// an older build, or Config.DisableTraceContext — keeps receiving the
	// plain frames it expects and traces degrade to local-only around it.
	helloFlagTrace = 1 << 1
	// helloFlagMember announces elastic-membership support: the sender
	// beats, expects beats, and honors death verdicts. The member section
	// carries its node ID, announced locality range, and dial address —
	// which is how a joining node tells an established machine where to
	// dial back.
	helloFlagMember = 1 << 2

	// maxInternActions bounds the announced table by entry count, and
	// helloPrefix additionally bounds it by encoded bytes (the transport
	// caps handshake payloads at transport.MaxHello). Both are enforced
	// at announce time — announce freezes exactly the prefix internHello
	// encodes, so sender and receiver always agree — and the count is
	// checked symmetrically in parseHello. Actions past either cap simply
	// travel in string form; interning is an optimization, never a
	// startup failure.
	maxInternActions = 1 << 16
)

// helloPrefix reports how many of names (in order) fit the announced
// table's count and byte budgets.
func helloPrefix(names []string) int {
	n := len(names)
	if n > maxInternActions {
		n = maxInternActions
	}
	size := 6
	for i := 0; i < n; i++ {
		size += 2 + len(names[i])
		if size > transport.MaxHello {
			return i
		}
	}
	return n
}

// memberHello is the parsed membership section of a v2 hello.
type memberHello struct {
	node   int
	lo, hi int
	addr   string
}

// encodeHello encodes this node's capability announcement: the interning
// action table (names in dense ID order, truncated to the helloPrefix
// budgets; empty unless intern), the trace-context capability bit, and —
// when mh is non-nil — the membership section. Without a member section
// the encoding stays version 1, byte-identical to pre-membership builds.
func encodeHello(names []string, intern, traced bool, mh *memberHello) []byte {
	var flags byte
	if intern {
		flags |= helloFlagIntern
	} else {
		names = nil
	}
	if traced {
		flags |= helloFlagTrace
	}
	version := byte(helloVersion)
	if mh != nil {
		flags |= helloFlagMember
		version = helloVersionV2
	}
	names = names[:helloPrefix(names)]
	size := 6
	for _, n := range names {
		size += 2 + len(n)
	}
	if mh != nil {
		size += 12 + len(mh.addr)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, version, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n)))
		buf = append(buf, n...)
	}
	if mh != nil {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(mh.node))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(mh.lo))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(mh.hi))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(mh.addr)))
		buf = append(buf, mh.addr...)
	}
	return buf
}

// parseHello decodes a peer announcement. An empty payload — a node
// without interning, or a transport without hello support — is valid and
// means "strings only". Unknown future versions are tolerated the same
// way rather than rejected: the capability is an optimization, not a
// correctness requirement.
func parseHello(payload []byte) (names []string, canIntern, canTrace bool, mh *memberHello, err error) {
	if len(payload) == 0 {
		return nil, false, false, nil, nil
	}
	if len(payload) > transport.MaxHello {
		// Defense in depth: transports already cap handshake payloads, so
		// anything larger is corrupt. Bounding here also keeps accepted
		// hellos inside the same byte budget encodeHello encodes to.
		return nil, false, false, nil, fmt.Errorf("core: %d-byte hello exceeds limit %d", len(payload), transport.MaxHello)
	}
	version := payload[0]
	if version != helloVersion && version != helloVersionV2 {
		return nil, false, false, nil, nil
	}
	if len(payload) < 6 {
		return nil, false, false, nil, fmt.Errorf("core: short hello payload (%d bytes)", len(payload))
	}
	flags := payload[1]
	count := int(binary.LittleEndian.Uint32(payload[2:6]))
	src := payload[6:]
	if count > maxInternActions {
		return nil, false, false, nil, fmt.Errorf("core: hello announces %d actions, limit %d", count, maxInternActions)
	}
	names = make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(src) < 2 {
			return nil, false, false, nil, fmt.Errorf("core: hello truncated at action %d", i)
		}
		n := int(binary.LittleEndian.Uint16(src))
		src = src[2:]
		if len(src) < n {
			return nil, false, false, nil, fmt.Errorf("core: hello action %d truncated", i)
		}
		names = append(names, string(src[:n]))
		src = src[n:]
	}
	if version >= helloVersionV2 && flags&helloFlagMember != 0 {
		if len(src) < 12 {
			return nil, false, false, nil, fmt.Errorf("core: hello member section truncated (%d bytes)", len(src))
		}
		m := &memberHello{
			node: int(binary.LittleEndian.Uint16(src[0:2])),
			lo:   int(binary.LittleEndian.Uint32(src[2:6])),
			hi:   int(binary.LittleEndian.Uint32(src[6:10])),
		}
		alen := int(binary.LittleEndian.Uint16(src[10:12]))
		src = src[12:]
		if len(src) < alen {
			return nil, false, false, nil, fmt.Errorf("core: hello member address truncated")
		}
		m.addr = string(src[:alen])
		src = src[alen:]
		mh = m
	}
	if len(src) != 0 {
		return nil, false, false, nil, fmt.Errorf("core: %d trailing hello bytes", len(src))
	}
	return names, flags&helloFlagIntern != 0, flags&helloFlagTrace != 0, mh, nil
}

// senderTable is the parcel.Table used when encoding toward a peer: it
// covers exactly the prefix of the local registry this node announced at
// transport start, so a position is meaningful to every peer that heard
// the announcement.
type senderTable struct {
	set *actionSet
	n   int
}

// IDOf reports the 0-based wire position of name within the announced
// prefix.
func (t *senderTable) IDOf(name string) (uint32, bool) {
	id, ok := t.set.byName[name] // 1-based dense ID
	if !ok || int(id) > t.n {
		return 0, false
	}
	return id - 1, true
}

// ActionOf is the decode half, unused on the sender side.
func (t *senderTable) ActionOf(uint32) (string, uint32, bool) { return "", parcel.NoAID, false }

// recvTable is the parcel.Table used when decoding a peer's interned
// frames: position → the peer's announced name, pre-resolved to the local
// dense ID where the action is registered here too. Immutable once
// published, so decodes read it without locks.
type recvTable struct {
	names []string
	aids  []uint32
}

// IDOf is the encode half, unused on the receiver side.
func (t *recvTable) IDOf(string) (uint32, bool) { return 0, false }

// ActionOf resolves a received wire position.
func (t *recvTable) ActionOf(id uint32) (string, uint32, bool) {
	if int(id) >= len(t.names) {
		return "", parcel.NoAID, false
	}
	return t.names[id], t.aids[id], true
}

// internState is the distributed layer's interning view: the table we
// announced and, per peer, the table they announced to us. The peer
// slice is an immutable snapshot grown copy-on-write as nodes join, so
// per-parcel table lookups stay single atomic loads.
type internState struct {
	our   atomic.Pointer[senderTable]
	mu    sync.Mutex // serializes peer-table growth/replacement
	peers atomic.Pointer[[]*recvTable]
}

func newInternState(nodes int) *internState {
	s := &internState{}
	tabs := make([]*recvTable, nodes)
	s.peers.Store(&tabs)
	return s
}

// peerTable returns node's announced decode table (nil if none).
func (s *internState) peerTable(node int) *recvTable {
	tabs := *s.peers.Load()
	if node < 0 || node >= len(tabs) {
		return nil
	}
	return tabs[node]
}

// setPeerTable installs (or clears) node's decode table, growing the
// snapshot as needed.
func (s *internState) setPeerTable(node int, t *recvTable) {
	if node < 0 || node >= transport.MaxJoinNodes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.peers.Load()
	size := len(old)
	if node >= size {
		size = node + 1
	}
	tabs := make([]*recvTable, size)
	copy(tabs, old)
	tabs[node] = t
	s.peers.Store(&tabs)
}

// announce freezes the prefix of the registry snapshot this node tells
// its peers about — the same helloPrefix-capped prefix internHello
// encodes, so a position this node ever puts on the wire is always inside
// every peer's copy of the table.
func (s *internState) announce(set *actionSet) {
	s.our.Store(&senderTable{set: set, n: helloPrefix(set.names)})
}

// onHello installs a peer's announcement, resolving each announced name
// against the local registry once so per-parcel decodes are pure slice
// reads. Handshakes repeat on reconnection; the last table wins, which is
// correct because a peer's announcement never changes within one process
// lifetime. A membership section from an unknown node is a join: it is
// admitted (transport, membership map, AGAS growth) before the intern
// table is stored, so by the time the joiner's first frame arrives the
// machine routes to it.
func (d *distState) onHello(from int, payload []byte) {
	if from < 0 || from >= transport.MaxJoinNodes {
		return
	}
	names, can, canTrace, mh, err := parseHello(payload)
	if err != nil {
		d.rt.recordError(fmt.Errorf("core: bad hello from node %d: %w", from, err))
		return
	}
	if mh != nil && mh.node == from {
		d.onMemberHello(from, mh)
	}
	if ps := d.ensurePeer(from); ps != nil {
		ps.traced.Store(canTrace)
	}
	if !can {
		d.intern.setPeerTable(from, nil)
		return
	}
	t := &recvTable{names: names, aids: make([]uint32, len(names))}
	for i, nm := range names {
		if _, aid, ok := d.rt.acts.lookup(nm); ok {
			t.aids[i] = aid
		} else {
			t.aids[i] = parcel.NoAID
		}
	}
	d.intern.setPeerTable(from, t)
}

// encodeTableFor returns the table to encode with when sending to node:
// our announced table if the peer declared the interning capability, nil
// (plain string frames) otherwise.
func (d *distState) encodeTableFor(node int) parcel.Table {
	if d.intern.peerTable(node) == nil {
		return nil
	}
	if t := d.intern.our.Load(); t != nil {
		return t
	}
	return nil
}

// decodeTableFor returns the table an interned frame from node decodes
// against, or nil when the peer never announced one (a protocol
// violation for fParcelI frames, handled by the caller).
func (d *distState) decodeTableFor(node int) parcel.Table {
	if t := d.intern.peerTable(node); t != nil {
		return t
	}
	return nil
}
