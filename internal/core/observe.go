package core

// Observability: the named-metric registry and the distributed-trace span
// pipeline. Metrics bridge the counters that already live on subsystems
// (locality atomics, AGAS statistics, pool and wire counters) into one
// flat px.* namespace an operator can poll over HTTP. Traces follow
// sampled parcels hop by hop — post, steal, wire send/recv, park,
// migrate, LCO trigger — across continuation chains and node boundaries:
// the sampling decision is made once at the root send, carried in the
// parcel's TraceCtx, and propagated over the wire as the capability-gated
// trailer, so one trace ID stitches the whole operation together.

import (
	"math"

	"repro/internal/locality"
	"repro/internal/metrics"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// initObservability allocates the span buffer, derives the root-sampling
// cadence from Config.TraceSampleRate, and registers the px.* metric
// bridge. It runs once in New, before the Register callback, so
// applications see a fully wired Metrics() registry.
func (r *Runtime) initObservability() {
	r.mreg = r.buildMetricsRegistry()
	// The span buffer always exists: even with a local sample rate of 0
	// this node records hops of sampled traces arriving from peers.
	r.spans = trace.NewSpans(r.cfg.TraceSpanCapacity)
	if rate := r.cfg.TraceSampleRate; rate > 0 {
		if rate >= 1 {
			r.sampleEvery = 1
		} else {
			r.sampleEvery = uint64(math.Ceil(1 / rate))
		}
	}
}

// traceParcel is the root sampling point, called once per SendFrom. An
// already-traced parcel (a continuation, a wire arrival, a failure
// delivery) keeps its inherited decision; an untraced one starts a
// sampled trace every sampleEvery-th root. With sampling off the cost is
// two branches — no allocation, preserving the zero-alloc send path.
func (r *Runtime) traceParcel(src int, p *parcel.Parcel) {
	if p.Trace.ID == 0 {
		if r.sampleEvery == 0 {
			return
		}
		if r.sampleSeq.Add(1)%r.sampleEvery != 0 {
			return
		}
		p.Trace = parcel.TraceCtx{ID: parcel.NextID(), Flags: parcel.TraceSampled}
		r.sampledRoots.Add(1)
	}
	r.emitSpan(trace.SpanPost, src, &p.Trace, p.Action)
}

// emitSpan records one hop of a sampled trace and advances the context's
// span chain: the new span's ID becomes the parent of the next hop, so
// the recorded spans form a path through localities and nodes. Unsampled
// contexts return immediately.
func (r *Runtime) emitSpan(kind trace.SpanKind, loc int, tc *parcel.TraceCtx, action string) {
	if !tc.Sampled() {
		return
	}
	sp := trace.Span{
		Trace:  tc.ID,
		ID:     parcel.NextID(),
		Parent: tc.Span,
		Kind:   kind,
		Node:   int32(r.NodeID()),
		Loc:    int32(loc),
		When:   now().UnixNano(),
		Action: action,
	}
	tc.Span = sp.ID
	r.spans.Add(sp)
}

// onSteal records operational steal spans (trace ID 0 — a steal serves
// whatever task is oldest, not one particular trace), paced by the same
// sampling cadence as root traces but on an independent sequence so steal
// volume cannot perturb which parcels get sampled.
func (r *Runtime) onSteal(loc int, remote bool) {
	if r.sampleEvery == 0 || r.opSeq.Add(1)%r.sampleEvery != 0 {
		return
	}
	action := "steal.local"
	if remote {
		action = "steal.remote"
	}
	r.spans.Add(trace.Span{
		ID:     parcel.NextID(),
		Kind:   trace.SpanSteal,
		Node:   int32(r.NodeID()),
		Loc:    int32(loc),
		When:   now().UnixNano(),
		Action: action,
	})
}

// isTriggerAction reports whether an action name is one of the LCO
// trigger family, whose dispatch is recorded as a SpanTrigger hop.
func isTriggerAction(name string) bool {
	switch name {
	case ActionLCOTrigger, ActionLCOSet, ActionLCOFail, ActionLCOSignal, ActionLCOContribute:
		return true
	}
	return false
}

// buildMetricsRegistry bridges every subsystem's existing counters into
// the px.* namespace as snapshot-time func gauges — reads of atomics that
// already exist, so registration adds nothing to any hot path.
func (r *Runtime) buildMetricsRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()

	// Scheduler: per-locality counters summed across resident localities
	// (entries for localities hosted by other nodes are nil).
	sumLocs := func(f func(l *locality.Locality) uint64) func() int64 {
		return func() int64 {
			var n uint64
			for i := range r.locs {
				if l := r.locs[i].Load(); l != nil {
					n += f(l)
				}
			}
			return int64(n)
		}
	}
	reg.RegisterFunc("px.sched.tasks", sumLocs((*locality.Locality).TasksRun))
	reg.RegisterFunc("px.sched.steals", sumLocs((*locality.Locality).Stolen))
	reg.RegisterFunc("px.sched.steals_local", sumLocs((*locality.Locality).StolenLocal))
	reg.RegisterFunc("px.sched.suspensions", sumLocs((*locality.Locality).Suspensions))
	reg.RegisterFunc("px.sched.dropped_posts", sumLocs((*locality.Locality).Dropped))
	reg.RegisterFunc("px.sched.sheds", sumLocs((*locality.Locality).Sheds))
	reg.RegisterFunc("px.sched.queue_depth", sumLocs(func(l *locality.Locality) uint64 {
		return uint64(l.QueueLen())
	}))
	reg.RegisterFunc("px.sched.queue_peak", sumLocs(func(l *locality.Locality) uint64 {
		return uint64(l.QueuePeak())
	}))

	// Parcels and threads (SLOW instrumentation).
	reg.RegisterFunc("px.parcels.sent", r.slow.ParcelsSent.Value)
	reg.RegisterFunc("px.parcels.local", r.slow.ParcelsLocal.Value)
	reg.RegisterFunc("px.parcels.parked", r.slow.Parked.Value)
	reg.RegisterFunc("px.threads.spawned", r.slow.ThreadsSpawned.Value)
	reg.RegisterFunc("px.migrations", r.slow.Migrations.Value)

	// AGAS translation.
	reg.RegisterFunc("px.agas.resolutions", func() int64 { return int64(r.agas.Resolutions.Load()) })
	reg.RegisterFunc("px.agas.cache_hits", func() int64 { return int64(r.agas.CacheHits.Load()) })
	reg.RegisterFunc("px.agas.forwards", func() int64 { return int64(r.agas.Forwards.Load()) })

	// Pools: hit rate of the pooled parcel and wire-buffer fast paths.
	reg.RegisterFunc("px.pool.parcel.hits", func() int64 { h, _, _, _ := parcel.PoolStats(); return int64(h) })
	reg.RegisterFunc("px.pool.parcel.misses", func() int64 { _, m, _, _ := parcel.PoolStats(); return int64(m) })
	reg.RegisterFunc("px.pool.wire.hits", func() int64 { _, _, h, _ := parcel.PoolStats(); return int64(h) })
	reg.RegisterFunc("px.pool.wire.misses", func() int64 { _, _, _, m := parcel.PoolStats(); return int64(m) })

	// Fault injection (0 unless configured).
	reg.RegisterFunc("px.faults.dropped", func() int64 { return int64(r.Dropped()) })
	reg.RegisterFunc("px.faults.duplicated", func() int64 { return int64(r.Duplicated()) })

	// Adaptive self-balancing (only when BalanceInterval enables it, so
	// a disabled balancer is invisible in the metric namespace too —
	// "is balancing on?" is answerable by probing for px.balance.ticks).
	if b := r.bal; b != nil {
		u := func(f func() uint64) func() int64 { return func() int64 { return int64(f()) } }
		reg.RegisterFunc("px.balance.ticks", u(b.eng.Ticks))
		reg.RegisterFunc("px.balance.moves", u(b.moves.Load))
		reg.RegisterFunc("px.balance.move_errors", u(b.moveErrs.Load))
		reg.RegisterFunc("px.balance.planned", u(b.eng.Planned))
		reg.RegisterFunc("px.balance.sampled", u(b.sampler.Sampled))
		reg.RegisterFunc("px.balance.sample_drops", u(b.sampler.Dropped))
		reg.RegisterFunc("px.balance.skipped_hysteresis", u(b.eng.SkippedHysteresis))
		reg.RegisterFunc("px.balance.skipped_ratelimit", u(b.eng.SkippedRateLimit))
		reg.RegisterFunc("px.balance.skipped_cooldown", u(b.eng.SkippedCooldown))
		reg.RegisterFunc("px.balance.load_reports", u(b.reports.Load))
	}

	// Tracing.
	reg.RegisterFunc("px.trace.spans", func() int64 { return int64(r.spans.Total()) })
	reg.RegisterFunc("px.trace.span_drops", func() int64 { return int64(r.spans.Dropped()) })
	reg.RegisterFunc("px.trace.sampled", func() int64 { return int64(r.sampledRoots.Load()) })

	// Cross-node transport (multi-node machines only).
	if d := r.dist; d != nil {
		reg.RegisterFunc("px.wire.sent", d.sent.Load)
		reg.RegisterFunc("px.wire.recv", d.recv.Load)
		reg.RegisterFunc("px.wire.interned_sent", func() int64 { return int64(d.internedSent.Load()) })
		reg.RegisterFunc("px.wire.interned_recv", func() int64 { return int64(d.internedRecv.Load()) })
		reg.RegisterFunc("px.lco.trigger.sent", func() int64 { return int64(d.lco.sent.Load()) })
		reg.RegisterFunc("px.lco.trigger.recv", func() int64 { return int64(d.lco.recv.Load()) })
		reg.RegisterFunc("px.lco.trigger.retried", func() int64 { return int64(d.lco.retried.Load()) })
		// Group-commit batcher activity, when the transport reports it
		// (the TCP transport does).
		if bt, ok := d.tr.(interface {
			BatchStats() (batches, handoffs, backpressured uint64)
		}); ok {
			reg.RegisterFunc("px.wire.batches", func() int64 { n, _, _ := bt.BatchStats(); return int64(n) })
			reg.RegisterFunc("px.wire.batch_handoffs", func() int64 { _, n, _ := bt.BatchStats(); return int64(n) })
			reg.RegisterFunc("px.wire.backpressured", func() int64 { _, _, n := bt.BatchStats(); return int64(n) })
		}
		// Lane sharding and the same-host fabric, when the transport has
		// them (the TCP transport does).
		if d.laneTr != nil {
			reg.RegisterFunc("px.wire.lanes", func() int64 { return int64(d.lanes) })
		}
		if sh, ok := d.tr.(interface{ SameHostConns() uint64 }); ok {
			reg.RegisterFunc("px.wire.samehost_conns", func() int64 { return int64(sh.SameHostConns()) })
		}

		// Membership and failure detection. Gauges read d.mb at poll time:
		// the member state is wired later in New than this registry, and is
		// nil on machines without membership support.
		mbCounter := func(f func(m *memberState) uint64) func() int64 {
			return func() int64 {
				if m := d.mb; m != nil {
					return int64(f(m))
				}
				return 0
			}
		}
		reg.RegisterFunc("px.membership.version", func() int64 { return int64(d.lmap.Version()) })
		reg.RegisterFunc("px.membership.live", func() int64 { return int64(len(d.lmap.LiveNodes())) })
		reg.RegisterFunc("px.membership.deaths", mbCounter(func(m *memberState) uint64 { return m.deaths.Load() }))
		reg.RegisterFunc("px.membership.joins", mbCounter(func(m *memberState) uint64 { return m.joins.Load() }))
		reg.RegisterFunc("px.membership.rehomes", mbCounter(func(m *memberState) uint64 { return m.rehomes.Load() }))
		reg.RegisterFunc("px.membership.released", mbCounter(func(m *memberState) uint64 { return m.released.Load() }))
		reg.RegisterFunc("px.membership.beats_sent", mbCounter(func(m *memberState) uint64 { return m.beatsSent.Load() }))
		reg.RegisterFunc("px.membership.beats_recv", mbCounter(func(m *memberState) uint64 { return m.beatsRecv.Load() }))
	}
	return reg
}
