package core

// Distributed LCOs: globally addressable futures, gates, reductions, and
// dataflow templates. A DistLCO is an ordinary AGAS object (KindLCO) whose
// whole state — counters, accumulator, subscribed waiters, and the set of
// trigger IDs already applied — is wire-encodable, so the object can
// live-migrate between nodes like any other and in-flight triggers chase
// the forwarding pointer like any parcel.
//
// Triggers are identified and idempotent: every logical trigger carries a
// machine-unique trigger ID, and every physical copy of it (a fault-
// injected duplicate, or a retransmission of an unacknowledged frame)
// carries the same ID, which the target's dedup set absorbs. Cross-node
// triggers ride dedicated fLCOSet/fLCOFire frames (see lcoframes.go) that
// are retried until acknowledged — the "acknowledging LCO protocol" the
// at-most-once parcel layer defers reliability to. Same-node triggers ride
// ordinary parcels (action px.lco.trigger), which passes them through the
// migration fence: a trigger arriving mid-migration parks and re-routes
// exactly like any parcel.
//
// Resolution fires the LCO's subscribed waiters: each waiter names another
// LCO (by GID) and the trigger operation to apply there, so fan-in trees
// (lco/collect) and remote waits compose out of the same mechanism.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/agas"
	"repro/internal/lco"
	"repro/internal/parcel"
	"repro/internal/trace"
)

// TrigOp identifies one distributed LCO trigger operation. The values are
// wire-visible (they travel in fLCOSet/fLCOFire frames and px.lco.trigger
// parcels) and must not be renumbered.
type TrigOp uint8

// Trigger operations.
const (
	// TrigSet resolves a future (or a broadcast leaf) with the value.
	TrigSet TrigOp = 1 + iota
	// TrigFail resolves the target with an error message.
	TrigFail
	// TrigSignal delivers one gate arrival.
	TrigSignal
	// TrigContribute folds the value into a reduction.
	TrigContribute
	// TrigSupply fills one dataflow input slot (Waiter.Slot / the frame's
	// slot field names the slot).
	TrigSupply
	// TrigWait subscribes a waiter: the value encodes the waiter record.
	TrigWait
)

func (op TrigOp) String() string {
	switch op {
	case TrigSet:
		return "set"
	case TrigFail:
		return "fail"
	case TrigSignal:
		return "signal"
	case TrigContribute:
		return "contribute"
	case TrigSupply:
		return "supply"
	case TrigWait:
		return "wait"
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Waiter names what a distributed LCO triggers when it resolves: the
// target LCO's global name, the trigger operation to apply there, and —
// for TrigSupply — the dataflow slot to fill. Waiters are plain data, so
// they migrate with the LCO and cross the wire in subscription triggers.
type Waiter struct {
	Target agas.GID
	Op     TrigOp
	Slot   uint32
}

// lcoKind discriminates the DistLCO state machines. Wire-visible.
type lcoKind uint8

const (
	lcoFuture lcoKind = 1 + iota
	lcoGate
	lcoReduce
	lcoDataflow
)

// DistLCO is one globally addressable LCO. All state is guarded by mu and
// wire-encodable (see the px.distlco value codec below); concurrency-
// unfriendly pieces of the process-local LCOs — callbacks, channels — are
// deliberately absent. Local observation goes through Runtime.WaitLCO,
// which subscribes a plain future exactly as a remote node would.
type DistLCO struct {
	mu       sync.Mutex
	kind     lcoKind
	need     int    // remaining triggers until resolution
	opName   string // registered reducer folding contributions / dataflow slots
	val      any    // reduce running accumulator, then the resolved value
	failMsg  string // non-empty once failed
	resolved bool
	slots    []any // dataflow inputs
	filled   []bool
	dedup    lco.Dedup
	waiters  []Waiter
}

// Pending reports how many triggers remain until resolution (0 once
// resolved).
func (l *DistLCO) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.need
}

// Resolved reports the resolution snapshot: ok is false while unresolved;
// failMsg is non-empty for a failed LCO.
func (l *DistLCO) Resolved() (v any, failMsg string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.val, l.failMsg, l.resolved
}

// WaiterCount reports how many waiters are subscribed and unfired.
func (l *DistLCO) WaiterCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

// TriggersSeen reports how many distinct identified triggers have been
// applied — the dedup set's size, for tests asserting duplicate absorption.
func (l *DistLCO) TriggersSeen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dedup.Len()
}

// ReduceFn folds one contribution into a reduction accumulator. Reducers
// are registered by name on every node (like actions: in Config.Register,
// before the transport starts), because a migrated reduction must find its
// operator wherever it lands.
type ReduceFn func(acc, v any) any

// reducerRegistry maps reducer names to bodies. Registration is a
// startup-time operation; apply-time lookups take a read lock.
type reducerRegistry struct {
	mu sync.RWMutex
	m  map[string]ReduceFn
}

func newReducerRegistry() *reducerRegistry {
	r := &reducerRegistry{m: make(map[string]ReduceFn)}
	registerBuiltinReducers(r)
	return r
}

func (rr *reducerRegistry) register(name string, fn ReduceFn) error {
	if name == "" || fn == nil {
		return fmt.Errorf("core: reducer needs a name and a body")
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if _, dup := rr.m[name]; dup {
		return fmt.Errorf("core: reducer %q already registered", name)
	}
	rr.m[name] = fn
	return nil
}

func (rr *reducerRegistry) lookup(name string) (ReduceFn, bool) {
	rr.mu.RLock()
	defer rr.mu.RUnlock()
	fn, ok := rr.m[name]
	return fn, ok
}

// Built-in reducer names, registered on every runtime.
const (
	// ReduceSum adds int64 or float64 contributions.
	ReduceSum = "px.red.sum"
	// ReduceMin keeps the smallest int64 or float64 contribution.
	ReduceMin = "px.red.min"
	// ReduceMax keeps the largest int64 or float64 contribution.
	ReduceMax = "px.red.max"
	// ReduceCount counts contributions, ignoring their values.
	ReduceCount = "px.red.count"
)

func registerBuiltinReducers(rr *reducerRegistry) {
	must := func(name string, fn ReduceFn) {
		if err := rr.register(name, fn); err != nil {
			panic(err)
		}
	}
	must(ReduceSum, func(acc, v any) any {
		switch a := acc.(type) {
		case int64:
			return a + v.(int64)
		case float64:
			return a + v.(float64)
		}
		return v
	})
	must(ReduceMin, func(acc, v any) any {
		switch a := acc.(type) {
		case int64:
			if b := v.(int64); b < a {
				return b
			}
			return a
		case float64:
			if b := v.(float64); b < a {
				return b
			}
			return a
		}
		return v
	})
	must(ReduceMax, func(acc, v any) any {
		switch a := acc.(type) {
		case int64:
			if b := v.(int64); b > a {
				return b
			}
			return a
		case float64:
			if b := v.(float64); b > a {
				return b
			}
			return a
		}
		return v
	})
	must(ReduceCount, func(acc, v any) any {
		if a, ok := acc.(int64); ok {
			return a + 1
		}
		return int64(1)
	})
}

// RegisterReducer installs a named reduction operator for distributed
// reductions and dataflow templates. On a multi-node machine register in
// Config.Register so every node — including future migration hosts —
// resolves the name.
func (r *Runtime) RegisterReducer(name string, fn ReduceFn) error {
	return r.reducers.register(name, fn)
}

// MustRegisterReducer is RegisterReducer that panics on error.
func (r *Runtime) MustRegisterReducer(name string, fn ReduceFn) {
	if err := r.RegisterReducer(name, fn); err != nil {
		panic(err)
	}
}

// checkReducer panics on an unregistered reducer name: LCO construction is
// a program-structure operation, and a typo'd operator should fail at the
// construction site, not when the n-th contribution arrives.
func (r *Runtime) checkReducer(name string) {
	if _, ok := r.reducers.lookup(name); !ok {
		panic(fmt.Sprintf("core: reducer %q not registered", name))
	}
}

// NewDistFutureAt creates a globally addressable single-assignment future
// at resident locality loc, optionally pre-subscribed to waiters. Any node
// may resolve it with SetLCO/FailLCO (or a parcel continuation naming its
// GID) and observe it with WaitLCO.
func (r *Runtime) NewDistFutureAt(loc int, waiters ...Waiter) agas.GID {
	l := &DistLCO{kind: lcoFuture, need: 1, waiters: append([]Waiter(nil), waiters...)}
	return r.NewObjectAt(loc, agas.KindLCO, l)
}

// NewDistGateAt creates a globally addressable and-gate at loc expecting
// n >= 1 signals. Duplicated signals with the same trigger ID count once.
func (r *Runtime) NewDistGateAt(loc, n int, waiters ...Waiter) agas.GID {
	if n < 1 {
		panic(fmt.Sprintf("core: distributed gate needs at least 1 signal, got %d", n))
	}
	l := &DistLCO{kind: lcoGate, need: n, waiters: append([]Waiter(nil), waiters...)}
	return r.NewObjectAt(loc, agas.KindLCO, l)
}

// NewDistReduceAt creates a globally addressable reduction at loc
// expecting n >= 1 contributions folded by the registered reducer op,
// starting from init (which must be wire-encodable for the object to
// migrate).
func (r *Runtime) NewDistReduceAt(loc, n int, op string, init any, waiters ...Waiter) agas.GID {
	if n < 1 {
		panic(fmt.Sprintf("core: distributed reduce needs at least 1 contribution, got %d", n))
	}
	r.checkReducer(op)
	l := &DistLCO{kind: lcoReduce, need: n, opName: op, val: init, waiters: append([]Waiter(nil), waiters...)}
	return r.NewObjectAt(loc, agas.KindLCO, l)
}

// NewDistDataflowAt creates a globally addressable dataflow template at
// loc with n >= 1 input slots. When every slot has been supplied
// (TrigSupply with the slot index) the registered reducer op folds the
// slots in index order and the result resolves the template.
func (r *Runtime) NewDistDataflowAt(loc, n int, op string, waiters ...Waiter) agas.GID {
	if n < 1 {
		panic(fmt.Sprintf("core: distributed dataflow needs at least 1 slot, got %d", n))
	}
	r.checkReducer(op)
	l := &DistLCO{
		kind: lcoDataflow, need: n, opName: op,
		slots: make([]any, n), filled: make([]bool, n),
		waiters: append([]Waiter(nil), waiters...),
	}
	return r.NewObjectAt(loc, agas.KindLCO, l)
}

// nextTID mints a machine-unique trigger ID: the node index salts the top
// bits so IDs minted by different processes never collide in a dedup set.
func (r *Runtime) nextTID() uint64 {
	return uint64(r.NodeID()+1)<<48 | (r.tidSeq.Add(1) & (1<<48 - 1))
}

// parcelTriggerID derives the trigger ID for triggers borne by an
// ordinary parcel — a continuation naming a DistLCO through the px.lco.*
// builtins. Continuations inherit their chain's parcel ID (see execute),
// so a fault-duplicated parcel and the continuations it spawns all
// derive the same ID as the original's and the duplicates are absorbed.
// Distinctness holds because parcel IDs are machine-unique: the minting
// process stamps its origin salt into the ID's top 16 bits (see
// parcel.SetIDOrigin) and inheritance carries that salt across nodes
// unchanged — a chain minted on node A keeps A's identity however many
// localities its continuations fire from — while the remaining
// continuation-stack depth separates the steps of one chain (a chain may
// legally trigger the same LCO at two steps). Bit 63 separates
// parcel-derived IDs from node-minted ones. The sequence truncates to 40
// bits here; a collision needs two same-origin parcels exactly 2^40
// mintings apart hitting one LCO at equal depth.
func parcelTriggerID(p *parcel.Parcel) uint64 {
	return 1<<63 |
		(p.ID>>48&0x7fff)<<48 |
		(uint64(len(p.Cont))&0xff)<<40 |
		(p.ID & (1<<40 - 1))
}

// SetLCO resolves the LCO named g with v, from resident locality src. The
// trigger is identified and idempotent: a duplicated delivery applies
// once. v must be wire-encodable.
func (r *Runtime) SetLCO(src int, g agas.GID, v any) error {
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return err
	}
	r.triggerLCO(src, r.nextTID(), TrigSet, 0, g, raw, false)
	return nil
}

// FailLCO resolves the LCO named g with an error.
func (r *Runtime) FailLCO(src int, g agas.GID, msg string) {
	raw, _ := parcel.EncodeAny(msg)
	r.triggerLCO(src, r.nextTID(), TrigFail, 0, g, raw, false)
}

// SignalLCO delivers one identified gate arrival to g.
func (r *Runtime) SignalLCO(src int, g agas.GID) {
	r.triggerLCO(src, r.nextTID(), TrigSignal, 0, g, nil, false)
}

// ContributeLCO folds v into the reduction named g.
func (r *Runtime) ContributeLCO(src int, g agas.GID, v any) error {
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return err
	}
	r.triggerLCO(src, r.nextTID(), TrigContribute, 0, g, raw, false)
	return nil
}

// SupplyLCO fills dataflow slot of the template named g with v.
func (r *Runtime) SupplyLCO(src int, g agas.GID, slot uint32, v any) error {
	raw, err := parcel.EncodeAny(v)
	if err != nil {
		return err
	}
	r.triggerLCO(src, r.nextTID(), TrigSupply, slot, g, raw, false)
	return nil
}

// SubscribeLCO registers waiter w on the LCO named g, wherever in the
// machine it lives: when g resolves, w.Op is applied to w.Target with the
// resolved value (TrigFail with the error message on failure). Subscribing
// to an already-resolved LCO fires immediately.
func (r *Runtime) SubscribeLCO(src int, g agas.GID, w Waiter) {
	if w.Target.IsNil() {
		panic("core: subscribe with nil waiter target")
	}
	raw := parcel.NewArgs().GID(w.Target).Uint64(uint64(w.Op)).Uint64(uint64(w.Slot)).Encode()
	r.triggerLCO(src, r.nextTID(), TrigWait, 0, g, raw, false)
}

// WaitLCO returns a plain local future (homed at resident locality src)
// that resolves when the LCO named g does — the remote-wait primitive:
// the future's name subscribes to g exactly as any waiter would, so it
// keeps working while g migrates between nodes. The future's global name
// is freed once it fires; use Context.Await (or Future.Get off-thread) to
// block on it. Subscribing to a name that was already freed leaves the
// future unresolved forever (the straggler-tolerant trigger protocol
// cannot distinguish a wrong name from a late duplicate), so wait before
// freeing, not after.
func (r *Runtime) WaitLCO(src int, g agas.GID) *lco.Future {
	fgid, fut := r.NewFutureAt(src)
	fut.OnReady(func(any, error) { r.FreeObject(fgid) })
	r.trackRemoteFuture(fgid, fut.OnReady, g)
	r.SubscribeLCO(src, g, Waiter{Target: fgid, Op: TrigSet})
	return fut
}

// decodeWaiter parses the value record built by SubscribeLCO.
func decodeWaiter(raw []byte) (Waiter, error) {
	rd := parcel.NewReader(raw)
	w := Waiter{Target: rd.GID()}
	w.Op = TrigOp(rd.Uint64())
	w.Slot = uint32(rd.Uint64())
	if err := rd.Err(); err != nil {
		return Waiter{}, fmt.Errorf("core: bad waiter record: %w", err)
	}
	if w.Target.IsNil() {
		return Waiter{}, errors.New("core: waiter with nil target")
	}
	return w, nil
}

// encodeTriggerArgs builds the px.lco.trigger argument record. value is
// copied into the record, so transport read buffers may be reused.
func encodeTriggerArgs(tid uint64, op TrigOp, slot uint32, value []byte) []byte {
	return parcel.NewArgs().Uint64(tid).Uint64(uint64(op)).Uint64(uint64(slot)).Bytes(value).Encode()
}

// triggerLCO routes one identified trigger toward the LCO named g. A
// target owned by another node rides a dedicated fLCOSet/fLCOFire frame —
// retried until acknowledged, so a dropped frame is retransmitted and the
// target's dedup set absorbs the duplicates. A locally owned target rides
// an ordinary parcel, which passes it through the migration fence and the
// forwarding chase like any other access. fired marks resolution
// deliveries (waiter fires) for the frame type and trace.
func (r *Runtime) triggerLCO(src int, tid uint64, op TrigOp, slot uint32, g agas.GID, value []byte, fired bool) {
	r.checkResident(src)
	if g.IsNil() {
		panic("core: trigger to nil GID")
	}
	if r.ring != nil {
		r.ring.Emitf(trace.KindLCOTrigger, src, "%s -> %v tid %d", op, g, tid)
	}
	if r.dist != nil {
		if owner, err := r.agas.ResolveCached(src, g); err == nil {
			if node, known := r.dist.lmap.NodeOf(owner); known && node != r.dist.node {
				r.dist.sendLCOTrigger(node, tid, op, slot, 0, g, value, fired, parcel.TraceCtx{})
				return
			}
		}
		// A resolution error falls through to the parcel path, which
		// delivers the failure through the standard accounting.
	}
	p := parcel.Acquire(g, ActionLCOTrigger, encodeTriggerArgs(tid, op, slot, value))
	r.SendFrom(src, p)
}

// fireWaiter delivers one resolution to a subscribed waiter: the waiter's
// operation with the resolved value, or TrigFail with the error message.
func (r *Runtime) fireWaiter(src int, w Waiter, val any, failMsg string) {
	if failMsg != "" {
		raw, _ := parcel.EncodeAny(failMsg)
		r.triggerLCO(src, r.nextTID(), TrigFail, 0, w.Target, raw, true)
		return
	}
	raw, err := parcel.EncodeAny(val)
	if err != nil {
		raw, _ = parcel.EncodeAny(fmt.Sprintf("resolved value not wire-encodable: %v", err))
		r.triggerLCO(src, r.nextTID(), TrigFail, 0, w.Target, raw, true)
		return
	}
	r.triggerLCO(src, r.nextTID(), w.Op, w.Slot, w.Target, raw, true)
}

// applyDistTrigger applies one identified trigger to a locally hosted
// DistLCO, firing waiters on resolution. It runs inside a parcel action
// (a work unit is charged), so waiter fires charge their own legs through
// the normal send path.
func (r *Runtime) applyDistTrigger(loc int, l *DistLCO, tid uint64, op TrigOp, slot uint32, raw []byte) error {
	var v any
	var err error
	switch op {
	case TrigSet, TrigContribute, TrigSupply, TrigFail:
		if v, err = parcel.DecodeAny(raw); err != nil {
			return fmt.Errorf("core: %s trigger value: %w", op, err)
		}
	case TrigWait:
		w, werr := decodeWaiter(raw)
		if werr != nil {
			return werr
		}
		l.mu.Lock()
		if l.dedup.Contains(tid) {
			l.mu.Unlock()
			return nil
		}
		l.dedup.Add(tid)
		if l.resolved {
			val, failMsg := l.val, l.failMsg
			l.mu.Unlock()
			r.fireWaiter(loc, w, val, failMsg)
			return nil
		}
		l.waiters = append(l.waiters, w)
		l.mu.Unlock()
		return nil
	case TrigSignal:
		// no value
	default:
		return fmt.Errorf("core: unknown trigger op %d", op)
	}

	l.mu.Lock()
	if l.dedup.Contains(tid) {
		l.mu.Unlock()
		return nil
	}
	if l.resolved {
		// One-shot: late or unidentified-duplicate triggers are ignored.
		l.mu.Unlock()
		return nil
	}
	if op == TrigFail {
		msg, _ := v.(string)
		if msg == "" {
			msg = "LCO failed"
		}
		l.dedup.Add(tid)
		l.failMsg = msg
		waiters := l.resolveLocked()
		l.mu.Unlock()
		for _, w := range waiters {
			r.fireWaiter(loc, w, nil, msg)
		}
		return nil
	}
	if aerr := l.applyValueLocked(r, op, slot, v); aerr != nil {
		// Deliberately not recorded in the dedup set: the trigger took no
		// effect, so it must not be counted as applied — a duplicate that
		// is still in flight stays free to retry, and every failing copy
		// surfaces through the action error path instead of being
		// silently absorbed as a duplicate of a phantom success. (Cross-
		// node frames are acked on receipt, so a frame whose apply fails
		// is not retransmitted; the recorded error is the signal.)
		l.mu.Unlock()
		return aerr
	}
	l.dedup.Add(tid)
	if l.need > 0 {
		l.mu.Unlock()
		return nil
	}
	waiters := l.resolveLocked()
	val, failMsg := l.val, l.failMsg
	l.mu.Unlock()
	for _, w := range waiters {
		r.fireWaiter(loc, w, val, failMsg)
	}
	return nil
}

// applyValueLocked advances the state machine by one value-carrying
// trigger; the caller holds l.mu and has already handled dedup,
// resolution, and TrigFail.
func (l *DistLCO) applyValueLocked(r *Runtime, op TrigOp, slot uint32, v any) error {
	switch {
	case op == TrigSet && l.kind == lcoFuture:
		l.val = v
		l.need = 0
	case op == TrigSignal && l.kind == lcoGate:
		l.need--
	case op == TrigContribute && l.kind == lcoReduce:
		fn, ok := r.reducers.lookup(l.opName)
		if !ok {
			return fmt.Errorf("core: reducer %q not registered on this node", l.opName)
		}
		l.val = fn(l.val, v)
		l.need--
	case op == TrigSupply && l.kind == lcoDataflow:
		if int(slot) >= len(l.slots) {
			return fmt.Errorf("core: dataflow slot %d out of range [0,%d)", slot, len(l.slots))
		}
		if l.filled[slot] {
			// A distinct trigger refilling a slot is a program bug; a
			// duplicated one was already absorbed by dedup.
			return fmt.Errorf("core: dataflow slot %d already supplied", slot)
		}
		l.filled[slot] = true
		l.slots[slot] = v
		l.need--
		if l.need == 0 {
			fn, ok := r.reducers.lookup(l.opName)
			if !ok {
				return fmt.Errorf("core: reducer %q not registered on this node", l.opName)
			}
			acc := l.slots[0]
			for i := 1; i < len(l.slots); i++ {
				acc = fn(acc, l.slots[i])
			}
			l.val = acc
		}
	default:
		return fmt.Errorf("core: %s trigger on %s LCO", op, l.kindName())
	}
	return nil
}

// resolveLocked marks the LCO resolved and detaches its waiters; the
// caller holds l.mu and fires the returned waiters after unlocking.
func (l *DistLCO) resolveLocked() []Waiter {
	l.resolved = true
	l.need = 0
	waiters := l.waiters
	l.waiters = nil
	return waiters
}

func (l *DistLCO) kindName() string {
	switch l.kind {
	case lcoFuture:
		return "future"
	case lcoGate:
		return "gate"
	case lcoReduce:
		return "reduce"
	case lcoDataflow:
		return "dataflow"
	}
	return fmt.Sprintf("kind%d", uint8(l.kind))
}
