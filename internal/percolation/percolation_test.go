package percolation

import (
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/network"
)

// testMachine builds a runtime whose remote fetches cost ~latency, with
// data objects spread over the non-resource localities.
func testMachine(t *testing.T, latency time.Duration, nData int) (*core.Runtime, []Task) {
	t.Helper()
	net := network.NewCrossbar(4, network.Params{InjectionOverhead: latency})
	rt := core.New(core.Config{Localities: 4, WorkersPerLocality: 4, Net: net})
	t.Cleanup(rt.Shutdown)
	RegisterActions(rt)
	tasks := make([]Task, nData)
	for i := range tasks {
		data := make([]float64, 64)
		for j := range data {
			data[j] = float64(i + j)
		}
		gid := rt.NewDataAt(1+i%3, data)
		tasks[i] = Task{Data: gid, Compute: func(v any) any {
			s := 0.0
			for _, x := range v.([]float64) {
				s += x
			}
			// Simulated kernel time comparable to the fetch latency.
			time.Sleep(latency)
			return s
		}}
	}
	return rt, tasks
}

func TestDemandFetchCompletesAllTasks(t *testing.T) {
	rt, tasks := testMachine(t, 200*time.Microsecond, 8)
	p := New(rt, 0, 0)
	st, err := p.RunDemandFetch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 8 {
		t.Fatalf("completed %d tasks", st.Tasks)
	}
	if st.StallTime == 0 {
		t.Fatal("demand fetch shows no stall despite network latency")
	}
}

func TestPercolationCompletesAllTasks(t *testing.T) {
	rt, tasks := testMachine(t, 200*time.Microsecond, 8)
	p := New(rt, 0, 2)
	st, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 8 {
		t.Fatalf("completed %d tasks", st.Tasks)
	}
}

func TestPercolationBeatsDemandFetch(t *testing.T) {
	const lat = 500 * time.Microsecond
	rtA, tasksA := testMachine(t, lat, 12)
	demand, err := New(rtA, 0, 0).RunDemandFetch(tasksA)
	if err != nil {
		t.Fatal(err)
	}
	rtB, tasksB := testMachine(t, lat, 12)
	perc, err := New(rtB, 0, 3).Run(tasksB)
	if err != nil {
		t.Fatal(err)
	}
	// With kernel time ~ latency, percolation should roughly halve the
	// makespan; require at least a 25% win to keep the test robust.
	if float64(perc.Elapsed) > 0.75*float64(demand.Elapsed) {
		t.Fatalf("percolation %v not faster than demand %v", perc.Elapsed, demand.Elapsed)
	}
	if perc.Utilization() <= demand.Utilization() {
		t.Fatalf("percolation util %.2f <= demand util %.2f",
			perc.Utilization(), demand.Utilization())
	}
}

func TestMigratedPrestageCompletesAndRelocates(t *testing.T) {
	rt, tasks := testMachine(t, 200*time.Microsecond, 8)
	p := New(rt, 0, 2)
	st, err := p.RunMigrated(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 8 {
		t.Fatalf("completed %d tasks", st.Tasks)
	}
	rt.Wait()
	// Prestaging by migration leaves every object resident with the
	// resource: the burst's data moved toward the work for good.
	for i, task := range tasks {
		owner, err := rt.AGAS().Owner(task.Data)
		if err != nil || owner != 0 {
			t.Fatalf("task %d data at L%d (%v), want resource L0", i, owner, err)
		}
		if _, ok := rt.LocalObject(0, task.Data); !ok {
			t.Fatalf("task %d payload missing from the resource store", i)
		}
	}
}

func TestMigratedPrestageBeatsDemandFetch(t *testing.T) {
	const lat = 500 * time.Microsecond
	rtA, tasksA := testMachine(t, lat, 12)
	demand, err := New(rtA, 0, 0).RunDemandFetch(tasksA)
	if err != nil {
		t.Fatal(err)
	}
	rtB, tasksB := testMachine(t, lat, 12)
	mig, err := New(rtB, 0, 3).RunMigrated(tasksB)
	if err != nil {
		t.Fatal(err)
	}
	if float64(mig.Elapsed) > 0.9*float64(demand.Elapsed) {
		t.Fatalf("migrated prestage %v not faster than demand %v", mig.Elapsed, demand.Elapsed)
	}
}

func TestDepthZeroEqualsDemandFetch(t *testing.T) {
	rt, tasks := testMachine(t, 100*time.Microsecond, 4)
	st, err := New(rt, 0, 0).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 {
		t.Fatalf("completed %d", st.Tasks)
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	rt, _ := testMachine(t, time.Microsecond, 1)
	bad := Task{
		Data:    agas.GID{Home: 1, Kind: agas.KindData, Seq: 999999},
		Compute: func(v any) any { return nil },
	}
	if _, err := New(rt, 0, 1).Run([]Task{bad}); err == nil {
		t.Fatal("unknown data GID did not error")
	}
}

func TestMigratedPrestageErrorStopsMover(t *testing.T) {
	rt, tasks := testMachine(t, time.Microsecond, 6)
	// An unknown GID mid-stream errors the run; the mover goroutine must
	// stop rather than leak (the runtime shutdown in t.Cleanup would
	// deadlock against a leaked mover still issuing migrations).
	tasks[2].Data = agas.GID{Home: 1, Kind: agas.KindData, Seq: 999999}
	if _, err := New(rt, 0, 2).RunMigrated(tasks); err == nil {
		t.Fatal("unknown data GID did not error")
	}
}

func TestNegativeDepthPanics(t *testing.T) {
	rt, _ := testMachine(t, time.Microsecond, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative depth did not panic")
		}
	}()
	New(rt, 0, -1)
}

func TestUtilizationBounds(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 {
		t.Fatal("zero stats utilization nonzero")
	}
	s = Stats{Elapsed: time.Second, ComputeBusy: 2 * time.Second}
	if s.Utilization() != 1 {
		t.Fatal("utilization not clamped to 1")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunMigratedCompletesIntoDistributedGate(t *testing.T) {
	rt, tasks := testMachine(t, 100*time.Microsecond, 6)
	// The completion gate is a distributed LCO: any locality (or node, on
	// a multi-process machine) can await the prestaged burst.
	gate := rt.NewDistGateAt(2, 1)
	done := rt.WaitLCO(3, gate)
	p := New(rt, 0, 2)
	p.Done = gate
	st, err := p.RunMigrated(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 6 {
		t.Fatalf("completed %d tasks", st.Tasks)
	}
	if _, err := done.Get(); err != nil {
		t.Fatalf("completion gate: %v", err)
	}
	rt.Wait()
	if errs := rt.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
}
