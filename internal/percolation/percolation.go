// Package percolation implements the ParalleX percolation mechanism:
// prestaging task data into fast memory near a precious compute resource so
// the resource never idles waiting on remote fetches. Unlike prefetching —
// which the compute element issues itself, paying the overhead — percolation
// is driven by ancillary machinery (here, the percolator goroutine pipeline)
// on behalf of the resource.
//
// The package provides two execution disciplines over the same task stream
// so experiment E7/A4 can compare them: demand fetch (fetch, then compute,
// serially) and percolated (fetches for up to Depth future tasks overlap
// the current computation).
package percolation

import (
	"fmt"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/parcel"
)

// ActionRead is the action percolation uses to pull a data object's value
// to the staging area.
const ActionRead = "px.percolate.read"

// RegisterActions installs percolation's actions on rt. Call once per
// runtime before using a Percolator.
func RegisterActions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionRead, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		return target, nil // the continuation machinery encodes the value
	})
}

// Task is one unit of work for the precious resource: remote data named by
// Data, and a compute kernel over the staged value.
type Task struct {
	// Data names the input object (resident on some other locality).
	Data agas.GID
	// Compute runs on the resource once the data is staged. The work
	// duration should dwarf per-task runtime overhead for the percolation
	// effect to be visible — the same granularity constraint the paper
	// discusses under Overhead.
	Compute func(data any) any
}

// Stats reports one run over a task stream.
type Stats struct {
	// Elapsed is the wall-clock makespan.
	Elapsed time.Duration
	// ComputeBusy is the total time the resource spent computing.
	ComputeBusy time.Duration
	// StallTime is the time the resource idled waiting for data.
	StallTime time.Duration
	// Tasks is the number of tasks completed.
	Tasks int
}

// Utilization is ComputeBusy / Elapsed in [0,1].
func (s Stats) Utilization() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	u := float64(s.ComputeBusy) / float64(s.Elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d elapsed=%v busy=%v stall=%v util=%.2f",
		s.Tasks, s.Elapsed, s.ComputeBusy, s.StallTime, s.Utilization())
}

// Percolator drives a task stream through the precious resource at the
// given locality.
type Percolator struct {
	rt *core.Runtime
	// Resource is the locality hosting the precious compute element.
	Resource int
	// Depth is the prestage pipeline depth (number of fetches allowed to
	// run ahead of the computation). Depth 0 degenerates to demand fetch.
	Depth int
	// Done optionally names a distributed LCO (typically a gate minted
	// with Runtime.NewDistGateAt) signalled when a run completes its task
	// stream, so observers anywhere in the machine — including on other
	// nodes — synchronize on the prestaged burst without polling. Nil
	// disables the completion signal.
	Done agas.GID
}

// signalDone fires the completion gate, if one is configured.
func (p *Percolator) signalDone() {
	if !p.Done.IsNil() {
		p.rt.SignalLCO(p.Resource, p.Done)
	}
}

// New returns a percolator for the resource locality.
func New(rt *core.Runtime, resource, depth int) *Percolator {
	if depth < 0 {
		panic("percolation: negative depth")
	}
	return &Percolator{rt: rt, Resource: resource, Depth: depth}
}

// fetch pulls the value of one data object to the resource locality,
// returning a future resolved with the staged value.
func (p *Percolator) fetch(t Task) <-chan any {
	out := make(chan any, 1)
	fut := p.rt.CallFrom(p.Resource, t.Data, ActionRead, nil)
	fut.OnReady(func(v any, err error) {
		if err != nil {
			out <- err
		} else {
			out <- v
		}
	})
	return out
}

// RunDemandFetch executes tasks strictly serially: fetch data, compute,
// repeat. The resource pays full exposed latency per task — the baseline
// percolation was designed to beat.
func (p *Percolator) RunDemandFetch(tasks []Task) (Stats, error) {
	var st Stats
	start := time.Now()
	for _, t := range tasks {
		fetchStart := time.Now()
		v := <-p.fetch(t)
		if err, bad := v.(error); bad {
			return st, err
		}
		st.StallTime += time.Since(fetchStart)
		computeStart := time.Now()
		t.Compute(v)
		st.ComputeBusy += time.Since(computeStart)
		st.Tasks++
	}
	st.Elapsed = time.Since(start)
	p.signalDone()
	return st, nil
}

// RunMigrated executes tasks with migration prestaging: instead of pulling
// a copy of each task's data to the resource (Run), the object itself is
// live-migrated to the resource locality ahead of the predicted parcel
// burst, up to Depth objects ahead of the computation. After the burst the
// data lives with the resource — follow-up accesses are local — which is
// the AGAS-v2 flavor of percolation: the runtime moves data toward work
// exactly as parcels move work toward data. With Depth == 0 it degenerates
// to demand fetch.
//
// The objects must be owned by this node and wire-encodable when the
// resource locality is hosted elsewhere (see Runtime.Migrate).
func (p *Percolator) RunMigrated(tasks []Task) (Stats, error) {
	if p.Depth == 0 {
		return p.RunDemandFetch(tasks)
	}
	var st Stats
	start := time.Now()
	staged := make([]chan error, len(tasks))
	for i := range staged {
		staged[i] = make(chan error, 1)
	}
	// The ancillary mover: migrates task data toward the resource, at most
	// Depth objects ahead of the consumer. window permits are released as
	// the consumer retires tasks; done stops the mover when the consumer
	// bails out early, so an error cannot leak the goroutine (or keep it
	// migrating objects nobody will compute on).
	window := make(chan struct{}, p.Depth)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for i := range tasks {
			select {
			case window <- struct{}{}:
			case <-done:
				return
			}
			staged[i] <- p.rt.Migrate(tasks[i].Data, p.Resource) // buffered: never blocks
		}
	}()
	for i := range tasks {
		fetchStart := time.Now()
		if err := <-staged[i]; err != nil {
			return st, err
		}
		// The object now lives here: the read resolves locally.
		v := <-p.fetch(tasks[i])
		<-window
		if err, bad := v.(error); bad {
			return st, err
		}
		st.StallTime += time.Since(fetchStart)
		computeStart := time.Now()
		tasks[i].Compute(v)
		st.ComputeBusy += time.Since(computeStart)
		st.Tasks++
	}
	st.Elapsed = time.Since(start)
	p.signalDone()
	return st, nil
}

// Run executes tasks with percolation: a staging pipeline keeps up to Depth
// fetches in flight ahead of the computation, so transfer of task k+1..k+D
// overlaps compute of task k. With Depth == 0 it behaves like demand fetch.
func (p *Percolator) Run(tasks []Task) (Stats, error) {
	if p.Depth == 0 {
		return p.RunDemandFetch(tasks)
	}
	var st Stats
	start := time.Now()
	staged := make([]<-chan any, len(tasks))
	next := 0 // next task to start fetching
	for i := range tasks {
		// Keep the staging window full.
		for next < len(tasks) && next <= i+p.Depth {
			staged[next] = p.fetch(tasks[next])
			next++
		}
		fetchStart := time.Now()
		v := <-staged[i]
		staged[i] = nil
		if err, bad := v.(error); bad {
			return st, err
		}
		st.StallTime += time.Since(fetchStart)
		computeStart := time.Now()
		tasks[i].Compute(v)
		st.ComputeBusy += time.Since(computeStart)
		st.Tasks++
	}
	st.Elapsed = time.Since(start)
	p.signalDone()
	return st, nil
}
