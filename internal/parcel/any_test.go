package parcel

import (
	"fmt"
	"testing"
)

// testPoint exercises the custom value codec registry.
type testPoint struct{ X, Y int64 }

func init() {
	RegisterValueCodec("test.point", ValueCodec{
		Encode: func(v any) ([]byte, bool, error) {
			p, ok := v.(testPoint)
			if !ok {
				return nil, false, nil
			}
			return NewArgs().Int64(p.X).Int64(p.Y).Encode(), true, nil
		},
		Decode: func(payload []byte) (any, error) {
			r := NewReader(payload)
			p := testPoint{X: r.Int64(), Y: r.Int64()}
			return p, r.Err()
		},
	})
}

func TestCustomValueCodecRoundTrip(t *testing.T) {
	raw, err := EncodeAny(testPoint{X: 3, Y: -9})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeAny(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p := v.(testPoint); p.X != 3 || p.Y != -9 {
		t.Fatalf("roundtrip = %+v", p)
	}
	// Built-in types must still bypass the custom path.
	raw, err = EncodeAny(int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := DecodeAny(raw); err != nil || v.(int64) != 5 {
		t.Fatalf("builtin roundtrip = %v, %v", v, err)
	}
}

func TestCustomValueCodecUnknownAndCorrupt(t *testing.T) {
	if _, err := EncodeAny(struct{ q int }{}); err == nil {
		t.Fatal("unencodable type accepted")
	}
	// A record naming an unregistered codec must error, not panic.
	raw := encodeCustom("test.nope", []byte{1, 2, 3})
	if _, err := DecodeAny(raw); err == nil {
		t.Fatal("unregistered codec decoded")
	}
	// Truncations at every boundary.
	good, err := EncodeAny(testPoint{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeAny(good[:cut]); err == nil {
			t.Fatalf("truncated custom record at %d decoded", cut)
		}
	}
}

func TestRegisterValueCodecValidation(t *testing.T) {
	for name, c := range map[string]ValueCodec{
		"":         {Encode: func(any) ([]byte, bool, error) { return nil, false, nil }, Decode: func([]byte) (any, error) { return nil, nil }},
		"test.nil": {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid codec %q accepted", name)
				}
			}()
			RegisterValueCodec(name, c)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate codec name accepted")
		}
	}()
	RegisterValueCodec("test.point", ValueCodec{
		Encode: func(any) ([]byte, bool, error) { return nil, false, nil },
		Decode: func([]byte) (any, error) { return nil, fmt.Errorf("no") },
	})
}
