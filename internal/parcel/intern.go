package parcel

import (
	"encoding/binary"
	"fmt"
)

// Interned wire form. The plain format (Encode/Decode) spells every action
// name out as a length-prefixed string — one string allocation per parcel
// plus one per continuation on every decode. Peers that have exchanged
// action tables (see the core distributed layer: the table rides the
// transport handshake hello) instead refer to actions by their dense table
// position, and the decoder hands back the interned name string it already
// holds: the steady-state decode allocates nothing.
//
// Every action reference degrades independently: a name the sender has not
// announced (registered after the table was exchanged, or past the
// announced prefix) is encoded as a string exactly as in the plain format.
// A parcel may therefore mix interned and spelled-out references, and a
// machine mixing interning-aware and string-only nodes interoperates —
// string-only nodes simply never see the interned frame kind, because
// senders only use it toward peers that announced a table.
//
// Layout: identical to the plain format except each action reference is
//
//	u16 tag | payload
//
// where tag == InternSentinel means payload is a u32 table position, and
// any other tag is a string length followed by that many bytes.

// InternSentinel is the u16 tag marking an interned (u32 table position)
// action reference. String-form action names in the interned format are
// capped one byte short of it so the two cases never collide.
const InternSentinel = 0xFFFF

// MaxInternString bounds action-name length in the interned wire form.
const MaxInternString = InternSentinel - 1

// Table resolves action names to dense wire positions and back. The
// sender and receiver sides are asymmetric: IDOf consults the table the
// local node announced to the peer, ActionOf consults the table the peer
// announced to us.
type Table interface {
	// IDOf returns the wire position for name, when the name is inside the
	// announced prefix.
	IDOf(name string) (uint32, bool)
	// ActionOf resolves a received wire position to the action's name and
	// the local dispatch ID (NoAID when the action is known to the peer
	// but not registered locally). ok is false for positions outside the
	// peer's announced table — a corrupt or misordered frame.
	ActionOf(id uint32) (name string, aid uint32, ok bool)
}

// EncodeInterned appends the interned wire form of p to dst, referring to
// actions by table position where t knows them and by string otherwise.
// It panics on the same wire-limit violations as Encode, plus on action
// names too long for the interned string fallback — check InternEncodable
// first for names of unchecked origin (registration already bounds
// registered names).
func (p *Parcel) EncodeInterned(dst []byte, t Table) []byte {
	return p.encode(dst, true, t)
}

// InternEncodable reports whether every action reference fits the
// interned wire form. Only unregistrable names fail — the plain format
// admits one extra byte of action-name length (MaxString) that the
// interned form reserves as its sentinel — so callers fall back to the
// plain Encode for such parcels instead of panicking.
func (p *Parcel) InternEncodable() bool {
	if len(p.Action) > MaxInternString {
		return false
	}
	for _, c := range p.Cont {
		if len(c.Action) > MaxInternString {
			return false
		}
	}
	return true
}

// DecodePooledInterned parses an interned-form parcel into a pooled
// parcel, resolving table positions through t. Release the parcel when
// dispatch completes.
func DecodePooledInterned(src []byte, t Table) (*Parcel, []byte, error) {
	p := blank()
	rest, err := DecodeIntoInterned(p, src, t)
	if err != nil {
		Release(p)
		return nil, rest, err
	}
	return p, rest, nil
}

// DecodeIntoInterned is DecodeInto for the interned wire form. The
// parcel's AID is set for interned references resolved by t, so dispatch
// can index the action table directly.
func DecodeIntoInterned(p *Parcel, src []byte, t Table) ([]byte, error) {
	return decodeInto(p, src, true, t, false)
}

// appendActionRef writes one action reference: interned position when the
// table covers the name, string form otherwise.
func appendActionRef(dst []byte, name string, t Table) []byte {
	if t != nil {
		if id, ok := t.IDOf(name); ok {
			dst = binary.LittleEndian.AppendUint16(dst, InternSentinel)
			return binary.LittleEndian.AppendUint32(dst, id)
		}
	}
	if len(name) > MaxInternString {
		panic(fmt.Sprintf("parcel: action name of %d bytes exceeds interned wire limit %d", len(name), MaxInternString))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	return append(dst, name...)
}

// readActionRef parses one action reference, resolving interned positions
// through t.
func readActionRef(src []byte, t Table) (name string, aid uint32, rest []byte, err error) {
	if len(src) < 2 {
		return "", NoAID, src, fmt.Errorf("short action ref")
	}
	tag := binary.LittleEndian.Uint16(src)
	src = src[2:]
	if tag == InternSentinel {
		if len(src) < 4 {
			return "", NoAID, src, fmt.Errorf("short interned action id")
		}
		id := binary.LittleEndian.Uint32(src)
		src = src[4:]
		if t == nil {
			return "", NoAID, src, fmt.Errorf("interned action %d without a peer table", id)
		}
		name, aid, ok := t.ActionOf(id)
		if !ok {
			return "", NoAID, src, fmt.Errorf("interned action %d outside peer table", id)
		}
		return name, aid, src, nil
	}
	n := int(tag)
	if len(src) < n {
		return "", NoAID, src, fmt.Errorf("action string truncated: want %d have %d", n, len(src))
	}
	return string(src[:n]), NoAID, src[n:], nil
}
