package parcel

import (
	"encoding/binary"
	"fmt"
)

// Distributed trace context. A sampled parcel carries a trace ID, the span
// ID of its most recent hop, and a flags byte across every hop of its
// continuation chain, so one logical operation can be followed post →
// wire → trigger across node boundaries. The context travels as a
// fixed-size trailer APPENDED AFTER the standard parcel wire form rather
// than as a new field inside it: receivers that predate (or disabled) the
// capability reject any trailing bytes, so senders append the trailer only
// toward peers that announced the trace capability in their handshake
// hello — mixed-capability machines interoperate, with spans degrading to
// local-only around non-capable nodes.

// TraceWireSize is the encoded size of a trace-context trailer:
// u64 trace ID | u64 parent span ID | u8 flags.
const TraceWireSize = 17

// TraceSampled marks a context whose hops are recorded as spans. A
// context may propagate unsampled (ID set, flag clear) so a trace decided
// elsewhere keeps its identity without emitting spans here.
const TraceSampled = uint8(1 << 0)

// TraceCtx is a parcel's distributed trace context. The zero value means
// "untraced" and encodes to nothing.
type TraceCtx struct {
	// ID identifies the trace: every span of one logical operation —
	// across continuations, retransmissions, and node boundaries — shares
	// it. 0 means untraced.
	ID uint64
	// Span is the span ID of the most recent hop, i.e. the parent of the
	// next span emitted for this parcel.
	Span uint64
	// Flags holds the sampled bit (TraceSampled); unknown bits are
	// preserved across the wire for forward compatibility.
	Flags uint8
}

// Zero reports whether the context is absent (nothing to encode).
func (t TraceCtx) Zero() bool { return t == TraceCtx{} }

// Sampled reports whether hops of this parcel should be recorded.
func (t TraceCtx) Sampled() bool { return t.ID != 0 && t.Flags&TraceSampled != 0 }

// Append encodes the context's wire trailer onto dst.
func (t TraceCtx) Append(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, t.ID)
	dst = binary.LittleEndian.AppendUint64(dst, t.Span)
	return append(dst, t.Flags)
}

// DecodeTrace parses a trace-context trailer from the front of src,
// returning the remainder. Callers gate on the remaining length: exactly
// TraceWireSize trailing bytes after a parcel are a trace trailer.
func DecodeTrace(src []byte) (TraceCtx, []byte, error) {
	if len(src) < TraceWireSize {
		return TraceCtx{}, src, fmt.Errorf("parcel: short trace trailer (%d bytes)", len(src))
	}
	t := TraceCtx{
		ID:    binary.LittleEndian.Uint64(src[0:8]),
		Span:  binary.LittleEndian.Uint64(src[8:16]),
		Flags: src[16],
	}
	return t, src[TraceWireSize:], nil
}
