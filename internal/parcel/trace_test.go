package parcel

import (
	"testing"

	"repro/internal/agas"
)

func TestTraceCtxRoundTrip(t *testing.T) {
	cases := []TraceCtx{
		{},
		{ID: 1},
		{ID: ^uint64(0), Span: 0x0123456789abcdef, Flags: TraceSampled},
		{Span: 7, Flags: 0x80},
	}
	for _, tc := range cases {
		wire := tc.Append(nil)
		if len(wire) != TraceWireSize {
			t.Fatalf("%+v encoded to %d bytes, want %d", tc, len(wire), TraceWireSize)
		}
		got, rest, err := DecodeTrace(append(wire, 0xAA))
		if err != nil || got != tc {
			t.Fatalf("round trip %+v -> %+v (%v)", tc, got, err)
		}
		if len(rest) != 1 || rest[0] != 0xAA {
			t.Fatalf("remainder lost: %v", rest)
		}
	}
	if _, _, err := DecodeTrace(make([]byte, TraceWireSize-1)); err == nil {
		t.Fatal("short trailer decoded")
	}
}

func TestTraceCtxPredicates(t *testing.T) {
	if !(TraceCtx{}).Zero() || (TraceCtx{ID: 1}).Zero() {
		t.Fatal("Zero misclassified")
	}
	// Sampled requires both a trace ID and the sampled bit: a context with
	// only the flag (or only an ID) records nothing.
	if (TraceCtx{Flags: TraceSampled}).Sampled() || (TraceCtx{ID: 1}).Sampled() {
		t.Fatal("Sampled without both parts")
	}
	if !(TraceCtx{ID: 1, Flags: TraceSampled}).Sampled() {
		t.Fatal("Sampled context not sampled")
	}
}

// TestPooledParcelTraceReset: a recycled parcel must never leak the
// previous occupant's trace context into an untraced send.
func TestPooledParcelTraceReset(t *testing.T) {
	g := agas.GID{Home: 0, Kind: agas.KindData, Seq: 5}
	p := Acquire(g, "nop", nil)
	p.Trace = TraceCtx{ID: 9, Span: 9, Flags: TraceSampled}
	Release(p)
	q := Acquire(g, "nop", nil)
	if !q.Trace.Zero() {
		t.Fatalf("recycled parcel kept trace %+v", q.Trace)
	}
	Release(q)
}

// TestPoolStats: the hit/miss counters stay coherent — misses never
// exceed gets, and a get-after-release cycle counts as activity.
func TestPoolStats(t *testing.T) {
	ph0, pm0, wh0, wm0 := PoolStats()
	g := agas.GID{Home: 0, Kind: agas.KindData, Seq: 1}
	for i := 0; i < 8; i++ {
		p := Acquire(g, "nop", nil)
		Release(p)
		w := GetWire()
		PutWire(w)
	}
	ph1, pm1, wh1, wm1 := PoolStats()
	if ph1+pm1 < ph0+pm0+8 {
		t.Fatalf("parcel gets did not advance: %d+%d -> %d+%d", ph0, pm0, ph1, pm1)
	}
	if wh1+wm1 < wh0+wm0+8 {
		t.Fatalf("wire gets did not advance: %d+%d -> %d+%d", wh0, wm0, wh1, wm1)
	}
	// Releasing between acquisitions makes at least some gets hits.
	if ph1 == 0 && wh1 == 0 {
		t.Fatal("no pool hits after release/acquire cycles")
	}
}
