package parcel

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/agas"
)

// Args builds an encoded argument record. Values are written in order and
// must be read back in the same order and types by a Reader; the format is
// type-tagged so mismatches are detected rather than silently misread.
type Args struct {
	buf []byte
}

// Argument type tags.
const (
	tagInt64 byte = iota + 1
	tagUint64
	tagFloat64
	tagBool
	tagString
	tagBytes
	tagGID
	tagFloat64s
	tagInt64s
	// tagCustom marks a value encoded by a registered application codec
	// (see RegisterValueCodec): name and payload, both length-prefixed.
	tagCustom
)

// NewArgs returns an empty argument record builder.
func NewArgs() *Args { return &Args{} }

// Int64 appends v.
func (a *Args) Int64(v int64) *Args {
	a.buf = append(a.buf, tagInt64)
	a.buf = binary.LittleEndian.AppendUint64(a.buf, uint64(v))
	return a
}

// Uint64 appends v.
func (a *Args) Uint64(v uint64) *Args {
	a.buf = append(a.buf, tagUint64)
	a.buf = binary.LittleEndian.AppendUint64(a.buf, v)
	return a
}

// Float64 appends v.
func (a *Args) Float64(v float64) *Args {
	a.buf = append(a.buf, tagFloat64)
	a.buf = binary.LittleEndian.AppendUint64(a.buf, math.Float64bits(v))
	return a
}

// Bool appends v.
func (a *Args) Bool(v bool) *Args {
	b := byte(0)
	if v {
		b = 1
	}
	a.buf = append(a.buf, tagBool, b)
	return a
}

// String appends v.
func (a *Args) String(v string) *Args {
	a.buf = append(a.buf, tagString)
	a.buf = binary.LittleEndian.AppendUint32(a.buf, uint32(len(v)))
	a.buf = append(a.buf, v...)
	return a
}

// Bytes appends v.
func (a *Args) Bytes(v []byte) *Args {
	a.buf = append(a.buf, tagBytes)
	a.buf = binary.LittleEndian.AppendUint32(a.buf, uint32(len(v)))
	a.buf = append(a.buf, v...)
	return a
}

// GID appends v.
func (a *Args) GID(v agas.GID) *Args {
	a.buf = append(a.buf, tagGID)
	a.buf = v.Encode(a.buf)
	return a
}

// Float64s appends a vector.
func (a *Args) Float64s(v []float64) *Args {
	a.buf = append(a.buf, tagFloat64s)
	a.buf = binary.LittleEndian.AppendUint32(a.buf, uint32(len(v)))
	for _, x := range v {
		a.buf = binary.LittleEndian.AppendUint64(a.buf, math.Float64bits(x))
	}
	return a
}

// Int64s appends a vector.
func (a *Args) Int64s(v []int64) *Args {
	a.buf = append(a.buf, tagInt64s)
	a.buf = binary.LittleEndian.AppendUint32(a.buf, uint32(len(v)))
	for _, x := range v {
		a.buf = binary.LittleEndian.AppendUint64(a.buf, uint64(x))
	}
	return a
}

// Bytes returns the encoded record. The builder must not be reused after.
func (a *Args) Encode() []byte { return a.buf }

// Reader decodes an argument record in write order.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader reads the record produced by Args.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repoints the reader at a new record, clearing position and error
// state, so one Reader value can serve many dispatches without
// reallocating.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.err = nil
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) tag(want byte, name string) bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.err = fmt.Errorf("parcel: args exhausted reading %s", name)
		return false
	}
	got := r.buf[r.pos]
	if got != want {
		r.err = fmt.Errorf("parcel: args type mismatch: want %s tag %d, got %d at %d", name, want, got, r.pos)
		return false
	}
	r.pos++
	return true
}

func (r *Reader) need(n int, name string) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf)-r.pos < n {
		r.err = fmt.Errorf("parcel: args truncated reading %s", name)
		return false
	}
	return true
}

// Int64 reads an int64.
func (r *Reader) Int64() int64 {
	if !r.tag(tagInt64, "int64") || !r.need(8, "int64") {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

// Uint64 reads a uint64.
func (r *Reader) Uint64() uint64 {
	if !r.tag(tagUint64, "uint64") || !r.need(8, "uint64") {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// Float64 reads a float64.
func (r *Reader) Float64() float64 {
	if !r.tag(tagFloat64, "float64") || !r.need(8, "float64") {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

// Bool reads a bool.
func (r *Reader) Bool() bool {
	if !r.tag(tagBool, "bool") || !r.need(1, "bool") {
		return false
	}
	v := r.buf[r.pos] != 0
	r.pos++
	return v
}

// String reads a string.
func (r *Reader) String() string {
	if !r.tag(tagString, "string") || !r.need(4, "string") {
		return ""
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	r.pos += 4
	if !r.need(n, "string body") {
		return ""
	}
	v := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return v
}

// Bytes reads a byte slice (copied).
func (r *Reader) Bytes() []byte {
	if !r.tag(tagBytes, "bytes") || !r.need(4, "bytes") {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	r.pos += 4
	if !r.need(n, "bytes body") {
		return nil
	}
	v := append([]byte(nil), r.buf[r.pos:r.pos+n]...)
	r.pos += n
	return v
}

// GID reads a GID.
func (r *Reader) GID() agas.GID {
	if !r.tag(tagGID, "gid") || !r.need(agas.GIDSize, "gid") {
		return agas.Nil
	}
	g, rest, err := agas.DecodeGID(r.buf[r.pos:])
	if err != nil {
		r.err = err
		return agas.Nil
	}
	r.pos = len(r.buf) - len(rest)
	return g
}

// Float64s reads a vector.
func (r *Reader) Float64s() []float64 {
	if !r.tag(tagFloat64s, "float64s") || !r.need(4, "float64s") {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	r.pos += 4
	if !r.need(8*n, "float64s body") {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
	}
	return v
}

// Int64s reads a vector.
func (r *Reader) Int64s() []int64 {
	if !r.tag(tagInt64s, "int64s") || !r.need(4, "int64s") {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.pos:]))
	r.pos += 4
	if !r.need(8*n, "int64s body") {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
	}
	return v
}
