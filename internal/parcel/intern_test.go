package parcel

import (
	"bytes"
	"testing"
)

// testTable is a fixed parcel.Table: position = index into names.
type testTable []string

func (t testTable) IDOf(name string) (uint32, bool) {
	for i, n := range t {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

func (t testTable) ActionOf(id uint32) (string, uint32, bool) {
	if int(id) >= len(t) {
		return "", NoAID, false
	}
	return t[id], id + 1, true // dispatch ID: position + 1, like the registry
}

func internSample() *Parcel {
	return New(sampleGID(9), "known.a",
		NewArgs().Int64(7).String("payload").Encode(),
		Continuation{Target: sampleGID(1), Action: "known.b"},
		Continuation{Target: sampleGID(2), Action: "unknown.c"},
	)
}

// TestInternedRoundTrip: interned encode/decode preserves every field,
// interning known actions and spelling out unknown ones in one parcel.
func TestInternedRoundTrip(t *testing.T) {
	tbl := testTable{"known.a", "known.b"}
	p := internSample()
	p.Src, p.Hops = 3, 2
	wire := p.EncodeInterned(nil, tbl)
	// The known action names must not appear as strings on the wire.
	if bytes.Contains(wire, []byte("known.a")) || bytes.Contains(wire, []byte("known.b")) {
		t.Fatal("interned encode spelled out a table action")
	}
	if !bytes.Contains(wire, []byte("unknown.c")) {
		t.Fatal("non-table action missing from the wire")
	}
	q, rest, err := DecodePooledInterned(wire, tbl)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d trailing)", err, len(rest))
	}
	if q.ID != p.ID || q.Dest != p.Dest || q.Action != p.Action ||
		q.Src != p.Src || q.Hops != p.Hops || !bytes.Equal(q.Args, p.Args) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", q, p)
	}
	if q.AID != 1 { // "known.a" is table position 0 → dispatch ID 1
		t.Fatalf("decoded AID %d, want 1", q.AID)
	}
	if len(q.Cont) != 2 || q.Cont[0] != p.Cont[0] || q.Cont[1] != p.Cont[1] {
		t.Fatalf("continuations mismatch: %v", q.Cont)
	}
	Release(q)
}

// TestInternedDecodeNeedsTable: an interned reference without a table is
// a decode error, not a panic or a silent misdispatch.
func TestInternedDecodeNeedsTable(t *testing.T) {
	tbl := testTable{"known.a", "known.b"}
	wire := internSample().EncodeInterned(nil, tbl)
	if _, _, err := DecodePooledInterned(wire, nil); err == nil {
		t.Fatal("interned decode without a table succeeded")
	}
	// A table too small for the announced position is likewise an error.
	if _, _, err := DecodePooledInterned(wire, testTable{"known.a"}); err == nil {
		t.Fatal("interned decode past the table succeeded")
	}
}

// TestInternedNilTableStringForm: encoding with no table degrades to
// all-string references, decodable by the interned decoder with any (or
// no) table.
func TestInternedNilTableStringForm(t *testing.T) {
	p := internSample()
	wire := p.EncodeInterned(nil, nil)
	q, rest, err := DecodePooledInterned(wire, nil)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d trailing)", err, len(rest))
	}
	if q.Action != p.Action || q.AID != NoAID || len(q.Cont) != 2 {
		t.Fatalf("string-form roundtrip mismatch: %+v", q)
	}
	Release(q)
}

// TestInternedSteadyStateAllocs: the pooled interned round trip is
// allocation-free once the pools are warm.
func TestInternedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; exact alloc counts only hold without -race")
	}
	// Convert to the interface once: a slice-typed Table boxes (allocates)
	// at every implicit conversion, which is the test harness's cost, not
	// the codec's — the runtime passes pointer-typed tables.
	var tbl Table = testTable{"known.a", "known.b"}
	args := NewArgs().Int64(7).Encode()
	run := func() {
		p := Acquire(sampleGID(9), "known.a", args, Continuation{Target: sampleGID(1), Action: "known.b"})
		w := GetWire()
		w.B = p.EncodeInterned(w.B, tbl)
		Release(p)
		q, _, err := DecodePooledInterned(w.B, tbl)
		PutWire(w)
		if err != nil {
			t.Fatal(err)
		}
		Release(q)
	}
	run() // warm the pools
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Fatalf("interned round trip allocates %.1f/op, want 0", allocs)
	}
}
