package parcel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/agas"
)

func sampleGID(n uint64) agas.GID {
	return agas.GID{Home: uint32(n % 16), Kind: agas.KindData, Seq: n}
}

func TestParcelRoundTrip(t *testing.T) {
	p := New(sampleGID(1), "compute",
		NewArgs().Int64(42).String("hello").Encode(),
		Continuation{Target: sampleGID(2), Action: "set"},
		Continuation{Target: sampleGID(3), Action: "trigger"},
	)
	p.Src = 5
	p.Hops = 2
	buf := p.Encode(nil)
	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if got.ID != p.ID || got.Dest != p.Dest || got.Action != p.Action ||
		got.Src != p.Src || got.Hops != p.Hops {
		t.Fatalf("header mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Args, p.Args) {
		t.Fatal("args mismatch")
	}
	if len(got.Cont) != 2 || got.Cont[0] != p.Cont[0] || got.Cont[1] != p.Cont[1] {
		t.Fatalf("continuations mismatch: %v", got.Cont)
	}
}

func TestParcelEmptyFields(t *testing.T) {
	p := New(sampleGID(9), "noop", nil)
	buf := p.Encode(nil)
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Args != nil {
		t.Fatalf("expected nil args, got %v", got.Args)
	}
	if len(got.Cont) != 0 {
		t.Fatalf("expected no continuations")
	}
}

func TestPropertyParcelRoundTrip(t *testing.T) {
	f := func(id uint64, action string, args []byte, nCont uint8, src uint16, hops uint8) bool {
		if len(action) > 1000 {
			action = action[:1000]
		}
		p := &Parcel{
			ID: id, Dest: sampleGID(id), Action: action, Args: args,
			Src: int(src), Hops: int(hops),
		}
		for i := 0; i < int(nCont%5); i++ {
			p.Cont = append(p.Cont, Continuation{Target: sampleGID(uint64(i)), Action: "a"})
		}
		buf := p.Encode(nil)
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.ID != p.ID || got.Action != p.Action || got.Src != p.Src || got.Hops != p.Hops {
			return false
		}
		if !bytes.Equal(got.Args, p.Args) {
			return false
		}
		if len(got.Cont) != len(p.Cont) {
			return false
		}
		for i := range p.Cont {
			if got.Cont[i] != p.Cont[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := New(sampleGID(1), "act", NewArgs().Int64(1).Encode(),
		Continuation{Target: sampleGID(2), Action: "k"})
	buf := p.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeTrailingData(t *testing.T) {
	p := New(sampleGID(1), "act", nil)
	buf := p.Encode(nil)
	buf = append(buf, 0xAA, 0xBB)
	_, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes, want 2", len(rest))
	}
}

func TestContinuationStack(t *testing.T) {
	p := New(sampleGID(1), "act", nil, Continuation{Target: sampleGID(2), Action: "b"})
	p.PushContinuation(Continuation{Target: sampleGID(3), Action: "a"})
	c, ok := p.PopContinuation()
	if !ok || c.Action != "a" {
		t.Fatalf("first pop = %v %v", c, ok)
	}
	c, ok = p.PopContinuation()
	if !ok || c.Action != "b" {
		t.Fatalf("second pop = %v %v", c, ok)
	}
	if _, ok = p.PopContinuation(); ok {
		t.Fatal("pop of empty stack succeeded")
	}
}

func TestNextIDUnique(t *testing.T) {
	a, b := NextID(), NextID()
	if a == b {
		t.Fatal("duplicate parcel IDs")
	}
}

func TestArgsAllTypes(t *testing.T) {
	g := sampleGID(77)
	rec := NewArgs().
		Int64(-7).
		Uint64(1 << 60).
		Float64(math.Pi).
		Bool(true).
		String("parallex").
		Bytes([]byte{1, 2, 3}).
		GID(g).
		Float64s([]float64{1.5, -2.5}).
		Int64s([]int64{-1, 0, 1}).
		Encode()
	r := NewReader(rec)
	if v := r.Int64(); v != -7 {
		t.Fatalf("int64 = %d", v)
	}
	if v := r.Uint64(); v != 1<<60 {
		t.Fatalf("uint64 = %d", v)
	}
	if v := r.Float64(); v != math.Pi {
		t.Fatalf("float64 = %v", v)
	}
	if !r.Bool() {
		t.Fatal("bool = false")
	}
	if v := r.String(); v != "parallex" {
		t.Fatalf("string = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", v)
	}
	if v := r.GID(); v != g {
		t.Fatalf("gid = %v", v)
	}
	if v := r.Float64s(); len(v) != 2 || v[0] != 1.5 || v[1] != -2.5 {
		t.Fatalf("float64s = %v", v)
	}
	if v := r.Int64s(); len(v) != 3 || v[0] != -1 || v[2] != 1 {
		t.Fatalf("int64s = %v", v)
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
}

func TestArgsTypeMismatchDetected(t *testing.T) {
	rec := NewArgs().Int64(1).Encode()
	r := NewReader(rec)
	r.Float64()
	if r.Err() == nil {
		t.Fatal("type mismatch not detected")
	}
}

func TestArgsExhaustionDetected(t *testing.T) {
	rec := NewArgs().Int64(1).Encode()
	r := NewReader(rec)
	r.Int64()
	r.Int64()
	if r.Err() == nil {
		t.Fatal("exhaustion not detected")
	}
}

func TestArgsErrorsSticky(t *testing.T) {
	rec := NewArgs().Int64(1).Int64(2).Encode()
	r := NewReader(rec)
	r.Float64() // mismatch; error set
	first := r.Err()
	r.Int64() // would succeed, but error is sticky
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestPropertyArgsRoundTrip(t *testing.T) {
	f := func(i int64, u uint64, fl float64, b bool, s string, by []byte, fs []float64) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		for k := range fs {
			if math.IsNaN(fs[k]) {
				fs[k] = 0
			}
		}
		rec := NewArgs().Int64(i).Uint64(u).Float64(fl).Bool(b).String(s).Bytes(by).Float64s(fs).Encode()
		r := NewReader(rec)
		if r.Int64() != i || r.Uint64() != u || r.Float64() != fl || r.Bool() != b || r.String() != s {
			return false
		}
		gb := r.Bytes()
		if !bytes.Equal(gb, by) && !(len(gb) == 0 && len(by) == 0) {
			return false
		}
		gf := r.Float64s()
		if len(gf) != len(fs) {
			return false
		}
		for k := range fs {
			if gf[k] != fs[k] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParcelString(t *testing.T) {
	p := New(sampleGID(4), "go", nil)
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: Decode never panics and never succeeds with garbage lengths on
// arbitrary byte strings — malformed input must return an error or a
// structurally valid parcel.
func TestPropertyDecodeRobustOnRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Decode panicked on %d bytes", len(raw))
			}
		}()
		p, rest, err := Decode(raw)
		if err != nil {
			return true
		}
		// A successful decode must account for all consumed bytes and
		// carry internally consistent fields.
		return p != nil && len(rest) <= len(raw) && len(p.Args) <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeAny never panics on arbitrary bytes.
func TestPropertyDecodeAnyRobust(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("DecodeAny panicked")
			}
		}()
		DecodeAny(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
