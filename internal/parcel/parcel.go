// Package parcel implements the ParalleX parcel: the message-driven unit of
// work movement. A parcel names a destination object (by GID), an action to
// apply to it, argument values, and — the feature distinguishing parcels
// from plain active messages — a continuation specifier describing what
// happens after the action completes. Continuations let the locus of
// control migrate across the machine instead of returning to the sender.
package parcel

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/agas"
)

// Continuation names an LCO (or other object) to be triggered with the
// action's result, and the action to apply there. A chain of continuations
// forms a migrating locus of control.
type Continuation struct {
	Target agas.GID
	Action string
}

// NoAID marks a parcel whose action has not been resolved to a dense
// registered ID; dispatch then falls back to the name lookup. Action IDs
// are 1-based so the zero value of Parcel (and of AID after a wire decode
// with no table) is safely unresolved.
const NoAID = uint32(0)

// Parcel is one message-driven task descriptor.
type Parcel struct {
	// ID is unique within a runtime, for tracing and deduplication.
	ID uint64
	// Dest is the global name of the target object. The runtime routes the
	// parcel to the locality currently owning Dest.
	Dest agas.GID
	// Action is the registered action name to invoke on the target.
	Action string
	// AID caches the executing runtime's dense ID for Action (see the core
	// action registry), letting dispatch index a slice instead of hashing
	// the name. NoAID means unresolved. It is runtime-local: the interned
	// wire form carries table positions negotiated per peer, never AID.
	AID uint32
	// Args is the encoded argument record (see Args/Reader).
	Args []byte
	// Cont is the continuation stack; element 0 is applied first.
	Cont []Continuation
	// Src is the sending locality, for accounting.
	Src int
	// Hops counts owner-forwarding retries (stale AGAS caches).
	Hops int
	// Trace is the distributed trace context (zero when untraced). It is
	// NOT written by Encode: the capability-gated trailer is appended by
	// TraceCtx.Append and parsed by DecodeTrace, so the base wire form
	// stays understood by every peer (see trace.go).
	Trace TraceCtx

	// argsBuf is the parcel-owned backing store DecodeInto copies argument
	// bytes into; it survives pool recycles so steady-state decodes do not
	// allocate.
	argsBuf []byte
	// pooled marks parcels from the pool (Acquire/DecodeInto); Release
	// ignores the rest.
	pooled bool
	// released guards double-release when pool debugging is on.
	released bool
	// ownsCont marks a continuation stack backed by parcel-owned storage:
	// pooled parcels copy theirs in, but New aliases the caller's variadic
	// slice, which in-place mutation must not scribble on.
	ownsCont bool
}

var (
	idCounter atomic.Uint64
	idOrigin  atomic.Uint64
)

// SetIDOrigin salts every subsequently minted parcel ID with origin in the
// ID's top 16 bits, making IDs unique machine-wide rather than merely
// process-wide: each process of a multi-node machine installs a distinct
// origin (the core runtime passes its node index + 1) before application
// parcels are minted. Continuations and fault-injected duplicates inherit
// their chain's ID verbatim, so the origin survives cross-node hops — the
// distributed LCO layer derives idempotence keys from it. A process
// hosting several runtimes (in-process multi-node tests) overwrites the
// salt as each starts; uniqueness still holds there because every runtime
// in the process draws from the one shared sequence.
func SetIDOrigin(origin uint16) { idOrigin.Store(uint64(origin) << 48) }

// NextID mints a machine-unique parcel ID: the current origin salt over a
// 48-bit process-wide sequence.
func NextID() uint64 { return idOrigin.Load() | (idCounter.Add(1) & (1<<48 - 1)) }

// New builds a parcel with a fresh ID.
func New(dest agas.GID, action string, args []byte, cont ...Continuation) *Parcel {
	return &Parcel{ID: NextID(), Dest: dest, Action: action, Args: args, Cont: cont}
}

// PushContinuation prepends c so it runs before existing continuations.
// The stack is shifted in place, reusing spare capacity: pushing is
// amortized O(1) allocations (a push allocates only when the stack grows
// past its high-water capacity), not one fresh slice per push. A stack
// still aliasing the caller's slice (New stores the variadic argument
// as-is) is copied once before the first in-place shift, so the caller's
// backing array is never mutated.
func (p *Parcel) PushContinuation(c Continuation) {
	if !p.ownsCont {
		cont := make([]Continuation, len(p.Cont)+1)
		copy(cont[1:], p.Cont)
		cont[0] = c
		p.Cont = cont
		p.ownsCont = true
		return
	}
	p.Cont = append(p.Cont, Continuation{})
	copy(p.Cont[1:], p.Cont)
	p.Cont[0] = c
}

// PopContinuation removes and returns the first continuation; ok is false
// when none remain.
func (p *Parcel) PopContinuation() (Continuation, bool) {
	if len(p.Cont) == 0 {
		return Continuation{}, false
	}
	c := p.Cont[0]
	p.Cont = p.Cont[1:]
	return c, true
}

// String renders the parcel for logs.
func (p *Parcel) String() string {
	return fmt.Sprintf("parcel#%d %s->%v args=%dB cont=%d", p.ID, p.Action, p.Dest, len(p.Args), len(p.Cont))
}

// Wire format:
//
//	u64 id | gid dest | str action | u32 nargs bytes | args |
//	u16 ncont | ncont × (gid target, str action) | u32 src | u32 hops
//
// Strings are u16 length-prefixed UTF-8. All integers little-endian.
//
// The format imposes hard limits: action names (and continuation action
// names) are at most MaxString bytes, the continuation stack holds at most
// MaxContinuations entries, and the argument record at most MaxArgs bytes.
// Encode panics when a parcel exceeds them — the limits are generous and a
// violation is a program bug, not a runtime condition; truncating silently
// on a network-facing wire would be far worse.

// Wire format limits enforced by Encode.
const (
	// MaxString bounds action-name length (u16 length prefix).
	MaxString = 1<<16 - 1
	// MaxContinuations bounds the continuation stack (u16 count).
	MaxContinuations = 1<<16 - 1
	// MaxArgs bounds the encoded argument record (u32 length prefix).
	MaxArgs = 1<<32 - 1
)

// Encode appends the wire form of p to dst. It panics if p exceeds the
// wire format limits (see MaxString, MaxContinuations, MaxArgs).
func (p *Parcel) Encode(dst []byte) []byte {
	return p.encode(dst, false, nil)
}

// encode is the shared body of Encode and EncodeInterned: the two wire
// forms are identical except for how an action reference is written —
// a plain length-prefixed string, or a table position with per-reference
// string fallback.
func (p *Parcel) encode(dst []byte, interned bool, t Table) []byte {
	if len(p.Cont) > MaxContinuations {
		panic(fmt.Sprintf("parcel: %d continuations exceed wire limit %d", len(p.Cont), MaxContinuations))
	}
	if uint64(len(p.Args)) > MaxArgs {
		panic(fmt.Sprintf("parcel: %d argument bytes exceed wire limit %d", len(p.Args), uint64(MaxArgs)))
	}
	dst = binary.LittleEndian.AppendUint64(dst, p.ID)
	dst = p.Dest.Encode(dst)
	dst = appendRef(dst, p.Action, interned, t)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Args)))
	dst = append(dst, p.Args...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Cont)))
	for _, c := range p.Cont {
		dst = c.Target.Encode(dst)
		dst = appendRef(dst, c.Action, interned, t)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Hops))
	return dst
}

// Decode parses a parcel from the front of src, returning the remainder.
// The parcel is freshly allocated and never recycled; the runtime's hot
// path uses DecodePooled instead.
func Decode(src []byte) (*Parcel, []byte, error) {
	p := &Parcel{}
	rest, err := DecodeInto(p, src)
	if err != nil {
		return nil, rest, err
	}
	return p, rest, nil
}

// DecodePooled parses a parcel from the front of src into a pooled parcel.
// The parcel owns its argument bytes (src may be a transport read buffer
// that is reused the moment the caller returns) and must be handed to
// Release exactly once when dispatch completes.
func DecodePooled(src []byte) (*Parcel, []byte, error) {
	p := blank()
	rest, err := DecodeInto(p, src)
	if err != nil {
		Release(p)
		return nil, rest, err
	}
	return p, rest, nil
}

// DecodeInto parses a parcel from the front of src into p, overwriting
// every field and returning the remainder. Argument bytes are copied into
// p's own backing store (reused across pool recycles), so src may be
// recycled by the caller immediately; the continuation stack likewise
// reuses p's capacity. On error p is partially filled and must be
// discarded or released, not dispatched.
func DecodeInto(p *Parcel, src []byte) ([]byte, error) {
	return decodeInto(p, src, false, nil, false)
}

// DecodeAliased parses a parcel from the front of src like Decode, except
// the parcel's Args field ALIASES src instead of being copied out of it —
// the read-side analogue of the transport's zero-copy send. The parcel is
// therefore only valid while src is: a consumer must finish with the
// parcel (or copy Args) before the buffer holding src is reused, which is
// exactly the transport Handler contract. The parcel is freshly
// allocated, never pooled — handing it to Release would recycle argsBuf
// capacity it does not own.
//
// Use it for strictly synchronous consumers (decode, inspect, drop within
// the handler); anything that enqueues or retains the parcel must use
// DecodePooled, which copies.
func DecodeAliased(src []byte) (*Parcel, []byte, error) {
	p := &Parcel{}
	rest, err := decodeInto(p, src, false, nil, true)
	if err != nil {
		return nil, rest, err
	}
	return p, rest, nil
}

// decodeInto is the shared body of DecodeInto, DecodeIntoInterned, and
// DecodeAliased; see encode for the single point of difference between
// the wire forms. With aliasArgs set, p.Args aliases src rather than
// being copied into p's backing store.
func decodeInto(p *Parcel, src []byte, interned bool, t Table, aliasArgs bool) ([]byte, error) {
	p.Trace = TraceCtx{} // the trailer, if any, is parsed by the caller
	if len(src) < 8 {
		return src, fmt.Errorf("parcel: short ID")
	}
	p.ID = binary.LittleEndian.Uint64(src)
	src = src[8:]
	var err error
	p.Dest, src, err = agas.DecodeGID(src)
	if err != nil {
		return src, fmt.Errorf("parcel: dest: %w", err)
	}
	p.Action, p.AID, src, err = readRef(src, interned, t)
	if err != nil {
		return src, fmt.Errorf("parcel: action: %w", err)
	}
	if len(src) < 4 {
		return src, fmt.Errorf("parcel: short args length")
	}
	argLen := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if len(src) < argLen {
		return src, fmt.Errorf("parcel: args truncated: want %d have %d", argLen, len(src))
	}
	switch {
	case argLen == 0:
		p.Args = nil
	case aliasArgs:
		p.Args = src[:argLen:argLen]
	default:
		p.argsBuf = append(p.argsBuf[:0], src[:argLen]...)
		p.Args = p.argsBuf
	}
	src = src[argLen:]
	if len(src) < 2 {
		return src, fmt.Errorf("parcel: short continuation count")
	}
	ncont := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	p.Cont = p.Cont[:0]
	p.ownsCont = true // decoded stacks live in parcel-owned (or fresh) backing
	for i := 0; i < ncont; i++ {
		var c Continuation
		c.Target, src, err = agas.DecodeGID(src)
		if err != nil {
			return src, fmt.Errorf("parcel: cont %d target: %w", i, err)
		}
		c.Action, _, src, err = readRef(src, interned, t)
		if err != nil {
			return src, fmt.Errorf("parcel: cont %d action: %w", i, err)
		}
		p.Cont = append(p.Cont, c)
	}
	if len(src) < 8 {
		return src, fmt.Errorf("parcel: short trailer")
	}
	p.Src = int(binary.LittleEndian.Uint32(src))
	p.Hops = int(binary.LittleEndian.Uint32(src[4:]))
	return src[8:], nil
}

// appendRef writes one action reference in the selected wire form.
func appendRef(dst []byte, s string, interned bool, t Table) []byte {
	if interned {
		return appendActionRef(dst, s, t)
	}
	return appendString(dst, s)
}

// readRef parses one action reference in the selected wire form. The
// plain form never resolves a dispatch ID (and, unlike the interned
// form, admits action names up to the full MaxString — including length
// 0xFFFF, which the interned form reserves as its sentinel).
func readRef(src []byte, interned bool, t Table) (name string, aid uint32, rest []byte, err error) {
	if interned {
		return readActionRef(src, t)
	}
	name, rest, err = readString(src)
	return name, NoAID, rest, err
}

func appendString(dst []byte, s string) []byte {
	if len(s) > MaxString {
		panic(fmt.Sprintf("parcel: string too long: %d exceeds wire limit %d", len(s), MaxString))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", src, fmt.Errorf("short string length")
	}
	n := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", src, fmt.Errorf("string truncated: want %d have %d", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}
