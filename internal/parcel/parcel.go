// Package parcel implements the ParalleX parcel: the message-driven unit of
// work movement. A parcel names a destination object (by GID), an action to
// apply to it, argument values, and — the feature distinguishing parcels
// from plain active messages — a continuation specifier describing what
// happens after the action completes. Continuations let the locus of
// control migrate across the machine instead of returning to the sender.
package parcel

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/agas"
)

// Continuation names an LCO (or other object) to be triggered with the
// action's result, and the action to apply there. A chain of continuations
// forms a migrating locus of control.
type Continuation struct {
	Target agas.GID
	Action string
}

// Parcel is one message-driven task descriptor.
type Parcel struct {
	// ID is unique within a runtime, for tracing and deduplication.
	ID uint64
	// Dest is the global name of the target object. The runtime routes the
	// parcel to the locality currently owning Dest.
	Dest agas.GID
	// Action is the registered action name to invoke on the target.
	Action string
	// Args is the encoded argument record (see Args/Reader).
	Args []byte
	// Cont is the continuation stack; element 0 is applied first.
	Cont []Continuation
	// Src is the sending locality, for accounting.
	Src int
	// Hops counts owner-forwarding retries (stale AGAS caches).
	Hops int
}

var idCounter atomic.Uint64

// NextID mints a process-unique parcel ID.
func NextID() uint64 { return idCounter.Add(1) }

// New builds a parcel with a fresh ID.
func New(dest agas.GID, action string, args []byte, cont ...Continuation) *Parcel {
	return &Parcel{ID: NextID(), Dest: dest, Action: action, Args: args, Cont: cont}
}

// PushContinuation prepends c so it runs before existing continuations.
func (p *Parcel) PushContinuation(c Continuation) {
	p.Cont = append([]Continuation{c}, p.Cont...)
}

// PopContinuation removes and returns the first continuation; ok is false
// when none remain.
func (p *Parcel) PopContinuation() (Continuation, bool) {
	if len(p.Cont) == 0 {
		return Continuation{}, false
	}
	c := p.Cont[0]
	p.Cont = p.Cont[1:]
	return c, true
}

// String renders the parcel for logs.
func (p *Parcel) String() string {
	return fmt.Sprintf("parcel#%d %s->%v args=%dB cont=%d", p.ID, p.Action, p.Dest, len(p.Args), len(p.Cont))
}

// Wire format:
//
//	u64 id | gid dest | str action | u32 nargs bytes | args |
//	u16 ncont | ncont × (gid target, str action) | u32 src | u32 hops
//
// Strings are u16 length-prefixed UTF-8. All integers little-endian.
//
// The format imposes hard limits: action names (and continuation action
// names) are at most MaxString bytes, the continuation stack holds at most
// MaxContinuations entries, and the argument record at most MaxArgs bytes.
// Encode panics when a parcel exceeds them — the limits are generous and a
// violation is a program bug, not a runtime condition; truncating silently
// on a network-facing wire would be far worse.

// Wire format limits enforced by Encode.
const (
	// MaxString bounds action-name length (u16 length prefix).
	MaxString = 1<<16 - 1
	// MaxContinuations bounds the continuation stack (u16 count).
	MaxContinuations = 1<<16 - 1
	// MaxArgs bounds the encoded argument record (u32 length prefix).
	MaxArgs = 1<<32 - 1
)

// Encode appends the wire form of p to dst. It panics if p exceeds the
// wire format limits (see MaxString, MaxContinuations, MaxArgs).
func (p *Parcel) Encode(dst []byte) []byte {
	if len(p.Cont) > MaxContinuations {
		panic(fmt.Sprintf("parcel: %d continuations exceed wire limit %d", len(p.Cont), MaxContinuations))
	}
	if uint64(len(p.Args)) > MaxArgs {
		panic(fmt.Sprintf("parcel: %d argument bytes exceed wire limit %d", len(p.Args), uint64(MaxArgs)))
	}
	dst = binary.LittleEndian.AppendUint64(dst, p.ID)
	dst = p.Dest.Encode(dst)
	dst = appendString(dst, p.Action)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Args)))
	dst = append(dst, p.Args...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Cont)))
	for _, c := range p.Cont {
		dst = c.Target.Encode(dst)
		dst = appendString(dst, c.Action)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Hops))
	return dst
}

// Decode parses a parcel from the front of src, returning the remainder.
func Decode(src []byte) (*Parcel, []byte, error) {
	p := &Parcel{}
	if len(src) < 8 {
		return nil, src, fmt.Errorf("parcel: short ID")
	}
	p.ID = binary.LittleEndian.Uint64(src)
	src = src[8:]
	var err error
	p.Dest, src, err = agas.DecodeGID(src)
	if err != nil {
		return nil, src, fmt.Errorf("parcel: dest: %w", err)
	}
	p.Action, src, err = readString(src)
	if err != nil {
		return nil, src, fmt.Errorf("parcel: action: %w", err)
	}
	if len(src) < 4 {
		return nil, src, fmt.Errorf("parcel: short args length")
	}
	argLen := int(binary.LittleEndian.Uint32(src))
	src = src[4:]
	if len(src) < argLen {
		return nil, src, fmt.Errorf("parcel: args truncated: want %d have %d", argLen, len(src))
	}
	if argLen > 0 {
		p.Args = append([]byte(nil), src[:argLen]...)
	}
	src = src[argLen:]
	if len(src) < 2 {
		return nil, src, fmt.Errorf("parcel: short continuation count")
	}
	ncont := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	for i := 0; i < ncont; i++ {
		var c Continuation
		c.Target, src, err = agas.DecodeGID(src)
		if err != nil {
			return nil, src, fmt.Errorf("parcel: cont %d target: %w", i, err)
		}
		c.Action, src, err = readString(src)
		if err != nil {
			return nil, src, fmt.Errorf("parcel: cont %d action: %w", i, err)
		}
		p.Cont = append(p.Cont, c)
	}
	if len(src) < 8 {
		return nil, src, fmt.Errorf("parcel: short trailer")
	}
	p.Src = int(binary.LittleEndian.Uint32(src))
	p.Hops = int(binary.LittleEndian.Uint32(src[4:]))
	return p, src[8:], nil
}

func appendString(dst []byte, s string) []byte {
	if len(s) > MaxString {
		panic(fmt.Sprintf("parcel: string too long: %d exceeds wire limit %d", len(s), MaxString))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", src, fmt.Errorf("short string length")
	}
	n := int(binary.LittleEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", src, fmt.Errorf("string truncated: want %d have %d", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}
