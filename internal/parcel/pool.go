package parcel

import (
	"sync"
	"sync/atomic"

	"repro/internal/agas"
)

// Pooling. The steady-state parcel path recycles Parcel values and encode
// buffers instead of allocating per message. Ownership is explicit and
// linear: a pooled parcel has exactly one holder at a time — the holder
// either passes it on (enqueue, park, re-route) or calls Release exactly
// once when dispatch completes. Encode buffers follow the same rule: the
// encoder releases after the frame has been flushed to the transport or
// decoded by the in-process delivery.
//
// Parcels built by New (the public constructor) are not pooled: Release
// ignores them, so application code that retains a parcel after sending
// it — tests, traces — keeps today's safe semantics. Only the runtime's
// internal parcels (decoded arrivals, continuations, split-phase calls)
// opt into recycling via Acquire and DecodeInto.

var parcelPool = sync.Pool{New: func() any {
	parcelPoolMisses.Add(1)
	return &Parcel{}
}}

// Pool hit/miss accounting. A miss is a pool Get that had to allocate (the
// sync.Pool New func ran); everything else is a hit — the zero-allocation
// steady state. The counters are process-global, like the pools they
// observe, and are exported to the runtime's metric registry.
var (
	parcelPoolGets   atomic.Uint64
	parcelPoolMisses atomic.Uint64
	wirePoolGets     atomic.Uint64
	wirePoolMisses   atomic.Uint64
)

// PoolStats reports the parcel and WireBuf pools' hit/miss counters since
// process start. Misses never exceed gets: the get is counted before the
// pool can run its allocating New func.
func PoolStats() (parcelHits, parcelMisses, wireHits, wireMisses uint64) {
	parcelMisses = parcelPoolMisses.Load()
	parcelHits = parcelPoolGets.Load() - parcelMisses
	wireMisses = wirePoolMisses.Load()
	wireHits = wirePoolGets.Load() - wireMisses
	return
}

// Acquire returns a pooled parcel initialized like New. The continuation
// stack is copied into the parcel's own storage (reused across recycles),
// so the caller's slice is not retained. args is referenced, not copied:
// the caller must not mutate it until the parcel is released. Pass the
// parcel to Release when dispatch completes.
func Acquire(dest agas.GID, action string, args []byte, cont ...Continuation) *Parcel {
	parcelPoolGets.Add(1)
	p := parcelPool.Get().(*Parcel)
	p.pooled = true
	p.released = false
	p.ID = NextID()
	p.Dest = dest
	p.Action = action
	p.AID = NoAID
	p.Args = args
	p.Cont = append(p.Cont[:0], cont...)
	p.ownsCont = true
	p.Src = 0
	p.Hops = 0
	p.Trace = TraceCtx{}
	return p
}

// blank returns a pooled zero parcel for DecodeInto to fill.
func blank() *Parcel {
	parcelPoolGets.Add(1)
	p := parcelPool.Get().(*Parcel)
	p.pooled = true
	p.released = false
	p.ID = 0
	p.Dest = agas.Nil
	p.Action = ""
	p.AID = NoAID
	p.Args = nil
	p.Cont = p.Cont[:0]
	p.ownsCont = true
	p.Src = 0
	p.Hops = 0
	p.Trace = TraceCtx{}
	return p
}

// Release returns a pooled parcel for reuse. It is a no-op for parcels
// built with New, so callers may release unconditionally at the end of a
// dispatch. The parcel (and any Args slice it decoded) must not be touched
// afterwards. With pool debugging enabled (SetPoolDebug, or the debugpool
// build tag) a double release panics and released parcels are poisoned so
// use-after-release fails loudly instead of corrupting a later parcel.
func Release(p *Parcel) {
	if p == nil || !p.pooled {
		return
	}
	if cap(p.argsBuf) > maxPooledCapacity {
		// A jumbo payload must not pin megabytes of backing array on a
		// pool entry serving ~100-byte steady-state parcels (the same
		// guard the TCP read buffer applies).
		p.argsBuf = nil
	}
	if poolDebug.Load() {
		if p.released {
			panic("parcel: double release of " + p.String())
		}
		p.released = true
		poison(p)
		parcelPool.Put(p)
		return
	}
	p.Args = nil // never retain a caller's args slice across recycles
	parcelPool.Put(p)
}

// maxPooledCapacity bounds the backing arrays recycled through the
// parcel and wire-buffer pools: anything grown past it by a jumbo
// payload is dropped to the garbage collector on release instead of
// being pinned at high-water size forever.
const maxPooledCapacity = 64 << 10

// poolDebug enables poison-on-put and double-release checks; the race
// stress tests and the debugpool build tag turn it on.
var poolDebug atomic.Bool

// SetPoolDebug toggles pool poisoning. Intended for tests; flipping it
// while parcels are in flight only affects parcels released afterwards.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// poison overwrites a released parcel so any later observation misfires
// deterministically: the nil Dest makes a reused send panic, the action
// name shows up in any error, and args bytes are shredded.
func poison(p *Parcel) {
	p.ID = 0xdddddddddddddddd
	p.Dest = agas.Nil
	p.Action = "px.poisoned.use-after-release"
	p.AID = NoAID
	p.Args = nil
	p.Trace = TraceCtx{}
	// Shred only the parcel-owned backing store: an Acquire'd parcel merely
	// references its caller's args slice, which is not ours to scribble on.
	buf := p.argsBuf[:cap(p.argsBuf)]
	for i := range buf {
		buf[i] = 0xdd
	}
	p.argsBuf = p.argsBuf[:0]
	for i := range p.Cont {
		p.Cont[i] = Continuation{Action: "px.poisoned.use-after-release"}
	}
	p.Cont = p.Cont[:0]
}

// WireBuf is a pooled encode buffer. B is the live byte slice; callers
// append to B (reassigning it, since appends may grow it) and hand the
// whole WireBuf back to PutWire when the frame has been flushed or
// decoded.
type WireBuf struct{ B []byte }

var wirePool = sync.Pool{New: func() any {
	wirePoolMisses.Add(1)
	return &WireBuf{B: make([]byte, 0, 512)}
}}

// GetWire returns a pooled encode buffer with length 0 and retained
// capacity.
func GetWire() *WireBuf {
	wirePoolGets.Add(1)
	w := wirePool.Get().(*WireBuf)
	w.B = w.B[:0]
	return w
}

// PutWire recycles an encode buffer. The slice must not be referenced
// afterwards; with pool debugging enabled its contents are shredded first.
func PutWire(w *WireBuf) {
	if w == nil {
		return
	}
	if cap(w.B) > maxPooledCapacity {
		w.B = make([]byte, 0, 512) // shed the jumbo backing array
	}
	if poolDebug.Load() {
		b := w.B[:cap(w.B)]
		for i := range b {
			b[i] = 0xdd
		}
	}
	wirePool.Put(w)
}
