//go:build race

package parcel

// raceEnabled reports that the race detector is active: it deliberately
// randomizes sync.Pool reuse, so exact allocation-count assertions are
// skipped under -race (the -race runs verify the ownership discipline
// instead).
const raceEnabled = true
