//go:build debugpool

package parcel

// Building with -tags debugpool turns pool poisoning on for the whole
// binary: released parcels and wire buffers are shredded on put and a
// double release panics. Use it to chase ownership bugs in the pooled
// hot path; the default build keeps the checks off the steady state.
func init() { SetPoolDebug(true) }
