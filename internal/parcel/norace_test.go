//go:build !race

package parcel

// raceEnabled reports that the race detector is active; see race_test.go.
const raceEnabled = false
