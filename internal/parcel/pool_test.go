package parcel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestPushContinuationOrder checks that repeated pushes prepend (LIFO) and
// interleave correctly with pops.
func TestPushContinuationOrder(t *testing.T) {
	p := New(sampleGID(1), "act", nil)
	for i := 0; i < 5; i++ {
		p.PushContinuation(Continuation{Target: sampleGID(uint64(i)), Action: fmt.Sprintf("c%d", i)})
	}
	for i := 4; i >= 0; i-- {
		c, ok := p.PopContinuation()
		if !ok || c.Action != fmt.Sprintf("c%d", i) {
			t.Fatalf("pop %d: got %q ok=%v", i, c.Action, ok)
		}
	}
	if _, ok := p.PopContinuation(); ok {
		t.Fatal("pop on empty stack succeeded")
	}
}

// TestPushContinuationAmortized proves pushing is amortized O(1)
// allocations: pushing N continuations onto one parcel must allocate far
// fewer than N times (only capacity-doubling growth), where the old
// implementation allocated a fresh slice per push.
func TestPushContinuationAmortized(t *testing.T) {
	const pushes = 1024
	allocs := testing.AllocsPerRun(10, func() {
		p := New(sampleGID(1), "act", nil)
		for i := 0; i < pushes; i++ {
			p.PushContinuation(Continuation{Target: sampleGID(uint64(i)), Action: "c"})
		}
	})
	// log2(1024) = 10 doublings; leave generous slack for the start size.
	if allocs > 32 {
		t.Fatalf("%d pushes cost %.0f allocations; want amortized O(1) growth", pushes, allocs)
	}
}

// TestPushContinuationDoesNotMutateCallerSlice: New aliases the caller's
// variadic slice, so the in-place push must copy before its first shift —
// the caller's backing array stays untouched.
func TestPushContinuationDoesNotMutateCallerSlice(t *testing.T) {
	s := make([]Continuation, 1, 4) // spare capacity invites in-place scribbling
	s[0] = Continuation{Target: sampleGID(1), Action: "orig"}
	p := New(sampleGID(9), "act", nil, s...)
	p.PushContinuation(Continuation{Target: sampleGID(2), Action: "pushed"})
	if s[0].Action != "orig" {
		t.Fatalf("caller slice mutated: %q", s[0].Action)
	}
	if len(p.Cont) != 2 || p.Cont[0].Action != "pushed" || p.Cont[1].Action != "orig" {
		t.Fatalf("stack wrong after push: %v", p.Cont)
	}
}

// BenchmarkPushContinuation measures sustained pushes with the stack
// drained by truncation (as the pooled lifecycle reuses capacity): the
// amortized cost is one in-place shift, with allocations only at
// capacity-doubling growth — the old implementation allocated a fresh
// slice on every single push.
func BenchmarkPushContinuation(b *testing.B) {
	p := New(sampleGID(1), "act", nil)
	c := Continuation{Target: sampleGID(2), Action: "c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.PushContinuation(c)
		if len(p.Cont) == 64 {
			p.Cont = p.Cont[:0]
		}
	}
}

// TestReleaseIgnoresUnpooled: parcels from New are never recycled, so
// application code may keep using them after an (erroneous or defensive)
// Release.
func TestReleaseIgnoresUnpooled(t *testing.T) {
	p := New(sampleGID(1), "act", NewArgs().Int64(7).Encode())
	Release(p)
	if p.Action != "act" || p.Dest != sampleGID(1) {
		t.Fatalf("unpooled parcel mutated by Release: %v", p)
	}
}

// TestDecodePooledOwnsArgs: a pooled decode must copy argument bytes out
// of the source buffer — the transport reuses read buffers the moment the
// handler returns.
func TestDecodePooledOwnsArgs(t *testing.T) {
	src := New(sampleGID(3), "act", NewArgs().Int64(42).String("payload").Encode()).Encode(nil)
	p, rest, err := DecodePooled(src)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d trailing)", err, len(rest))
	}
	want := append([]byte(nil), p.Args...)
	for i := range src {
		src[i] = 0xee // shred the wire buffer, as a transport would reuse it
	}
	if !bytes.Equal(p.Args, want) {
		t.Fatal("pooled parcel aliases the decode source buffer")
	}
	Release(p)
}

// TestPoolDoubleReleasePanics: with debugging on, releasing twice is a
// loud bug, not silent pool corruption.
func TestPoolDoubleReleasePanics(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	p := Acquire(sampleGID(1), "act", nil)
	Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	Release(p)
}

// TestPoolStress hammers the pooled acquire/encode/decode/release cycle
// from many goroutines with poisoning enabled. Run under -race it checks
// the ownership discipline end to end: a recycled parcel or wire buffer
// observed after release shows up as shredded bytes (decode failure or
// poisoned action name) or as a data race.
func TestPoolStress(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			args := NewArgs().Uint64(seed).String("stress-payload").Encode()
			for i := 0; i < rounds; i++ {
				p := Acquire(sampleGID(seed), "stress.act", args,
					Continuation{Target: sampleGID(seed + 1), Action: "stress.cont"})
				w := GetWire()
				w.B = p.Encode(w.B)
				Release(p)
				q, rest, err := DecodePooled(w.B)
				PutWire(w)
				if err != nil || len(rest) != 0 {
					t.Errorf("round %d: decode: %v (%d trailing)", i, err, len(rest))
					return
				}
				if q.Action != "stress.act" || q.Dest != sampleGID(seed) {
					t.Errorf("round %d: recycled parcel corrupted: %v", i, q)
					return
				}
				r := NewReader(q.Args)
				if got := r.Uint64(); got != seed || r.Err() != nil {
					t.Errorf("round %d: args corrupted: %d (%v)", i, got, r.Err())
					return
				}
				Release(q)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}
