package parcel

import (
	"fmt"

	"repro/internal/agas"
)

// EncodeAny encodes a single dynamically-typed value using the argument
// codec. It supports the codec's value set: nil, bool, int/int64, uint64,
// float64, string, []byte, []float64, []int64, and agas.GID. Action results
// travel through this when forwarded to a continuation.
func EncodeAny(v any) ([]byte, error) {
	a := NewArgs()
	switch x := v.(type) {
	case nil:
		return a.Bool(false).Encode(), nil // nil travels as a false bool sentinel record
	case bool:
		return a.Bool(x).Encode(), nil
	case int:
		return a.Int64(int64(x)).Encode(), nil
	case int64:
		return a.Int64(x).Encode(), nil
	case uint64:
		return a.Uint64(x).Encode(), nil
	case float64:
		return a.Float64(x).Encode(), nil
	case string:
		return a.String(x).Encode(), nil
	case []byte:
		return a.Bytes(x).Encode(), nil
	case []float64:
		return a.Float64s(x).Encode(), nil
	case []int64:
		return a.Int64s(x).Encode(), nil
	case agas.GID:
		return a.GID(x).Encode(), nil
	default:
		return nil, fmt.Errorf("parcel: cannot encode %T as parcel value", v)
	}
}

// DecodeAny decodes a value produced by EncodeAny by dispatching on the
// leading type tag. Integers come back as int64 and byte/float/int vectors
// as their slice types.
func DecodeAny(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("parcel: empty value record")
	}
	r := NewReader(buf)
	var v any
	switch buf[0] {
	case tagBool:
		v = r.Bool()
	case tagInt64:
		v = r.Int64()
	case tagUint64:
		v = r.Uint64()
	case tagFloat64:
		v = r.Float64()
	case tagString:
		v = r.String()
	case tagBytes:
		v = r.Bytes()
	case tagFloat64s:
		v = r.Float64s()
	case tagInt64s:
		v = r.Int64s()
	case tagGID:
		v = r.GID()
	default:
		return nil, fmt.Errorf("parcel: unknown value tag %d", buf[0])
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}
