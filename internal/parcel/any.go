package parcel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/agas"
)

// ValueCodec extends EncodeAny/DecodeAny with one application value type.
// Encode reports ok=false when v is not its type (the next codec is
// tried); Decode reconstructs a value from the bytes Encode produced.
// Codecs travel by name, so a codec must be registered under the same name
// on every node that may host the value — the same contract actions obey.
type ValueCodec struct {
	Encode func(v any) (payload []byte, ok bool, err error)
	Decode func(payload []byte) (any, error)
}

// valueCodecs is the registry of application codecs. Registration is an
// init-time operation; reads take the lock but the map is tiny.
var (
	valueCodecMu    sync.RWMutex
	valueCodecs     = map[string]ValueCodec{}
	valueCodecOrder []string
)

// RegisterValueCodec installs a named application codec consulted by
// EncodeAny for values outside the built-in set and by DecodeAny for
// records the codec produced. Registering a duplicate name panics:
// codec names are wire-visible constants, so a collision is a program bug.
func RegisterValueCodec(name string, c ValueCodec) {
	if name == "" || c.Encode == nil || c.Decode == nil {
		panic("parcel: value codec needs a name, an encoder, and a decoder")
	}
	valueCodecMu.Lock()
	defer valueCodecMu.Unlock()
	if _, dup := valueCodecs[name]; dup {
		panic(fmt.Sprintf("parcel: value codec %q already registered", name))
	}
	valueCodecs[name] = c
	valueCodecOrder = append(valueCodecOrder, name)
}

// encodeCustom renders a tagCustom record: tag | u16 name | u32 payload.
func encodeCustom(name string, payload []byte) []byte {
	buf := make([]byte, 0, 1+2+len(name)+4+len(payload))
	buf = append(buf, tagCustom)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// decodeCustom parses a tagCustom record and dispatches to its codec.
func decodeCustom(buf []byte) (any, error) {
	buf = buf[1:] // tag, checked by the caller
	if len(buf) < 2 {
		return nil, fmt.Errorf("parcel: custom value: short name length")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return nil, fmt.Errorf("parcel: custom value: name truncated")
	}
	name := string(buf[:n])
	buf = buf[n:]
	if len(buf) < 4 {
		return nil, fmt.Errorf("parcel: custom value %q: short payload length", name)
	}
	pn := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < pn {
		return nil, fmt.Errorf("parcel: custom value %q: payload truncated", name)
	}
	valueCodecMu.RLock()
	c, ok := valueCodecs[name]
	valueCodecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("parcel: no value codec %q registered on this node", name)
	}
	return c.Decode(buf[:pn])
}

// EncodeAny encodes a single dynamically-typed value using the argument
// codec. It supports the codec's value set: nil, bool, int/int64, uint64,
// float64, string, []byte, []float64, []int64, and agas.GID. Action results
// travel through this when forwarded to a continuation.
func EncodeAny(v any) ([]byte, error) {
	a := NewArgs()
	switch x := v.(type) {
	case nil:
		return a.Bool(false).Encode(), nil // nil travels as a false bool sentinel record
	case bool:
		return a.Bool(x).Encode(), nil
	case int:
		return a.Int64(int64(x)).Encode(), nil
	case int64:
		return a.Int64(x).Encode(), nil
	case uint64:
		return a.Uint64(x).Encode(), nil
	case float64:
		return a.Float64(x).Encode(), nil
	case string:
		return a.String(x).Encode(), nil
	case []byte:
		return a.Bytes(x).Encode(), nil
	case []float64:
		return a.Float64s(x).Encode(), nil
	case []int64:
		return a.Int64s(x).Encode(), nil
	case agas.GID:
		return a.GID(x).Encode(), nil
	default:
		valueCodecMu.RLock()
		names := valueCodecOrder
		valueCodecMu.RUnlock()
		for _, name := range names {
			valueCodecMu.RLock()
			c := valueCodecs[name]
			valueCodecMu.RUnlock()
			payload, ok, err := c.Encode(v)
			if err != nil {
				return nil, fmt.Errorf("parcel: value codec %q: %w", name, err)
			}
			if ok {
				return encodeCustom(name, payload), nil
			}
		}
		return nil, fmt.Errorf("parcel: cannot encode %T as parcel value", v)
	}
}

// DecodeAny decodes a value produced by EncodeAny by dispatching on the
// leading type tag. Integers come back as int64 and byte/float/int vectors
// as their slice types.
func DecodeAny(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("parcel: empty value record")
	}
	if buf[0] == tagCustom {
		return decodeCustom(buf)
	}
	r := NewReader(buf)
	var v any
	switch buf[0] {
	case tagBool:
		v = r.Bool()
	case tagInt64:
		v = r.Int64()
	case tagUint64:
		v = r.Uint64()
	case tagFloat64:
		v = r.Float64()
	case tagString:
		v = r.String()
	case tagBytes:
		v = r.Bytes()
	case tagFloat64s:
		v = r.Float64s()
	case tagInt64s:
		v = r.Int64s()
	case tagGID:
		v = r.GID()
	default:
		return nil, fmt.Errorf("parcel: unknown value tag %d", buf[0])
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}
