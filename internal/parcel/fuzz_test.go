package parcel

import (
	"bytes"
	"testing"

	"repro/internal/agas"
)

// fuzzSeeds are well-formed parcels spanning the wire format's features,
// used both as the fuzz corpus and for round-trip checks.
func fuzzSeeds() []*Parcel {
	return []*Parcel{
		New(agas.GID{Home: 0, Kind: agas.KindData, Seq: 1}, "nop", nil),
		New(agas.GID{Home: 3, Kind: agas.KindLCO, Seq: 42}, "px.lco.set",
			NewArgs().Int64(7).String("payload").Encode()),
		New(agas.GID{Home: 1, Kind: agas.KindData, Seq: 9}, "chain",
			[]byte{0xde, 0xad, 0xbe, 0xef},
			Continuation{Target: agas.GID{Home: 2, Kind: agas.KindLCO, Seq: 10}, Action: "relay"},
			Continuation{Target: agas.GID{Home: 0, Kind: agas.KindLCO, Seq: 11}, Action: "px.lco.set"}),
		{ID: 123, Dest: agas.GID{Home: 5, Kind: agas.KindHardware, Seq: ^uint64(0)},
			Action: "hw.ping", Src: 4, Hops: 3},
		// Boundary shapes for the alias-decode path: args big enough to
		// dominate the frame, a continuation stack at the wire limit, and
		// an empty-args parcel (Args must come back nil, not empty-aliased).
		New(agas.GID{Home: 2, Kind: agas.KindData, Seq: 77}, "bulk",
			bytes.Repeat([]byte{0xa5}, 4096)),
		maxContParcel(),
		New(agas.GID{Home: 6, Kind: agas.KindProcess, Seq: 8}, "spawn", nil,
			Continuation{Target: agas.GID{Home: 6, Kind: agas.KindLCO, Seq: 9}, Action: "join"}),
	}
}

// maxContParcel builds a parcel with a continuation stack at the wire
// limit, every entry distinct.
func maxContParcel() *Parcel {
	p := New(agas.GID{Home: 1, Kind: agas.KindData, Seq: 2}, "fanout", []byte{1})
	for i := 0; i < MaxContinuations; i++ {
		p.Cont = append(p.Cont, Continuation{
			Target: agas.GID{Home: uint32(i), Kind: agas.KindLCO, Seq: uint64(i)},
			Action: "collect",
		})
	}
	return p
}

// FuzzParcelDecode feeds Decode arbitrary bytes: it must never panic, and
// any input it accepts must re-encode and re-decode to the same parcel
// (the codec now consumes untrusted bytes from sockets).
func FuzzParcelDecode(f *testing.F) {
	for _, p := range fuzzSeeds() {
		f.Add(p.Encode(nil))
		// The base encoding followed by the capability-gated trace trailer:
		// decoders must hand the trailer back as the remainder, untouched.
		f.Add(TraceCtx{ID: 0xabcd, Span: 0x1234, Flags: TraceSampled}.Append(p.Encode(nil)))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest, err := Decode(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("remainder grew: %d bytes from %d input", len(rest), len(data))
		}
		if p.Trace != (TraceCtx{}) {
			t.Fatalf("base decode populated the trace context: %+v", p.Trace)
		}
		re := p.Encode(nil)
		q, tail, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted parcel failed: %v", err)
		}
		if len(tail) != 0 {
			t.Fatalf("re-decode left %d trailing bytes", len(tail))
		}
		if !parcelEqual(p, q) {
			t.Fatalf("round trip mismatch:\n first %+v\nsecond %+v", p, q)
		}
		// DecodeAliased is the same parse with aliased Args: it must
		// accept exactly the same inputs and produce the same parcel,
		// with Args windowing the input rather than copied out of it.
		pa, restA, errA := DecodeAliased(data)
		if errA != nil {
			t.Fatalf("Decode accepted but DecodeAliased rejected: %v", errA)
		}
		if len(restA) != len(rest) || !parcelEqual(p, pa) {
			t.Fatalf("aliased decode diverged:\n copy  %+v\n alias %+v", p, pa)
		}
		if len(pa.Args) > 0 {
			// Prove the alias: flipping the input bytes must show through
			// pa.Args (a copy would keep the original values). p.Args is
			// already a private copy, unaffected.
			for i := range data {
				data[i] = ^data[i]
			}
			if bytes.Equal(pa.Args, p.Args) {
				t.Fatal("DecodeAliased copied Args instead of aliasing the input")
			}
		}
		if len(rest) == TraceWireSize {
			// A trailer-sized remainder must parse and round-trip through
			// Append exactly (the receive path in core depends on this).
			tc, tcRest, terr := DecodeTrace(rest)
			if terr != nil || len(tcRest) != 0 {
				t.Fatalf("trailer decode: %v, %d left", terr, len(tcRest))
			}
			combined := tc.Append(p.Encode(nil))
			q2, rest2, err := Decode(combined)
			if err != nil {
				t.Fatalf("combined re-decode: %v", err)
			}
			tc2, _, terr := DecodeTrace(rest2)
			if terr != nil || tc2 != tc || !parcelEqual(p, q2) {
				t.Fatalf("combined round trip: %+v vs %+v (%v)", tc, tc2, terr)
			}
		}
	})
}

// FuzzParcelDecodeInterned feeds the interned-form decoder arbitrary
// bytes against a small table: it must never panic, and any accepted
// input must re-encode and re-decode identically. The interned decoder
// consumes the same untrusted socket bytes the plain one does.
func FuzzParcelDecodeInterned(f *testing.F) {
	tbl := testTable{"nop", "px.lco.set", "relay"}
	for _, p := range fuzzSeeds() {
		f.Add(p.EncodeInterned(nil, tbl))
		f.Add(p.EncodeInterned(nil, nil))
		f.Add(TraceCtx{ID: 1, Span: 2, Flags: TraceSampled}.Append(p.EncodeInterned(nil, tbl)))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest, err := DecodePooledInterned(data, tbl)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("remainder grew: %d bytes from %d input", len(rest), len(data))
		}
		re := p.EncodeInterned(nil, tbl)
		q, tail, err := DecodePooledInterned(re, tbl)
		if err != nil {
			t.Fatalf("re-decode of accepted parcel failed: %v", err)
		}
		if len(tail) != 0 {
			t.Fatalf("re-decode left %d trailing bytes", len(tail))
		}
		if !parcelEqual(p, q) {
			t.Fatalf("round trip mismatch:\n first %+v\nsecond %+v", p, q)
		}
		Release(q)
		Release(p)
	})
}

func TestParcelEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range fuzzSeeds() {
		wire := p.Encode(nil)
		q, rest, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode %s: %v", p, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %s left %d bytes", p, len(rest))
		}
		if !parcelEqual(p, q) {
			t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", p, q)
		}
	}
}

func TestEncodeEnforcesWireLimits(t *testing.T) {
	long := string(bytes.Repeat([]byte{'a'}, MaxString+1))
	mustPanic(t, "oversized action", func() {
		(&Parcel{Dest: agas.GID{Home: 0, Kind: agas.KindData, Seq: 1}, Action: long}).Encode(nil)
	})
	mustPanic(t, "oversized continuation stack", func() {
		p := &Parcel{Dest: agas.GID{Home: 0, Kind: agas.KindData, Seq: 1}, Action: "a"}
		p.Cont = make([]Continuation, MaxContinuations+1)
		p.Encode(nil)
	})
	// At the limit, encoding succeeds and survives a round trip.
	p := &Parcel{ID: 1, Dest: agas.GID{Home: 0, Kind: agas.KindData, Seq: 1},
		Action: string(bytes.Repeat([]byte{'b'}, MaxString))}
	q, _, err := Decode(p.Encode(nil))
	if err != nil || q.Action != p.Action {
		t.Fatalf("limit-sized action did not round trip: %v", err)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func parcelEqual(a, b *Parcel) bool {
	if a.ID != b.ID || a.Dest != b.Dest || a.Action != b.Action ||
		a.Src != b.Src || a.Hops != b.Hops || a.Trace != b.Trace ||
		len(a.Cont) != len(b.Cont) {
		return false
	}
	if !bytes.Equal(a.Args, b.Args) {
		return false
	}
	for i := range a.Cont {
		if a.Cont[i] != b.Cont[i] {
			return false
		}
	}
	return true
}
