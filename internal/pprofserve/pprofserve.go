// Package pprofserve starts the net/http/pprof debug endpoint for the
// repo's command-line binaries (the -pprof flag of pxnode and pxbench),
// so the profiling plumbing lives in one place.
package pprofserve

import (
	"net/http"
	_ "net/http/pprof" // installs the /debug/pprof handlers on the default mux
)

// Start serves net/http/pprof on addr in a background goroutine and
// returns immediately; an empty addr is a no-op. Lifecycle messages (the
// endpoint banner, a failed bind) are reported through logf.
func Start(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			logf("pprof server: %v", err)
		}
	}()
	logf("pprof at http://%s/debug/pprof/", addr)
}
