// Package pprofserve starts the operator HTTP endpoints for the repo's
// command-line binaries: the net/http/pprof debug mux (the -pprof flag of
// pxnode and pxbench) and the metrics/trace export (-metrics), so the
// serving plumbing lives in one place.
package pprofserve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // installs the /debug/pprof handlers on the default mux

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Start serves net/http/pprof on addr in a background goroutine and
// returns immediately; an empty addr is a no-op. Lifecycle messages (the
// endpoint banner, a failed bind) are reported through logf.
func Start(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			logf("pprof server: %v", err)
		}
	}()
	logf("pprof at http://%s/debug/pprof/", addr)
}

// spanJSON is the /trace wire form of one span; IDs render as fixed-width
// hex so operators can grep one trace across nodes.
type spanJSON struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent"`
	Kind   string `json:"kind"`
	Node   int32  `json:"node"`
	Loc    int32  `json:"loc"`
	When   int64  `json:"when"`
	Action string `json:"action,omitempty"`
}

// ServeMetrics serves the registry snapshot as JSON at /metrics and the
// retained trace spans at /trace, on its own listener (addr may be
// "127.0.0.1:0"; the bound address is returned). An empty addr is a
// no-op. The server runs for the life of the process.
func ServeMetrics(addr string, reg *metrics.Registry, spans *trace.Spans, logf func(format string, args ...any)) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := map[string]float64{}
		if reg != nil {
			snap = reg.Snapshot()
		}
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			logf("metrics encode: %v", err)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := []spanJSON{}
		if spans != nil {
			for _, sp := range spans.Snapshot() {
				out = append(out, spanJSON{
					Trace:  fmt.Sprintf("%016x", sp.Trace),
					ID:     fmt.Sprintf("%016x", sp.ID),
					Parent: fmt.Sprintf("%016x", sp.Parent),
					Kind:   sp.Kind.String(),
					Node:   sp.Node,
					Loc:    sp.Loc,
					When:   sp.When,
					Action: sp.Action,
				})
			}
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			logf("trace encode: %v", err)
		}
	})
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logf("metrics server: %v", err)
		}
	}()
	logf("metrics at http://%s/metrics", ln.Addr())
	return ln.Addr().String(), nil
}
