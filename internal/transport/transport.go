// Package transport moves opaque frames between the nodes of a
// multi-process ParalleX machine. A node is one OS process hosting a
// contiguous range of localities; the runtime layers parcel routing,
// distributed quiescence, and live object migration on top of the frame
// service defined here. Frames are opaque — the runtime's kinds (parcels,
// acks with piggybacked migration verdicts, MIGRATE payload pushes,
// directory commits, drain probes) all ride the same service, so a
// migration payload coalesces into the TCP transport's group-commit
// batches exactly as parcels do.
//
// Two implementations are provided: an in-process loopback fabric for
// deterministic tests (NewFabric) and a TCP transport carrying
// length-framed streams with a locality-range handshake (NewTCP).
package transport

import (
	"errors"
	"fmt"
)

// Handler consumes one received frame. from is the sending node's ID. The
// frame slice is valid only until the handler returns — transports reuse
// their read buffers, and the TCP transport's alias-decode path hands the
// handler a sub-slice of the connection read buffer itself — so a handler
// must copy any bytes it retains. Violations can be caught with the TCP
// transport's poison mode (TCPConfig.PoisonAliasedReads, default on under
// the debugpool build tag), which scribbles over the frame after the
// handler returns. Handlers run on transport goroutines and must not
// block indefinitely.
type Handler func(from int, frame []byte)

// Transport is the frame service joining the nodes of one machine.
type Transport interface {
	// Self reports this node's ID.
	Self() int
	// Nodes reports the machine's node count.
	Nodes() int
	// SetHandler installs the receive handler. It must be called exactly
	// once, before Start.
	SetHandler(h Handler)
	// Start begins receiving. Sends before Start may fail.
	Start() error
	// Send delivers frame to the given node. Delivery is asynchronous,
	// ordered per node pair, and at-most-once: an error means the frame
	// will NOT reach the peer's handler. Implementations must uphold this
	// by dropping the connection mid-frame on a failed write rather than
	// ever completing a frame after reporting failure — the runtime's
	// quiescence accounting releases a parcel's work unit on Send failure
	// and would double-release if the peer acknowledged it anyway.
	Send(node int, frame []byte) error
	// Close releases the transport. In-flight frames may be dropped.
	// Close is idempotent; after it returns no handler calls are made.
	Close() error
}

// HelloTransport is optionally implemented by transports that carry an
// application hello payload exchanged when two nodes connect. The runtime
// uses it to announce its action-interning table: because the payload
// rides the connection handshake, it reaches the peer before any frame
// sent over that connection, re-announcing automatically on reconnect.
// Transports without hello support simply leave peers un-announced — the
// runtime then speaks the universally understood string wire form.
type HelloTransport interface {
	Transport
	// SetHello installs the opaque payload announced to peers. It must be
	// called before Start; nil announces an empty payload.
	SetHello(payload []byte)
	// SetHelloHandler installs the receiver for peers' hello payloads. The
	// handler runs before any frame from that peer's connection is
	// delivered, may run again on reconnection, and may be called
	// concurrently for different peers. It must be set before Start.
	SetHelloHandler(h func(node int, payload []byte))
}

// LaneTransport is optionally implemented by transports that shard each
// peer pair across several independent connections ("lanes"). Lanes
// preserve ordering only within a lane: two frames sent on the same
// (node, lane) arrive in send order, frames on different lanes may not.
// The runtime exploits this by affinity-hashing parcels on their
// destination GID — per-object ordering is preserved while independent
// objects stop queueing behind each other — and by keeping control
// traffic (acks, hellos, membership beats, drain probes) on lane 0, so a
// transport without lane support behaves identically via plain Send.
type LaneTransport interface {
	Transport
	// Lanes reports how many lanes connect this node to each peer; always
	// >= 1. Plain Send is equivalent to SendLane on lane 0.
	Lanes() int
	// SendLane delivers frame to node on the given lane, under the same
	// at-most-once, error-means-non-delivery contract as Send. lane must
	// be in [0, Lanes()).
	SendLane(node, lane int, frame []byte) error
}

// MemberTransport is optionally implemented by transports whose machine
// can grow after Start: a joining node's handshake is accepted even when
// its ID is beyond the configured peer table, and the membership layer
// completes the admission by teaching the transport the joiner's dial
// address with AddPeer. Transports without membership support keep their
// fixed machine size.
type MemberTransport interface {
	Transport
	// AddPeer records (or updates) the dial address and announced
	// locality range of node, growing the peer table as needed. Safe to
	// call after Start; concurrent with sends.
	AddPeer(node int, addr string, lo, hi int) error
}

// MaxJoinNodes bounds the node ID a joining peer may announce — a sanity
// cap so a corrupt handshake cannot force a giant peer-table allocation.
const MaxJoinNodes = 4096

// MaxHello bounds a handshake hello payload; a peer announcing a larger
// one is treated as corrupt and disconnected.
const MaxHello = 1 << 20

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")

// MaxFrame bounds a frame's encoded size; a peer announcing a larger frame
// is treated as corrupt and disconnected.
const MaxFrame = 16 << 20

func checkNode(t Transport, node int) error {
	if node < 0 || node >= t.Nodes() {
		return fmt.Errorf("transport: node %d outside machine [0,%d)", node, t.Nodes())
	}
	if node == t.Self() {
		return fmt.Errorf("transport: node %d sending to itself", node)
	}
	return nil
}
