package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTCPLanesFanout is the sharded-lane ordering stress: many concurrent
// senders fan frames across every lane of a 4-lane pair (under -race in
// CI). Each sender sticks to one lane — the runtime's GID affinity
// contract — so per-sender order must survive even though the lanes' TCP
// streams race each other freely.
func TestTCPLanesFanout(t *testing.T) {
	nodes, cols := newTCPPair(t, func(c *TCPConfig) {
		c.Lanes = 4
	})
	tt := nodes[0].(*TCP)
	if tt.Lanes() != 4 {
		t.Fatalf("Lanes() = %d, want 4", tt.Lanes())
	}
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		lane := s % 4
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := tt.SendLane(1, lane, []byte(fmt.Sprintf("s%d.%d", s, i))); err != nil {
					t.Errorf("send s%d.%d lane %d: %v", s, i, lane, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	frames := cols[1].wait(t, senders*perSender)
	next := make([]int, senders)
	for _, f := range frames {
		var s, i int
		if _, err := fmt.Sscanf(f.data, "s%d.%d", &s, &i); err != nil || f.from != 0 {
			t.Fatalf("corrupt frame %q from %d", f.data, f.from)
		}
		if i != next[s] {
			t.Fatalf("sender %d (lane %d): frame %d arrived after %d sent", s, s%4, i, next[s])
		}
		next[s]++
	}
	// Every lane must have actually carried traffic — the point of
	// sharding is that frames do NOT all funnel through one stream.
	for lane := 0; lane < 4; lane++ {
		if batches, _, _ := tt.LaneBatchStats(lane); batches == 0 {
			t.Fatalf("lane %d wrote no batches", lane)
		}
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPLaneBounds pins SendLane's index validation.
func TestTCPLaneBounds(t *testing.T) {
	nodes, _ := newTCPPair(t, func(c *TCPConfig) { c.Lanes = 2 })
	defer nodes[0].Close()
	defer nodes[1].Close()
	tt := nodes[0].(*TCP)
	if err := tt.SendLane(1, -1, []byte("x")); err == nil {
		t.Fatal("negative lane accepted")
	}
	if err := tt.SendLane(1, 2, []byte("x")); err == nil {
		t.Fatal("out-of-range lane accepted")
	}
}

// TestTCPLanesInteropLaneless verifies the rolling-upgrade story in the
// direction the handshake supports: a lane-capable node receives from a
// pre-lane (v2-handshake) peer and replies over lane 0. The reverse
// direction is covered by TestTCPAcceptsV1Handshake's hand-rolled client.
func TestTCPLanesInteropLaneless(t *testing.T) {
	// Node 0 speaks 4 lanes; node 1 is a plain single-lane node. Frames
	// flow both ways: 0's lane sends all land on 1's one inbound path,
	// and 1's plain sends land on 0 as lane-0 traffic.
	tcps := make([]*TCP, 2)
	addrs := make([]string, 2)
	for i := range tcps {
		cfg := TCPConfig{Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2)}
		if i == 0 {
			cfg.Lanes = 4
		}
		tt, err := NewTCP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tt
		addrs[i] = tt.Addr().String()
	}
	cols := make([]*collector, 2)
	for i, tt := range tcps {
		tt.SetPeers(addrs)
		cols[i] = &collector{}
		tt.SetHandler(cols[i].handle)
		if err := tt.Start(); err != nil {
			t.Fatal(err)
		}
		defer tt.Close()
	}
	for lane := 0; lane < 4; lane++ {
		if err := tcps[0].SendLane(1, lane, []byte(fmt.Sprintf("lane%d", lane))); err != nil {
			t.Fatalf("send lane %d: %v", lane, err)
		}
	}
	if err := tcps[1].Send(0, []byte("plain")); err != nil {
		t.Fatalf("plain send: %v", err)
	}
	cols[1].wait(t, 4)
	if got := cols[0].wait(t, 1); got[0].data != "plain" {
		t.Fatalf("got %q", got[0].data)
	}
}

// retainer is a deliberately broken Handler: it keeps the frame slice
// after returning, violating the copy-what-you-retain contract.
type retainer struct {
	mu       sync.Mutex
	retained [][]byte
	seen     chan struct{}
}

func (r *retainer) handle(from int, frame []byte) {
	r.mu.Lock()
	r.retained = append(r.retained, frame)
	r.mu.Unlock()
	r.seen <- struct{}{}
}

// TestTCPPoisonCatchesRetainedFrame arms poison mode against a handler
// that illegally retains its aliased frame: after the handler returns the
// transport scribbles 0xdd over the connection-buffer window, so the
// retained slice must observe garbage instead of the original payload —
// the violation is caught instead of silently reading recycled bytes.
// Under -race the scribble also flags any concurrent reader.
func TestTCPPoisonCatchesRetainedFrame(t *testing.T) {
	ret := &retainer{seen: make(chan struct{}, 4)}
	tcps := make([]*TCP, 2)
	addrs := make([]string, 2)
	for i := range tcps {
		tt, err := NewTCP(TCPConfig{Self: i, Listen: "127.0.0.1:0",
			Peers: make([]string, 2), PoisonAliasedReads: true})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tt
		addrs[i] = tt.Addr().String()
	}
	col := &collector{}
	for i, tt := range tcps {
		tt.SetPeers(addrs)
		if i == 1 {
			tt.SetHandler(ret.handle)
		} else {
			tt.SetHandler(col.handle)
		}
		if err := tt.Start(); err != nil {
			t.Fatal(err)
		}
		defer tt.Close()
	}
	payload := []byte("retained-payload")
	if err := tcps[0].Send(1, payload); err != nil {
		t.Fatal(err)
	}
	<-ret.seen
	// The poison scribble happens on the receive goroutine after the
	// handler returns; a second frame through the same connection proves
	// it has run (the read loop is strictly sequential per connection).
	if err := tcps[0].Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-ret.seen
	// Close both ends before inspecting: Close waits out the receive
	// goroutines, so the read below cannot race a later scribble — the
	// violator's -race experience, reproduced here race-cleanly.
	tcps[0].Close()
	tcps[1].Close()

	first := ret.retained[0]
	if bytes.Equal(first, payload) {
		t.Fatalf("retained frame still reads %q — poison mode did not scribble", first)
	}
	if first[len(first)-1] != 0xdd {
		t.Fatalf("retained frame tail reads %#x, want the 0xdd poison", first[len(first)-1])
	}
}

// TestTCPMixedAliasCapability runs an aliasing node against a node forced
// onto the copy path (DisableAliasRead), mirroring the interning/trace
// mixed-capability tests: the read strategy is a per-node private choice
// and must not leak into the wire contract.
func TestTCPMixedAliasCapability(t *testing.T) {
	tcps := make([]*TCP, 2)
	addrs := make([]string, 2)
	for i := range tcps {
		cfg := TCPConfig{Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2)}
		if i == 1 {
			cfg.DisableAliasRead = true
		}
		tt, err := NewTCP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tt
		addrs[i] = tt.Addr().String()
	}
	nodes := make([]Transport, 2)
	cols := make([]*collector, 2)
	for i, tt := range tcps {
		tt.SetPeers(addrs)
		cols[i] = &collector{}
		tt.SetHandler(cols[i].handle)
		if err := tt.Start(); err != nil {
			t.Fatal(err)
		}
		nodes[i] = tt
	}
	checkBatchedFlood(t, nodes, cols)
	// And the reverse direction: the copying node sends to the aliasing
	// node.
	for i := 0; i < 50; i++ {
		if err := nodes[1].Send(0, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	frames := cols[0].wait(t, 50)
	for i, f := range frames {
		if f.data != fmt.Sprintf("r%d", i) {
			t.Fatalf("frame %d: %q", i, f.data)
		}
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPJumboFrameCopyPath sends a frame larger than the connection read
// buffer (64KB), which must take the copying path even in alias mode and
// arrive intact.
func TestTCPJumboFrameCopyPath(t *testing.T) {
	nodes, cols := newTCPPair(t, nil)
	defer nodes[0].Close()
	defer nodes[1].Close()
	jumbo := make([]byte, 300<<10)
	for i := range jumbo {
		jumbo[i] = byte(i * 31)
	}
	if err := nodes[0].Send(1, jumbo); err != nil {
		t.Fatal(err)
	}
	got := cols[1].wait(t, 1)
	if got[0].data != string(jumbo) {
		t.Fatal("jumbo frame corrupted in flight")
	}
}

// TestTCPSameHostFabric verifies the Unix-domain fast path engages
// automatically for loopback peers: a pair on 127.0.0.1 must carry its
// frames over the advertised socket (SameHostConns > 0), and a pair with
// the fabric disabled must not.
func TestTCPSameHostFabric(t *testing.T) {
	nodes, cols := newTCPPair(t, nil)
	if err := nodes[0].Send(1, []byte("over-uds")); err != nil {
		t.Fatal(err)
	}
	if got := cols[1].wait(t, 1); got[0].data != "over-uds" {
		t.Fatalf("got %q", got[0].data)
	}
	if n := nodes[0].(*TCP).SameHostConns(); n == 0 {
		t.Fatal("loopback pair did not use the same-host fabric")
	}
	for _, n := range nodes {
		n.Close()
	}

	off, offCols := newTCPPair(t, func(c *TCPConfig) { c.DisableSameHost = true })
	defer off[0].Close()
	defer off[1].Close()
	if err := off[0].Send(1, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	if got := offCols[1].wait(t, 1); got[0].data != "over-tcp" {
		t.Fatalf("got %q", got[0].data)
	}
	if n := off[0].(*TCP).SameHostConns(); n != 0 {
		t.Fatalf("DisableSameHost pair counted %d same-host conns", n)
	}
}

// TestTCPSameHostStaleSocket plants a dead socket file at a port's
// advertised path: bind must clear it, and the fabric must still engage.
func TestTCPSameHostStaleSocket(t *testing.T) {
	// First transport binds, advertises, and dies without cleanup
	// (simulated by closing the TCP side only after grabbing the path).
	tt, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: make([]string, 2)})
	if err != nil {
		t.Fatal(err)
	}
	addr := tt.Addr().String()
	tt.Close()
	// Close removed the socket; plant a stale one at the same path the
	// way a SIGKILLed process would leave it.
	path := sameHostPath(addr)
	if path == "" {
		t.Fatalf("no same-host path for %s", addr)
	}
	ln, err := listenSameHost(tt.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ln.(interface{ SetUnlinkOnClose(bool) }).SetUnlinkOnClose(false)
	ln.Close() // leaves the file behind

	// A successor on the same port must remove the corpse and bind.
	t2, err := NewTCP(TCPConfig{Self: 0, Listen: addr, Peers: make([]string, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	if t2.shm == nil {
		t.Fatal("successor did not bind the same-host listener over the stale socket")
	}
}

// TestTCPLanesCloseUnblocks verifies Close wakes senders blocked on the
// MaxPending bound of any lane.
func TestTCPLanesCloseUnblocks(t *testing.T) {
	nodes, _ := newTCPPair(t, func(c *TCPConfig) {
		c.Lanes = 2
		c.MaxPending = 64
	})
	defer nodes[1].Close()
	tt := nodes[0].(*TCP)
	l := tt.peers[1].lanes[1]
	l.mu.Lock()
	l.flushing = true
	l.pendBytes = 128
	l.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- tt.SendLane(1, 1, []byte("stuck")) }()
	time.Sleep(20 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blocked send succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock a backpressured lane sender")
	}
}
