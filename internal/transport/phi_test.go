package transport

import (
	"testing"
	"time"
)

func TestPhiDetectorAccrual(t *testing.T) {
	d := NewPhiDetector()
	base := time.Unix(1000, 0)

	// No history: benefit of the doubt.
	if phi := d.Phi(base.Add(time.Hour)); phi != 0 {
		t.Fatalf("phi with no samples = %v, want 0", phi)
	}
	d.Heartbeat(base)
	if phi := d.Phi(base.Add(time.Hour)); phi != 0 {
		t.Fatalf("phi with one sample = %v, want 0", phi)
	}

	// Steady 50ms beats: suspicion right after an arrival is negligible,
	// and grows without bound as silence stretches.
	now := base
	for i := 0; i < 40; i++ {
		now = now.Add(50 * time.Millisecond)
		d.Heartbeat(now)
	}
	if phi := d.Phi(now.Add(50 * time.Millisecond)); phi > 1 {
		t.Fatalf("phi one interval after last beat = %v, want <= 1", phi)
	}
	short := d.Phi(now.Add(200 * time.Millisecond))
	long := d.Phi(now.Add(2 * time.Second))
	if short >= long {
		t.Fatalf("phi not monotonic in silence: %v then %v", short, long)
	}
	if long < 8 {
		t.Fatalf("phi after 40x the beat interval = %v, want >= 8", long)
	}

	// Jittered beats keep the detector tolerant: with intervals between
	// 30ms and 120ms, a 150ms silence is not yet damning.
	j := NewPhiDetector()
	jnow := base
	for i := 0; i < 40; i++ {
		jnow = jnow.Add(time.Duration(30+(i*13)%90) * time.Millisecond)
		j.Heartbeat(jnow)
	}
	if phi := j.Phi(jnow.Add(150 * time.Millisecond)); phi > 8 {
		t.Fatalf("phi under jitter = %v, want < 8", phi)
	}

	// A late/duplicate timestamp must not poison the window.
	j.Heartbeat(jnow.Add(-time.Second))
	if got := j.LastHeartbeat(); got != jnow {
		t.Fatalf("out-of-order heartbeat moved last arrival to %v", got)
	}

	if d.Samples() != 41 {
		t.Fatalf("samples = %d, want 41", d.Samples())
	}
}
