package transport

import (
	"math"
	"sync"
	"time"
)

// PhiDetector is a phi-accrual failure detector over one peer's heartbeat
// arrivals (Hayashibara et al., "The φ accrual failure detector", SRDS
// 2004 — the design Cassandra and Akka ship). Instead of a boolean
// timeout it accrues suspicion continuously: Phi reports
// -log10(P(silence this long | the observed arrival distribution)), so
// phi 1 means a one-in-ten chance the peer is still alive, phi 8
// one-in-10^8. Callers compare Phi against a threshold and add a hard
// time floor to ride out scheduler stalls on loaded CI machines.
//
// The detector is a pure data structure: the membership layer feeds it
// Heartbeat on every arrival and polls Phi from its own clock. All
// methods are safe for concurrent use.
type PhiDetector struct {
	mu      sync.Mutex
	last    time.Time // most recent heartbeat arrival
	window  []float64 // ring of inter-arrival intervals, seconds
	next    int       // ring write cursor
	filled  bool      // ring has wrapped at least once
	samples int       // arrivals observed (including the first)
}

// phiWindow is the inter-arrival history size. Large enough to smooth
// jitter, small enough to adapt when the beat rate changes.
const phiWindow = 64

// minPhiStddev floors the interval standard deviation at 10% of the mean
// (and an absolute 1ms) so metronomic beats on an idle machine do not
// make the detector hair-triggered.
const minPhiStddev = 0.10

// NewPhiDetector creates a detector with no arrival history. Phi is 0
// until the first heartbeat: an unheard-from peer is given the benefit
// of the doubt while the connection is still coming up.
func NewPhiDetector() *PhiDetector {
	return &PhiDetector{window: make([]float64, phiWindow)}
}

// Heartbeat records one arrival at time now. Out-of-order or duplicate
// timestamps (now before the previous arrival) only refresh liveness.
func (d *PhiDetector) Heartbeat(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.samples > 0 {
		if dt := now.Sub(d.last).Seconds(); dt > 0 {
			d.window[d.next] = dt
			d.next = (d.next + 1) % len(d.window)
			if d.next == 0 {
				d.filled = true
			}
		}
	}
	if now.After(d.last) {
		d.last = now
	}
	d.samples++
}

// stats reports the mean and floored standard deviation of the recorded
// inter-arrival intervals. Callers hold mu.
func (d *PhiDetector) stats() (mean, stddev float64, n int) {
	n = d.next
	if d.filled {
		n = len(d.window)
	}
	if n == 0 {
		return 0, 0, 0
	}
	for i := 0; i < n; i++ {
		mean += d.window[i]
	}
	mean /= float64(n)
	for i := 0; i < n; i++ {
		dv := d.window[i] - mean
		stddev += dv * dv
	}
	stddev = math.Sqrt(stddev / float64(n))
	if floor := mean * minPhiStddev; stddev < floor {
		stddev = floor
	}
	if stddev < 0.001 {
		stddev = 0.001
	}
	return mean, stddev, n
}

// Phi reports the accrued suspicion at time now: 0 while fewer than two
// arrivals have been observed (no interval history), otherwise
// -log10 of the normal-tail probability that a live peer would stay
// silent for now-last given the observed inter-arrival distribution.
func (d *PhiDetector) Phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	mean, stddev, n := d.stats()
	if n == 0 {
		return 0
	}
	silence := now.Sub(d.last).Seconds()
	if silence <= 0 {
		return 0
	}
	// P(X > silence) under N(mean, stddev), via the complementary error
	// function; clamp the tail away from zero so phi stays finite.
	z := (silence - mean) / (stddev * math.Sqrt2)
	tail := 0.5 * math.Erfc(z)
	if tail < 1e-300 {
		tail = 1e-300
	}
	return -math.Log10(tail)
}

// LastHeartbeat reports the most recent arrival (zero time if none).
func (d *PhiDetector) LastHeartbeat() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Samples reports how many heartbeats the detector has observed.
func (d *PhiDetector) Samples() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.samples
}
