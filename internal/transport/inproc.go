package transport

import (
	"fmt"
	"sync"
)

// Fabric is an in-process loopback interconnect: n endpoints that deliver
// frames to each other through unbounded per-endpoint queues. Each
// endpoint's frames are delivered by a single goroutine, so delivery order
// matches send order for every node pair, mirroring a TCP stream without
// sockets. It exists for deterministic multi-node tests.
type Fabric struct {
	eps []*inprocEndpoint
}

// NewFabric creates a fabric of n endpoints.
func NewFabric(n int) *Fabric {
	if n <= 0 {
		panic("transport: fabric needs at least one node")
	}
	f := &Fabric{eps: make([]*inprocEndpoint, n)}
	for i := range f.eps {
		f.eps[i] = &inprocEndpoint{fab: f, self: i, notify: make(chan struct{}, 1), done: make(chan struct{})}
	}
	return f
}

// Node returns endpoint i of the fabric.
func (f *Fabric) Node(i int) Transport {
	if i < 0 || i >= len(f.eps) {
		panic(fmt.Sprintf("transport: fabric node %d outside [0,%d)", i, len(f.eps)))
	}
	return f.eps[i]
}

type inprocFrame struct {
	from  int
	frame []byte
}

type inprocEndpoint struct {
	fab  *Fabric
	self int

	mu      sync.Mutex
	queue   []inprocFrame
	handler Handler
	started bool
	closed  bool

	notify chan struct{}
	done   chan struct{}
}

func (e *inprocEndpoint) Self() int  { return e.self }
func (e *inprocEndpoint) Nodes() int { return len(e.fab.eps) }

func (e *inprocEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handler != nil {
		panic("transport: handler already set")
	}
	e.handler = h
}

func (e *inprocEndpoint) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handler == nil {
		return fmt.Errorf("transport: node %d started without a handler", e.self)
	}
	if e.closed {
		return ErrClosed
	}
	if e.started {
		return nil
	}
	e.started = true
	go e.deliver()
	return nil
}

func (e *inprocEndpoint) Send(node int, frame []byte) error {
	if err := checkNode(e, node); err != nil {
		return err
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}
	dst := e.fab.eps[node]
	// The receiver owns its copy; the sender may reuse frame immediately,
	// exactly as with a socket write.
	cp := append([]byte(nil), frame...)
	dst.mu.Lock()
	if dst.closed || !dst.started {
		dst.mu.Unlock()
		return fmt.Errorf("transport: node %d unreachable", node)
	}
	dst.queue = append(dst.queue, inprocFrame{from: e.self, frame: cp})
	dst.mu.Unlock()
	select {
	case dst.notify <- struct{}{}:
	default:
	}
	return nil
}

func (e *inprocEndpoint) deliver() {
	defer close(e.done)
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return
			}
			<-e.notify
			continue
		}
		it := e.queue[0]
		e.queue = e.queue[1:]
		h := e.handler
		e.mu.Unlock()
		h(it.from, it.frame)
	}
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		started := e.started
		e.mu.Unlock()
		if started {
			<-e.done
		}
		return nil
	}
	e.closed = true
	e.queue = nil
	started := e.started
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
	if started {
		<-e.done
	}
	return nil
}
