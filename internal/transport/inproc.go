package transport

import (
	"fmt"
	"sync"
)

// Fabric is an in-process loopback interconnect: n endpoints that deliver
// frames to each other through unbounded per-endpoint queues. Each
// endpoint's frames are delivered by a single goroutine, so delivery order
// matches send order for every node pair, mirroring a TCP stream without
// sockets. It exists for deterministic multi-node tests.
type Fabric struct {
	eps []*inprocEndpoint
}

// NewFabric creates a fabric of n endpoints.
func NewFabric(n int) *Fabric {
	if n <= 0 {
		panic("transport: fabric needs at least one node")
	}
	f := &Fabric{eps: make([]*inprocEndpoint, n)}
	for i := range f.eps {
		f.eps[i] = &inprocEndpoint{fab: f, self: i, notify: make(chan struct{}, 1), done: make(chan struct{})}
	}
	return f
}

// Node returns endpoint i of the fabric.
func (f *Fabric) Node(i int) Transport {
	if i < 0 || i >= len(f.eps) {
		panic(fmt.Sprintf("transport: fabric node %d outside [0,%d)", i, len(f.eps)))
	}
	return f.eps[i]
}

type inprocFrame struct {
	from  int
	frame []byte
	hello bool // a peer hello payload, delivered to the hello handler
}

type inprocEndpoint struct {
	fab  *Fabric
	self int

	mu      sync.Mutex
	queue   []inprocFrame
	handler Handler
	hello   []byte
	onHello func(node int, payload []byte)
	started bool
	closed  bool

	notify chan struct{}
	done   chan struct{}
}

func (e *inprocEndpoint) Self() int  { return e.self }
func (e *inprocEndpoint) Nodes() int { return len(e.fab.eps) }

func (e *inprocEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handler != nil {
		panic("transport: handler already set")
	}
	e.handler = h
}

// SetHello installs the payload announced to peers (HelloTransport).
func (e *inprocEndpoint) SetHello(payload []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("transport: SetHello after Start")
	}
	e.hello = payload
}

// SetHelloHandler installs the receiver for peer hellos (HelloTransport).
func (e *inprocEndpoint) SetHelloHandler(h func(node int, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("transport: SetHelloHandler after Start")
	}
	e.onHello = h
}

func (e *inprocEndpoint) Start() error {
	e.mu.Lock()
	if e.handler == nil {
		e.mu.Unlock()
		return fmt.Errorf("transport: node %d started without a handler", e.self)
	}
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.started {
		e.mu.Unlock()
		return nil
	}
	e.started = true
	hello := e.hello
	e.mu.Unlock()
	go e.deliver()
	// Exchange hellos with peers that already started (endpoints starting
	// later push both directions themselves). Queued like frames, a hello
	// is delivered before any frame this endpoint sends afterwards —
	// mirroring the TCP handshake ordering. Both queues are appended
	// under both endpoints' locks (taken in index order, so concurrent
	// Starts cannot deadlock): the moment one side can observe the
	// other's hello — and start sending frames that depend on it, such as
	// interned parcels — its own hello is already queued ahead of them at
	// the peer. When two endpoints start concurrently both may push the
	// exchange; hello handlers are idempotent by contract, so the
	// duplicate is harmless.
	for _, o := range e.fab.eps {
		if o == e {
			continue
		}
		first, second := e, o
		if o.self < e.self {
			first, second = o, e
		}
		first.mu.Lock()
		second.mu.Lock()
		exchanged := o.started
		if exchanged {
			o.queue = append(o.queue, inprocFrame{from: e.self, frame: hello, hello: true})
			e.queue = append(e.queue, inprocFrame{from: o.self, frame: o.hello, hello: true})
		}
		second.mu.Unlock()
		first.mu.Unlock()
		if exchanged {
			o.poke()
			e.poke()
		}
	}
	return nil
}

// poke nudges the delivery goroutine.
func (e *inprocEndpoint) poke() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

func (e *inprocEndpoint) Send(node int, frame []byte) error {
	if err := checkNode(e, node); err != nil {
		return err
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}
	dst := e.fab.eps[node]
	// The receiver owns its copy; the sender may reuse frame immediately,
	// exactly as with a socket write.
	cp := append([]byte(nil), frame...)
	dst.mu.Lock()
	if dst.closed || !dst.started {
		dst.mu.Unlock()
		return fmt.Errorf("transport: node %d unreachable", node)
	}
	dst.queue = append(dst.queue, inprocFrame{from: e.self, frame: cp})
	dst.mu.Unlock()
	dst.poke()
	return nil
}

func (e *inprocEndpoint) deliver() {
	defer close(e.done)
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return
			}
			<-e.notify
			continue
		}
		it := e.queue[0]
		e.queue = e.queue[1:]
		h := e.handler
		oh := e.onHello
		e.mu.Unlock()
		if it.hello {
			if oh != nil {
				oh(it.from, it.frame)
			}
			continue
		}
		h(it.from, it.frame)
	}
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		started := e.started
		e.mu.Unlock()
		if started {
			<-e.done
		}
		return nil
	}
	e.closed = true
	e.queue = nil
	started := e.started
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
	if started {
		<-e.done
	}
	return nil
}
