package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig parameterizes one node's TCP transport.
type TCPConfig struct {
	// Self is this node's ID.
	Self int
	// Listen is the address this node accepts peer connections on, e.g.
	// "127.0.0.1:0". The bound address is available from Addr.
	Listen string
	// Peers maps node ID to dial address. Peers[Self] is ignored. It may be
	// left nil at construction and supplied via SetPeers before Start when
	// dynamic ports are in play.
	Peers []string
	// Ranges optionally maps node ID to its hosted locality range
	// {lo, hi} (half-open). When set, the handshake cross-checks each
	// peer's announced range and rejects mismatched machines.
	Ranges [][2]int
	// DialAttempts bounds connection attempts per Send; peers commonly
	// start in arbitrary order, so dialing retries. Default 40.
	DialAttempts int
	// DialBackoff is the initial retry delay, doubling per attempt up to
	// 500ms. Default 25ms.
	DialBackoff time.Duration
	// HandshakeTimeout bounds the handshake exchange. Default 5s.
	HandshakeTimeout time.Duration
}

func (c *TCPConfig) fill() {
	if c.DialAttempts <= 0 {
		c.DialAttempts = 40
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
}

// TCP carries frames between nodes as length-prefixed records on TCP
// streams. Each node listens for its peers and lazily dials one outbound
// (send-only) connection per peer, so connection establishment order never
// matters; a failed dial retries with exponential backoff a bounded number
// of times. Writes are buffered and flushed once per frame.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	mu      sync.Mutex
	handler Handler
	started bool
	closed  bool
	inbound map[net.Conn]struct{}

	peers []*tcpPeer
	wg    sync.WaitGroup
}

type tcpPeer struct {
	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	connected bool // a connection has succeeded at least once
}

// NewTCP binds the node's listen address and returns the transport.
// Receiving begins at Start.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	n := len(cfg.Peers)
	if n == 0 && cfg.Ranges != nil {
		n = len(cfg.Ranges)
	}
	if cfg.Self < 0 || (n > 0 && cfg.Self >= n) {
		return nil, fmt.Errorf("transport: node %d outside machine [0,%d)", cfg.Self, n)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{cfg: cfg, ln: ln, inbound: make(map[net.Conn]struct{})}
	t.setPeerCount(n)
	return t, nil
}

func (t *TCP) setPeerCount(n int) {
	t.peers = make([]*tcpPeer, n)
	for i := range t.peers {
		t.peers[i] = &tcpPeer{}
	}
}

// Addr reports the bound listen address (useful with "127.0.0.1:0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs the node→address table; required before Start when the
// table was not known at construction.
func (t *TCP) SetPeers(peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetPeers after Start")
	}
	t.cfg.Peers = peers
	if len(t.peers) != len(peers) {
		t.setPeerCount(len(peers))
	}
}

func (t *TCP) Self() int { return t.cfg.Self }

func (t *TCP) Nodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers)
}

func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		panic("transport: handler already set")
	}
	t.handler = h
}

// Start begins accepting peer connections.
func (t *TCP) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler == nil {
		return fmt.Errorf("transport: node %d started without a handler", t.cfg.Self)
	}
	if len(t.cfg.Peers) == 0 {
		return fmt.Errorf("transport: node %d started without a peer table", t.cfg.Self)
	}
	if t.started {
		return nil
	}
	t.started = true
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Handshake wire form: magic | version | node ID | locality range lo, hi.
const (
	hsMagic   = 0x50585450 // "PXTP"
	hsVersion = 1
	hsSize    = 4 + 2 + 4 + 4 + 4
)

func (t *TCP) handshakeBytes() []byte {
	var lo, hi uint32
	if t.cfg.Ranges != nil {
		lo = uint32(t.cfg.Ranges[t.cfg.Self][0])
		hi = uint32(t.cfg.Ranges[t.cfg.Self][1])
	}
	buf := make([]byte, 0, hsSize)
	buf = binary.LittleEndian.AppendUint32(buf, hsMagic)
	buf = binary.LittleEndian.AppendUint16(buf, hsVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Self))
	buf = binary.LittleEndian.AppendUint32(buf, lo)
	buf = binary.LittleEndian.AppendUint32(buf, hi)
	return buf
}

// readHandshake parses and validates a peer header, returning the peer's
// node ID.
func (t *TCP) readHandshake(r io.Reader) (int, error) {
	var buf [hsSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != hsMagic {
		return 0, fmt.Errorf("transport: bad handshake magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != hsVersion {
		return 0, fmt.Errorf("transport: handshake version %d, want %d", v, hsVersion)
	}
	node := int(binary.LittleEndian.Uint32(buf[6:10]))
	if node < 0 || node >= len(t.peers) || node == t.cfg.Self {
		return 0, fmt.Errorf("transport: handshake from invalid node %d", node)
	}
	if t.cfg.Ranges != nil {
		lo := int(binary.LittleEndian.Uint32(buf[10:14]))
		hi := int(binary.LittleEndian.Uint32(buf[14:18]))
		if want := t.cfg.Ranges[node]; lo != want[0] || hi != want[1] {
			return 0, fmt.Errorf("transport: node %d announced localities [%d,%d), want [%d,%d)",
				node, lo, hi, want[0], want[1])
		}
	}
	return node, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn handles one inbound (receive-only) connection: handshake
// exchange, then a frame-read loop feeding the handler.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	deadline := time.Now().Add(t.cfg.HandshakeTimeout)
	conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	from, err := t.readHandshake(br)
	if err != nil {
		return
	}
	if _, err := conn.Write(t.handshakeBytes()); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return // corrupt stream; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		t.mu.Lock()
		h, closed := t.handler, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		h(from, frame)
	}
}

// Send delivers frame to node, dialing (with bounded retries) on first use
// or after a connection failure.
func (t *TCP) Send(node int, frame []byte) error {
	if err := checkNode(t, node); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[node]
	addr := ""
	if node < len(t.cfg.Peers) {
		addr = t.cfg.Peers[node]
	}
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("transport: no address for node %d", node)
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if err := t.dialLocked(p, node, addr); err != nil {
			return err
		}
	}
	// Prefix and payload go through the buffered writer separately: one
	// flush per frame, no intermediate copy of the payload.
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	_, err := p.bw.Write(lenBuf[:])
	if err == nil {
		_, err = p.bw.Write(frame)
	}
	if err == nil {
		err = p.bw.Flush()
	}
	if err == nil {
		return nil
	}
	// A TCP write error means the stream truncated mid-frame (Go's Write
	// returns an error only with a partial write), so after the close the
	// peer's frame read fails and the frame is never handled — the Send
	// contract's guarantee that an error implies non-delivery.
	p.conn.Close()
	p.conn, p.bw = nil, nil
	return fmt.Errorf("transport: send to node %d: %w", node, err)
}

// dialLocked establishes p's outbound connection to node at addr,
// retrying with exponential backoff so peers may start in any order. The
// full retry budget is startup grace for a first connection; reconnects
// after a break get only a couple of attempts, because Send is called
// from latency-sensitive paths (acks, drain probes on transport
// goroutines) that must not stall for minutes on a dead peer.
func (t *TCP) dialLocked(p *tcpPeer, node int, addr string) error {
	attempts := t.cfg.DialAttempts
	if p.connected && attempts > 2 {
		attempts = 2
	}
	backoff := t.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.HandshakeTimeout)
		if err == nil {
			if err = t.completeDial(conn, node); err == nil {
				p.conn = conn
				p.bw = bufio.NewWriterSize(conn, 64<<10)
				p.connected = true
				return nil
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
	return fmt.Errorf("transport: dial node %d at %s: %w", node, addr, lastErr)
}

// completeDial runs the client half of the handshake and verifies the
// answering node is the one we meant to reach.
func (t *TCP) completeDial(conn net.Conn, node int) error {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(t.handshakeBytes()); err != nil {
		return err
	}
	got, err := t.readHandshake(conn)
	if err != nil {
		return err
	}
	if got != node {
		return fmt.Errorf("transport: dialed node %d but node %d answered", node, got)
	}
	return nil
}

// Close shuts the listener and every connection, then waits for the accept
// and read goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.bw.Flush()
			p.conn.Close()
			p.conn, p.bw = nil, nil
		}
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
