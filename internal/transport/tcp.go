package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig parameterizes one node's TCP transport.
type TCPConfig struct {
	// Self is this node's ID.
	Self int
	// Listen is the address this node accepts peer connections on, e.g.
	// "127.0.0.1:0". The bound address is available from Addr.
	Listen string
	// Peers maps node ID to dial address. Peers[Self] is ignored. It may be
	// left nil at construction and supplied via SetPeers before Start when
	// dynamic ports are in play.
	Peers []string
	// Ranges optionally maps node ID to its hosted locality range
	// {lo, hi} (half-open). When set, the handshake cross-checks each
	// peer's announced range and rejects mismatched machines.
	Ranges [][2]int
	// DialAttempts bounds connection attempts per Send; peers commonly
	// start in arbitrary order, so dialing retries. Default 40.
	DialAttempts int
	// DialBackoff is the initial retry delay, doubling per attempt up to
	// 500ms. Default 25ms.
	DialBackoff time.Duration
	// HandshakeTimeout bounds the handshake exchange. Default 5s.
	HandshakeTimeout time.Duration
	// BatchWindow, when positive, lets a flush linger up to this long so
	// more frames coalesce into one write. Zero (the default) still
	// batches by group commit: frames posted while a write syscall is in
	// flight are coalesced into the next one, so batching costs idle
	// senders no latency at all.
	BatchWindow time.Duration
	// BatchBytes is the buffered-byte level at which a window-delayed
	// flush stops waiting and writes immediately. Default 64KB. Ignored
	// when BatchWindow is zero.
	BatchBytes int
}

func (c *TCPConfig) fill() {
	if c.DialAttempts <= 0 {
		c.DialAttempts = 40
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
}

// TCP carries frames between nodes as length-prefixed records on TCP
// streams. Each node listens for its peers and lazily dials one outbound
// (send-only) connection per peer, so connection establishment order never
// matters; a failed dial retries with exponential backoff a bounded number
// of times.
//
// Sends batch by group commit: the first sender to a peer becomes the
// flush leader and writes whatever is buffered; senders arriving while the
// leader's syscall is in flight append to the next batch and wait for its
// result, so concurrent parcel streams coalesce into a fraction of the
// syscalls with no added latency when traffic is sparse. BatchWindow adds
// an optional time budget for throughput-biased deployments.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	mu      sync.Mutex
	handler Handler
	started bool
	closed  bool
	inbound map[net.Conn]struct{}

	peers []*tcpPeer
	wg    sync.WaitGroup
}

type tcpPeer struct {
	mu        sync.Mutex
	conn      net.Conn
	buf       []byte      // frames accumulated for the next write
	spare     []byte      // recycled batch buffer
	waiters   []tcpWaiter // senders whose frames sit in buf
	flushing  bool        // a leader is running flush rounds
	connected bool        // a connection has succeeded at least once
}

// tcpWaiter is one follower's claim on a batch: the byte offset its frame
// ends at and the channel its delivery verdict arrives on.
type tcpWaiter struct {
	end int
	ch  chan error
}

// flushResult is the outcome of one batch write: the error, if any, and
// how many bytes the kernel accepted before it. Frames wholly inside the
// accepted prefix were sent exactly as a successful unbatched write would
// have sent them; frames at or past the cut were torn or never written, so
// the mid-frame connection drop guarantees the peer discards them — the
// Send contract that an error implies non-delivery, preserved per frame.
type flushResult struct {
	err     error
	okBytes int
}

// verdict resolves one frame's Send result from its batch's outcome.
func (r flushResult) verdict(end, node int) error {
	if r.err == nil || end <= r.okBytes {
		return nil
	}
	return fmt.Errorf("transport: send to node %d: %w", node, r.err)
}

// NewTCP binds the node's listen address and returns the transport.
// Receiving begins at Start.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	n := len(cfg.Peers)
	if n == 0 && cfg.Ranges != nil {
		n = len(cfg.Ranges)
	}
	if cfg.Self < 0 || (n > 0 && cfg.Self >= n) {
		return nil, fmt.Errorf("transport: node %d outside machine [0,%d)", cfg.Self, n)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{cfg: cfg, ln: ln, inbound: make(map[net.Conn]struct{})}
	t.setPeerCount(n)
	return t, nil
}

func (t *TCP) setPeerCount(n int) {
	t.peers = make([]*tcpPeer, n)
	for i := range t.peers {
		t.peers[i] = &tcpPeer{}
	}
}

// Addr reports the bound listen address (useful with "127.0.0.1:0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs the node→address table; required before Start when the
// table was not known at construction.
func (t *TCP) SetPeers(peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetPeers after Start")
	}
	t.cfg.Peers = peers
	if len(t.peers) != len(peers) {
		t.setPeerCount(len(peers))
	}
}

func (t *TCP) Self() int { return t.cfg.Self }

func (t *TCP) Nodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers)
}

func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		panic("transport: handler already set")
	}
	t.handler = h
}

// Start begins accepting peer connections.
func (t *TCP) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler == nil {
		return fmt.Errorf("transport: node %d started without a handler", t.cfg.Self)
	}
	if len(t.cfg.Peers) == 0 {
		return fmt.Errorf("transport: node %d started without a peer table", t.cfg.Self)
	}
	if t.started {
		return nil
	}
	t.started = true
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Handshake wire form: magic | version | node ID | locality range lo, hi.
const (
	hsMagic   = 0x50585450 // "PXTP"
	hsVersion = 1
	hsSize    = 4 + 2 + 4 + 4 + 4
)

func (t *TCP) handshakeBytes() []byte {
	var lo, hi uint32
	if t.cfg.Ranges != nil {
		lo = uint32(t.cfg.Ranges[t.cfg.Self][0])
		hi = uint32(t.cfg.Ranges[t.cfg.Self][1])
	}
	buf := make([]byte, 0, hsSize)
	buf = binary.LittleEndian.AppendUint32(buf, hsMagic)
	buf = binary.LittleEndian.AppendUint16(buf, hsVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Self))
	buf = binary.LittleEndian.AppendUint32(buf, lo)
	buf = binary.LittleEndian.AppendUint32(buf, hi)
	return buf
}

// readHandshake parses and validates a peer header, returning the peer's
// node ID.
func (t *TCP) readHandshake(r io.Reader) (int, error) {
	var buf [hsSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != hsMagic {
		return 0, fmt.Errorf("transport: bad handshake magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != hsVersion {
		return 0, fmt.Errorf("transport: handshake version %d, want %d", v, hsVersion)
	}
	node := int(binary.LittleEndian.Uint32(buf[6:10]))
	if node < 0 || node >= len(t.peers) || node == t.cfg.Self {
		return 0, fmt.Errorf("transport: handshake from invalid node %d", node)
	}
	if t.cfg.Ranges != nil {
		lo := int(binary.LittleEndian.Uint32(buf[10:14]))
		hi := int(binary.LittleEndian.Uint32(buf[14:18]))
		if want := t.cfg.Ranges[node]; lo != want[0] || hi != want[1] {
			return 0, fmt.Errorf("transport: node %d announced localities [%d,%d), want [%d,%d)",
				node, lo, hi, want[0], want[1])
		}
	}
	return node, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn handles one inbound (receive-only) connection: handshake
// exchange, then a frame-read loop feeding the handler.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	deadline := time.Now().Add(t.cfg.HandshakeTimeout)
	conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	from, err := t.readHandshake(br)
	if err != nil {
		return
	}
	if _, err := conn.Write(t.handshakeBytes()); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return // corrupt stream; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		t.mu.Lock()
		h, closed := t.handler, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		h(from, frame)
	}
}

// Send delivers frame to node, dialing (with bounded retries) on first use
// or after a connection failure. Concurrent sends to one peer batch: the
// frame is appended to the peer's pending buffer, and either this call
// becomes the flush leader — writing batches until the buffer drains — or
// it waits for the leader to report its batch's fate.
func (t *TCP) Send(node int, frame []byte) error {
	if err := checkNode(t, node); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[node]
	addr := ""
	if node < len(t.cfg.Peers) {
		addr = t.cfg.Peers[node]
	}
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("transport: no address for node %d", node)
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}

	p.mu.Lock()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	p.buf = append(p.buf, lenBuf[:]...)
	p.buf = append(p.buf, frame...)
	myEnd := len(p.buf)
	if p.flushing {
		// Follower: a leader's write is in flight; our frame rides the
		// next batch. Wait for that batch's verdict.
		ch := make(chan error, 1)
		p.waiters = append(p.waiters, tcpWaiter{end: myEnd, ch: ch})
		p.mu.Unlock()
		return <-ch
	}
	p.flushing = true
	myErr := error(nil)
	for round := 0; len(p.buf) > 0; round++ {
		if t.cfg.BatchWindow > 0 && p.conn != nil && len(p.buf) < t.cfg.BatchBytes {
			// Throughput bias: linger once per batch so more frames join.
			p.mu.Unlock()
			time.Sleep(t.cfg.BatchWindow)
			p.mu.Lock()
		}
		batch := p.buf
		waiters := p.waiters
		conn := p.conn
		reconnect := p.connected
		p.buf = p.spare[:0]
		p.spare = nil
		p.waiters = nil
		p.mu.Unlock()

		var res flushResult
		if t.isClosed() {
			res.err = ErrClosed
		} else if conn == nil {
			c, err := t.dial(node, addr, reconnect)
			if err != nil {
				res.err = err
			} else {
				conn = c
			}
		}
		if res.err == nil {
			n, err := conn.Write(batch)
			res.okBytes = n
			if err != nil {
				res.err = err
				// Drop the stream mid-frame so the peer discards every
				// frame past the accepted prefix.
				conn.Close()
				conn = nil
			}
		}
		for _, w := range waiters {
			w.ch <- res.verdict(w.end, node)
		}
		if round == 0 {
			myErr = res.verdict(myEnd, node)
		}

		if conn != nil && t.isClosed() {
			// Close swept the peers while our write was in flight; don't
			// re-install a connection nobody will close again.
			conn.Close()
			conn = nil
		}
		p.mu.Lock()
		p.conn = conn
		if conn != nil {
			p.connected = true
		}
		p.spare = batch[:0]
	}
	p.flushing = false
	p.mu.Unlock()
	return myErr
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// dial establishes an outbound connection to node at addr, retrying with
// exponential backoff so peers may start in any order. The full retry
// budget is startup grace for a first connection; reconnects after a break
// get only a couple of attempts, because Send is called from
// latency-sensitive paths (acks, drain probes on transport goroutines)
// that must not stall for minutes on a dead peer.
func (t *TCP) dial(node int, addr string, reconnect bool) (net.Conn, error) {
	attempts := t.cfg.DialAttempts
	if reconnect && attempts > 2 {
		attempts = 2
	}
	backoff := t.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if t.isClosed() {
			return nil, ErrClosed
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.HandshakeTimeout)
		if err == nil {
			if err = t.completeDial(conn, node); err == nil {
				return conn, nil
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
	return nil, fmt.Errorf("transport: dial node %d at %s: %w", node, addr, lastErr)
}

// completeDial runs the client half of the handshake and verifies the
// answering node is the one we meant to reach.
func (t *TCP) completeDial(conn net.Conn, node int) error {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(t.handshakeBytes()); err != nil {
		return err
	}
	got, err := t.readHandshake(conn)
	if err != nil {
		return err
	}
	if got != node {
		return fmt.Errorf("transport: dialed node %d but node %d answered", node, got)
	}
	return nil
}

// Close shuts the listener and every connection, then waits for the accept
// and read goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			// Pending batches are abandoned: the leader's next round sees
			// the closed transport and fails its waiters, upholding
			// Close's "in-flight frames may be dropped".
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
