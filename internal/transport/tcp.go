package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig parameterizes one node's TCP transport.
type TCPConfig struct {
	// Self is this node's ID.
	Self int
	// Listen is the address this node accepts peer connections on, e.g.
	// "127.0.0.1:0". The bound address is available from Addr.
	Listen string
	// Peers maps node ID to dial address. Peers[Self] is ignored. It may be
	// left nil at construction and supplied via SetPeers before Start when
	// dynamic ports are in play.
	Peers []string
	// Ranges optionally maps node ID to its hosted locality range
	// {lo, hi} (half-open). When set, the handshake cross-checks each
	// peer's announced range and rejects mismatched machines.
	Ranges [][2]int
	// DialAttempts bounds connection attempts per Send; peers commonly
	// start in arbitrary order, so dialing retries. Default 40.
	DialAttempts int
	// DialBackoff is the initial retry delay, doubling per attempt up to
	// 500ms. Default 25ms.
	DialBackoff time.Duration
	// HandshakeTimeout bounds the handshake exchange. Default 5s.
	HandshakeTimeout time.Duration
	// BatchWindow, when positive, lets a flush linger up to this long so
	// more frames coalesce into one write. Zero (the default) still
	// batches by group commit: frames posted while a write syscall is in
	// flight are coalesced into the next one, so batching costs idle
	// senders no latency at all.
	BatchWindow time.Duration
	// BatchBytes is the buffered-byte level at which a window-delayed
	// flush stops waiting and writes immediately. Default 64KB. Ignored
	// when BatchWindow is zero.
	BatchBytes int
	// MaxPending bounds each peer's pending (buffered, unwritten) bytes.
	// A sender that finds the buffer full blocks — woken in FIFO order as
	// flush rounds free space — instead of growing the batch without
	// bound, so one hot sender cannot stretch every other sender's
	// group-commit latency arbitrarily: a round is at most MaxPending
	// bytes plus what arrives during its write. The bound is soft by one
	// frame, which also lets frames larger than MaxPending through once
	// the buffer drains below it. Default 4MB; negative disables the
	// bound.
	MaxPending int
}

func (c *TCPConfig) fill() {
	if c.DialAttempts <= 0 {
		c.DialAttempts = 40
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4 << 20
	}
}

// TCP carries frames between nodes as length-prefixed records on TCP
// streams. Each node listens for its peers and lazily dials one outbound
// (send-only) connection per peer, so connection establishment order never
// matters; a failed dial retries with exponential backoff a bounded number
// of times.
//
// Sends batch by group commit: the first sender to a peer becomes the
// flush leader and writes whatever is buffered; senders arriving while the
// leader's syscall is in flight append to the next batch and wait for its
// result, so concurrent parcel streams coalesce into a fraction of the
// syscalls with no added latency when traffic is sparse. BatchWindow adds
// an optional time budget for throughput-biased deployments.
//
// The batcher is fair per peer: a leader writes exactly one round — the
// batch containing its own frame — and hands any backlog that accumulated
// during the write to a detached drainer goroutine, so no sender is held
// captive flushing other senders' traffic. MaxPending bounds the pending
// buffer with FIFO blocking admission, so a hot sender saturating one
// peer backs itself off while everyone else's frames keep riding bounded
// rounds. BatchStats exposes the batcher's activity for the px.wire.*
// metric bridge.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	// selfRange is this node's announced locality range, captured at
	// construction so the handshake encoder never races peer-table growth.
	selfRange [2]int
	hasRange  bool

	mu      sync.Mutex
	handler Handler
	hello   []byte
	onHello func(node int, payload []byte)
	started bool
	closed  bool
	inbound map[net.Conn]struct{}

	peers []*tcpPeer
	wg    sync.WaitGroup
}

type tcpPeer struct {
	mu        sync.Mutex
	room      *sync.Cond // signals space in buf to backpressure-blocked senders
	conn      net.Conn
	buf       []byte      // frames accumulated for the next write
	spare     []byte      // recycled batch buffer
	waiters   []tcpWaiter // senders whose frames sit in buf
	flushing  bool        // a leader or drainer is running flush rounds
	connected bool        // a connection has succeeded at least once

	// Batcher activity, guarded by mu (see TCP.BatchStats).
	batches       uint64 // flush rounds written
	handoffs      uint64 // backlogs handed from a leader to a drainer
	backpressured uint64 // sends that blocked on the MaxPending bound
}

// tcpWaiter is one follower's claim on a batch: the byte offset its frame
// ends at and the channel its delivery verdict arrives on.
type tcpWaiter struct {
	end int
	ch  chan error
}

// flushResult is the outcome of one batch write: the error, if any, and
// how many bytes the kernel accepted before it. Frames wholly inside the
// accepted prefix were sent exactly as a successful unbatched write would
// have sent them; frames at or past the cut were torn or never written, so
// the mid-frame connection drop guarantees the peer discards them — the
// Send contract that an error implies non-delivery, preserved per frame.
type flushResult struct {
	err     error
	okBytes int
}

// verdict resolves one frame's Send result from its batch's outcome.
func (r flushResult) verdict(end, node int) error {
	if r.err == nil || end <= r.okBytes {
		return nil
	}
	return fmt.Errorf("transport: send to node %d: %w", node, r.err)
}

// NewTCP binds the node's listen address and returns the transport.
// Receiving begins at Start.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	n := len(cfg.Peers)
	if n == 0 && cfg.Ranges != nil {
		n = len(cfg.Ranges)
	}
	if cfg.Self < 0 || (n > 0 && cfg.Self >= n) {
		return nil, fmt.Errorf("transport: node %d outside machine [0,%d)", cfg.Self, n)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{cfg: cfg, ln: ln, inbound: make(map[net.Conn]struct{})}
	if cfg.Ranges != nil && cfg.Self < len(cfg.Ranges) {
		t.selfRange = cfg.Ranges[cfg.Self]
		t.hasRange = true
	}
	t.setPeerCount(n)
	return t, nil
}

func (t *TCP) setPeerCount(n int) {
	t.peers = make([]*tcpPeer, n)
	for i := range t.peers {
		p := &tcpPeer{}
		p.room = sync.NewCond(&p.mu)
		t.peers[i] = p
	}
}

// growPeers extends the peer table to hold node, copying the slice headers
// so concurrent readers of the old snapshot stay consistent. Callers hold
// t.mu.
func (t *TCP) growPeers(node int) {
	if node < len(t.peers) {
		return
	}
	peers := make([]*tcpPeer, node+1)
	copy(peers, t.peers)
	for i := len(t.peers); i <= node; i++ {
		p := &tcpPeer{}
		p.room = sync.NewCond(&p.mu)
		peers[i] = p
	}
	t.peers = peers
	for len(t.cfg.Peers) <= node {
		t.cfg.Peers = append(t.cfg.Peers, "")
	}
	if t.cfg.Ranges != nil {
		for len(t.cfg.Ranges) <= node {
			t.cfg.Ranges = append(t.cfg.Ranges, [2]int{})
		}
	}
}

// AddPeer records node's dial address and announced locality range,
// growing the peer table when the node is new (MemberTransport). The
// joining peer becomes sendable immediately; the first Send dials it.
func (t *TCP) AddPeer(node int, addr string, lo, hi int) error {
	if node < 0 || node >= MaxJoinNodes {
		return fmt.Errorf("transport: joining node %d outside [0,%d)", node, MaxJoinNodes)
	}
	if node == t.cfg.Self {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.growPeers(node)
	if addr != "" {
		t.cfg.Peers[node] = addr
	}
	if t.cfg.Ranges != nil && hi > lo {
		t.cfg.Ranges[node] = [2]int{lo, hi}
	}
	return nil
}

// Addr reports the bound listen address (useful with "127.0.0.1:0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs the node→address table; required before Start when the
// table was not known at construction.
func (t *TCP) SetPeers(peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetPeers after Start")
	}
	t.cfg.Peers = peers
	if len(t.peers) != len(peers) {
		t.setPeerCount(len(peers))
	}
}

func (t *TCP) Self() int { return t.cfg.Self }

func (t *TCP) Nodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers)
}

func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		panic("transport: handler already set")
	}
	t.handler = h
}

// SetHello installs the payload exchanged inside every connection
// handshake (HelloTransport).
func (t *TCP) SetHello(payload []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetHello after Start")
	}
	if len(payload) > MaxHello {
		panic(fmt.Sprintf("transport: hello payload of %d bytes exceeds limit %d", len(payload), MaxHello))
	}
	t.hello = payload
}

// SetHelloHandler installs the receiver for peer hello payloads
// (HelloTransport). It runs on connection goroutines, once per completed
// handshake, before any frame from that connection.
func (t *TCP) SetHelloHandler(h func(node int, payload []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetHelloHandler after Start")
	}
	t.onHello = h
}

// deliverHello hands a peer's handshake payload to the hello handler.
func (t *TCP) deliverHello(node int, payload []byte) {
	t.mu.Lock()
	h := t.onHello
	t.mu.Unlock()
	if h != nil {
		h(node, payload)
	}
}

// Start begins accepting peer connections.
func (t *TCP) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler == nil {
		return fmt.Errorf("transport: node %d started without a handler", t.cfg.Self)
	}
	if len(t.cfg.Peers) == 0 {
		return fmt.Errorf("transport: node %d started without a peer table", t.cfg.Self)
	}
	if t.started {
		return nil
	}
	t.started = true
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Handshake wire form: magic | version | node ID | locality range lo, hi |
// u32 hello length | hello payload. Version 2 added the hello payload
// (carrying, e.g., the runtime's action-interning table); because the
// payload travels inside the handshake it precedes every frame on the
// connection and is re-announced automatically on reconnect.
//
// A version-1 header (no hello field) is still accepted — the peer is
// treated as having announced an empty hello, i.e. string-form-only.
// The compatibility is necessarily one-directional: a v1 binary's own
// strict version check rejects our v2 header, so in a rolling upgrade
// old nodes can dial new ones but not the reverse.
const (
	hsMagic      = 0x50585450 // "PXTP"
	hsVersion    = 2
	hsMinVersion = 1
	hsHeadSize   = 4 + 2 + 4 + 4 + 4 // magic..range; v2 adds u32 len + hello
	hsSize       = hsHeadSize + 4
)

func (t *TCP) handshakeBytes() []byte { return t.handshakeBytesV(hsVersion) }

// handshakeBytesV encodes this node's header in the given handshake
// version — v1 when answering a v1 peer, whose own reader rejects any
// other version.
func (t *TCP) handshakeBytesV(version uint16) []byte {
	var lo, hi uint32
	if t.hasRange {
		lo = uint32(t.selfRange[0])
		hi = uint32(t.selfRange[1])
	}
	t.mu.Lock()
	hello := t.hello
	t.mu.Unlock()
	buf := make([]byte, 0, hsSize+len(hello))
	buf = binary.LittleEndian.AppendUint32(buf, hsMagic)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Self))
	buf = binary.LittleEndian.AppendUint32(buf, lo)
	buf = binary.LittleEndian.AppendUint32(buf, hi)
	if version >= 2 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hello)))
		buf = append(buf, hello...)
	}
	return buf
}

// readHandshake parses and validates a peer header, returning the peer's
// node ID, hello payload (nil for a v1 peer, which has none), and the
// handshake version the peer spoke.
func (t *TCP) readHandshake(r io.Reader) (int, []byte, uint16, error) {
	var buf [hsHeadSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != hsMagic {
		return 0, nil, 0, fmt.Errorf("transport: bad handshake magic %#x", m)
	}
	v := binary.LittleEndian.Uint16(buf[4:6])
	if v < hsMinVersion || v > hsVersion {
		return 0, nil, 0, fmt.Errorf("transport: handshake version %d, want %d..%d", v, hsMinVersion, hsVersion)
	}
	node := int(binary.LittleEndian.Uint32(buf[6:10]))
	if node < 0 || node >= MaxJoinNodes || node == t.cfg.Self {
		return 0, nil, 0, fmt.Errorf("transport: handshake from invalid node %d", node)
	}
	lo := int(binary.LittleEndian.Uint32(buf[10:14]))
	hi := int(binary.LittleEndian.Uint32(buf[14:18]))
	t.mu.Lock()
	known := node < len(t.peers)
	if !known {
		// A node beyond the configured table is a joiner: admit it and
		// record its announced range. Its dial address arrives in the
		// hello's membership section (AddPeer).
		t.growPeers(node)
		if t.cfg.Ranges != nil && hi > lo {
			t.cfg.Ranges[node] = [2]int{lo, hi}
		}
	}
	var want [2]int
	checkRange := known && t.cfg.Ranges != nil && node < len(t.cfg.Ranges)
	if checkRange {
		want = t.cfg.Ranges[node]
	}
	t.mu.Unlock()
	// Cross-check only ranges we were configured with (hi > lo): a slot
	// grown by an earlier join holds the joiner's own announcement.
	if checkRange && want[1] > want[0] && (lo != want[0] || hi != want[1]) {
		return 0, nil, 0, fmt.Errorf("transport: node %d announced localities [%d,%d), want [%d,%d)",
			node, lo, hi, want[0], want[1])
	}
	if v < 2 {
		return node, nil, v, nil // v1 carries no hello: a string-only peer
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: handshake hello length read: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxHello {
		return 0, nil, 0, fmt.Errorf("transport: node %d announced a %d-byte hello, limit %d", node, n, MaxHello)
	}
	var hello []byte
	if n > 0 {
		hello = make([]byte, n)
		if _, err := io.ReadFull(r, hello); err != nil {
			return 0, nil, 0, fmt.Errorf("transport: handshake hello read: %w", err)
		}
	}
	return node, hello, v, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn handles one inbound (receive-only) connection: handshake
// exchange, then a frame-read loop feeding the handler.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	deadline := time.Now().Add(t.cfg.HandshakeTimeout)
	conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	from, hello, peerVer, err := t.readHandshake(br)
	if err != nil {
		return
	}
	// Reply in the peer's own version: a v1 binary's reader strictly
	// rejects anything else, and the v1 reply it expects has no hello.
	if _, err := conn.Write(t.handshakeBytesV(peerVer)); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	// The hello is delivered before any frame from this connection: frames
	// that depend on it (interned parcels) decode against it in order.
	t.deliverHello(from, hello)
	var lenBuf [4]byte
	// One read buffer per connection, grown to the largest frame seen: the
	// steady-state receive path performs zero allocations. The handler
	// contract (copy what you retain) makes the reuse safe.
	var frame []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > MaxFrame {
			return // corrupt stream; drop the connection
		}
		if uint32(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		t.mu.Lock()
		h, closed := t.handler, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		h(from, frame)
		// Don't let one jumbo frame (a migration payload can reach
		// MaxFrame = 16MB) pin its buffer for the connection's lifetime;
		// steady-state parcels are a few hundred bytes.
		if cap(frame) > 64<<10 {
			frame = nil
		}
	}
}

// Send delivers frame to node, dialing (with bounded retries) on first use
// or after a connection failure. Concurrent sends to one peer batch: the
// frame is appended to the peer's pending buffer, and either this call
// becomes the flush leader — writing the one round that carries its own
// frame, then handing any backlog to a drainer goroutine — or it waits for
// the leader to report its batch's fate. With MaxPending set, a sender that
// finds the pending buffer full blocks until a flush round frees space.
func (t *TCP) Send(node int, frame []byte) error {
	if err := checkNode(t, node); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[node]
	addr := ""
	if node < len(t.cfg.Peers) {
		addr = t.cfg.Peers[node]
	}
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("transport: no address for node %d", node)
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}

	p.mu.Lock()
	if max := t.cfg.MaxPending; max > 0 {
		// Admission: while a flush is active and the pending buffer is at
		// the bound, wait for a round to free space. Wakeups are FIFO
		// (sync.Cond queues waiters in order), so a hot sender cannot
		// perpetually cut the line. The bound is soft by one frame: the
		// sender admitted at len(buf) == max-1 may push the buffer past
		// max, which also lets frames larger than MaxPending through.
		blocked := false
		for p.flushing && len(p.buf) >= max {
			if t.isClosed() {
				p.mu.Unlock()
				return ErrClosed
			}
			if !blocked {
				blocked = true
				p.backpressured++
			}
			p.room.Wait()
		}
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	p.buf = append(p.buf, lenBuf[:]...)
	p.buf = append(p.buf, frame...)
	myEnd := len(p.buf)
	if p.flushing {
		// Follower: a leader's write is in flight; our frame rides the
		// next batch. Wait for that batch's verdict.
		ch := make(chan error, 1)
		p.waiters = append(p.waiters, tcpWaiter{end: myEnd, ch: ch})
		p.mu.Unlock()
		return <-ch
	}
	p.flushing = true
	res := t.flushRound(p, node, addr)
	myErr := res.verdict(myEnd, node)
	if len(p.buf) > 0 {
		// Frames arrived while our round's write was in flight. Hand the
		// backlog to a drainer goroutine instead of flushing it here: the
		// leader already paid for the round carrying its own frame, and
		// holding it captive writing other senders' traffic would let one
		// hot stream tax whichever caller happened to lead.
		p.handoffs++
		p.mu.Unlock()
		go t.drainPeer(p, node, addr)
		return myErr
	}
	p.flushing = false
	p.room.Broadcast()
	p.mu.Unlock()
	return myErr
}

// drainPeer runs flush rounds for one peer until its pending buffer
// empties, then releases flush leadership. It runs detached from any
// sender; after Close it terminates promptly because every round fails
// fast with ErrClosed verdicts.
func (t *TCP) drainPeer(p *tcpPeer, node int, addr string) {
	p.mu.Lock()
	for len(p.buf) > 0 {
		t.flushRound(p, node, addr)
	}
	p.flushing = false
	p.room.Broadcast()
	p.mu.Unlock()
}

// flushRound writes one batch — everything pending for the peer — and
// delivers per-frame verdicts to the senders waiting on it. Called with
// p.mu held and flushing set; returns with p.mu re-held. The result lets
// a leader derive the verdict for its own frame (followers of this round
// get theirs on their channels).
func (t *TCP) flushRound(p *tcpPeer, node int, addr string) flushResult {
	if t.cfg.BatchWindow > 0 && p.conn != nil && len(p.buf) < t.cfg.BatchBytes {
		// Throughput bias: linger once per batch so more frames join.
		p.mu.Unlock()
		time.Sleep(t.cfg.BatchWindow)
		p.mu.Lock()
	}
	batch := p.buf
	waiters := p.waiters
	conn := p.conn
	reconnect := p.connected
	p.buf = p.spare[:0]
	p.spare = nil
	p.waiters = nil
	p.batches++
	// The pending buffer just emptied: backpressured senders may append
	// to the next batch while this round's write is in flight.
	p.room.Broadcast()
	p.mu.Unlock()

	var res flushResult
	if t.isClosed() {
		res.err = ErrClosed
	} else if conn == nil {
		c, err := t.dial(node, addr, reconnect)
		if err != nil {
			res.err = err
		} else {
			conn = c
		}
	}
	if res.err == nil {
		n, err := conn.Write(batch)
		res.okBytes = n
		if err != nil {
			res.err = err
			// Drop the stream mid-frame so the peer discards every
			// frame past the accepted prefix.
			conn.Close()
			conn = nil
		}
	}
	for _, w := range waiters {
		w.ch <- res.verdict(w.end, node)
	}

	if conn != nil && t.isClosed() {
		// Close swept the peers while our write was in flight; don't
		// re-install a connection nobody will close again.
		conn.Close()
		conn = nil
	}
	p.mu.Lock()
	p.conn = conn
	if conn != nil {
		p.connected = true
	}
	p.spare = batch[:0]
	return res
}

// BatchStats reports the group-commit batcher's cumulative activity summed
// across peers: flush rounds written, backlogs handed from a leader to a
// drainer goroutine, and sends that blocked on the MaxPending admission
// bound. The distributed runtime bridges these into px.wire.* metrics.
func (t *TCP) BatchStats() (batches, handoffs, backpressured uint64) {
	t.mu.Lock()
	peers := t.peers
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		batches += p.batches
		handoffs += p.handoffs
		backpressured += p.backpressured
		p.mu.Unlock()
	}
	return batches, handoffs, backpressured
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// dial establishes an outbound connection to node at addr, retrying with
// exponential backoff so peers may start in any order. The full retry
// budget is startup grace for a first connection; reconnects after a break
// get only a couple of attempts, because Send is called from
// latency-sensitive paths (acks, drain probes on transport goroutines)
// that must not stall for minutes on a dead peer.
func (t *TCP) dial(node int, addr string, reconnect bool) (net.Conn, error) {
	attempts := t.cfg.DialAttempts
	if reconnect && attempts > 2 {
		attempts = 2
	}
	backoff := t.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if t.isClosed() {
			return nil, ErrClosed
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.HandshakeTimeout)
		if err == nil {
			if err = t.completeDial(conn, node); err == nil {
				return conn, nil
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
	return nil, fmt.Errorf("transport: dial node %d at %s: %w", node, addr, lastErr)
}

// completeDial runs the client half of the handshake and verifies the
// answering node is the one we meant to reach. The peer's hello payload
// (read from its handshake response) is delivered before the dial is
// declared complete, so a sender learns the peer's capabilities before
// its first frame on the new connection.
func (t *TCP) completeDial(conn net.Conn, node int) error {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(t.handshakeBytes()); err != nil {
		return err
	}
	got, hello, _, err := t.readHandshake(conn)
	if err != nil {
		return err
	}
	if got != node {
		return fmt.Errorf("transport: dialed node %d but node %d answered", node, got)
	}
	t.deliverHello(got, hello)
	return nil
}

// Close shuts the listener and every connection, then waits for the accept
// and read goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	peers := t.peers
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			// Pending batches are abandoned: the leader's next round sees
			// the closed transport and fails its waiters, upholding
			// Close's "in-flight frames may be dropped".
			p.conn.Close()
			p.conn = nil
		}
		// Senders blocked on the MaxPending bound re-check and observe the
		// closed transport.
		p.room.Broadcast()
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
