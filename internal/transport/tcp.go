package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig parameterizes one node's TCP transport.
type TCPConfig struct {
	// Self is this node's ID.
	Self int
	// Listen is the address this node accepts peer connections on, e.g.
	// "127.0.0.1:0". The bound address is available from Addr.
	Listen string
	// Peers maps node ID to dial address. Peers[Self] is ignored. It may be
	// left nil at construction and supplied via SetPeers before Start when
	// dynamic ports are in play.
	Peers []string
	// Ranges optionally maps node ID to its hosted locality range
	// {lo, hi} (half-open). When set, the handshake cross-checks each
	// peer's announced range and rejects mismatched machines.
	Ranges [][2]int
	// Lanes is the number of independent connections maintained to each
	// peer. Frames sent on different lanes ride different TCP streams, so
	// independent traffic stops queueing behind one stream's head-of-line;
	// ordering is preserved within a lane only. Control traffic (plain
	// Send) rides lane 0. Default 1; capped at MaxLanes.
	Lanes int
	// DialAttempts bounds connection attempts per Send; peers commonly
	// start in arbitrary order, so dialing retries. Default 40.
	DialAttempts int
	// DialBackoff is the initial retry delay, doubling per attempt up to
	// 500ms. Default 25ms.
	DialBackoff time.Duration
	// HandshakeTimeout bounds the handshake exchange. Default 5s.
	HandshakeTimeout time.Duration
	// BatchWindow, when positive, lets a flush linger up to this long so
	// more frames coalesce into one write. The linger is adaptive: the
	// flusher yields the processor and writes as soon as the pending
	// batch stops growing, so the window is a bound, not a fixed delay.
	// Zero (the default) still batches by group commit: frames posted
	// while a write syscall is in flight are coalesced into the next one,
	// so batching costs idle senders no latency at all.
	BatchWindow time.Duration
	// BatchBytes is the buffered-byte level at which a window-delayed
	// flush stops waiting and writes immediately. Default 64KB. Ignored
	// when BatchWindow is zero.
	BatchBytes int
	// MaxPending bounds each lane's pending (buffered, unwritten) bytes.
	// A sender that finds the buffer full blocks — woken in FIFO order as
	// flush rounds free space — instead of growing the batch without
	// bound, so one hot sender cannot stretch every other sender's
	// group-commit latency arbitrarily: a round is at most MaxPending
	// bytes plus what arrives during its write. The bound is soft by one
	// frame, which also lets frames larger than MaxPending through once
	// the buffer drains below it. Default 4MB; negative disables the
	// bound.
	MaxPending int
	// CoalesceWrites selects the v1 batching strategy: frames are copied
	// into one contiguous per-lane buffer and written with a single
	// Write. The default (false) is the v2 vectored path: pending frames
	// are gathered into a net.Buffers iovec and handed to writev, so a
	// sender's encode buffer hits the socket without an intermediate
	// copy. The copy path survives as the benchmark baseline
	// (BenchmarkWireCoalesceBatch) and as an escape hatch.
	CoalesceWrites bool
	// DisableSameHost turns off the same-host fabric: peers are always
	// dialed over TCP even when a Unix-domain listener advertises that
	// they share this host. See shm.go.
	DisableSameHost bool
	// ReadBufferBytes sizes each inbound connection's read buffer. Frames
	// that fit it are delivered as aliased sub-slices of it (zero receive
	// copies); larger frames take the copy path. It also bounds the alias
	// path's hidden cost: a frame that straddles the buffer's end is slid
	// to the front before it can be peeked contiguously, so the buffer
	// should be a healthy multiple of the common frame size. Default
	// 256KB.
	ReadBufferBytes int
	// DisableAliasRead forces the receive path to copy every frame into a
	// private buffer before invoking the handler, instead of handing the
	// handler a sub-slice of the connection read buffer. The aliased path
	// is safe under the Handler contract (copy what you retain); the copy
	// path exists for the mixed-capability tests and as an escape hatch.
	DisableAliasRead bool
	// PoisonAliasedReads scribbles 0xdd over every aliased frame after
	// its handler returns, so a handler that illegally retained the slice
	// observes garbage (and, under -race, a write/read race) instead of
	// silently reading recycled bytes. Defaults to true under the
	// debugpool build tag.
	PoisonAliasedReads bool
}

// MaxLanes caps TCPConfig.Lanes (and the lane index a handshake may
// announce — a corrupt hello must not imply an absurd connection count).
const MaxLanes = 16

func (c *TCPConfig) fill() {
	if c.Lanes <= 0 {
		c.Lanes = 1
	}
	if c.Lanes > MaxLanes {
		c.Lanes = MaxLanes
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 40
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4 << 20
	}
	if c.ReadBufferBytes <= 0 {
		c.ReadBufferBytes = 256 << 10
	}
	if c.ReadBufferBytes < 4<<10 {
		c.ReadBufferBytes = 4 << 10
	}
	if !c.PoisonAliasedReads {
		c.PoisonAliasedReads = poisonAliasDefault
	}
}

// TCP carries frames between nodes as length-prefixed records on TCP
// streams (or Unix-domain streams when peers share a host — see shm.go).
// Each node listens for its peers and lazily dials Lanes outbound
// (send-only) connections per peer, so connection establishment order
// never matters; a failed dial retries with exponential backoff a bounded
// number of times.
//
// Sends batch by group commit: the first sender to a (peer, lane) becomes
// the flush leader and writes whatever is pending; senders arriving while
// the leader's syscall is in flight append to the next batch and wait for
// its result, so concurrent parcel streams coalesce into a fraction of
// the syscalls with no added latency when traffic is sparse. The batch is
// a gather vector handed to writev (net.Buffers): a pending frame is the
// caller's own slice, referenced — not copied — until the write covering
// it returns, which is safe because Send does not return before that
// write's verdict. Frame length headers are carved from pooled chunks and
// recycled with the round. BatchWindow adds an optional time budget for
// throughput-biased deployments.
//
// The batcher is fair per lane: a leader writes exactly one round — the
// batch containing its own frame — and hands any backlog that accumulated
// during the write to a detached drainer goroutine, so no sender is held
// captive flushing other senders' traffic. MaxPending bounds the pending
// bytes with FIFO blocking admission, so a hot sender saturating one lane
// backs itself off while everyone else's frames keep riding bounded
// rounds. BatchStats exposes the batcher's aggregated activity for the
// px.wire.* metric bridge; LaneBatchStats exposes one lane's.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener
	// shm is the same-host Unix-domain listener (nil when disabled or
	// unavailable); shmConns counts outbound connections that took the
	// same-host path instead of TCP.
	shm      net.Listener
	shmConns atomic.Uint64

	// selfRange is this node's announced locality range, captured at
	// construction so the handshake encoder never races peer-table growth.
	selfRange [2]int
	hasRange  bool

	mu      sync.Mutex
	handler Handler
	hello   []byte
	onHello func(node int, payload []byte)
	started bool
	closed  bool
	inbound map[net.Conn]struct{}

	peers []*tcpPeer
	wg    sync.WaitGroup
}

// tcpPeer is one remote node: its lane set. Lane 0 carries control
// traffic (plain Send); the runtime spreads parcel traffic across the
// rest by destination-GID affinity.
type tcpPeer struct {
	lanes []*tcpLane
}

// tcpLane is one (peer, lane) connection with its own group-commit
// batcher, backpressure bound, and stats.
type tcpLane struct {
	mu        sync.Mutex
	room      *sync.Cond // signals space in the pending batch to blocked senders
	conn      net.Conn
	connected bool // a connection has succeeded at least once
	flushing  bool // a leader or drainer is running flush rounds

	// Vectored (writev) pending state: vec alternates 4-byte header
	// slices (carved from hdr chunks) and caller frame slices; pendBytes
	// is their total length. spareVec recycles the round's backing array.
	vec       net.Buffers
	spareVec  net.Buffers
	hdrChunks []*[]byte // header chunks feeding vec; recycled per round
	pendBytes int

	// Coalescing (CoalesceWrites) pending state: frames copied into one
	// contiguous buffer.
	buf   []byte
	spare []byte

	waiters []tcpWaiter // senders whose frames sit in the pending batch

	// Batcher activity, guarded by mu (see TCP.BatchStats).
	batches       uint64 // flush rounds written
	handoffs      uint64 // backlogs handed from a leader to a drainer
	backpressured uint64 // sends that blocked on the MaxPending bound
}

// tcpWaiter is one follower's claim on a batch: the byte offset its frame
// ends at and the channel its delivery verdict arrives on.
type tcpWaiter struct {
	end int
	ch  chan error
}

// hdrChunkSize is the capacity of one pooled header chunk: 4-byte frame
// length headers are carved from it sequentially, so one chunk covers 128
// frames of a batch before the next is pulled from the pool. Chunks are
// fixed-capacity by construction — a header sub-slice already gathered
// into the iovec must never be invalidated by a growing append.
const hdrChunkSize = 512

var hdrChunkPool = sync.Pool{New: func() any {
	b := make([]byte, 0, hdrChunkSize)
	return &b
}}

// flushResult is the outcome of one batch write: the error, if any, and
// how many bytes the kernel accepted before it. Frames wholly inside the
// accepted prefix were sent exactly as a successful unbatched write would
// have sent them; frames at or past the cut were torn or never written, so
// the mid-frame connection drop guarantees the peer discards them — the
// Send contract that an error implies non-delivery, preserved per frame.
type flushResult struct {
	err     error
	okBytes int
}

// verdict resolves one frame's Send result from its batch's outcome.
func (r flushResult) verdict(end, node int) error {
	if r.err == nil || end <= r.okBytes {
		return nil
	}
	return fmt.Errorf("transport: send to node %d: %w", node, r.err)
}

// NewTCP binds the node's listen address and returns the transport.
// Receiving begins at Start. Unless DisableSameHost is set, a companion
// Unix-domain listener is bound at a path derived from the TCP port, so
// colocated peers can reach this node without the loopback TCP tax.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	n := len(cfg.Peers)
	if n == 0 && cfg.Ranges != nil {
		n = len(cfg.Ranges)
	}
	if cfg.Self < 0 || (n > 0 && cfg.Self >= n) {
		return nil, fmt.Errorf("transport: node %d outside machine [0,%d)", cfg.Self, n)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	t := &TCP{cfg: cfg, ln: ln, inbound: make(map[net.Conn]struct{})}
	if !cfg.DisableSameHost {
		// Best effort: a host where the socket path cannot be bound (odd
		// TempDir permissions, path collisions) simply stays TCP-only.
		t.shm, _ = listenSameHost(ln.Addr())
	}
	if cfg.Ranges != nil && cfg.Self < len(cfg.Ranges) {
		t.selfRange = cfg.Ranges[cfg.Self]
		t.hasRange = true
	}
	t.setPeerCount(n)
	return t, nil
}

func newTCPPeer(lanes int) *tcpPeer {
	p := &tcpPeer{lanes: make([]*tcpLane, lanes)}
	for i := range p.lanes {
		l := &tcpLane{}
		l.room = sync.NewCond(&l.mu)
		p.lanes[i] = l
	}
	return p
}

func (t *TCP) setPeerCount(n int) {
	t.peers = make([]*tcpPeer, n)
	for i := range t.peers {
		t.peers[i] = newTCPPeer(t.cfg.Lanes)
	}
}

// growPeers extends the peer table to hold node, copying the slice headers
// so concurrent readers of the old snapshot stay consistent. Callers hold
// t.mu.
func (t *TCP) growPeers(node int) {
	if node < len(t.peers) {
		return
	}
	peers := make([]*tcpPeer, node+1)
	copy(peers, t.peers)
	for i := len(t.peers); i <= node; i++ {
		peers[i] = newTCPPeer(t.cfg.Lanes)
	}
	t.peers = peers
	for len(t.cfg.Peers) <= node {
		t.cfg.Peers = append(t.cfg.Peers, "")
	}
	if t.cfg.Ranges != nil {
		for len(t.cfg.Ranges) <= node {
			t.cfg.Ranges = append(t.cfg.Ranges, [2]int{})
		}
	}
}

// AddPeer records node's dial address and announced locality range,
// growing the peer table when the node is new (MemberTransport). The
// joining peer becomes sendable immediately; the first Send dials it.
func (t *TCP) AddPeer(node int, addr string, lo, hi int) error {
	if node < 0 || node >= MaxJoinNodes {
		return fmt.Errorf("transport: joining node %d outside [0,%d)", node, MaxJoinNodes)
	}
	if node == t.cfg.Self {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.growPeers(node)
	if addr != "" {
		t.cfg.Peers[node] = addr
	}
	if t.cfg.Ranges != nil && hi > lo {
		t.cfg.Ranges[node] = [2]int{lo, hi}
	}
	return nil
}

// Addr reports the bound listen address (useful with "127.0.0.1:0").
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs the node→address table; required before Start when the
// table was not known at construction.
func (t *TCP) SetPeers(peers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetPeers after Start")
	}
	t.cfg.Peers = peers
	if len(t.peers) != len(peers) {
		t.setPeerCount(len(peers))
	}
}

func (t *TCP) Self() int { return t.cfg.Self }

func (t *TCP) Nodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers)
}

// Lanes reports the configured lane count (LaneTransport).
func (t *TCP) Lanes() int { return t.cfg.Lanes }

func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		panic("transport: handler already set")
	}
	t.handler = h
}

// SetHello installs the payload exchanged inside every connection
// handshake (HelloTransport).
func (t *TCP) SetHello(payload []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetHello after Start")
	}
	if len(payload) > MaxHello {
		panic(fmt.Sprintf("transport: hello payload of %d bytes exceeds limit %d", len(payload), MaxHello))
	}
	t.hello = payload
}

// SetHelloHandler installs the receiver for peer hello payloads
// (HelloTransport). It runs on connection goroutines, once per completed
// handshake, before any frame from that connection.
func (t *TCP) SetHelloHandler(h func(node int, payload []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		panic("transport: SetHelloHandler after Start")
	}
	t.onHello = h
}

// deliverHello hands a peer's handshake payload to the hello handler.
func (t *TCP) deliverHello(node int, payload []byte) {
	t.mu.Lock()
	h := t.onHello
	t.mu.Unlock()
	if h != nil {
		h(node, payload)
	}
}

// Start begins accepting peer connections.
func (t *TCP) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler == nil {
		return fmt.Errorf("transport: node %d started without a handler", t.cfg.Self)
	}
	if len(t.cfg.Peers) == 0 {
		return fmt.Errorf("transport: node %d started without a peer table", t.cfg.Self)
	}
	if t.started {
		return nil
	}
	t.started = true
	t.wg.Add(1)
	go t.acceptLoop(t.ln)
	if t.shm != nil {
		t.wg.Add(1)
		go t.acceptLoop(t.shm)
	}
	return nil
}

// Handshake wire form: magic | version | node ID | locality range lo, hi |
// u32 hello length | hello payload | [v3: u16 lane | u32 flags]. Version
// 2 added the hello payload (carrying, e.g., the runtime's
// action-interning table); because the payload travels inside the
// handshake it precedes every frame on the connection and is re-announced
// automatically on reconnect. Version 3 added the lane header: the lane
// index this connection carries plus a capability word, so a sharded
// dialer's streams stay distinguishable and a malformed lane announcement
// is rejected before it can cross-wire two peers.
//
// A version-1 header (no hello field) is still accepted — the peer is
// treated as having announced an empty hello, i.e. string-form-only —
// and so is a v2 header, treated as lane 0 with no capabilities. The
// compatibility is necessarily one-directional: an old binary's own
// strict version check rejects our v3 header, so in a rolling upgrade
// old nodes can dial new ones but not the reverse.
const (
	hsMagic      = 0x50585450 // "PXTP"
	hsVersion    = 3
	hsMinVersion = 1
	hsHeadSize   = 4 + 2 + 4 + 4 + 4 // magic..range; v2 adds u32 len + hello
	hsSize       = hsHeadSize + 4
	hsLaneSize   = 2 + 4 // v3 lane header: u16 lane | u32 flags
)

// Handshake capability flags (the v3 flags word). Unknown bits are
// ignored for forward compatibility.
const (
	// hsFlagAliasRead announces that this node's receive path may hand
	// handlers aliased read-buffer sub-slices (informational; the
	// contract is the same either way).
	hsFlagAliasRead = 1 << 0
	// hsFlagSameHost announces that this connection arrived over the
	// same-host fabric.
	hsFlagSameHost = 1 << 1
)

func (t *TCP) handshakeBytes(lane int, sameHost bool) []byte {
	return t.handshakeBytesV(hsVersion, lane, sameHost)
}

// handshakeBytesV encodes this node's header in the given handshake
// version — a lower version when answering an older peer, whose own
// reader rejects any other version.
func (t *TCP) handshakeBytesV(version uint16, lane int, sameHost bool) []byte {
	var lo, hi uint32
	if t.hasRange {
		lo = uint32(t.selfRange[0])
		hi = uint32(t.selfRange[1])
	}
	t.mu.Lock()
	hello := t.hello
	t.mu.Unlock()
	buf := make([]byte, 0, hsSize+hsLaneSize+len(hello))
	buf = binary.LittleEndian.AppendUint32(buf, hsMagic)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Self))
	buf = binary.LittleEndian.AppendUint32(buf, lo)
	buf = binary.LittleEndian.AppendUint32(buf, hi)
	if version >= 2 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hello)))
		buf = append(buf, hello...)
	}
	if version >= 3 {
		var flags uint32
		if !t.cfg.DisableAliasRead {
			flags |= hsFlagAliasRead
		}
		if sameHost {
			flags |= hsFlagSameHost
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(lane))
		buf = binary.LittleEndian.AppendUint32(buf, flags)
	}
	return buf
}

// readHandshake parses and validates a peer header, returning the peer's
// node ID, hello payload (nil for a v1 peer, which has none), the lane
// this connection carries (0 for pre-v3 peers), and the handshake version
// the peer spoke.
func (t *TCP) readHandshake(r io.Reader) (node int, hello []byte, lane int, v uint16, err error) {
	var buf [hsHeadSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("transport: handshake read: %w", err)
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != hsMagic {
		return 0, nil, 0, 0, fmt.Errorf("transport: bad handshake magic %#x", m)
	}
	v = binary.LittleEndian.Uint16(buf[4:6])
	if v < hsMinVersion || v > hsVersion {
		return 0, nil, 0, 0, fmt.Errorf("transport: handshake version %d, want %d..%d", v, hsMinVersion, hsVersion)
	}
	node = int(binary.LittleEndian.Uint32(buf[6:10]))
	if node < 0 || node >= MaxJoinNodes || node == t.cfg.Self {
		return 0, nil, 0, 0, fmt.Errorf("transport: handshake from invalid node %d", node)
	}
	lo := int(binary.LittleEndian.Uint32(buf[10:14]))
	hi := int(binary.LittleEndian.Uint32(buf[14:18]))
	t.mu.Lock()
	known := node < len(t.peers)
	if !known {
		// A node beyond the configured table is a joiner: admit it and
		// record its announced range. Its dial address arrives in the
		// hello's membership section (AddPeer).
		t.growPeers(node)
		if t.cfg.Ranges != nil && hi > lo {
			t.cfg.Ranges[node] = [2]int{lo, hi}
		}
	}
	var want [2]int
	checkRange := known && t.cfg.Ranges != nil && node < len(t.cfg.Ranges)
	if checkRange {
		want = t.cfg.Ranges[node]
	}
	t.mu.Unlock()
	// Cross-check only ranges we were configured with (hi > lo): a slot
	// grown by an earlier join holds the joiner's own announcement.
	if checkRange && want[1] > want[0] && (lo != want[0] || hi != want[1]) {
		return 0, nil, 0, 0, fmt.Errorf("transport: node %d announced localities [%d,%d), want [%d,%d)",
			node, lo, hi, want[0], want[1])
	}
	if v < 2 {
		return node, nil, 0, v, nil // v1 carries no hello: a string-only peer
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("transport: handshake hello length read: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxHello {
		return 0, nil, 0, 0, fmt.Errorf("transport: node %d announced a %d-byte hello, limit %d", node, n, MaxHello)
	}
	if n > 0 {
		hello = make([]byte, n)
		if _, err := io.ReadFull(r, hello); err != nil {
			return 0, nil, 0, 0, fmt.Errorf("transport: handshake hello read: %w", err)
		}
	}
	if v < 3 {
		return node, hello, 0, v, nil // pre-lane peer: everything is lane 0
	}
	var laneBuf [hsLaneSize]byte
	if _, err := io.ReadFull(r, laneBuf[:]); err != nil {
		return 0, nil, 0, 0, fmt.Errorf("transport: handshake lane read: %w", err)
	}
	lane = int(binary.LittleEndian.Uint16(laneBuf[0:2]))
	if lane >= MaxLanes {
		// A corrupt lane announcement is rejected outright rather than
		// clamped: accepting it could cross-wire two peers' orderings.
		return 0, nil, 0, 0, fmt.Errorf("transport: node %d announced lane %d, limit %d", node, lane, MaxLanes)
	}
	// laneBuf[2:6] is the capability flags word; unknown bits are ignored
	// for forward compatibility and no current bit changes receive-side
	// behavior.
	return node, hello, lane, v, nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn handles one inbound (receive-only) connection: handshake
// exchange, then a frame-read loop feeding the handler. By default frames
// that fit the connection read buffer are delivered as aliased sub-slices
// of it — zero copies between the socket and the handler, legal under the
// Handler copy-what-you-retain contract; DisableAliasRead restores the
// copying loop, and frames larger than the buffer always take it.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	deadline := time.Now().Add(t.cfg.HandshakeTimeout)
	conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, t.cfg.ReadBufferBytes)
	from, hello, _, peerVer, err := t.readHandshake(br)
	if err != nil {
		return
	}
	// Reply in the peer's own version: an old binary's reader strictly
	// rejects anything else, and the reply it expects has no lane header
	// (nor, for v1, a hello).
	_, sameHost := conn.(*net.UnixConn)
	if _, err := conn.Write(t.handshakeBytesV(peerVer, 0, sameHost)); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	// The hello is delivered before any frame from this connection: frames
	// that depend on it (interned parcels) decode against it in order.
	t.deliverHello(from, hello)
	var lenBuf [4]byte
	// The copy-path read buffer, grown to the largest copied frame seen.
	var frame []byte
	alias := !t.cfg.DisableAliasRead
	poison := t.cfg.PoisonAliasedReads
	for {
		n, err := readFrameLen(br, &lenBuf)
		if err != nil {
			return
		}
		if n > MaxFrame {
			return // corrupt stream; drop the connection
		}
		var body []byte
		aliased := alias && int(n) <= br.Size()
		if aliased {
			// Alias decode: the frame is a window into the bufio buffer.
			// Peek fills the buffer without copying out of it; Discard
			// after the handler returns releases the window.
			body, err = br.Peek(int(n))
			if err != nil {
				return
			}
		} else {
			if uint32(cap(frame)) < n {
				frame = make([]byte, n)
			}
			frame = frame[:n]
			if _, err := io.ReadFull(br, frame); err != nil {
				return
			}
			body = frame
		}
		t.mu.Lock()
		h, closed := t.handler, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		h(from, body)
		if aliased {
			if poison {
				// A handler that retained the slice now reads 0xdd — and
				// under -race, the scribble itself flags the violator.
				for i := range body {
					body[i] = 0xdd
				}
			}
			br.Discard(int(n))
		} else if cap(frame) > 64<<10 {
			// Don't let one jumbo frame (a migration payload can reach
			// MaxFrame = 16MB) pin its buffer for the connection's
			// lifetime; steady-state parcels are a few hundred bytes.
			frame = nil
		}
	}
}

// readFrameLen reads one 4-byte frame length header.
func readFrameLen(br *bufio.Reader, lenBuf *[4]byte) (uint32, error) {
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(lenBuf[:]), nil
}

// Send delivers frame to node on lane 0, dialing (with bounded retries) on
// first use or after a connection failure. See SendLane for the batching
// and ownership contract.
func (t *TCP) Send(node int, frame []byte) error {
	return t.SendLane(node, 0, frame)
}

// SendLane delivers frame to node on the given lane (LaneTransport).
// Concurrent sends to one lane batch: the frame joins the lane's pending
// gather vector, and either this call becomes the flush leader — writing
// the one round that carries its own frame, then handing any backlog to a
// drainer goroutine — or it waits for the leader to report its batch's
// fate. Either way SendLane does not return until the write covering its
// frame has completed, so the caller may recycle frame's backing buffer
// the moment SendLane returns even on the zero-copy path. With MaxPending
// set, a sender that finds the pending batch full blocks until a flush
// round frees space.
func (t *TCP) SendLane(node, lane int, frame []byte) error {
	if err := checkNode(t, node); err != nil {
		return err
	}
	if lane < 0 || lane >= t.cfg.Lanes {
		return fmt.Errorf("transport: lane %d outside [0,%d)", lane, t.cfg.Lanes)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	l := t.peers[node].lanes[lane]
	addr := ""
	if node < len(t.cfg.Peers) {
		addr = t.cfg.Peers[node]
	}
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("transport: no address for node %d", node)
	}
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), MaxFrame)
	}

	l.mu.Lock()
	if max := t.cfg.MaxPending; max > 0 {
		// Admission: while a flush is active and the pending batch is at
		// the bound, wait for a round to free space. Wakeups are FIFO
		// (sync.Cond queues waiters in order), so a hot sender cannot
		// perpetually cut the line. The bound is soft by one frame: the
		// sender admitted at pendBytes == max-1 may push the batch past
		// max, which also lets frames larger than MaxPending through.
		blocked := false
		for l.flushing && l.pending() >= max {
			if t.isClosed() {
				l.mu.Unlock()
				return ErrClosed
			}
			if !blocked {
				blocked = true
				l.backpressured++
			}
			l.room.Wait()
		}
	}
	l.append(frame, t.cfg.CoalesceWrites)
	myEnd := l.pending()
	if l.flushing {
		// Follower: a leader's write is in flight; our frame rides the
		// next batch. Wait for that batch's verdict — which also keeps
		// frame's bytes alive until the writev covering them returns.
		ch := make(chan error, 1)
		l.waiters = append(l.waiters, tcpWaiter{end: myEnd, ch: ch})
		l.mu.Unlock()
		return <-ch
	}
	l.flushing = true
	res := t.flushRound(l, node, lane, addr)
	myErr := res.verdict(myEnd, node)
	if l.pending() > 0 {
		// Frames arrived while our round's write was in flight. Hand the
		// backlog to a drainer goroutine instead of flushing it here: the
		// leader already paid for the round carrying its own frame, and
		// holding it captive writing other senders' traffic would let one
		// hot stream tax whichever caller happened to lead.
		l.handoffs++
		l.mu.Unlock()
		go t.drainLane(l, node, lane, addr)
		return myErr
	}
	l.flushing = false
	l.room.Broadcast()
	l.mu.Unlock()
	return myErr
}

// pending reports the lane's buffered-unwritten byte count, whichever
// batching strategy is active. Callers hold l.mu.
func (l *tcpLane) pending() int {
	if l.buf != nil {
		return len(l.buf)
	}
	return l.pendBytes
}

// append adds one frame to the lane's pending batch. On the vectored path
// the frame slice itself is referenced — the caller's Send blocks until
// the covering write returns, which is what makes the zero-copy safe; the
// 4-byte length header is carved from a pooled fixed-capacity chunk so
// the sub-slice can never be invalidated by a growing append. Callers
// hold l.mu.
func (l *tcpLane) append(frame []byte, coalesce bool) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if coalesce {
		if l.buf == nil {
			l.buf = l.spare[:0]
			l.spare = nil
			if l.buf == nil {
				l.buf = make([]byte, 0, 4+len(frame))
			}
		}
		l.buf = append(l.buf, lenBuf[:]...)
		l.buf = append(l.buf, frame...)
		return
	}
	chunk := l.hdrChunk()
	start := len(*chunk)
	*chunk = append(*chunk, lenBuf[:]...)
	l.vec = append(l.vec, (*chunk)[start:start+4], frame)
	l.pendBytes += 4 + len(frame)
}

// hdrChunk returns a header chunk with room for one more header, pulling
// a fresh one from the pool when the current chunk is full. Callers hold
// l.mu.
func (l *tcpLane) hdrChunk() *[]byte {
	if n := len(l.hdrChunks); n > 0 {
		if c := l.hdrChunks[n-1]; cap(*c)-len(*c) >= 4 {
			return c
		}
	}
	c := hdrChunkPool.Get().(*[]byte)
	*c = (*c)[:0]
	l.hdrChunks = append(l.hdrChunks, c)
	return c
}

// drainLane runs flush rounds for one lane until its pending batch
// empties, then releases flush leadership. It runs detached from any
// sender; after Close it terminates promptly because every round fails
// fast with ErrClosed verdicts.
func (t *TCP) drainLane(l *tcpLane, node, lane int, addr string) {
	l.mu.Lock()
	for l.pending() > 0 {
		t.flushRound(l, node, lane, addr)
	}
	l.flushing = false
	l.room.Broadcast()
	l.mu.Unlock()
}

// flushRound writes one batch — everything pending for the lane — and
// delivers per-frame verdicts to the senders waiting on it. Called with
// l.mu held and flushing set; returns with l.mu re-held. The result lets
// a leader derive the verdict for its own frame (followers of this round
// get theirs on their channels).
//
// On the vectored path the batch is a net.Buffers handed to writev: the
// pooled encode buffers referenced by it are owned by their (blocked)
// senders until the verdicts go out, and the header chunks return to
// their pool here. net.Buffers.WriteTo reports the bytes the kernel
// accepted before any error, which is what the per-frame verdict offsets
// compare against.
func (t *TCP) flushRound(l *tcpLane, node, lane int, addr string) flushResult {
	if t.cfg.BatchWindow > 0 && l.conn != nil && l.pending() < t.cfg.BatchBytes {
		// Throughput bias: linger once per batch so more frames join —
		// adaptively, by yielding the processor and flushing as soon as a
		// pass finds the batch stopped growing, with BatchWindow as the
		// hard bound. A fixed sleep can't express a µs-scale window (timer
		// granularity rounds it up to milliseconds) and would tax sparse
		// traffic with the full window on every flush; the yield loop
		// costs one scheduler pass when nobody else is sending.
		deadline := time.Now().Add(t.cfg.BatchWindow)
		for {
			last := l.pending()
			l.mu.Unlock()
			runtime.Gosched()
			l.mu.Lock()
			if l.pending() == last || l.pending() >= t.cfg.BatchBytes ||
				!time.Now().Before(deadline) {
				break
			}
		}
	}
	vec := l.vec
	chunks := l.hdrChunks
	buf := l.buf
	waiters := l.waiters
	conn := l.conn
	reconnect := l.connected
	l.vec = l.spareVec[:0]
	l.spareVec = nil
	l.hdrChunks = nil
	l.pendBytes = 0
	if buf != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	}
	l.waiters = nil
	l.batches++
	// The pending batch just emptied: backpressured senders may append
	// to the next batch while this round's write is in flight.
	l.room.Broadcast()
	l.mu.Unlock()

	var res flushResult
	if t.isClosed() {
		res.err = ErrClosed
	} else if conn == nil {
		c, err := t.dial(node, lane, addr, reconnect)
		if err != nil {
			res.err = err
		} else {
			conn = c
		}
	}
	if res.err == nil {
		var n int64
		var err error
		if buf != nil {
			var nn int
			nn, err = conn.Write(buf)
			n = int64(nn)
		} else {
			// WriteTo advances its receiver as buffers complete; vecOrig
			// keeps the original headers so the backing array can be
			// recycled afterwards.
			vecOrig := vec
			n, err = vec.WriteTo(conn)
			vec = vecOrig
		}
		res.okBytes = int(n)
		if err != nil {
			res.err = err
			// Drop the stream mid-frame so the peer discards every
			// frame past the accepted prefix.
			conn.Close()
			conn = nil
		}
	}
	for _, w := range waiters {
		w.ch <- res.verdict(w.end, node)
	}

	// The round is settled: recycle the header chunks and drop the frame
	// references so callers' pooled buffers are no longer pinned.
	for _, c := range chunks {
		hdrChunkPool.Put(c)
	}
	for i := range vec {
		vec[i] = nil
	}

	if conn != nil && t.isClosed() {
		// Close swept the peers while our write was in flight; don't
		// re-install a connection nobody will close again.
		conn.Close()
		conn = nil
	}
	l.mu.Lock()
	l.conn = conn
	if conn != nil {
		l.connected = true
	}
	l.spareVec = vec[:0]
	if buf != nil {
		l.spare = buf[:0]
	}
	return res
}

// BatchStats reports the group-commit batcher's cumulative activity summed
// across every peer and lane: flush rounds written, backlogs handed from a
// leader to a drainer goroutine, and sends that blocked on the MaxPending
// admission bound. The distributed runtime bridges these into px.wire.*
// metrics; LaneBatchStats exposes the per-lane view.
func (t *TCP) BatchStats() (batches, handoffs, backpressured uint64) {
	t.mu.Lock()
	peers := t.peers
	t.mu.Unlock()
	for _, p := range peers {
		for _, l := range p.lanes {
			l.mu.Lock()
			batches += l.batches
			handoffs += l.handoffs
			backpressured += l.backpressured
			l.mu.Unlock()
		}
	}
	return batches, handoffs, backpressured
}

// LaneBatchStats reports one lane's batcher activity summed across peers.
func (t *TCP) LaneBatchStats(lane int) (batches, handoffs, backpressured uint64) {
	if lane < 0 || lane >= t.cfg.Lanes {
		return 0, 0, 0
	}
	t.mu.Lock()
	peers := t.peers
	t.mu.Unlock()
	for _, p := range peers {
		l := p.lanes[lane]
		l.mu.Lock()
		batches += l.batches
		handoffs += l.handoffs
		backpressured += l.backpressured
		l.mu.Unlock()
	}
	return batches, handoffs, backpressured
}

// SameHostConns reports how many outbound connections took the same-host
// Unix-domain fabric instead of TCP.
func (t *TCP) SameHostConns() uint64 { return t.shmConns.Load() }

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// dial establishes an outbound connection to node at addr, retrying with
// exponential backoff so peers may start in any order. When the peer
// shares this host and advertises a same-host listener, the Unix-domain
// path is tried before TCP (see shm.go). The full retry budget is startup
// grace for a first connection; reconnects after a break get only a
// couple of attempts, because Send is called from latency-sensitive paths
// (acks, drain probes on transport goroutines) that must not stall for
// minutes on a dead peer.
func (t *TCP) dial(node, lane int, addr string, reconnect bool) (net.Conn, error) {
	attempts := t.cfg.DialAttempts
	if reconnect && attempts > 2 {
		attempts = 2
	}
	backoff := t.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if t.isClosed() {
			return nil, ErrClosed
		}
		conn, err := t.dialOnce(addr)
		if err == nil {
			if err = t.completeDial(conn, node, lane); err == nil {
				return conn, nil
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
	return nil, fmt.Errorf("transport: dial node %d at %s: %w", node, addr, lastErr)
}

// dialOnce makes one connection attempt, preferring the same-host fabric
// when it applies.
func (t *TCP) dialOnce(addr string) (net.Conn, error) {
	if !t.cfg.DisableSameHost {
		if conn, ok := dialSameHost(addr, t.cfg.HandshakeTimeout); ok {
			t.shmConns.Add(1)
			return conn, nil
		}
	}
	return net.DialTimeout("tcp", addr, t.cfg.HandshakeTimeout)
}

// completeDial runs the client half of the handshake and verifies the
// answering node is the one we meant to reach. The peer's hello payload
// (read from its handshake response) is delivered before the dial is
// declared complete, so a sender learns the peer's capabilities before
// its first frame on the new connection.
func (t *TCP) completeDial(conn net.Conn, node, lane int) error {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	_, sameHost := conn.(*net.UnixConn)
	if _, err := conn.Write(t.handshakeBytes(lane, sameHost)); err != nil {
		return err
	}
	got, hello, _, _, err := t.readHandshake(conn)
	if err != nil {
		return err
	}
	if got != node {
		return fmt.Errorf("transport: dialed node %d but node %d answered", node, got)
	}
	t.deliverHello(got, hello)
	return nil
}

// Close shuts the listeners and every connection, then waits for the
// accept and read goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	peers := t.peers
	t.mu.Unlock()
	t.ln.Close()
	if t.shm != nil {
		t.shm.Close()
		removeSameHost(t.ln.Addr())
	}
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		for _, l := range p.lanes {
			l.mu.Lock()
			if l.conn != nil {
				// Pending batches are abandoned: the leader's next round
				// sees the closed transport and fails its waiters,
				// upholding Close's "in-flight frames may be dropped".
				l.conn.Close()
				l.conn = nil
			}
			// Senders blocked on the MaxPending bound re-check and observe
			// the closed transport.
			l.room.Broadcast()
			l.mu.Unlock()
		}
	}
	t.wg.Wait()
	return nil
}
