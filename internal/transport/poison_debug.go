//go:build debugpool

package transport

// poisonAliasDefault arms alias-read poisoning by default under the
// debugpool build tag: every aliased frame is scribbled with 0xdd after
// its handler returns, so a handler that illegally retained the slice
// observes garbage (and a -race report) instead of silently reading
// recycled connection-buffer bytes.
const poisonAliasDefault = true
