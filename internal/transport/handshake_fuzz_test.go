package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLaneHandshake drives readHandshake — the v1/v2/v3 header parser,
// including the v3 lane + capability-flags section — with arbitrary
// bytes. The invariants under attack: no panic, no giant allocation from
// a corrupt hello length, and, on accepted headers, a node and lane
// within bounds — a malformed lane announcement must be rejected, never
// clamped or passed through, or it could cross-wire two peers' ordered
// streams.
func FuzzLaneHandshake(f *testing.F) {
	seed := func(version uint16, node, lo, hi uint32, hello []byte, lane uint16, flags uint32) []byte {
		b := binary.LittleEndian.AppendUint32(nil, hsMagic)
		b = binary.LittleEndian.AppendUint16(b, version)
		b = binary.LittleEndian.AppendUint32(b, node)
		b = binary.LittleEndian.AppendUint32(b, lo)
		b = binary.LittleEndian.AppendUint32(b, hi)
		if version >= 2 {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(hello)))
			b = append(b, hello...)
		}
		if version >= 3 {
			b = binary.LittleEndian.AppendUint16(b, lane)
			b = binary.LittleEndian.AppendUint32(b, flags)
		}
		return b
	}
	f.Add(seed(1, 1, 0, 2, nil, 0, 0))
	f.Add(seed(2, 1, 0, 2, []byte("hello"), 0, 0))
	f.Add(seed(3, 1, 0, 2, []byte("hello"), 3, hsFlagAliasRead|hsFlagSameHost))
	f.Add(seed(3, 1, 0, 2, nil, MaxLanes, 0))       // lane out of bounds
	f.Add(seed(3, 0, 0, 2, nil, 0, 0))              // self node
	f.Add(seed(3, MaxJoinNodes, 0, 2, nil, 0, 0))   // node out of bounds
	f.Add(seed(4, 1, 0, 2, nil, 0, 0))              // future version
	f.Add(seed(3, 2, 5, 3, nil, 1, 0xffffffff))     // inverted range, junk flags
	f.Add([]byte{0x50, 0x58, 0x54, 0x50})           // magic only, truncated
	f.Add(binary.LittleEndian.AppendUint32(nil, 0)) // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		// Fresh state per input keeps crashers self-contained: growPeers
		// from one accepted joiner must not change the next input's
		// verdict. Ranges stay unconfigured so acceptance depends on the
		// bytes alone (the range cross-check has its own unit test).
		tt, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
			Peers: make([]string, 3), DisableSameHost: true})
		if err != nil {
			t.Skip("listen unavailable")
		}
		defer tt.Close()
		node, hello, lane, v, err := tt.readHandshake(bytes.NewReader(data))
		if err != nil {
			return
		}
		if node <= 0 || node >= MaxJoinNodes {
			t.Fatalf("accepted node %d outside (0,%d)", node, MaxJoinNodes)
		}
		if lane < 0 || lane >= MaxLanes {
			t.Fatalf("accepted lane %d outside [0,%d)", lane, MaxLanes)
		}
		if v < hsMinVersion || v > hsVersion {
			t.Fatalf("accepted version %d outside %d..%d", v, hsMinVersion, hsVersion)
		}
		if v < 3 && lane != 0 {
			t.Fatalf("pre-lane version %d yielded lane %d", v, lane)
		}
		if len(hello) > MaxHello {
			t.Fatalf("accepted %d-byte hello beyond limit %d", len(hello), MaxHello)
		}
		// An accepted header must round-trip through the encoder the
		// same structural way: our own header in the accepted version
		// must parse back cleanly.
		echo := tt.handshakeBytesV(v, lane, false)
		if _, _, lane2, v2, err := tt.readHandshake(bytes.NewReader(mutateSelf(echo))); err != nil {
			t.Fatalf("own v%d header rejected: %v", v, err)
		} else if v2 != v || (v >= 3 && lane2 != lane) {
			t.Fatalf("own header round-trip: v=%d lane=%d, want v=%d lane=%d", v2, lane2, v, lane)
		}
	})
}

// mutateSelf rewrites the node field of an encoded handshake from 0
// (self, which readHandshake rejects) to 1, so the round-trip check
// exercises the parse rather than the self-connection guard.
func mutateSelf(b []byte) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[6:10], 1)
	return out
}
