package transport

// Same-host fabric: when two pxnode processes share a machine, their
// frames do not need to pay the loopback TCP tax (checksums, small-packet
// scheduling, conntrack on some hosts). Alongside its TCP listener every
// node binds a Unix-domain stream listener at a path derived
// deterministically from the TCP port, and a dialer whose target is a
// loopback address probes for that socket first: if it exists and
// connects, the frame stream rides the Unix socket — same handshake, same
// framing, same batcher — and falls back to TCP otherwise. The selection
// is invisible above the transport: a same-host connection is just a
// net.Conn whose writev is cheaper.
//
// The fabric is best-effort by design. A host where the socket path
// cannot be bound stays TCP-only; a stale socket left by a crashed
// process is removed before bind; and TCPConfig.DisableSameHost turns
// the whole mechanism off (CI exercises both modes).

import (
	"net"
	"os"
	"path/filepath"
	"time"
)

// sameHostPath maps a TCP listen address to the Unix socket path its
// owner advertises. Empty when the address doesn't name a usable port.
// The path lives in the default temp directory and carries only the
// port: loopback ports are host-unique, so the port alone identifies
// the process, and a dialer needs to derive the same path from nothing
// but the peer's dial address.
func sameHostPath(tcpAddr string) string {
	_, port, err := net.SplitHostPort(tcpAddr)
	if err != nil || port == "" || port == "0" {
		return ""
	}
	return filepath.Join(os.TempDir(), "pxtp-"+port+".sock")
}

// isLoopbackAddr reports whether addr names this host's loopback — the
// only addresses for which the same-host probe can apply.
func isLoopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// listenSameHost binds the Unix-domain companion listener for a bound TCP
// listen address. A stale socket file (crashed predecessor) is removed
// first; any failure leaves the node TCP-only.
func listenSameHost(bound net.Addr) (net.Listener, error) {
	path := sameHostPath(bound.String())
	if path == "" {
		return nil, nil
	}
	// Only remove what looks like an abandoned fabric socket: if the
	// path is live (its owner accepts), a second process is already
	// bound to this port's path — impossible for a real TCP port owner,
	// so the probe failing is the expected case.
	if _, err := os.Stat(path); err == nil {
		if c, err := net.DialTimeout("unix", path, 50*time.Millisecond); err == nil {
			c.Close()
			return nil, nil
		}
		os.Remove(path)
	}
	return net.Listen("unix", path)
}

// dialSameHost probes the same-host fabric for a peer dial address:
// loopback target, advertised socket present, connection accepted. The
// bool reports whether the fabric applied; false means dial TCP.
func dialSameHost(addr string, timeout time.Duration) (net.Conn, bool) {
	if !isLoopbackAddr(addr) {
		return nil, false
	}
	path := sameHostPath(addr)
	if path == "" {
		return nil, false
	}
	if _, err := os.Stat(path); err != nil {
		return nil, false
	}
	conn, err := net.DialTimeout("unix", path, timeout)
	if err != nil {
		return nil, false
	}
	return conn, true
}

// removeSameHost deletes the advertised socket file on Close so a
// successor on the same port doesn't probe a corpse.
func removeSameHost(bound net.Addr) {
	if path := sameHostPath(bound.String()); path != "" {
		os.Remove(path)
	}
}
