//go:build !debugpool

package transport

// poisonAliasDefault is the default for TCPConfig.PoisonAliasedReads:
// off in normal builds (the scribble costs a pass over every received
// frame), on under the debugpool tag — the same tag that arms the parcel
// pool's poison mode — so one build flag arms every
// retained-buffer-detection tripwire at once.
const poisonAliasDefault = false
