package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// collector is a Handler that records frames in arrival order.
type collector struct {
	mu     sync.Mutex
	frames []struct {
		from int
		data string
	}
}

func (c *collector) handle(from int, frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, struct {
		from int
		data string
	}{from, string(frame)})
}

func (c *collector) wait(t *testing.T, n int) []struct {
	from int
	data string
} {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.frames)
		if got >= n {
			out := append(c.frames[:0:0], c.frames...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames, have %d", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// exerciseTransport runs the shared conformance checks over three nodes of
// any Transport implementation.
func exerciseTransport(t *testing.T, nodes []Transport, cols []*collector) {
	t.Helper()
	// Ordered delivery per pair.
	for i := 0; i < 10; i++ {
		if err := nodes[0].Send(1, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	frames := cols[1].wait(t, 10)
	for i, f := range frames {
		if f.from != 0 || f.data != fmt.Sprintf("a%d", i) {
			t.Fatalf("frame %d: got from=%d data=%q", i, f.from, f.data)
		}
	}
	// All-pairs connectivity.
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if err := nodes[i].Send(j, []byte(fmt.Sprintf("%d->%d", i, j))); err != nil {
				t.Fatalf("send %d->%d: %v", i, j, err)
			}
		}
	}
	for j := range nodes {
		want := len(nodes) - 1
		if j == 1 {
			want += 10
		}
		cols[j].wait(t, want)
	}
	// Self and out-of-range sends are rejected.
	if err := nodes[0].Send(0, []byte("self")); err == nil {
		t.Fatal("send to self succeeded")
	}
	if err := nodes[0].Send(len(nodes), []byte("beyond")); err == nil {
		t.Fatal("send beyond machine succeeded")
	}
}

func TestInprocFabric(t *testing.T) {
	f := NewFabric(3)
	nodes := make([]Transport, 3)
	cols := make([]*collector, 3)
	for i := range nodes {
		nodes[i] = f.Node(i)
		cols[i] = &collector{}
		nodes[i].SetHandler(cols[i].handle)
		if err := nodes[i].Start(); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
	}
	exerciseTransport(t, nodes, cols)
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if err := nodes[0].Send(1, []byte("late")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func newTCPTrio(t *testing.T, ranges [][2]int) ([]Transport, []*collector) {
	t.Helper()
	tcps := make([]*TCP, 3)
	addrs := make([]string, 3)
	for i := range tcps {
		tt, err := NewTCP(TCPConfig{Self: i, Listen: "127.0.0.1:0", Ranges: ranges,
			Peers: make([]string, 3)})
		if err != nil {
			t.Fatalf("new tcp %d: %v", i, err)
		}
		tcps[i] = tt
		addrs[i] = tt.Addr().String()
	}
	nodes := make([]Transport, 3)
	cols := make([]*collector, 3)
	for i, tt := range tcps {
		tt.SetPeers(addrs)
		cols[i] = &collector{}
		tt.SetHandler(cols[i].handle)
		if err := tt.Start(); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		nodes[i] = tt
	}
	return nodes, cols
}

func TestTCPTransport(t *testing.T) {
	nodes, cols := newTCPTrio(t, [][2]int{{0, 2}, {2, 4}, {4, 6}})
	exerciseTransport(t, nodes, cols)
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

func TestTCPDialRetry(t *testing.T) {
	// Node 1 does not exist yet when node 0's first Send begins dialing:
	// the bounded retry loop must absorb connection-refused failures until
	// the peer comes up.
	reserve, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := reserve.Addr().String()
	reserve.Close()

	t0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: make([]string, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	c0 := &collector{}
	t0.SetHandler(c0.handle)
	addrs := []string{t0.Addr().String(), addr1}
	t0.SetPeers(addrs)
	if err := t0.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- t0.Send(1, []byte("early")) }()
	time.Sleep(150 * time.Millisecond) // several dial attempts fail: nothing listens yet

	t1, err := NewTCP(TCPConfig{Self: 1, Listen: addr1, Peers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	c1 := &collector{}
	t1.SetHandler(c1.handle)
	if err := t1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("send with delayed peer: %v", err)
	}
	got := c1.wait(t, 1)
	if got[0].data != "early" || got[0].from != 0 {
		t.Fatalf("got %+v", got[0])
	}
}

// newTCPPair builds a connected two-node TCP transport with the given
// extra config applied to both ends.
func newTCPPair(t *testing.T, tune func(*TCPConfig)) ([]Transport, []*collector) {
	t.Helper()
	tcps := make([]*TCP, 2)
	addrs := make([]string, 2)
	for i := range tcps {
		cfg := TCPConfig{Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2)}
		if tune != nil {
			tune(&cfg)
		}
		tt, err := NewTCP(cfg)
		if err != nil {
			t.Fatalf("new tcp %d: %v", i, err)
		}
		tcps[i] = tt
		addrs[i] = tt.Addr().String()
	}
	nodes := make([]Transport, 2)
	cols := make([]*collector, 2)
	for i, tt := range tcps {
		tt.SetPeers(addrs)
		cols[i] = &collector{}
		tt.SetHandler(cols[i].handle)
		if err := tt.Start(); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		nodes[i] = tt
	}
	return nodes, cols
}

// checkBatchedFlood drives many concurrent senders at node 1 and verifies
// every frame arrives intact and in per-sender order despite batching.
func checkBatchedFlood(t *testing.T, nodes []Transport, cols []*collector) {
	t.Helper()
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := nodes[0].Send(1, []byte(fmt.Sprintf("s%d.%d", s, i))); err != nil {
					t.Errorf("send s%d.%d: %v", s, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	frames := cols[1].wait(t, senders*perSender)
	next := make([]int, senders)
	for _, f := range frames {
		var s, i int
		if _, err := fmt.Sscanf(f.data, "s%d.%d", &s, &i); err != nil || f.from != 0 {
			t.Fatalf("corrupt frame %q from %d", f.data, f.from)
		}
		if i != next[s] {
			t.Fatalf("sender %d: frame %d arrived after %d sent", s, i, next[s])
		}
		next[s]++
	}
}

// TestTCPGroupCommitBatching floods one peer connection from many
// goroutines with the default zero batch window: batching must come purely
// from group commit, with no lost, torn, or reordered frames.
func TestTCPGroupCommitBatching(t *testing.T) {
	nodes, cols := newTCPPair(t, nil)
	checkBatchedFlood(t, nodes, cols)
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPBatchWindow does the same under a positive linger window, which
// exercises the delayed-flush path and the BatchBytes early-out.
func TestTCPBatchWindow(t *testing.T) {
	nodes, cols := newTCPPair(t, func(c *TCPConfig) {
		c.BatchWindow = 200 * time.Microsecond
		c.BatchBytes = 4 << 10
	})
	checkBatchedFlood(t, nodes, cols)
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPSendAfterCloseErrors pins the ErrClosed path with batching in
// place.
func TestTCPSendAfterCloseErrors(t *testing.T) {
	nodes, _ := newTCPPair(t, nil)
	if err := nodes[0].Send(1, []byte("pre")); err != nil {
		t.Fatalf("send: %v", err)
	}
	nodes[0].Close()
	if err := nodes[0].Send(1, []byte("post")); err == nil {
		t.Fatal("send on closed transport succeeded")
	}
	nodes[1].Close()
}

func TestTCPHandshakeRejectsWrongRanges(t *testing.T) {
	// Two nodes configured with conflicting locality partitions must not
	// exchange frames.
	ta, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Ranges: [][2]int{{0, 2}, {2, 4}}, Peers: make([]string, 2),
		DialAttempts: 2, DialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0",
		Ranges: [][2]int{{0, 3}, {3, 4}}, Peers: make([]string, 2),
		DialAttempts: 2, DialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	addrs := []string{ta.Addr().String(), tb.Addr().String()}
	ta.SetPeers(addrs)
	tb.SetPeers(addrs)
	ca, cb := &collector{}, &collector{}
	ta.SetHandler(ca.handle)
	tb.SetHandler(cb.handle)
	if err := ta.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ta.Send(1, []byte("mismatched")); err == nil {
		t.Fatal("send across mismatched partitions succeeded")
	}
}

// TestTCPAcceptsV1Handshake: a peer speaking the version-1 header (no
// hello field) still connects and delivers frames; it is treated as a
// string-only node (nil hello). Rolling upgrades keep old dialers working
// against new listeners.
func TestTCPAcceptsV1Handshake(t *testing.T) {
	tt, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: make([]string, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer tt.Close()
	col := &collector{}
	tt.SetHandler(col.handle)
	var helloMu sync.Mutex
	var hellos [][]byte
	tt.SetHelloHandler(func(node int, payload []byte) {
		helloMu.Lock()
		hellos = append(hellos, payload)
		helloMu.Unlock()
	})
	tt.SetPeers([]string{tt.Addr().String(), "127.0.0.1:1"})
	if err := tt.Start(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", tt.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Version-1 header: magic | u16 1 | node 1 | lo 0 | hi 0 — and then
	// immediately a frame, with no hello field in between.
	hs := binary.LittleEndian.AppendUint32(nil, hsMagic)
	hs = binary.LittleEndian.AppendUint16(hs, 1)
	hs = binary.LittleEndian.AppendUint32(hs, 1)
	hs = binary.LittleEndian.AppendUint32(hs, 0)
	hs = binary.LittleEndian.AppendUint32(hs, 0)
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}
	// The listener must answer in v1 format — fixed 18-byte header,
	// version 1, no hello field — or a real v1 binary's strict version
	// check would drop the connection.
	reply := make([]byte, 18)
	if _, err := io.ReadFull(conn, reply); err != nil {
		t.Fatalf("v1 reply read: %v", err)
	}
	if m := binary.LittleEndian.Uint32(reply[0:4]); m != hsMagic {
		t.Fatalf("v1 reply magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(reply[4:6]); v != 1 {
		t.Fatalf("v1 peer answered with handshake version %d, want 1", v)
	}
	payload := []byte("from-the-past")
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = append(frame, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	got := col.wait(t, 1)
	if got[0].from != 1 || got[0].data != "from-the-past" {
		t.Fatalf("frame from v1 peer: from=%d data=%q", got[0].from, got[0].data)
	}
	helloMu.Lock()
	defer helloMu.Unlock()
	if len(hellos) != 1 || hellos[0] != nil {
		t.Fatalf("v1 peer hello: got %v, want one nil payload", hellos)
	}
}

// TestTCPMaxPendingFlood floods a peer through a tiny pending-byte bound:
// backpressure must throttle senders without losing, tearing, or
// reordering frames.
func TestTCPMaxPendingFlood(t *testing.T) {
	nodes, cols := newTCPPair(t, func(c *TCPConfig) {
		c.MaxPending = 256
	})
	checkBatchedFlood(t, nodes, cols)
	if batches, _, _ := nodes[0].(*TCP).BatchStats(); batches == 0 {
		t.Fatal("flood wrote no batches")
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPMaxPendingBackpressure pins the admission mechanics directly: a
// sender that finds the pending buffer at the bound while a flush is
// active blocks, is counted, and proceeds once a round frees space.
func TestTCPMaxPendingBackpressure(t *testing.T) {
	nodes, cols := newTCPPair(t, func(c *TCPConfig) {
		c.MaxPending = 64
	})
	tt := nodes[0].(*TCP)
	l := tt.peers[1].lanes[0]

	// Simulate a flush in progress with the pending batch already at the
	// bound.
	l.mu.Lock()
	l.flushing = true
	l.pendBytes = 128
	l.mu.Unlock()

	done := make(chan error, 1)
	go func() { done <- tt.Send(1, []byte("held")) }()
	select {
	case err := <-done:
		t.Fatalf("send returned %v despite a full pending buffer", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Free the batch the way a finished flush round would.
	l.mu.Lock()
	l.pendBytes = 0
	l.flushing = false
	l.room.Broadcast()
	l.mu.Unlock()

	if err := <-done; err != nil {
		t.Fatalf("send after space freed: %v", err)
	}
	if got := cols[1].wait(t, 1); got[0].data != "held" {
		t.Fatalf("got %q, want %q", got[0].data, "held")
	}
	if _, _, backpressured := tt.BatchStats(); backpressured != 1 {
		t.Fatalf("backpressured = %d, want 1", backpressured)
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestTCPLeaderHandsOffBacklog verifies flush-leader fairness: a leader
// whose write completes with new frames already buffered returns after its
// own round and leaves the backlog to a drainer goroutine, so the leader
// is never held captive flushing other senders' traffic.
func TestTCPLeaderHandsOffBacklog(t *testing.T) {
	tt, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: make([]string, 2)})
	if err != nil {
		t.Fatal(err)
	}
	tt.SetPeers([]string{tt.Addr().String(), "127.0.0.1:9"})
	defer tt.Close()

	// Install a synchronous pipe as the established connection: a write
	// stays in flight until this test reads it, which lets us park the
	// leader's round deterministically while a follower queues behind it.
	cli, srv := net.Pipe()
	defer srv.Close()
	l := tt.peers[1].lanes[0]
	l.mu.Lock()
	l.conn = cli
	l.connected = true
	l.mu.Unlock()

	leaderDone := make(chan error, 1)
	go func() { leaderDone <- tt.Send(1, []byte("lead")) }()
	waitLane(t, l, func() bool { return l.flushing && l.batches == 1 })

	followerDone := make(chan error, 1)
	go func() { followerDone <- tt.Send(1, []byte("tail")) }()
	waitLane(t, l, func() bool { return l.pending() > 0 })

	// Drain the leader's round; its Send must return even though the
	// follower's frame is still pending.
	readFrame(t, srv, "lead")
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader send: %v", err)
	}

	// The detached drainer flushes the backlog.
	readFrame(t, srv, "tail")
	if err := <-followerDone; err != nil {
		t.Fatalf("follower send: %v", err)
	}
	batches, handoffs, _ := tt.BatchStats()
	if batches != 2 || handoffs != 1 {
		t.Fatalf("batches=%d handoffs=%d, want 2 and 1", batches, handoffs)
	}
}

// waitLane polls cond under the lane's lock until it holds or the deadline
// lapses.
func waitLane(t *testing.T, l *tcpLane, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		ok := cond()
		l.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for peer state")
		}
		time.Sleep(time.Millisecond)
	}
}

// readFrame consumes one length-prefixed frame from c and checks its
// payload.
func readFrame(t *testing.T, c net.Conn, want string) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var lenBuf [4]byte
	if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
		t.Fatalf("read frame length: %v", err)
	}
	payload := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(c, payload); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	if string(payload) != want {
		t.Fatalf("frame %q, want %q", payload, want)
	}
}
