// Package litlx implements LITL-X ("little-X"), the paper's prototype
// programming API: a subset of ParalleX exposed as programmer-facing
// constructs for latency tolerance and overhead management. It extends a
// TNT-style coarse-grain thread layer with (1) asynchronous calls in the
// EARTH/Cilk style, (2) percolation directives, (3) dataflow-style
// synchronization, and (4) atomic sections over a weak (location
// consistency) memory model. LITL-X is a testbed API, not an end-user
// language — exactly as the paper positions it.
package litlx

import (
	"fmt"
	"sync"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// API is a LITL-X view over a ParalleX runtime.
type API struct {
	rt *core.Runtime
}

// New wraps rt with the LITL-X constructs.
func New(rt *core.Runtime) *API {
	return &API{rt: rt}
}

// Runtime exposes the underlying ParalleX runtime.
func (a *API) Runtime() *core.Runtime { return a.rt }

// Thread starts a TNT-style coarse-grain thread on the given locality.
func (a *API) Thread(loc int, fn func(*core.Context)) {
	a.rt.Spawn(loc, fn)
}

// Async launches fn as an asynchronous call on locality loc and returns a
// future for its result — the EARTH "launch and manage asynchronous calls"
// construct. The caller keeps running; Await (or Future.Get) joins.
func (a *API) Async(loc int, fn func() (any, error)) *lco.Future {
	fut := lco.NewFuture()
	a.rt.Spawn(loc, func(ctx *core.Context) {
		v, err := fn()
		if err != nil {
			fut.Fail(err)
			return
		}
		fut.Set(v)
	})
	return fut
}

// SyncSlot is the EARTH-style synchronization counter: initialized to a
// count, decremented by Signal, firing a continuation at zero.
type SyncSlot struct {
	gate *lco.AndGate
}

// NewSyncSlot returns a slot expecting n signals.
func (a *API) NewSyncSlot(n int) *SyncSlot {
	return &SyncSlot{gate: lco.NewAndGate(n)}
}

// Signal decrements the slot.
func (s *SyncSlot) Signal() { s.gate.Signal() }

// Wait blocks until the count reaches zero.
func (s *SyncSlot) Wait() { s.gate.Wait() }

// Then registers a continuation to run when the count reaches zero.
func (s *SyncSlot) Then(fn func()) { s.gate.OnFire(fn) }

// Dataflow builds an n-input dataflow construct whose body runs as a thread
// on the given locality when all inputs arrive, resolving the returned
// future — "synchronization constructs for data-flow style operations".
func (a *API) Dataflow(loc, n int, body func(inputs []any) (any, error)) (*lco.Dataflow, *lco.Future) {
	out := lco.NewFuture()
	df := lco.NewDataflow(n, func(inputs []any) (any, error) {
		// Defer the body to a scheduled thread so firing never runs user
		// code on the supplier's stack.
		a.rt.Spawn(loc, func(*core.Context) {
			v, err := body(inputs)
			if err != nil {
				out.Fail(err)
				return
			}
			out.Set(v)
		})
		return nil, nil
	})
	return df, out
}

// Percolate stages a remote data object's value at locality loc ahead of
// its use: the returned future resolves with a *local* GID naming the
// staged copy. Computations scheduled after the future resolves never wait
// on the remote fetch — the LITL-X percolation directive.
func (a *API) Percolate(loc int, data agas.GID) *lco.Future {
	staged := lco.NewFuture()
	fut := a.rt.CallFrom(loc, data, ActionRead, nil)
	fut.OnReady(func(v any, err error) {
		if err != nil {
			staged.Fail(err)
			return
		}
		staged.Set(a.rt.NewDataAt(loc, v))
	})
	return staged
}

// ActionRead returns a data object's value (shared with the percolation
// engine's read action name so only one is registered per runtime).
const ActionRead = "px.litlx.read"

// RegisterActions installs LITL-X actions; call once per runtime.
func RegisterActions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionRead, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		return target, nil
	})
}

// Atomic is a LITL-X atomic section over a piece of state with location
// consistency: the state lives at one locality, sections execute there
// serially, and there is no coherence obligation elsewhere — observers see
// state only through sections. Do is split-phase: the caller gets a future
// and may overlap its own work with the section's execution.
type Atomic struct {
	api   *API
	loc   int
	mu    sync.Mutex
	st    any
	gid   agas.GID
	execd uint64
}

// NewAtomic creates state owned by locality loc.
func (a *API) NewAtomic(loc int, initial any) *Atomic {
	at := &Atomic{api: a, loc: loc, st: initial}
	at.gid = a.rt.NewObjectAt(loc, agas.KindData, at)
	return at
}

// GID returns the state's global name.
func (at *Atomic) GID() agas.GID { return at.gid }

// Do schedules section fn at the owner locality; fn receives the current
// state and returns the new state plus a result that resolves the future.
// Sections from any locality serialize at the owner.
func (at *Atomic) Do(from int, fn func(state any) (newState, result any, err error)) *lco.Future {
	out := lco.NewFuture()
	at.api.rt.Spawn(at.loc, func(ctx *core.Context) {
		at.mu.Lock()
		ns, res, err := fn(at.st)
		if err == nil {
			at.st = ns
			at.execd++
		}
		at.mu.Unlock()
		if err != nil {
			out.Fail(err)
			return
		}
		out.Set(res)
	})
	_ = from // the origin matters for accounting only; scheduling is owner-side
	return out
}

// Read runs a read-only section and returns its view of the state.
func (at *Atomic) Read(from int) *lco.Future {
	return at.Do(from, func(state any) (any, any, error) {
		return state, state, nil
	})
}

// Executed reports how many sections have committed.
func (at *Atomic) Executed() uint64 {
	at.mu.Lock()
	defer at.mu.Unlock()
	return at.execd
}

// String renders the atomic for debugging.
func (at *Atomic) String() string {
	return fmt.Sprintf("atomic@L%d(%v)", at.loc, at.gid)
}
