package litlx

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/network"
)

func newAPI(t *testing.T, n int) *API {
	t.Helper()
	rt := core.New(core.Config{Localities: n, WorkersPerLocality: 4})
	t.Cleanup(rt.Shutdown)
	RegisterActions(rt)
	return New(rt)
}

func TestAsyncReturnsValue(t *testing.T) {
	a := newAPI(t, 2)
	fut := a.Async(1, func() (any, error) { return int64(21 * 2), nil })
	v, err := fut.Get()
	if err != nil || v.(int64) != 42 {
		t.Fatalf("async = %v, %v", v, err)
	}
}

func TestAsyncPropagatesError(t *testing.T) {
	a := newAPI(t, 1)
	want := errors.New("async broke")
	fut := a.Async(0, func() (any, error) { return nil, want })
	if _, err := fut.Get(); err != want {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncOverlapsWithCaller(t *testing.T) {
	a := newAPI(t, 2)
	started := make(chan struct{})
	release := make(chan struct{})
	fut := a.Async(1, func() (any, error) {
		close(started)
		<-release
		return "done", nil
	})
	<-started
	// The caller is demonstrably running while the async call is blocked.
	close(release)
	if v, _ := fut.Get(); v.(string) != "done" {
		t.Fatalf("got %v", v)
	}
}

func TestThreadRunsOnLocality(t *testing.T) {
	a := newAPI(t, 4)
	var loc atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	a.Thread(3, func(ctx *core.Context) {
		loc.Store(int32(ctx.Locality()))
		wg.Done()
	})
	wg.Wait()
	if loc.Load() != 3 {
		t.Fatalf("thread ran on L%d", loc.Load())
	}
}

func TestSyncSlot(t *testing.T) {
	a := newAPI(t, 1)
	s := a.NewSyncSlot(3)
	var fired atomic.Bool
	s.Then(func() { fired.Store(true) })
	s.Signal()
	s.Signal()
	if fired.Load() {
		t.Fatal("slot fired early")
	}
	s.Signal()
	s.Wait()
	if !fired.Load() {
		t.Fatal("slot never fired")
	}
}

func TestDataflowFiresBodyOnLocality(t *testing.T) {
	a := newAPI(t, 2)
	df, out := a.Dataflow(1, 2, func(in []any) (any, error) {
		return in[0].(int64) * in[1].(int64), nil
	})
	df.Supply(0, int64(6))
	df.Supply(1, int64(7))
	v, err := out.Get()
	if err != nil || v.(int64) != 42 {
		t.Fatalf("dataflow = %v, %v", v, err)
	}
}

func TestDataflowBodyError(t *testing.T) {
	a := newAPI(t, 1)
	df, out := a.Dataflow(0, 1, func(in []any) (any, error) {
		return nil, errors.New("body failed")
	})
	df.Supply(0, nil)
	if _, err := out.Get(); err == nil {
		t.Fatal("body error lost")
	}
}

func TestPercolateStagesLocalCopy(t *testing.T) {
	net := network.NewCrossbar(2, network.Params{InjectionOverhead: 100 * time.Microsecond})
	rt := core.New(core.Config{Localities: 2, Net: net})
	t.Cleanup(rt.Shutdown)
	RegisterActions(rt)
	a := New(rt)
	remote := rt.NewDataAt(1, []float64{1, 2, 3})
	fut := a.Percolate(0, remote)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	gid := v.(agas.GID)
	if gid.IsNil() {
		t.Fatal("staged GID is nil")
	}
	// The staged copy is resident at locality 0 with the remote's value.
	staged, ok := rt.LocalObject(0, gid)
	if !ok {
		t.Fatal("staged copy not resident at L0")
	}
	got := staged.([]float64)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("staged value = %v", got)
	}
	owner, _ := rt.AGAS().Owner(gid)
	if owner != 0 {
		t.Fatalf("staged copy owned by L%d", owner)
	}
}

func TestAtomicSectionsSerialize(t *testing.T) {
	a := newAPI(t, 4)
	at := a.NewAtomic(0, int64(0))
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fut := at.Do(1, func(state any) (any, any, error) {
				// Non-atomic read-modify-write made safe only by section
				// serialization.
				v := state.(int64)
				return v + 1, v, nil
			})
			fut.Get()
		}()
	}
	wg.Wait()
	final, err := at.Read(2).Get()
	if err != nil {
		t.Fatal(err)
	}
	if final.(int64) != n {
		t.Fatalf("atomic counter = %v, want %d (lost updates)", final, n)
	}
	if at.Executed() != n+1 { // +1 for the Read section
		t.Fatalf("executed = %d", at.Executed())
	}
}

func TestAtomicSectionErrorLeavesState(t *testing.T) {
	a := newAPI(t, 1)
	at := a.NewAtomic(0, "initial")
	fut := at.Do(0, func(state any) (any, any, error) {
		return "clobbered", nil, errors.New("abort")
	})
	if _, err := fut.Get(); err == nil {
		t.Fatal("error swallowed")
	}
	v, _ := at.Read(0).Get()
	if v.(string) != "initial" {
		t.Fatalf("failed section mutated state to %v", v)
	}
}

func TestAtomicSplitPhase(t *testing.T) {
	a := newAPI(t, 2)
	at := a.NewAtomic(1, int64(0))
	// Do returns immediately; the caller can overlap.
	futs := make([]any, 0, 10)
	for i := 0; i < 10; i++ {
		futs = append(futs, at.Do(0, func(state any) (any, any, error) {
			return state.(int64) + 1, nil, nil
		}))
	}
	a.Runtime().Wait()
	v, _ := at.Read(0).Get()
	if v.(int64) != 10 {
		t.Fatalf("state = %v", v)
	}
	_ = futs
}
