package echo

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/network"
)

func newMachine(t *testing.T, n int, latency time.Duration) *core.Runtime {
	t.Helper()
	rt := core.New(core.Config{
		Localities:         n,
		WorkersPerLocality: 4,
		Net:                network.NewCrossbar(n, network.Params{InjectionOverhead: latency}),
	})
	t.Cleanup(rt.Shutdown)
	RegisterActions(rt)
	return rt
}

func allMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestInitialValueVisibleEverywhere(t *testing.T) {
	rt := newMachine(t, 4, 0)
	v, err := NewVar(rt, int64(7), allMembers(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	for loc := 0; loc < 4; loc++ {
		got, gen, err := v.ReadAt(loc)
		if err != nil {
			t.Fatal(err)
		}
		if got.(int64) != 7 || gen != 0 {
			t.Fatalf("L%d: %v gen %d", loc, got, gen)
		}
	}
}

func TestWritePropagatesToAllCopies(t *testing.T) {
	rt := newMachine(t, 8, 50*time.Microsecond)
	v, err := NewVar(rt, "old", allMembers(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	fut, err := v.Write(3, "new")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if gen.(uint64) != 1 {
		t.Fatalf("generation = %v", gen)
	}
	rt.Wait()
	for loc := 0; loc < 8; loc++ {
		got, g, _ := v.ReadAt(loc)
		if got.(string) != "new" || g != 1 {
			t.Fatalf("L%d sees %v gen %d after ack", loc, got, g)
		}
	}
}

func TestSplitPhaseAllowsOverlap(t *testing.T) {
	// The write future must not resolve before all copies update, but the
	// writer can do work in between — we simply check the future is not
	// resolved instantly with nonzero latency, then resolves.
	rt := newMachine(t, 8, 300*time.Microsecond)
	v, _ := NewVar(rt, int64(0), allMembers(8), 2)
	fut, _ := v.Write(0, int64(1))
	if _, _, ok := fut.TryGet(); ok {
		t.Fatal("split-phase write resolved synchronously despite network latency")
	}
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
}

func TestLastWriterWinsEverywhere(t *testing.T) {
	rt := newMachine(t, 6, 20*time.Microsecond)
	v, _ := NewVar(rt, int64(0), allMembers(6), 3)
	var futs []interface{ Get() (any, error) }
	for i := 1; i <= 10; i++ {
		f, err := v.Write(i%6, int64(i*100))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if _, err := f.Get(); err != nil {
			t.Fatal(err)
		}
	}
	rt.Wait()
	// Generation 10 (value 1000) must have won at every copy.
	for loc := 0; loc < 6; loc++ {
		got, gen, _ := v.ReadAt(loc)
		if gen != 10 || got.(int64) != 1000 {
			t.Fatalf("L%d converged to %v gen %d", loc, got, gen)
		}
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	rt := newMachine(t, 4, 10*time.Microsecond)
	v, _ := NewVar(rt, int64(0), allMembers(4), 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := v.Write(w%4, int64(w))
			if err != nil {
				t.Error(err)
				return
			}
			f.Get()
		}()
	}
	wg.Wait()
	rt.Wait()
	// All copies must agree on whichever generation won.
	ref, refGen, _ := v.ReadAt(0)
	for loc := 1; loc < 4; loc++ {
		got, gen, _ := v.ReadAt(loc)
		if gen != refGen || got.(int64) != ref.(int64) {
			t.Fatalf("copies diverged: L0=(%v,%d) L%d=(%v,%d)", ref, refGen, loc, got, gen)
		}
	}
	if refGen != 8 {
		t.Fatalf("final generation %d, want 8", refGen)
	}
}

func TestReadAtNonMember(t *testing.T) {
	rt := newMachine(t, 4, 0)
	v, _ := NewVar(rt, int64(0), []int{0, 1}, 2)
	if _, _, err := v.ReadAt(3); err == nil {
		t.Fatal("read from non-member succeeded")
	}
}

func TestVarValidation(t *testing.T) {
	rt := newMachine(t, 4, 0)
	if _, err := NewVar(rt, 1, nil, 2); err == nil {
		t.Fatal("empty members accepted")
	}
	if _, err := NewVar(rt, 1, []int{0}, 0); err == nil {
		t.Fatal("fanout 0 accepted")
	}
	if _, err := NewVar(rt, 1, []int{0, 0}, 2); err == nil {
		t.Fatal("duplicate members accepted")
	}
	if _, err := NewVar(rt, struct{ X int }{1}, []int{0}, 2); err == nil {
		t.Fatal("unencodable init accepted")
	}
}

func TestDepth(t *testing.T) {
	rt := newMachine(t, 16, 0)
	cases := []struct{ n, fanout, depth int }{
		{1, 2, 1}, {3, 2, 2}, {7, 2, 3}, {15, 2, 4}, {16, 4, 3},
	}
	for _, c := range cases {
		v, err := NewVar(rt, int64(0), allMembers(c.n), c.fanout)
		if err != nil {
			t.Fatal(err)
		}
		if d := v.Depth(); d != c.depth {
			t.Errorf("n=%d fanout=%d depth=%d, want %d", c.n, c.fanout, d, c.depth)
		}
	}
}

// Property: for any member count, fanout, and write sequence, the highest
// generation's value ends up at every copy.
func TestPropertyEchoConvergence(t *testing.T) {
	rt := newMachine(t, 8, 0)
	f := func(n8, fan8 uint8, writes []int64) bool {
		n := int(n8%8) + 1
		fanout := int(fan8%3) + 1
		v, err := NewVar(rt, int64(-1), allMembers(n), fanout)
		if err != nil {
			return false
		}
		last := int64(-1)
		for _, w := range writes {
			fut, err := v.Write(int(w&0x7)%n, w)
			if err != nil {
				return false
			}
			if _, err := fut.Get(); err != nil {
				return false
			}
			last = w
		}
		rt.Wait()
		for loc := 0; loc < n; loc++ {
			got, _, err := v.ReadAt(loc)
			if err != nil || got.(int64) != last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHomeVarReadWrite(t *testing.T) {
	rt := newMachine(t, 4, 20*time.Microsecond)
	h, err := NewHomeVar(rt, 0, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.ReadFrom(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 5 {
		t.Fatalf("read %v", v)
	}
	wf, err := h.WriteFrom(2, int64(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Get(); err != nil {
		t.Fatal(err)
	}
	v, _ = h.ReadFrom(1)
	if v.(int64) != 9 {
		t.Fatalf("read after write %v", v)
	}
}

func TestEchoReadFasterThanHomeRead(t *testing.T) {
	const lat = 500 * time.Microsecond
	rt := newMachine(t, 4, lat)
	ev, _ := NewVar(rt, int64(1), allMembers(4), 2)
	hv, _ := NewHomeVar(rt, 0, int64(1))
	const reads = 20
	start := time.Now()
	for i := 0; i < reads; i++ {
		if _, _, err := ev.ReadAt(3); err != nil {
			t.Fatal(err)
		}
	}
	echoTime := time.Since(start)
	start = time.Now()
	for i := 0; i < reads; i++ {
		if _, err := hv.ReadFrom(3); err != nil {
			t.Fatal(err)
		}
	}
	homeTime := time.Since(start)
	if echoTime*10 > homeTime {
		t.Fatalf("echo reads %v not ≫ faster than home reads %v", echoTime, homeTime)
	}
}
