// Package echo implements the ParalleX "echo" copy semantics: a writable
// variable shared by many execution points during the same temporal
// interval is materialized as a tree of equivalent copies, all operated on
// as if a single value, without global cache coherence. A write is a
// split-phase operation — the new value propagates down the copy tree and
// an acknowledgement wave resolves a future; the writing thread may keep
// computing speculatively but must not commit side effects until that
// future resolves (location consistency, Gao & Sarkar).
package echo

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// Actions used by the echo protocol.
const (
	// ActionUpdate applies a (generation, value) pair to a copy cell and
	// cascades it to the cell's children in the copy tree.
	ActionUpdate = "px.echo.update"
	// ActionRead returns a home variable's value (baseline protocol).
	ActionRead = "px.echo.read"
	// ActionWrite replaces a home variable's value (baseline protocol).
	ActionWrite = "px.echo.write"
)

// cell is one copy of an echoed variable, resident at one locality.
type cell struct {
	v   *Var
	idx int

	mu  sync.Mutex
	val any
	gen uint64
}

// Var is an echoed variable: one copy cell per member locality, arranged
// in a fanout-ary tree rooted at index 0.
type Var struct {
	rt      *core.Runtime
	fanout  int
	members []int
	cells   []agas.GID
	loc2idx map[int]int

	writeMu sync.Mutex
	gen     atomic.Uint64
}

// RegisterActions installs the echo actions on rt; call once per runtime.
func RegisterActions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionUpdate, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		c, ok := target.(*cell)
		if !ok {
			return nil, fmt.Errorf("echo: %s on %T", ActionUpdate, target)
		}
		gen := args.Uint64()
		raw := args.Bytes()
		gateGID := args.GID()
		if err := args.Err(); err != nil {
			return nil, err
		}
		val, err := parcel.DecodeAny(raw)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		if gen > c.gen {
			c.gen = gen
			c.val = val
		}
		c.mu.Unlock()
		// Cascade to children, then acknowledge this cell.
		v := c.v
		for k := 1; k <= v.fanout; k++ {
			child := c.idx*v.fanout + k
			if child >= len(v.cells) {
				break
			}
			childArgs := parcel.NewArgs().Uint64(gen).Bytes(raw).GID(gateGID).Encode()
			ctx.Send(parcel.New(v.cells[child], ActionUpdate, childArgs))
		}
		ctx.Send(parcel.New(gateGID, core.ActionLCOSignal, nil))
		return nil, nil
	})
	rt.MustRegisterAction(ActionRead, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		h, ok := target.(*homeCell)
		if !ok {
			return nil, fmt.Errorf("echo: %s on %T", ActionRead, target)
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.val, nil
	})
	rt.MustRegisterAction(ActionWrite, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		h, ok := target.(*homeCell)
		if !ok {
			return nil, fmt.Errorf("echo: %s on %T", ActionWrite, target)
		}
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		val, err := parcel.DecodeAny(raw)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		h.val = val
		h.mu.Unlock()
		return nil, nil
	})
}

// NewVar creates an echoed variable with copies at the given member
// localities (tree order; members[0] is the root) and the given tree
// fanout. The initial value must be parcel-encodable.
func NewVar(rt *core.Runtime, init any, members []int, fanout int) (*Var, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("echo: variable needs at least one member")
	}
	if fanout < 1 {
		return nil, fmt.Errorf("echo: fanout %d < 1", fanout)
	}
	if _, err := parcel.EncodeAny(init); err != nil {
		return nil, fmt.Errorf("echo: initial value: %w", err)
	}
	v := &Var{rt: rt, fanout: fanout, members: append([]int(nil), members...),
		loc2idx: make(map[int]int)}
	for i, loc := range v.members {
		if _, dup := v.loc2idx[loc]; dup {
			return nil, fmt.Errorf("echo: duplicate member locality %d", loc)
		}
		v.loc2idx[loc] = i
		c := &cell{v: v, idx: i, val: init}
		v.cells = append(v.cells, rt.NewObjectAt(loc, agas.KindData, c))
	}
	return v, nil
}

// Members returns the member localities.
func (v *Var) Members() []int { return append([]int(nil), v.members...) }

// Depth reports the copy-tree depth.
func (v *Var) Depth() int {
	d, span := 0, 1
	for covered := 0; covered < len(v.cells); d++ {
		covered += span
		span *= v.fanout
	}
	return d
}

// ReadAt reads the local copy at the given member locality — a pure local
// memory access, which is the point of the echo construct. It returns the
// value and the generation it belongs to. Reading from a non-member
// locality is an error.
func (v *Var) ReadAt(loc int) (any, uint64, error) {
	idx, ok := v.loc2idx[loc]
	if !ok {
		return nil, 0, fmt.Errorf("echo: locality %d holds no copy", loc)
	}
	obj, ok := v.rt.LocalObject(loc, v.cells[idx])
	if !ok {
		return nil, 0, fmt.Errorf("echo: copy cell missing at locality %d", loc)
	}
	c := obj.(*cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val, c.gen, nil
}

// Write starts a split-phase write from the given locality: the new value
// propagates down the copy tree, and the returned future resolves (with
// the write's generation) once every copy has acknowledged. The caller may
// continue speculatively but must not commit side effects that depend on
// the write being visible until the future resolves.
func (v *Var) Write(from int, val any) (*lco.Future, error) {
	raw, err := parcel.EncodeAny(val)
	if err != nil {
		return nil, fmt.Errorf("echo: write value: %w", err)
	}
	v.writeMu.Lock()
	gen := v.gen.Add(1)
	v.writeMu.Unlock()
	gateGID, gate := v.rt.NewAndGateAt(from, len(v.cells))
	fut := lco.NewFuture()
	gate.OnFire(func() {
		v.rt.FreeObject(gateGID)
		fut.Set(gen)
	})
	args := parcel.NewArgs().Uint64(gen).Bytes(raw).GID(gateGID).Encode()
	v.rt.SendFrom(from, parcel.New(v.cells[0], ActionUpdate, args))
	return fut, nil
}

// homeCell is the no-copy baseline: the value lives at one home locality
// and every read pays a round trip.
type homeCell struct {
	mu  sync.Mutex
	val any
}

// HomeVar is the comparison protocol for experiment E8: a single home copy,
// remote reads via round-trip parcels.
type HomeVar struct {
	rt  *core.Runtime
	gid agas.GID
}

// NewHomeVar creates a home-based variable at the given locality.
func NewHomeVar(rt *core.Runtime, home int, init any) (*HomeVar, error) {
	if _, err := parcel.EncodeAny(init); err != nil {
		return nil, fmt.Errorf("echo: initial value: %w", err)
	}
	h := &homeCell{val: init}
	return &HomeVar{rt: rt, gid: rt.NewObjectAt(home, agas.KindData, h)}, nil
}

// ReadFrom reads the value from the given locality, paying the round trip.
func (h *HomeVar) ReadFrom(loc int) (any, error) {
	fut := h.rt.CallFrom(loc, h.gid, ActionRead, nil)
	v, err := fut.Get()
	return v, err
}

// WriteFrom replaces the value from the given locality; the returned future
// resolves when the home copy is updated.
func (h *HomeVar) WriteFrom(loc int, val any) (*lco.Future, error) {
	raw, err := parcel.EncodeAny(val)
	if err != nil {
		return nil, err
	}
	args := parcel.NewArgs().Bytes(raw).Encode()
	return h.rt.CallFrom(loc, h.gid, ActionWrite, args), nil
}
