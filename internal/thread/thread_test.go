package thread

import (
	"sync"
	"testing"
)

func TestLifecycle(t *testing.T) {
	r := NewRegistry()
	th := r.New(3)
	if th.Home() != 3 {
		t.Fatalf("home = %d", th.Home())
	}
	if th.State() != Pending {
		t.Fatalf("state = %v", th.State())
	}
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	if err := th.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := th.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := th.Terminate(); err != nil {
		t.Fatal(err)
	}
	if th.State() != Terminated {
		t.Fatalf("final state = %v", th.State())
	}
}

func TestIllegalTransitions(t *testing.T) {
	r := NewRegistry()
	th := r.New(0)
	if err := th.Suspend(); err == nil {
		t.Fatal("suspend of pending thread allowed")
	}
	if err := th.Terminate(); err == nil {
		t.Fatal("terminate of pending thread allowed")
	}
	th.Start()
	if err := th.Start(); err == nil {
		t.Fatal("double start allowed")
	}
	if err := th.Resume(); err == nil {
		t.Fatal("resume of running thread allowed")
	}
	th.Terminate()
	if err := th.Suspend(); err == nil {
		t.Fatal("suspend after terminate allowed")
	}
}

func TestRegistryCounts(t *testing.T) {
	r := NewRegistry()
	a, b := r.New(0), r.New(1)
	a.Start()
	b.Start()
	if r.Live() != 2 || r.Peak() != 2 {
		t.Fatalf("live=%d peak=%d", r.Live(), r.Peak())
	}
	a.Suspend()
	if r.Suspensions() != 1 {
		t.Fatalf("suspensions = %d", r.Suspensions())
	}
	a.Resume()
	a.Terminate()
	if r.Live() != 1 || r.Terminated() != 1 {
		t.Fatalf("live=%d terminated=%d", r.Live(), r.Terminated())
	}
	b.Terminate()
	if r.Live() != 0 || r.Peak() != 2 || r.Spawned() != 2 {
		t.Fatalf("final live=%d peak=%d spawned=%d", r.Live(), r.Peak(), r.Spawned())
	}
}

func TestUniqueIDsConcurrent(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				th := r.New(0)
				mu.Lock()
				if seen[th.ID()] {
					t.Errorf("duplicate thread id %d", th.ID())
					mu.Unlock()
					return
				}
				seen[th.ID()] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if r.Spawned() != 4000 {
		t.Fatalf("spawned = %d", r.Spawned())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Pending: "pending", Running: "running", Suspended: "suspended", Terminated: "terminated",
	} {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state renders empty")
	}
}
