// Package thread tracks ParalleX thread identities and life cycles. In this
// runtime a thread's execution vehicle is a goroutine, but the model-level
// facts — threads are ephemeral, serve a single locality, may suspend into
// an LCO, or terminate into a parcel — are recorded here so tests and
// experiments can observe them.
package thread

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is a thread's life-cycle state.
type State int32

// Thread states. Legal transitions are Pending→Running,
// Running→Suspended→Running, and Running→Terminated.
const (
	Pending State = iota
	Running
	Suspended
	Terminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Thread is one ephemeral thread identity.
type Thread struct {
	id    uint64
	home  int
	state atomic.Int32
	reg   *Registry
}

// ID reports the thread's unique id.
func (t *Thread) ID() uint64 { return t.id }

// Home reports the locality the thread serves. A ParalleX thread never
// migrates; work moves by terminating into a parcel instead.
func (t *Thread) Home() int { return t.home }

// State reports the current life-cycle state.
func (t *Thread) State() State { return State(t.state.Load()) }

func (t *Thread) transition(from, to State) error {
	if t.state.CompareAndSwap(int32(from), int32(to)) {
		return nil
	}
	return fmt.Errorf("thread %d: illegal transition %v->%v (state %v)", t.id, from, to, t.State())
}

// Start moves Pending→Running.
func (t *Thread) Start() error {
	if err := t.transition(Pending, Running); err != nil {
		return err
	}
	t.reg.live.Add(1)
	t.reg.notePeak()
	return nil
}

// Suspend moves Running→Suspended; the thread's continuation now lives in
// an LCO (a depleted thread).
func (t *Thread) Suspend() error {
	if err := t.transition(Running, Suspended); err != nil {
		return err
	}
	t.reg.suspensions.Add(1)
	return nil
}

// Resume moves Suspended→Running.
func (t *Thread) Resume() error {
	return t.transition(Suspended, Running)
}

// Terminate moves Running→Terminated. Ephemerality: a terminated thread is
// gone; any follow-on work travels as a parcel.
func (t *Thread) Terminate() error {
	if err := t.transition(Running, Terminated); err != nil {
		return err
	}
	t.reg.live.Add(-1)
	t.reg.terminated.Add(1)
	return nil
}

// Registry mints thread identities and aggregates life-cycle statistics.
type Registry struct {
	counter     atomic.Uint64
	live        atomic.Int64
	peak        atomic.Int64
	suspensions atomic.Uint64
	terminated  atomic.Uint64

	// pool recycles Thread records: identities stay unique (every New
	// mints a fresh ID) but the allocation is reused, keeping thread spawn
	// off the per-parcel allocation budget.
	pool sync.Pool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// New mints a Pending thread homed at the given locality.
func (r *Registry) New(home int) *Thread {
	if t, ok := r.pool.Get().(*Thread); ok {
		t.id = r.counter.Add(1)
		t.home = home
		t.state.Store(int32(Pending))
		return t
	}
	return &Thread{id: r.counter.Add(1), home: home, reg: r}
}

// Recycle returns a Terminated thread's record for reuse. The caller must
// hold the only reference; the identity (ID) is retired with it and the
// next New mints a fresh one. Recycling a non-terminated thread is a
// state-machine violation and is ignored, keeping the statistics honest.
func (r *Registry) Recycle(t *Thread) {
	if t == nil || t.State() != Terminated {
		return
	}
	r.pool.Put(t)
}

func (r *Registry) notePeak() {
	for {
		live := r.live.Load()
		peak := r.peak.Load()
		if live <= peak || r.peak.CompareAndSwap(peak, live) {
			return
		}
	}
}

// Spawned reports total threads minted.
func (r *Registry) Spawned() uint64 { return r.counter.Load() }

// Live reports currently running or suspended threads.
func (r *Registry) Live() int64 { return r.live.Load() }

// Peak reports the maximum simultaneous live threads observed.
func (r *Registry) Peak() int64 { return r.peak.Load() }

// Suspensions reports total suspension events.
func (r *Registry) Suspensions() uint64 { return r.suspensions.Load() }

// Terminated reports completed threads.
func (r *Registry) Terminated() uint64 { return r.terminated.Load() }
