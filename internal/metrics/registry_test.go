package metrics

import (
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("px.a")
	c.Add(3)
	if r.Counter("px.a") != c {
		t.Fatal("second Counter returned a different instance")
	}
	g := r.Gauge("px.g")
	g.Set(-5)
	h := r.Histogram("px.h", 16)
	h.Observe(1)
	h.Observe(3)
	r.RegisterFunc("px.f", func() int64 { return 11 })

	snap := r.Snapshot()
	if snap["px.a"] != 3 || snap["px.g"] != -5 || snap["px.f"] != 11 {
		t.Fatalf("snapshot values: %v", snap)
	}
	if snap["px.h.count"] != 2 || snap["px.h.mean"] != 2 || snap["px.h.min"] != 1 || snap["px.h.max"] != 3 {
		t.Fatalf("histogram expansion: %v", snap)
	}
	if _, ok := snap["px.h"]; ok {
		t.Fatal("histogram exported under its bare name")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("px.x")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind reuse did not panic")
		}
	}()
	r.Gauge("px.x")
}

func TestRegisterFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("px.f", func() int64 { return 1 })
	r.RegisterFunc("px.f", func() int64 { return 2 })
	if got := r.Snapshot()["px.f"]; got != 2 {
		t.Fatalf("replaced func gauge reads %v, want 2", got)
	}
}

// TestHistogramReservoirTracksLateSamples: after the reservoir fills,
// later samples must still be able to move the quantile estimate — the
// point of reservoir sampling over keep-first-N.
func TestHistogramReservoirTracksLateSamples(t *testing.T) {
	h := NewHistogram(64)
	// Fill the reservoir with a low regime, then shift the stream to a
	// high regime for 100x as many samples. Keep-first-N would freeze the
	// median at 1; algorithm R converges toward the stream's composition.
	for i := 0; i < 64; i++ {
		h.Observe(1)
	}
	for i := 0; i < 6400; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("median %v after regime shift, want 100 (late samples ignored?)", got)
	}
	if h.Count() != 6464 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("count/min/max: %d %v %v", h.Count(), h.Min(), h.Max())
	}
	// The PRNG is per-histogram and fixed-seed, so the test is deterministic.
	h2 := NewHistogram(64)
	for i := 0; i < 64; i++ {
		h2.Observe(1)
	}
	for i := 0; i < 6400; i++ {
		h2.Observe(100)
	}
	if h.Quantile(0.9) != h2.Quantile(0.9) {
		t.Fatal("identical streams produced different reservoirs")
	}
}
