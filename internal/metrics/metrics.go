// Package metrics provides the instrumentation used across the runtime to
// quantify the four sources of performance degradation the paper targets:
// Starvation, Latency, Overhead, and Waiting for contention (SLOW).
// Counters and histograms are safe for concurrent use and cheap enough to
// leave enabled inside benchmark inner loops.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrent counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrent instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates samples, retaining a uniform reservoir of at most
// cap exact samples for quantile estimation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	cap     int
	rng     uint64
}

// NewHistogram returns a histogram retaining at most maxSamples exact
// samples. Retention is reservoir sampling (algorithm R): after the
// reservoir fills, sample n replaces a random slot with probability
// cap/n, so the retained set stays a uniform sample of the whole stream
// and quantiles track steady state instead of freezing on the first
// maxSamples observations.
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 4096
	}
	return &Histogram{
		min: math.Inf(1), max: math.Inf(-1), cap: maxSamples,
		rng: 0x9e3779b97f4a7c15,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
	} else {
		// xorshift64*: cheap, and private to this histogram so reservoir
		// maintenance never contends on a global PRNG lock.
		h.rng ^= h.rng >> 12
		h.rng ^= h.rng << 25
		h.rng ^= h.rng >> 27
		if j := (h.rng * 0x2545f4914f6cdd1d) % uint64(h.count); j < uint64(h.cap) {
			h.samples[j] = v
		}
	}
	h.mu.Unlock()
}

// ObserveDuration records a time.Duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of all observed samples (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0<=q<=1) estimated from the retained
// reservoir, anchored at the exact tracked stream extremes. Interior
// quantiles use midpoint (Hazen) positions — sorted sample i estimates
// the (i+0.5)/n quantile — and tail quantiles beyond the outermost
// midpoints interpolate toward the exact min/max rather than clamping to
// the reservoir endpoints: once eviction starts, the reservoir's own
// first/last samples need not be the true extremes, and a clamped p999
// of a small reservoir would silently under-report the tail.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	n := float64(len(s))
	idx := q*n - 0.5
	switch {
	case idx <= 0:
		// Between the exact min (q=0) and the first midpoint (q=0.5/n).
		return h.min + (q*n/0.5)*(s[0]-h.min)
	case idx >= n-1:
		// Between the last midpoint (q=(n-0.5)/n) and the exact max (q=1).
		lastQ := (n - 0.5) / n
		last := s[len(s)-1]
		return last + (q-lastQ)/(1-lastQ)*(h.max-last)
	default:
		lo := int(math.Floor(idx))
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
}

// SLOW aggregates the paper's four degradation sources for one run.
// All durations are in nanoseconds of wall-clock (or virtual ticks when
// produced by the DES models).
type SLOW struct {
	Starvation *Histogram // idle interval lengths per execution site
	Latency    *Histogram // remote access round-trip times
	Overhead   *Histogram // runtime critical-path management cost per task
	Waiting    *Histogram // time blocked on contended shared resources

	TasksExecuted  Counter
	ParcelsSent    Counter
	ParcelsLocal   Counter // parcels short-circuited to the local queue
	ThreadsSpawned Counter
	Suspensions    Counter
	Migrations     Counter
	Parked         Counter // parcels held by a migration fence until the move committed
}

// NewSLOW returns a SLOW record with all histograms allocated.
func NewSLOW() *SLOW {
	return &SLOW{
		Starvation: NewHistogram(0),
		Latency:    NewHistogram(0),
		Overhead:   NewHistogram(0),
		Waiting:    NewHistogram(0),
	}
}

// String renders a compact one-line summary.
func (s *SLOW) String() string {
	return fmt.Sprintf(
		"tasks=%d parcels=%d(+%d local) threads=%d susp=%d mig=%d(park %d) | starve(mean)=%.0f lat(mean)=%.0f ovh(mean)=%.0f wait(mean)=%.0f",
		s.TasksExecuted.Value(), s.ParcelsSent.Value(), s.ParcelsLocal.Value(),
		s.ThreadsSpawned.Value(), s.Suspensions.Value(),
		s.Migrations.Value(), s.Parked.Value(),
		s.Starvation.Mean(), s.Latency.Mean(), s.Overhead.Mean(), s.Waiting.Mean())
}

// IdleTracker measures starvation on one execution site: the fraction of
// time the site had no work. It is driven by the site's scheduler loop.
type IdleTracker struct {
	mu        sync.Mutex
	idleSince time.Time
	idleTotal time.Duration
	started   time.Time
	idle      bool
}

// NewIdleTracker starts tracking from now, in the busy state.
func NewIdleTracker() *IdleTracker {
	return &IdleTracker{started: time.Now()}
}

// MarkIdle records the transition to having no work.
func (t *IdleTracker) MarkIdle() {
	t.mu.Lock()
	if !t.idle {
		t.idle = true
		t.idleSince = time.Now()
	}
	t.mu.Unlock()
}

// MarkBusy records the transition back to having work.
func (t *IdleTracker) MarkBusy() {
	t.mu.Lock()
	if t.idle {
		t.idle = false
		t.idleTotal += time.Since(t.idleSince)
	}
	t.mu.Unlock()
}

// IdleFraction reports the fraction of elapsed time spent idle, in [0,1].
func (t *IdleTracker) IdleFraction() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	idle := t.idleTotal
	if t.idle {
		idle += time.Since(t.idleSince)
	}
	elapsed := time.Since(t.started)
	if elapsed <= 0 {
		return 0
	}
	f := float64(idle) / float64(elapsed)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
