package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(7)
	if c.Value() != 12 {
		t.Fatalf("counter = %d, want 12", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %f/%f", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0, 1, 0}, {1, 100, 0}, {0.5, 50.5, 1}, {0.9, 90.1, 1}, {0.99, 99.01, 1},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %f, want %f±%f", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramSampleCap(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	// Quantiles estimated from the first 10 samples only, but must not panic
	// and must stay within the observed range.
	q := h.Quantile(0.5)
	if q < 0 || q > 99 {
		t.Fatalf("median %f out of range", q)
	}
}

// Midpoint-position quantiles over a small exact sample set: with n=4
// samples {1,2,3,4}, sample i anchors the (i+0.5)/4 quantile, interior
// quantiles interpolate between midpoints, and q=0/q=1 report the exact
// extremes.
func TestHistogramQuantileMidpoints(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 4; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.125, 1}, {0.25, 1.5}, {0.375, 2}, {0.5, 2.5},
		{0.625, 3}, {0.75, 3.5}, {0.875, 4}, {1, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q%g = %f, want %f", c.q, got, c.want)
		}
	}
}

// Tail quantiles must anchor to the exact tracked stream extremes, not to
// whatever the reservoir happened to retain: once eviction starts the
// reservoir's own first/last samples can sit well inside the true range,
// and the old clamp made p999 of a small reservoir under-report the tail.
func TestHistogramTailQuantilesAnchorToTrackedExtremes(t *testing.T) {
	h := NewHistogram(8)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(1); got != 10000 {
		t.Fatalf("q1 = %f, want the exact tracked max 10000", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %f, want the exact tracked min 1", got)
	}
	// p999 sits past the last reservoir midpoint (7.5/8 = 0.9375), so it
	// interpolates toward the true max: >= 0.984 of the way there no
	// matter which 8 samples survived eviction.
	if got := h.Quantile(0.999); got < 9840 || got > 10000 {
		t.Fatalf("p999 = %f, want within [9840, 10000]", got)
	}
	if p99, p999 := h.Quantile(0.99), h.Quantile(0.999); p999 < p99 {
		t.Fatalf("p999 %f < p99 %f", p999, p99)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0)
	h.ObserveDuration(time.Microsecond)
	if h.Mean() != 1000 {
		t.Fatalf("mean = %f ns, want 1000", h.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", h.Count())
	}
}

// Property: mean lies within [min, max] for any non-empty sample set.
func TestPropertyHistogramMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Bound magnitudes so the sum cannot overflow: the histogram
			// holds durations and counts, not astronomical floats.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e150 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h := NewHistogram(0)
		for _, v := range clean {
			h.Observe(v)
		}
		// Allow tiny floating error in the mean accumulation.
		span := math.Max(1, math.Abs(h.Max())+math.Abs(h.Min()))
		eps := 1e-9 * span * float64(len(clean))
		return h.Mean() >= h.Min()-eps && h.Mean() <= h.Max()+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone non-decreasing in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h := NewHistogram(0)
		for _, v := range clean {
			h.Observe(v)
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		return h.Quantile(lo) <= h.Quantile(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleTracker(t *testing.T) {
	tr := NewIdleTracker()
	tr.MarkIdle()
	time.Sleep(20 * time.Millisecond)
	tr.MarkBusy()
	time.Sleep(20 * time.Millisecond)
	f := tr.IdleFraction()
	if f < 0.2 || f > 0.8 {
		t.Fatalf("idle fraction %f, want ~0.5", f)
	}
}

func TestIdleTrackerDoubleMarks(t *testing.T) {
	tr := NewIdleTracker()
	tr.MarkBusy() // already busy: no-op
	tr.MarkIdle()
	tr.MarkIdle() // already idle: no-op
	tr.MarkBusy()
	if f := tr.IdleFraction(); f < 0 || f > 1 {
		t.Fatalf("idle fraction %f out of range", f)
	}
}

func TestSLOWString(t *testing.T) {
	s := NewSLOW()
	s.TasksExecuted.Add(3)
	s.Latency.Observe(100)
	out := s.String()
	if out == "" {
		t.Fatal("empty SLOW string")
	}
}
