package metrics

import (
	"fmt"
	"sync"
)

// Registry is a named-metric directory: counters, gauges, histograms, and
// read-only func gauges under a flat, dot-separated naming scheme (the
// runtime uses a "px." prefix throughout). Registration is get-or-create,
// so independent subsystems may ask for the same counter; a name may only
// ever hold one metric kind. Snapshot flattens everything to name → value
// for JSON export and test assertions.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// taken panics when name is already registered as a different metric kind;
// callers hold r.mu and have already excluded their own map.
func (r *Registry) taken(name, kind string) {
	for other, m := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.hists[name] != nil,
		"func":      r.funcs[name] != nil,
	} {
		if m && other != kind {
			panic(fmt.Sprintf("metrics: %q already registered as a %s", name, other))
		}
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.taken(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.taken(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given reservoir size if new (0 means the NewHistogram default).
func (r *Registry) Histogram(name string, maxSamples int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.taken(name, "histogram")
	h := NewHistogram(maxSamples)
	r.hists[name] = h
	return h
}

// RegisterFunc installs a read-only gauge computed at snapshot time — the
// bridge for counters that already live elsewhere (locality atomics, AGAS
// statistics, pool counters). Re-registering a name replaces the function.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if fn == nil {
		panic("metrics: nil func gauge for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.taken(name, "func")
	r.funcs[name] = fn
}

// Snapshot flattens every registered metric to name → value. Histograms
// expand to <name>.count/.mean/.min/.max/.p50/.p99/.p999. Func gauges are
// evaluated inline, so a snapshot is a consistent-enough view for
// operator polling (individual metrics are atomic; the set is not).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.funcs)+7*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, fn := range r.funcs {
		out[name] = float64(fn())
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".mean"] = h.Mean()
		out[name+".min"] = h.Min()
		out[name+".max"] = h.Max()
		out[name+".p50"] = h.Quantile(0.5)
		out[name+".p99"] = h.Quantile(0.99)
		out[name+".p999"] = h.Quantile(0.999)
	}
	return out
}
