package network

import "fmt"

// FatTree models a k-ary fat-tree (folded Clos): endpoints are leaves and
// a message climbs to the lowest common ancestor switch and back down, so
// the hop count is twice the ancestor level. Fat trees are the common
// counterpoint to direct networks like the torus and to the Data Vortex;
// the A1 ablation uses it as an additional topology.
type FatTree struct {
	base
	arity int
}

// NewFatTree builds a fat tree with the given switch arity (>= 2).
func NewFatTree(nodes, arity int, p Params) *FatTree {
	mustNodes(nodes)
	if arity < 2 {
		panic(fmt.Sprintf("network: fat-tree arity %d < 2", arity))
	}
	t := &FatTree{arity: arity}
	t.base = base{name: "fattree", nodes: nodes, p: p, hops: t.treeHops}
	return t
}

// Arity reports the switch arity.
func (t *FatTree) Arity() int { return t.arity }

// Levels reports the tree height needed to span all endpoints.
func (t *FatTree) Levels() int {
	l, span := 0, 1
	for span < t.nodes {
		span *= t.arity
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

func (t *FatTree) treeHops(src, dst int) int {
	level, span := 0, 1
	for {
		level++
		span *= t.arity
		if src/span == dst/span {
			return 2 * level
		}
	}
}
