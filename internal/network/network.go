// Package network provides interconnect latency models for the simulated
// machine. The paper's Gilgamesh II design point assumes the Data Vortex
// hierarchical deflection network; experiments compare it against ideal,
// crossbar, and 2-D torus models (ablation A1 in DESIGN.md).
//
// A model maps (source locality, destination locality, message size) to a
// deterministic latency. The runtime uses the latency in wall-clock mode by
// delaying parcel delivery; the DES architecture model uses the same hop
// counts scaled to cycles.
package network

import (
	"fmt"
	"math"
	"time"
)

// Params holds the physical constants of a network model.
type Params struct {
	// HopLatency is the per-hop switch traversal time.
	HopLatency time.Duration
	// InjectionOverhead is the fixed cost to enter and exit the network.
	InjectionOverhead time.Duration
	// Bandwidth is the per-link payload bandwidth in bytes/second.
	// Zero means infinite bandwidth (no serialization term).
	Bandwidth float64
}

// DefaultParams are loosely calibrated to a 2007-era MPP interconnect:
// 50ns per hop, 500ns injection, 2 GB/s links. Absolute values do not
// matter for the experiments; ratios between models do.
func DefaultParams() Params {
	return Params{
		HopLatency:        50 * time.Nanosecond,
		InjectionOverhead: 500 * time.Nanosecond,
		Bandwidth:         2e9,
	}
}

// Model computes message latency between localities.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Nodes reports the number of endpoints the model was built for.
	Nodes() int
	// Hops reports the switch hops between two endpoints. Hops(i,i) is 0.
	Hops(src, dst int) int
	// Latency reports the end-to-end delivery time for a message of the
	// given payload size. Latency(i,i,·) is 0: local delivery bypasses the
	// network entirely (the paper's "locality" boundary).
	Latency(src, dst int, bytes int) time.Duration
}

// base implements the shared latency arithmetic over a Hops function.
type base struct {
	name  string
	nodes int
	p     Params
	hops  func(src, dst int) int
}

func (b *base) Name() string { return b.name }
func (b *base) Nodes() int   { return b.nodes }
func (b *base) Hops(src, dst int) int {
	b.check(src, dst)
	if src == dst {
		return 0
	}
	return b.hops(src, dst)
}

func (b *base) Latency(src, dst int, bytes int) time.Duration {
	b.check(src, dst)
	if src == dst {
		return 0
	}
	lat := b.p.InjectionOverhead + time.Duration(b.hops(src, dst))*b.p.HopLatency
	if b.p.Bandwidth > 0 && bytes > 0 {
		lat += time.Duration(float64(bytes) / b.p.Bandwidth * float64(time.Second))
	}
	return lat
}

func (b *base) check(src, dst int) {
	if src < 0 || src >= b.nodes || dst < 0 || dst >= b.nodes {
		panic(fmt.Sprintf("network: endpoint out of range: src=%d dst=%d nodes=%d", src, dst, b.nodes))
	}
}

// NewIdeal returns a zero-latency network: remote delivery costs nothing.
// It isolates algorithmic effects from communication effects.
func NewIdeal(nodes int) Model {
	mustNodes(nodes)
	return &base{name: "ideal", nodes: nodes, hops: func(int, int) int { return 0 },
		p: Params{}}
}

// NewCrossbar returns a full crossbar: every remote pair is exactly two
// hops (in, out) regardless of placement.
func NewCrossbar(nodes int, p Params) Model {
	mustNodes(nodes)
	return &base{name: "crossbar", nodes: nodes, p: p,
		hops: func(src, dst int) int { return 2 }}
}

// Torus2D is a w×h wraparound mesh; locality i sits at (i%w, i/w).
type Torus2D struct {
	base
	w, h int
}

// NewTorus2D returns a 2-D torus over nodes endpoints arranged in the most
// square factorization of nodes.
func NewTorus2D(nodes int, p Params) *Torus2D {
	mustNodes(nodes)
	w, h := squarest(nodes)
	t := &Torus2D{w: w, h: h}
	t.base = base{name: "torus2d", nodes: nodes, p: p, hops: t.torusHops}
	return t
}

// Dims reports the torus dimensions.
func (t *Torus2D) Dims() (w, h int) { return t.w, t.h }

func (t *Torus2D) torusHops(src, dst int) int {
	sx, sy := src%t.w, src/t.w
	dx, dy := dst%t.w, dst/t.w
	return ringDist(sx, dx, t.w) + ringDist(sy, dy, t.h)
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// squarest returns the factorization w*h = n with w >= h and w-h minimal.
func squarest(n int) (w, h int) {
	h = int(math.Sqrt(float64(n)))
	for h > 1 && n%h != 0 {
		h--
	}
	return n / h, h
}

// DataVortex models the hierarchical multi-level deflection network of the
// Gilgamesh II design point. Packets enter at the top cylinder and descend
// log2(angles) levels; contention causes deflections that add whole orbits.
// We model the expected deflection count deterministically from a load
// factor, keeping runs reproducible:
//
//	hops = levels + ceil(levels * deflection/(1-deflection))
//
// which captures the qualitative behaviour reported for the Data Vortex:
// logarithmic diameter with graceful degradation under load.
type DataVortex struct {
	base
	levels     int
	deflection float64
}

// NewDataVortex builds a vortex over nodes endpoints with the given steady
// state deflection probability in [0, 0.9].
func NewDataVortex(nodes int, p Params, deflection float64) *DataVortex {
	mustNodes(nodes)
	if deflection < 0 || deflection > 0.9 {
		panic(fmt.Sprintf("network: deflection %f out of [0,0.9]", deflection))
	}
	levels := bitsFor(nodes)
	v := &DataVortex{levels: levels, deflection: deflection}
	v.base = base{name: "datavortex", nodes: nodes, p: p, hops: v.vortexHops}
	return v
}

// Levels reports the number of cylinder levels.
func (v *DataVortex) Levels() int { return v.levels }

func (v *DataVortex) vortexHops(src, dst int) int {
	extra := 0
	if v.deflection > 0 {
		extra = int(math.Ceil(float64(v.levels) * v.deflection / (1 - v.deflection)))
	}
	return v.levels + extra
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

func mustNodes(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("network: node count %d must be positive", n))
	}
}
