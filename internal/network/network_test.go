package network

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIdealIsFree(t *testing.T) {
	m := NewIdeal(8)
	if m.Latency(0, 7, 1<<20) != 0 {
		t.Fatal("ideal network charged latency")
	}
	if m.Hops(0, 7) != 0 {
		t.Fatal("ideal network has hops")
	}
}

func TestLocalDeliveryIsFree(t *testing.T) {
	for _, m := range allModels(16) {
		if m.Latency(5, 5, 4096) != 0 {
			t.Errorf("%s: local latency nonzero", m.Name())
		}
		if m.Hops(5, 5) != 0 {
			t.Errorf("%s: local hops nonzero", m.Name())
		}
	}
}

func TestCrossbarUniform(t *testing.T) {
	m := NewCrossbar(16, DefaultParams())
	ref := m.Latency(0, 1, 64)
	for d := 2; d < 16; d++ {
		if m.Latency(0, d, 64) != ref {
			t.Fatalf("crossbar latency not uniform: dst=%d", d)
		}
	}
	if m.Hops(3, 9) != 2 {
		t.Fatalf("crossbar hops = %d, want 2", m.Hops(3, 9))
	}
}

func TestTorusDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{16, 4, 4}, {12, 4, 3}, {7, 7, 1}, {64, 8, 8}, {20, 5, 4},
	}
	for _, c := range cases {
		tor := NewTorus2D(c.n, DefaultParams())
		w, h := tor.Dims()
		if w != c.w || h != c.h {
			t.Errorf("n=%d dims=(%d,%d), want (%d,%d)", c.n, w, h, c.w, c.h)
		}
	}
}

func TestTorusNeighborOneHop(t *testing.T) {
	tor := NewTorus2D(16, DefaultParams()) // 4x4
	if got := tor.Hops(0, 1); got != 1 {
		t.Fatalf("adjacent hops = %d", got)
	}
	if got := tor.Hops(0, 4); got != 1 {
		t.Fatalf("vertical neighbor hops = %d", got)
	}
	// Wraparound: 0 and 3 on a width-4 ring are 1 apart.
	if got := tor.Hops(0, 3); got != 1 {
		t.Fatalf("wraparound hops = %d", got)
	}
	// Opposite corner of 4x4 torus: 2+2.
	if got := tor.Hops(0, 10); got != 4 {
		t.Fatalf("diagonal hops = %d, want 4", got)
	}
}

func TestTorusSymmetry(t *testing.T) {
	tor := NewTorus2D(24, DefaultParams())
	for s := 0; s < 24; s++ {
		for d := 0; d < 24; d++ {
			if tor.Hops(s, d) != tor.Hops(d, s) {
				t.Fatalf("asymmetric hops %d<->%d", s, d)
			}
		}
	}
}

// Property: torus hop distance satisfies the triangle inequality and is
// bounded by w/2 + h/2.
func TestPropertyTorusMetric(t *testing.T) {
	tor := NewTorus2D(36, DefaultParams())
	w, h := tor.Dims()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%36, int(b)%36, int(c)%36
		dxy, dyz, dxz := tor.Hops(x, y), tor.Hops(y, z), tor.Hops(x, z)
		if dxz > dxy+dyz {
			return false
		}
		return dxy <= w/2+h/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDataVortexLevels(t *testing.T) {
	cases := []struct{ n, levels int }{
		{2, 1}, {4, 2}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		v := NewDataVortex(c.n, DefaultParams(), 0)
		if v.Levels() != c.levels {
			t.Errorf("n=%d levels=%d, want %d", c.n, v.Levels(), c.levels)
		}
	}
}

func TestDataVortexDeflectionAddsHops(t *testing.T) {
	quiet := NewDataVortex(64, DefaultParams(), 0)
	loaded := NewDataVortex(64, DefaultParams(), 0.5)
	if quiet.Hops(0, 1) != 6 {
		t.Fatalf("quiet vortex hops = %d, want 6", quiet.Hops(0, 1))
	}
	if loaded.Hops(0, 1) <= quiet.Hops(0, 1) {
		t.Fatal("deflection did not add hops")
	}
}

func TestDataVortexBadDeflectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deflection 0.95 did not panic")
		}
	}()
	NewDataVortex(8, DefaultParams(), 0.95)
}

func TestBandwidthTerm(t *testing.T) {
	p := Params{HopLatency: 0, InjectionOverhead: 0, Bandwidth: 1e9}
	m := NewCrossbar(4, p)
	// 1000 bytes at 1 GB/s = 1 microsecond.
	if got := m.Latency(0, 1, 1000); got != time.Microsecond {
		t.Fatalf("bandwidth term = %v, want 1µs", got)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	for _, m := range []Model{
		NewCrossbar(8, DefaultParams()),
		NewTorus2D(8, DefaultParams()),
		NewDataVortex(8, DefaultParams(), 0.2),
	} {
		small := m.Latency(0, 5, 64)
		big := m.Latency(0, 5, 1<<20)
		if big <= small {
			t.Errorf("%s: latency not monotone in size", m.Name())
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewCrossbar(4, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint did not panic")
		}
	}()
	m.Latency(0, 4, 1)
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero nodes did not panic")
		}
	}()
	NewIdeal(0)
}

// Property: the vortex diameter grows logarithmically — doubling nodes adds
// exactly one level.
func TestPropertyVortexLogDiameter(t *testing.T) {
	for n := 2; n <= 1<<16; n *= 2 {
		v := NewDataVortex(n, DefaultParams(), 0)
		v2 := NewDataVortex(2*n, DefaultParams(), 0)
		if v2.Levels() != v.Levels()+1 {
			t.Fatalf("levels(%d)=%d levels(%d)=%d", n, v.Levels(), 2*n, v2.Levels())
		}
	}
}

func allModels(n int) []Model {
	return []Model{
		NewIdeal(n),
		NewCrossbar(n, DefaultParams()),
		NewTorus2D(n, DefaultParams()),
		NewDataVortex(n, DefaultParams(), 0.1),
	}
}

func TestFatTreeHops(t *testing.T) {
	ft := NewFatTree(16, 4, DefaultParams())
	// Same quad: common ancestor at level 1 -> 2 hops.
	if got := ft.Hops(0, 3); got != 2 {
		t.Fatalf("same-quad hops = %d, want 2", got)
	}
	// Different quads: ancestor at level 2 -> 4 hops.
	if got := ft.Hops(0, 5); got != 4 {
		t.Fatalf("cross-quad hops = %d, want 4", got)
	}
	if ft.Hops(7, 7) != 0 {
		t.Fatal("self hops nonzero")
	}
	if ft.Arity() != 4 || ft.Levels() != 2 {
		t.Fatalf("arity=%d levels=%d", ft.Arity(), ft.Levels())
	}
}

func TestFatTreeSymmetricAndBounded(t *testing.T) {
	ft := NewFatTree(27, 3, DefaultParams())
	maxHops := 2 * ft.Levels()
	for s := 0; s < 27; s++ {
		for d := 0; d < 27; d++ {
			h := ft.Hops(s, d)
			if h != ft.Hops(d, s) {
				t.Fatalf("asymmetric %d<->%d", s, d)
			}
			if h > maxHops {
				t.Fatalf("hops %d exceed diameter %d", h, maxHops)
			}
		}
	}
}

func TestFatTreeBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity 1 did not panic")
		}
	}()
	NewFatTree(8, 1, DefaultParams())
}
