package lco

// Dedup tracks the trigger IDs already applied to an idempotent LCO, so a
// duplicated delivery (a retransmitted or fault-duplicated trigger) is
// recognized and ignored instead of double-counting. The distributed LCO
// protocol mints one ID per logical trigger; every physical copy of that
// trigger carries the same ID.
//
// The zero value is ready to use. Dedup is not safe for concurrent use on
// its own — the owning LCO's lock guards it, exactly like the counters it
// protects. ID 0 is reserved for unidentified triggers and is never
// recorded: callers using 0 opt out of deduplication.
type Dedup struct {
	seen map[uint64]struct{}
}

// Seen records id and reports whether it had been recorded before. ID 0
// always reports false and is not recorded.
func (d *Dedup) Seen(id uint64) bool {
	if id == 0 {
		return false
	}
	if _, ok := d.seen[id]; ok {
		return true
	}
	if d.seen == nil {
		d.seen = make(map[uint64]struct{})
	}
	d.seen[id] = struct{}{}
	return false
}

// Contains reports whether id has been recorded, without recording it —
// the check half of a check-then-Add sequence whose Add runs only after
// the guarded operation succeeds, so a failed application stays
// retryable by a redelivery of the same trigger.
func (d *Dedup) Contains(id uint64) bool {
	_, ok := d.seen[id]
	return ok
}

// Add records id without consulting it, for restoring a snapshot.
func (d *Dedup) Add(id uint64) {
	if id == 0 {
		return
	}
	if d.seen == nil {
		d.seen = make(map[uint64]struct{})
	}
	d.seen[id] = struct{}{}
}

// Len reports how many IDs are recorded.
func (d *Dedup) Len() int { return len(d.seen) }

// IDs returns the recorded IDs in unspecified order, for wire encoding
// when the owning LCO migrates.
func (d *Dedup) IDs() []uint64 {
	if len(d.seen) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(d.seen))
	for id := range d.seen {
		out = append(out, id)
	}
	return out
}
