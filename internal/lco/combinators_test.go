package lco

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestWhenAllCollectsInOrder(t *testing.T) {
	a, b, c := NewFuture(), NewFuture(), NewFuture()
	out := WhenAll(a, b, c)
	// Resolve out of order.
	c.Set(30)
	a.Set(10)
	if out.Resolved() {
		t.Fatal("resolved early")
	}
	b.Set(20)
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	vals := v.([]any)
	if vals[0].(int) != 10 || vals[1].(int) != 20 || vals[2].(int) != 30 {
		t.Fatalf("values = %v", vals)
	}
}

func TestWhenAllEmpty(t *testing.T) {
	v, err := WhenAll().Get()
	if err != nil || len(v.([]any)) != 0 {
		t.Fatalf("empty WhenAll = %v, %v", v, err)
	}
}

func TestWhenAllPropagatesFailure(t *testing.T) {
	a, b := NewFuture(), NewFuture()
	out := WhenAll(a, b)
	a.Set(1)
	b.Fail(errors.New("boom"))
	if _, err := out.Get(); err == nil {
		t.Fatal("failure swallowed")
	}
}

func TestWhenAnyFirstWins(t *testing.T) {
	a, b := NewFuture(), NewFuture()
	out := WhenAny(a, b)
	b.Set("fast")
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(AnyResult)
	if res.Index != 1 || res.Value.(string) != "fast" {
		t.Fatalf("any = %+v", res)
	}
	a.Set("slow") // late resolution is harmless
}

func TestWhenAnySkipsFailures(t *testing.T) {
	a, b := NewFuture(), NewFuture()
	out := WhenAny(a, b)
	a.Fail(errors.New("a broke"))
	b.Set(42)
	v, err := out.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.(AnyResult).Value.(int) != 42 {
		t.Fatalf("any = %v", v)
	}
}

func TestWhenAnyAllFail(t *testing.T) {
	a, b := NewFuture(), NewFuture()
	out := WhenAny(a, b)
	a.Fail(errors.New("a"))
	b.Fail(errors.New("b"))
	if _, err := out.Get(); err == nil {
		t.Fatal("all-fail not reported")
	}
}

func TestWhenAnyEmpty(t *testing.T) {
	if _, err := WhenAny().Get(); err == nil {
		t.Fatal("empty WhenAny resolved")
	}
}

func TestThenChains(t *testing.T) {
	f := NewFuture()
	out := Then(Then(f, func(v any) (any, error) {
		return v.(int) * 2, nil
	}), func(v any) (any, error) {
		return v.(int) + 1, nil
	})
	f.Set(20)
	v, err := out.Get()
	if err != nil || v.(int) != 41 {
		t.Fatalf("then chain = %v, %v", v, err)
	}
}

func TestThenPropagatesErrors(t *testing.T) {
	f := NewFuture()
	out := Then(f, func(v any) (any, error) { return nil, errors.New("fn broke") })
	f.Set(1)
	if _, err := out.Get(); err == nil {
		t.Fatal("fn error swallowed")
	}
	g := NewFuture()
	out2 := Then(g, func(v any) (any, error) { t.Error("fn ran on failed input"); return v, nil })
	g.Fail(errors.New("input broke"))
	if _, err := out2.Get(); err == nil {
		t.Fatal("input error swallowed")
	}
}

// Property: WhenAll over n futures resolved concurrently in arbitrary
// order always yields all n values in slot order.
func TestPropertyWhenAllOrderIndependent(t *testing.T) {
	f := func(n8 uint8, seed int64) bool {
		n := int(n8%8) + 1
		futs := make([]*Future, n)
		for i := range futs {
			futs[i] = NewFuture()
		}
		out := WhenAll(futs...)
		var wg sync.WaitGroup
		for i := range futs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				futs[i].Set(i * 100)
			}()
		}
		wg.Wait()
		v, err := out.Get()
		if err != nil {
			return false
		}
		vals := v.([]any)
		for i := range vals {
			if vals[i].(int) != i*100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
