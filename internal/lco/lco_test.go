package lco

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFutureSetGet(t *testing.T) {
	f := NewFuture()
	go f.Set(42)
	v, err := f.Get()
	if err != nil || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestFutureSingleAssignment(t *testing.T) {
	f := NewFuture()
	if err := f.Set(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Set(2); err != ErrAlreadySet {
		t.Fatalf("second set err = %v", err)
	}
	if err := f.Fail(errors.New("x")); err != ErrAlreadySet {
		t.Fatalf("fail after set err = %v", err)
	}
	v, _ := f.Get()
	if v.(int) != 1 {
		t.Fatalf("value overwritten: %v", v)
	}
}

func TestFutureFail(t *testing.T) {
	f := NewFuture()
	want := errors.New("boom")
	f.Fail(want)
	_, err := f.Get()
	if err != want {
		t.Fatalf("err = %v", err)
	}
}

func TestFutureFailNilError(t *testing.T) {
	f := NewFuture()
	f.Fail(nil)
	_, err := f.Get()
	if err == nil {
		t.Fatal("nil error accepted")
	}
}

func TestFutureTryGet(t *testing.T) {
	f := NewFuture()
	if _, _, ok := f.TryGet(); ok {
		t.Fatal("TryGet on empty future succeeded")
	}
	f.Set("v")
	v, err, ok := f.TryGet()
	if !ok || err != nil || v.(string) != "v" {
		t.Fatalf("TryGet = %v %v %v", v, err, ok)
	}
}

func TestFutureOnReadyBeforeSet(t *testing.T) {
	f := NewFuture()
	var got atomic.Value
	f.OnReady(func(v any, err error) { got.Store(v) })
	f.Set(7)
	if got.Load().(int) != 7 {
		t.Fatalf("callback got %v", got.Load())
	}
}

func TestFutureOnReadyAfterSet(t *testing.T) {
	f := NewFuture()
	f.Set(7)
	ran := false
	f.OnReady(func(v any, err error) { ran = v.(int) == 7 })
	if !ran {
		t.Fatal("late OnReady did not run immediately")
	}
}

func TestFutureConcurrentSetExactlyOnce(t *testing.T) {
	f := NewFuture()
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if f.Set(i) == nil {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d setters won", wins.Load())
	}
}

func TestFutureManyWaiters(t *testing.T) {
	f := NewFuture()
	var wg sync.WaitGroup
	var sum atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := f.Get()
			sum.Add(int64(v.(int)))
		}()
	}
	f.Set(3)
	wg.Wait()
	if sum.Load() != 96 {
		t.Fatalf("waiter sum = %d", sum.Load())
	}
}

func TestDataflowFiresOnceWithAllInputs(t *testing.T) {
	d := NewDataflow(3, func(in []any) (any, error) {
		return in[0].(int) + in[1].(int) + in[2].(int), nil
	})
	d.Supply(2, 30)
	if d.Out().Resolved() {
		t.Fatal("fired early")
	}
	d.Supply(0, 1)
	if d.Pending() != 1 {
		t.Fatalf("pending = %d", d.Pending())
	}
	d.Supply(1, 200)
	v, err := d.Out().Get()
	if err != nil || v.(int) != 231 {
		t.Fatalf("out = %v, %v", v, err)
	}
}

func TestDataflowRejectsDuplicateSlot(t *testing.T) {
	d := NewDataflow(2, func(in []any) (any, error) { return nil, nil })
	d.Supply(0, 1)
	if err := d.Supply(0, 2); err == nil {
		t.Fatal("duplicate supply succeeded")
	}
	if err := d.Supply(5, 1); err == nil {
		t.Fatal("out-of-range supply succeeded")
	}
}

func TestDataflowPropagatesError(t *testing.T) {
	want := errors.New("fn failed")
	d := NewDataflow(1, func(in []any) (any, error) { return nil, want })
	d.Supply(0, nil)
	_, err := d.Out().Get()
	if err != want {
		t.Fatalf("err = %v", err)
	}
}

// Property: for any permutation of supply order, a dataflow fires exactly
// once with all inputs placed correctly.
func TestPropertyDataflowOrderIndependent(t *testing.T) {
	f := func(perm []int, n8 uint8) bool {
		n := int(n8%6) + 1
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// Fisher-Yates using perm values as entropy.
		for i := n - 1; i > 0; i-- {
			j := 0
			if len(perm) > 0 {
				j = abs(perm[i%len(perm)]) % (i + 1)
			}
			order[i], order[j] = order[j], order[i]
		}
		var fires atomic.Int32
		d := NewDataflow(n, func(in []any) (any, error) {
			fires.Add(1)
			for k, v := range in {
				if v.(int) != k*10 {
					return nil, errors.New("misplaced input")
				}
			}
			return "ok", nil
		})
		for _, slot := range order {
			if err := d.Supply(slot, slot*10); err != nil {
				return false
			}
		}
		v, err := d.Out().Get()
		return err == nil && v.(string) == "ok" && fires.Load() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestReduceAccumulates(t *testing.T) {
	r := NewReduce(4, 0, func(acc, v any) any { return acc.(int) + v.(int) })
	for i := 1; i <= 4; i++ {
		if err := r.Contribute(i); err != nil {
			t.Fatal(err)
		}
	}
	v, err := r.Out().Get()
	if err != nil || v.(int) != 10 {
		t.Fatalf("reduce = %v, %v", v, err)
	}
	if err := r.Contribute(9); err != ErrAlreadySet {
		t.Fatalf("extra contribution err = %v", err)
	}
}

func TestReduceConcurrent(t *testing.T) {
	const n = 100
	r := NewReduce(n, int64(0), func(acc, v any) any { return acc.(int64) + v.(int64) })
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Contribute(i)
		}()
	}
	wg.Wait()
	v, _ := r.Out().Get()
	if v.(int64) != n*(n+1)/2 {
		t.Fatalf("sum = %v", v)
	}
}

func TestAndGate(t *testing.T) {
	g := NewAndGate(3)
	fired := false
	g.OnFire(func() { fired = true })
	g.Signal()
	g.Signal()
	if fired {
		t.Fatal("fired early")
	}
	g.Signal()
	if !fired {
		t.Fatal("did not fire")
	}
	g.Signal() // extra signals ignored
	g.Wait()
	ranLate := false
	g.OnFire(func() { ranLate = true })
	if !ranLate {
		t.Fatal("late OnFire did not run")
	}
}

func TestAndGateConcurrent(t *testing.T) {
	g := NewAndGate(64)
	var fires atomic.Int32
	g.OnFire(func() { fires.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.Signal() }()
	}
	wg.Wait()
	g.Wait()
	if fires.Load() != 1 {
		t.Fatalf("fired %d times", fires.Load())
	}
}

func TestOrGateFirstWins(t *testing.T) {
	g := NewOrGate()
	if !g.Signal(2, "fast") {
		t.Fatal("first signal lost")
	}
	if g.Signal(5, "slow") {
		t.Fatal("second signal won")
	}
	w, v := g.Wait()
	if w != 2 || v.(string) != "fast" {
		t.Fatalf("winner = %d %v", w, v)
	}
}

func TestOrGateConcurrentSingleWinner(t *testing.T) {
	g := NewOrGate()
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g.Signal(i, i) {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d winners", wins.Load())
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("third acquire succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	if s.Available() != 0 {
		t.Fatalf("available = %d", s.Available())
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	s := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	s.Release()
}

func TestSemaphoreAsMutualExclusion(t *testing.T) {
	s := NewSemaphore(1)
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Acquire()
				counter++
				s.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter = %d (race)", counter)
	}
}

func TestGateOpenClose(t *testing.T) {
	g := NewGate(false)
	if g.IsOpen() {
		t.Fatal("new closed gate is open")
	}
	passed := make(chan struct{})
	go func() {
		g.Pass()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("passed closed gate")
	case <-time.After(10 * time.Millisecond):
	}
	g.Open()
	<-passed
	g.Close()
	if g.IsOpen() {
		t.Fatal("gate still open after Close")
	}
	g.Open()
	g.Open() // idempotent
	g.Pass() // immediate
}

func TestBarrierPhases(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var phase [n]int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < 5; p++ {
				phase[i] = p
				b.Arrive()
				// After the barrier all participants must be in phase p.
				for j := 0; j < n; j++ {
					if phase[j] < p {
						t.Errorf("participant %d at phase %d during phase %d", j, phase[j], p)
						return
					}
				}
				b.Arrive()
			}
		}()
	}
	wg.Wait()
	if b.Generation() != 10 {
		t.Fatalf("generations = %d, want 10", b.Generation())
	}
	if b.Waits() != n*10 {
		t.Fatalf("waits = %d", b.Waits())
	}
}

func TestDepletedThreadResumesOnce(t *testing.T) {
	var resumed atomic.Int32
	var got atomic.Value
	sched := func(fn func()) { fn() }
	d := NewDepletedThread(sched, func(v any) {
		resumed.Add(1)
		got.Store(v)
	})
	if d.Fired() {
		t.Fatal("fired at birth")
	}
	if !d.Trigger("value") {
		t.Fatal("first trigger rejected")
	}
	if d.Trigger("other") {
		t.Fatal("second trigger accepted")
	}
	if resumed.Load() != 1 || got.Load().(string) != "value" {
		t.Fatalf("resumed %d with %v", resumed.Load(), got.Load())
	}
}

func TestDepletedThreadConcurrentTrigger(t *testing.T) {
	var resumed atomic.Int32
	d := NewDepletedThread(func(fn func()) { go fn() }, func(v any) { resumed.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); d.Trigger(nil) }()
	}
	wg.Wait()
	time.Sleep(10 * time.Millisecond)
	if resumed.Load() != 1 {
		t.Fatalf("resumed %d times", resumed.Load())
	}
}

func TestMetathreadSpawnsAfterDeps(t *testing.T) {
	var spawned atomic.Int32
	m := NewMetathread(3, func(fn func()) { fn() }, func() { spawned.Add(1) })
	m.Signal()
	m.Signal()
	if spawned.Load() != 0 {
		t.Fatal("spawned early")
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d", m.Pending())
	}
	m.Signal()
	if spawned.Load() != 1 {
		t.Fatalf("spawned %d times", spawned.Load())
	}
	m.Signal() // ignored
	if spawned.Load() != 1 {
		t.Fatalf("extra signal spawned again")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("dataflow n=0", func() { NewDataflow(0, func([]any) (any, error) { return nil, nil }) })
	mustPanic("dataflow nil fn", func() { NewDataflow(1, nil) })
	mustPanic("reduce n=0", func() { NewReduce(0, nil, func(a, b any) any { return nil }) })
	mustPanic("reduce nil op", func() { NewReduce(1, nil, nil) })
	mustPanic("andgate n=0", func() { NewAndGate(0) })
	mustPanic("sem n=0", func() { NewSemaphore(0) })
	mustPanic("barrier n=0", func() { NewBarrier(0) })
	mustPanic("depleted nil sched", func() { NewDepletedThread(nil, func(any) {}) })
	mustPanic("depleted nil resume", func() { NewDepletedThread(func(func()) {}, nil) })
	mustPanic("meta nil sched", func() { NewMetathread(1, nil, func() {}) })
	mustPanic("meta nil body", func() { NewMetathread(1, func(func()) {}, nil) })
}
