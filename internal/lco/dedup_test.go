package lco

import "testing"

func TestDedupSeenAndRestore(t *testing.T) {
	var d Dedup
	if d.Seen(0) {
		t.Fatal("ID 0 must never be recorded")
	}
	if d.Seen(7) {
		t.Fatal("fresh ID reported seen")
	}
	if !d.Seen(7) {
		t.Fatal("recorded ID not reported seen")
	}
	if d.Seen(0) || d.Len() != 1 {
		t.Fatalf("len = %d after {7}", d.Len())
	}
	d.Add(9)
	d.Add(0) // ignored
	if d.Len() != 2 || !d.Seen(9) {
		t.Fatal("Add did not record")
	}
	ids := d.IDs()
	if len(ids) != 2 {
		t.Fatalf("IDs() = %v", ids)
	}
	var r Dedup
	for _, id := range ids {
		r.Add(id)
	}
	if !r.Seen(7) || !r.Seen(9) {
		t.Fatal("restored set lost IDs")
	}
	var empty Dedup
	if empty.IDs() != nil {
		t.Fatal("empty set allocated an ID slice")
	}
}
