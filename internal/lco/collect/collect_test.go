package collect

import (
	"testing"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/transport"
)

// machine3 builds a three-node loopback-fabric machine with collect's
// actions registered, two localities per node.
func machine3(t *testing.T, faults core.Faults) []*core.Runtime {
	t.Helper()
	fabric := transport.NewFabric(3)
	ranges := []agas.Range{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}, {Lo: 4, Hi: 6}}
	rts := make([]*core.Runtime, 3)
	for i := range rts {
		rts[i] = core.New(core.Config{
			Transport:          fabric.Node(i),
			NodeID:             i,
			NodeLocalities:     ranges,
			WorkersPerLocality: 2,
			Faults:             faults,
			Register:           RegisterActions,
		})
	}
	return rts
}

func shutdown(t *testing.T, rts []*core.Runtime, wantClean bool) {
	t.Helper()
	rts[0].Wait()
	for i, rt := range rts {
		rt.Shutdown()
		if errs := rt.Errors(); wantClean && len(errs) != 0 {
			t.Errorf("node %d recorded errors: %v", i, errs)
		}
	}
}

func TestReduceSingleProcess(t *testing.T) {
	rt := core.New(core.Config{Localities: 4, WorkersPerLocality: 2})
	defer rt.Shutdown()
	RegisterActions(rt)
	red, err := NewReduce(rt, 0, "sp-sum", []int{4}, core.ReduceSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := red.Result(0)
	for loc := 0; loc < 4; loc++ {
		if err := red.Contribute(loc, int64(loc+1)); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := res.Get(); err != nil || v.(int64) != 10 {
		t.Fatalf("single-process tree reduce = %v, %v; want 10", v, err)
	}
}

func TestReduceAcrossNodes(t *testing.T) {
	rts := machine3(t, core.Faults{})
	defer shutdown(t, rts, true)
	// Two contributions per node: each locality contributes its index.
	red0, err := NewReduce(rts[0], 0, "rank-sum", []int{2, 2, 2}, core.ReduceSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := red0.Result(0)
	for node := 0; node < 3; node++ {
		red, err := AttachReduce(rts[node], "rank-sum")
		if err != nil {
			t.Fatal(err)
		}
		for loc := rts[node].NodeRange(node).Lo; loc < rts[node].NodeRange(node).Hi; loc++ {
			if err := red.Contribute(loc, int64(loc)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v, err := res.Get(); err != nil || v.(int64) != 15 {
		t.Fatalf("cross-node reduce = %v, %v; want 15 (0+..+5)", v, err)
	}
}

func TestBroadcastAcrossNodes(t *testing.T) {
	rts := machine3(t, core.Faults{})
	defer shutdown(t, rts, true)
	bc, err := NewBroadcast(rts[0], 0, "announce")
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe receivers on every node before the send.
	got := make([]chan any, 3)
	for node := 0; node < 3; node++ {
		b, err := AttachBroadcast(rts[node], "announce")
		if err != nil {
			t.Fatal(err)
		}
		f := b.Recv(rts[node].NodeRange(node).Lo)
		ch := make(chan any, 1)
		got[node] = ch
		f.OnReady(func(v any, err error) {
			if err != nil {
				v = err
			}
			ch <- v
		})
	}
	if err := bc.Send(0, "hello machine"); err != nil {
		t.Fatal(err)
	}
	for node, ch := range got {
		if v := <-ch; v != "hello machine" {
			t.Fatalf("node %d received %v", node, v)
		}
	}
}

func TestBarrierAcrossNodes(t *testing.T) {
	rts := machine3(t, core.Faults{})
	defer shutdown(t, rts, true)
	bar0, err := NewBarrier(rts[0], 0, "phase-1", []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stagger arrivals: everyone but the last arrives, the release must
	// stay unresolved, then the last arrival releases the machine.
	releases := make([]interface{ TryGet() (any, error, bool) }, 3)
	bars := []*Barrier{bar0}
	for node := 1; node < 3; node++ {
		b, err := AttachBarrier(rts[node], "phase-1")
		if err != nil {
			t.Fatal(err)
		}
		bars = append(bars, b)
	}
	for node, b := range bars {
		releases[node] = b.Released(rts[node].NodeRange(node).Lo)
	}
	for node, b := range bars {
		lo := rts[node].NodeRange(node).Lo
		b.Arrive(lo)
		if node < 2 {
			b.Arrive(lo + 1)
		}
	}
	rts[0].Wait() // drain all arrival triggers
	if _, _, ok := releases[0].TryGet(); ok {
		t.Fatal("barrier released before the last arrival")
	}
	bars[2].Arrive(rts[2].NodeRange(2).Lo + 1)
	for node, rel := range releases {
		if _, err := rel.(interface{ Get() (any, error) }).Get(); err != nil {
			t.Fatalf("node %d release: %v", node, err)
		}
	}
}

func TestReduceWithDuplicationFaults(t *testing.T) {
	rts := machine3(t, core.Faults{DupOneIn: 2, Seed: 13})
	// Install parcels may be duplicated: the install action is idempotent,
	// but the duplicate's continuation re-sets the driver's one-shot call
	// future, which is a recorded (expected) error — so don't demand a
	// clean error log, only a correct result.
	defer shutdown(t, rts, false)
	red0, err := NewReduce(rts[0], 0, "dup-sum", []int{2, 2, 2}, core.ReduceSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := red0.Result(0)
	for node := 0; node < 3; node++ {
		red, err := AttachReduce(rts[node], "dup-sum")
		if err != nil {
			t.Fatal(err)
		}
		rg := rts[node].NodeRange(node)
		for loc := rg.Lo; loc < rg.Hi; loc++ {
			if err := red.Contribute(loc, int64(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v, err := res.Get(); err != nil || v.(int64) != 6 {
		t.Fatalf("reduce under duplication = %v, %v; want 6", v, err)
	}
	var duped uint64
	for _, rt := range rts {
		duped += rt.Duplicated()
	}
	if duped == 0 {
		t.Fatal("no duplication injected at 1-in-2")
	}
}

func TestAttachUnknownCollective(t *testing.T) {
	rt := core.New(core.Config{Localities: 1})
	defer rt.Shutdown()
	RegisterActions(rt)
	if _, err := AttachReduce(rt, "nope"); err == nil {
		t.Fatal("attach to unknown collective succeeded")
	}
	if _, err := NewReduce(rt, 0, "empty", []int{0}, core.ReduceSum, int64(0)); err == nil {
		t.Fatal("reduce with no contributions accepted")
	}
	if _, err := NewBarrier(rt, 0, "empty-b", []int{0}); err == nil {
		t.Fatal("barrier with no participants accepted")
	}
}

func TestFreeTearsTheCollectiveDown(t *testing.T) {
	rts := machine3(t, core.Faults{})
	defer shutdown(t, rts, true)
	red0, err := NewReduce(rts[0], 0, "freed-sum", []int{2, 2, 2}, core.ReduceSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := red0.Result(0)
	for node := 0; node < 3; node++ {
		red, err := AttachReduce(rts[node], "freed-sum")
		if err != nil {
			t.Fatal(err)
		}
		rg := rts[node].NodeRange(node)
		for loc := rg.Lo; loc < rg.Hi; loc++ {
			if err := red.Contribute(loc, int64(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v, err := res.Get(); err != nil || v.(int64) != 6 {
		t.Fatalf("reduce = %v, %v; want 6", v, err)
	}
	if err := red0.Free(0); err != nil {
		t.Fatalf("free: %v", err)
	}
	// Every node's namespace entries and leaf objects must be gone.
	for node := 0; node < 3; node++ {
		if _, err := AttachReduce(rts[node], "freed-sum"); err == nil {
			t.Fatalf("node %d still attaches to a freed collective", node)
		}
	}
	if _, ok := rts[0].LocalObject(0, red0.Root); ok {
		t.Fatal("root object survived Free")
	}
	// Freeing twice is a safe no-op.
	if err := red0.Free(0); err != nil {
		t.Fatalf("double free: %v", err)
	}
	// A fresh collective may reuse the ID after teardown.
	if _, err := NewReduce(rts[0], 0, "freed-sum", []int{2, 2, 2}, core.ReduceSum, int64(0)); err != nil {
		t.Fatalf("ID reuse after free: %v", err)
	}
}

func TestBarrierAndBroadcastFree(t *testing.T) {
	rts := machine3(t, core.Faults{})
	defer shutdown(t, rts, true)
	bar, err := NewBarrier(rts[0], 0, "freed-bar", []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := bar.Released(0)
	for node := 0; node < 3; node++ {
		b, err := AttachBarrier(rts[node], "freed-bar")
		if err != nil {
			t.Fatal(err)
		}
		b.Arrive(rts[node].NodeRange(node).Lo)
	}
	if _, err := rel.Get(); err != nil {
		t.Fatal(err)
	}
	if err := bar.Free(0); err != nil {
		t.Fatalf("barrier free: %v", err)
	}
	if _, err := AttachBarrier(rts[1], "freed-bar"); err == nil {
		t.Fatal("freed barrier still attachable")
	}

	bc, err := NewBroadcast(rts[0], 0, "freed-bc")
	if err != nil {
		t.Fatal(err)
	}
	recv := bc.Recv(0)
	if err := bc.Send(0, int64(3)); err != nil {
		t.Fatal(err)
	}
	if v, err := recv.Get(); err != nil || v.(int64) != 3 {
		t.Fatalf("recv = %v, %v", v, err)
	}
	if err := bc.Free(0); err != nil {
		t.Fatalf("broadcast free: %v", err)
	}
	if _, err := AttachBroadcast(rts[2], "freed-bc"); err == nil {
		t.Fatal("freed broadcast still attachable")
	}
}
