// Package collect builds cross-node collectives — Reduce, Broadcast, and
// Barrier — out of distributed LCO gate trees. Each collective is a
// two-level tree of AGAS-homed LCOs: one leaf per node aggregates that
// node's local arrivals, and the leaves feed a root on the initiating
// node through subscribed waiters. Local arrivals therefore cost one
// same-node trigger, and each node contributes exactly one cross-node
// frame per collective — the fan-in the ParalleX model expresses with
// LCOs instead of rank-synchronous barriers.
//
// Because every tree node is an ordinary AGAS object, a collective
// survives live migration of its gates (pending triggers chase the
// forwarding pointer) and tolerates duplicated trigger delivery through
// the protocol's idempotent trigger IDs.
//
// Collectives are identified by a caller-chosen string. The initiating
// node builds the tree with NewReduce/NewBroadcast/NewBarrier — which
// installs a leaf on every participating node and binds it in that node's
// local AGAS namespace under /collect/<id> — and any node attaches to an
// installed collective with AttachReduce/AttachBroadcast/AttachBarrier.
// A consumed collective is torn down machine-wide with its Free method;
// phased computation therefore cycles fresh IDs without accreting AGAS
// state. RegisterActions must run on every node (Config.Register on a
// multi-node machine) before collectives are built.
package collect

import (
	"fmt"
	"sync"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/lco"
	"repro/internal/parcel"
)

// ActionInstall is the action that installs a collective's per-node leaf.
// It executes on each participating node's hardware object and is
// idempotent per collective ID, so a fault-duplicated install parcel
// cannot build the leaf twice.
const ActionInstall = "px.collect.install"

// ActionUninstall is ActionInstall's inverse: it frees this node's leaf
// (and release) objects and unbinds the collective's namespace entries.
// Idempotent — a second uninstall finds nothing and succeeds.
const ActionUninstall = "px.collect.uninstall"

// installMu serializes leaf installation within one process, making the
// lookup-then-create sequence atomic against duplicated install parcels.
var installMu sync.Mutex

// RegisterActions installs collect's actions on rt. On a multi-node
// machine call it in Config.Register, before the transport starts.
func RegisterActions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionInstall, installLeaf)
	rt.MustRegisterAction(ActionUninstall, uninstallLeaf)
}

// leafPath and friends name a collective's per-node objects in the local
// AGAS namespace.
func leafPath(id string) string    { return "/collect/" + id + "/leaf" }
func rootPath(id string) string    { return "/collect/" + id + "/root" }
func releasePath(id string) string { return "/collect/" + id + "/release" }

// installLeaf builds this node's leaf for one collective:
// args = id | kind | root GID | local count | reducer op | init record.
func installLeaf(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
	id := args.String()
	kind := args.String()
	root := args.GID()
	n := int(args.Int64())
	op := args.String()
	initRaw := args.Bytes()
	if err := args.Err(); err != nil {
		return nil, err
	}
	rt := ctx.Runtime()
	loc := ctx.Locality()
	ns := rt.AGAS().Namespace()
	installMu.Lock()
	defer installMu.Unlock()
	if g, err := ns.Lookup(leafPath(id)); err == nil {
		return g, nil // duplicated install: the first copy built the leaf
	}
	var leaf agas.GID
	switch kind {
	case "reduce":
		init, err := parcel.DecodeAny(initRaw)
		if err != nil {
			return nil, fmt.Errorf("collect: reduce init: %w", err)
		}
		leaf = rt.NewDistReduceAt(loc, n, op, init,
			core.Waiter{Target: root, Op: core.TrigContribute})
	case "barrier":
		// The leaf gate signals the root when every local participant has
		// arrived; the root, once all leaves signal, sets each node's
		// release future, which local waiters observe.
		release := rt.NewDistFutureAt(loc)
		rt.SubscribeLCO(loc, root, core.Waiter{Target: release, Op: core.TrigSet})
		leaf = rt.NewDistGateAt(loc, n,
			core.Waiter{Target: root, Op: core.TrigSignal})
		if err := ns.Bind(releasePath(id), release); err != nil {
			return nil, err
		}
	case "broadcast":
		// The leaf is a local future the root sets on resolution.
		leaf = rt.NewDistFutureAt(loc)
		rt.SubscribeLCO(loc, root, core.Waiter{Target: leaf, Op: core.TrigSet})
	default:
		return nil, fmt.Errorf("collect: unknown collective kind %q", kind)
	}
	if err := ns.Bind(leafPath(id), leaf); err != nil {
		return nil, err
	}
	if err := ns.Bind(rootPath(id), root); err != nil {
		return nil, err
	}
	return leaf, nil
}

// uninstallLeaf tears this node's share of a collective down:
// args = id. Leaf and release objects are freed (they are owned here
// unless deliberately migrated away, in which case freeing is a safe
// no-op left to the hosting node) and the namespace entries unbound.
func uninstallLeaf(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
	id := args.String()
	if err := args.Err(); err != nil {
		return nil, err
	}
	rt := ctx.Runtime()
	ns := rt.AGAS().Namespace()
	installMu.Lock()
	defer installMu.Unlock()
	for _, path := range []string{leafPath(id), releasePath(id)} {
		if g, err := ns.Lookup(path); err == nil {
			rt.FreeObject(g)
			_ = ns.Unbind(path)
		}
	}
	_ = ns.Unbind(rootPath(id))
	return nil, nil
}

// free fans the uninstall out to every node and then releases the root,
// shared by the collectives' Free methods. Free a collective only after
// it has resolved and its consumers are done: a straggling identified
// trigger to a freed LCO is dropped benignly, but a *live* collective
// loses arrivals.
func free(r *core.Runtime, src int, id string, root agas.GID) error {
	args := parcel.NewArgs().String(id).Encode()
	futs := make([]*lco.Future, 0, r.Nodes())
	for node := 0; node < r.Nodes(); node++ {
		futs = append(futs,
			r.CallFrom(src, r.LocalityGID(r.NodeRange(node).Lo), ActionUninstall, args))
	}
	var firstErr error
	for _, fut := range futs {
		if _, err := fut.Get(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("collect: uninstall %q: %w", id, err)
		}
	}
	r.FreeObject(root)
	return firstErr
}

// install fans the leaf-construction action out to every participating
// node and waits for all leaves to exist, so a collective returned by a
// New* constructor is ready for arrivals machine-wide.
func install(rt *core.Runtime, home int, id, kind string, root agas.GID, counts []int, op string, init any) error {
	if len(counts) != rt.Nodes() {
		return fmt.Errorf("collect: %d per-node counts for a %d-node machine", len(counts), rt.Nodes())
	}
	initRaw, err := parcel.EncodeAny(init)
	if err != nil {
		return fmt.Errorf("collect: init value: %w", err)
	}
	futs := make([]*lco.Future, 0, len(counts))
	for node, c := range counts {
		if c <= 0 {
			continue
		}
		args := parcel.NewArgs().String(id).String(kind).GID(root).
			Int64(int64(c)).String(op).Bytes(initRaw).Encode()
		futs = append(futs,
			rt.CallFrom(home, rt.LocalityGID(rt.NodeRange(node).Lo), ActionInstall, args))
	}
	for _, fut := range futs {
		if _, err := fut.Get(); err != nil {
			return fmt.Errorf("collect: install %q: %w", id, err)
		}
	}
	return nil
}

// activeNodes counts the tree's leaves: nodes expecting at least one
// arrival.
func activeNodes(counts []int) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// attach resolves this node's leaf and root for an installed collective.
func attach(rt *core.Runtime, id string) (leaf, root agas.GID, err error) {
	ns := rt.AGAS().Namespace()
	if leaf, err = ns.Lookup(leafPath(id)); err != nil {
		return agas.Nil, agas.Nil, fmt.Errorf("collect: %q not installed on this node: %w", id, err)
	}
	if root, err = ns.Lookup(rootPath(id)); err != nil {
		return agas.Nil, agas.Nil, err
	}
	return leaf, root, nil
}

// Reduce is a machine-wide reduction tree: per-node leaf reductions fold
// local contributions, and each resolved leaf contributes its partial
// accumulation to the root.
type Reduce struct {
	rt *core.Runtime
	// ID identifies the collective machine-wide.
	ID string
	// Root is the root reduction's global name.
	Root agas.GID
	leaf agas.GID
}

// NewReduce builds a reduction identified by id, rooted at resident
// locality home. counts[node] is the number of contributions expected
// from each node (0 excludes the node); op is a registered reducer and
// init the per-leaf identity element — it is folded once per leaf and
// once at the root, so it must be the operator's identity (0 for sum,
// +inf for min) for the result to be exact.
func NewReduce(rt *core.Runtime, home int, id string, counts []int, op string, init any) (*Reduce, error) {
	leaves := activeNodes(counts)
	if leaves == 0 {
		return nil, fmt.Errorf("collect: reduce %q with no contributions", id)
	}
	root := rt.NewDistReduceAt(home, leaves, op, init)
	if err := install(rt, home, id, "reduce", root, counts, op, init); err != nil {
		return nil, err
	}
	return AttachReduce(rt, id)
}

// AttachReduce joins an installed reduction from this node.
func AttachReduce(rt *core.Runtime, id string) (*Reduce, error) {
	leaf, root, err := attach(rt, id)
	if err != nil {
		return nil, err
	}
	return &Reduce{rt: rt, ID: id, Root: root, leaf: leaf}, nil
}

// Contribute folds v into this node's leaf from resident locality src.
// The leaf's final local accumulation flows to the root automatically.
func (r *Reduce) Contribute(src int, v any) error {
	return r.rt.ContributeLCO(src, r.leaf, v)
}

// Result returns a local future resolving with the machine-wide
// accumulation once every contribution has arrived.
func (r *Reduce) Result(src int) *lco.Future {
	return r.rt.WaitLCO(src, r.Root)
}

// Free tears the reduction down machine-wide — leaf objects, namespace
// bindings, and the root — from resident locality src. Call it on the
// constructing node after the result has been consumed.
func (r *Reduce) Free(src int) error {
	return free(r.rt, src, r.ID, r.Root)
}

// Broadcast delivers one value from the root to a leaf future on every
// node.
type Broadcast struct {
	rt *core.Runtime
	// ID identifies the collective machine-wide.
	ID string
	// Root is the root future's global name.
	Root agas.GID
	leaf agas.GID
}

// NewBroadcast builds a broadcast identified by id, rooted at resident
// locality home, with a leaf on every node of the machine.
func NewBroadcast(rt *core.Runtime, home int, id string) (*Broadcast, error) {
	root := rt.NewDistFutureAt(home)
	counts := make([]int, rt.Nodes())
	for i := range counts {
		counts[i] = 1
	}
	if err := install(rt, home, id, "broadcast", root, counts, "", nil); err != nil {
		return nil, err
	}
	return AttachBroadcast(rt, id)
}

// AttachBroadcast joins an installed broadcast from this node.
func AttachBroadcast(rt *core.Runtime, id string) (*Broadcast, error) {
	leaf, root, err := attach(rt, id)
	if err != nil {
		return nil, err
	}
	return &Broadcast{rt: rt, ID: id, Root: root, leaf: leaf}, nil
}

// Send resolves the broadcast with v, fanning it out to every leaf.
func (b *Broadcast) Send(src int, v any) error {
	return b.rt.SetLCO(src, b.Root, v)
}

// Recv returns a local future resolving with the broadcast value.
func (b *Broadcast) Recv(src int) *lco.Future {
	return b.rt.WaitLCO(src, b.leaf)
}

// Free tears the broadcast down machine-wide once every consumer has
// received the value.
func (b *Broadcast) Free(src int) error {
	return free(b.rt, src, b.ID, b.Root)
}

// Barrier is a one-shot machine-wide barrier: arrivals signal per-node
// leaf gates, the leaves signal the root, and the root's resolution sets
// a release future on every node. Reuse across phases is by constructing
// one barrier per phase (fresh IDs), the LCO idiom for phased
// computation.
type Barrier struct {
	rt *core.Runtime
	// ID identifies the collective machine-wide.
	ID string
	// Root is the root gate's global name.
	Root          agas.GID
	leaf, release agas.GID
}

// NewBarrier builds a barrier identified by id, rooted at resident
// locality home, with counts[node] participants arriving on each node.
func NewBarrier(rt *core.Runtime, home int, id string, counts []int) (*Barrier, error) {
	leaves := activeNodes(counts)
	if leaves == 0 {
		return nil, fmt.Errorf("collect: barrier %q with no participants", id)
	}
	root := rt.NewDistGateAt(home, leaves)
	if err := install(rt, home, id, "barrier", root, counts, "", nil); err != nil {
		return nil, err
	}
	return AttachBarrier(rt, id)
}

// AttachBarrier joins an installed barrier from this node.
func AttachBarrier(rt *core.Runtime, id string) (*Barrier, error) {
	leaf, root, err := attach(rt, id)
	if err != nil {
		return nil, err
	}
	release, err := rt.AGAS().Namespace().Lookup(releasePath(id))
	if err != nil {
		return nil, err
	}
	return &Barrier{rt: rt, ID: id, Root: root, leaf: leaf, release: release}, nil
}

// Arrive delivers one participant arrival from resident locality src.
func (b *Barrier) Arrive(src int) {
	b.rt.SignalLCO(src, b.leaf)
}

// Released returns a local future resolving once every participant
// machine-wide has arrived.
func (b *Barrier) Released(src int) *lco.Future {
	return b.rt.WaitLCO(src, b.release)
}

// Free tears the barrier down machine-wide once the release has fanned
// out — the idiom for phased computation is one barrier per phase, freed
// as the next phase's barrier is built.
func (b *Barrier) Free(src int) error {
	return free(b.rt, src, b.ID, b.Root)
}
