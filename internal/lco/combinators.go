package lco

import "fmt"

// Future combinators: compositions the paper's dataflow style implies —
// join on all inputs (an and-gate over futures) and race to the first
// (an or-gate over futures). Both are themselves futures, so combinators
// nest.

// WhenAll returns a future resolving with the values of all inputs, in
// order, once every input has resolved. If any input fails, the result
// fails with the first error (by input order of resolution).
func WhenAll(futures ...*Future) *Future {
	out := NewFuture()
	n := len(futures)
	if n == 0 {
		out.Set([]any{})
		return out
	}
	values := make([]any, n)
	gate := NewAndGate(n)
	for i, f := range futures {
		i, f := i, f
		f.OnReady(func(v any, err error) {
			if err != nil {
				out.Fail(fmt.Errorf("lco: input %d: %w", i, err))
				// Still signal so the gate cannot leak waiters.
				gate.Signal()
				return
			}
			values[i] = v
			gate.Signal()
		})
	}
	gate.OnFire(func() {
		out.Set(values) // no-op (ErrAlreadySet) if a failure won the race
	})
	return out
}

// WhenAny returns a future resolving with the index and value of the
// first input to resolve successfully. It fails only if every input
// fails, with the last error observed.
func WhenAny(futures ...*Future) *Future {
	out := NewFuture()
	n := len(futures)
	if n == 0 {
		out.Fail(fmt.Errorf("lco: WhenAny of nothing"))
		return out
	}
	fails := NewAndGate(n)
	var lastErr error
	for i, f := range futures {
		i, f := i, f
		f.OnReady(func(v any, err error) {
			if err != nil {
				lastErr = err
				fails.Signal()
				return
			}
			out.Set(AnyResult{Index: i, Value: v})
		})
	}
	fails.OnFire(func() {
		out.Fail(fmt.Errorf("lco: all inputs failed: %w", lastErr))
	})
	return out
}

// AnyResult is WhenAny's resolution value.
type AnyResult struct {
	Index int
	Value any
}

// Then chains a transformation onto a future, returning a future for the
// transformed value — continuation-passing in LCO form.
func Then(f *Future, fn func(v any) (any, error)) *Future {
	out := NewFuture()
	f.OnReady(func(v any, err error) {
		if err != nil {
			out.Fail(err)
			return
		}
		nv, nerr := fn(v)
		if nerr != nil {
			out.Fail(nerr)
			return
		}
		out.Set(nv)
	})
	return out
}
