// Package lco implements ParalleX Local Control Objects: the lightweight
// synchronization primitives that replace global barriers. Futures provide
// anonymous producer–consumer coupling, dataflow templates provide
// compile-time value-oriented flow control, depleted threads store the
// state of suspended threads, and metathreads instantiate new threads when
// their dependencies fire. All LCOs are safe for concurrent use and fire
// exactly once unless documented otherwise.
package lco

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAlreadySet is returned when a single-assignment LCO is set twice.
var ErrAlreadySet = errors.New("lco: already set")

// Future is a single-assignment value with blocking and callback-style
// consumers. The zero value is not usable; create with NewFuture.
type Future struct {
	mu   sync.Mutex
	done chan struct{}
	set  bool
	val  any
	err  error
	cbs  []func(any, error)
}

// NewFuture returns an empty future.
func NewFuture() *Future {
	return &Future{done: make(chan struct{})}
}

// Set delivers the value, waking all waiters and running registered
// callbacks (synchronously, in registration order). Setting twice returns
// ErrAlreadySet.
func (f *Future) Set(v any) error { return f.resolve(v, nil) }

// Fail delivers an error instead of a value.
func (f *Future) Fail(err error) error {
	if err == nil {
		err = errors.New("lco: future failed with nil error")
	}
	return f.resolve(nil, err)
}

func (f *Future) resolve(v any, err error) error {
	f.mu.Lock()
	if f.set {
		f.mu.Unlock()
		return ErrAlreadySet
	}
	f.set = true
	f.val, f.err = v, err
	cbs := f.cbs
	f.cbs = nil
	close(f.done)
	f.mu.Unlock()
	for _, cb := range cbs {
		cb(v, err)
	}
	return nil
}

// Get blocks until the future resolves and returns its value or error.
// This is the "suspend the consumer thread" path; in the runtime the
// blocked goroutine is exactly the paper's depleted thread.
func (f *Future) Get() (any, error) {
	<-f.done
	return f.val, f.err
}

// TryGet reports the value without blocking; ok is false while unresolved.
func (f *Future) TryGet() (v any, err error, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.set {
		return nil, nil, false
	}
	return f.val, f.err, true
}

// Done returns a channel closed on resolution, for use in select.
func (f *Future) Done() <-chan struct{} { return f.done }

// OnReady registers cb to run when the future resolves; if it already has,
// cb runs immediately on the calling goroutine. This is the parcel
// continuation hook: the runtime attaches "send result onward" callbacks.
func (f *Future) OnReady(cb func(v any, err error)) {
	f.mu.Lock()
	if f.set {
		v, err := f.val, f.err
		f.mu.Unlock()
		cb(v, err)
		return
	}
	f.cbs = append(f.cbs, cb)
	f.mu.Unlock()
}

// Resolved reports whether the future has been set or failed.
func (f *Future) Resolved() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// Dataflow is an n-input dataflow template: when every input slot has been
// supplied, fn fires exactly once with the inputs in slot order and its
// result resolves Out. This is the paper's "dataflow synchronization …
// true asynchronous value oriented flow control".
type Dataflow struct {
	mu        sync.Mutex
	slots     []any
	filled    []bool
	remaining int
	fired     bool
	fn        func([]any) (any, error)
	out       *Future
}

// NewDataflow creates a template with n >= 1 inputs.
func NewDataflow(n int, fn func(inputs []any) (any, error)) *Dataflow {
	if n < 1 {
		panic(fmt.Sprintf("lco: dataflow needs at least 1 input, got %d", n))
	}
	if fn == nil {
		panic("lco: dataflow with nil function")
	}
	return &Dataflow{
		slots:     make([]any, n),
		filled:    make([]bool, n),
		remaining: n,
		fn:        fn,
		out:       NewFuture(),
	}
}

// Supply fills input slot i. Supplying a slot twice or out of range is an
// error. The firing happens on the goroutine that supplies the last input.
func (d *Dataflow) Supply(i int, v any) error {
	d.mu.Lock()
	if i < 0 || i >= len(d.slots) {
		d.mu.Unlock()
		return fmt.Errorf("lco: dataflow slot %d out of range [0,%d)", i, len(d.slots))
	}
	if d.filled[i] {
		d.mu.Unlock()
		return fmt.Errorf("lco: dataflow slot %d already supplied", i)
	}
	d.filled[i] = true
	d.slots[i] = v
	d.remaining--
	ready := d.remaining == 0 && !d.fired
	if ready {
		d.fired = true
	}
	inputs := d.slots
	d.mu.Unlock()
	if ready {
		v, err := d.fn(inputs)
		if err != nil {
			d.out.Fail(err)
		} else {
			d.out.Set(v)
		}
	}
	return nil
}

// Out returns the future resolved by the firing.
func (d *Dataflow) Out() *Future { return d.out }

// Pending reports how many inputs remain unsupplied.
func (d *Dataflow) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.remaining
}

// Reduce accumulates n contributions with an associative operator and
// resolves Out with the final accumulation. Contributions may arrive from
// any goroutine in any order.
type Reduce struct {
	mu        sync.Mutex
	acc       any
	remaining int
	op        func(acc, v any) any
	out       *Future
}

// NewReduce creates a reduction expecting n >= 1 contributions starting
// from init.
func NewReduce(n int, init any, op func(acc, v any) any) *Reduce {
	if n < 1 {
		panic(fmt.Sprintf("lco: reduce needs at least 1 contribution, got %d", n))
	}
	if op == nil {
		panic("lco: reduce with nil operator")
	}
	return &Reduce{acc: init, remaining: n, op: op, out: NewFuture()}
}

// Contribute folds v into the accumulator; the n-th contribution resolves
// Out. Contributing more than n times returns ErrAlreadySet.
func (r *Reduce) Contribute(v any) error {
	r.mu.Lock()
	if r.remaining == 0 {
		r.mu.Unlock()
		return ErrAlreadySet
	}
	r.acc = r.op(r.acc, v)
	r.remaining--
	done := r.remaining == 0
	acc := r.acc
	r.mu.Unlock()
	if done {
		r.out.Set(acc)
	}
	return nil
}

// Out returns the future resolved with the final accumulation.
func (r *Reduce) Out() *Future { return r.out }
