package lco

import (
	"fmt"
	"sync"
)

// AndGate fires once after n signals. It generalizes join counters; the
// runtime uses it to detect quiescence of task fan-outs without a barrier.
type AndGate struct {
	mu        sync.Mutex
	remaining int
	done      chan struct{}
	cbs       []func()
}

// NewAndGate returns a gate expecting n >= 1 signals.
func NewAndGate(n int) *AndGate {
	if n < 1 {
		panic(fmt.Sprintf("lco: and-gate needs at least 1 signal, got %d", n))
	}
	return &AndGate{remaining: n, done: make(chan struct{})}
}

// Signal delivers one arrival; the n-th fires the gate. Extra signals are
// ignored (idempotent completion).
func (g *AndGate) Signal() {
	g.mu.Lock()
	if g.remaining == 0 {
		g.mu.Unlock()
		return
	}
	g.remaining--
	fire := g.remaining == 0
	var cbs []func()
	if fire {
		cbs = g.cbs
		g.cbs = nil
		close(g.done)
	}
	g.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// Wait blocks until the gate fires.
func (g *AndGate) Wait() { <-g.done }

// Done returns a channel closed when the gate fires.
func (g *AndGate) Done() <-chan struct{} { return g.done }

// OnFire registers cb to run at firing; if already fired, cb runs now.
func (g *AndGate) OnFire(cb func()) {
	g.mu.Lock()
	if g.remaining == 0 {
		g.mu.Unlock()
		cb()
		return
	}
	g.cbs = append(g.cbs, cb)
	g.mu.Unlock()
}

// Remaining reports outstanding signals.
func (g *AndGate) Remaining() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.remaining
}

// OrGate fires on the first of n possible signals, recording which input
// won. Later signals are ignored.
type OrGate struct {
	mu     sync.Mutex
	fired  bool
	winner int
	val    any
	done   chan struct{}
}

// NewOrGate returns an unfired or-gate.
func NewOrGate() *OrGate {
	return &OrGate{done: make(chan struct{})}
}

// Signal fires the gate with the given input index and value; only the
// first call wins. It reports whether this call was the winner.
func (g *OrGate) Signal(input int, v any) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fired {
		return false
	}
	g.fired = true
	g.winner = input
	g.val = v
	close(g.done)
	return true
}

// Wait blocks until the gate fires, returning the winning input and value.
func (g *OrGate) Wait() (int, any) {
	<-g.done
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.winner, g.val
}

// Done returns a channel closed when the gate fires.
func (g *OrGate) Done() <-chan struct{} { return g.done }

// Semaphore is a counting semaphore LCO.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n permits available.
func NewSemaphore(n int) *Semaphore {
	if n < 1 {
		panic(fmt.Sprintf("lco: semaphore needs at least 1 permit, got %d", n))
	}
	s := &Semaphore{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		s.slots <- struct{}{}
	}
	return s
}

// Acquire blocks until a permit is available.
func (s *Semaphore) Acquire() { <-s.slots }

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	select {
	case <-s.slots:
		return true
	default:
		return false
	}
}

// Release returns a permit. Releasing more permits than the semaphore was
// created with panics: it always indicates an acquire/release imbalance.
func (s *Semaphore) Release() {
	select {
	case s.slots <- struct{}{}:
	default:
		panic("lco: semaphore over-release")
	}
}

// Available reports the current number of free permits.
func (s *Semaphore) Available() int { return len(s.slots) }

// Gate is an open/close latch: Pass blocks while closed. Unlike AndGate it
// is reusable and level-triggered; the runtime uses it for flow control.
type Gate struct {
	mu   sync.Mutex
	open chan struct{} // closed channel == gate open
}

// NewGate returns a gate in the given initial state.
func NewGate(open bool) *Gate {
	g := &Gate{open: make(chan struct{})}
	if open {
		close(g.open)
	}
	return g
}

// Open releases all current and future passers until Close.
func (g *Gate) Open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
	default:
		close(g.open)
	}
}

// Close makes subsequent Pass calls block.
func (g *Gate) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
		g.open = make(chan struct{})
	default:
	}
}

// Pass blocks until the gate is open.
func (g *Gate) Pass() {
	g.mu.Lock()
	ch := g.open
	g.mu.Unlock()
	<-ch
}

// IsOpen reports the gate state.
func (g *Gate) IsOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
		return true
	default:
		return false
	}
}

// Barrier is the classic reusable global barrier, implemented for the CSP
// baseline and for the LCO-vs-barrier experiment (E6). ParalleX programs
// should prefer dataflow LCOs; this type exists to measure why.
type Barrier struct {
	mu      sync.Mutex
	n       int
	arrived int
	gen     uint64
	release chan struct{}

	// Waits counts total arrivals, for overhead accounting.
	waits uint64
}

// NewBarrier returns a barrier for n >= 1 participants.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("lco: barrier needs at least 1 participant, got %d", n))
	}
	return &Barrier{n: n, release: make(chan struct{})}
}

// Arrive blocks until all n participants have arrived, then all are
// released and the barrier resets for the next phase.
func (b *Barrier) Arrive() {
	b.mu.Lock()
	b.waits++
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		close(b.release)
		b.release = make(chan struct{})
		b.mu.Unlock()
		return
	}
	ch := b.release
	b.mu.Unlock()
	<-ch
}

// Generation reports how many phases have completed.
func (b *Barrier) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// Waits reports total arrivals across all phases.
func (b *Barrier) Waits() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}
