package lco

import (
	"sync"
)

// DepletedThread stores the state of a suspended thread as an LCO — the
// paper's "depleted threads provide a kind of temporary state storage for
// suspended threads". When the dependency it suspended on is satisfied,
// Trigger hands the saved continuation to a scheduler for resumption on the
// thread's home locality. It fires exactly once.
type DepletedThread struct {
	mu       sync.Mutex
	fired    bool
	resume   func(v any)
	schedule func(func())
}

// NewDepletedThread captures a suspended thread. schedule enqueues work on
// the home locality (must not be nil); resume is the saved continuation.
func NewDepletedThread(schedule func(func()), resume func(v any)) *DepletedThread {
	if schedule == nil {
		panic("lco: depleted thread needs a scheduler")
	}
	if resume == nil {
		panic("lco: depleted thread needs a continuation")
	}
	return &DepletedThread{resume: resume, schedule: schedule}
}

// Trigger satisfies the dependency with value v, scheduling the resumption.
// Only the first trigger acts; it reports whether this call resumed the
// thread.
func (d *DepletedThread) Trigger(v any) bool {
	d.mu.Lock()
	if d.fired {
		d.mu.Unlock()
		return false
	}
	d.fired = true
	resume := d.resume
	d.resume = nil
	d.mu.Unlock()
	d.schedule(func() { resume(v) })
	return true
}

// Fired reports whether the thread has been resumed.
func (d *DepletedThread) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// Metathread instantiates a thread body when all of its n dependencies have
// been signalled — a thread template guarded by a join counter, one of the
// LCO kinds the paper lists. The body is handed to the scheduler exactly
// once, on the goroutine delivering the last dependency.
type Metathread struct {
	gate     *AndGate
	schedule func(func())
	body     func()
	once     sync.Once
}

// NewMetathread creates a template with n >= 1 dependencies.
func NewMetathread(n int, schedule func(func()), body func()) *Metathread {
	if schedule == nil {
		panic("lco: metathread needs a scheduler")
	}
	if body == nil {
		panic("lco: metathread needs a body")
	}
	m := &Metathread{gate: NewAndGate(n), schedule: schedule, body: body}
	m.gate.OnFire(func() {
		m.once.Do(func() { m.schedule(m.body) })
	})
	return m
}

// Signal delivers one dependency.
func (m *Metathread) Signal() { m.gate.Signal() }

// Pending reports unsatisfied dependencies.
func (m *Metathread) Pending() int { return m.gate.Remaining() }
