// Package sim provides a deterministic discrete-event simulation engine
// used by the virtual-time experiments (the Gilgamesh II architecture
// study and the percolation experiment E7). Events execute in strict
// timestamp order; ties are broken by scheduling order, which makes every
// run reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time measured in ticks. The meaning of a tick is chosen
// by the model (the Gilgamesh model uses one tick = one clock cycle).
type Time int64

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = 1<<63 - 1

// Handler is a callback executed when an event fires.
type Handler func()

type event struct {
	at   Time
	seq  uint64
	fn   Handler
	dead bool
	idx  int
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; models built on it run entirely inside event handlers.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would violate causality and always indicates a model bug.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev}
}

// After schedules fn to run d ticks from now. Negative delays panic.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// has already fired (or was already cancelled) is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.dead || id.ev.idx < 0 {
		return false
	}
	id.ev.dead = true
	return true
}

// Stop makes Run return after the current event handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until no events remain or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Infinity)
}

// RunUntil executes events with timestamps <= limit. The clock is left at
// the time of the last executed event (or limit if it advanced past events).
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.at > limit {
			break
		}
		heap.Pop(&e.events)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	return e.now
}

// Step executes exactly one event (skipping cancelled ones) and reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}
