package sim

// Resource models a server with fixed capacity and a FIFO queue, the basic
// building block for modelling execution units (MIND nodes, the dataflow
// accelerator, network links) in the architecture study. Jobs acquire a
// slot, hold it for a service time, and release it; contention (the W in
// SLOW) shows up as queueing delay, which the resource tracks.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*job

	// statistics
	served      uint64
	busyTicks   Time
	waitTicks   Time
	lastChange  Time
	maxQueueLen int
}

type job struct {
	enq     Time
	service Time
	done    func()
}

// NewResource creates a resource with the given concurrent capacity.
// Capacity must be positive.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a job needing the given service time; done (may be nil)
// runs when service completes. Jobs are served FIFO as capacity frees up.
func (r *Resource) Submit(service Time, done func()) {
	if service < 0 {
		panic("sim: negative service time")
	}
	j := &job{enq: r.eng.Now(), service: service, done: done}
	r.queue = append(r.queue, j)
	if len(r.queue) > r.maxQueueLen {
		r.maxQueueLen = len(r.queue)
	}
	r.dispatch()
}

func (r *Resource) dispatch() {
	for r.inUse < r.capacity && len(r.queue) > 0 {
		j := r.queue[0]
		r.queue = r.queue[1:]
		r.accountBusy()
		r.inUse++
		r.waitTicks += r.eng.Now() - j.enq
		r.eng.After(j.service, func() {
			r.accountBusy()
			r.inUse--
			r.served++
			if j.done != nil {
				j.done()
			}
			r.dispatch()
		})
	}
}

func (r *Resource) accountBusy() {
	now := r.eng.Now()
	r.busyTicks += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Served reports the number of completed jobs.
func (r *Resource) Served() uint64 { return r.served }

// QueueLen reports the current number of waiting jobs.
func (r *Resource) QueueLen() int { return r.queue2len() }

func (r *Resource) queue2len() int { return len(r.queue) }

// MaxQueueLen reports the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueueLen }

// Utilization reports the time-averaged fraction of capacity in use since
// the simulation began, in [0,1].
func (r *Resource) Utilization() float64 {
	r.accountBusy()
	total := Time(r.capacity) * r.eng.Now()
	if total == 0 {
		return 0
	}
	return float64(r.busyTicks) / float64(total)
}

// MeanWait reports the mean ticks jobs spent queued before service.
func (r *Resource) MeanWait() float64 {
	if r.served == 0 && r.inUse == 0 {
		return 0
	}
	n := r.served + uint64(r.inUse)
	return float64(r.waitTicks) / float64(n)
}
