package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events", e.Pending())
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %d, want 150", at)
	}
	if e.Now() != 150 {
		t.Fatalf("clock at %d, want 150", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported false for live event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	// Run can resume afterwards.
	e.Run()
	if count != 10 {
		t.Fatalf("resume ran to %d events, want 10", count)
	}
}

func TestRunUntilRespectsLimit(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %v", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("resumed run fired %v", fired)
	}
}

func TestStepExecutesOneEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	id := e.At(99, func() {})
	e.Cancel(id)
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

// Property: for any multiset of timestamps, execution order is the sorted
// order of the timestamps.
func TestPropertyExecutionIsSorted(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { got = append(got, at) })
		}
		e.Run()
		want := make([]Time, len(stamps))
		for i, s := range stamps {
			want[i] = Time(s)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceServesFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "alu", 1)
	var order []int
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		r.Submit(10, func() {
			order = append(order, i)
			times = append(times, e.Now())
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("service order %v", order)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completion times %v, want %v", times, want)
		}
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "alu", 4)
	done := 0
	for i := 0; i < 4; i++ {
		r.Submit(10, func() { done++ })
	}
	end := e.Run()
	if end != 10 {
		t.Fatalf("4 jobs on capacity-4 resource finished at %d, want 10", end)
	}
	if done != 4 {
		t.Fatalf("done=%d", done)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "alu", 2)
	r.Submit(10, nil)
	// Pad simulation to t=20 with an idle marker event.
	e.At(20, func() {})
	e.Run()
	// One slot busy for 10 ticks out of 2 slots * 20 ticks = 0.25.
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization %f, want 0.25", u)
	}
}

func TestResourceMeanWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "alu", 1)
	for i := 0; i < 3; i++ {
		r.Submit(10, nil)
	}
	e.Run()
	// Waits are 0, 10, 20 -> mean 10.
	if w := r.MeanWait(); w != 10 {
		t.Fatalf("mean wait %f, want 10", w)
	}
	if r.Served() != 3 {
		t.Fatalf("served %d, want 3", r.Served())
	}
	// The first job enters service immediately, so at most two jobs wait.
	if r.MaxQueueLen() != 2 {
		t.Fatalf("max queue len %d, want 2", r.MaxQueueLen())
	}
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

// Property: with capacity c and n identical jobs of length L, the makespan
// is ceil(n/c)*L.
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(n8, c8, l8 uint8) bool {
		n := int(n8%50) + 1
		c := int(c8%8) + 1
		l := Time(l8%100) + 1
		e := NewEngine()
		r := NewResource(e, "r", c)
		for i := 0; i < n; i++ {
			r.Submit(l, nil)
		}
		end := e.Run()
		waves := Time((n + c - 1) / c)
		return end == waves*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRandomEventsTerminate(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(42))
	remaining := 5000
	var spawn func()
	spawn = func() {
		if remaining == 0 {
			return
		}
		remaining--
		e.After(Time(rng.Intn(100)), spawn)
	}
	for i := 0; i < 10; i++ {
		spawn()
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

func TestCancelFromWithinHandler(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	e.At(5, func() {
		if !e.Cancel(id) {
			t.Error("in-handler cancel failed")
		}
	})
	e.Run()
	if fired {
		t.Fatal("cancelled event fired anyway")
	}
}

func TestRunUntilBeforeFirstEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(50)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestSelfRescheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	end := e.Run()
	if count != 5 || end != 50 {
		t.Fatalf("count=%d end=%d", count, end)
	}
}
