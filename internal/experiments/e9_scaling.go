package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/network"
	"repro/internal/workloads"
)

// E9 — scaling of the motivating workloads (§2.1: "direct support for
// lightweight processing of irregular time-varying sparse data structure
// parallelism": trees, directed graphs, particle in cell). Strong scaling
// of Barnes–Hut forces, semantic-net BFS, and PIC under ParalleX vs the
// CSP baseline across machine widths. Per-task costs come from the real
// data structures (tree traversal counts, vertex visits, particle counts);
// execution is timed slot occupancy so the scaling shape is measurable on
// any host (see virtualwork.go).
type E9Result struct {
	Workload string
	P        int
	PxTime   time.Duration
	CSPTime  time.Duration
	PxSpeed  float64 // speedup vs P=widths[0] ParalleX
	CSPSpeed float64
}

// RunE9 runs all three workloads at each width.
func RunE9(widths []int, nBodies, nVerts, nParts int) []E9Result {
	var out []E9Result
	var basePx, baseCSP [3]time.Duration

	const nbodyWork = 300 * time.Millisecond
	bodies := workloads.GenerateClusteredBodies(nBodies, 0.4, 31)
	costs := bodyCosts(bodies, 0.3, nbodyWork)

	const visitCost = 200 * time.Microsecond
	g := workloads.GenerateGraph(nVerts, 5, 32)

	const picChunkWork = 150 * time.Millisecond // total deposit+push per step

	for wi, P := range widths {
		// --- Barnes–Hut (tree) ---
		rt := core.New(core.Config{Localities: P, WorkersPerLocality: 1, Stealing: true})
		chunks := P * 16
		start := time.Now()
		done := make(chan struct{}, chunks)
		for c := 0; c < chunks; c++ {
			lo := c * nBodies / chunks
			hi := (c + 1) * nBodies / chunks
			var cost time.Duration
			for i := lo; i < hi; i++ {
				cost += costs[i]
			}
			rt.Spawn(c%P, func(ctx *core.Context) {
				virtualWork(cost)
				done <- struct{}{}
			})
		}
		for c := 0; c < chunks; c++ {
			<-done
		}
		px := time.Since(start)
		rt.Shutdown()

		w := csp.NewWorld(P, network.NewIdeal(P))
		rankWork := make([]time.Duration, P)
		for r := 0; r < P; r++ {
			lo := r * nBodies / P
			hi := (r + 1) * nBodies / P
			for i := lo; i < hi; i++ {
				rankWork[r] += costs[i]
			}
		}
		start = time.Now()
		w.Run(func(r *csp.Rank) {
			virtualWork(rankWork[r.ID()])
			r.Barrier()
		})
		cs := time.Since(start)
		if wi == 0 {
			basePx[0], baseCSP[0] = px, cs
		}
		out = append(out, E9Result{"nbody", P, px, cs,
			float64(basePx[0]) / float64(px), float64(baseCSP[0]) / float64(cs)})

		// --- BFS (directed graph / semantic net) ---
		rt = core.New(core.Config{Localities: P, WorkersPerLocality: 2})
		workloads.RegisterGraphActions(rt)
		dg := workloads.NewDistGraphWithCost(rt, g, visitCost)
		start = time.Now()
		dg.BFSParalleX(0)
		px = time.Since(start)
		rt.Shutdown()
		w = csp.NewWorld(P, network.NewIdeal(P))
		start = time.Now()
		workloads.BFSCSPWithCost(w, g, 0, visitCost)
		cs = time.Since(start)
		if wi == 0 {
			basePx[1], baseCSP[1] = px, cs
		}
		out = append(out, E9Result{"bfs", P, px, cs,
			float64(basePx[1]) / float64(px), float64(baseCSP[1]) / float64(cs)})

		// --- PIC (particle in cell) ---
		// Deposit+push chunk costs scale with particle count; the field
		// solve is the serial fraction at locality 0 (Amdahl term).
		perParticle := picChunkWork / time.Duration(nParts)
		solveCost := 5 * time.Millisecond
		rt = core.New(core.Config{Localities: P, WorkersPerLocality: 1})
		chunks = P * 8
		gateN := 2 * chunks // deposit wave + push wave
		start = time.Now()
		doneC := make(chan struct{}, gateN)
		depositDone := make(chan struct{}, chunks)
		for c := 0; c < chunks; c++ {
			lo := c * nParts / chunks
			hi := (c + 1) * nParts / chunks
			cost := perParticle * time.Duration(hi-lo) / 2
			rt.Spawn(c%P, func(ctx *core.Context) {
				virtualWork(cost)
				depositDone <- struct{}{}
				doneC <- struct{}{}
			})
		}
		for c := 0; c < chunks; c++ {
			<-depositDone
		}
		// Serial solve.
		solveFin := make(chan struct{})
		rt.Spawn(0, func(ctx *core.Context) {
			virtualWork(solveCost)
			close(solveFin)
		})
		<-solveFin
		for c := 0; c < chunks; c++ {
			lo := c * nParts / chunks
			hi := (c + 1) * nParts / chunks
			cost := perParticle * time.Duration(hi-lo) / 2
			rt.Spawn(c%P, func(ctx *core.Context) {
				virtualWork(cost)
				doneC <- struct{}{}
			})
		}
		for c := 0; c < gateN; c++ {
			<-doneC
		}
		px = time.Since(start)
		rt.Shutdown()

		w = csp.NewWorld(P, network.NewIdeal(P))
		start = time.Now()
		w.Run(func(r *csp.Rank) {
			lo := r.ID() * nParts / P
			hi := (r.ID() + 1) * nParts / P
			virtualWork(perParticle * time.Duration(hi-lo) / 2)
			r.Barrier()
			if r.ID() == 0 {
				virtualWork(solveCost) // redundant solve serialized at root
			}
			r.Barrier()
			virtualWork(perParticle * time.Duration(hi-lo) / 2)
			r.Barrier()
		})
		cs = time.Since(start)
		if wi == 0 {
			basePx[2], baseCSP[2] = px, cs
		}
		out = append(out, E9Result{"pic", P, px, cs,
			float64(basePx[2]) / float64(px), float64(baseCSP[2]) / float64(cs)})
	}
	return out
}

// TableE9 renders the results.
func TableE9(results []E9Result) Table {
	t := Table{
		Title:   "E9 strong scaling of the motivating workloads (speedups vs each model's first width)",
		Columns: []string{"workload", "P", "parallex", "px speedup", "csp", "csp speedup"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Workload, fmt.Sprintf("%d", r.P),
			fdur(r.PxTime), fmt.Sprintf("%.2fx", r.PxSpeed),
			fdur(r.CSPTime), fmt.Sprintf("%.2fx", r.CSPSpeed),
		})
	}
	return t
}
