package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/locality"
	"repro/internal/network"
	"repro/internal/workloads"
)

// E5 — starvation and load balance (§2.1: starvation is "idle cycles …
// caused either due to inadequate program parallelism or due to poor load
// balancing"; §2.2: message-driven computing lets localities operate "via
// a work queue model").
//
// Workload: Barnes–Hut forces over a body set where clusterFrac of the
// bodies sit in a dense cluster. Per-body cost is the *real* tree
// traversal count; execution is timed slot occupancy scaled so the total
// nominal work is totalWork. ParalleX splits the bodies into many fine
// chunks served from work queues (optionally stealing); the CSP baseline
// uses a conventional static domain decomposition (spatial stripes), so
// the rank owning the dense cluster's stripe is the critical path.
type E5Result struct {
	ClusterFrac float64
	PxTime      time.Duration
	CSPTime     time.Duration
	// CSPImbalance is max-rank-work / mean-rank-work: 1.0 is perfect.
	CSPImbalance float64
	// PxIdleMean is the mean locality starvation fraction under ParalleX.
	PxIdleMean float64
}

// bodyCosts computes the per-body virtual cost from real tree traversals,
// scaled so the costs sum to totalWork.
func bodyCosts(bodies []workloads.Body, theta float64, totalWork time.Duration) []time.Duration {
	tree := workloads.BuildBHTree(bodies, theta)
	raw := make([]int, len(bodies))
	sum := 0
	for i := range bodies {
		raw[i] = tree.TraversalCost(&bodies[i])
		sum += raw[i]
	}
	costs := make([]time.Duration, len(bodies))
	for i, r := range raw {
		costs[i] = time.Duration(int64(totalWork) * int64(r) / int64(sum))
	}
	return costs
}

// RunE5 sweeps the skew fraction.
func RunE5(fracs []float64, nBodies, locs int, policy locality.Policy, stealing bool) []E5Result {
	const totalWork = 400 * time.Millisecond // nominal aggregate compute
	out := make([]E5Result, 0, len(fracs))
	for _, frac := range fracs {
		res := E5Result{ClusterFrac: frac}
		bodies := workloads.GenerateClusteredBodies(nBodies, frac, 11)
		costs := bodyCosts(bodies, 0.3, totalWork)

		// ParalleX: many fine chunks on work queues; chunk cost is the sum
		// of its bodies' costs, held as one slot occupancy.
		chunks := locs * 16
		rt := core.New(core.Config{
			Localities:         locs,
			WorkersPerLocality: 1, // one worker per locality isolates balance effects
			Policy:             policy,
			Stealing:           stealing,
		})
		start := time.Now()
		done := make(chan struct{}, chunks)
		for c := 0; c < chunks; c++ {
			lo := c * nBodies / chunks
			hi := (c + 1) * nBodies / chunks
			var cost time.Duration
			for i := lo; i < hi; i++ {
				cost += costs[i]
			}
			rt.Spawn(c%locs, func(ctx *core.Context) {
				virtualWork(cost)
				done <- struct{}{}
			})
		}
		for c := 0; c < chunks; c++ {
			<-done
		}
		res.PxTime = time.Since(start)
		var idleSum float64
		for _, f := range rt.IdleFractions() {
			idleSum += f
		}
		res.PxIdleMean = idleSum / float64(locs)
		rt.Shutdown()

		// CSP static partition: conventional *domain decomposition* — rank
		// r owns the spatial stripe x ∈ [r/P, (r+1)/P). The cluster's
		// density lands almost entirely in one rank's domain, which is the
		// load-balance failure mode the paper attributes to "explicit
		// locality management".
		w := csp.NewWorld(locs, network.NewIdeal(locs))
		rankWork := make([]time.Duration, locs)
		for i := range bodies {
			r := int(bodies[i].X * float64(locs))
			if r < 0 {
				r = 0
			}
			if r >= locs {
				r = locs - 1
			}
			rankWork[r] += costs[i]
		}
		start = time.Now()
		w.Run(func(r *csp.Rank) {
			virtualWork(rankWork[r.ID()])
			r.Barrier()
		})
		res.CSPTime = time.Since(start)
		var max, sum time.Duration
		for _, b := range rankWork {
			if b > max {
				max = b
			}
			sum += b
		}
		if sum > 0 {
			res.CSPImbalance = float64(max) * float64(locs) / float64(sum)
		}
		out = append(out, res)
	}
	return out
}

// TableE5 renders the results.
func TableE5(results []E5Result) Table {
	t := Table{
		Title:   "E5 starvation: skewed N-body, work-queue ParalleX vs static CSP partition",
		Columns: []string{"cluster frac", "parallex", "csp", "csp/px", "csp imbalance", "px idle"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmtFrac(r.ClusterFrac), fdur(r.PxTime), fdur(r.CSPTime),
			fratio(r.CSPTime, r.PxTime), fmtX(r.CSPImbalance), fmtFrac(r.PxIdleMean),
		})
	}
	return t
}
