package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/locality"
)

// Each experiment's test checks the paper-predicted *shape* (who wins,
// roughly by how much) with conservative margins so the suite is robust on
// loaded CI machines.

func TestE1FigureRenders(t *testing.T) {
	fig := RunE1()
	for _, want := range []string{"Data Vortex", "MIND", "Penultimate Store", "dataflow accelerator"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}

func TestE2DesignPointPasses(t *testing.T) {
	rep, ok := RunE2()
	if !ok {
		t.Fatalf("design point fails reproduction:\n%s", rep)
	}
}

func TestE3ParalleXHidesLatency(t *testing.T) {
	rs := RunE3([]time.Duration{500 * time.Microsecond}, 4, 50, nil)
	r := rs[0]
	// Correctness first: every update applied exactly once in both models.
	if r.PxApplied != 4*50 || r.CSPApplied != 4*50 {
		t.Fatalf("lost updates: px=%d csp=%d want 200", r.PxApplied, r.CSPApplied)
	}
	// Paper shape: blocking request/ack exposes the round trip per update;
	// parcels overlap them. Demand at least a 3x win at 500µs latency.
	if float64(r.CSP) < 3*float64(r.ParalleX) {
		t.Fatalf("latency hiding shape violated: px=%v csp=%v", r.ParalleX, r.CSP)
	}
}

func TestE3AdvantageTracksUpdateCount(t *testing.T) {
	// Both makespans are linear in latency — ParalleX's floor is ~one
	// exposed latency while CSP pays ~2 per update — so the ratio should
	// sit near 2K and grow with K, the number of round trips hidden.
	const lat = 1 * time.Millisecond
	few := RunE3([]time.Duration{lat}, 4, 10, nil)[0]
	many := RunE3([]time.Duration{lat}, 4, 40, nil)[0]
	rFew := float64(few.CSP) / float64(few.ParalleX)
	rMany := float64(many.CSP) / float64(many.ParalleX)
	if rFew < 5 {
		t.Fatalf("K=10 ratio %.1fx, want >= 5x", rFew)
	}
	if rMany <= rFew {
		t.Fatalf("advantage did not grow with update count: K=10 %.1fx, K=40 %.1fx", rFew, rMany)
	}
}

func TestE4EfficiencyImprovesWithGrain(t *testing.T) {
	// The fine grain sits below this host's timer floor (~1ms), the coarse
	// grain well above it — the crossover the experiment is about.
	rs := RunE4([]time.Duration{100 * time.Microsecond, 5 * time.Millisecond}, 100, 4, 20*time.Microsecond)
	if rs[1].PxEff <= rs[0].PxEff {
		t.Fatalf("px efficiency not increasing with grain: %.2f -> %.2f", rs[0].PxEff, rs[1].PxEff)
	}
	// Coarse grain must be efficiently exploitable.
	if rs[1].PxEff < 0.5 {
		t.Fatalf("coarse grain efficiency %.2f < 50%%", rs[1].PxEff)
	}
	if g := MinExploitableGrain(rs, true); g < 0 {
		t.Fatal("no exploitable grain found for ParalleX")
	}
}

func TestE5WorkQueueBeatsStaticPartition(t *testing.T) {
	rs := RunE5([]float64{0.6}, 3000, 4, locality.FIFO, true)
	r := rs[0]
	// With 60% of bodies clustered, the static partition's owner rank is
	// the critical path; the work queue should win clearly.
	if float64(r.CSPTime) < 1.2*float64(r.PxTime) {
		t.Fatalf("starvation shape violated: px=%v csp=%v", r.PxTime, r.CSPTime)
	}
	if r.CSPImbalance < 1.5 {
		t.Fatalf("static partition imbalance %.2fx; workload not skewed enough", r.CSPImbalance)
	}
}

func TestE6LCOBeatsBarrierUnderSkew(t *testing.T) {
	rs := RunE6([]float64{8}, 32, 14, 4, time.Millisecond)
	r := rs[0]
	if float64(r.BarrierTime) < 1.1*float64(r.LCOTime) {
		t.Fatalf("LCO shape violated: barrier=%v lco=%v", r.BarrierTime, r.LCOTime)
	}
}

func TestE7PercolationRaisesUtilization(t *testing.T) {
	rs := RunE7([]float64{1.0}, []int{0, 2}, 50, 1000, 2)
	demand, perc := rs[0], rs[1]
	if demand.Depth != 0 || perc.Depth != 2 {
		t.Fatal("unexpected row order")
	}
	if perc.Utilization <= demand.Utilization {
		t.Fatalf("percolation utilization %.3f <= demand %.3f", perc.Utilization, demand.Utilization)
	}
	if perc.SpeedupVsDemand < 1.5 {
		t.Fatalf("speedup %.2fx < 1.5x at fetch=compute", perc.SpeedupVsDemand)
	}
}

func TestE8EchoReadsDominateHomeReads(t *testing.T) {
	rs := RunE8([]time.Duration{300 * time.Microsecond}, 4, 30)
	r := rs[0]
	if float64(r.HomeTime) < 5*float64(r.EchoTime) {
		t.Fatalf("echo shape violated: echo=%v home=%v", r.EchoTime, r.HomeTime)
	}
}

func TestE9ProducesAllRowsAndScales(t *testing.T) {
	rs := RunE9([]int{1, 4}, 600, 400, 4000)
	if len(rs) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs))
	}
	byW := map[string][]E9Result{}
	for _, r := range rs {
		byW[r.Workload] = append(byW[r.Workload], r)
		if r.PxTime <= 0 || r.CSPTime <= 0 {
			t.Fatalf("non-positive time in %+v", r)
		}
	}
	for _, w := range []string{"nbody", "bfs", "pic"} {
		if len(byW[w]) != 2 {
			t.Fatalf("workload %s has %d rows", w, len(byW[w]))
		}
	}
	// The balanced tree workload must show clear strong scaling 1 -> 4.
	nb := byW["nbody"]
	if nb[1].PxSpeed < 2.0 {
		t.Fatalf("nbody ParalleX speedup at P=4 is %.2fx, want >= 2x", nb[1].PxSpeed)
	}
}

func TestE10ProducesBudget(t *testing.T) {
	rs := RunE10(2000)
	names := map[string]bool{}
	for _, r := range rs {
		if r.PerOp <= 0 {
			t.Fatalf("%s: non-positive cost", r.Name)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"thread spawn+run", "future set+get", "parcel local",
		"parcel remote 1-way", "call round trip", "csp msg round trip"} {
		if !names[want] {
			t.Fatalf("missing primitive %q", want)
		}
	}
}

func TestA1AdvantageSurvivesAllNetworks(t *testing.T) {
	rs := RunA1(4, 25, 200*time.Microsecond)
	if len(rs) != 5 {
		t.Fatalf("networks = %d", len(rs))
	}
	for _, r := range rs {
		if r.Network == "ideal" {
			continue // nothing to hide on a free network
		}
		if float64(r.E3.CSP) < 1.5*float64(r.E3.ParalleX) {
			t.Errorf("%s: advantage collapsed: px=%v csp=%v",
				r.Network, r.E3.ParalleX, r.E3.CSP)
		}
	}
}

func TestA2ContinuationsBeatRoundTrips(t *testing.T) {
	rs := RunA2([]int{4}, 4, 300*time.Microsecond, 5)
	r := rs[0]
	// k stages: continuations pay ~k+1 one-way latencies; round trips pay
	// ~2k. Expect a clear win for k=4.
	if r.RoundTripWin < 1.3 {
		t.Fatalf("continuation win %.2fx < 1.3x: with=%v without=%v",
			r.RoundTripWin, r.WithCont, r.WithoutCont)
	}
}

func TestA3StealingHelpsSkewedLoad(t *testing.T) {
	rs := RunA3(2000, 4)
	byName := map[string]time.Duration{}
	for _, r := range rs {
		byName[r.Scheduler] = r.PxTime
	}
	if byName["fifo+steal"] > byName["fifo"]*2 {
		t.Fatalf("stealing pathologically slow: %v vs %v", byName["fifo+steal"], byName["fifo"])
	}
}

func TestA4BalancerBreaksSkew(t *testing.T) {
	rs := RunA4(4, 4, 3, 5)
	byMode := map[string]A4Result{}
	for _, r := range rs {
		byMode[r.Mode] = r
	}
	if r := byMode["off"]; r.Spread != 1 || r.Moves != 0 {
		t.Fatalf("balancing off must leave the skew: spread %d moves %d", r.Spread, r.Moves)
	}
	if r := byMode["manual"]; r.Spread != 4 {
		t.Fatalf("manual placement spread %d, want 4", r.Spread)
	}
	r := byMode["balancer"]
	if r.Spread < 3 {
		t.Fatalf("balancer never broke the skew: spread %d, moves %d", r.Spread, r.Moves)
	}
	// Convergence, not thrash: reaching a 3-way spread needs at least 2
	// moves; the hysteresis/cooldown guards must keep the total bounded.
	if r.Moves < 2 || r.Moves > 12 {
		t.Fatalf("balancer made %d moves for 4 objects, want 2..12", r.Moves)
	}
}

func TestTablesRender(t *testing.T) {
	tab := TableE3([]E3Result{{Latency: time.Millisecond, ParalleX: time.Second, CSP: 2 * time.Second, PxApplied: 10, CSPApplied: 10}})
	s := tab.String()
	if !strings.Contains(s, "E3") || !strings.Contains(s, "2.00x") {
		t.Fatalf("table render:\n%s", s)
	}
	if TableE4(nil).String() == "" || TableE5(nil).String() == "" ||
		TableE6(nil).String() == "" || TableE7(nil).String() == "" ||
		TableE8(nil).String() == "" || TableE9(nil).String() == "" ||
		TableE10(nil).String() == "" || TableA1(nil).String() == "" ||
		TableA2(nil).String() == "" || TableA3(nil).String() == "" ||
		TableA4(nil).String() == "" {
		t.Fatal("empty table rendering")
	}
}

func TestX1PIMSpeedupGrowsWithNetworkCost(t *testing.T) {
	rs := RunX1([]float64{0.1, 5}, 8, 64, 8, 30)
	if rs[0].Speedup > rs[1].Speedup {
		t.Fatalf("PIM advantage shrank with network cost: %.2fx -> %.2fx",
			rs[0].Speedup, rs[1].Speedup)
	}
	if rs[1].Speedup < 3 {
		t.Fatalf("PIM speedup %.2fx at net/row=5, want >= 3x", rs[1].Speedup)
	}
	if TableX1(rs).String() == "" {
		t.Fatal("empty X1 table")
	}
}

func TestX2HierarchicalPercolationComposes(t *testing.T) {
	rs := RunX2([]int{0, 8}, []int{0, 4}, 30)
	byKey := map[[2]int]X2Result{}
	for _, r := range rs {
		byKey[[2]int{r.PSDepth, r.ChipDepth}] = r
	}
	none := byKey[[2]int{0, 0}]
	psOnly := byKey[[2]int{8, 0}]
	both := byKey[[2]int{8, 4}]
	if !(both.Makespan < psOnly.Makespan && psOnly.Makespan < none.Makespan) {
		t.Fatalf("hierarchy not monotone: %d / %d / %d",
			none.Makespan, psOnly.Makespan, both.Makespan)
	}
	if both.Utilization < 0.85 {
		t.Fatalf("deep pipeline utilization %.3f", both.Utilization)
	}
	if TableX2(rs).String() == "" {
		t.Fatal("empty X2 table")
	}
}
