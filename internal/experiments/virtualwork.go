package experiments

import "time"

// The wall-clock experiments model computation as timed occupancy of an
// execution slot (time.Sleep while holding the slot) rather than CPU
// spinning. On a many-core host the two are equivalent for scheduling
// purposes; on a small or single-core CI host spinning serializes in the
// OS and destroys every parallel effect, while timed occupancy preserves
// exactly the phenomena the paper is about — exposed latency, queueing,
// load imbalance, barrier tails. Per-task costs come from the real
// workloads (tree traversal counts, particle counts), only their execution
// is virtualized. EXPERIMENTS.md documents this substitution.

// virtualWork occupies the caller's execution slot for d.
func virtualWork(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// minSleep is the practical timer floor; per-task virtual costs are kept
// comfortably above it so timer jitter stays second-order.
const minSleep = 100 * time.Microsecond
