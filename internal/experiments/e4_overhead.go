package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/network"
)

// E4 — overhead and minimum exploitable granularity (§2.1: "Overhead can
// determine the scalability of a system and the minimum granularity of
// program tasks that can be effectively exploited").
//
// T dynamic tasks of grain g are executed on P localities × W workers.
// ParalleX spawns them as threads (cheap local enqueue + queue service).
// The CSP equivalent of *dynamic* task parallelism is master–worker
// dispatch: the master sends each task descriptor and collects each
// result, paying two messages per task. Task execution is timed slot
// occupancy (see virtualwork.go). Efficiency = ideal / measured; the
// minimum exploitable grain is where efficiency crosses 50%.
type E4Result struct {
	Grain        time.Duration
	Tasks        int
	PxTime       time.Duration
	PxEff        float64
	CSPTime      time.Duration
	CSPEff       float64
	PxPerTaskOvh time.Duration
}

// RunE4 sweeps task grain.
func RunE4(grains []time.Duration, tasks, locs int, lat time.Duration) []E4Result {
	const workersPerLoc = 2
	out := make([]E4Result, 0, len(grains))
	for _, g := range grains {
		res := E4Result{Grain: g, Tasks: tasks}

		// ParalleX.
		rt := core.New(core.Config{
			Localities:         locs,
			WorkersPerLocality: workersPerLoc,
			Net:                network.NewCrossbar(locs, network.Params{InjectionOverhead: lat}),
			Stealing:           true,
		})
		start := time.Now()
		for i := 0; i < tasks; i++ {
			rt.Spawn(i%locs, func(ctx *core.Context) { virtualWork(g) })
		}
		rt.Wait()
		res.PxTime = time.Since(start)
		rt.Shutdown()
		workers := locs * workersPerLoc
		ideal := time.Duration(int64(g) * int64(tasks) / int64(workers))
		if ideal == 0 {
			ideal = 1
		}
		res.PxEff = float64(ideal) / float64(res.PxTime)
		res.PxPerTaskOvh = (res.PxTime - ideal) / time.Duration(tasks)
		if res.PxPerTaskOvh < 0 {
			res.PxPerTaskOvh = 0
		}

		// CSP master–worker: rank 0 dispatches task descriptors; workers
		// execute and acknowledge. Worker count = locs-1 (the master is a
		// dispatcher, as in classic MPI farm codes).
		w := csp.NewWorld(locs, network.NewCrossbar(locs, network.Params{InjectionOverhead: lat}))
		start = time.Now()
		w.Run(func(r *csp.Rank) {
			const taskTag, doneTag, stopTag = 1, 2, 3
			if r.ID() == 0 {
				outstanding := 0
				next := 0
				for p := 1; p < locs && next < tasks; p++ {
					r.Send(p, taskTag, nil)
					next++
					outstanding++
				}
				for outstanding > 0 {
					m := r.Recv(csp.AnySource, doneTag)
					outstanding--
					worker := int(m.(int64))
					if next < tasks {
						r.Send(worker, taskTag, nil)
						next++
						outstanding++
					}
				}
				for p := 1; p < locs; p++ {
					r.Send(p, stopTag, nil)
				}
				return
			}
			for {
				if _, ok := r.TryRecv(csp.AnySource, stopTag); ok {
					return
				}
				if _, ok := r.TryRecv(0, taskTag); ok {
					virtualWork(g)
					r.Send(0, doneTag, int64(r.ID()))
					continue
				}
				time.Sleep(5 * time.Microsecond)
			}
		})
		res.CSPTime = time.Since(start)
		cspWorkers := locs - 1
		if cspWorkers < 1 {
			cspWorkers = 1
		}
		cspIdeal := time.Duration(int64(g) * int64(tasks) / int64(cspWorkers))
		if cspIdeal == 0 {
			cspIdeal = 1
		}
		res.CSPEff = float64(cspIdeal) / float64(res.CSPTime)
		out = append(out, res)
	}
	return out
}

// MinExploitableGrain reports the smallest grain with efficiency >= 0.5,
// or -1 if none qualifies.
func MinExploitableGrain(results []E4Result, px bool) time.Duration {
	for _, r := range results {
		eff := r.CSPEff
		if px {
			eff = r.PxEff
		}
		if eff >= 0.5 {
			return r.Grain
		}
	}
	return -1
}

// TableE4 renders the results.
func TableE4(results []E4Result) Table {
	t := Table{
		Title:   "E4 overhead vs granularity: dynamic tasks, ParalleX spawn vs CSP master-worker",
		Columns: []string{"grain", "px time", "px eff", "px ovh/task", "csp time", "csp eff"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Grain.String(), fdur(r.PxTime),
			pct(r.PxEff), r.PxPerTaskOvh.String(),
			fdur(r.CSPTime), pct(r.CSPEff),
		})
	}
	return t
}

// pct renders an efficiency in [0,1] as a percentage, clamping rounding
// artifacts above 100%.
func pct(f float64) string {
	if f > 1 {
		f = 1
	}
	return fmt.Sprintf("%.1f%%", f*100)
}
