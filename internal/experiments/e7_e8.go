package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/echo"
	"repro/internal/gilgamesh"
	"repro/internal/network"
	"repro/internal/sim"
)

// E7 — percolation (§2.2: prestaging protects a precious resource from
// exposed fetch latency). Runs on the Gilgamesh chip DES at cycle
// resolution: a task stream whose operand blocks take fetchCycles to stage
// against computeCycles of accelerator work, across percolation depths
// (A4) and fetch/compute ratios.
type E7Result struct {
	FetchOverCompute float64
	Depth            int
	Makespan         sim.Time
	Utilization      float64
	SpeedupVsDemand  float64
}

// RunE7 sweeps ratio × depth on the chip simulator.
func RunE7(ratios []float64, depths []int, nTasks int, computeCycles sim.Time, channels int) []E7Result {
	var out []E7Result
	for _, ratio := range ratios {
		chip := gilgamesh.ChipSim{
			FetchCycles:   sim.Time(float64(computeCycles) * ratio),
			ComputeCycles: computeCycles,
			FetchChannels: channels,
		}
		demand := chip.RunStream(nTasks, 0)
		for _, d := range depths {
			st := chip.RunStream(nTasks, d)
			out = append(out, E7Result{
				FetchOverCompute: ratio,
				Depth:            d,
				Makespan:         st.Makespan,
				Utilization:      st.Utilization(),
				SpeedupVsDemand:  float64(demand.Makespan) / float64(st.Makespan),
			})
		}
	}
	return out
}

// TableE7 renders the results.
func TableE7(results []E7Result) Table {
	t := Table{
		Title:   "E7 percolation on the Gilgamesh chip DES: accelerator utilization vs prestage depth (A4)",
		Columns: []string{"fetch/compute", "depth", "makespan(cyc)", "accel util", "speedup vs demand"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", r.FetchOverCompute), fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Makespan), fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.2fx", r.SpeedupVsDemand),
		})
	}
	return t
}

// E8 — echo copy semantics (§2.2: overlap of coherency verification with
// continued computation; many readers of one writable variable). R reads
// per locality against occasional writes: echo reads are local memory
// accesses, home-variable reads pay a round trip each.
type E8Result struct {
	Latency      time.Duration
	Readers      int
	ReadsEach    int
	EchoTime     time.Duration
	HomeTime     time.Duration
	EchoReadMean time.Duration
	HomeReadMean time.Duration
}

// RunE8 measures both protocols.
func RunE8(latencies []time.Duration, locs, readsEach int) []E8Result {
	out := make([]E8Result, 0, len(latencies))
	for _, lat := range latencies {
		res := E8Result{Latency: lat, Readers: locs, ReadsEach: readsEach}
		rt := core.New(core.Config{
			Localities:         locs,
			WorkersPerLocality: 4,
			Net:                network.NewCrossbar(locs, network.Params{InjectionOverhead: lat}),
		})
		echo.RegisterActions(rt)
		members := make([]int, locs)
		for i := range members {
			members[i] = i
		}
		ev, err := echo.NewVar(rt, int64(1), members, 2)
		if err != nil {
			panic(err)
		}
		// One write settles before the read storm (the steady-state
		// many-reader interval the construct is for).
		if f, err := ev.Write(0, int64(2)); err == nil {
			f.Get()
		}
		start := time.Now()
		gate := make(chan struct{}, locs)
		for i := 0; i < locs; i++ {
			i := i
			rt.Spawn(i, func(ctx *core.Context) {
				for k := 0; k < readsEach; k++ {
					if _, _, err := ev.ReadAt(i); err != nil {
						panic(err)
					}
				}
				gate <- struct{}{}
			})
		}
		for i := 0; i < locs; i++ {
			<-gate
		}
		res.EchoTime = time.Since(start)
		res.EchoReadMean = res.EchoTime / time.Duration(locs*readsEach)

		hv, err := echo.NewHomeVar(rt, 0, int64(2))
		if err != nil {
			panic(err)
		}
		start = time.Now()
		for i := 0; i < locs; i++ {
			i := i
			rt.Spawn(i, func(ctx *core.Context) {
				for k := 0; k < readsEach; k++ {
					if _, err := hv.ReadFrom(i); err != nil {
						panic(err)
					}
				}
				gate <- struct{}{}
			})
		}
		for i := 0; i < locs; i++ {
			<-gate
		}
		res.HomeTime = time.Since(start)
		res.HomeReadMean = res.HomeTime / time.Duration(locs*readsEach)
		rt.Shutdown()
		out = append(out, res)
	}
	return out
}

// TableE8 renders the results.
func TableE8(results []E8Result) Table {
	t := Table{
		Title:   "E8 echo copy semantics: local-copy reads vs home-node round trips",
		Columns: []string{"latency", "echo total", "home total", "home/echo", "echo ns/read", "home ns/read"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Latency.String(), fdur(r.EchoTime), fdur(r.HomeTime),
			fratio(r.HomeTime, r.EchoTime),
			fmt.Sprintf("%d", r.EchoReadMean.Nanoseconds()),
			fmt.Sprintf("%d", r.HomeReadMean.Nanoseconds()),
		})
	}
	return t
}
