package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lco"
)

// E6 — LCOs vs global barriers (§2.2: "LCOs eliminate most uses of global
// barriers greatly freeing the dynamic adaptive flexibility of parallel
// processing and relaxing the over constraining operation imposed by
// barriers").
//
// Workload: E elements × R phases, one element per execution slot so
// synchronization — not scheduling — is the only variable. Element i's
// phase-r task depends only on its neighborhood {i-1, i, i+1} at phase
// r-1 (a stencil dependence). Task times vary pseudo-randomly per
// (element, phase) with the given max/min skew, modelling the dynamic
// imbalance (convergence rates, refinement, particle motion) that real
// phased codes exhibit.
//
// Barrier discipline: every phase costs the *maximum* task time of that
// phase — R × E[max of E draws]. LCO discipline: each task fires when its
// three neighbors finish, so slack flows between elements and the makespan
// approaches the heaviest dependence path, which concentrates near
// R × mean. The gap is the cost of the barrier's over-constraint.
type E6Result struct {
	Skew         float64 // max/min task time ratio
	BarrierTime  time.Duration
	LCOTime      time.Duration
	CriticalPath time.Duration // mean-cost path length (LCO's target)
}

// e6TaskTime is the deterministic pseudo-random task cost for (element,
// phase): base × uniform[1, skew) from a hash of (e, r).
func e6TaskTime(e, r int, skew float64, base time.Duration) time.Duration {
	h := uint32(e)*2654435761 + uint32(r)*40503 + 12345
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	u := float64(h%10000) / 10000.0
	return time.Duration(float64(base) * (1 + (skew-1)*u))
}

// RunE6 compares the two disciplines at each skew. Worker counts are
// sized so every element owns an execution slot: synchronization, not
// scheduling, is the only variable.
func RunE6(skews []float64, elements, phases, locs int, base time.Duration) []E6Result {
	workers := elements / locs
	if workers < 1 {
		workers = 1
	}
	out := make([]E6Result, 0, len(skews))
	for _, skew := range skews {
		res := E6Result{Skew: skew}

		// Mean-cost path estimate: the average column sum, the scale the
		// LCO schedule should approach.
		var meanPath time.Duration
		for e := 0; e < elements; e++ {
			var col time.Duration
			for r := 0; r < phases; r++ {
				col += e6TaskTime(e, r, skew, base)
			}
			meanPath += col
		}
		res.CriticalPath = meanPath / time.Duration(elements)

		// Barrier discipline.
		rtB := core.New(core.Config{Localities: locs, WorkersPerLocality: workers})
		bar := lco.NewBarrier(elements)
		gateB := lco.NewAndGate(elements)
		start := time.Now()
		for e := 0; e < elements; e++ {
			e := e
			rtB.Spawn(e%locs, func(ctx *core.Context) {
				for r := 0; r < phases; r++ {
					virtualWork(e6TaskTime(e, r, skew, base))
					barArrive(ctx, bar)
				}
				gateB.Signal()
			})
		}
		gateB.Wait()
		res.BarrierTime = time.Since(start)
		rtB.Shutdown()

		// LCO discipline: metathread per (element, phase) guarded by its
		// three phase-(r-1) neighbors. Tasks run phases r = 0..phases-1,
		// exactly matching the barrier version's work.
		rtL := core.New(core.Config{Localities: locs, WorkersPerLocality: workers})
		gates := make([][]*lco.AndGate, phases)
		done := lco.NewAndGate(elements)
		for r := 1; r < phases; r++ {
			gates[r] = make([]*lco.AndGate, elements)
			for e := 0; e < elements; e++ {
				deps := neighborCount(e, elements)
				gates[r][e] = lco.NewAndGate(deps)
			}
		}
		var fire func(r, e int)
		fire = func(r, e int) {
			rtL.Spawn(e%locs, func(ctx *core.Context) {
				virtualWork(e6TaskTime(e, r, skew, base))
				if r == phases-1 {
					done.Signal()
					return
				}
				// Signal the phase-(r+1) gates of the neighborhood.
				for _, ne := range neighborhood(e, elements) {
					gates[r+1][ne].Signal()
				}
			})
		}
		// Arm metathread firing: when gate (r,e) fires, run task (r,e).
		for r := 1; r < phases; r++ {
			for e := 0; e < elements; e++ {
				r, e := r, e
				gates[r][e].OnFire(func() { fire(r, e) })
			}
		}
		start = time.Now()
		for e := 0; e < elements; e++ {
			fire(0, e)
		}
		done.Wait()
		res.LCOTime = time.Since(start)
		rtL.Shutdown()

		out = append(out, res)
	}
	return out
}

// barArrive suspends the thread's execution slot while blocked at the
// barrier so other elements on the locality can proceed.
func barArrive(ctx *core.Context, bar *lco.Barrier) {
	fut := lco.NewFuture()
	go func() {
		bar.Arrive()
		fut.Set(nil)
	}()
	ctx.Await(fut)
}

func neighborhood(e, n int) []int {
	out := []int{e}
	if e > 0 {
		out = append(out, e-1)
	}
	if e < n-1 {
		out = append(out, e+1)
	}
	return out
}

// neighborCount reports how many phase-(r-1) tasks signal element e's gate:
// its own column plus existing neighbors.
func neighborCount(e, n int) int {
	return len(neighborhood(e, n))
}

// TableE6 renders the results.
func TableE6(results []E6Result) Table {
	t := Table{
		Title:   "E6 dataflow LCOs vs global barriers: skewed phased computation",
		Columns: []string{"skew", "barrier", "lco", "barrier/lco", "critical path"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0fx", r.Skew), fdur(r.BarrierTime), fdur(r.LCOTime),
			fratio(r.BarrierTime, r.LCOTime), fdur(r.CriticalPath),
		})
	}
	return t
}
