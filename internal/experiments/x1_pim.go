package experiments

import (
	"fmt"

	"repro/internal/gilgamesh"
	"repro/internal/sim"
)

// X1 — MIND processor-in-memory vs conventional load/store (§3.2: at low
// temporal locality "an advanced Processor in Memory architecture called
// 'MIND' has been developed to provide short latencies and very high
// memory bandwidth with in-memory threads"). An extension experiment over
// the cycle-level MIND model: the speedup of moving threads into memory as
// a function of how expensive the chip interconnect is relative to a DRAM
// row access.
type X1Result struct {
	NetOverRow  float64
	PIMMakespan sim.Time
	LSMakespan  sim.Time
	Speedup     float64
	PIMBankBusy float64
}

// RunX1 sweeps the network/row cost ratio.
func RunX1(ratios []float64, banks, txns, accesses int, rowCycles sim.Time) []X1Result {
	out := make([]X1Result, 0, len(ratios))
	for _, ratio := range ratios {
		m := gilgamesh.MINDSim{
			Banks:         banks,
			NetCycles:     sim.Time(float64(rowCycles) * ratio),
			RowCycles:     rowCycles,
			ComputeCycles: rowCycles / 3,
		}
		pim := m.RunPIM(txns, accesses)
		ls := m.RunLoadStore(txns, accesses)
		out = append(out, X1Result{
			NetOverRow:  ratio,
			PIMMakespan: pim.Makespan,
			LSMakespan:  ls.Makespan,
			Speedup:     float64(ls.Makespan) / float64(pim.Makespan),
			PIMBankBusy: pim.BankBusy,
		})
	}
	return out
}

// TableX1 renders the results.
func TableX1(results []X1Result) Table {
	t := Table{
		Title:   "X1 MIND in-memory threads vs load/store processor (cycle-level DES)",
		Columns: []string{"net/row", "pim makespan", "load/store", "speedup", "pim bank busy"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", r.NetOverRow),
			fmt.Sprintf("%d", r.PIMMakespan), fmt.Sprintf("%d", r.LSMakespan),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.3f", r.PIMBankBusy),
		})
	}
	return t
}

// X2 — hierarchical percolation across the §3 memory hierarchy: operands
// start in the Penultimate Store and must traverse two staging levels
// (system: PS → chip over the Data Vortex; chip: MIND → accelerator).
// An extension experiment measuring how prestage depths compose.
type X2Result struct {
	PSDepth     int
	ChipDepth   int
	Makespan    sim.Time
	Utilization float64
	Speedup     float64 // vs fully-demand (0,0)
}

// RunX2 sweeps the two depths.
func RunX2(psDepths, chipDepths []int, tasks int) []X2Result {
	s := gilgamesh.SystemSim{
		PSFetchCycles:   400,
		ChipFetchCycles: 50,
		ComputeCycles:   100,
		PSChannels:      4,
		ChipChannels:    2,
	}
	base := s.RunStream(tasks, 0, 0)
	var out []X2Result
	for _, d1 := range psDepths {
		for _, d2 := range chipDepths {
			st := s.RunStream(tasks, d1, d2)
			out = append(out, X2Result{
				PSDepth: d1, ChipDepth: d2,
				Makespan:    st.Makespan,
				Utilization: st.Utilization,
				Speedup:     float64(base.Makespan) / float64(st.Makespan),
			})
		}
	}
	return out
}

// TableX2 renders the results.
func TableX2(results []X2Result) Table {
	t := Table{
		Title:   "X2 hierarchical percolation: Penultimate Store -> chip -> accelerator",
		Columns: []string{"ps depth", "chip depth", "makespan(cyc)", "accel util", "speedup"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.PSDepth), fmt.Sprintf("%d", r.ChipDepth),
			fmt.Sprintf("%d", r.Makespan), fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t
}
