package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/network"
	"repro/internal/parcel"
)

// E3 — latency hiding (§2.2 parcels: message-driven computing "largely
// circumvents idle cycles due to blocking on remote access delays").
//
// Workload: P actors each apply K increments to remote counters in a
// cyclic-shift pattern (actor i's k-th update goes to owner (i+k+1) mod P,
// so every update is remote and traffic is uniform).
//
// ParalleX: all K·P updates travel as fire-and-forget parcels; the
// makespan is time to quiescence. In-flight parcels overlap, hiding
// latency. CSP: the canonical two-sided equivalent — each round, every
// rank sends one request and blocks for the acknowledgement, exposing a
// full round trip per update.
type E3Result struct {
	Latency    time.Duration
	ParalleX   time.Duration
	CSP        time.Duration
	PxApplied  int64
	CSPApplied int64
}

// ActionAdd increments a counter object.
const ActionAdd = "exp.counter.add"

// RegisterE3Actions installs the counter action.
func RegisterE3Actions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionAdd, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		target.(*atomic.Int64).Add(1)
		return nil, nil
	})
}

// RunE3 measures both runtimes at each latency. netFor builds the network
// model for a given latency (the A1 ablation swaps this).
func RunE3(latencies []time.Duration, locs, updatesPerActor int,
	netFor func(n int, lat time.Duration) network.Model) []E3Result {
	if netFor == nil {
		netFor = func(n int, lat time.Duration) network.Model {
			return network.NewCrossbar(n, network.Params{InjectionOverhead: lat})
		}
	}
	out := make([]E3Result, 0, len(latencies))
	for _, lat := range latencies {
		res := E3Result{Latency: lat}

		// ParalleX side.
		rt := core.New(core.Config{
			Localities:         locs,
			WorkersPerLocality: 4,
			Net:                netFor(locs, lat),
		})
		RegisterE3Actions(rt)
		counters := make([]*atomic.Int64, locs)
		gids := make([]agas.GID, locs)
		for i := range counters {
			counters[i] = &atomic.Int64{}
			gids[i] = rt.NewDataAt(i, counters[i])
		}
		start := time.Now()
		for i := 0; i < locs; i++ {
			i := i
			rt.Spawn(i, func(ctx *core.Context) {
				for k := 0; k < updatesPerActor; k++ {
					owner := (i + k + 1) % locs
					ctx.Send(parcel.New(gids[owner], ActionAdd, nil))
				}
			})
		}
		rt.Wait()
		res.ParalleX = time.Since(start)
		for _, c := range counters {
			res.PxApplied += c.Load()
		}
		rt.Shutdown()

		// CSP side: request/ack per update.
		w := csp.NewWorld(locs, netFor(locs, lat))
		cspCounters := make([]atomic.Int64, locs)
		start = time.Now()
		w.Run(func(r *csp.Rank) {
			const reqTag, ackTag = 1, 2
			for k := 0; k < updatesPerActor; k++ {
				owner := (r.ID() + k + 1) % locs
				requester := ((r.ID()-k-1)%locs + locs) % locs
				r.Send(owner, reqTag, nil)
				// Serve the symmetric incoming request of this round, then
				// collect the ack — the blocking receive exposes latency.
				r.Recv(csp.AnySource, reqTag)
				cspCounters[r.ID()].Add(1)
				r.Send(requester, ackTag, nil)
				r.Recv(csp.AnySource, ackTag)
			}
		})
		res.CSP = time.Since(start)
		for i := range cspCounters {
			res.CSPApplied += cspCounters[i].Load()
		}
		out = append(out, res)
	}
	return out
}

// TableE3 renders the results.
func TableE3(results []E3Result) Table {
	t := Table{
		Title:   "E3 latency hiding: remote updates, ParalleX parcels vs CSP request/ack",
		Columns: []string{"latency", "parallex", "csp", "csp/px", "px applied", "csp applied"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Latency.String(), fdur(r.ParalleX), fdur(r.CSP),
			fratio(r.CSP, r.ParalleX),
			fmt.Sprintf("%d", r.PxApplied), fmt.Sprintf("%d", r.CSPApplied),
		})
	}
	return t
}
