package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/lco"
	"repro/internal/litlx"
	"repro/internal/network"
	"repro/internal/parcel"
)

// E10 — primitive operation costs (§2.2 threads are "ephemeral … near
// fine grain"; §2.3 LITL-X manages overhead). The overhead budget of the
// runtime: cost per thread spawn, future cycle, LCO signal, local and
// remote parcel, atomic section, and a CSP message for comparison. These
// set the minimum exploitable granularity measured in E4.
type E10Result struct {
	Name   string
	PerOp  time.Duration
	Count  int
	Remark string
}

// RunE10 measures each primitive with count iterations.
func RunE10(count int) []E10Result {
	var out []E10Result
	mk := func(name string, n int, remark string, fn func(n int)) {
		start := time.Now()
		fn(n)
		el := time.Since(start)
		out = append(out, E10Result{Name: name, PerOp: el / time.Duration(n), Count: n, Remark: remark})
	}

	rt := core.New(core.Config{Localities: 2, WorkersPerLocality: 4})
	defer rt.Shutdown()
	litlx.RegisterActions(rt)
	api := litlx.New(rt)
	localObj := rt.NewDataAt(0, struct{}{})
	remoteObj := rt.NewDataAt(1, struct{}{})

	mk("thread spawn+run", count, "Spawn to same locality, quiesce at end", func(n int) {
		for i := 0; i < n; i++ {
			rt.Spawn(0, func(*core.Context) {})
		}
		rt.Wait()
	})
	mk("future set+get", count, "single-assignment LCO cycle", func(n int) {
		for i := 0; i < n; i++ {
			f := lco.NewFuture()
			f.Set(i)
			f.Get()
		}
	})
	mk("andgate signal", count, "join-counter decrement", func(n int) {
		g := lco.NewAndGate(n)
		for i := 0; i < n; i++ {
			g.Signal()
		}
		g.Wait()
	})
	mk("dataflow 2-in fire", count, "2-input template supply+fire", func(n int) {
		for i := 0; i < n; i++ {
			d := lco.NewDataflow(2, func(in []any) (any, error) { return nil, nil })
			d.Supply(0, nil)
			d.Supply(1, nil)
		}
	})
	mk("parcel local", count, "same-locality delivery (no wire)", func(n int) {
		for i := 0; i < n; i++ {
			rt.SendFrom(0, parcel.New(localObj, core.ActionNop, nil))
		}
		rt.Wait()
	})
	mk("parcel remote 1-way", count, "cross-locality, serialized, ideal net", func(n int) {
		for i := 0; i < n; i++ {
			rt.SendFrom(0, parcel.New(remoteObj, core.ActionNop, nil))
		}
		rt.Wait()
	})
	mk("call round trip", count/4+1, "split-phase call + continuation back", func(n int) {
		for i := 0; i < n; i++ {
			rt.CallFrom(0, remoteObj, core.ActionNop, nil).Get()
		}
	})
	mk("atomic section", count/4+1, "LITL-X section at owner locality", func(n int) {
		at := api.NewAtomic(1, int64(0))
		for i := 0; i < n; i++ {
			at.Do(0, func(s any) (any, any, error) { return s, nil, nil }).Get()
		}
	})

	w := csp.NewWorld(2, network.NewIdeal(2))
	mk("csp msg round trip", count/4+1, "two-sided send+recv echo", func(n int) {
		w.Run(func(r *csp.Rank) {
			for i := 0; i < n; i++ {
				if r.ID() == 0 {
					r.Send(1, 1, nil)
					r.Recv(1, 2)
				} else {
					r.Recv(0, 1)
					r.Send(0, 2, nil)
				}
			}
		})
	})
	return out
}

// TableE10 renders the results.
func TableE10(results []E10Result) Table {
	t := Table{
		Title:   "E10 primitive costs (the overhead budget behind E4's minimum granularity)",
		Columns: []string{"primitive", "ns/op", "ops", "notes"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.PerOp.Nanoseconds()),
			fmt.Sprintf("%d", r.Count), r.Remark,
		})
	}
	return t
}
