package experiments

import (
	"fmt"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/lco"
	"repro/internal/locality"
	"repro/internal/network"
	"repro/internal/parcel"
)

// A1 — network ablation: E3's latency-hiding result re-run over every
// network model at a fixed hop latency, answering "does the ParalleX
// advantage survive a poorer network?".
type A1Result struct {
	Network string
	E3      E3Result
}

// RunA1 runs E3 at one latency across network models.
func RunA1(locs, updates int, hop time.Duration) []A1Result {
	models := []struct {
		name string
		mk   func(n int, lat time.Duration) network.Model
	}{
		{"ideal", func(n int, lat time.Duration) network.Model { return network.NewIdeal(n) }},
		{"crossbar", func(n int, lat time.Duration) network.Model {
			return network.NewCrossbar(n, network.Params{HopLatency: lat, InjectionOverhead: lat})
		}},
		{"torus2d", func(n int, lat time.Duration) network.Model {
			return network.NewTorus2D(n, network.Params{HopLatency: lat, InjectionOverhead: lat})
		}},
		{"datavortex", func(n int, lat time.Duration) network.Model {
			return network.NewDataVortex(n, network.Params{HopLatency: lat, InjectionOverhead: lat}, 0.2)
		}},
		{"fattree", func(n int, lat time.Duration) network.Model {
			return network.NewFatTree(n, 4, network.Params{HopLatency: lat, InjectionOverhead: lat})
		}},
	}
	var out []A1Result
	for _, m := range models {
		rs := RunE3([]time.Duration{hop}, locs, updates, m.mk)
		out = append(out, A1Result{Network: m.name, E3: rs[0]})
	}
	return out
}

// TableA1 renders the results.
func TableA1(results []A1Result) Table {
	t := Table{
		Title:   "A1 network ablation: E3 under each interconnect model",
		Columns: []string{"network", "parallex", "csp", "csp/px"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Network, fdur(r.E3.ParalleX), fdur(r.E3.CSP), fratio(r.E3.CSP, r.E3.ParalleX),
		})
	}
	return t
}

// A2 — continuation ablation: a k-stage pipeline of remote actions. With
// continuation specifiers the parcel chain flows one way through the
// stages (k one-way latencies). Without them (plain active messages) the
// origin must orchestrate every stage: k round trips. This is precisely
// the parcels-vs-active-messages distinction the paper draws.
type A2Result struct {
	Stages       int
	WithCont     time.Duration
	WithoutCont  time.Duration
	RoundTripWin float64
}

// ActionForward is a stage that just passes its input onward.
const ActionForward = "exp.forward"

// RegisterA2Actions installs the pipeline stage action.
func RegisterA2Actions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionForward, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		raw := args.Bytes()
		if err := args.Err(); err != nil {
			return nil, err
		}
		return parcel.DecodeAny(raw)
	})
}

// RunA2 measures both styles over chains of each length.
func RunA2(stageCounts []int, locs int, lat time.Duration, reps int) []A2Result {
	var out []A2Result
	for _, k := range stageCounts {
		rt := core.New(core.Config{
			Localities:         locs,
			WorkersPerLocality: 4,
			Net:                network.NewCrossbar(locs, network.Params{InjectionOverhead: lat}),
		})
		RegisterA2Actions(rt)
		stages := make([]agas.GID, k)
		for i := range stages {
			stages[i] = rt.NewDataAt(1+(i%(locs-1)), fmt.Sprintf("stage%d", i))
		}
		seed, _ := parcel.EncodeAny(int64(7))
		args := parcel.NewArgs().Bytes(seed).Encode()

		// With continuations: one parcel carrying the chain.
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			fgid, fut := rt.NewFutureAt(0)
			conts := make([]parcel.Continuation, 0, k)
			for i := 1; i < k; i++ {
				conts = append(conts, parcel.Continuation{Target: stages[i], Action: ActionForward})
			}
			conts = append(conts, parcel.Continuation{Target: fgid, Action: core.ActionLCOSet})
			rt.SendFrom(0, parcel.New(stages[0], ActionForward, args, conts...))
			fut.Get()
		}
		withCont := time.Since(start) / time.Duration(reps)

		// Without continuations: the origin round-trips per stage.
		start = time.Now()
		for rep := 0; rep < reps; rep++ {
			cur := args
			for i := 0; i < k; i++ {
				fut := rt.CallFrom(0, stages[i], ActionForward, cur)
				v, err := fut.Get()
				if err != nil {
					panic(err)
				}
				raw, _ := parcel.EncodeAny(v)
				cur = parcel.NewArgs().Bytes(raw).Encode()
			}
		}
		withoutCont := time.Since(start) / time.Duration(reps)
		rt.Shutdown()

		out = append(out, A2Result{
			Stages: k, WithCont: withCont, WithoutCont: withoutCont,
			RoundTripWin: float64(withoutCont) / float64(withCont),
		})
	}
	return out
}

// TableA2 renders the results.
func TableA2(results []A2Result) Table {
	t := Table{
		Title:   "A2 continuation ablation: migrating control vs origin-orchestrated round trips",
		Columns: []string{"stages", "with continuations", "without", "without/with"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Stages), fdur(r.WithCont), fdur(r.WithoutCont),
			fmt.Sprintf("%.2fx", r.RoundTripWin),
		})
	}
	return t
}

// A3 — scheduler ablation: E5's skewed workload under FIFO, LIFO, and
// FIFO+stealing locality queues.
type A3Result struct {
	Scheduler string
	PxTime    time.Duration
}

// RunA3 compares scheduling policies on the E5 workload.
func RunA3(nBodies, locs int) []A3Result {
	cases := []struct {
		name     string
		policy   locality.Policy
		stealing bool
	}{
		{"fifo", locality.FIFO, false},
		{"lifo", locality.LIFO, false},
		{"fifo+steal", locality.FIFO, true},
	}
	var out []A3Result
	for _, c := range cases {
		rs := RunE5([]float64{0.6}, nBodies, locs, c.policy, c.stealing)
		out = append(out, A3Result{Scheduler: c.name, PxTime: rs[0].PxTime})
	}
	return out
}

// TableA3 renders the results.
func TableA3(results []A3Result) Table {
	t := Table{
		Title:   "A3 scheduler ablation: skewed N-body under locality queue policies",
		Columns: []string{"scheduler", "parallex time"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{r.Scheduler, fdur(r.PxTime)})
	}
	return t
}

// A4 — self-balancing ablation: the migrate workload's skewed ring (hot
// objects all packed onto locality 0) under three placement regimes.
// "off" leaves the skew alone: every call funnels into one locality's
// workers. "manual" is the upper baseline — the driver migrates each
// object to its own locality by hand before measuring. "balancer" never
// names a placement: the adaptive policy engine must discover the skew
// from arrival sampling and spread the ring itself, and the measured
// throughput shows how close policy-chosen placement comes to the
// hand-tuned one (ROADMAP item 4's acceptance bar).
type A4Result struct {
	Mode        string  // off | balancer | manual
	CallsPerSec float64 // sustained sum-call throughput after any rebalancing
	Moves       int64   // live migrations executed (0 for off)
	Spread      int     // distinct localities hosting objects at the end
}

// ActionA4Sum is the ring's compute kernel: sum a float vector.
const ActionA4Sum = "exp.a4sum"

// RegisterA4Actions installs the sum kernel.
func RegisterA4Actions(rt *core.Runtime) {
	rt.MustRegisterAction(ActionA4Sum, func(ctx *core.Context, target any, args *parcel.Reader) (any, error) {
		vec := target.([]float64)
		s := 0.0
		for _, v := range vec {
			s += v
		}
		return s, nil
	})
}

// RunA4 measures the skewed ring under each regime: objects hot vector
// objects on a locs-locality runtime, rounds measured rounds of perRound
// concurrent sum calls per object.
func RunA4(objects, locs, rounds, perRound int) []A4Result {
	var out []A4Result
	for _, mode := range []string{"off", "balancer", "manual"} {
		cfg := core.Config{Localities: locs, WorkersPerLocality: 4}
		if mode == "balancer" {
			cfg.BalanceInterval = 5 * time.Millisecond
			cfg.BalanceSampleEvery = 1
			cfg.BalanceHotThreshold = 4
			cfg.BalanceMaxMoves = 4
		}
		rt := core.New(cfg)
		RegisterA4Actions(rt)

		objs := make([]agas.GID, objects)
		for i := range objs {
			vec := make([]float64, 1<<12)
			for j := range vec {
				vec[j] = float64(j % 5)
			}
			objs[i] = rt.NewDataAt(0, vec) // the skew
		}
		burst := func(n int) {
			futs := make([]*lco.Future, 0, objects*n)
			for _, g := range objs {
				for k := 0; k < n; k++ {
					futs = append(futs, rt.CallFrom(0, g, ActionA4Sum, nil))
				}
			}
			for _, f := range futs {
				if _, err := f.Get(); err != nil {
					panic(err)
				}
			}
		}
		spread := func() (int, int) {
			where := make(map[int]int)
			for _, g := range objs {
				loc, _, err := rt.AGAS().Locate(g)
				if err != nil {
					panic(err)
				}
				where[loc]++
			}
			return len(where), where[0]
		}

		switch mode {
		case "manual":
			for i, g := range objs {
				if err := rt.Migrate(g, i%locs); err != nil {
					panic(err)
				}
			}
		case "balancer":
			// Sustain load until the policy breaks the skew (or a generous
			// deadline passes — the measured numbers then show the failure).
			minSpread := locs
			if objects < minSpread {
				minSpread = objects
			}
			if minSpread > 3 {
				minSpread = 3
			}
			deadline := time.Now().Add(20 * time.Second)
			for {
				burst(perRound)
				if distinct, atHome := spread(); distinct >= minSpread && atHome <= objects/2 {
					break
				}
				if time.Now().After(deadline) {
					break
				}
			}
		}

		start := time.Now()
		for r := 0; r < rounds; r++ {
			burst(perRound)
		}
		elapsed := time.Since(start)
		calls := rounds * perRound * objects
		distinct, _ := spread()
		out = append(out, A4Result{
			Mode:        mode,
			CallsPerSec: float64(calls) / elapsed.Seconds(),
			Moves:       rt.SLOW().Migrations.Value(),
			Spread:      distinct,
		})
		rt.Shutdown()
	}
	return out
}

// TableA4 renders the results, with each regime's throughput as a
// fraction of the hand-tuned manual placement.
func TableA4(results []A4Result) Table {
	var manual float64
	for _, r := range results {
		if r.Mode == "manual" {
			manual = r.CallsPerSec
		}
	}
	t := Table{
		Title:   "A4 self-balancing ablation: skewed ring off vs balancer vs manual placement",
		Columns: []string{"placement", "calls/s", "moves", "spread", "vs manual"},
	}
	for _, r := range results {
		frac := "-"
		if manual > 0 {
			frac = fmtFrac(r.CallsPerSec / manual)
		}
		t.Rows = append(t.Rows, []string{
			r.Mode, fmt.Sprintf("%.0f", r.CallsPerSec),
			fmt.Sprintf("%d", r.Moves), fmt.Sprintf("%d", r.Spread), frac,
		})
	}
	return t
}

// Shared small formatters.
func fmtFrac(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
func fmtX(f float64) string    { return fmt.Sprintf("%.2fx", f) }
