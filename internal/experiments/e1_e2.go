package experiments

import (
	"repro/internal/gilgamesh"
)

// E1 — Figure 1: the Gilgamesh II architecture diagram regenerated from
// the design-point model.
func RunE1() string {
	return gilgamesh.RenderFigure1(gilgamesh.Default2020())
}

// E2 — the §3.2 design-point table ("Table DP"): every quoted figure
// derived from first principles and checked against the paper.
func RunE2() (string, bool) {
	d := gilgamesh.Default2020()
	ok := true
	for _, row := range d.Check() {
		if !row.OK {
			ok = false
		}
	}
	return d.Report(), ok
}
