// Package experiments implements the paper-reproduction harness: one
// function per experiment in DESIGN.md §4 (E1–E10 plus ablations A1–A4).
// Each returns structured rows that cmd/pxbench renders as the paper-style
// table and bench_test.go exercises as benchmarks. EXPERIMENTS.md records
// the expected shapes.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table renders rows of label→value pairs with aligned columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fdur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func fratio(num, den time.Duration) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(num)/float64(den))
}
