package locality

import (
	"fmt"
	"sync"

	"repro/internal/agas"
)

// Store is a locality's object store: the local half of the global address
// space. Objects live in exactly one store at a time; migration moves them
// between stores while their GID stays fixed.
type Store struct {
	mu sync.RWMutex
	m  map[agas.GID]any
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[agas.GID]any)}
}

// Put installs v under g, replacing any previous value.
func (s *Store) Put(g agas.GID, v any) {
	if g.IsNil() {
		panic("locality: store put with nil GID")
	}
	s.mu.Lock()
	s.m[g] = v
	s.mu.Unlock()
}

// Get returns the object named g, if present.
func (s *Store) Get(g agas.GID) (any, bool) {
	s.mu.RLock()
	v, ok := s.m[g]
	s.mu.RUnlock()
	return v, ok
}

// Take removes and returns the object named g, for migration.
func (s *Store) Take(g agas.GID) (any, bool) {
	s.mu.Lock()
	v, ok := s.m[g]
	if ok {
		delete(s.m, g)
	}
	s.mu.Unlock()
	return v, ok
}

// Delete removes g; deleting an absent name is a no-op.
func (s *Store) Delete(g agas.GID) {
	s.mu.Lock()
	delete(s.m, g)
	s.mu.Unlock()
}

// Len reports the number of resident objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// String summarizes the store for debugging.
func (s *Store) String() string {
	return fmt.Sprintf("store(%d objects)", s.Len())
}
