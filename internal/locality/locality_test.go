package locality

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agas"
	"repro/internal/lco"
)

func TestPostAndRun(t *testing.T) {
	l := New(0, Config{Workers: 2})
	var n atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		l.Post(func() { n.Add(1); wg.Done() })
	}
	wg.Wait()
	l.Close()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks", n.Load())
	}
	if l.TasksRun() != 100 {
		t.Fatalf("TasksRun = %d", l.TasksRun())
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	const workers = 3
	l := New(0, Config{Workers: workers})
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		l.Post(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	l.Close()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d > %d workers", peak.Load(), workers)
	}
}

func TestSuspendReleasesSlot(t *testing.T) {
	// One worker; the first task suspends on a future that only the second
	// task resolves. Without slot release this deadlocks.
	l := New(0, Config{Workers: 1})
	f := lco.NewFuture()
	done := make(chan int, 2)
	l.Post(func() {
		l.Suspend(func() { f.Get() })
		done <- 1
	})
	l.Post(func() {
		f.Set(nil)
		done <- 2
	})
	timeout := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatal("deadlock: suspension did not release execution slot")
		}
	}
	l.Close()
	if l.Suspensions() != 1 {
		t.Fatalf("suspensions = %d", l.Suspensions())
	}
}

func TestLIFOOrdering(t *testing.T) {
	l := New(0, Config{Workers: 1, Policy: LIFO})
	var mu sync.Mutex
	var order []int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	// Block the single worker so the queue builds up.
	l.Post(func() { <-gate; wg.Done() })
	time.Sleep(10 * time.Millisecond)
	for i := 1; i <= 3; i++ {
		i := i
		l.Post(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	l.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Fatalf("LIFO order = %v, want [3 2 1]", order)
	}
}

func TestFIFOOrdering(t *testing.T) {
	l := New(0, Config{Workers: 1, Policy: FIFO})
	var mu sync.Mutex
	var order []int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	l.Post(func() { <-gate; wg.Done() })
	time.Sleep(10 * time.Millisecond)
	for i := 1; i <= 3; i++ {
		i := i
		l.Post(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	l.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("FIFO order = %v, want [1 2 3]", order)
	}
}

// TestAdmissionControlSheds is the admission-control contract: a
// saturated locality sheds PostAdmitted with ErrOverloaded (counting
// every shed), runs every admitted task exactly once, and accepts again
// after the backlog drains.
func TestAdmissionControlSheds(t *testing.T) {
	const limit = 8
	l := New(0, Config{Workers: 1, AdmitLimit: limit})
	gate := make(chan struct{})
	var ran atomic.Int32
	task := func() { <-gate; ran.Add(1) }

	// Block the single worker on the gate first, then fill the queue to
	// the limit: with the only worker blocked and nothing draining, the
	// limit-th+1 admission sheds deterministically.
	started := make(chan struct{})
	if err := l.PostAdmitted(0, func() { close(started); <-gate; ran.Add(1) }); err != nil {
		t.Fatalf("first post: %v", err)
	}
	<-started
	admitted := 1
	for i := 0; i < limit; i++ {
		if err := l.PostAdmitted(i, task); err != nil {
			t.Fatalf("post %d before saturation: %v", i, err)
		}
		admitted++
	}
	if err := l.PostAdmitted(0, task); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("post at limit: %v, want ErrOverloaded", err)
	}
	if l.Sheds() == 0 {
		t.Fatal("saturated locality recorded no sheds")
	}
	shedsAtSaturation := l.Sheds()

	// Every further admission-checked post sheds while saturated.
	for i := 0; i < 5; i++ {
		if err := l.PostAdmitted(i, func() {}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("post %d under saturation: %v, want ErrOverloaded", i, err)
		}
	}
	if got := l.Sheds(); got != shedsAtSaturation+5 {
		t.Fatalf("Sheds = %d, want %d", got, shedsAtSaturation+5)
	}
	// Plain PostTo bypasses admission even under saturation.
	if err := l.PostTo(0, task); err != nil {
		t.Fatalf("internal post was shed: %v", err)
	}
	admitted++

	// Drain; the locality must accept admission-checked work again.
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for l.QueueLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue failed to drain: len %d", l.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	if err := l.PostAdmitted(0, func() { close(done) }); err != nil {
		t.Fatalf("post after drain: %v", err)
	}
	<-done
	l.Close()
	if int(ran.Load()) != admitted {
		t.Fatalf("ran %d admitted tasks, want %d (sheds must not lose admitted work)", ran.Load(), admitted)
	}
}

// Admission control off (AdmitLimit 0): PostAdmitted never sheds.
func TestAdmissionControlDisabled(t *testing.T) {
	l := New(0, Config{Workers: 1})
	var wg sync.WaitGroup
	for i := 0; i < 2000; i++ {
		wg.Add(1)
		if err := l.PostAdmitted(i, func() { wg.Done() }); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	wg.Wait()
	l.Close()
	if l.Sheds() != 0 {
		t.Fatalf("Sheds = %d with admission disabled", l.Sheds())
	}
}

// A closed locality reports ErrClosed from PostAdmitted, not a shed.
func TestPostAdmittedAfterClose(t *testing.T) {
	l := New(0, Config{Workers: 1, AdmitLimit: 4})
	l.Close()
	if err := l.PostAdmitted(0, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post after close: %v, want ErrClosed", err)
	}
	if l.Sheds() != 0 {
		t.Fatalf("close counted as shed: %d", l.Sheds())
	}
}

func TestStealingBalancesLoad(t *testing.T) {
	victim := New(0, Config{Workers: 1})
	thief := New(1, Config{Workers: 1, Stealing: true})
	thief.SetVictims([]*Locality{victim})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Jam the victim's single worker, then pile work on its queue.
	victim.Post(func() { <-gate; wg.Done() })
	time.Sleep(5 * time.Millisecond)
	const n = 20
	wg.Add(n)
	for i := 0; i < n; i++ {
		victim.Post(func() {
			time.Sleep(time.Millisecond)
			wg.Done()
		})
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if thief.Stolen() == 0 {
		t.Fatal("thief stole nothing from overloaded victim")
	}
	victim.Close()
	thief.Close()
}

func TestCloseDrainsQueue(t *testing.T) {
	l := New(0, Config{Workers: 2})
	var n atomic.Int32
	for i := 0; i < 200; i++ {
		l.Post(func() { n.Add(1) })
	}
	l.Close()
	if n.Load() != 200 {
		t.Fatalf("close dropped tasks: ran %d/200", n.Load())
	}
}

func TestCloseIdempotent(t *testing.T) {
	l := New(0, Config{Workers: 1})
	l.Close()
	l.Close()
}

func TestPostAfterCloseErrors(t *testing.T) {
	l := New(0, Config{Workers: 1})
	l.Close()
	err := l.Post(func() { t.Error("task ran after close") })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("post after close: err = %v, want ErrClosed", err)
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	if err := l.PostTo(3, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PostTo after close: err = %v, want ErrClosed", err)
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
}

// TestStealingStress floods one locality from many producers while idle
// victims steal, asserting every task runs exactly once.
func TestStealingStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
		thieves   = 3
	)
	victim := New(0, Config{Workers: 2, DequeSize: 64})
	all := []*Locality{victim}
	for i := 0; i < thieves; i++ {
		th := New(1+i, Config{Workers: 2, Stealing: true, DequeSize: 64})
		all = append(all, th)
	}
	for _, l := range all {
		l.SetVictims(all)
	}
	counts := make([]atomic.Int32, producers*perProd)
	var wg sync.WaitGroup
	wg.Add(producers * perProd)
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				id := p*perProd + i
				if err := victim.Post(func() {
					counts[id].Add(1)
					wg.Done()
				}); err != nil {
					t.Errorf("post %d: %v", id, err)
					wg.Done()
				}
			}
		}()
	}
	pwg.Wait()
	wg.Wait()
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
	// Counters settle only once the workers have joined: TasksRun is
	// incremented after the task body, so it can trail wg.Wait.
	for _, l := range all {
		l.Close()
	}
	var stolen, ran uint64
	for _, l := range all {
		stolen += l.Stolen()
		ran += l.TasksRun()
	}
	if ran != producers*perProd {
		t.Fatalf("tasks run = %d, want %d", ran, producers*perProd)
	}
	if stolen == 0 {
		t.Error("no cross-locality steals under an 8-producer flood with 3 idle thieves")
	}
	if victim.QueuePeak() == 0 {
		t.Error("queue peak stayed zero under flood")
	}
}

// TestSiblingStealing checks intra-locality balancing: a hint pinning all
// work to one worker's deque must not leave the siblings idle.
func TestSiblingStealing(t *testing.T) {
	l := New(0, Config{Workers: 4})
	var wg sync.WaitGroup
	const n = 200
	wg.Add(n)
	for i := 0; i < n; i++ {
		l.PostTo(0, func() {
			time.Sleep(200 * time.Microsecond)
			wg.Done()
		})
	}
	wg.Wait()
	if l.StolenLocal() == 0 {
		t.Error("no sibling steals though all posts targeted one deque")
	}
	l.Close()
	if l.TasksRun() != n {
		t.Fatalf("TasksRun = %d, want %d", l.TasksRun(), n)
	}
}

// TestDequeOverflow posts far more than DequeSize while the lone worker is
// jammed; overflow must land in the inject queue and nothing may be lost.
func TestDequeOverflow(t *testing.T) {
	l := New(0, Config{Workers: 1, DequeSize: 8})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	l.Post(func() { <-gate; wg.Done() })
	time.Sleep(5 * time.Millisecond)
	const n = 500
	var ran atomic.Int32
	wg.Add(n)
	for i := 0; i < n; i++ {
		l.Post(func() { ran.Add(1); wg.Done() })
	}
	if peak := l.QueuePeak(); peak < n {
		t.Fatalf("queue peak %d with %d queued", peak, n)
	}
	close(gate)
	wg.Wait()
	l.Close()
	if ran.Load() != n {
		t.Fatalf("ran %d/%d overflow tasks", ran.Load(), n)
	}
}

func TestPostNilPanics(t *testing.T) {
	l := New(0, Config{Workers: 1})
	defer l.Close()
	defer func() {
		if recover() == nil {
			t.Error("nil post did not panic")
		}
	}()
	l.Post(nil)
}

func TestQueueStats(t *testing.T) {
	l := New(0, Config{Workers: 1})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	l.Post(func() { <-gate; wg.Done() })
	time.Sleep(5 * time.Millisecond)
	wg.Add(5)
	for i := 0; i < 5; i++ {
		l.Post(func() { wg.Done() })
	}
	if l.QueueLen() == 0 {
		t.Fatal("queue empty while worker jammed")
	}
	close(gate)
	wg.Wait()
	l.Close()
	if l.QueuePeak() < 5 {
		t.Fatalf("queue peak = %d, want >= 5", l.QueuePeak())
	}
}

func TestIdleFractionReflectsStarvation(t *testing.T) {
	l := New(0, Config{Workers: 1})
	time.Sleep(30 * time.Millisecond) // no work: starved
	if f := l.IdleFraction(); f < 0.5 {
		t.Fatalf("idle fraction %f for empty locality, want high", f)
	}
	l.Close()
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	g := agas.GID{Home: 0, Kind: agas.KindData, Seq: 1}
	s.Put(g, 42)
	v, ok := s.Get(g)
	if !ok || v.(int) != 42 {
		t.Fatalf("get = %v %v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	v, ok = s.Take(g)
	if !ok || v.(int) != 42 {
		t.Fatalf("take = %v %v", v, ok)
	}
	if _, ok = s.Get(g); ok {
		t.Fatal("object present after take")
	}
	s.Put(g, 1)
	s.Delete(g)
	if s.Len() != 0 {
		t.Fatal("delete failed")
	}
	s.Delete(g) // idempotent
}

func TestStoreNilGIDPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("nil GID put did not panic")
		}
	}()
	s.Put(agas.Nil, 1)
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := agas.GID{Home: uint32(w), Kind: agas.KindData, Seq: uint64(i)}
				s.Put(g, i)
				if v, ok := s.Get(g); !ok || v.(int) != i {
					t.Errorf("lost write %v", g)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LIFO.String() != "lifo" {
		t.Fatal("policy names wrong")
	}
}
