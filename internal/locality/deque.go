package locality

import (
	"sync"
	"sync/atomic"
)

// deque is one worker's bounded task queue. The owner pushes new work at
// the bottom and, under LIFO policy, pops it back from the bottom
// (depth-first, cache-warm); thieves — sibling workers, spare workers
// covering a suspension, and cross-locality stealers — always take the
// oldest task from the top, so stolen work is the work least likely to be
// in the owner's cache. A full deque overflows into the locality's shared
// inject queue, keeping the common path bounded and allocation-free.
//
// The deque is a mutex-guarded ring: with one lock per worker instead of
// one per locality, producers sharded across deques contend only when two
// land on the same worker, and the steal path never blocks the owner for
// longer than one ring operation. The size mirror lets scanners skip empty
// deques without touching the lock at all.
type deque struct {
	mu   sync.Mutex
	buf  []func()
	head int // ring index of the oldest task (the steal end)
	n    int // occupied slots
	size atomic.Int32
}

func newDeque(capacity int) *deque {
	return &deque{buf: make([]func(), capacity)}
}

// pushBottom appends fn at the newest end; false means the ring is full
// and the task must overflow to the inject queue.
func (d *deque) pushBottom(fn func()) bool {
	d.mu.Lock()
	if d.n == len(d.buf) {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.n)%len(d.buf)] = fn
	d.n++
	d.size.Store(int32(d.n))
	d.mu.Unlock()
	return true
}

// popBottom removes the newest task (owner, LIFO policy).
func (d *deque) popBottom() (func(), bool) {
	if d.size.Load() == 0 {
		return nil, false
	}
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	fn := d.buf[i]
	d.buf[i] = nil
	d.size.Store(int32(d.n))
	d.mu.Unlock()
	return fn, true
}

// popTop removes the oldest task (owner under FIFO policy, and every
// thief).
func (d *deque) popTop() (func(), bool) {
	if d.size.Load() == 0 {
		return nil, false
	}
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	fn := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.size.Store(int32(d.n))
	d.mu.Unlock()
	return fn, true
}

// injectq is the locality's shared overflow and injection queue: the
// landing zone for deque overflow and the first place every searcher looks
// after its own deque. FIFO, unbounded, mutex-guarded — it is off the
// common path by construction, so simplicity wins over cleverness here.
type injectq struct {
	mu   sync.Mutex
	buf  []func()
	head int
	size atomic.Int32
}

func (q *injectq) push(fn func()) {
	q.mu.Lock()
	q.buf = append(q.buf, fn)
	q.size.Store(int32(len(q.buf) - q.head))
	q.mu.Unlock()
}

func (q *injectq) pop() (func(), bool) {
	if q.size.Load() == 0 {
		return nil, false
	}
	q.mu.Lock()
	if q.head == len(q.buf) {
		q.mu.Unlock()
		return nil, false
	}
	fn := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.size.Store(int32(len(q.buf) - q.head))
	q.mu.Unlock()
	return fn, true
}

// widthGate is the execution-width semaphore: free permits start at
// Workers and never grow — Suspend returns the caller's permit and resume
// takes one back, so concurrently running (non-suspended) threads can
// never exceed the configured width, whichever goroutines host them.
//
// The counter registers waiters atomically (state < 0 means -state
// goroutines are parked), so a release with waiters present must hand its
// permit to one of them: resumed threads cannot be barged past by a
// stream of fresh tasks, matching the old slot channel's fairness. The
// huge channel capacity costs nothing: buffered channels of zero-size
// elements allocate no backing array.
type widthGate struct {
	state atomic.Int64
	sema  chan struct{}
}

func (g *widthGate) init(n int) {
	g.state.Store(int64(n))
	g.sema = make(chan struct{}, 1<<30)
}

func (g *widthGate) acquire() {
	if g.state.Add(-1) >= 0 {
		return
	}
	<-g.sema
}

func (g *widthGate) release() {
	if g.state.Add(1) <= 0 {
		g.sema <- struct{}{}
	}
}

// xorshift is the thieves' cheap per-worker PRNG: victim selection must
// not synchronize workers with each other, so each carries its own state.
func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}
