// Package locality implements the ParalleX locality: the physical domain
// that executes threads. A locality owns an object store, a message-driven
// work pool, and a bounded set of execution workers. Threads that suspend
// release their worker (becoming, in the paper's terms, depleted threads
// held by an LCO), so a locality's workers are never blocked by waiting
// work — the property behind the model's latency hiding.
//
// Execution engine: each worker owns a bounded deque. Work posted from
// outside is sharded across the deques (round-robin, or by caller-supplied
// affinity hint via PostTo), overflowing to a shared inject queue when a
// deque is full. The owner serves its deque from the bottom under LIFO
// policy and from the top under FIFO; idle workers steal the oldest task
// from a random sibling, and — with Stealing enabled — from random victim
// localities. There is no global queue lock: the only shared mutable state
// on the post path is the chosen deque's own lock and two counters.
//
// Knobs: Config.Workers bounds concurrently running threads,
// Config.DequeSize bounds each worker's private ring before overflow
// (default 256), Config.Policy picks FIFO/LIFO service, Config.Stealing
// enables cross-locality theft.
package locality

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Policy selects the order the work queue is served in.
type Policy int

// Queue service policies.
const (
	// FIFO serves oldest work first: fair, breadth-first.
	FIFO Policy = iota
	// LIFO serves newest work first: depth-first, cache-friendly.
	LIFO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a locality.
type Config struct {
	// Workers bounds concurrently running (non-suspended) threads.
	Workers int
	// Policy selects queue order. FIFO is the default.
	Policy Policy
	// Stealing lets an idle locality take work from victims' queue fronts.
	Stealing bool
	// DequeSize bounds each worker's private deque; a full deque overflows
	// to the shared inject queue. Default 256.
	DequeSize int
	// OnSteal, when set, is invoked after each successful steal by this
	// locality (remote reports a cross-locality theft, false an intra-
	// locality sibling steal). It runs on the stealing worker's goroutine
	// and must be cheap and non-blocking.
	OnSteal func(remote bool)
	// AdmitLimit bounds the queue depth seen by PostAdmitted: when the
	// locality already holds this many queued tasks, an admission-checked
	// post is shed with ErrOverloaded instead of queueing without bound.
	// Zero disables admission control (PostAdmitted behaves like PostTo).
	// Plain Post/PostTo always bypass the limit — runtime-internal work
	// (continuations, forwards, fence replays) must never be shed, or
	// already-admitted requests would be lost halfway through.
	AdmitLimit int
}

// ErrClosed is returned by Post and PostTo on a closed locality. The
// runtime quiesces before shutdown, so at the runtime layer a late post is
// still a bug — but the locality records and reports it instead of
// dropping the task on the floor.
var ErrClosed = errors.New("locality: closed")

// ErrOverloaded is the typed load-shed verdict: PostAdmitted found the
// locality at its AdmitLimit and rejected the task instead of queueing
// it. The caller still owns the work — nothing was enqueued — and should
// surface the verdict to whoever can retry with backoff (the load
// generator, a remote client), not spin on resubmission.
var ErrOverloaded = errors.New("locality: overloaded")

// stealPoll bounds how stale an idle stealer's view of its victims (and a
// spare's view of the reclaim channel) may get: victims gain work without
// notifying foreign localities, so stealers poll.
const stealPoll = 50 * time.Microsecond

// Locality is one execution domain.
type Locality struct {
	id    int
	cfg   Config
	store *Store

	workers []*worker
	inject  injectq

	closed  atomic.Bool
	closeCh chan struct{}

	// width gates task execution at Workers concurrent threads. Every
	// runner — worker or spare — holds a permit while a task executes;
	// Suspend releases the permit around the blocking wait and re-acquires
	// it before resuming, which is exactly the paper's depleted-thread
	// rule: a suspended thread consumes no execution resources and
	// re-competes for one when its dependency fires.
	width widthGate

	// suspOut tracks threads currently depleted; spares exist to use the
	// permits those threads released, and retire when spares outnumber it.
	suspOut    atomic.Int64
	spares     atomic.Int64
	idleSpares atomic.Int64

	victims atomic.Pointer[[]*Locality]

	queued    atomic.Int64
	queuePeak atomic.Int64
	nparked   atomic.Int32
	rr        atomic.Uint32

	wg      sync.WaitGroup
	spareWG sync.WaitGroup

	tasksRun    atomic.Uint64
	stolen      atomic.Uint64
	stolenLocal atomic.Uint64
	suspends    atomic.Uint64
	dropped     atomic.Uint64
	sheds       atomic.Uint64
}

// worker is one execution slot: a goroutine, its private deque, its parker
// and its steal PRNG.
type worker struct {
	l      *Locality
	dq     *deque
	park   chan struct{}
	parked atomic.Bool
	rng    uint64
	idle   *metrics.IdleTracker
	timer  *time.Timer
}

// New creates and starts a locality with the given id.
func New(id int, cfg Config) *Locality {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.DequeSize <= 0 {
		cfg.DequeSize = 256
	}
	l := &Locality{
		id:      id,
		cfg:     cfg,
		store:   NewStore(),
		closeCh: make(chan struct{}),
	}
	l.width.init(cfg.Workers)
	l.workers = make([]*worker, cfg.Workers)
	for i := range l.workers {
		t := time.NewTimer(time.Hour)
		t.Stop()
		l.workers[i] = &worker{
			l:     l,
			dq:    newDeque(cfg.DequeSize),
			park:  make(chan struct{}, 1),
			rng:   (uint64(id)*2654435761 + uint64(i)*40503 + 0x9e3779b9) | 1,
			idle:  metrics.NewIdleTracker(),
			timer: t,
		}
	}
	l.wg.Add(cfg.Workers)
	for _, w := range l.workers {
		go w.run()
	}
	return l
}

// ID reports the locality's index.
func (l *Locality) ID() int { return l.id }

// Store returns the locality's object store.
func (l *Locality) Store() *Store { return l.store }

// SetVictims installs the steal set; only meaningful with Stealing enabled.
func (l *Locality) SetVictims(vs []*Locality) {
	l.victims.Store(&vs)
}

// Post enqueues fn for execution, sharding across worker deques
// round-robin. Posting to a closed locality returns ErrClosed (and counts
// toward Dropped); the runtime must quiesce before shutdown, so callers
// that cannot tolerate a late post should treat the error as fatal.
func (l *Locality) Post(fn func()) error {
	return l.PostTo(int(l.rr.Add(1)), fn)
}

// PostTo enqueues fn with a placement hint: equal hints land on the same
// worker's deque, so related tasks (parcels for one object, a thread's
// children) keep their cache affinity and take their deque lock
// uncontended. The hint is only a preference — a full deque overflows to
// the shared inject queue, and idle siblings steal regardless.
func (l *Locality) PostTo(hint int, fn func()) error {
	if fn == nil {
		panic("locality: post of nil task")
	}
	if l.closed.Load() {
		l.dropped.Add(1)
		return fmt.Errorf("locality %d: %w", l.id, ErrClosed)
	}
	// The count rises before the push so the drain at Close cannot observe
	// empty queues while a racing post is between count and push: workers
	// exit only at closed && queued == 0, and this post already holds the
	// count up.
	return l.postReserved(hint, l.queued.Add(1), fn)
}

// PostAdmitted is PostTo behind admission control: when the locality
// already holds Config.AdmitLimit queued tasks the post is shed — the
// task is NOT enqueued, the shed counter rises, and the caller gets
// ErrOverloaded to propagate as a load-shed verdict. With AdmitLimit 0
// it is exactly PostTo. Use it for externally driven work (incoming
// service requests); runtime-internal continuations must keep using
// Post/PostTo so admitted work always runs to completion.
func (l *Locality) PostAdmitted(hint int, fn func()) error {
	limit := l.cfg.AdmitLimit
	if limit <= 0 {
		return l.PostTo(hint, fn)
	}
	if fn == nil {
		panic("locality: post of nil task")
	}
	if l.closed.Load() {
		l.dropped.Add(1)
		return fmt.Errorf("locality %d: %w", l.id, ErrClosed)
	}
	// Reserve the queue slot first: Add-then-check is exact under
	// concurrent admission, where a load-then-Add race would admit
	// arbitrarily far past the limit.
	n := l.queued.Add(1)
	if n > int64(limit) {
		l.queued.Add(-1)
		l.sheds.Add(1)
		return fmt.Errorf("locality %d: %w", l.id, ErrOverloaded)
	}
	return l.postReserved(hint, n, fn)
}

// postReserved is the shared tail of PostTo and PostAdmitted: the caller
// already raised the queued count to n, so from here the task must land
// in a queue (or be drained inline when Close races the push).
func (l *Locality) postReserved(hint int, n int64, fn func()) error {
	w := l.workers[uint(hint)%uint(len(l.workers))]
	if !w.dq.pushBottom(fn) {
		l.inject.push(fn)
	}
	if l.closed.Load() {
		// Close landed between the entry check and the count: the workers
		// may all have seen empty queues and exited. Drain in their stead
		// so the task is executed, not stranded — a post that races Close
		// linearizes before it either way.
		l.drainLate()
		return nil
	}
	for {
		p := l.queuePeak.Load()
		if n <= p || l.queuePeak.CompareAndSwap(p, n) {
			break
		}
	}
	l.wake(w)
	return nil
}

// drainLate runs queued work on the caller's goroutine until none
// remains. It backstops posts that race Close: surviving workers may
// drain concurrently (pops are synchronized), and a task count held up by
// another mid-push poster resolves when that poster lands and drains too.
func (l *Locality) drainLate() {
	rng := (spareSeq.Add(1)*2654435761 + 0x9e3779b9) | 1
	for l.queued.Load() > 0 {
		if fn, ok := l.findAny(&rng); ok {
			l.runTask(fn)
		} else {
			runtime.Gosched()
		}
	}
}

// wake unparks one worker, preferring the deque owner the task landed on.
func (l *Locality) wake(preferred *worker) {
	if l.nparked.Load() == 0 {
		return
	}
	if preferred.parked.CompareAndSwap(true, false) {
		l.nparked.Add(-1)
		preferred.park <- struct{}{}
		return
	}
	for _, w := range l.workers {
		if w.parked.CompareAndSwap(true, false) {
			l.nparked.Add(-1)
			w.park <- struct{}{}
			return
		}
	}
}

func (w *worker) run() {
	defer w.l.wg.Done()
	l := w.l
	for {
		if fn, ok := w.find(); ok {
			l.runTask(fn)
			continue
		}
		if l.closed.Load() {
			if l.queued.Load() == 0 {
				return
			}
			// Siblings still hold queued tasks; help drain them.
			runtime.Gosched()
			continue
		}
		w.parkWait()
	}
}

// runTask executes one task under a width permit.
func (l *Locality) runTask(fn func()) {
	l.width.acquire()
	fn()
	l.width.release()
	l.tasksRun.Add(1)
}

// find locates the next task: own deque (per policy), the shared inject
// queue, a random sibling's deque top, then — with Stealing — a random
// victim locality.
func (w *worker) find() (func(), bool) {
	l := w.l
	var fn func()
	var ok bool
	if l.cfg.Policy == LIFO {
		fn, ok = w.dq.popBottom()
	} else {
		fn, ok = w.dq.popTop()
	}
	if ok {
		l.queued.Add(-1)
		return fn, true
	}
	if fn, ok = l.inject.pop(); ok {
		l.queued.Add(-1)
		return fn, true
	}
	if len(l.workers) > 1 {
		off := int(xorshift(&w.rng) % uint64(len(l.workers)))
		for i := 0; i < len(l.workers); i++ {
			v := l.workers[(off+i)%len(l.workers)]
			if v == w {
				continue
			}
			if fn, ok = v.dq.popTop(); ok {
				l.stolenLocal.Add(1)
				l.queued.Add(-1)
				if l.cfg.OnSteal != nil {
					l.cfg.OnSteal(false)
				}
				return fn, true
			}
		}
	}
	if l.cfg.Stealing {
		return l.stealRemote(&w.rng)
	}
	return nil, false
}

// stealRemote takes one task from a random victim locality.
func (l *Locality) stealRemote(rng *uint64) (func(), bool) {
	vsp := l.victims.Load()
	if vsp == nil || len(*vsp) == 0 {
		return nil, false
	}
	vs := *vsp
	off := int(xorshift(rng) % uint64(len(vs)))
	for i := range vs {
		v := vs[(off+i)%len(vs)]
		if v == l {
			continue
		}
		if fn, ok := v.stealOne(rng); ok {
			l.stolen.Add(1)
			if l.cfg.OnSteal != nil {
				l.cfg.OnSteal(true)
			}
			return fn, true
		}
	}
	return nil, false
}

// stealOne removes one task from this locality on behalf of a thief: the
// inject queue first (nobody's affinity is lost there), then deque tops.
func (l *Locality) stealOne(rng *uint64) (func(), bool) {
	if l.queued.Load() == 0 {
		return nil, false
	}
	if fn, ok := l.inject.pop(); ok {
		l.queued.Add(-1)
		return fn, true
	}
	off := int(xorshift(rng) % uint64(len(l.workers)))
	for i := range l.workers {
		if fn, ok := l.workers[(off+i)%len(l.workers)].dq.popTop(); ok {
			l.queued.Add(-1)
			return fn, true
		}
	}
	return nil, false
}

// parkWait blocks the worker until new work may exist. Stealing workers
// poll: victims gain work without notifying foreign localities.
func (w *worker) parkWait() {
	l := w.l
	w.parked.Store(true)
	l.nparked.Add(1)
	// Recheck after publishing the parked flag: a post racing our failed
	// find would otherwise be missed forever.
	if l.queued.Load() > 0 || l.closed.Load() {
		w.unpark()
		return
	}
	w.idle.MarkIdle()
	if l.cfg.Stealing {
		w.timer.Reset(stealPoll)
		select {
		case <-w.park:
			w.stopTimer()
		case <-l.closeCh:
			w.stopTimer()
			w.unpark()
		case <-w.timer.C:
			w.unpark()
		}
	} else {
		select {
		case <-w.park:
		case <-l.closeCh:
			w.unpark()
		}
	}
	w.idle.MarkBusy()
}

// unpark clears the worker's own parked flag; if a waker won the race for
// it, the waker's token is already in flight and must be consumed so the
// channel is clean for the next cycle.
func (w *worker) unpark() {
	if w.parked.CompareAndSwap(true, false) {
		w.l.nparked.Add(-1)
		return
	}
	<-w.park
}

func (w *worker) stopTimer() {
	if !w.timer.Stop() {
		select {
		case <-w.timer.C:
		default:
		}
	}
}

// Suspend releases the caller's execution slot around blocking work,
// modelling thread depletion: wait runs with the slot released and the
// thread re-competes for a slot before continuing. Every task posted to
// this locality that blocks must wrap the blocking call in Suspend.
//
// Mechanically, Suspend returns the caller's width permit to the pool and
// makes sure a spare worker exists to use it, so the locality's execution
// width stays at Workers while the thread is depleted; the resume
// re-acquires a permit, and the surplus spare retires once no suspensions
// remain outstanding.
func (l *Locality) Suspend(wait func()) {
	l.suspends.Add(1)
	l.suspOut.Add(1)
	l.width.release()
	if l.idleSpares.Load() == 0 {
		l.spares.Add(1)
		l.spareWG.Add(1)
		go l.spare()
	}
	wait()
	l.width.acquire()
	l.suspOut.Add(-1)
}

// spare covers for suspended threads: it runs queued work (steal-only — it
// has no deque of its own) while suspensions are outstanding, and retires
// as soon as spares outnumber them.
func (l *Locality) spare() {
	defer l.spareWG.Done()
	rng := (spareSeq.Add(1)*2654435761 + 0x9e3779b9) | 1
	for {
		if s := l.spares.Load(); s > l.suspOut.Load() {
			if l.spares.CompareAndSwap(s, s-1) {
				return
			}
			continue
		}
		if fn, ok := l.findAny(&rng); ok {
			l.runTask(fn)
			continue
		}
		if l.closed.Load() && l.queued.Load() == 0 {
			l.spares.Add(-1)
			return
		}
		// Idle: poll. Suspensions resolve through LCOs at their own pace,
		// so a timed poll is the simplest race-free parking here.
		l.idleSpares.Add(1)
		time.Sleep(stealPoll)
		l.idleSpares.Add(-1)
	}
}

// spareSeq feeds spare-worker PRNG seeds; spares are transient so a shared
// counter is fine.
var spareSeq atomic.Uint64

// findAny is the steal-only task search used by spare workers.
func (l *Locality) findAny(rng *uint64) (func(), bool) {
	if fn, ok := l.inject.pop(); ok {
		l.queued.Add(-1)
		return fn, true
	}
	off := int(xorshift(rng) % uint64(len(l.workers)))
	for i := range l.workers {
		if fn, ok := l.workers[(off+i)%len(l.workers)].dq.popTop(); ok {
			l.queued.Add(-1)
			return fn, true
		}
	}
	if l.cfg.Stealing {
		return l.stealRemote(rng)
	}
	return nil, false
}

// Close stops the locality after draining queued and running work.
// Posting during or after Close returns ErrClosed.
func (l *Locality) Close() {
	if l.closed.CompareAndSwap(false, true) {
		close(l.closeCh)
	}
	l.wg.Wait()
	l.spareWG.Wait()
}

// QueueLen reports current queue depth across all deques and the inject
// queue.
func (l *Locality) QueueLen() int { return int(l.queued.Load()) }

// QueuePeak reports the high-water queue depth.
func (l *Locality) QueuePeak() int { return int(l.queuePeak.Load()) }

// TasksRun reports completed tasks.
func (l *Locality) TasksRun() uint64 { return l.tasksRun.Load() }

// Stolen reports tasks this locality stole from victim localities.
func (l *Locality) Stolen() uint64 { return l.stolen.Load() }

// StolenLocal reports intra-locality steals between sibling workers.
func (l *Locality) StolenLocal() uint64 { return l.stolenLocal.Load() }

// Dropped reports posts rejected because the locality was closed.
func (l *Locality) Dropped() uint64 { return l.dropped.Load() }

// Sheds reports admission-checked posts rejected with ErrOverloaded.
func (l *Locality) Sheds() uint64 { return l.sheds.Load() }

// Suspensions reports slot releases by suspending threads.
func (l *Locality) Suspensions() uint64 { return l.suspends.Load() }

// DequeDepths reports each worker's current private deque depth. It
// reads the deques' atomic size mirrors — no locks — so a balancer can
// poll it at introspection frequency without perturbing the workers. The
// shared inject queue's depth is QueueLen minus the sum reported here.
func (l *Locality) DequeDepths() []int {
	out := make([]int, len(l.workers))
	for i, w := range l.workers {
		out[i] = int(w.dq.size.Load())
	}
	return out
}

// IdleFraction reports the mean starvation fraction across workers so far.
func (l *Locality) IdleFraction() float64 {
	var s float64
	for _, w := range l.workers {
		s += w.idle.IdleFraction()
	}
	return s / float64(len(l.workers))
}
