// Package locality implements the ParalleX locality: the physical domain
// that executes threads. A locality owns an object store, a message-driven
// work queue, and a bounded set of execution slots. Threads that suspend
// release their slot (becoming, in the paper's terms, depleted threads held
// by an LCO), so a locality's workers are never blocked by waiting work —
// the property behind the model's latency hiding.
package locality

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Policy selects the order the work queue is served in.
type Policy int

// Queue service policies.
const (
	// FIFO serves oldest work first: fair, breadth-first.
	FIFO Policy = iota
	// LIFO serves newest work first: depth-first, cache-friendly.
	LIFO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a locality.
type Config struct {
	// Workers bounds concurrently running (non-suspended) threads.
	Workers int
	// Policy selects queue order. FIFO is the default.
	Policy Policy
	// Stealing lets an idle locality take work from victims' queue fronts.
	Stealing bool
}

// Locality is one execution domain.
type Locality struct {
	id    int
	cfg   Config
	store *Store

	mu     sync.Mutex
	queue  []func()
	closed bool
	notify chan struct{}

	slots   chan struct{}
	victims []*Locality

	dispatcherDone chan struct{}
	running        sync.WaitGroup

	tasksRun  atomic.Uint64
	stolen    atomic.Uint64
	suspends  atomic.Uint64
	idle      *metrics.IdleTracker
	queuePeak atomic.Int64
}

// New creates and starts a locality with the given id.
func New(id int, cfg Config) *Locality {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	l := &Locality{
		id:             id,
		cfg:            cfg,
		store:          NewStore(),
		notify:         make(chan struct{}, 1),
		slots:          make(chan struct{}, cfg.Workers),
		dispatcherDone: make(chan struct{}),
		idle:           metrics.NewIdleTracker(),
	}
	for i := 0; i < cfg.Workers; i++ {
		l.slots <- struct{}{}
	}
	go l.dispatch()
	return l
}

// ID reports the locality's index.
func (l *Locality) ID() int { return l.id }

// Store returns the locality's object store.
func (l *Locality) Store() *Store { return l.store }

// SetVictims installs the steal set; only meaningful with Stealing enabled.
func (l *Locality) SetVictims(vs []*Locality) {
	l.mu.Lock()
	l.victims = vs
	l.mu.Unlock()
}

func (l *Locality) victimSet() []*Locality {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.victims
}

// Post enqueues fn for execution. Posting to a closed locality panics: the
// runtime must quiesce before shutdown, so a late post is always a bug.
func (l *Locality) Post(fn func()) {
	if fn == nil {
		panic("locality: post of nil task")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		panic(fmt.Sprintf("locality %d: post after close", l.id))
	}
	l.queue = append(l.queue, fn)
	if n := int64(len(l.queue)); n > l.queuePeak.Load() {
		l.queuePeak.Store(n)
	}
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// pop removes one task per the service policy.
func (l *Locality) pop() (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.queue)
	if n == 0 {
		return nil, false
	}
	var fn func()
	if l.cfg.Policy == LIFO {
		fn = l.queue[n-1]
		l.queue[n-1] = nil
		l.queue = l.queue[:n-1]
	} else {
		fn = l.queue[0]
		l.queue = l.queue[1:]
	}
	return fn, true
}

// stealFrom removes the oldest task from v's queue (FIFO side), the
// conventional steal end.
func (l *Locality) stealFrom(v *Locality) (func(), bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.queue) == 0 {
		return nil, false
	}
	fn := v.queue[0]
	v.queue = v.queue[1:]
	return fn, true
}

func (l *Locality) dispatch() {
	defer close(l.dispatcherDone)
	for {
		fn, ok := l.pop()
		if !ok && l.cfg.Stealing {
			for _, v := range l.victimSet() {
				if v == l {
					continue
				}
				if fn, ok = l.stealFrom(v); ok {
					l.stolen.Add(1)
					break
				}
			}
		}
		if !ok {
			l.mu.Lock()
			closed := l.closed
			empty := len(l.queue) == 0
			l.mu.Unlock()
			if closed && empty {
				return
			}
			l.idle.MarkIdle()
			if l.cfg.Stealing {
				// Poll: victims can gain work without notifying us.
				select {
				case <-l.notify:
				case <-time.After(50 * time.Microsecond):
				}
			} else {
				<-l.notify
			}
			l.idle.MarkBusy()
			continue
		}
		<-l.slots // acquire an execution slot
		l.running.Add(1)
		go func() {
			defer func() {
				l.slots <- struct{}{}
				l.running.Done()
			}()
			fn()
			l.tasksRun.Add(1)
		}()
	}
}

// Suspend releases the caller's execution slot around blocking work,
// modelling thread depletion: wait runs with the slot released and the
// thread re-competes for a slot before continuing. Every task posted to
// this locality that blocks must wrap the blocking call in Suspend.
func (l *Locality) Suspend(wait func()) {
	l.suspends.Add(1)
	l.slots <- struct{}{} // give the slot back
	wait()
	<-l.slots // re-acquire before resuming
}

// Close stops the locality after draining queued and running work.
// It is an error to Post during or after Close.
func (l *Locality) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.dispatcherDone
		l.running.Wait()
		return
	}
	l.closed = true
	l.mu.Unlock()
	// Wake the dispatcher so it can observe the close.
	for {
		select {
		case l.notify <- struct{}{}:
		default:
		}
		select {
		case <-l.dispatcherDone:
			l.running.Wait()
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// QueueLen reports current queue depth.
func (l *Locality) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// QueuePeak reports the high-water queue depth.
func (l *Locality) QueuePeak() int { return int(l.queuePeak.Load()) }

// TasksRun reports completed tasks.
func (l *Locality) TasksRun() uint64 { return l.tasksRun.Load() }

// Stolen reports tasks this locality stole from victims.
func (l *Locality) Stolen() uint64 { return l.stolen.Load() }

// Suspensions reports slot releases by suspending threads.
func (l *Locality) Suspensions() uint64 { return l.suspends.Load() }

// IdleFraction reports the dispatcher's starvation fraction so far.
func (l *Locality) IdleFraction() float64 { return l.idle.IdleFraction() }
