package csp

// Vector collectives for grid-based workloads (PIC charge reduction).
// They mirror the scalar collectives with elementwise operators.

// ReduceVec folds equal-length vectors to the root elementwise with op;
// non-root ranks return nil. op must be commutative and associative.
func (r *Rank) ReduceVec(root int, v []float64, op func(a, b float64) float64) []float64 {
	tag := r.nextCollTag()
	n := r.w.n
	vid := (r.id - root + n) % n
	acc := append([]float64(nil), v...)
	for m := 1; m < n; m <<= 1 {
		if vid&m != 0 {
			r.send((vid-m+root)%n, tag, acc)
			return nil
		}
		if vid+m < n {
			other := r.Recv(AnySource, tag).([]float64)
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc
}

// AllReduceVec is ReduceVec to rank 0 followed by a broadcast.
func (r *Rank) AllReduceVec(v []float64, op func(a, b float64) float64) []float64 {
	total := r.ReduceVec(0, v, op)
	var payload any
	if r.id == 0 {
		payload = total
	}
	return r.Bcast(0, payload).([]float64)
}
