package csp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/network"
)

func world(n int) *World {
	return NewWorld(n, network.NewIdeal(n))
}

func TestSendRecvPingPong(t *testing.T) {
	w := world(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, "ping")
			if got := r.Recv(1, 7); got.(string) != "pong" {
				t.Errorf("rank0 got %v", got)
			}
		} else {
			if got := r.Recv(0, 7); got.(string) != "ping" {
				t.Errorf("rank1 got %v", got)
			}
			r.Send(0, 7, "pong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().MessagesSent.Value() != 2 {
		t.Fatalf("messages = %d", w.Stats().MessagesSent.Value())
	}
}

func TestTagMatching(t *testing.T) {
	w := world(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, "five")
			r.Send(1, 3, "three")
		} else {
			// Receive out of send order by tag.
			if got := r.Recv(0, 3); got.(string) != "three" {
				t.Errorf("tag 3 got %v", got)
			}
			if got := r.Recv(0, 5); got.(string) != "five" {
				t.Errorf("tag 5 got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	w := world(3)
	err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			seen := map[int64]bool{}
			for i := 0; i < 2; i++ {
				seen[r.Recv(AnySource, 1).(int64)] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("any-source saw %v", seen)
			}
		default:
			r.Send(0, 1, int64(r.ID()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	w := world(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			if _, ok := r.TryRecv(1, 1); ok {
				t.Error("TryRecv found phantom message")
			}
			r.Send(1, 1, nil)
			r.Recv(1, 2)
		} else {
			r.Recv(0, 1)
			r.Send(0, 2, nil)
			if v, ok := r.TryRecv(0, 9); ok {
				t.Errorf("phantom %v", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 6
	w := world(n)
	var phase [n]int32
	err := w.Run(func(r *Rank) {
		for p := int32(1); p <= 3; p++ {
			atomic.StoreInt32(&phase[r.ID()], p)
			r.Barrier()
			for i := 0; i < n; i++ {
				if atomic.LoadInt32(&phase[i]) < p {
					t.Errorf("rank %d behind after barrier", i)
					return
				}
			}
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Barriers.Value() != n*6 {
		t.Fatalf("barrier count = %d", w.Stats().Barriers.Value())
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for root := 0; root < n; root++ {
			w := world(n)
			err := w.Run(func(r *Rank) {
				var v any
				if r.ID() == root {
					v = int64(100 + root)
				}
				got := r.Bcast(root, v)
				if got.(int64) != int64(100+root) {
					t.Errorf("n=%d root=%d rank=%d got %v", n, root, r.ID(), got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for n := 1; n <= 9; n++ {
		w := world(n)
		err := w.Run(func(r *Rank) {
			got := r.Reduce(0, float64(r.ID()+1), func(a, b float64) float64 { return a + b })
			if r.ID() == 0 {
				want := float64(n*(n+1)) / 2
				if got != want {
					t.Errorf("n=%d reduce = %f, want %f", n, got, want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const n = 7
	w := world(n)
	err := w.Run(func(r *Rank) {
		got := r.AllReduce(float64(r.ID()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if got != n-1 {
			t.Errorf("rank %d allreduce = %f", r.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const n = 5
	w := world(n)
	err := w.Run(func(r *Rank) {
		out := r.Gather(2, int64(r.ID()*r.ID()))
		if r.ID() == 2 {
			for i := 0; i < n; i++ {
				if out[i].(int64) != int64(i*i) {
					t.Errorf("gather[%d] = %v", i, out[i])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: AllReduce(sum) agrees across all ranks for arbitrary inputs.
func TestPropertyAllReduceConsistent(t *testing.T) {
	f := func(vals []uint16) bool {
		n := len(vals)
		if n == 0 || n > 12 {
			return true
		}
		w := world(n)
		results := make([]float64, n)
		err := w.Run(func(r *Rank) {
			results[r.ID()] = r.AllReduce(float64(vals[r.ID()]), func(a, b float64) float64 { return a + b })
		})
		if err != nil {
			return false
		}
		var want float64
		for _, v := range vals {
			want += float64(v)
		}
		for _, got := range results {
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvWaitRecordsExposedLatency(t *testing.T) {
	net := network.NewCrossbar(2, network.Params{InjectionOverhead: 2 * time.Millisecond})
	w := NewWorld(2, net)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, nil)
		} else {
			r.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().RecvWait.Mean() < float64(time.Millisecond) {
		t.Fatalf("recv wait mean %.0fns does not reflect network latency", w.Stats().RecvWait.Mean())
	}
}

func TestPanicInRankReported(t *testing.T) {
	w := world(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("rank boom")
		}
	})
	if err == nil {
		t.Fatal("rank panic not reported")
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero ranks", func() { NewWorld(0, network.NewIdeal(1)) })
	mustPanic("small net", func() { NewWorld(8, network.NewIdeal(2)) })
	// Rank-level misuse panics are recovered by Run and surfaced as errors.
	if err := world(2).Run(func(r *Rank) { r.Send((r.ID()+1)%2, -5, nil) }); err == nil {
		t.Error("negative tag not reported")
	}
	if err := world(2).Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 1, nil)
		}
	}); err == nil {
		t.Error("bad destination not reported")
	}
}

func TestReduceVecElementwise(t *testing.T) {
	const n = 5
	w := world(n)
	err := w.Run(func(r *Rank) {
		v := []float64{float64(r.ID()), float64(r.ID() * 2), 1}
		got := r.ReduceVec(0, v, func(a, b float64) float64 { return a + b })
		if r.ID() == 0 {
			want := []float64{10, 20, 5} // sums of 0..4, 0..8 step2, ones
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("reduce[%d] = %f, want %f", i, got[i], want[i])
				}
			}
		} else if got != nil {
			t.Errorf("non-root rank %d got %v", r.ID(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceVecConsistent(t *testing.T) {
	const n = 6
	w := world(n)
	results := make([][]float64, n)
	err := w.Run(func(r *Rank) {
		v := []float64{1, float64(r.ID())}
		results[r.ID()] = r.AllReduceVec(v, func(a, b float64) float64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if results[i][0] != n || results[i][1] != 15 {
			t.Fatalf("rank %d allreducevec = %v", i, results[i])
		}
	}
}

func TestReduceVecDoesNotAliasInput(t *testing.T) {
	const n = 2
	w := world(n)
	inputs := make([][]float64, n)
	err := w.Run(func(r *Rank) {
		v := []float64{1, 2}
		inputs[r.ID()] = v
		r.ReduceVec(0, v, func(a, b float64) float64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range inputs {
		if v[0] != 1 || v[1] != 2 {
			t.Fatalf("rank %d input mutated: %v", i, v)
		}
	}
}
