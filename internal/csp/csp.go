// Package csp implements the baseline the paper positions ParalleX
// against: the communicating-sequential-processes message-passing model
// (MPI-style). A World of SPMD ranks exchanges two-sided messages over the
// same network models the ParalleX runtime uses, with blocking receives,
// global barriers, and tree-based collectives. Its purpose is comparative:
// every experiment that claims a ParalleX advantage runs the same workload
// here.
package csp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// message is one in-flight two-sided message.
type message struct {
	from    int
	tag     int
	payload any
}

// Stats aggregates world-wide communication costs. RecvWait is the exposed
// latency the paper's parcels are designed to hide.
type Stats struct {
	MessagesSent metrics.Counter
	BytesSent    metrics.Counter
	RecvWait     *metrics.Histogram
	BarrierWait  *metrics.Histogram
	Barriers     metrics.Counter
}

// World is an SPMD machine of n ranks over a network model.
type World struct {
	n     int
	net   network.Model
	ranks []*Rank
	stats *Stats
}

// NewWorld creates a world of n ranks over net. The network must have at
// least n endpoints.
func NewWorld(n int, net network.Model) *World {
	if n <= 0 {
		panic("csp: world needs at least one rank")
	}
	if net.Nodes() < n {
		panic(fmt.Sprintf("csp: network has %d endpoints for %d ranks", net.Nodes(), n))
	}
	w := &World{n: n, net: net, stats: &Stats{
		RecvWait:    metrics.NewHistogram(0),
		BarrierWait: metrics.NewHistogram(0),
	}}
	for i := 0; i < n; i++ {
		r := &Rank{id: i, w: w}
		r.cond = sync.NewCond(&r.mu)
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.n }

// Stats returns the communication statistics.
func (w *World) Stats() *Stats { return w.stats }

// Run executes fn as every rank's program (SPMD) and waits for all ranks.
// A panic in any rank is recovered and returned as an error.
func (w *World) Run(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	errs := make([]error, w.n)
	for i := 0; i < w.n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("csp: rank %d panicked: %v", i, p)
				}
			}()
			fn(w.ranks[i])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank is one SPMD process.
type Rank struct {
	id int
	w  *World

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []message

	collSeq int // collective sequence number; SPMD keeps ranks aligned
}

// ID reports this rank's index.
func (r *Rank) ID() int { return r.id }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.n }

// payloadSize estimates wire size for the latency model.
func payloadSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case []byte:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case string:
		return len(x)
	default:
		return 16
	}
}

// Send delivers payload to rank to with the given tag. The call returns
// after the injection cost; transit continues asynchronously (eager
// protocol). Tags must be non-negative; negative tags are reserved for
// collectives.
func (r *Rank) Send(to, tag int, payload any) {
	if tag < 0 {
		panic("csp: negative tags are reserved")
	}
	r.send(to, tag, payload)
}

func (r *Rank) send(to, tag int, payload any) {
	if to < 0 || to >= r.w.n {
		panic(fmt.Sprintf("csp: send to rank %d of %d", to, r.w.n))
	}
	r.w.stats.MessagesSent.Inc()
	size := payloadSize(payload)
	r.w.stats.BytesSent.Add(int64(size))
	lat := r.w.net.Latency(r.id, to, size)
	msg := message{from: r.id, tag: tag, payload: payload}
	deliver := func() {
		dst := r.w.ranks[to]
		dst.mu.Lock()
		dst.inbox = append(dst.inbox, msg)
		dst.cond.Broadcast()
		dst.mu.Unlock()
	}
	if lat <= 0 {
		deliver()
		return
	}
	time.AfterFunc(lat, deliver)
}

// Recv blocks until a message matching (from, tag) arrives and returns its
// payload. from may be AnySource. This blocking is precisely the exposed
// latency ParalleX's message-driven execution avoids; the time spent here
// is recorded in Stats.RecvWait.
func (r *Rank) Recv(from, tag int) any {
	start := time.Now()
	r.mu.Lock()
	for {
		for i, m := range r.inbox {
			if (from == AnySource || m.from == from) && m.tag == tag {
				r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
				r.mu.Unlock()
				r.w.stats.RecvWait.ObserveDuration(time.Since(start))
				return m.payload
			}
		}
		r.cond.Wait()
	}
}

// TryRecv is a non-blocking probe-and-receive.
func (r *Rank) TryRecv(from, tag int) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range r.inbox {
		if (from == AnySource || m.from == from) && m.tag == tag {
			r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
			return m.payload, true
		}
	}
	return nil, false
}

// nextCollTag reserves a fresh negative tag for one collective instance.
// SPMD programs call collectives in the same order on every rank, keeping
// the sequence aligned.
func (r *Rank) nextCollTag() int {
	r.collSeq++
	return -r.collSeq
}

// Barrier blocks until every rank has arrived — the construct LCOs are
// designed to eliminate. Implemented as a gather-to-root plus broadcast
// release, so it pays realistic latency on the installed network.
func (r *Rank) Barrier() {
	start := time.Now()
	tag := r.nextCollTag()
	if r.id == 0 {
		for i := 1; i < r.w.n; i++ {
			r.Recv(AnySource, tag)
		}
		for i := 1; i < r.w.n; i++ {
			r.send(i, tag, nil)
		}
	} else {
		r.send(0, tag, nil)
		r.Recv(0, tag)
	}
	r.w.stats.Barriers.Inc()
	r.w.stats.BarrierWait.ObserveDuration(time.Since(start))
}

// Bcast distributes root's value to all ranks along a binomial tree and
// returns each rank's copy.
func (r *Rank) Bcast(root int, v any) any {
	tag := r.nextCollTag()
	n := r.w.n
	// Rotate so the root is virtual rank 0, then run the standard binomial
	// tree: in round mask, virtual ranks < mask (which already hold the
	// value) send to vid+mask, and ranks in [mask, 2*mask) receive.
	vid := (r.id - root + n) % n
	val := v
	for mask := 1; mask < n; mask <<= 1 {
		switch {
		case vid < mask:
			if peer := vid + mask; peer < n {
				r.send((peer+root)%n, tag, val)
			}
		case vid < 2*mask:
			val = r.Recv(AnySource, tag)
		}
	}
	return val
}

// Reduce folds every rank's contribution to the root with op along a
// binomial tree; non-root ranks return 0. Because partials for a round can
// arrive in any order, op must be commutative as well as associative.
func (r *Rank) Reduce(root int, v float64, op func(a, b float64) float64) float64 {
	tag := r.nextCollTag()
	n := r.w.n
	vid := (r.id - root + n) % n
	acc := v
	for m := 1; m < n; m <<= 1 {
		if vid&m != 0 {
			r.send((vid-m+root)%n, tag, acc)
			return 0
		}
		if vid+m < n {
			acc = op(acc, r.Recv(AnySource, tag).(float64))
		}
	}
	return acc
}

// AllReduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) AllReduce(v float64, op func(a, b float64) float64) float64 {
	total := r.Reduce(0, v, op)
	return r.Bcast(0, total).(float64)
}

// Gather collects every rank's value at the root, indexed by rank;
// non-root ranks return nil.
func (r *Rank) Gather(root int, v any) []any {
	tag := r.nextCollTag()
	if r.id == root {
		out := make([]any, r.w.n)
		out[root] = v
		for i := 0; i < r.w.n-1; i++ {
			// Receive from anyone; identify by sender.
			m := r.recvAnyWithSender(tag)
			out[m.from] = m.payload
		}
		return out
	}
	r.send(root, tag, v)
	return nil
}

func (r *Rank) recvAnyWithSender(tag int) message {
	start := time.Now()
	r.mu.Lock()
	for {
		for i, m := range r.inbox {
			if m.tag == tag {
				r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
				r.mu.Unlock()
				r.w.stats.RecvWait.ObserveDuration(time.Since(start))
				return m
			}
		}
		r.cond.Wait()
	}
}
