// Package schedbench holds the scheduler and wire microbenchmark bodies
// shared by the root bench_test.go (go test -bench) and cmd/pxbench
// -sched (programmatic runs emitting BENCH_<date>.json). Keeping the
// bodies in one place guarantees CI's regression gate and the
// command-line harness measure the same code.
//
// The package also preserves the pre-deque scheduler (MutexQueue) —
// one mutex-guarded slice served by a dispatcher that spawns a goroutine
// per task, gated by a slot channel — as the baseline the per-worker
// stealing deques are judged against. The headline comparison is
// PostDispatchMutex vs PostDispatchDeques on 8 workers.
package schedbench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	parallex "repro"
	"repro/internal/locality"
	"repro/internal/parcel"
	"repro/internal/transport"
)

// MutexQueue is the retired single-lock locality scheduler, kept verbatim
// (minus store/steal/metrics) so benchmarks compare against real history
// rather than a strawman.
type MutexQueue struct {
	mu     sync.Mutex
	queue  []func()
	closed bool
	notify chan struct{}
	slots  chan struct{}

	done    chan struct{}
	running sync.WaitGroup
}

// NewMutexQueue starts a baseline scheduler with the given worker bound.
func NewMutexQueue(workers int) *MutexQueue {
	q := &MutexQueue{
		notify: make(chan struct{}, 1),
		slots:  make(chan struct{}, workers),
		done:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		q.slots <- struct{}{}
	}
	go q.dispatch()
	return q
}

// Post enqueues fn, as the old Locality.Post did.
func (q *MutexQueue) Post(fn func()) {
	q.mu.Lock()
	q.queue = append(q.queue, fn)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *MutexQueue) pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) == 0 {
		return nil, false
	}
	fn := q.queue[0]
	q.queue = q.queue[1:]
	return fn, true
}

func (q *MutexQueue) dispatch() {
	defer close(q.done)
	for {
		fn, ok := q.pop()
		if !ok {
			q.mu.Lock()
			closed := q.closed
			empty := len(q.queue) == 0
			q.mu.Unlock()
			if closed && empty {
				return
			}
			<-q.notify
			continue
		}
		<-q.slots
		q.running.Add(1)
		go func() {
			defer func() {
				q.slots <- struct{}{}
				q.running.Done()
			}()
			fn()
		}()
	}
}

// Close drains and stops the baseline scheduler.
func (q *MutexQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	<-q.done
	q.running.Wait()
}

// postDispatch measures multi-producer post + dispatch throughput: b.N
// trivial tasks posted from `producers` goroutines, timed to full
// completion.
func postDispatch(b *testing.B, producers int, post func(func())) {
	var wg sync.WaitGroup
	wg.Add(b.N)
	task := func() { wg.Done() }
	b.ReportAllocs()
	b.ResetTimer()
	var pwg sync.WaitGroup
	base, rem := b.N/producers, b.N%producers
	for p := 0; p < producers; p++ {
		n := base
		if p < rem {
			n++
		}
		pwg.Add(1)
		go func(n int) {
			defer pwg.Done()
			for i := 0; i < n; i++ {
				post(task)
			}
		}(n)
	}
	pwg.Wait()
	wg.Wait()
	b.StopTimer()
	reportTaskRate(b, b.N)
}

func reportTaskRate(b *testing.B, tasks int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(tasks)/sec, "tasks/s")
	}
}

// PostDispatchMutex is the baseline: the single-mutex scheduler under a
// multi-producer flood.
func PostDispatchMutex(b *testing.B, workers, producers int) {
	q := NewMutexQueue(workers)
	postDispatch(b, producers, q.Post)
	q.Close()
}

// PostDispatchDeques is the same flood on the per-worker stealing deque
// scheduler.
func PostDispatchDeques(b *testing.B, workers, producers int) {
	l := locality.New(0, locality.Config{Workers: workers})
	postDispatch(b, producers, func(fn func()) {
		if err := l.Post(fn); err != nil {
			b.Error(err)
		}
	})
	l.Close()
}

// PingPong bounces a single task chain between two one-worker localities:
// pure scheduler latency, no batching to hide behind.
func PingPong(b *testing.B) {
	a := locality.New(0, locality.Config{Workers: 1})
	c := locality.New(1, locality.Config{Workers: 1})
	done := make(chan struct{})
	locs := [2]*locality.Locality{a, c}
	var hop func(remaining, at int)
	hop = func(remaining, at int) {
		if remaining == 0 {
			close(done)
			return
		}
		next := 1 - at
		if err := locs[next].Post(func() { hop(remaining-1, next) }); err != nil {
			b.Error(err)
			close(done)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	hop(2*b.N, 1) // b.N round trips
	<-done
	b.StopTimer()
	a.Close()
	c.Close()
}

// StealImbalance floods one victim locality from one producer while idle
// stealing localities drain it: steady-state steal throughput.
func StealImbalance(b *testing.B, thieves int) {
	all := make([]*locality.Locality, 1+thieves)
	all[0] = locality.New(0, locality.Config{Workers: 1, Stealing: true})
	for i := 1; i < len(all); i++ {
		all[i] = locality.New(i, locality.Config{Workers: 1, Stealing: true})
	}
	for _, l := range all {
		l.SetVictims(all)
	}
	var wg sync.WaitGroup
	wg.Add(b.N)
	task := func() { wg.Done() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := all[0].Post(task); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
	reportTaskRate(b, b.N)
	var stolen uint64
	for _, l := range all {
		stolen += l.Stolen()
	}
	b.ReportMetric(float64(stolen)/float64(b.N), "stolen-frac")
	for _, l := range all {
		l.Close()
	}
}

// FanOutFanIn spawns width threads across four localities per iteration
// and collects them through an LCO AndGate — the split-phase fork/join the
// paper replaces barriers with.
func FanOutFanIn(b *testing.B, width int) {
	rt := parallex.New(parallex.Config{Localities: 4, WorkersPerLocality: 2})
	defer rt.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := parallex.NewAndGate(width)
		for j := 0; j < width; j++ {
			rt.Spawn(j%4, func(*parallex.Context) { g.Signal() })
		}
		g.Wait()
	}
	b.StopTimer()
	reportTaskRate(b, b.N*width)
}

// Migrate measures the live-migration round trip: one vector object
// bounced between two localities b.N times while a chasing stream of
// split-phase calls keeps the object busy, so every move pays the full
// AGAS-v2 protocol — fence quiesce, parcel parking, directory commit,
// cache repoint, and the forwarded hops of the chasers.
func Migrate(b *testing.B, chasers int) {
	rt := parallex.New(parallex.Config{Localities: 2, WorkersPerLocality: 2})
	defer rt.Shutdown()
	rt.MustRegisterAction("schedbench.touch", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		return int64(len(target.([]float64))), nil
	})
	obj := rt.NewDataAt(0, make([]float64, 128))
	stop := make(chan struct{})
	var chased sync.WaitGroup
	for c := 0; c < chasers; c++ {
		chased.Add(1)
		go func(src int) {
			defer chased.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fut := rt.CallFrom(src, obj, "schedbench.touch", nil)
				if _, err := fut.Get(); err != nil {
					b.Error(err)
					return
				}
			}
		}(c % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Migrate(obj, 1-i%2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	chased.Wait()
	rt.Wait()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "moves/s")
	}
	b.ReportMetric(float64(rt.SLOW().Parked.Value())/float64(b.N), "parked/move")
}

// ParcelFlood drives b.N nop parcels from locality 0 to an object on
// locality 1 through the full steady-state path — post, AGAS resolve,
// wire encode, decode, dispatch — on one two-locality runtime with
// serialization forced. Its allocs/op figure is the hot path's allocation
// budget per parcel and is gated in CI (cmd/benchdiff -allocdrop).
func ParcelFlood(b *testing.B, producers int) {
	parcelFlood(b, producers, parallex.Config{Localities: 2, WorkersPerLocality: 4})
}

// BalancerOff is the identical flood with every adaptive-balancer knob
// tuned but the enable switch (BalanceInterval) off: the configuration a
// production node ships with when balancing is staged but not yet turned
// on. Its allocs/op is CI-gated at zero — the sampling branch compiled
// into the delivery path must cost nothing while dormant.
func BalancerOff(b *testing.B, producers int) {
	parcelFlood(b, producers, parallex.Config{
		Localities:          2,
		WorkersPerLocality:  4,
		BalanceSampleEvery:  1,
		BalanceHotThreshold: 1,
		BalanceImbalance:    1.5,
		BalanceMaxMoves:     8,
		BalanceCooldown:     1,
	})
}

func parcelFlood(b *testing.B, producers int, cfg parallex.Config) {
	rt := parallex.New(cfg)
	defer rt.Shutdown()
	obj := rt.NewDataAt(1, struct{}{})
	// Warm the translation cache so the timed region measures steady state.
	rt.SendFrom(0, parcel.Acquire(obj, parallex.ActionNop, nil))
	rt.Wait()
	b.ReportAllocs()
	b.ResetTimer()
	var pwg sync.WaitGroup
	base, rem := b.N/producers, b.N%producers
	for p := 0; p < producers; p++ {
		n := base
		if p < rem {
			n++
		}
		pwg.Add(1)
		go func(n int) {
			defer pwg.Done()
			for i := 0; i < n; i++ {
				rt.SendFrom(0, parcel.Acquire(obj, parallex.ActionNop, nil))
			}
		}(n)
	}
	pwg.Wait()
	rt.Wait()
	b.StopTimer()
	reportTaskRate(b, b.N)
}

// ParcelPingPong bounces one parcel rally between objects on two
// localities: each action send is a full post→route→encode→decode→dispatch
// leg with no batching or parallelism to hide behind — per-parcel latency
// and allocation, measured end to end.
func ParcelPingPong(b *testing.B) {
	rt := parallex.New(parallex.Config{Localities: 2, WorkersPerLocality: 1})
	defer rt.Shutdown()
	var objs [2]parallex.GID
	var remaining atomic.Int64
	done := make(chan struct{})
	rt.MustRegisterAction("schedbench.pong", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
		at := target.(int)
		if remaining.Add(-1) <= 0 {
			close(done)
			return nil, nil
		}
		ctx.Send(parcel.Acquire(objs[1-at], "schedbench.pong", nil))
		return nil, nil
	})
	objs[0] = rt.NewDataAt(0, 0)
	objs[1] = rt.NewDataAt(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	remaining.Store(int64(2 * b.N)) // b.N round trips
	rt.SendFrom(0, parcel.Acquire(objs[1], "schedbench.pong", nil))
	<-done
	b.StopTimer()
	rt.Wait()
}

// DistFutureRoundTrip measures the distributed LCO trigger path end to
// end on a two-node loopback-fabric machine: per iteration, node 0 mints
// a distributed future and subscribes a local waiter, node 1 resolves it
// with an fLCOSet frame, and the resolution fires back through the waiter
// — create, subscribe, cross-node trigger, ack, fire. This is the
// latency of one split-phase synchronization through the acknowledging
// LCO protocol, and its regression gate protects the trigger hot path.
func DistFutureRoundTrip(b *testing.B) {
	fabric := transport.NewFabric(2)
	ranges := []parallex.LocalityRange{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}}
	rts := make([]*parallex.Runtime, 2)
	for i := range rts {
		rts[i] = parallex.New(parallex.Config{
			Transport:          fabric.Node(i),
			NodeID:             i,
			NodeLocalities:     ranges,
			WorkersPerLocality: 2,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fut := rts[0].NewDistFutureAt(0)
		wait := rts[0].WaitLCO(0, fut)
		if err := rts[1].SetLCO(1, fut, int64(i)); err != nil {
			b.Fatal(err)
		}
		if v, err := wait.Get(); err != nil || v.(int64) != int64(i) {
			b.Fatalf("round trip %d = %v, %v", i, v, err)
		}
		rts[0].FreeObject(fut)
	}
	b.StopTimer()
	rts[0].Wait()
	for _, rt := range rts {
		rt.Shutdown()
	}
}

// internTable is a minimal parcel.Table for the codec benchmark: wire
// position = index into names.
type internTable struct {
	names []string
	ids   map[string]uint32
}

func newInternTable(names ...string) *internTable {
	t := &internTable{names: names, ids: make(map[string]uint32, len(names))}
	for i, n := range names {
		t.ids[n] = uint32(i)
	}
	return t
}

// IDOf reports the wire position of a known action name.
func (t *internTable) IDOf(n string) (uint32, bool) { id, ok := t.ids[n]; return id, ok }

// ActionOf resolves a wire position back to its name.
func (t *internTable) ActionOf(id uint32) (string, uint32, bool) {
	if int(id) >= len(t.names) {
		return "", parcel.NoAID, false
	}
	return t.names[id], parcel.NoAID, true
}

// WireRoundTrip isolates the pooled parcel wire codec as the runtime
// drives it: acquire from the pool, encode interned into a recycled
// buffer, decode back into a pooled parcel, release everything. One small
// argument record and one continuation per parcel; the steady state is
// allocation-free.
func WireRoundTrip(b *testing.B) {
	tbl := newInternTable("schedbench.touch", parallex.ActionLCOSet)
	args := parallex.NewArgs().Int64(7).Float64(3.14).Encode()
	dest := parallex.GID{Home: 1, Kind: parallex.KindData, Seq: 42}
	cgid := parallex.GID{Home: 0, Kind: parallex.KindLCO, Seq: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := parcel.Acquire(dest, "schedbench.touch", args,
			parcel.Continuation{Target: cgid, Action: parallex.ActionLCOSet})
		w := parcel.GetWire()
		w.B = p.EncodeInterned(w.B, tbl)
		parcel.Release(p)
		q, rest, err := parcel.DecodePooledInterned(w.B, tbl)
		parcel.PutWire(w)
		if err != nil || len(rest) != 0 {
			b.Fatalf("decode: %v (%d trailing)", err, len(rest))
		}
		if q.Dest != dest {
			b.Fatal("roundtrip mismatch")
		}
		parcel.Release(q)
	}
}

// TCPRing3 drives one continuation-chain lap around a three-node TCP
// machine on loopback per iteration: the full stack — scheduler, parcel
// codec, batched wire — under the distributed quiescence protocol.
func TCPRing3(b *testing.B) {
	ranges := []parallex.LocalityRange{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}, {Lo: 4, Hi: 6}}
	tcps := make([]*parallex.TCPTransport, 3)
	addrs := make([]string, 3)
	for i := range tcps {
		tr, err := parallex.NewTCPTransport(parallex.TCPTransportConfig{
			Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 3),
		})
		if err != nil {
			b.Fatal(err)
		}
		tcps[i] = tr
		addrs[i] = tr.Addr().String()
	}
	register := func(rt *parallex.Runtime) {
		rt.MustRegisterAction("schedbench.incr", func(ctx *parallex.Context, target any, args *parallex.ArgsReader) (any, error) {
			raw := args.Bytes()
			if err := args.Err(); err != nil {
				return nil, err
			}
			v, err := parallex.DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			n, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("schedbench.incr got %T", v)
			}
			return n + 1, nil
		})
	}
	rts := make([]*parallex.Runtime, 3)
	for i, tr := range tcps {
		tr.SetPeers(addrs)
		rts[i] = parallex.New(parallex.Config{
			Transport:          tr,
			NodeID:             i,
			NodeLocalities:     ranges,
			WorkersPerLocality: 2,
			Register:           register,
		})
	}
	zero, err := parallex.EncodeValue(int64(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fgid, fut := rts[0].NewFutureAt(0)
		cont := make([]parallex.Continuation, 0, 6)
		for loc := 1; loc < rts[0].Localities(); loc++ {
			cont = append(cont, parallex.Continuation{Target: rts[0].LocalityGID(loc), Action: "schedbench.incr"})
		}
		cont = append(cont, parallex.Continuation{Target: fgid, Action: parallex.ActionLCOSet})
		p := parallex.NewParcel(rts[0].LocalityGID(0), "schedbench.incr",
			parallex.NewArgs().Bytes(zero).Encode(), cont...)
		rts[0].SendFrom(0, p)
		v, err := fut.Get()
		if err != nil {
			b.Fatal(err)
		}
		if got := v.(int64); got != int64(rts[0].Localities()) {
			b.Fatalf("lap %d counted %d hops, want %d", i, got, rts[0].Localities())
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*rts[0].Localities())/sec, "hops/s")
	}
	rts[0].Wait()
	for _, rt := range rts {
		rt.Shutdown()
	}
}
