package schedbench

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// wireFrameSize is the payload carried per frame in the wire-path
// benchmarks. Large enough that the send path's per-frame byte handling
// (one memcpy under coalescing, one iovec append under writev)
// dominates over framing bookkeeping, small enough that several frames
// share each group-commit batch.
const wireFrameSize = 32 << 10

// wireSenders and wireBatchWindow shape the flood so group commit forms
// real batches on any machine: with a brief linger per round, the
// concurrent senders queue behind the leader's window and each flush
// carries a full gather vector, which is the regime the writev path
// exists for. Without a window, a fast non-blocking loopback write can
// complete before the scheduler runs another sender — one frame per
// syscall, nothing to vector.
const (
	wireSenders     = 16
	wireBatchWindow = 50 * time.Microsecond
)

// wirePair builds a two-node TCP machine on loopback, applies tune to
// both configs, and returns the transports plus a delivered-frame
// counter fed by node 1's handler.
func wirePair(b *testing.B, tune func(*transport.TCPConfig)) ([]*transport.TCP, *atomic.Uint64) {
	b.Helper()
	nodes := make([]*transport.TCP, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		cfg := transport.TCPConfig{Self: i, Listen: "127.0.0.1:0", Peers: make([]string, 2)}
		if tune != nil {
			tune(&cfg)
		}
		tt, err := transport.NewTCP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = tt
		addrs[i] = tt.Addr().String()
	}
	var got atomic.Uint64
	for i, tt := range nodes {
		tt.SetPeers(addrs)
		if i == 1 {
			tt.SetHandler(func(from int, frame []byte) { got.Add(1) })
		} else {
			tt.SetHandler(func(from int, frame []byte) {})
		}
		if err := tt.Start(); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		for _, tt := range nodes {
			tt.Close()
		}
	})
	return nodes, &got
}

// wireFlood pushes b.N frames from node 0 to node 1 across the given
// number of concurrent senders, sender i pinned to lane i%lanes, and
// waits for every frame to reach the receiving handler before stopping
// the clock. Because Send blocks until the flush round covering its
// frame completes, the measured rate is the sustained throughput of the
// group-commit write path itself.
func wireFlood(b *testing.B, senders int, nodes []*transport.TCP, got *atomic.Uint64) {
	b.Helper()
	lanes := nodes[0].Lanes()
	frame := make([]byte, wireFrameSize)
	for i := range frame {
		frame[i] = byte(i)
	}
	b.SetBytes(wireFrameSize)
	b.ReportAllocs()
	batches0, _, _ := nodes[0].BatchStats()
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		n := b.N / senders
		if s < b.N%senders {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(lane, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := nodes[0].SendLane(1, lane, frame); err != nil {
					b.Error(err)
					return
				}
			}
		}(s%lanes, n)
	}
	wg.Wait()
	for got.Load() < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "frames/s")
	}
	if batches, _, _ := nodes[0].BatchStats(); batches > batches0 {
		b.ReportMetric(float64(b.N)/float64(batches-batches0), "frames/batch")
	}
}

// WireWritevBatch floods frames through the v2 transport defaults:
// vectored writes (each group-commit batch leaves as one writev over the
// callers' own frame slices, never copied) and alias decode on the
// receiver. It runs over the same-host fabric — the two nodes share
// this host, so that is the fabric they would actually get — which also
// keeps the in-run comparison against WireCoalesceBatch out of the TCP
// stack's scheduling noise: the two benchmarks differ only in write and
// read strategy.
func WireWritevBatch(b *testing.B) {
	nodes, got := wirePair(b, func(cfg *transport.TCPConfig) {
		cfg.BatchWindow = wireBatchWindow
	})
	wireFlood(b, wireSenders, nodes, got)
	if nodes[0].SameHostConns() == 0 {
		b.Fatal("same-host fabric was not selected for a loopback pair")
	}
}

// WireCoalesceBatch is the identical flood through the retained v1
// strategies: every frame memcpy'd into a contiguous batch buffer before
// one Write, and every received frame copied out of the read buffer
// before dispatch. This is the baseline the v2 path is required to
// beat — CI gates writev ns/op at >= 1.2x better via cmd/benchdiff
// -speedup, an in-run ratio that holds on any machine.
func WireCoalesceBatch(b *testing.B) {
	nodes, got := wirePair(b, func(cfg *transport.TCPConfig) {
		cfg.CoalesceWrites = true
		cfg.DisableAliasRead = true
		cfg.BatchWindow = wireBatchWindow
	})
	wireFlood(b, wireSenders, nodes, got)
}

// WireShardedFanout runs the flood over real loopback TCP with four
// lanes per peer, senders spread across them: four independent
// group-commit pipelines to the same node, the configuration the
// runtime drives with destination-GID affinity hashing.
func WireShardedFanout(b *testing.B) {
	nodes, got := wirePair(b, func(cfg *transport.TCPConfig) {
		cfg.DisableSameHost = true
		cfg.Lanes = 4
		cfg.BatchWindow = wireBatchWindow
	})
	wireFlood(b, wireSenders, nodes, got)
}

// WireSameHost is the flood over a completely untuned transport — no
// batch window, every knob at its default — on a loopback pair, where
// the transport auto-selects the same-host Unix-domain fabric: what
// colocated processes get out of the box. Compare against
// WireShardedFanout for the TCP-vs-fabric gap.
func WireSameHost(b *testing.B) {
	nodes, got := wirePair(b, nil)
	wireFlood(b, wireSenders, nodes, got)
	if nodes[0].SameHostConns() == 0 {
		b.Fatal("same-host fabric was not selected for a loopback pair")
	}
}
