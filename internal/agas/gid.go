// Package agas implements the ParalleX global name space: every first-class
// object — data, actions, LCOs, processes, and even hardware resources — has
// a global identifier that can be named from any locality. Objects move;
// names do not. Translation uses a home-based directory per locality with
// per-locality caches that may go stale (the model explicitly has no global
// cache coherence), repaired by forwarding.
package agas

import (
	"encoding/binary"
	"fmt"
)

// Kind types a global name. The paper makes actions and hardware resources
// first-class nameable entities alongside data, so the kind is part of the
// identifier.
type Kind uint8

// Name kinds.
const (
	KindInvalid Kind = iota
	KindData
	KindAction
	KindLCO
	KindProcess
	KindThread
	KindHardware
)

var kindNames = [...]string{"invalid", "data", "action", "lco", "process", "thread", "hardware"}

// String returns the kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// GID is a 128-bit global identifier. Home is the locality whose directory
// is authoritative for the object (a routing hint, not its current
// location). The zero GID is invalid.
type GID struct {
	Home uint32
	Kind Kind
	Seq  uint64
}

// Nil is the invalid zero GID.
var Nil GID

// IsNil reports whether g is the invalid zero GID.
func (g GID) IsNil() bool { return g == Nil }

// String renders the GID for logs: kind@home#seq.
func (g GID) String() string {
	if g.IsNil() {
		return "gid(nil)"
	}
	return fmt.Sprintf("%s@%d#%d", g.Kind, g.Home, g.Seq)
}

// GIDSize is the encoded size of a GID in bytes.
const GIDSize = 16

// Encode appends the 16-byte wire form of g to dst.
func (g GID) Encode(dst []byte) []byte {
	var buf [GIDSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], g.Home)
	buf[4] = byte(g.Kind)
	// bytes 5..7 reserved, zero
	binary.LittleEndian.PutUint64(buf[8:16], g.Seq)
	return append(dst, buf[:]...)
}

// DecodeGID reads a GID from the front of src, returning the remainder.
func DecodeGID(src []byte) (GID, []byte, error) {
	if len(src) < GIDSize {
		return Nil, src, fmt.Errorf("agas: short GID: %d bytes", len(src))
	}
	g := GID{
		Home: binary.LittleEndian.Uint32(src[0:4]),
		Kind: Kind(src[4]),
		Seq:  binary.LittleEndian.Uint64(src[8:16]),
	}
	return g, src[GIDSize:], nil
}
