package agas

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Namespace is the hierarchical symbolic name tree: slash-separated paths
// map to GIDs, mirroring the paper's "hierarchical naming structure".
// It is safe for concurrent use.
type Namespace struct {
	mu   sync.RWMutex
	root *nsNode
}

type nsNode struct {
	children map[string]*nsNode
	gid      GID
	bound    bool
}

// NewNamespace returns an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{root: &nsNode{children: make(map[string]*nsNode)}}
}

// splitPath validates and splits a path like "/app/mesh/block3".
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("agas: path %q must be absolute", path)
	}
	if path == "/" {
		return nil, fmt.Errorf("agas: empty path")
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("agas: path %q has empty component", path)
		}
	}
	return parts, nil
}

// Bind associates path with g, creating intermediate directories. Binding
// an already-bound path fails; names are stable once published.
func (ns *Namespace) Bind(path string, g GID) error {
	if g.IsNil() {
		return fmt.Errorf("agas: bind of nil GID to %q", path)
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	node := ns.root
	for _, p := range parts {
		child, ok := node.children[p]
		if !ok {
			child = &nsNode{children: make(map[string]*nsNode)}
			node.children[p] = child
		}
		node = child
	}
	if node.bound {
		return fmt.Errorf("agas: %q already bound to %v", path, node.gid)
	}
	node.gid = g
	node.bound = true
	return nil
}

// Lookup resolves path to a GID.
func (ns *Namespace) Lookup(path string) (GID, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Nil, err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	node := ns.root
	for _, p := range parts {
		child, ok := node.children[p]
		if !ok {
			return Nil, fmt.Errorf("agas: name %q not found", path)
		}
		node = child
	}
	if !node.bound {
		return Nil, fmt.Errorf("agas: %q is a directory, not a name", path)
	}
	return node.gid, nil
}

// Unbind removes the binding at path, leaving intermediate directories.
func (ns *Namespace) Unbind(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	node := ns.root
	for _, p := range parts {
		child, ok := node.children[p]
		if !ok {
			return fmt.Errorf("agas: name %q not found", path)
		}
		node = child
	}
	if !node.bound {
		return fmt.Errorf("agas: %q not bound", path)
	}
	node.bound = false
	node.gid = Nil
	return nil
}

// List returns the bound paths under prefix (inclusive), sorted.
func (ns *Namespace) List(prefix string) []string {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	start := ns.root
	base := ""
	if prefix != "" && prefix != "/" {
		parts, err := splitPath(prefix)
		if err != nil {
			return nil
		}
		for _, p := range parts {
			child, ok := start.children[p]
			if !ok {
				return nil
			}
			start = child
		}
		base = "/" + strings.Join(parts, "/")
	}
	var out []string
	var walk func(node *nsNode, path string)
	walk = func(node *nsNode, path string) {
		if node.bound {
			out = append(out, path)
		}
		for name, child := range node.children {
			walk(child, path+"/"+name)
		}
	}
	if base == "" {
		walk(start, "")
	} else {
		walk(start, base)
	}
	sort.Strings(out)
	return out
}
