package agas

import "fmt"

// Range is a half-open contiguous span of locality indices [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Contains reports whether loc falls inside the range.
func (r Range) Contains(loc int) bool { return loc >= r.Lo && loc < r.Hi }

// Count reports the number of localities in the range.
func (r Range) Count() int { return r.Hi - r.Lo }

// String renders the range for logs and flags.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// LocalityMap records which node of a multi-process machine hosts each
// locality. Node i hosts the contiguous range ranges[i]; together the
// ranges partition [0, Localities()). The map is immutable after
// construction — localities do not migrate between nodes — so lookups are
// lock-free.
type LocalityMap struct {
	ranges []Range
	node   []int // locality -> node, precomputed
}

// NewLocalityMap validates that ranges is a contiguous partition starting
// at locality 0 and builds the map. Node i owns ranges[i].
func NewLocalityMap(ranges []Range) (*LocalityMap, error) {
	if len(ranges) == 0 {
		return nil, fmt.Errorf("agas: locality map needs at least one node")
	}
	next := 0
	total := 0
	for i, rg := range ranges {
		if rg.Lo != next || rg.Hi <= rg.Lo {
			return nil, fmt.Errorf("agas: node %d range %v does not continue partition at %d", i, rg, next)
		}
		next = rg.Hi
		total = rg.Hi
	}
	m := &LocalityMap{ranges: append([]Range(nil), ranges...), node: make([]int, total)}
	for i, rg := range ranges {
		for loc := rg.Lo; loc < rg.Hi; loc++ {
			m.node[loc] = i
		}
	}
	return m, nil
}

// MustLocalityMap is NewLocalityMap that panics on error.
func MustLocalityMap(ranges []Range) *LocalityMap {
	m, err := NewLocalityMap(ranges)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes reports the number of nodes.
func (m *LocalityMap) Nodes() int { return len(m.ranges) }

// Localities reports the global locality count.
func (m *LocalityMap) Localities() int { return len(m.node) }

// NodeOf reports the node hosting locality loc.
func (m *LocalityMap) NodeOf(loc int) int {
	if loc < 0 || loc >= len(m.node) {
		panic(fmt.Sprintf("agas: locality %d outside map [0,%d)", loc, len(m.node)))
	}
	return m.node[loc]
}

// NodeRange reports the locality range hosted by node n.
func (m *LocalityMap) NodeRange(n int) Range {
	if n < 0 || n >= len(m.ranges) {
		panic(fmt.Sprintf("agas: node %d outside map [0,%d)", n, len(m.ranges)))
	}
	return m.ranges[n]
}
